(* The root seed is stored as 32-bit native halves next to the generator:
   label derivation xors the FNV-hashed label into the root and runs one
   SplitMix64 mix, and keeping everything in halves means a derivation
   allocates exactly two records (the generator and this wrapper) — no
   Int64 is ever built.  Derivation runs once per hash-function draw on
   protocol hot paths, so this floor is what the allocations-per-trial
   gate in bench/scaling.ml leans on. *)
type t = { gen : Splitmix64.t; root_hi : int; root_lo : int }

let of_seed seed =
  {
    gen = Splitmix64.create seed;
    root_hi = Int64.to_int (Int64.shift_right_logical seed 32);
    root_lo = Int64.to_int (Int64.logand seed 0xFFFFFFFFL);
  }

let of_int n = of_seed (Int64.of_int n)

(* FNV-1a over 64 bits, computed in two 32-bit native-int halves so the
   per-character loop allocates nothing (Int64 arithmetic boxes every
   intermediate).  The prime is 2^40 + 0x1B3, so
   [h * prime = (h * 0x1B3) + (low24(h) << 40)  (mod 2^64)],
   and each half-product stays below 2^41 — comfortably inside a native
   int.  Bit-identical to the Int64 reference formulation.

   [Label] exposes the same hash incrementally: FNV-1a is a left-to-right
   fold over bytes, so feeding fragments ["eqb/g"; "12"; "/t3"] is
   bit-identical to hashing their concatenation — which is what lets the
   protocol hot paths derive per-instance generators without building the
   label string at all. *)
module Label = struct
  type d = { mutable h_hi : int; mutable h_lo : int; r_hi : int; r_lo : int }

  let start t = { h_hi = 0xCBF29CE4; h_lo = 0x84222325; r_hi = t.root_hi; r_lo = t.root_lo }

  let add_byte d code =
    let l = d.h_lo lxor code in
    let p = l * 0x1B3 in
    d.h_lo <- p land 0xFFFFFFFF;
    d.h_hi <- ((d.h_hi * 0x1B3) + (p lsr 32) + ((l land 0xFFFFFF) lsl 8)) land 0xFFFFFFFF

  let add_char d c = add_byte d (Char.code c)
  let add d s = String.iter (fun c -> add_byte d (Char.code c)) s

  (* Decimal digits, most significant first: the bytes [string_of_int]
     would produce, without the string. *)
  let rec add_nat d n =
    if n >= 10 then add_nat d (n / 10);
    add_byte d (Char.code '0' + (n mod 10))

  let add_int d n = if n < 0 then add d (string_of_int n) else add_nat d n

  let finish d =
    let gen = Splitmix64.of_mixed_halves ~hi:(d.r_hi lxor d.h_hi) ~lo:(d.r_lo lxor d.h_lo) in
    (* [of_mixed_halves] leaves the mixed seed in the out halves until the
       first step; that mixed seed is the derived generator's root. *)
    { gen; root_hi = Splitmix64.out_hi gen; root_lo = Splitmix64.out_lo gen }
end

let with_label t label =
  let d = Label.start t in
  Label.add d label;
  Label.finish d

let split t = of_seed (Splitmix64.next t.gen)
let int64 t = Splitmix64.next t.gen

(* The draws below take the top bits of the 64-bit output, assembled from
   the generator's unboxed 32-bit halves so no Int64 is ever built on the
   hot path.  Each is draw-for-draw identical to
   [Int64.shift_right_logical (int64 t) (64 - width)]. *)
let bits t ~width =
  if width < 0 || width > 62 then invalid_arg "Rng.bits: width";
  if width = 0 then 0
  else begin
    Splitmix64.step t.gen;
    let hi = Splitmix64.out_hi t.gen in
    if width <= 32 then hi lsr (32 - width)
    else (hi lsl (width - 32)) lor (Splitmix64.out_lo t.gen lsr (64 - width))
  end

(* Top-level rejection loop: a local [let rec] closure would allocate its
   environment on every [int] call (and [shuffle] makes one call per
   element). *)
let rec reject t ~width bound =
  let v = bits t ~width in
  if v < bound then v else reject t ~width bound

let int t bound =
  if bound < 1 then invalid_arg "Rng.int: bound";
  if bound = 1 then 0 else reject t ~width:(Bitio.Codes.bit_width (bound - 1)) bound

let bool t =
  Splitmix64.step t.gen;
  Splitmix64.out_hi t.gen lsr 31 = 1

let float t =
  (* 53 uniform bits into [0, 1). *)
  Splitmix64.step t.gen;
  let v = (Splitmix64.out_hi t.gen lsl 21) lor (Splitmix64.out_lo t.gen lsr 11) in
  float_of_int v /. 9007199254740992.0

let bernoulli t ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Rng.bernoulli";
  float t < p

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric";
  if p >= 1.0 then 0
  else begin
    let u = 1.0 -. float t (* in (0, 1] *) in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
