type t = { gen : Splitmix64.t; root : int64 }

let of_seed seed = { gen = Splitmix64.create seed; root = seed }

let of_int n = of_seed (Int64.of_int n)

(* FNV-1a over 64 bits, computed in two 32-bit native-int halves so the
   per-character loop allocates nothing (Int64 arithmetic boxes every
   intermediate; label hashing runs once per derived generator on protocol
   hot paths).  The prime is 2^40 + 0x1B3, so
   [h * prime = (h * 0x1B3) + (low24(h) << 40)  (mod 2^64)],
   and each half-product stays below 2^41 — comfortably inside a native
   int.  Bit-identical to the Int64 reference formulation. *)
let fnv1a64 s =
  let lo = ref 0x84222325 and hi = ref 0xCBF29CE4 in
  String.iter
    (fun c ->
      let l = !lo lxor Char.code c in
      let t = l * 0x1B3 in
      lo := t land 0xFFFFFFFF;
      hi := ((!hi * 0x1B3) + (t lsr 32) + ((l land 0xFFFFFF) lsl 8)) land 0xFFFFFFFF)
    s;
  Int64.logor (Int64.shift_left (Int64.of_int !hi) 32) (Int64.of_int !lo)

let with_label t label =
  of_seed (Splitmix64.mix (Int64.logxor t.root (fnv1a64 label)))

let split t = of_seed (Splitmix64.next t.gen)

let int64 t = Splitmix64.next t.gen

(* The draws below take the top bits of the 64-bit output, assembled from
   the generator's unboxed 32-bit halves so no Int64 is ever built on the
   hot path.  Each is draw-for-draw identical to
   [Int64.shift_right_logical (int64 t) (64 - width)]. *)
let bits t ~width =
  if width < 0 || width > 62 then invalid_arg "Rng.bits: width";
  if width = 0 then 0
  else begin
    Splitmix64.step t.gen;
    let hi = Splitmix64.out_hi t.gen in
    if width <= 32 then hi lsr (32 - width)
    else (hi lsl (width - 32)) lor (Splitmix64.out_lo t.gen lsr (64 - width))
  end

let int t bound =
  if bound < 1 then invalid_arg "Rng.int: bound";
  if bound = 1 then 0
  else begin
    let width = Bitio.Codes.bit_width (bound - 1) in
    let rec draw () =
      let v = bits t ~width in
      if v < bound then v else draw ()
    in
    draw ()
  end

let bool t =
  Splitmix64.step t.gen;
  Splitmix64.out_hi t.gen lsr 31 = 1

let float t =
  (* 53 uniform bits into [0, 1). *)
  Splitmix64.step t.gen;
  let v = (Splitmix64.out_hi t.gen lsl 21) lor (Splitmix64.out_lo t.gen lsr 11) in
  float_of_int v /. 9007199254740992.0

let bernoulli t ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Rng.bernoulli";
  float t < p

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric";
  if p >= 1.0 then 0
  else begin
    let u = 1.0 -. float t (* in (0, 1] *) in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
