(* The state and all mixing arithmetic live in 32-bit native-int halves:
   boxed Int64 arithmetic allocates every intermediate, and the generator
   runs on the hot path of every tag derivation.  [step] advances the
   state and leaves the mixed output in the [out_hi]/[out_lo] fields —
   no allocation at all — so integer-returning consumers (Rng.bits,
   Rng.bool, Rng.float) never touch Int64.  [next] wraps [step] for the
   boxed interface.  The limb formulation is bit-identical to the Int64
   reference — 64-bit add/xor/shift/multiply mod 2^64 — and is pinned by
   the published SplitMix64 vectors in the test suite. *)

type t = { mutable hi : int; mutable lo : int; mutable out_hi : int; mutable out_lo : int }

let mask32 = 0xFFFFFFFF

let split64_hi z = Int64.to_int (Int64.shift_right_logical z 32)
let split64_lo z = Int64.to_int (Int64.logand z 0xFFFFFFFFL)
let join64 hi lo = Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

let create seed = { hi = split64_hi seed; lo = split64_lo seed; out_hi = 0; out_lo = 0 }

(* (a * b) mod 2^32 for a, b < 2^32; 16-bit splits keep every native
   product below 2^49. *)
let mullo32 a b = (((a land 0xFFFF) * b) + (((a lsr 16) * (b land 0xFFFF)) lsl 16)) land mask32

(* Steele-Lea-Flood finalizer, fully scalar: two xor-shift-multiply rounds
   and a final xor-shift, on (hi, lo) halves threaded through [t.out_*]. *)
let mix_into t hi lo =
  (* z ^= z >>> 30 *)
  let lo = lo lxor ((lo lsr 30) lor ((hi land 0x3FFFFFFF) lsl 2)) in
  let hi = hi lxor (hi lsr 30) in
  (* z *= 0xBF58476D1CE4E5B9 *)
  let a0 = lo land 0xFFFF and a1 = lo lsr 16 in
  let p1 = (a0 * 0x1CE4) + (a1 * 0xE5B9) in
  let tm = (a0 * 0xE5B9) + ((p1 land 0xFFFF) lsl 16) in
  let new_hi =
    ((a1 * 0x1CE4) + (p1 lsr 16) + (tm lsr 32) + mullo32 lo 0xBF58476D + mullo32 hi 0x1CE4E5B9)
    land mask32
  in
  let lo = tm land mask32 in
  let hi = new_hi in
  (* z ^= z >>> 27 *)
  let lo = lo lxor ((lo lsr 27) lor ((hi land 0x7FFFFFF) lsl 5)) in
  let hi = hi lxor (hi lsr 27) in
  (* z *= 0x94D049BB133111EB *)
  let a0 = lo land 0xFFFF and a1 = lo lsr 16 in
  let p1 = (a0 * 0x1331) + (a1 * 0x11EB) in
  let tm = (a0 * 0x11EB) + ((p1 land 0xFFFF) lsl 16) in
  let new_hi =
    ((a1 * 0x1331) + (p1 lsr 16) + (tm lsr 32) + mullo32 lo 0x94D049BB + mullo32 hi 0x133111EB)
    land mask32
  in
  let lo = tm land mask32 in
  let hi = new_hi in
  (* z ^= z >>> 31 *)
  t.out_lo <- lo lxor ((lo lsr 31) lor ((hi land 0x7FFFFFFF) lsl 1));
  t.out_hi <- hi lxor (hi lsr 31)

(* state <- state + golden gamma (0x9E3779B97F4A7C15), with carry; the
   mixed output lands in [out_hi]/[out_lo]. *)
let step t =
  let lo = t.lo + 0x7F4A7C15 in
  t.hi <- (t.hi + 0x9E3779B9 + (lo lsr 32)) land mask32;
  t.lo <- lo land mask32;
  mix_into t t.hi t.lo

let out_hi t = t.out_hi
let out_lo t = t.out_lo

let next t =
  step t;
  join64 t.out_hi t.out_lo

let mix z =
  (* [mix] is stateless seed derivation, off the draw hot path; a fresh
     scratch cell per call keeps it race-free when parallel domains
     derive seeds concurrently (a shared cell would tear). *)
  let t = { hi = 0; lo = 0; out_hi = 0; out_lo = 0 } in
  mix_into t (split64_hi z) (split64_lo z);
  join64 t.out_hi t.out_lo

let of_mixed_halves ~hi ~lo =
  (* [create (mix (hi << 32 | lo))] without building either Int64: the
     generator record doubles as the mix scratch cell, and the mixed seed
     is left readable in [out_hi]/[out_lo] until the first [step].  Label
     derivation ([Rng.with_label] and the incremental [Rng.Label]) runs
     once per hash-function draw on protocol hot paths, so this is the
     allocation floor: one record per derived generator. *)
  let t = { hi = 0; lo = 0; out_hi = 0; out_lo = 0 } in
  mix_into t (hi land mask32) (lo land mask32);
  t.hi <- t.out_hi;
  t.lo <- t.out_lo;
  t
