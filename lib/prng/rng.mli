(** Deterministic, splittable randomness.

    This module plays the role of the paper's {e common random string}: two
    parties seeded with the same root seed and asking for the same labels
    observe identical random streams without exchanging a single bit.  All
    protocol code takes an explicit [Rng.t]; nothing reads global state, so
    every run is reproducible from its seed. *)

type t

val of_seed : int64 -> t

(** Convenience: seed from a small integer (tests, CLIs). *)
val of_int : int -> t

(** [with_label t label] is a fresh generator derived from [t]'s {e root}
    seed and [label] only.  It does not advance [t], and the result is
    independent of how many values were drawn from [t] — this is what lets
    two parties agree on per-stage / per-node hash functions.  Labels are
    hashed with FNV-1a 64. *)
val with_label : t -> string -> t

(** Incremental label derivation for hot paths that would otherwise build
    the label by concatenation.  FNV-1a is a left-to-right byte fold, so

    {[ let d = Label.start t in
       Label.add d "eqb/g"; Label.add_int d 12;
       Label.finish d ]}

    is bit-identical to [with_label t "eqb/g12"] — same hash, same derived
    stream — without allocating the intermediate strings.  A derivation
    [d] is single-use scratch: feed fragments left to right, then
    [finish]. *)
module Label : sig
  type d

  val start : t -> d
  val add : d -> string -> unit
  val add_char : d -> char -> unit

  (** The decimal digits [string_of_int] would produce. *)
  val add_int : d -> int -> unit

  val finish : d -> t
end

(** [split t] draws a fresh child generator from [t] (advances [t]). *)
val split : t -> t

val int64 : t -> int64

(** [bits t ~width] is a uniform integer of [width] bits, [0 <= width <= 62]. *)
val bits : t -> width:int -> int

(** [int t bound] is uniform in [\[0, bound)]; [bound >= 1].  Unbiased via
    rejection sampling. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform in [\[0, 1)]. *)
val float : t -> float

val bernoulli : t -> p:float -> bool

(** [geometric t ~p] is the number of failures before the first success of a
    Bernoulli([p]) sequence; [0 < p <= 1]. *)
val geometric : t -> p:float -> int

(** Fisher–Yates shuffle, in place. *)
val shuffle : t -> 'a array -> unit
