(** SplitMix64: a fast 64-bit generator with provably full period, used as
    the root source of all randomness in the simulator (Steele, Lea &
    Flood, OOPSLA 2014 parameters). *)

type t

val create : int64 -> t

(** Next 64-bit output; advances the state. *)
val next : t -> int64

(** Advance the state one step without boxing the output; read the two
    32-bit halves with {!out_hi} / {!out_lo}.  Draw-for-draw identical to
    {!next}: [next t = (out_hi t << 32) | out_lo t] after the same step. *)
val step : t -> unit

(** High / low 32 bits of the output produced by the last {!step} (or
    {!next}), as non-negative native ints below [2^32]. *)
val out_hi : t -> int

val out_lo : t -> int

(** Stateless single-step mix, used for seed derivation. *)
val mix : int64 -> int64
