(** SplitMix64: a fast 64-bit generator with provably full period, used as
    the root source of all randomness in the simulator (Steele, Lea &
    Flood, OOPSLA 2014 parameters). *)

type t

val create : int64 -> t

(** Next 64-bit output; advances the state. *)
val next : t -> int64

(** Advance the state one step without boxing the output; read the two
    32-bit halves with {!out_hi} / {!out_lo}.  Draw-for-draw identical to
    {!next}: [next t = (out_hi t << 32) | out_lo t] after the same step. *)
val step : t -> unit

(** High / low 32 bits of the output produced by the last {!step} (or
    {!next}), as non-negative native ints below [2^32]. *)
val out_hi : t -> int

val out_lo : t -> int

(** Stateless single-step mix, used for seed derivation. *)
val mix : int64 -> int64

(** [of_mixed_halves ~hi ~lo] is [create (mix seed)] for the 64-bit seed
    whose 32-bit halves are [hi]/[lo] (masked to 32 bits), computed
    entirely in native halves — no Int64 is ever built.  Until the first
    {!step}, {!out_hi}/{!out_lo} hold the mixed seed itself, so a caller
    can record the derived root without boxing either. *)
val of_mixed_halves : hi:int -> lo:int -> t
