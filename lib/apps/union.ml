open Intersect

type result = {
  union : Iset.t;
  intersection : Iset.t;
  symmetric_difference : Iset.t;
  cost : Commsim.Cost.t;
}

let run _rng ~universe s t =
  Protocol.validate_inputs ~universe s t;
  let alice chan =
    Obsv.Trace.span Obsv.Phases.app_union (fun () -> Commsim.Transport.send chan (Wire.of_set s));
    let reader = Bitio.Bitreader.create (Commsim.Transport.recv chan) in
    let t_minus_s = Bitio.Set_codec.read_gaps reader in
    let s_minus_t_flags = Array.map (fun _ -> Bitio.Bitreader.read_bit reader) s in
    let s_minus_t =
      Array.to_list s |> List.filteri (fun i _ -> s_minus_t_flags.(i)) |> Array.of_list
    in
    ( Iset.union s t_minus_s,
      Iset.diff s s_minus_t,
      Iset.union s_minus_t t_minus_s )
  in
  let bob chan =
    let received = Bitio.Set_codec.read_gaps (Bitio.Bitreader.create (Commsim.Transport.recv chan)) in
    let t_minus_s = Iset.diff t received in
    let buf = Bitio.Bitbuf.create () in
    Bitio.Set_codec.write_gaps buf t_minus_s;
    (* bitmap over Alice's elements, in her sorted order: 1 = not in T *)
    Array.iter (fun x -> Bitio.Bitbuf.write_bit buf (not (Iset.mem t x))) received;
    Obsv.Trace.span Obsv.Phases.app_union (fun () ->
        Commsim.Transport.send chan (Bitio.Bitbuf.contents buf));
    ( Iset.union received t_minus_s,
      Iset.inter received t,
      Iset.union (Iset.diff received t) t_minus_s )
  in
  let ((u_a, i_a, d_a), (u_b, i_b, d_b)), cost = Commsim.Two_party.run ~alice ~bob in
  assert (Iset.equal u_a u_b && Iset.equal i_a i_b && Iset.equal d_a d_b);
  { union = u_a; intersection = i_a; symmetric_difference = d_a; cost }
