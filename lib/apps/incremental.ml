open Intersect

type party = { current : Iset.t; candidate : Iset.t }

type update = { inserts : Iset.t; deletes : Iset.t }

let default_protocol () = Verified.protocol (Tree_protocol.protocol_log_star ())

let start ?protocol rng ~universe s t =
  let protocol = match protocol with Some p -> p | None -> default_protocol () in
  let outcome = protocol.Protocol.run rng ~universe s t in
  ( { current = s; candidate = outcome.Protocol.alice },
    { current = t; candidate = outcome.Protocol.bob },
    outcome.Protocol.cost )

let validate_update ~universe state { inserts; deletes } =
  Protocol.validate_inputs ~universe inserts deletes;
  if Array.length (Iset.inter inserts deletes) > 0 then
    invalid_arg "Incremental.sync: inserts and deletes overlap";
  if not (Iset.subset deletes state.current) then
    invalid_arg "Incremental.sync: deleting absent elements";
  if Array.length (Iset.inter inserts state.current) > 0 then
    invalid_arg "Incremental.sync: inserting present elements"

(* One side of the sync session.  Message flow (Alice = [`Alice]):
     1. A -> B : tag lists of A's deletes and inserts
     2. B -> A : B's tag lists + bitmap telling A which of her inserts are
                 in B's updated set
     3. A -> B : the mirror bitmap for B's inserts
     4-5.       : equality certification of the updated candidates
     6...       : full re-run, only if certification failed. *)
let sync_party role rng ~universe ~batch state update chan =
  let open Commsim.Transport in
  let new_current = Iset.union (Iset.diff state.current update.deletes) update.inserts in
  (* simultaneous size exchange: the tag width must be agreed, and it
     depends on both sides' sizes (as in Lemma 3.3) *)
  Obsv.Trace.span Obsv.Phases.app_sync (fun () ->
      chan.send (Wire.gamma_msg (Iset.cardinal new_current)));
  let their_size = Wire.read_gamma_msg (chan.recv ()) in
  let bits =
    Basic_intersection.tag_bits
      ~m:(Iset.cardinal new_current + their_size + 2)
      ~failure:1e-9
  in
  let fn =
    Strhash.create (Prng.Rng.with_label rng (Printf.sprintf "inc/batch%d" batch)) ~bits
  in
  let tag_key x = Bitio.Bits.key (Strhash.apply_int fn x) in
  let my_tags =
    let table = Hashtbl.create (Iset.cardinal new_current) in
    Array.iter (fun x -> Hashtbl.replace table (tag_key x) ()) new_current;
    table
  in
  let delta_message () =
    let buf = Bitio.Bitbuf.create () in
    Bitio.Codes.write_gamma buf (Iset.cardinal update.deletes);
    Basic_intersection.write_tags buf fn update.deletes;
    Bitio.Codes.write_gamma buf (Iset.cardinal update.inserts);
    Basic_intersection.write_tags buf fn update.inserts;
    Bitio.Bitbuf.contents buf
  in
  (* [their_insert_keys] keeps arrival order for the bitmap reply. *)
  let parse_deltas reader =
    let deletes = Basic_intersection.read_tag_keys reader ~bits ~count:(Bitio.Codes.read_gamma reader) in
    let insert_count = Bitio.Codes.read_gamma reader in
    let insert_keys =
      Array.init insert_count (fun _ ->
          Bitio.Bits.key (Bitio.Bitreader.read_blob reader ~bits))
    in
    (deletes, insert_keys)
  in
  let membership_bitmap insert_keys =
    Wire.bitmap_msg (Array.map (fun key -> Hashtbl.mem my_tags key) insert_keys)
  in
  let their_deletes, their_insert_keys, my_insert_bitmap =
    match role with
    | `Alice ->
        Obsv.Trace.span Obsv.Phases.app_sync (fun () -> chan.send (delta_message ()));
        let reader = Bitio.Bitreader.create (chan.recv ()) in
        let deletes, insert_keys = parse_deltas reader in
        let bitmap =
          Array.init (Iset.cardinal update.inserts) (fun _ -> Bitio.Bitreader.read_bit reader)
        in
        Obsv.Trace.span Obsv.Phases.app_sync (fun () -> chan.send (membership_bitmap insert_keys));
        (deletes, insert_keys, bitmap)
    | `Bob ->
        let reader = Bitio.Bitreader.create (chan.recv ()) in
        let deletes, insert_keys = parse_deltas reader in
        let buf = Bitio.Bitbuf.create () in
        Bitio.Bitbuf.append buf (delta_message ());
        Bitio.Bitbuf.append buf (membership_bitmap insert_keys);
        Obsv.Trace.span Obsv.Phases.app_sync (fun () -> chan.send (Bitio.Bitbuf.contents buf));
        let bitmap =
          Wire.read_bitmap_msg (chan.recv ()) ~width:(Iset.cardinal update.inserts)
        in
        (deletes, insert_keys, bitmap)
  in
  let their_inserts = Hashtbl.create 16 in
  Array.iter (fun key -> Hashtbl.replace their_inserts key ()) their_insert_keys;
  (* survivors: my own deletes leave exactly; their deletes leave by tag *)
  let survivors =
    Iset.filter
      (fun x -> not (Hashtbl.mem their_deletes (tag_key x)))
      (Iset.diff state.candidate update.deletes)
  in
  (* joiners: my elements matching their fresh inserts, plus my inserts the
     other side confirmed (covers their pre-existing elements too) *)
  let joins_from_their_inserts = Basic_intersection.filter_by_tags fn their_inserts new_current in
  let confirmed_inserts =
    Array.to_list update.inserts
    |> List.filteri (fun i _ -> my_insert_bitmap.(i))
    |> Array.of_list
  in
  let candidate = Iset.union_many [ survivors; joins_from_their_inserts; confirmed_inserts ] in
  (* certification; on failure, repair with a full in-session run *)
  let eq_rng = Prng.Rng.with_label rng (Printf.sprintf "inc/certify%d" batch) in
  let agree =
    match role with
    | `Alice -> Equality.run_alice_set eq_rng ~bits:64 chan candidate
    | `Bob -> Equality.run_bob_set eq_rng ~bits:64 chan candidate
  in
  let candidate =
    if agree then candidate
    else begin
      let repair_rng = Prng.Rng.with_label rng (Printf.sprintf "inc/repair%d" batch) in
      let k = max 1 (Iset.cardinal new_current) in
      Tree_protocol.run_party role repair_rng ~universe ~r:(max 1 (Iterated_log.log_star k)) ~k
        chan new_current
    end
  in
  { current = new_current; candidate }

let sync rng ~universe ~batch alice bob ~alice_update ~bob_update =
  validate_update ~universe alice alice_update;
  validate_update ~universe bob bob_update;
  let batch_rng = Prng.Rng.with_label rng (Printf.sprintf "inc/sync%d" batch) in
  let (alice_state, bob_state), cost =
    Commsim.Two_party.run
      ~alice:(sync_party `Alice batch_rng ~universe ~batch alice alice_update)
      ~bob:(sync_party `Bob batch_rng ~universe ~batch bob bob_update)
  in
  (alice_state, bob_state, cost)
