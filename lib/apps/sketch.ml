open Intersect

(* Sketch = the [size] smallest 48-bit images, kept sorted ascending.
   [complete] records that nothing was truncated, making estimates exact. *)
type t = { values : int array; complete : bool }

let hash_bits = 48

let int_of_tag tag =
  Bitio.Bits.extract tag ~pos:0 ~width:24 lor (Bitio.Bits.extract tag ~pos:24 ~width:24 lsl 24)

let create rng ~size set =
  if size < 1 then invalid_arg "Sketch.create: size";
  let fn = Strhash.create (Prng.Rng.with_label rng "sketch/hash") ~bits:hash_bits in
  let images = Array.map (fun x -> int_of_tag (Strhash.apply_int fn x)) set in
  Array.sort compare images;
  (* collisions between distinct elements are ~k^2/2^48 and only bias the
     estimate, never break it *)
  let distinct = Iset.of_array images in
  {
    values = Array.sub distinct 0 (min size (Array.length distinct));
    complete = Array.length distinct <= size;
  }

let cardinal t = Array.length t.values

let encode t =
  let buf = Bitio.Bitbuf.create () in
  Bitio.Bitbuf.write_bit buf t.complete;
  Bitio.Set_codec.write_gaps buf t.values;
  Bitio.Bitbuf.contents buf

let decode payload =
  let reader = Bitio.Bitreader.create payload in
  let complete = Bitio.Bitreader.read_bit reader in
  { values = Bitio.Set_codec.read_gaps reader; complete }

let estimate ~size_a ~size_b a b =
  if size_a = 0 || size_b = 0 then (0.0, 0.0)
  else if a.complete && b.complete then begin
    (* nothing truncated: the sketches are the full image sets *)
    let shared = Array.length (Iset.inter a.values b.values) in
    let union = Array.length (Iset.union a.values b.values) in
    (float_of_int shared /. float_of_int union, float_of_int shared)
  end
  else begin
    let k = max 1 (min (cardinal a) (cardinal b)) in
    let union = Iset.union a.values b.values in
    let merged = Array.sub union 0 (min k (Array.length union)) in
    let shared =
      Array.fold_left
        (fun acc v -> if Iset.mem a.values v && Iset.mem b.values v then acc + 1 else acc)
        0 merged
    in
    let j = float_of_int shared /. float_of_int (Array.length merged) in
    let intersection = j /. (1.0 +. j) *. float_of_int (size_a + size_b) in
    (j, intersection)
  end

let exchange rng ~sketch_size s t =
  let message mine =
    let sketch = create rng ~size:sketch_size mine in
    let buf = Bitio.Bitbuf.create () in
    Bitio.Codes.write_gamma buf (Array.length mine);
    Bitio.Bitbuf.append buf (encode sketch);
    (sketch, Bitio.Bitbuf.contents buf)
  in
  let parse payload =
    let reader = Bitio.Bitreader.create payload in
    let size = Bitio.Codes.read_gamma reader in
    let complete = Bitio.Bitreader.read_bit reader in
    let values = Bitio.Set_codec.read_gaps reader in
    (size, { values; complete })
  in
  let party mine chan =
    let my_sketch, my_message = message mine in
    Obsv.Trace.span Obsv.Phases.app_sketch (fun () -> Commsim.Transport.send chan my_message);
    let their_size, their_sketch = parse (Commsim.Transport.recv chan) in
    estimate ~size_a:(Array.length mine) ~size_b:their_size my_sketch their_sketch
  in
  let (estimate_a, estimate_b), cost = Commsim.Two_party.run ~alice:(party s) ~bob:(party t) in
  (* both directions compute the same merged statistic up to the role swap
     of the size arguments, which is symmetric *)
  assert (estimate_a = estimate_b);
  (estimate_a, cost)
