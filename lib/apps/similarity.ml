open Intersect

type result = {
  intersection : Iset.t;
  intersection_size : int;
  union_size : int;
  distinct : int;
  jaccard : float;
  hamming : int;
  rarity1 : float;
  rarity2 : float;
  cost : Commsim.Cost.t;
}

let default_protocol () = Verified.protocol (Tree_protocol.protocol_log_star ())

let exchange_sizes s t =
  Commsim.Two_party.run
    ~alice:(fun chan ->
      Obsv.Trace.span Obsv.Phases.app_similarity (fun () ->
          Commsim.Transport.send chan (Wire.gamma_msg (Array.length s)));
      Wire.read_gamma_msg (Commsim.Transport.recv chan))
    ~bob:(fun chan ->
      Obsv.Trace.span Obsv.Phases.app_similarity (fun () ->
          Commsim.Transport.send chan (Wire.gamma_msg (Array.length t)));
      Wire.read_gamma_msg (Commsim.Transport.recv chan))

let run ?protocol rng ~universe s t =
  let protocol = match protocol with Some p -> p | None -> default_protocol () in
  let outcome = protocol.Protocol.run rng ~universe s t in
  (* Size exchange: both messages are independent, one round. *)
  let (_t_size_at_alice, _s_size_at_bob), size_cost = exchange_sizes s t in
  let cost = Commsim.Cost.add_seq outcome.Protocol.cost size_cost in
  let intersection = outcome.Protocol.alice in
  let intersection_size = Iset.cardinal intersection in
  let union_size = Array.length s + Array.length t - intersection_size in
  let jaccard =
    if union_size = 0 then 1.0 else float_of_int intersection_size /. float_of_int union_size
  in
  let hamming = union_size - intersection_size in
  let rarity1 =
    if union_size = 0 then 0.0
    else float_of_int (union_size - intersection_size) /. float_of_int union_size
  in
  let rarity2 =
    if union_size = 0 then 0.0 else float_of_int intersection_size /. float_of_int union_size
  in
  {
    intersection;
    intersection_size;
    union_size;
    distinct = union_size;
    jaccard;
    hamming;
    rarity1;
    rarity2;
    cost;
  }
