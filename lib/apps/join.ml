open Intersect

type row = { key : int; payload : string }

type joined = { key : int; left : string; right : string }

let write_string buf s =
  Bitio.Codes.write_varint buf (String.length s);
  String.iter (fun c -> Bitio.Bitbuf.write_bits buf ~width:8 (Char.code c)) s

let read_string reader =
  let len = Bitio.Codes.read_varint reader in
  String.init len (fun _ -> Char.chr (Bitio.Bitreader.read_bits reader ~width:8))

let key_set table =
  let keys = Iset.of_array (Array.map (fun (row : row) -> row.key) table) in
  if Array.length keys <> Array.length table then invalid_arg "Join.run: duplicate keys";
  keys

let payloads_by_key table =
  let by_key = Hashtbl.create (Array.length table) in
  Array.iter (fun (row : row) -> Hashtbl.replace by_key row.key row.payload) table;
  by_key

(* Ship the payloads of the matched rows: the candidate key set (gap-coded,
   self-describing so a rare candidate mismatch cannot desynchronize the
   streams) followed by payloads in key order. *)
let matches_message table candidate =
  let by_key = payloads_by_key table in
  let buf = Bitio.Bitbuf.create () in
  Bitio.Set_codec.write_gaps buf candidate;
  Array.iter (fun key -> write_string buf (Hashtbl.find by_key key)) candidate;
  Bitio.Bitbuf.contents buf

let read_matches payload =
  let reader = Bitio.Bitreader.create payload in
  let keys = Bitio.Set_codec.read_gaps reader in
  let payloads = Array.map (fun _ -> read_string reader) keys in
  (keys, payloads)

let default_protocol () = Verified.protocol (Tree_protocol.protocol_log_star ())

let run ?protocol rng ~universe ~left ~right =
  let protocol = match protocol with Some p -> p | None -> default_protocol () in
  let keys_left = key_set left and keys_right = key_set right in
  let outcome = protocol.Protocol.run rng ~universe keys_left keys_right in
  let join_against mine their_keys their_payloads candidate =
    let theirs = Hashtbl.create (Array.length their_keys) in
    Array.iteri (fun i key -> Hashtbl.replace theirs key their_payloads.(i)) their_keys;
    let by_key = payloads_by_key mine in
    Array.to_list candidate
    |> List.filter_map (fun key ->
           match (Hashtbl.find_opt by_key key, Hashtbl.find_opt theirs key) with
           | Some my_payload, Some their_payload -> Some (key, my_payload, their_payload)
           | _ -> None)
  in
  let (alice_join, bob_join), exchange_cost =
    Commsim.Two_party.run
      ~alice:(fun chan ->
        Obsv.Trace.span Obsv.Phases.app_join (fun () ->
            Commsim.Transport.send chan (matches_message left outcome.Protocol.alice));
        let their_keys, their_payloads = read_matches (Commsim.Transport.recv chan) in
        join_against left their_keys their_payloads outcome.Protocol.alice
        |> List.map (fun (key, mine, theirs) -> { key; left = mine; right = theirs }))
      ~bob:(fun chan ->
        let payload = Commsim.Transport.recv chan in
        Obsv.Trace.span Obsv.Phases.app_join (fun () ->
            Commsim.Transport.send chan (matches_message right outcome.Protocol.bob));
        let their_keys, their_payloads = read_matches payload in
        join_against right their_keys their_payloads outcome.Protocol.bob
        |> List.map (fun (key, mine, theirs) -> { key; left = theirs; right = mine }))
  in
  assert (alice_join = bob_join);
  (alice_join, Commsim.Cost.add_seq outcome.Protocol.cost exchange_cost)
