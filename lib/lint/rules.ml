open Parsetree

let catalogue =
  [
    ("syntax", "source file must parse with the project's compiler front end");
    ("R1", "determinism: no ambient randomness or wall-clock reads outside lib/prng");
    ("R2", "ambient state: no top-level mutable globals outside lib/obsv");
    ("R3", "phase registry: string literals passed to Trace.span must be in Obsv.Phases");
    ("R4", "domain hygiene: Domain.spawn/Domain.DLS only in lib/engine and lib/obsv");
    ("R5", "interface coverage: every lib/**.ml has a matching .mli");
    ("R6", "flight recorder: Obsv.Recorder.event written only from lib/session and lib/obsv");
    ("R7", "determinism taint (typed): nothing reachable from party code reads ambient state");
    ("R8", "metered transport (typed): every Transport send/recv runs under a Trace.span");
    ("R9", "cross-domain escape (typed): no module-global or spawn-captured mutable values");
    ("R10", "phase registry, reverse (typed): no dead Obsv.Phases constants");
  ]

let rule_ids = List.map fst catalogue

(* The long-form story behind each rule, for `intersect_lint --explain`.
   The one-liners above say what fires; these say why the invariant
   exists and what the sanctioned alternative is. *)
let explain id =
  match id with
  | "syntax" ->
      Some
        "Every scanned .ml/.mli must parse with the project's own compiler front end. A file \
         the linter cannot read is a file no rule protects."
  | "R1" ->
      Some
        "Syntactic determinism: direct references to ambient Random, wall clocks \
         (Unix.gettimeofday, Sys.time) or unseeded runtime hashing are flagged at the use \
         site. Trial results must be a pure function of the seed so conformance gates and \
         byte-identical replay hold; randomness is threaded as Prng.Rng values from \
         lib/prng, time comes from the trace's event clock."
  | "R2" ->
      Some
        "Syntactic ambient state: top-level `ref`, Atomic.make, Hashtbl/Queue/Stack/Buffer \
         .create outside lib/obsv are flagged. Module-global mutable state is shared by \
         every domain and every trial; state is passed explicitly or kept behind Obsv's \
         domain-local wrappers. (R9 is the typed generalisation by type, not constructor.)"
  | "R3" ->
      Some
        "Phase registry, forward direction: a string literal passed to Trace.span must be a \
         registered Obsv.Phases constant, so profile bits cannot land in a typo'd bucket. \
         R10 checks the reverse direction."
  | "R4" ->
      Some
        "Domain hygiene: Domain.spawn and Domain.DLS appear only in lib/engine (the pool) \
         and lib/obsv (ambient collectors). Everything else receives parallelism through \
         Engine.Pool so determinism contracts (byte-identical at any domain count) are \
         enforced in one place."
  | "R5" ->
      Some
        "Interface coverage: every lib/**.ml has a matching .mli. Abstraction boundaries \
         keep refactors safe at scale and make the public surface reviewable."
  | "R6" ->
      Some
        "Flight recorder: Obsv.Recorder.event is written only from lib/session and lib/obsv \
         so a post-mortem is a trustworthy account of what the session machine did, not a \
         mix of narrators. Reading (create/events/post_mortem_json) is open to everyone."
  | "R7" ->
      Some
        "Typed determinism taint: the call graph over all .cmt files is walked forward from \
         every binding in party code (lib/core, lib/multiparty, lib/apps, lib/session). Any \
         reachable binding that references Random.*, a wall clock, or unseeded hashing is \
         flagged with the offending call chain — closing the helper-wraps-Random hole \
         syntactic R1 cannot see. Paths into lib/prng and the engine's seed stream are the \
         sanctioned route and stop the walk."
  | "R8" ->
      Some
        "Typed metered-transport accounting: every Commsim.Transport send/recv site (direct \
         call or send/recv field projection from the transport record, through aliases) in \
         protocol code must be dominated by a span-opening binding on every in-scope caller \
         path. Otherwise some bits cross the wire while no phase is open and per-phase \
         ledgers stop summing to Cost.total_bits. The finding carries an unattributed entry \
         path as the witness."
  | "R9" ->
      Some
        "Typed cross-domain escape: a value whose type carries mutable state (ref, array, \
         bytes, Hashtbl/Buffer/Queue/Stack, or any record with a mutable field, resolved \
         through type aliases) may not sit at module scope or be captured by a Domain.spawn \
         closure. This is the rule that catches the PR-5 Splitmix64 shared-scratch record — \
         a mutable-record literal R2's constructor list is blind to. Atomic.t, \
         Domain.DLS.key and the runtime locks are sanctioned; lib/engine's pool and \
         lib/obsv's collectors are the structural homes."
  | "R10" ->
      Some
        "Phase registry, reverse direction: an Obsv.Phases constant that no span call site \
         uses and nothing outside the registry references is a dead phase — a ledger bucket \
         the profiler promises but no bits can ever land in. Drop it or span it."
  | _ -> None

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let ends_with ~suffix s =
  String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix

(* Structural scopes: these exemptions define the rule (the sanctioned
   homes of randomness, ambient state, and domains), as opposed to
   allowlist entries, which record case-by-case exceptions. *)
let exempt ~file rule =
  match rule with
  | "R1" -> starts_with ~prefix:"lib/prng/" file || starts_with ~prefix:"lib/engine/seed_stream." file
  | "R2" -> starts_with ~prefix:"lib/obsv/" file
  | "R4" -> starts_with ~prefix:"lib/engine/" file || starts_with ~prefix:"lib/obsv/" file
  | "R6" -> starts_with ~prefix:"lib/session/" file || starts_with ~prefix:"lib/obsv/" file
  | _ -> false

let finding ~rule ~file (loc : Location.t) message =
  let p = loc.loc_start in
  Finding.v ~rule ~file ~line:p.pos_lnum ~col:(p.pos_cnum - p.pos_bol) message

(* Identifier paths, with a leading Stdlib. qualifier stripped so
   Stdlib.Random.int and Random.int are the same offense. *)
let norm parts = match parts with "Stdlib" :: (_ :: _ as rest) -> rest | parts -> parts

let r1_ident parts =
  match parts with
  | "Random" :: _ ->
      Some "ambient Random breaks seeded replay; thread a Prng.Rng (or Engine.Seed_stream) instead"
  | [ "Unix"; ("time" | "gettimeofday") ] | [ "Sys"; "time" ] ->
      Some "wall-clock reads are nondeterministic; use the trace's event clock, or allowlist bench-only timing"
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param" | "randomize") ] ->
      Some "runtime polymorphic hashing is unseeded; use a lib/hashing family keyed by Prng.Rng"
  | _ -> None

let r4_ident parts =
  match parts with
  | "Domain" :: ("spawn" | "DLS") :: _ ->
      Some "parallelism and domain-local state belong to lib/engine (Pool) and lib/obsv (ambient collectors)"
  | _ -> None

(* Reading a recorder (create / events / post_mortem_json) is open to
   everyone; *writing* events is reserved for the session layer so a
   post-mortem is a trustworthy account of what the session machine did,
   not a mix of narrators. *)
let r6_ident parts =
  match parts with
  | [ "Recorder"; "event" ] | [ "Obsv"; "Recorder"; "event" ] ->
      Some
        "flight-recorder events are the session layer's narration; record domain events in \
         lib/session (or harvest them via post_mortem_json) instead of writing directly"
  | _ -> None

let is_span_path parts =
  match parts with [ "Trace"; "span" ] | [ "Obsv"; "Trace"; "span" ] -> true | _ -> false

(* R1/R3/R4 are expression-level rules walked over the whole AST. *)
let check_expressions ~registry ~file structure =
  let acc = ref [] in
  let add ~rule loc msg = if not (exempt ~file rule) then acc := finding ~rule ~file loc msg :: !acc in
  let ident_path e = match e.pexp_desc with Pexp_ident { txt; _ } -> Some (norm (Longident.flatten txt)) | _ -> None in
  let check_ident loc parts =
    let path = String.concat "." parts in
    (match r1_ident parts with
    | Some why -> add ~rule:"R1" loc (Printf.sprintf "%s: %s" path why)
    | None -> ());
    (match r4_ident parts with
    | Some why -> add ~rule:"R4" loc (Printf.sprintf "%s: %s" path why)
    | None -> ());
    match r6_ident parts with
    | Some why -> add ~rule:"R6" loc (Printf.sprintf "%s: %s" path why)
    | None -> ()
  in
  let check_apply fn args =
    match ident_path fn with
    | Some [ "Hashtbl"; "create" ] ->
        List.iter
          (fun (label, (arg : expression)) ->
            match (label, arg.pexp_desc) with
            | ( (Asttypes.Labelled "random" | Asttypes.Optional "random"),
                Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) ) ->
                ()
            | (Asttypes.Labelled "random" | Asttypes.Optional "random"), _ ->
                add ~rule:"R1" arg.pexp_loc
                  "Hashtbl.create ~random uses the runtime's random seed; iteration order would differ per run"
            | _ -> ())
          args
    | Some parts when is_span_path parts -> (
        match List.find_opt (fun (label, _) -> label = Asttypes.Nolabel) args with
        | Some (_, { pexp_desc = Pexp_constant (Pconst_string (name, _, _)); pexp_loc; _ }) ->
            if not (registry name) then
              add ~rule:"R3" pexp_loc
                (Printf.sprintf
                   "span name %S is not registered; add it to Obsv.Phases (or use its constant) so \
                    profile bits cannot land in a typo'd bucket"
                   name)
        | _ -> ())
    | _ -> ()
  in
  let expr self (e : expression) =
    (match e.pexp_desc with
    | Pexp_apply (fn, args) -> check_apply fn args
    | Pexp_ident { txt; _ } -> check_ident e.pexp_loc (norm (Longident.flatten txt))
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  (* `open Random` (top-level or `let open`) defeats the qualified-path
     check, so the open itself is the finding. *)
  let open_declaration self (od : open_declaration) =
    (match od.popen_expr.pmod_desc with
    | Pmod_ident { txt; _ } -> (
        match norm (Longident.flatten txt) with
        | "Random" :: _ ->
            add ~rule:"R1" od.popen_loc "opening Random makes every unqualified draw nondeterministic"
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.open_declaration self od
  in
  let it = { Ast_iterator.default_iterator with expr; open_declaration } in
  it.structure it structure;
  !acc

(* R2: mutable state constructed at module top level (not inside any
   function), including under `lazy` and nested structures. *)
let rec r2_ctor e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_lazy e -> r2_ctor e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match norm (Longident.flatten txt) with
      | [ "ref" ] -> Some "ref"
      | [ ("Atomic" as m); "make" ] | [ (("Hashtbl" | "Queue" | "Stack" | "Buffer") as m); "create" ] ->
          Some (m ^ (if m = "Atomic" then ".make" else ".create"))
      | _ -> None)
  | _ -> None

let check_toplevel_state ~file structure =
  if exempt ~file "R2" then []
  else
    let acc = ref [] in
    let rec walk_module_expr (me : module_expr) =
      match me.pmod_desc with
      | Pmod_structure items -> walk_items items
      | Pmod_constraint (me, _) -> walk_module_expr me
      | _ -> ()
    and walk_items items =
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, bindings) ->
              List.iter
                (fun vb ->
                  match r2_ctor vb.pvb_expr with
                  | Some ctor ->
                      acc :=
                        finding ~rule:"R2" ~file vb.pvb_loc
                          (Printf.sprintf
                             "top-level %s is ambient mutable state; keep it behind Obsv's \
                              Domain-local wrappers or pass it explicitly"
                             ctor)
                        :: !acc
                  | None -> ())
                bindings
          | Pstr_module { pmb_expr; _ } -> walk_module_expr pmb_expr
          | Pstr_recmodule bindings -> List.iter (fun mb -> walk_module_expr mb.pmb_expr) bindings
          | Pstr_include { pincl_mod; _ } -> walk_module_expr pincl_mod
          | _ -> ())
        items
    in
    walk_items structure;
    !acc

let check_structure ~registry ~file structure =
  check_expressions ~registry ~file structure @ check_toplevel_state ~file structure

let check_mli_coverage ~files =
  let have = List.filter (ends_with ~suffix:".mli") files in
  files
  |> List.filter (fun f -> starts_with ~prefix:"lib/" f && ends_with ~suffix:".ml" f)
  |> List.filter_map (fun f ->
         if List.mem (f ^ "i") have then None
         else
           Some
             (Finding.v ~rule:"R5" ~file:f ~line:1 ~col:0
                (Printf.sprintf
                   "library module has no interface: expected %si (abstraction boundaries keep \
                    refactors safe at scale)"
                   f)))
