(* Semantic dataflow rules over the call graph.

   R7 (determinism taint): anything transitively reachable from protocol
   party code must stay away from ambient-nondeterminism primitives.
   The syntactic R1 flags a direct [Random.int] at its use site; R7
   closes the wrapper hole — a helper that launders randomness through
   an allowlisted or out-of-the-way module is caught the moment party
   code can reach it, with the offending call chain in the message.

   R8 (metered-transport accounting): every transport send/recv site in
   protocol code must be dominated by a span-opening binding on every
   path from an entry point, so the per-phase bit ledgers provably sum
   to [Cost.total_bits] — no bits can flow while no phase is open. *)

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* Ambient-nondeterminism sinks, canonical spelling, mirroring the
   syntactic R1 list. *)
let default_sinks path =
  starts_with ~prefix:"Stdlib.Random." path
  || List.mem path
       [
         "Unix.time";
         "Unix.gettimeofday";
         "Stdlib.Sys.time";
         "Stdlib.Hashtbl.hash";
         "Stdlib.Hashtbl.seeded_hash";
         "Stdlib.Hashtbl.hash_param";
         "Stdlib.Hashtbl.randomize";
       ]

let fmt_chain chain = String.concat " -> " chain

(* --- R7 ---------------------------------------------------------------- *)

let determinism g ~is_party ~is_sanctioned ~sinks =
  let file_of n =
    match Callgraph.binding g n with Some b -> b.Cmt_load.bfile | None -> ""
  in
  let roots =
    List.filter (fun n -> is_party (file_of n)) (Callgraph.names g)
  in
  let skip n = is_sanctioned (file_of n) in
  let parent = Callgraph.reach_fwd g ~skip roots in
  let findings = ref [] in
  List.iter
    (fun n ->
      if Hashtbl.mem parent n && not (is_party (file_of n)) then
        match Callgraph.binding g n with
        | None -> ()
        | Some b ->
            (* One finding per distinct sink per binding, at its first
               occurrence. *)
            let seen = Hashtbl.create 4 in
            List.iter
              (fun (u : Cmt_load.use) ->
                if sinks u.upath && not (Hashtbl.mem seen u.upath) then begin
                  Hashtbl.replace seen u.upath ();
                  let chain = Callgraph.chain parent n in
                  findings :=
                    Finding.v ~rule:"R7" ~file:b.bfile ~line:u.uline ~col:u.ucol
                      (Printf.sprintf
                         "%s is reachable from party code (%s): seeded replay breaks if any \
                          reachable helper reads ambient state; thread a Prng.Rng instead"
                         u.upath (fmt_chain chain))
                    :: !findings
                end)
              b.uses)
    (Callgraph.names g);
  !findings

(* --- R8 ---------------------------------------------------------------- *)

(* A binding "attributes" bits if its body opens a span: every transport
   op it (transitively, without leaving attributed scope) performs lands
   in that span's phase ledger. *)
let opens_span ~span_fns (b : Cmt_load.binding) =
  List.exists (fun (c : Cmt_load.call) -> List.mem c.Cmt_load.fn span_fns) b.calls

(* Transport op sites inside one binding: direct calls to the transport
   functions plus field projections (send/recv closures) from a record
   type that resolves to the transport type. *)
let op_sites ~types ~transport_fns ~transport_types ~transport_labels (b : Cmt_load.binding) =
  let calls =
    List.filter_map
      (fun (c : Cmt_load.call) ->
        if List.mem c.Cmt_load.fn transport_fns then Some (c.Cmt_load.fn, c.cline, c.ccol)
        else None)
      b.calls
  in
  let fields =
    List.filter_map
      (fun (f : Cmt_load.field_use) ->
        if
          List.mem f.Cmt_load.flabel transport_labels
          && List.mem (Cmt_load.resolve_alias types f.Cmt_load.ftype) transport_types
        then Some (f.Cmt_load.ftype ^ "." ^ f.Cmt_load.flabel, f.fline, f.fcol)
        else None)
      b.field_uses
  in
  List.sort compare (calls @ fields)

let metering g ~types ~in_scope ~transport_fns ~transport_types ~transport_labels ~span_fns =
  let file_of n =
    match Callgraph.binding g n with Some b -> b.Cmt_load.bfile | None -> ""
  in
  let attributing n =
    match Callgraph.binding g n with Some b -> opens_span ~span_fns b | None -> false
  in
  let in_scope_node n = in_scope (file_of n) in
  let findings = ref [] in
  List.iter
    (fun n ->
      match Callgraph.binding g n with
      | None -> ()
      | Some b when not (in_scope b.bfile) -> ()
      | Some b -> (
          match op_sites ~types ~transport_fns ~transport_types ~transport_labels b with
          | [] -> ()
          | (op, line, col) :: _ ->
              if not (attributing n) then begin
                (* Walk callers backwards, never through a span-opening
                   binding and never outside scope.  If an entry node —
                   one with no in-scope callers — is reachable, there is
                   a path on which these bits hit the wire with no phase
                   open. *)
                let skip m = (m <> n && attributing m) || not (in_scope_node m) in
                let parent = Callgraph.reach_bwd g ~skip [ n ] in
                let entries =
                  Hashtbl.fold
                    (fun m _ acc ->
                      let callers = List.filter in_scope_node (Callgraph.preds g m) in
                      if callers = [] then m :: acc else acc)
                    parent []
                  |> List.sort String.compare
                in
                match entries with
                | [] -> ()
                | entry :: _ ->
                    let chain = List.rev (Callgraph.chain parent entry) in
                    findings :=
                      Finding.v ~rule:"R8" ~file:b.bfile ~line ~col
                        (Printf.sprintf
                           "%s runs with no enclosing Trace.span on the path %s: these bits \
                            escape the phase ledger, so profiles no longer sum to \
                            Cost.total_bits"
                           op (fmt_chain chain))
                      :: !findings
              end))
    (Callgraph.names g);
  !findings
