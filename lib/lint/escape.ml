(* R9: cross-domain escape analysis.

   Two ways mutable state leaks across domain boundaries:

   - module-global scope: a top-level binding whose *type* carries
     mutable state (ref / array / bytes / Hashtbl / Buffer / a record
     with mutable fields, through any chain of aliases) is reachable
     from every domain at once.  The syntactic R2 only recognises a
     fixed list of constructor applications ([ref e], [Hashtbl.create
     n], ...); judging by type instead catches what it cannot see —
     mutable-record literals like the pre-fix [Splitmix64] scratch
     record, [Array.make] results, values returned by arbitrary
     constructors.  Bindings R2 already flags are skipped here so one
     offense carries one rule id.

   - [Domain.spawn] closures: a free variable of mutable type captured
     by the spawned thunk is shared writable state between the parent
     and the child domain — exactly the shape of the PR-5 scratch-record
     race.  [Atomic.t], [Domain.DLS.key] and the runtime's locks are
     the sanctioned sharing vehicles and are not flagged. *)

let offending_heads ~types heads =
  heads
  |> List.filter (fun h ->
         Cmt_load.is_mutable_type types h && not (Cmt_load.is_cross_domain_safe types h))

let check g ~types ~exempt_global ~exempt_capture =
  let findings = ref [] in
  List.iter
    (fun (b : Cmt_load.binding) ->
      (* (a) module-global mutable state, judged by type head. *)
      if (not (exempt_global b.bfile)) && not b.r2_ctor then begin
        match offending_heads ~types b.top_heads with
        | [] -> ()
        | h :: _ ->
            findings :=
              Finding.v ~rule:"R9" ~file:b.bfile ~line:b.bline ~col:b.bcol
                (Printf.sprintf
                   "%s has mutable type %s at module scope: every domain shares one instance \
                    (the Splitmix64 scratch-record race); allocate per call or per domain"
                   b.name
                   (Cmt_load.resolve_alias types h))
              :: !findings
      end;
      (* (b) mutable values captured by Domain.spawn closures. *)
      if not (exempt_capture b.bfile) then begin
        let seen = Hashtbl.create 4 in
        List.iter
          (fun (c : Cmt_load.capture) ->
            if not (Hashtbl.mem seen c.Cmt_load.cvar) then
              match offending_heads ~types c.cheads with
              | [] -> ()
              | h :: _ ->
                  Hashtbl.replace seen c.cvar ();
                  findings :=
                    Finding.v ~rule:"R9" ~file:b.bfile ~line:c.kline ~col:c.kcol
                      (Printf.sprintf
                         "%s (%s) is captured by a Domain.spawn closure: parent and child \
                          share writable state; hand the child its own copy, or an Atomic / \
                          DLS slot"
                         c.cvar
                         (Cmt_load.resolve_alias types h))
                    :: !findings)
          b.captures
      end)
    (Callgraph.bindings g);
  !findings
