type t = { rule : string; file : string; line : int; col : int; message : string }

let v ~rule ~file ~line ~col message = { rule; file; line; col; message }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let to_line f = Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let json f =
  Stats.Json.Obj
    [
      ("rule", Stats.Json.Str f.rule);
      ("file", Stats.Json.Str f.file);
      ("line", Stats.Json.Int f.line);
      ("col", Stats.Json.Int f.col);
      ("message", Stats.Json.Str f.message);
    ]

let report_json ~files ~typed_modules findings =
  let findings = List.sort compare findings in
  Stats.Json.Obj
    [
      ("tool", Stats.Json.Str "intersect-lint");
      ("files", Stats.Json.Int files);
      ("typed_modules", Stats.Json.Int typed_modules);
      ("count", Stats.Json.Int (List.length findings));
      ("findings", Stats.Json.List (List.map json findings));
    ]

(* Minimal SARIF 2.1.0: one run, the rule catalogue as the driver's
   rule metadata, one result per finding.  Columns are 1-based in
   SARIF, 0-based in our findings. *)
let sarif_result f =
  Stats.Json.Obj
    [
      ("ruleId", Stats.Json.Str f.rule);
      ("level", Stats.Json.Str "error");
      ("message", Stats.Json.Obj [ ("text", Stats.Json.Str f.message) ]);
      ( "locations",
        Stats.Json.List
          [
            Stats.Json.Obj
              [
                ( "physicalLocation",
                  Stats.Json.Obj
                    [
                      ( "artifactLocation",
                        Stats.Json.Obj [ ("uri", Stats.Json.Str f.file) ] );
                      ( "region",
                        Stats.Json.Obj
                          [
                            ("startLine", Stats.Json.Int f.line);
                            ("startColumn", Stats.Json.Int (f.col + 1));
                          ] );
                    ] );
              ];
          ] );
    ]

let sarif_json ~rules ~files ~typed_modules findings =
  let findings = List.sort compare findings in
  let rule_meta (id, descr) =
    Stats.Json.Obj
      [
        ("id", Stats.Json.Str id);
        ("shortDescription", Stats.Json.Obj [ ("text", Stats.Json.Str descr) ]);
      ]
  in
  Stats.Json.Obj
    [
      ("version", Stats.Json.Str "2.1.0");
      ("$schema", Stats.Json.Str "https://json.schemastore.org/sarif-2.1.0.json");
      ( "runs",
        Stats.Json.List
          [
            Stats.Json.Obj
              [
                ( "tool",
                  Stats.Json.Obj
                    [
                      ( "driver",
                        Stats.Json.Obj
                          [
                            ("name", Stats.Json.Str "intersect-lint");
                            ("rules", Stats.Json.List (List.map rule_meta rules));
                          ] );
                    ] );
                ( "properties",
                  Stats.Json.Obj
                    [
                      ("files", Stats.Json.Int files);
                      ("typed_modules", Stats.Json.Int typed_modules);
                    ] );
                ("results", Stats.Json.List (List.map sarif_result findings));
              ];
          ] );
    ]
