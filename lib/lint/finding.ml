type t = { rule : string; file : string; line : int; col : int; message : string }

let v ~rule ~file ~line ~col message = { rule; file; line; col; message }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let to_line f = Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let json f =
  Stats.Json.Obj
    [
      ("rule", Stats.Json.Str f.rule);
      ("file", Stats.Json.Str f.file);
      ("line", Stats.Json.Int f.line);
      ("col", Stats.Json.Int f.col);
      ("message", Stats.Json.Str f.message);
    ]

let report_json ~files findings =
  let findings = List.sort compare findings in
  Stats.Json.Obj
    [
      ("tool", Stats.Json.Str "intersect-lint");
      ("files", Stats.Json.Int files);
      ("count", Stats.Json.Int (List.length findings));
      ("findings", Stats.Json.List (List.map json findings));
    ]
