(* The typed lint pass: cmt discovery, call-graph construction, and the
   semantic rule families R7..R10.

   Scopes live in a [config] value instead of being hard-wired into the
   rules so the test suite can run the same analyses over in-process
   fixtures (whose modules obviously are not called [Commsim.Transport]
   or [Obsv.Phases]). [default_config] encodes this repo's layout. *)

type config = {
  party_prefixes : string list;
      (* R7 roots: the protocol/application layers whose transcripts must replay *)
  sanctioned_prefixes : string list;
      (* R7 stop set: the seeded-randomness homes reaching them is the sanctioned route *)
  meter_prefixes : string list;  (* R8 scope *)
  meter_exempt_prefixes : string list;
      (* R8 holes in that scope: the transport/observability plumbing itself *)
  span_fns : string list;
  transport_fns : string list;
  transport_types : string list;
  transport_labels : string list;
  escape_global_exempt : string list;  (* R9(a): the ambient-state home *)
  escape_capture_exempt : string list;  (* R9(b): the sanctioned domain-pool homes *)
  registry_module : string;  (* R10: the phase-constant module *)
}

let default_config =
  {
    party_prefixes = [ "lib/core/"; "lib/multiparty/"; "lib/apps/"; "lib/session/" ];
    sanctioned_prefixes = [ "lib/prng/"; "lib/engine/seed_stream." ];
    meter_prefixes = [ "lib/" ];
    meter_exempt_prefixes = [ "lib/commsim/"; "lib/obsv/"; "lib/lint/" ];
    span_fns = [ "Obsv.Trace.span" ];
    transport_fns =
      [ "Commsim.Transport.send"; "Commsim.Transport.recv"; "Commsim.Chan.send"; "Commsim.Chan.recv" ];
    transport_types = [ "Commsim.Transport.t" ];
    transport_labels = [ "send"; "recv" ];
    escape_global_exempt = [ "lib/obsv/" ];
    escape_capture_exempt = [ "lib/engine/"; "lib/obsv/" ];
    registry_module = "Obsv.Phases";
  }

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let any_prefix prefixes file = List.exists (fun p -> starts_with ~prefix:p file) prefixes

(* --- R10: dead phases -------------------------------------------------- *)

(* The registry is checked both ways: syntactic R3 rejects span literals
   missing from the registry; R10 reports registry constants nothing
   uses — a dead phase is a bucket the profiler promises but no bits can
   ever land in.  "Used" means referenced by name from outside the
   registry module (covers spans via the constant, and structural users
   like the ledger's bucket list) or appearing as a literal span name. *)
let dead_phases ~config (modus : Cmt_load.modu list) =
  let reg = config.registry_module in
  let in_registry name = starts_with ~prefix:(reg ^ ".") name in
  let constants =
    List.concat_map
      (fun (m : Cmt_load.modu) ->
        List.filter
          (fun (b : Cmt_load.binding) -> in_registry b.Cmt_load.name && b.str_const <> None)
          m.bindings)
      modus
  in
  if constants = [] then []
  else begin
    let used_names = Hashtbl.create 64 and span_literals = Hashtbl.create 64 in
    List.iter
      (fun (m : Cmt_load.modu) ->
        List.iter
          (fun (b : Cmt_load.binding) ->
            if not (in_registry b.Cmt_load.name) then
              List.iter
                (fun (u : Cmt_load.use) ->
                  if in_registry u.upath then Hashtbl.replace used_names u.upath ())
                b.uses;
            List.iter
              (fun (c : Cmt_load.call) ->
                if List.mem c.Cmt_load.fn config.span_fns then
                  match c.argv with
                  | Cmt_load.Astr s -> Hashtbl.replace span_literals s ()
                  | _ -> ())
              b.calls)
          m.bindings)
      modus;
    List.filter_map
      (fun (b : Cmt_load.binding) ->
        let alive =
          Hashtbl.mem used_names b.Cmt_load.name
          || match b.str_const with Some s -> Hashtbl.mem span_literals s | None -> false
        in
        if alive then None
        else
          Some
            (Finding.v ~rule:"R10" ~file:b.bfile ~line:b.bline ~col:b.bcol
               (Printf.sprintf
                  "phase %s (%S) has no span call site and no outside reference: a dead \
                   registry entry is a ledger bucket no bits can reach; drop it or span it"
                  b.name
                  (Option.value ~default:"" b.str_const))))
      constants
  end

(* --- the pass ---------------------------------------------------------- *)

let analyze ?(config = default_config) ~types (modus : Cmt_load.modu list) =
  let g = Callgraph.build modus in
  let r7 =
    Taint.determinism g
      ~is_party:(any_prefix config.party_prefixes)
      ~is_sanctioned:(any_prefix config.sanctioned_prefixes)
      ~sinks:Taint.default_sinks
  in
  let in_scope file =
    any_prefix config.meter_prefixes file && not (any_prefix config.meter_exempt_prefixes file)
  in
  let r8 =
    Taint.metering g ~types ~in_scope ~transport_fns:config.transport_fns
      ~transport_types:config.transport_types ~transport_labels:config.transport_labels
      ~span_fns:config.span_fns
  in
  let r9 =
    Escape.check g ~types
      ~exempt_global:(any_prefix config.escape_global_exempt)
      ~exempt_capture:(any_prefix config.escape_capture_exempt)
  in
  let r10 = dead_phases ~config modus in
  List.sort Finding.compare (r7 @ r8 @ r9 @ r10)

(* --- cmt discovery ----------------------------------------------------- *)

let is_dir p = match Sys.is_directory p with b -> b | exception Sys_error _ -> false

let rec walk_cmts acc dir =
  if not (is_dir dir) then acc
  else
    Array.to_list (Sys.readdir dir)
    |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           let p = Filename.concat dir entry in
           if is_dir p then walk_cmts acc p
           else if Filename.check_suffix entry ".cmt" then p :: acc
           else acc)
         acc

(* Where dune put the artifacts: from the repo root that is
   [_build/default]; when the linter itself runs from inside the build
   tree (dune exec, tests), the root already is the build tree. *)
let cmt_root root =
  let candidate = Filename.concat (Filename.concat root "_build") "default" in
  if is_dir candidate then candidate else root

let load ?(config = default_config) ~root ~files () =
  ignore config;
  let file_set = Hashtbl.create 256 in
  List.iter (fun f -> Hashtbl.replace file_set f ()) files;
  let top_dirs =
    List.filter_map
      (fun f -> match String.index_opt f '/' with Some i -> Some (String.sub f 0 i) | None -> None)
      files
    |> List.sort_uniq String.compare
  in
  let croot = cmt_root root in
  let cmts =
    List.concat_map (fun d -> walk_cmts [] (Filename.concat croot d)) top_dirs
    |> List.sort String.compare
  in
  let types = Cmt_load.create_types () in
  let seen = Hashtbl.create 64 in
  let modus =
    List.filter_map
      (fun path ->
        match Cmt_load.read_cmt ~types ~path with
        | Some m
          when Hashtbl.mem file_set m.Cmt_load.mfile && not (Hashtbl.mem seen m.Cmt_load.mfile)
          ->
            Hashtbl.replace seen m.Cmt_load.mfile ();
            Some m
        | _ -> None)
      cmts
  in
  if modus = [] then
    Error
      (Printf.sprintf
         "no .cmt artifacts for the scanned sources under %s: build first (dune build @check)"
         croot)
  else Ok (types, modus)

let run ?(config = default_config) ~root ~files () =
  match load ~config ~root ~files () with
  | Error _ as e -> e
  | Ok (types, modus) -> Ok (List.length modus, analyze ~config ~types modus)
