type entry = { rule : string; prefix : string }
type t = entry list

let strip_comment line = match String.index_opt line '#' with None -> line | Some i -> String.sub line 0 i

let parse ~known content =
  let entries = ref [] in
  let err = ref None in
  String.split_on_char '\n' content
  |> List.iteri (fun i line ->
         if !err = None then
           match String.split_on_char ' ' (strip_comment line) |> List.filter (( <> ) "") with
           | [] -> ()
           | [ rule; prefix ] when List.mem rule known -> entries := { rule; prefix } :: !entries
           | rule :: _ when not (List.mem rule known) ->
               err := Some (Printf.sprintf "line %d: unknown rule id %S" (i + 1) rule)
           | _ -> err := Some (Printf.sprintf "line %d: expected '<rule> <path-prefix>'" (i + 1)));
  match !err with Some e -> Error e | None -> Ok (List.rev !entries)

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let allows t ~rule ~file =
  List.exists (fun e -> e.rule = rule && starts_with ~prefix:e.prefix file) t
