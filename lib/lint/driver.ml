let scan_dirs = [ "lib"; "bin"; "bench"; "test" ]
let allow_file = "lint.allow"

let ends_with ~suffix s =
  String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix

(* Source discovery: sorted traversal, skipping _build-style and hidden
   directories, so file order (hence report order) is stable. *)
let list_files ~root =
  let acc = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    let entries = Sys.readdir abs in
    Array.sort String.compare entries;
    Array.iter
      (fun name ->
        let rel' = rel ^ "/" ^ name in
        let abs' = Filename.concat root rel' in
        if Sys.is_directory abs' then begin
          if not (name = "" || name.[0] = '_' || name.[0] = '.') then walk rel'
        end
        else if ends_with ~suffix:".ml" name || ends_with ~suffix:".mli" name then acc := rel' :: !acc)
      entries
  in
  List.iter (fun dir -> if Sys.file_exists (Filename.concat root dir) then walk dir) scan_dirs;
  List.sort String.compare !acc

let syntax_finding ~file (loc : Location.t) msg =
  let p = loc.Location.loc_start in
  Finding.v ~rule:"syntax" ~file ~line:(max 1 p.pos_lnum) ~col:(max 0 (p.pos_cnum - p.pos_bol)) msg

let parse_structure ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception Syntaxerr.Error e ->
      Error (syntax_finding ~file (Syntaxerr.location_of_error e) "syntax error")
  | exception Lexer.Error (_, loc) -> Error (syntax_finding ~file loc "lexer error")

let parse_interface ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  match Parse.interface lexbuf with
  | (_ : Parsetree.signature) -> Ok ()
  | exception Syntaxerr.Error e ->
      Error (syntax_finding ~file (Syntaxerr.location_of_error e) "syntax error")
  | exception Lexer.Error (_, loc) -> Error (syntax_finding ~file loc "lexer error")

let lint_source ?(registry = Obsv.Phases.mem) ~path source =
  if ends_with ~suffix:".mli" path then
    match parse_interface ~file:path source with Ok () -> [] | Error f -> [ f ]
  else
    match parse_structure ~file:path source with
    | Ok structure -> Rules.check_structure ~registry ~file:path structure
    | Error f -> [ f ]

type report = { files : int; typed_modules : int; findings : Finding.t list }

let read_file path = In_channel.with_open_bin path In_channel.input_all

let run ?(root = ".") ?(typed = true) () =
  if not (Sys.file_exists (Filename.concat root "lib")) then
    Error (Printf.sprintf "lint root %S has no lib/ directory (pass --root)" root)
  else
    let allow =
      let path = Filename.concat root allow_file in
      if not (Sys.file_exists path) then Ok []
      else
        match Allow.parse ~known:Rules.rule_ids (read_file path) with
        | Ok entries -> Ok entries
        | Error e -> Error (Printf.sprintf "%s: %s" allow_file e)
    in
    match allow with
    | Error _ as e -> e
    | Ok allow -> (
        let files = list_files ~root in
        let per_file =
          List.concat_map
            (fun file -> lint_source ~path:file (read_file (Filename.concat root file)))
            files
        in
        (* The typed pass needs build artifacts; a missing build is a
           cannot-run error (exit 2), not a clean report — a gate that
           silently skips its strongest rules is worse than one that
           fails loudly. *)
        let typed_result =
          if typed then Typed.run ~root ~files () else Ok (0, [])
        in
        match typed_result with
        | Error e -> Error e
        | Ok (typed_modules, typed_findings) ->
            let findings =
              per_file @ Rules.check_mli_coverage ~files @ typed_findings
              |> List.filter (fun (f : Finding.t) ->
                     not (Allow.allows allow ~rule:f.rule ~file:f.file))
              |> List.sort Finding.compare
            in
            Ok { files = List.length files; typed_modules; findings })
