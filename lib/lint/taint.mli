(** Dataflow taint rules over the call graph: R7 (determinism) and R8
    (metered-transport accounting). *)

(** The default R7 sink set: ambient-nondeterminism primitives in
    canonical spelling ([Stdlib.Random.*], wall clocks, runtime
    polymorphic hashing) — the typed mirror of syntactic R1's list. *)
val default_sinks : string -> bool

(** [determinism g ~is_party ~is_sanctioned ~sinks] — R7.  BFS forward
    from every binding whose file satisfies [is_party]; any reached
    binding outside party files whose body references a sink is
    reported, with the lexicographically-least shortest call chain from
    a party root in the message.  Nodes in [is_sanctioned] files (the
    PRNG homes) stop the walk: reaching randomness through the seeded
    interfaces is the sanctioned route. *)
val determinism :
  Callgraph.t ->
  is_party:(string -> bool) ->
  is_sanctioned:(string -> bool) ->
  sinks:(string -> bool) ->
  Finding.t list

(** [metering g ~types ~in_scope ...] — R8.  A transport op site is a
    call to one of [transport_fns] or a [transport_labels] field
    projection from a record type resolving (through aliases) into
    [transport_types].  For every such site in an [in_scope] file, walk
    callers backwards, never through a binding that opens a span
    ([span_fns]) and never outside scope: if a node with no in-scope
    callers is reachable, there is an execution path on which the bits
    cross the wire with no phase open, and the site is reported with
    that path. *)
val metering :
  Callgraph.t ->
  types:Cmt_load.types_info ->
  in_scope:(string -> bool) ->
  transport_fns:string list ->
  transport_types:string list ->
  transport_labels:string list ->
  span_fns:string list ->
  Finding.t list
