(** The typed lint pass: cmt discovery, call-graph construction, and the
    semantic rule families R7 (determinism taint), R8 (metered-transport
    accounting), R9 (cross-domain escape), R10 (dead phases). *)

(** Analysis scopes, parameterised so tests can run the same rules over
    in-process fixtures with their own module names.  All prefixes match
    repo-relative, ['/']-separated paths. *)
type config = {
  party_prefixes : string list;
  sanctioned_prefixes : string list;
  meter_prefixes : string list;
  meter_exempt_prefixes : string list;
  span_fns : string list;
  transport_fns : string list;
  transport_types : string list;
  transport_labels : string list;
  escape_global_exempt : string list;
  escape_capture_exempt : string list;
  registry_module : string;
}

(** This repo's layout: parties in [lib/core] / [lib/multiparty] /
    [lib/apps] / [lib/session]; randomness sanctioned in [lib/prng] and
    the seed stream; transport is [Commsim.Transport]; spans are
    [Obsv.Trace.span]; the phase registry is [Obsv.Phases]. *)
val default_config : config

(** Run R7..R10 over loaded modules.  Findings come back sorted
    ({!Finding.compare}) and byte-stable across runs. *)
val analyze : ?config:config -> types:Cmt_load.types_info -> Cmt_load.modu list -> Finding.t list

(** Discover and load the [.cmt] artifacts for [files] (repo-relative
    scanned sources) under [root] — looking in [root/_build/default]
    when present, so the linter works both from a source checkout and
    from inside the build tree.  Duplicate artifacts for one source
    (per-executable object dirs) collapse to the first in sorted path
    order; artifacts for files outside the scanned set are ignored. *)
val load :
  ?config:config ->
  root:string ->
  files:string list ->
  unit ->
  (Cmt_load.types_info * Cmt_load.modu list, string) result

(** [load] + [analyze]: returns the number of typed modules and the
    findings, or an error when no artifacts exist (not built yet). *)
val run :
  ?config:config -> root:string -> files:string list -> unit -> (int * Finding.t list, string) result
