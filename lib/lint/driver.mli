(** Walks a source tree, parses every [.ml]/[.mli] with compiler-libs,
    runs the {!Rules} catalogue, and applies the allowlist.

    Everything is deterministic by construction: files are discovered in
    sorted order, findings are sorted with {!Finding.compare}, and no
    wall clock or ambient randomness is consulted — two runs over the
    same tree produce byte-identical reports. *)

(** The directories scanned under the root, in order. *)
val scan_dirs : string list

(** The allowlist file name looked up at the root. *)
val allow_file : string

(** Lint one source held in memory (used by the test fixtures; no
    allowlist, no R5).  [path] selects the rules' structural scopes and
    the extension selects implementation vs interface parsing;
    [registry] defaults to {!Obsv.Phases.mem}. *)
val lint_source : ?registry:(string -> bool) -> path:string -> string -> Finding.t list

type report = {
  files : int;  (** number of source files scanned *)
  typed_modules : int;  (** modules the typed pass analysed; 0 when skipped *)
  findings : Finding.t list;  (** sorted, allowlist already applied *)
}

(** Lint the tree rooted at [root] (default ["."]).  [typed] (default
    [true]) additionally runs the cmt-based semantic rules R7..R10 over
    the build artifacts in [root/_build/default] (or [root] itself when
    already inside a build tree).  [Error] means the linter could not
    run at all — missing root, malformed allowlist, or typed pass
    requested with no build artifacts — as opposed to a clean run with
    findings. *)
val run : ?root:string -> ?typed:bool -> unit -> (report, string) result
