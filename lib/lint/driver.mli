(** Walks a source tree, parses every [.ml]/[.mli] with compiler-libs,
    runs the {!Rules} catalogue, and applies the allowlist.

    Everything is deterministic by construction: files are discovered in
    sorted order, findings are sorted with {!Finding.compare}, and no
    wall clock or ambient randomness is consulted — two runs over the
    same tree produce byte-identical reports. *)

(** The directories scanned under the root, in order. *)
val scan_dirs : string list

(** The allowlist file name looked up at the root. *)
val allow_file : string

(** Lint one source held in memory (used by the test fixtures; no
    allowlist, no R5).  [path] selects the rules' structural scopes and
    the extension selects implementation vs interface parsing;
    [registry] defaults to {!Obsv.Phases.mem}. *)
val lint_source : ?registry:(string -> bool) -> path:string -> string -> Finding.t list

type report = {
  files : int;  (** number of source files scanned *)
  findings : Finding.t list;  (** sorted, allowlist already applied *)
}

(** Lint the tree rooted at [root] (default ["."]). [Error] means the
    linter could not run at all — missing root or a malformed
    allowlist — as opposed to a clean run with findings. *)
val run : ?root:string -> unit -> (report, string) result
