(** The per-path allowlist ([lint.allow] at the lint root).

    Format, one entry per line:

    {v
    # comment (also allowed after an entry)
    <rule-id> <path-prefix>   # why this exemption is legitimate
    v}

    An entry suppresses findings of [rule-id] in every file whose
    root-relative path starts with [path-prefix].  Rule ids are validated
    against the known set at parse time so a typo'd entry fails loudly
    instead of silently allowing nothing. *)

type entry = { rule : string; prefix : string }
type t = entry list

(** [parse ~known content] parses allowlist text; [Error] carries a
    1-based line number and reason. *)
val parse : known:string list -> string -> (t, string) result

(** [allows t ~rule ~file] is true iff some entry suppresses [rule] for
    [file]. *)
val allows : t -> rule:string -> file:string -> bool
