(** Typed-tree loading for the semantic lint rules (R7..R10).

    Reads the [.cmt] artifacts dune produces (or types fixture sources
    in-process, for tests) and distills each module into a small IR of
    top-level bindings with canonical dotted references, calls, field
    uses, [Domain.spawn] captures, and a registry of which type names
    carry mutable state. *)

(** One reference to a named value inside a binding body. *)
type use = { upath : string; uline : int; ucol : int }

(** First positional argument of a call, as far as it is statically
    known: a string literal, a named value, or dynamic. *)
type arg = Astr of string | Apath of string | Adyn

type call = { fn : string; argv : arg; cline : int; ccol : int }

(** A record-field access, with the canonical name of the record type it
    projects from (so [chan.send] is attributable to [Transport.t] even
    through a type alias). *)
type field_use = { ftype : string; flabel : string; fline : int; fcol : int }

(** A free variable referenced inside a [Domain.spawn] closure argument,
    with the head constructor names of its type. *)
type capture = { cvar : string; cheads : string list; kline : int; kcol : int }

type binding = {
  name : string;  (** canonical dotted name, e.g. ["Engine.Pool.run"] *)
  bfile : string;  (** repo-relative source path *)
  bline : int;
  bcol : int;
  uses : use list;
  calls : call list;
  field_uses : field_use list;
  captures : capture list;
  str_const : string option;  (** [Some s] when the body is the literal [s] *)
  top_heads : string list;  (** head constructor names of the binding's type *)
  r2_ctor : bool;  (** body is a direct R2-recognised state constructor *)
}

type modu = { mod_path : string; mfile : string; bindings : binding list }

(** Mutable-state type registry accumulated across all loaded modules:
    records with [mutable] fields plus alias links from type manifests. *)
type types_info

val create_types : unit -> types_info

(** [is_mutable_type t name] — does [name] (after alias resolution)
    denote a type carrying mutable state: a builtin mutable ([ref],
    [array], [bytes], [Hashtbl.t], [Buffer.t], ...) or a record with a
    [mutable] field declared in any loaded module? *)
val is_mutable_type : types_info -> string -> bool

(** Mutable types sanctioned for cross-domain use ([Atomic.t],
    [Domain.DLS.key], [Mutex.t], ...). *)
val is_cross_domain_safe : types_info -> string -> bool

val resolve_alias : types_info -> string -> string

(** Canonical module path for a compilation-unit name as recorded in a
    cmt: dune mangling is undone ([Engine__Pool] -> ["Engine.Pool"]),
    executables lose their [Dune__exe] prefix, and generated wrapper
    units map to [None]. *)
val canon_modname : string -> string option

(** Load one [.cmt] file.  [None] when the artifact is not a user-source
    implementation (interfaces, generated wrapper units, packs). *)
val read_cmt : types:types_info -> path:string -> modu option

(** Type a fixture source in-process against the standard library and
    extract it like a cmt.  Used by tests; [Error] carries the parse or
    type error text. *)
val of_source :
  types:types_info -> mod_path:string -> file:string -> string -> (modu, string) result

(** Type a sequence of fixture units in order, each one's signature made
    visible to the later ones under its [mod_path] (which must therefore
    be a plain module name).  This is how tests build cross-module
    fixtures without writing [.cmt] files to disk. *)
val of_sources :
  types:types_info ->
  (string * string * string) list ->
  (modu list, string) result
