(** The rule catalogue, over parsed {!Parsetree} values.

    Rules see syntax only (no typing, no ppx): they are conservative
    conventions about what may be {e written}, which is exactly what the
    repo's whole-tree invariants (seeded replay, phase-exact accounting,
    domain safety) need enforced at build time.

    - {b R1 determinism} — no [Random.*], [Unix.time]/[gettimeofday],
      [Sys.time], [Hashtbl.hash]/[seeded_hash]/[hash_param]/[randomize],
      or [Hashtbl.create ~random:…] outside [lib/prng] and
      [lib/engine/seed_stream] (structural exemptions) — everything
      random must flow from a seed.
    - {b R2 ambient state} — no top-level mutable globals
      ([ref]/[Atomic.make]/[Hashtbl.create]/[Queue.create]/
      [Stack.create]/[Buffer.create], also under [lazy]) outside
      [lib/obsv], whose Domain-local wrappers are the sanctioned home
      for ambient state.
    - {b R3 phase registry} — a string literal passed to [Trace.span]
      must be registered (see {!Obsv.Phases}); constants pass by
      construction.
    - {b R4 domain hygiene} — [Domain.spawn]/[Domain.DLS] only in
      [lib/engine] and [lib/obsv].
    - {b R5 interface coverage} — every [lib/**.ml] has a matching
      [.mli].
    - {b R6 flight recorder} — [Obsv.Recorder.event] (the write side of
      the per-session flight recorder) only in [lib/session] and
      [lib/obsv]; everyone else reads recorders via
      [post_mortem_json]/[events].

    Structural exemptions above are part of the rule; anything else
    belongs in the allowlist ({!Allow}).

    The typed rule families R7..R10 (determinism taint, metered
    transport, cross-domain escape, dead phases) are implemented over
    the cmt-based IR in {!Typed}/{!Taint}/{!Escape}; their catalogue
    entries and explanations live here so the id set, the allowlist
    validation, and [--rules]/[--explain] output stay in one place. *)

(** Rule ids with one-line descriptions, in report order ([syntax]
    first, then R1..R10).  This is also the id set allowlists are
    validated against. *)
val catalogue : (string * string) list

val rule_ids : string list

(** Long-form rationale for one rule id (for [--explain]): why the
    invariant exists and what the sanctioned alternative is.  [None] for
    unknown ids. *)
val explain : string -> string option

(** Check one parsed implementation.  [registry] decides R3 membership
    (the production linter passes [Obsv.Phases.mem]).  [file] is the
    root-relative path and selects each rule's structural scope. *)
val check_structure :
  registry:(string -> bool) -> file:string -> Parsetree.structure -> Finding.t list

(** R5 over the discovered file set: [files] are root-relative paths of
    every source file scanned; flags each [lib/**.ml] with no matching
    [.mli] in the set. *)
val check_mli_coverage : files:string list -> Finding.t list
