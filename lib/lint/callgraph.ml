(* Whole-repo call graph over the Cmt_load IR.

   Nodes are canonical binding names; there is an edge a -> b when a's
   body references b and b is a binding we loaded (references into the
   stdlib or other external libraries are kept on the binding itself as
   uses, not as graph edges).  All adjacency lists are sorted and
   deduplicated so every traversal — and therefore every report — is
   deterministic regardless of load order. *)

type t = {
  by_name : (string, Cmt_load.binding) Hashtbl.t;
  succ : (string, string list) Hashtbl.t;
  pred : (string, string list) Hashtbl.t;
  names : string list;  (* sorted *)
}

let sort_uniq = List.sort_uniq String.compare

let build (modus : Cmt_load.modu list) =
  let by_name = Hashtbl.create 512 in
  List.iter
    (fun (m : Cmt_load.modu) ->
      List.iter (fun (b : Cmt_load.binding) -> Hashtbl.replace by_name b.Cmt_load.name b) m.bindings)
    modus;
  let succ = Hashtbl.create 512 and pred = Hashtbl.create 512 in
  let add tbl k v = Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k)) in
  List.iter
    (fun (m : Cmt_load.modu) ->
      List.iter
        (fun (b : Cmt_load.binding) ->
          List.iter
            (fun (u : Cmt_load.use) ->
              if u.upath <> b.name && Hashtbl.mem by_name u.upath then begin
                add succ b.name u.upath;
                add pred u.upath b.name
              end)
            b.uses)
        m.bindings)
    modus;
  Hashtbl.iter (fun k v -> Hashtbl.replace succ k (sort_uniq v)) (Hashtbl.copy succ);
  Hashtbl.iter (fun k v -> Hashtbl.replace pred k (sort_uniq v)) (Hashtbl.copy pred);
  let names =
    Hashtbl.fold (fun k _ acc -> k :: acc) by_name [] |> List.sort String.compare
  in
  { by_name; succ; pred; names }

let mem g name = Hashtbl.mem g.by_name name
let binding g name = Hashtbl.find_opt g.by_name name
let names g = g.names

let bindings g =
  List.filter_map (fun n -> Hashtbl.find_opt g.by_name n) g.names

let succs g name = Option.value ~default:[] (Hashtbl.find_opt g.succ name)
let preds g name = Option.value ~default:[] (Hashtbl.find_opt g.pred name)

(* Deterministic BFS from [roots] (visited in sorted order) following
   [next], never expanding nodes for which [skip] holds.  Returns the
   BFS forest as a parent map; roots are their own parents.  Because the
   queue is FIFO over sorted adjacency, the parent chain of any node is
   the lexicographically-least shortest path to it — stable across
   runs. *)
let reach ~next ~skip roots =
  let parent = Hashtbl.create 256 in
  let q = Queue.create () in
  List.iter
    (fun r ->
      if (not (Hashtbl.mem parent r)) && not (skip r) then begin
        Hashtbl.replace parent r r;
        Queue.push r q
      end)
    (sort_uniq roots);
  while not (Queue.is_empty q) do
    let n = Queue.pop q in
    List.iter
      (fun s ->
        if (not (Hashtbl.mem parent s)) && not (skip s) then begin
          Hashtbl.replace parent s n;
          Queue.push s q
        end)
      (next n)
  done;
  parent

let reach_fwd g ~skip roots = reach ~next:(succs g) ~skip roots
let reach_bwd g ~skip roots = reach ~next:(preds g) ~skip roots

(* Root-to-node path through a [reach] parent map. *)
let chain parent node =
  let rec go acc n =
    match Hashtbl.find_opt parent n with
    | Some p when p = n -> n :: acc
    | Some p -> go (n :: acc) p
    | None -> n :: acc
  in
  go [] node
