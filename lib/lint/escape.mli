(** R9: cross-domain escape analysis.

    Flags mutable values (judged by type: builtin mutable containers or
    records with [mutable] fields, through aliases) that escape to
    module-global scope, or that are captured as free variables by
    [Domain.spawn] closures.  [Atomic.t], [Domain.DLS.key] and the
    runtime locks are sanctioned sharing vehicles.  Bindings the
    syntactic R2 already recognises are skipped so each offense carries
    exactly one rule id. *)

val check :
  Callgraph.t ->
  types:Cmt_load.types_info ->
  exempt_global:(string -> bool) ->
  exempt_capture:(string -> bool) ->
  Finding.t list
