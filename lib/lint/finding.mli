(** A single linter diagnostic: which rule fired, where, and why.

    Findings order deterministically (file, then position, then rule,
    then message) so repeated runs over the same tree render
    byte-identical reports — the linter is itself held to the repo's
    determinism discipline. *)

type t = {
  rule : string;  (** rule id: ["R1"].."R5"], or ["syntax"] for parse errors *)
  file : string;  (** path relative to the lint root, ['/']-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in compiler diagnostics *)
  message : string;
}

val v : rule:string -> file:string -> line:int -> col:int -> string -> t
val compare : t -> t -> int

(** [lib/core/foo.ml:12:4: \[R1\] message] — the human-readable line. *)
val to_line : t -> string

val json : t -> Stats.Json.t

(** The full machine-readable report: tool name, file count, finding
    count, findings in {!compare} order. *)
val report_json : files:int -> t list -> Stats.Json.t
