(** A single linter diagnostic: which rule fired, where, and why.

    Findings order deterministically (file, then position, then rule,
    then message) so repeated runs over the same tree render
    byte-identical reports — the linter is itself held to the repo's
    determinism discipline. *)

type t = {
  rule : string;  (** rule id: ["R1"].."R5"], or ["syntax"] for parse errors *)
  file : string;  (** path relative to the lint root, ['/']-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in compiler diagnostics *)
  message : string;
}

val v : rule:string -> file:string -> line:int -> col:int -> string -> t
val compare : t -> t -> int

(** [lib/core/foo.ml:12:4: \[R1\] message] — the human-readable line. *)
val to_line : t -> string

val json : t -> Stats.Json.t

(** The full machine-readable report: tool name, file count, number of
    modules the typed pass loaded (0 when it was skipped), finding
    count, findings in {!compare} order. *)
val report_json : files:int -> typed_modules:int -> t list -> Stats.Json.t

(** SARIF 2.1.0 export of the same report: one run, [rules] (the
    catalogue) as driver rule metadata, one [error]-level result per
    finding, columns converted to SARIF's 1-based convention.  Sorted
    like {!report_json}, so it is equally byte-stable. *)
val sarif_json : rules:(string * string) list -> files:int -> typed_modules:int -> t list -> Stats.Json.t
