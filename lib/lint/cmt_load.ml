(* Typed-tree loading for the semantic lint pass (rules R7..R10).

   The syntactic rules (R1..R6) see one Parsetree at a time; the typed
   pass instead reads the .cmt artifacts dune already produces and
   distills every module into a small IR: its top-level bindings, every
   value they reference (canonical dotted names, so cross-module edges
   line up), the calls they make, record-field uses (with the record's
   type), references captured inside Domain.spawn closure arguments, and
   the type declarations that carry mutable state.  Everything downstream
   (Callgraph, Taint, Escape) works on this IR only, which is also what
   lets tests type small fixture sources in-process and run the same
   analyses on them. *)

type use = { upath : string; uline : int; ucol : int }
type arg = Astr of string | Apath of string | Adyn
type call = { fn : string; argv : arg; cline : int; ccol : int }
type field_use = { ftype : string; flabel : string; fline : int; fcol : int }
type capture = { cvar : string; cheads : string list; kline : int; kcol : int }

type binding = {
  name : string;
  bfile : string;
  bline : int;
  bcol : int;
  uses : use list;
  calls : call list;
  field_uses : field_use list;
  captures : capture list;
  str_const : string option;
  top_heads : string list;
  r2_ctor : bool;
}

type modu = { mod_path : string; mfile : string; bindings : binding list }

(* --- type registry: which type names carry mutable state ------------- *)

type types_info = {
  mutable_records : (string, unit) Hashtbl.t;
  aliases : (string, string) Hashtbl.t;  (* canonical name -> manifest head *)
}

let create_types () = { mutable_records = Hashtbl.create 64; aliases = Hashtbl.create 64 }

(* Built-in mutable type heads, as Path.name prints them: predefined
   types print bare ([array], [bytes]); Stdlib types print qualified. *)
let builtin_mutable =
  [
    "Stdlib.ref";
    "ref";
    "array";
    "bytes";
    "floatarray";
    "Stdlib.Hashtbl.t";
    "Stdlib.Buffer.t";
    "Stdlib.Queue.t";
    "Stdlib.Stack.t";
  ]

(* Types that are mutable but sanctioned for cross-domain use: the
   runtime's own synchronisation primitives and per-domain slots. *)
let cross_domain_safe =
  [
    "Stdlib.Atomic.t";
    "Stdlib.Domain.DLS.key";
    "Stdlib.Mutex.t";
    "Stdlib.Condition.t";
    "Stdlib.Semaphore.Counting.t";
  ]

let resolve_alias types name =
  let rec go seen name =
    if List.mem name seen then name
    else
      match Hashtbl.find_opt types.aliases name with
      | Some next -> go (name :: seen) next
      | None -> name
  in
  go [] name

let is_mutable_type types name =
  let resolved = resolve_alias types name in
  List.mem resolved builtin_mutable || Hashtbl.mem types.mutable_records resolved

let is_cross_domain_safe types name = List.mem (resolve_alias types name) cross_domain_safe

(* --- canonical names -------------------------------------------------- *)

(* Dune mangles wrapped-library modules to [Lib__Module]; fold that back
   to the dotted form references use ([Lib.Module]).  Only capitalized
   components are split so value names with double underscores survive. *)
let split_mangled comp =
  if comp = "" || not (comp.[0] >= 'A' && comp.[0] <= 'Z') then [ comp ]
  else begin
    let parts = ref [] and buf = Buffer.create (String.length comp) in
    let n = String.length comp in
    let i = ref 0 in
    while !i < n do
      if !i + 1 < n && comp.[!i] = '_' && comp.[!i + 1] = '_' then begin
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf;
        i := !i + 2
      end
      else begin
        Buffer.add_char buf comp.[!i];
        incr i
      end
    done;
    parts := Buffer.contents buf :: !parts;
    List.rev_map String.capitalize_ascii !parts
  end

(* [Dune__exe__Intersect_cli] -> [Some "Intersect_cli"]; the generated
   wrapper modules themselves ([Dune__exe], library aliases compiled
   from [*.ml-gen]) are not user code and load as [None]. *)
let canon_modname name =
  match split_mangled name with
  | [ "Dune"; "Exe" ] -> None
  | "Dune" :: "Exe" :: rest -> Some (String.concat "." rest)
  | parts -> Some (String.concat "." parts)

let canon_global_path p =
  Path.name p |> String.split_on_char '.' |> List.concat_map split_mangled |> String.concat "."

(* Canonical dotted name of a referenced path.  Top-level idents of the
   current compilation unit resolve through [locals] (registered by
   stamp in a pre-pass); global heads print qualified; function-local
   idents yield [None]. *)
let canon_path ~mod_path ~locals p =
  match p with
  | Path.Pident id -> (
      match Hashtbl.find_opt locals (Ident.unique_name id) with
      | Some name -> Some name
      | None -> if Ident.global id || Ident.is_predef id then Some (Ident.name id) else None)
  | _ ->
      let head = Path.head p in
      if Ident.global head || Ident.is_predef head then Some (canon_global_path p)
      else
        let tail = Path.name p in
        let tail =
          match Hashtbl.find_opt locals (Ident.unique_name head) with
          | Some bound -> (
              (* A nested module registered during the pre-pass: splice
                 its canonical name in place of the bare head. *)
              match String.index_opt tail '.' with
              | Some i -> bound ^ String.sub tail i (String.length tail - i)
              | None -> bound)
          | None -> mod_path ^ "." ^ tail
        in
        Some tail

(* Head constructor names of a type, unwrapping one level of lazy so
   [lazy (Hashtbl.create n)] still exposes the table's type.  [canon]
   resolves type paths declared in the current unit to their qualified
   names (so a local [type t = { mutable ... }] matches its registry
   entry); everything else prints globally. *)
let type_heads ~canon ty =
  let head ty =
    match Types.get_desc ty with
    | Types.Tconstr (p, args, _) ->
        let name = match canon p with Some n -> n | None -> canon_global_path p in
        Some (name, args)
    | _ -> None
  in
  match head ty with
  | None -> []
  | Some (name, args) when name = "Stdlib.Lazy.t" || name = "lazy_t" || name = "CamlinternalLazy.t"
    ->
      name :: List.concat_map (fun a -> match head a with Some (n, _) -> [ n ] | None -> []) args
  | Some (name, _) -> [ name ]

(* --- structure extraction --------------------------------------------- *)

let pos_of (loc : Location.t) =
  let p = loc.loc_start in
  (max 1 p.pos_lnum, max 0 (p.pos_cnum - p.pos_bol))

let spawn_paths = [ "Stdlib.Domain.spawn"; "Domain.spawn" ]

(* R2's syntactic constructor list: the typed escape rule skips these so
   one offense does not surface under two rule ids. *)
let r2_ctor_paths =
  [
    "Stdlib.ref";
    "Stdlib.Atomic.make";
    "Stdlib.Hashtbl.create";
    "Stdlib.Queue.create";
    "Stdlib.Stack.create";
    "Stdlib.Buffer.create";
  ]

type walk_acc = {
  mutable a_uses : use list;
  mutable a_calls : call list;
  mutable a_fields : field_use list;
  mutable a_caps : capture list;
}

let extract ~types ~mod_path ~file str =
  let locals = Hashtbl.create 128 in
  let rec strip_module (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Typedtree.Tmod_structure s -> Some s
    | Typedtree.Tmod_constraint (me, _, _, _) -> strip_module me
    | _ -> None
  in
  (* Pre-pass: register every top-level binding (and nested module) ident
     so references resolve regardless of item order. *)
  let rec pre prefix its =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                List.iter
                  (fun (id, _, _) ->
                    Hashtbl.replace locals (Ident.unique_name id) (prefix ^ "." ^ Ident.name id))
                  (Typedtree.pat_bound_idents_full vb.vb_pat))
              vbs
        | Typedtree.Tstr_module mb -> pre_module prefix mb.mb_id mb.mb_expr
        | Typedtree.Tstr_recmodule mbs ->
            List.iter
              (fun (mb : Typedtree.module_binding) -> pre_module prefix mb.mb_id mb.mb_expr)
              mbs
        | Typedtree.Tstr_type (_, tds) ->
            (* Type declarations too: heads of values of a unit-local
               record type must print qualified to match the registry. *)
            List.iter
              (fun (td : Typedtree.type_declaration) ->
                Hashtbl.replace locals
                  (Ident.unique_name td.typ_id)
                  (prefix ^ "." ^ Ident.name td.typ_id))
              tds
        | _ -> ())
      its
  and pre_module prefix id me =
    match id with
    | None -> ()
    | Some id -> (
        let sub = prefix ^ "." ^ Ident.name id in
        Hashtbl.replace locals (Ident.unique_name id) sub;
        match strip_module me with
        | Some s -> pre sub s.Typedtree.str_items
        | None -> ())
  in
  pre mod_path str.Typedtree.str_items;
  let canon p = canon_path ~mod_path ~locals p in
  let canon_fn (fn : Typedtree.expression) =
    match fn.exp_desc with Typedtree.Texp_ident (p, _, _) -> canon p | _ -> None
  in
  (* Expression walk for one top-level binding body. *)
  let walk_expr expr =
    let acc = { a_uses = []; a_calls = []; a_fields = []; a_caps = [] } in
    let spawn_ctx : (string, unit) Hashtbl.t option ref = ref None in
    let maybe_capture name (e : Typedtree.expression) p =
      match !spawn_ctx with
      | None -> ()
      | Some bound ->
          let locally_bound =
            match p with
            | Path.Pident id -> Hashtbl.mem bound (Ident.unique_name id)
            | _ -> false
          in
          if not locally_bound then
            let heads = type_heads ~canon e.exp_type in
            if heads <> [] then begin
              let line, col = pos_of e.exp_loc in
              acc.a_caps <- { cvar = name; cheads = heads; kline = line; kcol = col } :: acc.a_caps
            end
    in
    let it =
      {
        Tast_iterator.default_iterator with
        expr =
          (fun self e ->
            match e.exp_desc with
            | Typedtree.Texp_ident (p, _, _) ->
                (match canon p with
                | Some name ->
                    let line, col = pos_of e.exp_loc in
                    acc.a_uses <- { upath = name; uline = line; ucol = col } :: acc.a_uses;
                    maybe_capture name e p
                | None ->
                    let name =
                      match p with Path.Pident id -> Ident.name id | _ -> Path.name p
                    in
                    maybe_capture name e p);
                Tast_iterator.default_iterator.expr self e
            | Typedtree.Texp_apply (fn, args) -> (
                (match canon_fn fn with
                | Some fname ->
                    let argv =
                      match
                        List.find_opt
                          (fun (label, a) -> label = Asttypes.Nolabel && a <> None)
                          args
                      with
                      | Some (_, Some (a : Typedtree.expression)) -> (
                          match a.exp_desc with
                          | Typedtree.Texp_constant (Asttypes.Const_string (s, _, _)) -> Astr s
                          | Typedtree.Texp_ident (ap, _, _) -> (
                              match canon ap with Some n -> Apath n | None -> Adyn)
                          | _ -> Adyn)
                      | _ -> Adyn
                    in
                    let line, col = pos_of e.exp_loc in
                    acc.a_calls <- { fn = fname; argv; cline = line; ccol = col } :: acc.a_calls
                | None -> ());
                match canon_fn fn with
                | Some fname when List.mem fname spawn_paths && !spawn_ctx = None ->
                    (* Walk closure arguments inside a capture context:
                       idents bound within the subtree are domain-local,
                       everything else referenced there is shared. *)
                    self.Tast_iterator.expr self fn;
                    spawn_ctx := Some (Hashtbl.create 32);
                    List.iter (fun (_, a) -> Option.iter (self.Tast_iterator.expr self) a) args;
                    spawn_ctx := None
                | _ -> Tast_iterator.default_iterator.expr self e)
            | Typedtree.Texp_field (_, _, ld) ->
                let line, col = pos_of e.exp_loc in
                let ftype =
                  match Types.get_desc ld.lbl_res with
                  | Types.Tconstr (p, _, _) -> (
                      match canon p with Some n -> n | None -> canon_global_path p)
                  | _ -> "<unknown>"
                in
                acc.a_fields <-
                  { ftype; flabel = ld.lbl_name; fline = line; fcol = col } :: acc.a_fields;
                Tast_iterator.default_iterator.expr self e
            | _ -> Tast_iterator.default_iterator.expr self e);
        pat =
          (fun (type k) self (p : k Typedtree.general_pattern) ->
            (match !spawn_ctx with
            | Some bound ->
                List.iter
                  (fun (id, _, _) -> Hashtbl.replace bound (Ident.unique_name id) ())
                  (Typedtree.pat_bound_idents_full p)
            | None -> ());
            Tast_iterator.default_iterator.pat self p);
      }
    in
    it.Tast_iterator.expr it expr;
    acc
  in
  let bindings = ref [] in
  let init_count = ref 0 in
  let rec unwrap_lazy (e : Typedtree.expression) =
    match e.exp_desc with Typedtree.Texp_lazy e -> unwrap_lazy e | _ -> e
  in
  let is_r2_ctor (e : Typedtree.expression) =
    match (unwrap_lazy e).exp_desc with
    | Typedtree.Texp_apply (fn, _) -> (
        match canon_fn fn with Some n -> List.mem n r2_ctor_paths | None -> false)
    | _ -> false
  in
  let add_binding ~name ~loc ~(acc : walk_acc) ~str_const ~top_heads ~r2_ctor =
    let line, col = pos_of loc in
    bindings :=
      {
        name;
        bfile = file;
        bline = line;
        bcol = col;
        uses = List.rev acc.a_uses;
        calls = List.rev acc.a_calls;
        field_uses = List.rev acc.a_fields;
        captures = List.rev acc.a_caps;
        str_const;
        top_heads;
        r2_ctor;
      }
      :: !bindings
  in
  let rec items prefix its =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                let acc = walk_expr vb.vb_expr in
                let str_const =
                  match vb.vb_expr.exp_desc with
                  | Typedtree.Texp_constant (Asttypes.Const_string (s, _, _)) -> Some s
                  | _ -> None
                in
                let r2_ctor = is_r2_ctor vb.vb_expr in
                match Typedtree.pat_bound_idents_full vb.vb_pat with
                | [] ->
                    (* [let () = ...] and friends: keep the body's edges
                       under a synthetic, unreferencable name. *)
                    incr init_count;
                    add_binding
                      ~name:(Printf.sprintf "%s.(init:%d)" prefix !init_count)
                      ~loc:vb.vb_pat.pat_loc ~acc ~str_const:None ~top_heads:[] ~r2_ctor
                | ids ->
                    List.iter
                      (fun (id, (sloc : string Asttypes.loc), ty) ->
                        add_binding
                          ~name:(prefix ^ "." ^ Ident.name id)
                          ~loc:sloc.loc ~acc ~str_const ~top_heads:(type_heads ~canon ty) ~r2_ctor)
                      ids)
              vbs
        | Typedtree.Tstr_eval (e, _) ->
            let acc = walk_expr e in
            incr init_count;
            add_binding
              ~name:(Printf.sprintf "%s.(init:%d)" prefix !init_count)
              ~loc:item.str_loc ~acc ~str_const:None ~top_heads:[] ~r2_ctor:false
        | Typedtree.Tstr_module mb -> (
            match mb.mb_id with
            | None -> ()
            | Some id -> (
                match strip_module mb.mb_expr with
                | Some s -> items (prefix ^ "." ^ Ident.name id) s.Typedtree.str_items
                | None -> ()))
        | Typedtree.Tstr_recmodule mbs ->
            List.iter
              (fun (mb : Typedtree.module_binding) ->
                match mb.mb_id with
                | None -> ()
                | Some id -> (
                    match strip_module mb.mb_expr with
                    | Some s -> items (prefix ^ "." ^ Ident.name id) s.Typedtree.str_items
                    | None -> ()))
              mbs
        | Typedtree.Tstr_type (_, tds) ->
            List.iter
              (fun (td : Typedtree.type_declaration) ->
                let tname = prefix ^ "." ^ Ident.name td.typ_id in
                (match td.typ_type.Types.type_kind with
                | Types.Type_record (lds, _) ->
                    if List.exists (fun ld -> ld.Types.ld_mutable = Asttypes.Mutable) lds then
                      Hashtbl.replace types.mutable_records tname ()
                | _ -> ());
                match td.typ_type.Types.type_manifest with
                | Some ty -> (
                    match Types.get_desc ty with
                    | Types.Tconstr (p, _, _) -> (
                        match canon p with
                        | Some target when target <> tname ->
                            Hashtbl.replace types.aliases tname target
                        | _ -> ())
                    | _ -> ())
                | None -> ())
              tds
        | _ -> ())
      its
  in
  items mod_path str.Typedtree.str_items;
  { mod_path; mfile = file; bindings = List.rev !bindings }

(* --- cmt reading ------------------------------------------------------- *)

let read_cmt ~types ~path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | infos -> (
      match (infos.cmt_annots, infos.cmt_sourcefile) with
      | Cmt_format.Implementation str, Some source when Filename.check_suffix source ".ml" -> (
          match canon_modname infos.cmt_modname with
          | Some mod_path -> Some (extract ~types ~mod_path ~file:source str)
          | None -> None)
      | _ -> None)

(* --- in-process typing for fixtures ------------------------------------ *)

let of_sources ~types units =
  let restore = !Clflags.dont_write_files in
  Clflags.dont_write_files := true;
  Fun.protect
    ~finally:(fun () -> Clflags.dont_write_files := restore)
    (fun () ->
      Compmisc.init_path ();
      let env0 = Compmisc.initial_env () in
      (* Units are typed in order; each one's signature is entered into
         the environment as a module, so later fixtures can reference
         earlier ones cross-"module" the way real compilation units
         do.  [mod_path] must be a valid module name for that to work. *)
      let rec go env acc = function
        | [] -> Ok (List.rev acc)
        | (mod_path, file, source) :: rest -> (
            let lexbuf = Lexing.from_string source in
            Location.init lexbuf file;
            match Parse.implementation lexbuf with
            | exception e -> Error (Printf.sprintf "%s: %s" file (Printexc.to_string e))
            | past -> (
                match Typemod.type_structure env past with
                | exception e -> Error (Printf.sprintf "%s: %s" file (Printexc.to_string e))
                | tstr, sg, _, _, _ ->
                    let m = extract ~types ~mod_path ~file tstr in
                    let env =
                      Env.add_module
                        (Ident.create_persistent mod_path)
                        Types.Mp_present (Types.Mty_signature sg) env
                    in
                    go env (m :: acc) rest))
      in
      go env0 [] units)

let of_source ~types ~mod_path ~file source =
  match of_sources ~types [ (mod_path, file, source) ] with
  | Ok [ m ] -> Ok m
  | Ok _ -> assert false
  | Error _ as e -> e
