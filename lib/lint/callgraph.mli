(** Whole-repo call graph over the {!Cmt_load} IR.

    Nodes are canonical binding names; an edge [a -> b] exists when
    [a]'s body references [b] and [b] is a loaded binding.  Adjacency
    is sorted, so traversals (and the reports built from them) are
    deterministic. *)

type t

val build : Cmt_load.modu list -> t
val mem : t -> string -> bool
val binding : t -> string -> Cmt_load.binding option

(** All node names, sorted. *)
val names : t -> string list

(** All bindings, in sorted-name order. *)
val bindings : t -> Cmt_load.binding list

val succs : t -> string -> string list
val preds : t -> string -> string list

(** [reach_fwd g ~skip roots] — BFS forest over call edges from [roots],
    never expanding nodes satisfying [skip].  The result maps every
    reached node to its BFS parent (roots map to themselves); parent
    chains are lexicographically-least shortest paths, so messages built
    from them are byte-stable. *)
val reach_fwd : t -> skip:(string -> bool) -> string list -> (string, string) Hashtbl.t

(** Same, over reversed edges (who can reach me). *)
val reach_bwd : t -> skip:(string -> bool) -> string list -> (string, string) Hashtbl.t

(** Root-to-node path through a [reach_*] parent map. *)
val chain : (string, string) Hashtbl.t -> string -> string list
