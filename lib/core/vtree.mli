(** The verification tree of Section 3.3.

    A tree with [k] leaves and [r + 1] levels.  [L_0] is the leaves, [L_r]
    the root.  The degree at level 1 is [log^(r-1) k] and at level
    [2 <= i <= r] it is [log^(r-i) k / log^(r-i+1) k] (integer-clamped), so
    a node [v] in [L_i] covers about [log^(r-i) k] leaves — the shape that
    makes the per-stage equality traffic sum to [O(k log^(r) k)].

    Nodes cover contiguous leaf ranges, so a node is just a slice
    descriptor. *)

type node = { first_leaf : int; leaf_count : int }

(** A built tree: [levels.(0)] is the [k] leaves, [levels.(r)] the root.
    [private] so shapes only come from {!build}. *)
type t = private { k : int; r : int; levels : node array array }

(** [build ~k ~r] for [k >= 1], [r >= 1].  [levels] has [r + 1] entries;
    [levels.(0)] has [k] single-leaf nodes; [levels.(r)] is a single root
    covering everything. *)
val build : k:int -> r:int -> t

(** Target degree at [level] in [1, r] (before clamping to what remains). *)
val degree : k:int -> r:int -> level:int -> int

(** Leaf indices covered by a node. *)
val leaves : node -> int list
