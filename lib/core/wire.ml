let of_set set = Bitio.Pool.payload (fun buf -> Bitio.Set_codec.write_gaps buf set)

let of_sets sets =
  Bitio.Pool.payload (fun buf -> List.iter (fun set -> Bitio.Set_codec.write_gaps buf set) sets)

let gamma_msg v = Bitio.Pool.payload (fun buf -> Bitio.Codes.write_gamma buf v)

let read_gamma_msg payload = Bitio.Codes.read_gamma (Bitio.Bitreader.create payload)

let bit_msg b = Bitio.Bits.of_bools [ b ]

let read_bit_msg payload = Bitio.Bits.get payload 0

let bitmap_msg flags =
  Bitio.Pool.payload (fun buf -> Array.iter (Bitio.Bitbuf.write_bit buf) flags)

let read_bitmap_msg payload ~width =
  if Bitio.Bits.length payload < width then invalid_arg "Wire.read_bitmap_msg";
  Array.init width (Bitio.Bits.get payload)
