(** Set-disjointness baselines ([DISJ^n_k]) — the problem whose lower bound
    [R(DISJ) = Ω(k)] makes the paper's [O(k)]-bit intersection protocols
    optimal.

    Two upper bounds are provided:

    - {!via_intersection}: the reduction [DISJ <= INT] — run any
      intersection protocol and report emptiness.
    - {!hw}: a density-parametrized variant of the Håstad–Wigderson
      protocol.  Shared randomness defines a stream of random sets
      [Z_1, Z_2, ...]; the active party sends the index of the first [Z_j]
      containing its current set, and the peer prunes its own set to
      [Z_j].  Intersection elements survive every pruning (one-sided:
      "intersecting" answers can be wrong only by early termination,
      "disjoint" answers are certain).  The original protocol draws each
      [Z] with density 1/2, making the index search cost [2^|S|] time — the
      classic exponential-time/linear-communication trade-off; we expose
      [bits_per_message] [B], drawing densities [2^(-B/|current set|)] so
      the search stays polynomial while preserving the
      communication/round trade-off envelope (larger [B] = fewer, fatter
      messages). *)

type outcome = {
  disjoint : bool;  (** agreed verdict *)
  cost : Commsim.Cost.t;
}

(** [hw ?bits_per_message ?round_cap_factor rng ~universe s t].  Error is
    one-sided: [disjoint = true] is always correct; [disjoint = false] is
    wrong with probability vanishing in the round cap. *)
val hw :
  ?bits_per_message:int ->
  ?round_cap_factor:int ->
  Prng.Rng.t ->
  universe:int ->
  Iset.t ->
  Iset.t ->
  outcome

(** Decide disjointness by running any intersection protocol and testing
    the candidates for emptiness (the reduction of Corollary 3.2). *)
val via_intersection :
  Protocol.t -> Prng.Rng.t -> universe:int -> Iset.t -> Iset.t -> outcome
