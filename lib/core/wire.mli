(** Small helpers for assembling protocol messages. *)

(** Canonical bit-string encoding of a set (gap code); equal sets have equal
    encodings and vice versa — the representation equality tests run on. *)
val of_set : Iset.t -> Bitio.Bits.t

(** Canonical encoding of an ordered list of sets (e.g. the leaf assignments
    under a tree node, in leaf order). *)
val of_sets : Iset.t list -> Bitio.Bits.t

(** A single Elias-gamma-coded integer as a whole message. *)
val gamma_msg : int -> Bitio.Bits.t

(** Decode a message written by {!gamma_msg}. *)
val read_gamma_msg : Bitio.Bits.t -> int

(** A one-bit message. *)
val bit_msg : bool -> Bitio.Bits.t

(** Decode a message written by {!bit_msg}. *)
val read_bit_msg : Bitio.Bits.t -> bool

(** A [width]-bit bitmap as a whole message, [width] mutually known. *)
val bitmap_msg : bool array -> Bitio.Bits.t

(** Decode a message written by {!bitmap_msg} with the same [width]. *)
val read_bitmap_msg : Bitio.Bits.t -> width:int -> bool array
