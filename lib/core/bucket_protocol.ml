let max_retries = 4

(* Instance-count ceiling: E[count] <= 6k (paper, eq. (1)); 20k is far in the
   tail, so retries are rare while the worst case stays linear. *)
let instance_ceiling k = 20 * k

let run_party ?sequential ?(reduce = true) role rng ~universe ~k chan mine =
  if k < 1 then invalid_arg "Bucket_protocol.run_party";
  let open Commsim.Transport in
  let n_reduced = if reduce then max 64 (k * k * k) else universe in
  (* Universe reduction H: [n] -> [k^3]; identity when already small. *)
  let images, preimages =
    if universe <= n_reduced then (mine, None)
    else begin
      let h =
        Hashing.Carter_wegman.create
          (Prng.Rng.with_label rng "bucket/universe-reduce")
          ~universe ~range:n_reduced
      in
      let table = Hashtbl.create (Array.length mine) in
      Array.iter
        (fun x ->
          let image = Hashing.Carter_wegman.hash h x in
          Hashtbl.replace table image
            (x :: Option.value ~default:[] (Hashtbl.find_opt table image)))
        mine;
      (Iset.of_list (List.of_seq (Hashtbl.to_seq_keys table)), Some table)
    end
  in
  let width = Bitio.Set_codec.universe_width n_reduced in
  let encode_image image =
    Bitio.Pool.payload (fun buf -> Bitio.Bitbuf.write_bits buf ~width image)
  in
  (* Draw buckets, exchange counts; retry together if the pair count is
     extreme (both parties see the same counts, so they stay in lockstep). *)
  let rec choose_buckets attempt =
    if attempt > 0 then Obsv.Metrics.incr "bucket/retries";
    let h =
      Hashing.Carter_wegman.create
        (Prng.Rng.with_label rng ("bucket/assign/" ^ string_of_int attempt))
        ~universe:n_reduced ~range:k
    in
    let buckets = Iset.partition_by (Hashing.Carter_wegman.hash h) ~bins:k images in
    let my_counts = Array.map Array.length buckets in
    let counts_msg =
      Bitio.Pool.payload (fun buf -> Array.iter (Bitio.Codes.write_gamma buf) my_counts)
    in
    let their_counts =
      let read payload =
        let reader = Bitio.Bitreader.create payload in
        Array.init k (fun _ -> Bitio.Codes.read_gamma reader)
      in
      Obsv.Trace.span Obsv.Phases.bucket_assign ~attrs:[ ("attempt", string_of_int attempt) ] (fun () ->
          match role with
          | `Alice ->
              chan.send counts_msg;
              read (chan.recv ())
          | `Bob ->
              let payload = chan.recv () in
              chan.send counts_msg;
              read payload)
    in
    let pair_count = ref 0 in
    Array.iteri (fun i c -> pair_count := !pair_count + (c * their_counts.(i))) my_counts;
    if !pair_count > instance_ceiling k && attempt < max_retries then choose_buckets (attempt + 1)
    else (buckets, their_counts, !pair_count)
  in
  let buckets, their_counts, pair_count = choose_buckets 0 in
  Array.iter (fun bucket -> Obsv.Metrics.observe "bucket/occupancy" (Array.length bucket)) buckets;
  (* Build the common instance table: for bucket i, the cross product of
     Alice's and Bob's elements in rank order.  Each party's input to an
     instance is its own element's fixed-width image encoding.  The pair
     count is known from the exchanged counts, so the tables are filled
     directly (the reversed-list formulation allocated two cons cells plus
     a rev copy per instance — a measurable slice of the trial profile at
     ~6k expected instances). *)
  let instances = Array.make pair_count Bitio.Bits.empty in
  let owners = Array.make pair_count 0 in
  let pos = ref 0 in
  Array.iteri
    (fun i bucket ->
      (* Canonical instance order, identical on both sides: bucket index,
         then Alice's rank, then Bob's rank.  Each element is encoded once
         and the same payload value reused across its cross-product row. *)
      let encoded = Array.map encode_image bucket in
      let s_count, t_count =
        match role with
        | `Alice -> (Array.length bucket, their_counts.(i))
        | `Bob -> (their_counts.(i), Array.length bucket)
      in
      for a = 0 to s_count - 1 do
        for b = 0 to t_count - 1 do
          let my_rank = match role with `Alice -> a | `Bob -> b in
          instances.(!pos) <- encoded.(my_rank);
          owners.(!pos) <- bucket.(my_rank);
          incr pos
        done
      done)
    buckets;
  Obsv.Metrics.set_gauge "bucket/instances" (Array.length instances);
  let eq_rng = Prng.Rng.with_label rng "bucket/eq-batch" in
  let verdicts =
    Obsv.Trace.span Obsv.Phases.bucket_eq ~attrs:[ ("instances", string_of_int (Array.length instances)) ]
      (fun () ->
        match role with
        | `Alice -> Eq_batch.run_alice ?sequential eq_rng chan instances
        | `Bob -> Eq_batch.run_bob ?sequential eq_rng chan instances)
  in
  let matched_images = ref [] in
  Array.iteri (fun idx equal -> if equal then matched_images := owners.(idx) :: !matched_images) verdicts;
  let originals =
    match preimages with
    | None -> !matched_images
    | Some table -> List.concat_map (fun image -> Hashtbl.find table image) !matched_images
  in
  Iset.of_list originals

let protocol ?sequential ?reduce ?k () =
  {
    Protocol.name = "bucket-eq(sqrt-k rounds)";
    sandwich = true;
    run =
      (fun rng ~universe s t ->
        Protocol.validate_inputs ~universe s t;
        let k = match k with Some k -> k | None -> max 1 (max (Array.length s) (Array.length t)) in
        let (alice, bob), cost =
          Commsim.Two_party.run
            ~alice:(fun chan -> run_party ?sequential ?reduce `Alice rng ~universe ~k chan s)
            ~bob:(fun chan -> run_party ?sequential ?reduce `Bob rng ~universe ~k chan t)
        in
        { Protocol.alice; bob; cost });
  }
