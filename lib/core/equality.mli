(** The equality test of Fact 3.5.

    Alice sends a [bits]-bit shared-randomness tag of her string; Bob
    compares it against the tag of his own string and replies with the
    verdict.  Two messages, [bits + 1] bits total.

    - if [x = y], both output [true] with probability 1;
    - if [x <> y], both output [false] except with probability
      [O(2^-bits)] (see {!Strhash} for the exact constant).

    Both parties must call their side with generators sharing the same
    root (same label chain of the shared randomness); the tag function is
    derived by label only, so it does not matter how many values either
    side already consumed. *)

(** Alice's side: sends the [bits]-bit tag, receives the verdict. *)
val run_alice : Prng.Rng.t -> bits:int -> Commsim.Transport.t -> Bitio.Bits.t -> bool

(** Bob's side: compares tags, sends the verdict back. *)
val run_bob : Prng.Rng.t -> bits:int -> Commsim.Transport.t -> Bitio.Bits.t -> bool

(** Equality of whole sets, via their canonical encoding ({!Wire.of_set}). *)
val run_alice_set : Prng.Rng.t -> bits:int -> Commsim.Transport.t -> Iset.t -> bool

(** Bob's side of {!run_alice_set}. *)
val run_bob_set : Prng.Rng.t -> bits:int -> Commsim.Transport.t -> Iset.t -> bool
