(** Protocol Basic-Intersection (Lemma 3.3).

    The parties exchange set sizes, then exchange [bits]-wide hash tags of
    their elements under a shared random function, and each keeps the
    elements whose tag appears on the other side:
    [S' = h^-1(h(T)) ∩ S] and [T' = h^-1(h(S)) ∩ T].

    Guarantees (Lemma 3.3):
    + [S' ⊆ S] and [T' ⊆ T];
    + if [S ∩ T = ∅] then ... [S' ∩ T' = ∅] with probability 1 — in this
      tag-based form the stronger statement holds that no element of [S']
      pairs with an equal element of [T'];
    + [S ∩ T ⊆ S'] and [S ∩ T ⊆ T'] with probability 1, and with
      probability at least [1 - failure], [S' = T' = S ∩ T].

    Four messages / four rounds, [O((|S| + |T|) * (log (|S| + |T|) +
    log (1 / failure)))] bits.

    The [write_tags]/[read_tag_keys]/[filter_by_tags] helpers expose the
    message bodies so the tree protocol (Section 3.3) can batch many
    instances of this protocol into single messages. *)

(** Tag width needed so that [m] elements produce no cross collisions except
    with probability [failure]. *)
val tag_bits : m:int -> failure:float -> int

(** Append the tags of all elements of a set. *)
val write_tags : Bitio.Bitbuf.t -> Strhash.fn -> Iset.t -> unit

(** Read [count] tags of [bits] bits each into a membership table. *)
val read_tag_keys : Bitio.Bitreader.t -> bits:int -> count:int -> (string, unit) Hashtbl.t

(** Keep the elements whose tag occurs in the other party's table. *)
val filter_by_tags : Strhash.fn -> (string, unit) Hashtbl.t -> Iset.t -> Iset.t

(** Standalone 4-round runners ([failure] in (0, 1)).  Both sides must use
    generators in identical states. *)
val run_alice : Prng.Rng.t -> failure:float -> Commsim.Transport.t -> Iset.t -> Iset.t

(** Bob's side of {!run_alice}; same [failure] and generator contract. *)
val run_bob : Prng.Rng.t -> failure:float -> Commsim.Transport.t -> Iset.t -> Iset.t

(** Protocol record (runs the standalone form; sandwich contract holds). *)
val protocol : failure:float -> Protocol.t
