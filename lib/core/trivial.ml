let protocol =
  {
    Protocol.name = "trivial";
    sandwich = true;
    run =
      (fun _rng ~universe s t ->
        Protocol.validate_inputs ~universe s t;
        let alice chan =
          Obsv.Trace.span Obsv.Phases.trivial_offer (fun () -> Commsim.Transport.send chan (Wire.of_set s));
          Bitio.Set_codec.read_gaps (Bitio.Bitreader.create (Commsim.Transport.recv chan))
        in
        let bob chan =
          let received =
            Bitio.Set_codec.read_gaps (Bitio.Bitreader.create (Commsim.Transport.recv chan))
          in
          let intersection = Iset.inter received t in
          Obsv.Trace.span Obsv.Phases.trivial_reply (fun () ->
              Commsim.Transport.send chan (Wire.of_set intersection));
          intersection
        in
        let (alice, bob), cost = Commsim.Two_party.run ~alice ~bob in
        { Protocol.alice; bob; cost });
  }

let protocol_entropy =
  {
    Protocol.name = "trivial-entropy-coded";
    sandwich = true;
    run =
      (fun _rng ~universe s t ->
        Protocol.validate_inputs ~universe s t;
        let encode set =
          Bitio.Pool.payload (fun buf -> Bitio.Enum_codec.write buf ~universe set)
        in
        let decode payload = Bitio.Enum_codec.read (Bitio.Bitreader.create payload) ~universe in
        let alice chan =
          Obsv.Trace.span Obsv.Phases.trivial_offer (fun () -> Commsim.Transport.send chan (encode s));
          decode (Commsim.Transport.recv chan)
        in
        let bob chan =
          let received = decode (Commsim.Transport.recv chan) in
          let intersection = Iset.inter received t in
          Obsv.Trace.span Obsv.Phases.trivial_reply (fun () -> Commsim.Transport.send chan (encode intersection));
          intersection
        in
        let (alice, bob), cost = Commsim.Two_party.run ~alice ~bob in
        { Protocol.alice; bob; cost });
  }

let protocol_full_exchange =
  {
    Protocol.name = "trivial-full-exchange";
    sandwich = true;
    run =
      (fun _rng ~universe s t ->
        Protocol.validate_inputs ~universe s t;
        let party mine chan =
          Obsv.Trace.span Obsv.Phases.trivial_offer (fun () -> Commsim.Transport.send chan (Wire.of_set mine));
          let theirs =
            Bitio.Set_codec.read_gaps (Bitio.Bitreader.create (Commsim.Transport.recv chan))
          in
          Iset.inter mine theirs
        in
        let (alice, bob), cost = Commsim.Two_party.run ~alice:(party s) ~bob:(party t) in
        { Protocol.alice; bob; cost });
  }
