(** The main protocol (Theorem 1.1 / Theorem 3.6): for any [r >= 1], set
    intersection in [O(r)] rounds with expected communication
    [O(k log^(r) k)] and success probability [1 - 1/poly(k)].

    Implementation follows Algorithm 1.  A shared hash drops elements into
    [k] buckets (the tree leaves).  The protocol then runs [r] stages; stage
    [i] runs one equality test per node of level [L_i] of the verification
    tree ({!Vtree}), with per-stage error [1 / (log^(r-i-1) k)^4], and
    re-runs {!Basic_intersection} (with the same per-stage error target) on
    every leaf below a failed node.  All tests and re-runs of a stage are
    batched into four messages, so the whole protocol takes at most [4r]
    messages — within the paper's [6r] budget.

    The outputs are the unions of each party's final leaf assignments; they
    satisfy the candidate-sandwich contract of {!Protocol}, and equal
    [S ∩ T] on both sides except with probability [O(1/k^3)]. *)

(** [run_party role rng ~universe ~r ~k chan mine] is the message-level
    runner ([`Alice] talks first); exposed for embedding in multi-party
    executions.

    Ablation knobs (defaults reproduce the paper):
    [buckets] overrides the number of leaves (paper: [k]);
    [flat_eq_bits] replaces the per-stage equality budget
    [4 log (log^(r-i-1) k)] with one fixed width;
    [budget] (total bits, counted identically by both sides) arms the
    worst-case truncation described at {!protocol_budgeted}: when a stage
    would start beyond the budget, both parties abandon the tree and fall
    back to the deterministic exchange over the same channel. *)
val run_party :
  ?buckets:int ->
  ?flat_eq_bits:int ->
  ?budget:int ->
  [ `Alice | `Bob ] ->
  Prng.Rng.t ->
  universe:int ->
  r:int ->
  k:int ->
  Commsim.Transport.t ->
  Iset.t ->
  Iset.t

(** [protocol ~r ()] runs with [k = max (|S|, |T|, 1)] (the promise
    parameter is taken from the actual inputs) unless [k] is forced. *)
val protocol : ?buckets:int -> ?flat_eq_bits:int -> ?k:int -> r:int -> unit -> Protocol.t

(** Convenience: [r = log* k], the optimal-communication configuration. *)
val protocol_log_star : ?k:int -> unit -> Protocol.t

(** The paper's worst-case conversion ("terminating the protocol if it
    consumes more than a constant factor times its expected communication
    cost"): both parties count their own traffic, and if the tree protocol
    would exceed [budget_factor * k * log^(r) k] bits they abandon it at a
    stage boundary and fall back to the deterministic exchange — bounding
    the worst case at [O(k log(n/k))] while keeping the expected cost.
    Exposed for tests and the bench; with sane factors the fallback fires
    with vanishing probability. *)
val protocol_budgeted : ?budget_factor:int -> ?k:int -> r:int -> unit -> Protocol.t
