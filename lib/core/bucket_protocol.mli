(** The [O(√k)]-round, [O(k)]-bit protocol of Theorem 3.1.

    Pipeline: (1) a shared hash [H : \[n\] -> \[N\]], [N = k^3], shrinks
    elements to [3 log k]-bit fingerprints (skipped when the universe is
    already that small); (2) a shared hash [h : \[N\] -> \[k\]] splits both
    sets into [k] buckets; (3) the parties exchange all bucket counts
    ([O(k)] bits, Elias-coded); (4) every cross pair within a bucket becomes
    one instance of Equality on [3 log k]-bit strings — [6k] instances in
    expectation (equation (1) of the paper) — solved by the amortized batch
    equality protocol {!Eq_batch}; (5) a pair that tests equal puts the
    corresponding original elements into the candidate intersections.

    If the instance count explodes (bad bucket luck), both parties agree
    from the public counts to redraw [h]; this adds [O(k)] bits per retry
    and happens with vanishing probability.

    Outputs satisfy the candidate-sandwich contract; both equal [S ∩ T]
    except with probability [O(1/k) + 2^-Ω(√k)]. *)

(** [reduce] (default [true]) enables the FKS-style universe reduction; the
    A2 ablation turns it off to expose how the instance strings — and hence
    the total bits — grow with [log n]. *)
val run_party :
  ?sequential:bool ->
  ?reduce:bool ->
  [ `Alice | `Bob ] ->
  Prng.Rng.t ->
  universe:int ->
  k:int ->
  Commsim.Transport.t ->
  Iset.t ->
  Iset.t

(** Protocol record over {!run_party}; [k] (default 64) sizes the bucket
    table, [sequential] and [reduce] as in {!run_party}. *)
val protocol : ?sequential:bool -> ?reduce:bool -> ?k:int -> unit -> Protocol.t
