type outcome = { disjoint : bool; cost : Commsim.Cost.t }

type control = Index | Empty_set | Give_up

let write_control buf control =
  let code = match control with Index -> 0 | Empty_set -> 1 | Give_up -> 2 in
  Bitio.Bitbuf.write_bits buf ~width:2 code

let read_control reader =
  match Bitio.Bitreader.read_bits reader ~width:2 with
  | 0 -> Index
  | 1 -> Empty_set
  | 2 -> Give_up
  | _ -> failwith "Disjointness: bad control code"

(* Membership oracle for the shared random set Z_(round,j): each candidate
   set gets its own 30-bit shared tag function over elements; an element is
   in Z iff its tag falls below the density threshold. *)
let set_fn rng ~round j =
  Strhash.create (Prng.Rng.with_label rng (Printf.sprintf "hw/r%d/z%d" round j)) ~bits:30

let membership fn threshold x =
  let tag = Strhash.apply_int fn x in
  Bitio.Bits.extract tag ~pos:0 ~width:24 lor (Bitio.Bits.extract tag ~pos:24 ~width:6 lsl 24)
  < threshold

let threshold_of_density q =
  max 1 (int_of_float (q *. 1073741824.0 (* 2^30 *)))

let hw ?(bits_per_message = 8) ?(round_cap_factor = 4) rng ~universe s t =
  Protocol.validate_inputs ~universe s t;
  let b = max 2 bits_per_message in
  let k0 = max 1 (max (Array.length s) (Array.length t)) in
  let cap = round_cap_factor * (2 + (((k0 * (Iterated_log.log2_ceil (k0 + 2) + 4)) + b) / b)) in
  let party is_alice mine chan =
    let open Commsim.Transport in
    let current = ref mine in
    let round = ref 0 in
    let verdict = ref None in
    while !verdict = None do
      let my_turn = (!round mod 2 = 0) = is_alice in
      if my_turn then begin
        let size = Array.length !current in
        if size = 0 then begin
          let buf = Bitio.Bitbuf.create () in
          write_control buf Empty_set;
          Obsv.Trace.span Obsv.Phases.disj_round (fun () -> chan.send (Bitio.Bitbuf.contents buf));
          verdict := Some true
        end
        else if !round >= cap then begin
          let buf = Bitio.Bitbuf.create () in
          write_control buf Give_up;
          Obsv.Trace.span Obsv.Phases.disj_round (fun () -> chan.send (Bitio.Bitbuf.contents buf));
          verdict := Some false
        end
        else begin
          let q = Float.pow 2.0 (-.float_of_int b /. float_of_int size) in
          let threshold = threshold_of_density q in
          let covered j =
            let fn = set_fn rng ~round:!round j in
            Array.for_all (fun x -> membership fn threshold x) !current
          in
          let rec find j = if covered j then j else find (j + 1) in
          let j = find 1 in
          let buf = Bitio.Bitbuf.create () in
          write_control buf Index;
          Bitio.Codes.write_gamma buf size;
          Bitio.Codes.write_gamma buf (j - 1);
          Obsv.Trace.span Obsv.Phases.disj_round (fun () -> chan.send (Bitio.Bitbuf.contents buf))
        end
      end
      else begin
        let reader = Bitio.Bitreader.create (chan.recv ()) in
        match read_control reader with
        | Empty_set -> verdict := Some true
        | Give_up -> verdict := Some false
        | Index ->
            let their_size = Bitio.Codes.read_gamma reader in
            let j = Bitio.Codes.read_gamma reader + 1 in
            let q = Float.pow 2.0 (-.float_of_int b /. float_of_int (max 1 their_size)) in
            let threshold = threshold_of_density q in
            let fn = set_fn rng ~round:!round j in
            current := Iset.filter (fun y -> membership fn threshold y) !current
      end;
      incr round
    done;
    Option.get !verdict
  in
  let (alice, bob), cost =
    Commsim.Two_party.run ~alice:(party true s) ~bob:(party false t)
  in
  assert (alice = bob);
  { disjoint = alice; cost }

let via_intersection protocol rng ~universe s t =
  let outcome = protocol.Protocol.run rng ~universe s t in
  {
    disjoint =
      Iset.cardinal outcome.Protocol.alice = 0 && Iset.cardinal outcome.Protocol.bob = 0;
    cost = outcome.Protocol.cost;
  }
