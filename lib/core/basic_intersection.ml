let tag_bits ~m ~failure =
  if failure <= 0.0 || failure >= 1.0 then invalid_arg "Basic_intersection.tag_bits: failure";
  let m = max 2 m in
  let pair_bits = 2 * Iterated_log.log2_ceil m in
  let failure_bits = int_of_float (Float.ceil (-.log failure /. log 2.0)) in
  max 4 (pair_bits + failure_bits)

let write_tags buf fn set = Array.iter (fun x -> Strhash.write_int fn buf x) set

let read_tag_keys reader ~bits ~count =
  let table = Hashtbl.create (2 * count) in
  for _ = 1 to count do
    Hashtbl.replace table (Bitio.Bits.key (Bitio.Bitreader.read_blob reader ~bits)) ()
  done;
  table

let filter_by_tags fn table set =
  Iset.filter (fun x -> Hashtbl.mem table (Bitio.Bits.key (Strhash.apply_int fn x))) set

(* The standalone 4-message exchange.  [mine]/[theirs] differ only in who
   talks first, so both runners share this body. *)
let run rng ~failure chan ~first mine =
  let open Commsim.Transport in
  let my_size = Array.length mine in
  let their_size =
    Obsv.Trace.span Obsv.Phases.bi_sizes (fun () ->
        if first then begin
          chan.send (Wire.gamma_msg my_size);
          Wire.read_gamma_msg (chan.recv ())
        end
        else begin
          let n = Wire.read_gamma_msg (chan.recv ()) in
          chan.send (Wire.gamma_msg my_size);
          n
        end)
  in
  let m = my_size + their_size in
  let bits = tag_bits ~m ~failure in
  let fn = Strhash.create (Prng.Rng.with_label rng "basic-intersection/fn") ~bits in
  let my_tags = Bitio.Pool.payload (fun buf -> write_tags buf fn mine) in
  Obsv.Metrics.observe "bi/tag_bits" bits;
  let their_tags =
    Obsv.Trace.span Obsv.Phases.bi_tags ~attrs:[ ("bits", string_of_int bits) ] (fun () ->
        if first then begin
          chan.send my_tags;
          chan.recv ()
        end
        else begin
          let t = chan.recv () in
          chan.send my_tags;
          t
        end)
  in
  let table = read_tag_keys (Bitio.Bitreader.create their_tags) ~bits ~count:their_size in
  filter_by_tags fn table mine

let run_alice rng ~failure chan s = run rng ~failure chan ~first:true s

let run_bob rng ~failure chan t = run rng ~failure chan ~first:false t

let protocol ~failure =
  {
    Protocol.name = Printf.sprintf "basic-intersection(failure=%g)" failure;
    sandwich = true;
    run =
      (fun rng ~universe s t ->
        Protocol.validate_inputs ~universe s t;
        let (alice, bob), cost =
          Commsim.Two_party.run
            ~alice:(fun chan -> run_alice rng ~failure chan s)
            ~bob:(fun chan -> run_bob rng ~failure chan t)
        in
        { Protocol.alice; bob; cost });
  }
