(** Verify-and-repeat over an adversarial channel — {!Verified} generalized
    to executions where the channel itself, not just the protocol's
    randomness, can fail ({!Commsim.Faults}).

    Corruption is more dangerous than protocol randomness: a damaged
    payload breaks the candidate-sandwich contract, after which "the
    candidates agree" no longer implies "the candidates are [S ∩ T]" (both
    parties can agree on an intersection computed against a corrupted
    input).  So every attempt runs over a {e guarded} transport ({!guard}):
    each payload is framed with a sequence number and a [tag_bits]-bit
    shared-randomness fingerprint.  Bit flips and truncations are detected
    as fingerprint mismatches, desynchronizing drops as sequence gaps —
    both abort the attempt via {!Corrupted} — and duplicates are discarded
    by sequence number.  An intact attempt is therefore semantically a
    clean execution, and the final [check_bits]-bit equality test of the
    two candidates regains its Section-4 meaning.

    An attempt can end four ways: both sides accept (done), the equality
    check rejects (the base protocol's own randomness failed), the
    conversation wedges on a dropped message ({!Commsim.Network.Lost}), or
    a party aborts on detected corruption / a codec error
    ({!Commsim.Network.Crashed}).  Every non-accepting outcome triggers a
    retry with fresh randomness; a {e rejected check} additionally doubles
    the verification width — backoff in bits, not time: consecutive
    rejections buy exponentially more confidence, so agreement that fooled
    one check is caught by the next with overwhelming probability.
    Detected damage retries at the same width (it carries no evidence
    against the current fingerprints), and transport tags stay at a fixed
    32 bits — growing them would make every retry a fatter flip target
    than the attempt that just failed.

    When the attempt/bit budget is exhausted the wrapper degrades to the
    deterministic trivial exchange over a reliable transport (modelling a
    retransmitting fallback link at {!Trivial} cost), so the returned set
    is {e always} exactly [S ∩ T] unless an accepted fingerprint collided —
    probability [<= attempts * 2^-check_bits], the same [2^-k]-style bound
    the paper's Section 4 amplification pays. *)

(** One side of a base protocol, runnable over any channel.  Must produce a
    sandwich candidate ({!Protocol}) and be deterministic given its
    generator; both sides derive per-attempt randomness from the same
    labels, so a retry re-synchronizes the parties from scratch. *)
type party = Prng.Rng.t -> universe:int -> Iset.t -> Commsim.Transport.t -> Iset.t

(** A named pair of parties the resilient wrapper can retry. *)
type base = { name : string; alice : party; bob : party }

(** The deterministic exchange ({!Trivial.protocol}) as a base. *)
val trivial_base : base

(** The tree protocol ({!Tree_protocol.run_party}); [r] defaults to
    [log* k]. *)
val tree_base : ?r:int -> k:int -> unit -> base

(** The bucket protocol ({!Bucket_protocol.run_party}). *)
val bucket_base : k:int -> unit -> base

(** Retry limits: at most [attempts] base executions, and no new attempt
    once [bits] total bits (over the faulty channel) have been spent. *)
type budget = { attempts : int; bits : int }

(** [{ attempts = 10; bits = max_int }]. *)
val default_budget : budget

(** Raised (inside a party) by a guarded channel on detected damage:
    fingerprint mismatch, truncated frame, or sequence gap.  Surfaces as
    {!Commsim.Network.Crashed} and triggers a retry. *)
exception Corrupted of string

(** [guard rng ~tag_bits chan] wraps [chan] in the resilient framing
    described above.  Both parties must call it with generators in
    identical states (the fingerprint function is drawn from shared
    randomness) and the same [tag_bits].  Adds [20 + tag_bits] bits per
    message; undetected corruption probability is [~2^-tag_bits] per
    message. *)
val guard : Prng.Rng.t -> tag_bits:int -> Commsim.Transport.t -> Commsim.Transport.t

(** Why one attempt failed. *)
type failure =
  | Check_rejected  (** the equality check said the candidates differ *)
  | Channel_lost of string  (** wedged on dropped messages (diagnosis) *)
  | Party_crashed of string  (** a party raised on a corrupted payload *)

(** One row of the attempt log: the attempt's 1-based index, the check
    width it ran at, the bits it burned over the faulty channel, and how it
    ended ([None] = both sides accepted). *)
type attempt_info = { index : int; width : int; bits : int; failure : failure option }

type report = {
  result : Iset.t;
  verified : bool;  (** an equality check accepted the result *)
  degraded : bool;  (** budget exhausted; result from the trivial fallback *)
  attempts : int;  (** base executions, including aborted ones *)
  failures : failure list;  (** chronological; length [attempts - 1] or [attempts] *)
  attempt_log : attempt_info list;
      (** chronological, one row per attempt; the rows' [bits] sum to
          [faulty_bits], and every row but a final successful one carries
          [Some failure] — this is what the session layer and the chaos
          harness aggregate wasted-bits and recovery-latency stats from *)
  check_bits_final : int;  (** fingerprint width of the last check *)
  faulty_bits : int;  (** bits metered over the adversarial channel *)
  fallback_bits : int;  (** bits of the reliable fallback (0 unless degraded) *)
  cost : Commsim.Cost.t;  (** aggregate over all attempts and the fallback *)
  tallies : Commsim.Faults.tallies;  (** total injected damage observed *)
}

(** [attempt_once base ~plan ~check_bits ~attempt rng ~universe s t]: one
    guarded execution of [base] followed by one [check_bits]-bit equality
    check, as a reusable primitive.  [rng] must already be the per-attempt
    generator (base/check/transport labels are derived from it on both
    sides) and [plan] must already be salted for this attempt; [attempt] is
    only a trace-span attribute.  Returns the accepted candidate or the
    {!failure} that ended the attempt, plus the attempt's cost and fault
    tallies.  A rejected check additionally carries Alice's {e unverified}
    candidate — the session layer checkpoints it as a best-effort partial
    result; it must never be reported as exact.  {!run} and the session
    ladder ([Session.Machine]) are both built on this, so a session attempt
    is bit-for-bit the execution a resilient retry would have performed. *)
val attempt_once :
  base ->
  plan:Commsim.Faults.plan ->
  check_bits:int ->
  attempt:int ->
  Prng.Rng.t ->
  universe:int ->
  Iset.t ->
  Iset.t ->
  (Iset.t, failure * Iset.t option) result * Commsim.Cost.t * Commsim.Faults.tallies

(** [run base ~plan ?budget ?check_bits rng ~universe s t].  [check_bits]
    (default [max 24 k], with [k] the larger input size) is the initial
    fingerprint width; it doubles after every failed attempt, capped at
    512.  Reproducible: the report is a pure function of
    [(base, plan, budget, check_bits, rng root, universe, s, t)]. *)
val run :
  base ->
  plan:Commsim.Faults.plan ->
  ?budget:budget ->
  ?check_bits:int ->
  Prng.Rng.t ->
  universe:int ->
  Iset.t ->
  Iset.t ->
  report

(** Count the attempt-level failures of a report by kind:
    [(rejected, lost, crashed)]. *)
val failure_counts : report -> int * int * int
