(** Success amplification by verify-and-repeat (Section 4, first paragraph).

    Given a base protocol satisfying the candidate-sandwich contract
    ({!Protocol}), run it, then spend [bits] extra bits on an equality test
    of the two candidate outputs.  If they agree, they are exactly [S ∩ T]
    (Corollary 3.4 / Proposition 3.9), so a passed check is wrong only when
    the equality test itself fails: error [<= attempts * 2^-bits ≈ 2^-k]
    with the paper's [bits = k].  On a failed check the base protocol is
    re-run with fresh randomness — [O(1)] expected repetitions.

    The verification phase runs strictly after the base protocol, so costs
    compose sequentially ({!Commsim.Cost.add_seq}). *)

type result = {
  outcome : Protocol.outcome;
  attempts : int;  (** base-protocol executions (>= 1) *)
  verified : bool;  (** the final equality check passed *)
}

(** [run base ~bits ~max_attempts rng ~universe s t].  Raises
    [Invalid_argument] when [base] does not declare the sandwich
    contract. *)
val run :
  Protocol.t ->
  bits:int ->
  max_attempts:int ->
  Prng.Rng.t ->
  universe:int ->
  Iset.t ->
  Iset.t ->
  result

(** Wrap as a protocol; [bits] defaults to [max 16 k], [max_attempts] to
    20. *)
val protocol : ?bits:int -> ?max_attempts:int -> Protocol.t -> Protocol.t

(** What one side of {!run_party} learned: the candidate it ended on, how
    many base executions it took, and whether the final equality check
    passed.  When [verified] is [false] the candidate is best-effort only
    (the attempt budget ran out) — callers must not treat it as the exact
    intersection. *)
type party_result = { candidate : Iset.t; attempts : int; verified : bool }

(** Message-level verify-and-repeat over an existing channel, for embedding
    in multi-party executions.  [party] must produce a sandwich candidate
    and be deterministic given its generator; it is re-invoked with
    generators labelled ["attempt<i>"] until the [bits]-bit equality check
    of the two candidates passes or attempts run out (distinguished by the
    [verified] field of the result).  Both sides must use identical
    generator states, the same [bits] and the same [max_attempts]. *)
val run_party :
  [ `Alice | `Bob ] ->
  Prng.Rng.t ->
  bits:int ->
  max_attempts:int ->
  Commsim.Transport.t ->
  party:(Prng.Rng.t -> Commsim.Transport.t -> Iset.t) ->
  party_result
