let seed_bits ~universe ~k =
  Iterated_log.log2_ceil (max 2 k)
  + Iterated_log.log2_ceil (max 2 (Iterated_log.log2_ceil (max 2 universe)))
  + 32

let protocol base =
  {
    Protocol.name = "private-coin(" ^ base.Protocol.name ^ ")";
    sandwich = base.Protocol.sandwich;
    run =
      (fun rng ~universe s t ->
        Protocol.validate_inputs ~universe s t;
        let k = max 1 (max (Array.length s) (Array.length t)) in
        let bits = min 62 (seed_bits ~universe ~k) in
        (* Alice's private randomness is [rng]; the seed she ships is the
           only randomness Bob ever sees. *)
        let (seed_at_alice, seed_at_bob), exchange_cost =
          Commsim.Two_party.run
            ~alice:(fun chan ->
              let seed = Prng.Rng.bits (Prng.Rng.with_label rng "private/draw") ~width:bits in
              let buf = Bitio.Bitbuf.create () in
              Bitio.Bitbuf.write_bits buf ~width:bits seed;
              Obsv.Trace.span Obsv.Phases.private_seed (fun () ->
                  Commsim.Transport.send chan (Bitio.Bitbuf.contents buf));
              seed)
            ~bob:(fun chan ->
              Bitio.Bitreader.read_bits (Bitio.Bitreader.create (Commsim.Transport.recv chan)) ~width:bits)
        in
        assert (seed_at_alice = seed_at_bob);
        let shared = Prng.Rng.of_seed (Int64.of_int seed_at_alice) in
        let outcome = base.Protocol.run shared ~universe s t in
        { outcome with Protocol.cost = Commsim.Cost.add_seq exchange_cost outcome.Protocol.cost });
  }
