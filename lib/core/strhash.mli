(** Shared-randomness hash tags of arbitrary width.

    A [fn] is a random function producing [bits]-bit tags, built from
    independent affine "lanes" over the Mersenne prime [p = 2^61 - 1]
    (strings are first collapsed by a polynomial fingerprint over [p]).
    Guarantees, for inputs [x <> y]:

    - tags of equal inputs are always equal (one-sided);
    - tags collide with probability at most
      [2^-bits + length / 2^61 + 2^(bits mod 48 ... )] — within a small
      constant factor of the ideal [2^-bits], which is all Fact 3.5 and
      Lemma 3.3 need.

    Both parties construct the same [fn] by passing {!Prng.Rng.t} values in
    identical states (e.g. [Rng.with_label shared "stage3/node17"]); [create]
    consumes from the generator. *)

type fn

(** [create rng ~bits] draws a tag function.  [bits >= 1]; any width is
    supported (wide tags use several lanes). *)
val create : Prng.Rng.t -> bits:int -> fn

(** Tag width in bits, as requested at {!create}. *)
val bits : fn -> int

(** Tag of a bit string. *)
val apply : fn -> Bitio.Bits.t -> Bitio.Bits.t

(** Tag of an integer in [\[0, 2^60)]. *)
val apply_int : fn -> int -> Bitio.Bits.t

(** [write fn buf payload] appends [apply fn payload] directly to [buf] —
    the same [bits fn] bits, with no intermediate tag allocation.  The
    allocation-lean path for assembling tag vectors. *)
val write : fn -> Bitio.Bitbuf.t -> Bitio.Bits.t -> unit

(** [write_int fn buf x] appends [apply_int fn x] directly to [buf]. *)
val write_int : fn -> Bitio.Bitbuf.t -> int -> unit

(** [matches fn reader payload] consumes exactly [bits fn] bits from
    [reader] (a peer's tag, as written by {!write} or {!apply}) and tests
    them against this side's tag of [payload], without materialising
    either tag.  The reader advances fully even on a mismatch, so framing
    is position-identical to a read-then-compare round trip. *)
val matches : fn -> Bitio.Bitreader.t -> Bitio.Bits.t -> bool

(** One-shot conveniences (draw the function and apply it). *)
val tag : Prng.Rng.t -> bits:int -> Bitio.Bits.t -> Bitio.Bits.t

(** One-shot {!apply_int} (draw the function and tag the integer). *)
val tag_int : Prng.Rng.t -> bits:int -> int -> Bitio.Bits.t
