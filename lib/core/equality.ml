(* The tag function must depend only on the generator's root, never on how
   many values either coroutine already consumed — the two parties reach
   this point after different local histories. *)
let tag_fn rng ~bits = Strhash.create (Prng.Rng.with_label rng "equality/tag") ~bits

let run_alice rng ~bits chan x =
  let tag = Strhash.apply (tag_fn rng ~bits) x in
  Commsim.Transport.send chan tag;
  Wire.read_bit_msg (Commsim.Transport.recv chan)

let run_bob rng ~bits chan y =
  let tag = Strhash.apply (tag_fn rng ~bits) y in
  let received = Commsim.Transport.recv chan in
  let verdict = Bitio.Bits.equal tag received in
  Commsim.Transport.send chan (Wire.bit_msg verdict);
  verdict

let run_alice_set rng ~bits chan set = run_alice rng ~bits chan (Wire.of_set set)

let run_bob_set rng ~bits chan set = run_bob rng ~bits chan (Wire.of_set set)
