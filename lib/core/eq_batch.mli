(** Amortized batch equality: [k] independent instances of EQ solved with
    [O(k)] expected total communication — the role played by the
    Feder–Kushilevitz–Naor–Nisan protocol (Theorem 3.2) in the paper's
    [O(√k)]-round intersection protocol (Theorem 3.1).

    Reconstruction (the original FKNN construction is described only at
    guarantee level in the paper): instances are split into [⌈√k⌉] groups,
    processed sequentially (the sequentiality the paper attributes to
    FKNN).  Within a group, iteration [t] exchanges doubling-width
    ([2·2^t]-bit, capped) tags of the undecided instances; mismatching
    instances are settled as unequal with certainty.  An iteration with no
    mismatches triggers a [⌈√k⌉ + O(log k)]-bit joint test of everything
    still undecided; if it passes, the remainder is declared equal.  After
    an (astronomically unlikely) iteration cap, the remaining strings are
    exchanged verbatim, so termination is unconditional.

    Guarantees:
    - "unequal" verdicts are always correct (one-sided);
    - all verdicts are correct except with probability [2^(-Ω(√k))];
    - expected total communication [O(k + Σ min(|x_i|, ...))]... [O(k)]
      bits for the tag traffic plus [O(√k)] joint tests of [O(√k)] bits;
    - expected rounds [O(√k · log log k)] sequential
      ([O(log k)] with [~sequential:false], an ablation knob the paper's
      framing forbids but modern pipelining allows). *)

(** [run_alice rng chan xs] / [run_bob rng chan ys]: both parties must pass
    equally many instances and generators in identical states.  Returns one
    verdict per instance ([true] = declared equal).  [max_iterations]
    (default 40, same value on both sides) caps the tag rounds before the
    verbatim-exchange fallback; tests set it to 0 to drive the fallback
    directly. *)
val run_alice :
  ?sequential:bool ->
  ?max_iterations:int ->
  Prng.Rng.t ->
  Commsim.Transport.t ->
  Bitio.Bits.t array ->
  bool array

(** Bob's side of {!run_alice}; same options and generator contract. *)
val run_bob :
  ?sequential:bool ->
  ?max_iterations:int ->
  Prng.Rng.t ->
  Commsim.Transport.t ->
  Bitio.Bits.t array ->
  bool array

(** Joint-test tag width used for [k] instances (exposed for tests). *)
val joint_bits : k:int -> int
