type result = { outcome : Protocol.outcome; attempts : int; verified : bool }

let check_cost_players = 2

let run base ~bits ~max_attempts rng ~universe s t =
  if not base.Protocol.sandwich then
    invalid_arg "Verified.run: base protocol lacks the sandwich contract";
  if max_attempts < 1 then invalid_arg "Verified.run: max_attempts";
  let rec attempt i acc_cost =
    let attempt_rng = Prng.Rng.with_label rng ("verified/attempt" ^ string_of_int i) in
    Obsv.Metrics.incr "verified/attempts";
    let outcome =
      Obsv.Trace.span Obsv.Phases.verified_attempt ~attrs:[ ("attempt", string_of_int i) ] (fun () ->
          base.Protocol.run attempt_rng ~universe s t)
    in
    let eq_rng = Prng.Rng.with_label attempt_rng "verified/check" in
    let (passed, _), check_cost =
      Obsv.Trace.span Obsv.Phases.verified_check ~attrs:[ ("attempt", string_of_int i) ] (fun () ->
          Commsim.Two_party.run
            ~alice:(fun chan -> Equality.run_alice_set eq_rng ~bits chan outcome.Protocol.alice)
            ~bob:(fun chan -> Equality.run_bob_set eq_rng ~bits chan outcome.Protocol.bob))
    in
    if not passed then Obsv.Metrics.incr "verified/rejections";
    let acc_cost = Commsim.Cost.add_seq acc_cost (Commsim.Cost.add_seq outcome.Protocol.cost check_cost) in
    if passed || i >= max_attempts then
      { outcome = { outcome with Protocol.cost = acc_cost }; attempts = i; verified = passed }
    else attempt (i + 1) acc_cost
  in
  attempt 1 (Commsim.Cost.zero ~players:check_cost_players)

type party_result = { candidate : Iset.t; attempts : int; verified : bool }

let run_party role rng ~bits ~max_attempts chan ~party =
  let rec attempt i =
    let attempt_rng = Prng.Rng.with_label rng ("attempt" ^ string_of_int i) in
    let candidate =
      Obsv.Trace.span Obsv.Phases.verified_attempt ~attrs:[ ("attempt", string_of_int i) ] (fun () ->
          party attempt_rng chan)
    in
    let eq_rng = Prng.Rng.with_label attempt_rng "check" in
    let passed =
      Obsv.Trace.span Obsv.Phases.verified_check (fun () ->
          match role with
          | `Alice -> Equality.run_alice_set eq_rng ~bits chan candidate
          | `Bob -> Equality.run_bob_set eq_rng ~bits chan candidate)
    in
    if passed || i >= max_attempts then { candidate; attempts = i; verified = passed }
    else attempt (i + 1)
  in
  attempt 1

let protocol ?bits ?(max_attempts = 20) base =
  {
    Protocol.name = "verified(" ^ base.Protocol.name ^ ")";
    sandwich = true;
    run =
      (fun rng ~universe s t ->
        let k = max 1 (max (Array.length s) (Array.length t)) in
        let bits = match bits with Some b -> b | None -> max 16 k in
        (run base ~bits ~max_attempts rng ~universe s t).outcome);
  }
