type role = Alice | Bob

let joint_bits ~k =
  let k = max 1 k in
  int_of_float (Float.ceil (sqrt (float_of_int k))) + (2 * Iterated_log.log2_ceil (k + 2)) + 8

(* After this many tag iterations (probability ~2^-(2+4+8+...) per instance of
   getting here) the remaining strings are exchanged verbatim. *)
let default_max_iterations = 40

type group = { gid : int; mutable undecided : int list }

let length_prefixed instances idxs =
  let buf = Bitio.Bitbuf.create () in
  List.iter
    (fun idx ->
      Bitio.Codes.write_gamma buf (Bitio.Bits.length instances.(idx));
      Bitio.Bitbuf.append buf instances.(idx))
    idxs;
  Bitio.Bitbuf.contents buf

let run ?(sequential = true) ?(max_iterations = default_max_iterations) role rng chan instances =
  let open Commsim.Chan in
  let k = Array.length instances in
  let status = Array.make k `Undecided in
  let jbits = joint_bits ~k in
  let instance_tag ~gid ~iteration ~idx ~bits =
    let label = Printf.sprintf "eqb/g%d/t%d/i%d" gid iteration idx in
    Strhash.tag (Prng.Rng.with_label rng label) ~bits instances.(idx)
  in
  let joint_tag ~gid ~iteration idxs =
    let label = Printf.sprintf "eqb/joint/g%d/t%d" gid iteration in
    Strhash.tag (Prng.Rng.with_label rng label) ~bits:jbits (length_prefixed instances idxs)
  in
  (* Exchange of one tag vector: Alice ships her tags, Bob replies with the
     positions whose tags differ from his own.  Returns the shared mismatch
     bitmap (in the order of [entries]). *)
  let tag_round entries ~tag_of =
    match role with
    | Alice ->
        let buf = Bitio.Bitbuf.create () in
        List.iter (fun entry -> Bitio.Bitbuf.append buf (tag_of entry)) entries;
        chan.send (Bitio.Bitbuf.contents buf);
        Wire.read_bitmap_msg (chan.recv ()) ~width:(List.length entries)
    | Bob ->
        let reader = Bitio.Bitreader.create (chan.recv ()) in
        let mismatches =
          Array.of_list
            (List.map
               (fun entry ->
                 let mine = tag_of entry in
                 let theirs = Bitio.Bitreader.read_blob reader ~bits:(Bitio.Bits.length mine) in
                 not (Bitio.Bits.equal mine theirs))
               entries)
        in
        chan.send (Wire.bitmap_msg mismatches);
        mismatches
  in
  (* Unconditional-termination fallback: exchange the remaining strings. *)
  let exact_round groups =
    let idxs = List.concat_map (fun g -> g.undecided) groups in
    Obsv.Metrics.incr "eq/exact_fallbacks";
    Obsv.Metrics.incr ~by:(List.length idxs) "eq/exact_instances";
    let mismatches =
      match role with
      | Alice ->
          chan.send (length_prefixed instances idxs);
          Wire.read_bitmap_msg (chan.recv ()) ~width:(List.length idxs)
      | Bob ->
          let reader = Bitio.Bitreader.create (chan.recv ()) in
          let mismatches =
            Array.of_list
              (List.map
                 (fun idx ->
                   let len = Bitio.Codes.read_gamma reader in
                   let theirs = Bitio.Bitreader.read_blob reader ~bits:len in
                   not (Bitio.Bits.equal theirs instances.(idx)))
                 idxs)
          in
          chan.send (Wire.bitmap_msg mismatches);
          mismatches
    in
    List.iteri
      (fun pos idx -> status.(idx) <- (if mismatches.(pos) then `Unequal else `Equal))
      idxs
  in
  let process initial_groups =
    let active = ref initial_groups in
    let iteration = ref 0 in
    while !active <> [] do
      if !iteration >= max_iterations then begin
        Obsv.Trace.span Obsv.Phases.eq_exact (fun () -> exact_round !active);
        active := []
      end
      else begin
        let bits = min 32 (2 lsl !iteration) in
        Obsv.Metrics.incr "eq/tag_rounds";
        Obsv.Metrics.observe "eq/tag_bits" bits;
        let entries =
          List.concat_map (fun g -> List.map (fun idx -> (g.gid, idx)) g.undecided) !active
        in
        let mismatches =
          Obsv.Trace.span Obsv.Phases.eq_tags (fun () ->
              tag_round entries ~tag_of:(fun (gid, idx) ->
                  instance_tag ~gid ~iteration:!iteration ~idx ~bits))
        in
        (* Settle mismatching instances; remember which groups stayed clean. *)
        let dirty = Hashtbl.create 8 in
        List.iteri
          (fun pos (gid, idx) ->
            if mismatches.(pos) then begin
              status.(idx) <- `Unequal;
              Hashtbl.replace dirty gid ()
            end)
          entries;
        List.iter
          (fun g -> g.undecided <- List.filter (fun idx -> status.(idx) = `Undecided) g.undecided)
          !active;
        active := List.filter (fun g -> g.undecided <> []) !active;
        (* Clean, still-undecided groups take a joint verification test. *)
        let candidates = List.filter (fun g -> not (Hashtbl.mem dirty g.gid)) !active in
        if candidates <> [] then begin
          Obsv.Metrics.incr "eq/joint_checks";
          let passed =
            Obsv.Trace.span Obsv.Phases.eq_joint (fun () ->
                tag_round
                  (List.map (fun g -> (g.gid, -1)) candidates)
                  ~tag_of:(fun (gid, _) ->
                    let g = List.find (fun g -> g.gid = gid) candidates in
                    joint_tag ~gid ~iteration:!iteration g.undecided))
          in
          (* [mismatch = false] means the joint tags agreed: declare equal. *)
          List.iteri
            (fun pos g ->
              if not passed.(pos) then begin
                List.iter (fun idx -> status.(idx) <- `Equal) g.undecided;
                g.undecided <- []
              end)
            candidates;
          active := List.filter (fun g -> g.undecided <> []) !active
        end;
        incr iteration
      end
    done
  in
  if k > 0 then begin
    let group_count = int_of_float (Float.ceil (sqrt (float_of_int k))) in
    let group_size = (k + group_count - 1) / group_count in
    let groups =
      List.init group_count (fun gid ->
          let lo = gid * group_size in
          let hi = min k (lo + group_size) in
          { gid; undecided = List.init (max 0 (hi - lo)) (fun i -> lo + i) })
      |> List.filter (fun g -> g.undecided <> [])
    in
    if sequential then List.iter (fun g -> process [ g ]) groups else process groups
  end;
  Array.map (fun st -> st = `Equal) status

let run_alice ?sequential ?max_iterations rng chan xs =
  run ?sequential ?max_iterations Alice rng chan xs

let run_bob ?sequential ?max_iterations rng chan ys =
  run ?sequential ?max_iterations Bob rng chan ys
