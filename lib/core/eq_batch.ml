type role = Alice | Bob

let joint_bits ~k =
  let k = max 1 k in
  int_of_float (Float.ceil (sqrt (float_of_int k))) + (2 * Iterated_log.log2_ceil (k + 2)) + 8

(* After this many tag iterations (probability ~2^-(2+4+8+...) per instance of
   getting here) the remaining strings are exchanged verbatim. *)
let default_max_iterations = 40

type group = { gid : int; mutable undecided : int list }

let length_prefixed_into buf instances idxs =
  List.iter
    (fun idx ->
      Bitio.Codes.write_gamma buf (Bitio.Bits.length instances.(idx));
      Bitio.Bitbuf.append buf instances.(idx))
    idxs

let length_prefixed instances idxs =
  Bitio.Pool.payload (fun buf -> length_prefixed_into buf instances idxs)

let run ?(sequential = true) ?(max_iterations = default_max_iterations) role rng chan instances =
  let open Commsim.Transport in
  let k = Array.length instances in
  let status = Array.make k `Undecided in
  let jbits = joint_bits ~k in
  (* Both parties derive the same tag function from the shared rng and the
     same label coordinates.  The label is folded incrementally
     ([Rng.Label] hashes fragment-by-fragment, bit-identical to hashing
     the concatenated string), so no label string — formerly one per
     instance per iteration per party — is ever built. *)
  let instance_fn ~gid ~iteration ~idx ~bits =
    let d = Prng.Rng.Label.start rng in
    Prng.Rng.Label.add d "eqb/g";
    Prng.Rng.Label.add_int d gid;
    Prng.Rng.Label.add d "/t";
    Prng.Rng.Label.add_int d iteration;
    Prng.Rng.Label.add d "/i";
    Prng.Rng.Label.add_int d idx;
    Strhash.create (Prng.Rng.Label.finish d) ~bits
  in
  let joint_fn ~gid ~iteration =
    let d = Prng.Rng.Label.start rng in
    Prng.Rng.Label.add d "eqb/joint/g";
    Prng.Rng.Label.add_int d gid;
    Prng.Rng.Label.add d "/t";
    Prng.Rng.Label.add_int d iteration;
    Strhash.create (Prng.Rng.Label.finish d) ~bits:jbits
  in
  (* Exchange of one tag vector over positions [0 .. n-1]: Alice ships her
     tags, Bob replies with the positions whose tags differ from his own.
     Returns the shared mismatch bitmap.  [emit] appends position [p]'s
     tag to the outgoing buffer; [check] consumes the peer's tag for
     position [p] from the reader (explicit left-to-right loop: the reader
     must advance in position order) and says whether it matches this
     side's. *)
  let tag_round n ~emit ~check =
    match role with
    | Alice ->
        chan.send
          (Bitio.Pool.payload (fun buf ->
               for p = 0 to n - 1 do
                 emit buf p
               done));
        Wire.read_bitmap_msg (chan.recv ()) ~width:n
    | Bob ->
        Bitio.Pool.with_reader (chan.recv ()) (fun reader ->
            let mismatches = Array.make n false in
            for p = 0 to n - 1 do
              mismatches.(p) <- not (check reader p)
            done;
            chan.send (Wire.bitmap_msg mismatches);
            mismatches)
  in
  (* Unconditional-termination fallback: exchange the remaining strings. *)
  let exact_round groups =
    let idxs = List.concat_map (fun g -> g.undecided) groups in
    Obsv.Metrics.incr "eq/exact_fallbacks";
    Obsv.Metrics.incr ~by:(List.length idxs) "eq/exact_instances";
    let mismatches =
      match role with
      | Alice ->
          chan.send (length_prefixed instances idxs);
          Wire.read_bitmap_msg (chan.recv ()) ~width:(List.length idxs)
      | Bob ->
          Bitio.Pool.with_reader (chan.recv ()) (fun reader ->
              let mismatches =
                Array.of_list
                  (List.map
                     (fun idx ->
                       let len = Bitio.Codes.read_gamma reader in
                       let theirs = Bitio.Bitreader.read_blob reader ~bits:len in
                       not (Bitio.Bits.equal theirs instances.(idx)))
                     idxs)
              in
              chan.send (Wire.bitmap_msg mismatches);
              mismatches)
    in
    List.iteri
      (fun pos idx -> status.(idx) <- (if mismatches.(pos) then `Unequal else `Equal))
      idxs
  in
  let group_count = if k = 0 then 0 else int_of_float (Float.ceil (sqrt (float_of_int k))) in
  (* One dirty flag per group, reused across iterations (gids index it
     directly; a per-iteration Hashtbl was pure churn). *)
  let dirty = Array.make (max 1 group_count) false in
  let process initial_groups =
    let active = ref initial_groups in
    let iteration = ref 0 in
    while !active <> [] do
      if !iteration >= max_iterations then begin
        Obsv.Trace.span Obsv.Phases.eq_exact (fun () -> exact_round !active);
        active := []
      end
      else begin
        let bits = min 32 (2 lsl !iteration) in
        Obsv.Metrics.incr "eq/tag_rounds";
        Obsv.Metrics.observe "eq/tag_bits" bits;
        (* Flatten the undecided entries into two parallel int arrays (the
           tuple list this replaces was rebuilt every iteration). *)
        let n = List.fold_left (fun acc g -> acc + List.length g.undecided) 0 !active in
        let egid = Array.make n 0 and eidx = Array.make n 0 in
        let pos = ref 0 in
        List.iter
          (fun g ->
            List.iter
              (fun idx ->
                egid.(!pos) <- g.gid;
                eidx.(!pos) <- idx;
                incr pos)
              g.undecided)
          !active;
        let mismatches =
          Obsv.Trace.span Obsv.Phases.eq_tags (fun () ->
              let fn p = instance_fn ~gid:egid.(p) ~iteration:!iteration ~idx:eidx.(p) ~bits in
              tag_round n
                ~emit:(fun buf p -> Strhash.write (fn p) buf instances.(eidx.(p)))
                ~check:(fun reader p -> Strhash.matches (fn p) reader instances.(eidx.(p))))
        in
        (* Settle mismatching instances; remember which groups stayed clean. *)
        Array.fill dirty 0 (Array.length dirty) false;
        for p = 0 to n - 1 do
          if mismatches.(p) then begin
            status.(eidx.(p)) <- `Unequal;
            dirty.(egid.(p)) <- true
          end
        done;
        List.iter
          (fun g -> g.undecided <- List.filter (fun idx -> status.(idx) = `Undecided) g.undecided)
          !active;
        active := List.filter (fun g -> g.undecided <> []) !active;
        (* Clean, still-undecided groups take a joint verification test. *)
        let candidates = List.filter (fun g -> not dirty.(g.gid)) !active in
        if candidates <> [] then begin
          Obsv.Metrics.incr "eq/joint_checks";
          let cand = Array.of_list candidates in
          let passed =
            Obsv.Trace.span Obsv.Phases.eq_joint (fun () ->
                (* The joint payload is assembled in a scratch writer and
                   hashed through its zero-copy view; only the jbits-wide
                   tag reaches the wire. *)
                let with_joint g f =
                  Bitio.Pool.with_buf (fun tmp ->
                      length_prefixed_into tmp instances g.undecided;
                      f (joint_fn ~gid:g.gid ~iteration:!iteration) (Bitio.Bitbuf.view tmp))
                in
                tag_round (Array.length cand)
                  ~emit:(fun buf p ->
                    with_joint cand.(p) (fun fn payload -> Strhash.write fn buf payload))
                  ~check:(fun reader p ->
                    with_joint cand.(p) (fun fn payload -> Strhash.matches fn reader payload)))
          in
          (* [mismatch = false] means the joint tags agreed: declare equal. *)
          Array.iteri
            (fun pos g ->
              if not passed.(pos) then begin
                List.iter (fun idx -> status.(idx) <- `Equal) g.undecided;
                g.undecided <- []
              end)
            cand;
          active := List.filter (fun g -> g.undecided <> []) !active
        end;
        incr iteration
      end
    done
  in
  if k > 0 then begin
    let group_size = (k + group_count - 1) / group_count in
    let groups =
      List.init group_count (fun gid ->
          let lo = gid * group_size in
          let hi = min k (lo + group_size) in
          { gid; undecided = List.init (max 0 (hi - lo)) (fun i -> lo + i) })
      |> List.filter (fun g -> g.undecided <> [])
    in
    if sequential then List.iter (fun g -> process [ g ]) groups else process groups
  end;
  Array.map (fun st -> st = `Equal) status

let run_alice ?sequential ?max_iterations rng chan xs =
  run ?sequential ?max_iterations Alice rng chan xs

let run_bob ?sequential ?max_iterations rng chan ys =
  run ?sequential ?max_iterations Bob rng chan ys
