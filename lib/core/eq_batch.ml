type role = Alice | Bob

let joint_bits ~k =
  let k = max 1 k in
  int_of_float (Float.ceil (sqrt (float_of_int k))) + (2 * Iterated_log.log2_ceil (k + 2)) + 8

(* After this many tag iterations (probability ~2^-(2+4+8+...) per instance of
   getting here) the remaining strings are exchanged verbatim. *)
let default_max_iterations = 40

type group = { gid : int; mutable undecided : int list }

let length_prefixed_into buf instances idxs =
  List.iter
    (fun idx ->
      Bitio.Codes.write_gamma buf (Bitio.Bits.length instances.(idx));
      Bitio.Bitbuf.append buf instances.(idx))
    idxs

let length_prefixed instances idxs =
  Bitio.Pool.payload (fun buf -> length_prefixed_into buf instances idxs)

let run ?(sequential = true) ?(max_iterations = default_max_iterations) role rng chan instances =
  let open Commsim.Transport in
  let k = Array.length instances in
  let status = Array.make k `Undecided in
  let jbits = joint_bits ~k in
  (* Both parties derive the same tag function from the shared rng and the
     same label (plain concatenation: same strings the sprintf versions
     produced, without the format machinery on the hot path). *)
  let instance_fn ~gid ~iteration ~idx ~bits =
    let label =
      "eqb/g" ^ string_of_int gid ^ "/t" ^ string_of_int iteration ^ "/i" ^ string_of_int idx
    in
    Strhash.create (Prng.Rng.with_label rng label) ~bits
  in
  let joint_fn ~gid ~iteration =
    let label = "eqb/joint/g" ^ string_of_int gid ^ "/t" ^ string_of_int iteration in
    Strhash.create (Prng.Rng.with_label rng label) ~bits:jbits
  in
  (* Exchange of one tag vector: Alice ships her tags, Bob replies with the
     positions whose tags differ from his own.  Returns the shared mismatch
     bitmap (in the order of [entries]).  [emit] appends one entry's tag to
     the outgoing buffer; [check] consumes the peer's tag for one entry
     from the reader and says whether it matches this side's. *)
  let tag_round entries ~emit ~check =
    match role with
    | Alice ->
        chan.send (Bitio.Pool.payload (fun buf -> List.iter (emit buf) entries));
        Wire.read_bitmap_msg (chan.recv ()) ~width:(List.length entries)
    | Bob ->
        let reader = Bitio.Bitreader.create (chan.recv ()) in
        let mismatches = Array.of_list (List.map (fun e -> not (check reader e)) entries) in
        chan.send (Wire.bitmap_msg mismatches);
        mismatches
  in
  (* Unconditional-termination fallback: exchange the remaining strings. *)
  let exact_round groups =
    let idxs = List.concat_map (fun g -> g.undecided) groups in
    Obsv.Metrics.incr "eq/exact_fallbacks";
    Obsv.Metrics.incr ~by:(List.length idxs) "eq/exact_instances";
    let mismatches =
      match role with
      | Alice ->
          chan.send (length_prefixed instances idxs);
          Wire.read_bitmap_msg (chan.recv ()) ~width:(List.length idxs)
      | Bob ->
          let reader = Bitio.Bitreader.create (chan.recv ()) in
          let mismatches =
            Array.of_list
              (List.map
                 (fun idx ->
                   let len = Bitio.Codes.read_gamma reader in
                   let theirs = Bitio.Bitreader.read_blob reader ~bits:len in
                   not (Bitio.Bits.equal theirs instances.(idx)))
                 idxs)
          in
          chan.send (Wire.bitmap_msg mismatches);
          mismatches
    in
    List.iteri
      (fun pos idx -> status.(idx) <- (if mismatches.(pos) then `Unequal else `Equal))
      idxs
  in
  let process initial_groups =
    let active = ref initial_groups in
    let iteration = ref 0 in
    while !active <> [] do
      if !iteration >= max_iterations then begin
        Obsv.Trace.span Obsv.Phases.eq_exact (fun () -> exact_round !active);
        active := []
      end
      else begin
        let bits = min 32 (2 lsl !iteration) in
        Obsv.Metrics.incr "eq/tag_rounds";
        Obsv.Metrics.observe "eq/tag_bits" bits;
        let entries =
          List.concat_map (fun g -> List.map (fun idx -> (g.gid, idx)) g.undecided) !active
        in
        let mismatches =
          Obsv.Trace.span Obsv.Phases.eq_tags (fun () ->
              let fn (gid, idx) = instance_fn ~gid ~iteration:!iteration ~idx ~bits in
              tag_round entries
                ~emit:(fun buf ((_, idx) as e) -> Strhash.write (fn e) buf instances.(idx))
                ~check:(fun reader ((_, idx) as e) ->
                  Strhash.matches (fn e) reader instances.(idx)))
        in
        (* Settle mismatching instances; remember which groups stayed clean. *)
        let dirty = Hashtbl.create 8 in
        List.iteri
          (fun pos (gid, idx) ->
            if mismatches.(pos) then begin
              status.(idx) <- `Unequal;
              Hashtbl.replace dirty gid ()
            end)
          entries;
        List.iter
          (fun g -> g.undecided <- List.filter (fun idx -> status.(idx) = `Undecided) g.undecided)
          !active;
        active := List.filter (fun g -> g.undecided <> []) !active;
        (* Clean, still-undecided groups take a joint verification test. *)
        let candidates = List.filter (fun g -> not (Hashtbl.mem dirty g.gid)) !active in
        if candidates <> [] then begin
          Obsv.Metrics.incr "eq/joint_checks";
          let passed =
            Obsv.Trace.span Obsv.Phases.eq_joint (fun () ->
                (* The joint payload is assembled in a scratch writer and
                   hashed through its zero-copy view; only the jbits-wide
                   tag reaches the wire. *)
                let with_joint g f =
                  Bitio.Pool.with_buf (fun tmp ->
                      length_prefixed_into tmp instances g.undecided;
                      f (joint_fn ~gid:g.gid ~iteration:!iteration) (Bitio.Bitbuf.view tmp))
                in
                tag_round candidates
                  ~emit:(fun buf g ->
                    with_joint g (fun fn payload -> Strhash.write fn buf payload))
                  ~check:(fun reader g ->
                    with_joint g (fun fn payload -> Strhash.matches fn reader payload)))
          in
          (* [mismatch = false] means the joint tags agreed: declare equal. *)
          List.iteri
            (fun pos g ->
              if not passed.(pos) then begin
                List.iter (fun idx -> status.(idx) <- `Equal) g.undecided;
                g.undecided <- []
              end)
            candidates;
          active := List.filter (fun g -> g.undecided <> []) !active
        end;
        incr iteration
      end
    done
  in
  if k > 0 then begin
    let group_count = int_of_float (Float.ceil (sqrt (float_of_int k))) in
    let group_size = (k + group_count - 1) / group_count in
    let groups =
      List.init group_count (fun gid ->
          let lo = gid * group_size in
          let hi = min k (lo + group_size) in
          { gid; undecided = List.init (max 0 (hi - lo)) (fun i -> lo + i) })
      |> List.filter (fun g -> g.undecided <> [])
    in
    if sequential then List.iter (fun g -> process [ g ]) groups else process groups
  end;
  Array.map (fun st -> st = `Equal) status

let run_alice ?sequential ?max_iterations rng chan xs =
  run ?sequential ?max_iterations Alice rng chan xs

let run_bob ?sequential ?max_iterations rng chan ys =
  run ?sequential ?max_iterations Bob rng chan ys
