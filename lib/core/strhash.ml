(* Arithmetic over the Mersenne prime p = 2^61 - 1, using OCaml's 63-bit
   native ints.  [reduce] accepts any value < 2^62. *)

let p61 = (1 lsl 61) - 1

let reduce x =
  let x = (x land p61) + (x lsr 61) in
  if x >= p61 then x - p61 else x

(* Product mod p for a, b < p, via a 31/30-bit split; every intermediate
   stays below 2^62, the safe range of [reduce]. *)
let mul61 a b =
  let au = a lsr 31 and ad = a land 0x7FFFFFFF in
  let bu = b lsr 31 and bd = b land 0x7FFFFFFF in
  let mid = (ad * bu) + (au * bd) in
  let mid_hi = mid lsr 30 and mid_lo = mid land ((1 lsl 30) - 1) in
  (* a*b = au*bu*2^62 + mid*2^31 + ad*bd, and 2^61 = 1 (mod p). *)
  let r1 = reduce ((au * bu * 2) + mid_hi) in
  let r2 = reduce (mid_lo lsl 31) in
  let r3 = reduce (ad * bd) in
  reduce (reduce (r1 + r2) + r3)

let lane_width = 48

type lane = { a : int; b : int; width : int }

type fn = { point : int; lanes : lane list; bits : int }

(* Rejection from 61 uniform bits; top-level so no closure environment is
   allocated per draw (three draws per lane, one create per instance per
   tag round on the batch-equality hot path). *)
let rec draw_mod_p rng =
  let v = Prng.Rng.bits rng ~width:61 in
  if v < p61 then v else draw_mod_p rng

let create rng ~bits =
  if bits < 1 then invalid_arg "Strhash.create: bits";
  let point = 2 + (draw_mod_p rng mod (p61 - 4)) in
  let rec mk_lanes remaining =
    if remaining <= 0 then []
    else begin
      let width = min lane_width remaining in
      let a = 1 + (draw_mod_p rng mod (p61 - 1)) in
      let b = draw_mod_p rng in
      { a; b; width } :: mk_lanes (remaining - width)
    end
  in
  { point; lanes = mk_lanes bits; bits }

let bits fn = fn.bits

(* Polynomial fingerprint of a bit string: fold 24-bit chunks with a
   length prefix so strings of different lengths cannot alias. *)
let fingerprint fn payload =
  let n = Bitio.Bits.length payload in
  let acc = ref (reduce (n + 1)) in
  let i = ref 0 in
  while !i < n do
    let chunk_len = min 24 (n - !i) in
    let chunk = Bitio.Bits.extract payload ~pos:!i ~width:chunk_len in
    (* chunk + 1 so trailing zero chunks still advance the polynomial *)
    acc := reduce (mul61 !acc fn.point + (chunk + 1));
    i := !i + chunk_len
  done;
  !acc

(* Write the tag of the collapsed value [v] straight into [buf]: same bits
   as freezing a private Bitbuf, without the intermediate allocation. *)
let write_value fn buf v =
  List.iter
    (fun lane ->
      let h = reduce (mul61 lane.a v + lane.b) in
      (* low [width] bits of a near-uniform value mod p *)
      Bitio.Bitbuf.write_bits buf ~width:lane.width (h land ((1 lsl lane.width) - 1)))
    fn.lanes

let tag_of_value fn v =
  let buf = Bitio.Bitbuf.create ~capacity:fn.bits () in
  write_value fn buf v;
  Bitio.Bitbuf.contents buf

let apply fn payload = tag_of_value fn (fingerprint fn payload)

let apply_int fn x =
  if x < 0 || x lsr 60 <> 0 then invalid_arg "Strhash.apply_int: out of range";
  tag_of_value fn x

let write fn buf payload = write_value fn buf (fingerprint fn payload)

let write_int fn buf x =
  if x < 0 || x lsr 60 <> 0 then invalid_arg "Strhash.write_int: out of range";
  write_value fn buf x

(* Compare lane by lane against bits consumed from [reader].  Every lane
   is read even after a mismatch so the reader always advances by exactly
   [fn.bits], mirroring what a read_blob + Bits.equal round trip did. *)
let matches_value fn reader v =
  List.fold_left
    (fun ok lane ->
      let h = reduce (mul61 lane.a v + lane.b) in
      let theirs = Bitio.Bitreader.read_bits reader ~width:lane.width in
      ok && theirs = h land ((1 lsl lane.width) - 1))
    true fn.lanes

let matches fn reader payload = matches_value fn reader (fingerprint fn payload)

let tag rng ~bits payload = apply (create rng ~bits) payload

let tag_int rng ~bits x = apply_int (create rng ~bits) x
