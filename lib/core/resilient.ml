type party = Prng.Rng.t -> universe:int -> Iset.t -> Commsim.Transport.t -> Iset.t
type base = { name : string; alice : party; bob : party }

let trivial_alice _rng ~universe:_ mine chan =
  Obsv.Trace.span Obsv.Phases.trivial_offer (fun () ->
      Commsim.Transport.send chan (Wire.of_set mine));
  Bitio.Set_codec.read_gaps (Bitio.Bitreader.create (Commsim.Transport.recv chan))

let trivial_bob _rng ~universe:_ mine chan =
  let received = Bitio.Set_codec.read_gaps (Bitio.Bitreader.create (Commsim.Transport.recv chan)) in
  let intersection = Iset.inter received mine in
  Obsv.Trace.span Obsv.Phases.trivial_reply (fun () ->
      Commsim.Transport.send chan (Wire.of_set intersection));
  intersection

let trivial_base = { name = "trivial"; alice = trivial_alice; bob = trivial_bob }

let tree_base ?r ~k () =
  let r = match r with Some r -> max 1 r | None -> max 1 (Iterated_log.log_star k) in
  let party role rng ~universe mine chan = Tree_protocol.run_party role rng ~universe ~r ~k chan mine in
  {
    name = Printf.sprintf "tree-r%d" r;
    alice = party `Alice;
    bob = party `Bob;
  }

let bucket_base ~k () =
  let party role rng ~universe mine chan = Bucket_protocol.run_party role rng ~universe ~k chan mine in
  { name = "bucket"; alice = party `Alice; bob = party `Bob }

type budget = { attempts : int; bits : int }

let default_budget = { attempts = 10; bits = max_int }

exception Corrupted of string

let seq_width = 20

(* The resilient transport: every payload travels as
   [seq (20 bits) | fingerprint (tag_bits) | payload], with the fingerprint
   a shared-randomness hash of seq and payload.  Damage the channel can do
   is either detected (flip/truncation: fingerprint mismatch; drop that
   desynchronizes: sequence gap) and aborts the attempt via [Corrupted], or
   absorbed (a duplicate re-delivers an already-consumed sequence number
   and is discarded).  Undetected corruption needs a fingerprint collision:
   probability [~2^-tag_bits] per message. *)
let guard rng ~tag_bits chan =
  let h = Strhash.create (Prng.Rng.with_label rng "frame") ~bits:tag_bits in
  let next_send = ref 0 and next_recv = ref 0 in
  let seq_bits seq =
    let buf = Bitio.Bitbuf.create () in
    Bitio.Bitbuf.write_bits buf ~width:seq_width seq;
    Bitio.Bitbuf.contents buf
  in
  let send payload =
    if !next_send >= 1 lsl seq_width then invalid_arg "Resilient.guard: sequence space exhausted";
    let seq = seq_bits !next_send in
    incr next_send;
    let tag = Strhash.apply h (Bitio.Bits.concat seq payload) in
    Commsim.Transport.send chan (Bitio.Bits.concat seq (Bitio.Bits.concat tag payload))
  in
  let rec recv () =
    let r = Bitio.Bitreader.create (Commsim.Transport.recv chan) in
    let parsed =
      match
        let seq = Bitio.Bitreader.read_bits r ~width:seq_width in
        let tag = Bitio.Bitreader.read_blob r ~bits:tag_bits in
        let payload = Bitio.Bitreader.read_blob r ~bits:(Bitio.Bitreader.remaining r) in
        (seq, tag, payload)
      with
      | exception Bitio.Bitreader.Underflow -> raise (Corrupted "frame truncated")
      | parsed -> parsed
    in
    let seq, tag, payload = parsed in
    if not (Bitio.Bits.equal tag (Strhash.apply h (Bitio.Bits.concat (seq_bits seq) payload)))
    then raise (Corrupted "frame fingerprint mismatch")
    else if seq < !next_recv then recv () (* duplicate of a consumed frame *)
    else if seq > !next_recv then
      raise (Corrupted (Printf.sprintf "sequence gap: got %d, expected %d" seq !next_recv))
    else begin
      incr next_recv;
      payload
    end
  in
  { Commsim.Transport.send; recv }

type failure = Check_rejected | Channel_lost of string | Party_crashed of string

type attempt_info = { index : int; width : int; bits : int; failure : failure option }

type report = {
  result : Iset.t;
  verified : bool;
  degraded : bool;
  attempts : int;
  failures : failure list;
  attempt_log : attempt_info list;
  check_bits_final : int;
  faulty_bits : int;
  fallback_bits : int;
  cost : Commsim.Cost.t;
  tallies : Commsim.Faults.tallies;
}

let max_check_bits = 512

(* Transport fingerprints stay at a fixed width: their job is detection
   (collision ~2^-32 per message), and growing them would make every retry
   a fatter flip target than the attempt that just failed. *)
let transport_tag_bits = 32

(* One guarded execution of [base] plus the equality check, as a reusable
   primitive: [rng] must already be the per-attempt generator (both parties
   derive base/check/transport labels from it), and [plan] must already be
   salted for this attempt.  [Resilient.run] and the session layer
   ([Session.Machine]) both drive their ladders through this function, so a
   session attempt is bit-for-bit the same execution a resilient retry
   would have performed. *)
let attempt_once base ~plan ~check_bits ~attempt rng ~universe s t =
  let base_rng = Prng.Rng.with_label rng "base" in
  let check_rng = Prng.Rng.with_label rng "check" in
  let frame_rng = Prng.Rng.with_label rng "transport" in
  let outcome, cost, tallies =
    Obsv.Trace.span Obsv.Phases.resilient_attempt
      ~attrs:
        [ ("attempt", string_of_int attempt); ("check_bits", string_of_int check_bits) ]
      (fun () ->
        Commsim.Two_party.run_faulty ~plan
          ~alice:(fun chan ->
            let chan = guard frame_rng ~tag_bits:transport_tag_bits chan in
            let candidate = base.alice base_rng ~universe s chan in
            let accepted =
              Obsv.Trace.span Obsv.Phases.resilient_verify (fun () ->
                  Equality.run_alice_set check_rng ~bits:check_bits chan candidate)
            in
            (candidate, accepted))
          ~bob:(fun chan ->
            let chan = guard frame_rng ~tag_bits:transport_tag_bits chan in
            let candidate = base.bob base_rng ~universe t chan in
            let accepted =
              Obsv.Trace.span Obsv.Phases.resilient_verify (fun () ->
                  Equality.run_bob_set check_rng ~bits:check_bits chan candidate)
            in
            (candidate, accepted)))
  in
  let verdict =
    match outcome with
    | Commsim.Network.Completed ((candidate_a, ok_a), (_candidate_b, ok_b)) ->
        (* Both sides must have accepted: a flipped verdict bit can fool one
           side, not the side that computed the comparison locally. *)
        if ok_a && ok_b then Ok candidate_a else Error (Check_rejected, Some candidate_a)
    | Commsim.Network.Lost d -> Error (Channel_lost d.Commsim.Network.detail, None)
    | Commsim.Network.Crashed { rank; exn; after_messages } ->
        Error
          ( Party_crashed
              (Printf.sprintf "player %d: %s (after consuming %d message(s))" rank exn
                 after_messages),
            None )
  in
  (verdict, cost, tallies)

let run base ~plan ?(budget = default_budget) ?check_bits rng ~universe s t =
  Protocol.validate_inputs ~universe s t;
  if budget.attempts < 1 then invalid_arg "Resilient.run: budget.attempts";
  let k = max 1 (max (Array.length s) (Array.length t)) in
  let check_bits0 =
    match check_bits with
    | Some b -> if b < 1 then invalid_arg "Resilient.run: check_bits" else b
    | None -> max 24 k
  in
  let acc_cost = ref (Commsim.Cost.zero ~players:2) in
  let acc_tallies = ref (Commsim.Faults.create_tallies ~players:2) in
  let faulty_bits = ref 0 in
  let record cost tallies =
    acc_cost := Commsim.Cost.add_seq !acc_cost cost;
    acc_tallies := Commsim.Faults.merge !acc_tallies tallies;
    faulty_bits := !faulty_bits + cost.Commsim.Cost.total_bits
  in
  let finish ~result ~verified ~degraded ~attempts ~failures ~log ~width ~fallback_bits
      ~fallback_cost =
    let cost =
      match fallback_cost with
      | None -> !acc_cost
      | Some c -> Commsim.Cost.add_seq !acc_cost c
    in
    {
      result;
      verified;
      degraded;
      attempts;
      failures = List.rev failures;
      attempt_log = List.rev log;
      check_bits_final = width;
      faulty_bits = !faulty_bits;
      fallback_bits;
      cost;
      tallies = !acc_tallies;
    }
  in
  (* The reliable fallback: the deterministic exchange on a clean channel,
     modelling a retransmitting transport of known worst-case cost. *)
  let fallback ~attempts ~failures ~log ~width =
    Obsv.Metrics.incr "resilient/fallbacks";
    let (result, _), cost =
      Obsv.Trace.span Obsv.Phases.resilient_fallback (fun () ->
          Commsim.Two_party.run
            ~alice:(fun chan -> trivial_alice rng ~universe s chan)
            ~bob:(fun chan -> trivial_bob rng ~universe t chan))
    in
    finish ~result ~verified:false ~degraded:true ~attempts ~failures ~log ~width
      ~fallback_bits:cost.Commsim.Cost.total_bits ~fallback_cost:(Some cost)
  in
  let rec attempt i ~width failures log =
    let attempt_rng = Prng.Rng.with_label rng (Printf.sprintf "resilient/attempt%d" i) in
    (* Each retry must face fresh channel noise: message indices restart at
       zero every run, so an unsalted plan would replay the exact damage
       that failed the previous attempt. *)
    Obsv.Metrics.incr "resilient/attempts";
    Obsv.Metrics.set_gauge "resilient/check_bits" width;
    let verdict, cost, tallies =
      attempt_once base
        ~plan:(Commsim.Faults.reseed plan ~salt:i)
        ~check_bits:width ~attempt:i attempt_rng ~universe s t
    in
    record cost tallies;
    let log_entry failure =
      { index = i; width; bits = cost.Commsim.Cost.total_bits; failure }
    in
    let retry failure =
      Obsv.Metrics.incr
        (match failure with
        | Check_rejected -> "resilient/check_rejected"
        | Channel_lost _ -> "resilient/channel_lost"
        | Party_crashed _ -> "resilient/party_crashed");
      let failures = failure :: failures in
      let log = log_entry (Some failure) :: log in
      (* Backoff in bits only answers check rejections: a rejection means
         the verification randomness itself may have been unlucky, so the
         next check buys exponentially more confidence.  Detected damage
         (Corrupted / Lost) says nothing against the current width. *)
      let width' =
        match failure with
        | Check_rejected -> min max_check_bits (2 * width)
        | Channel_lost _ | Party_crashed _ -> width
      in
      if i >= budget.attempts || !faulty_bits >= budget.bits then
        fallback ~attempts:i ~failures ~log ~width
      else attempt (i + 1) ~width:width' failures log
    in
    match verdict with
    | Ok result ->
        finish ~result ~verified:true ~degraded:false ~attempts:i ~failures
          ~log:(log_entry None :: log) ~width ~fallback_bits:0 ~fallback_cost:None
    | Error (failure, _unverified) -> retry failure
  in
  attempt 1 ~width:check_bits0 [] []

let failure_counts report =
  List.fold_left
    (fun (rej, lost, crash) -> function
      | Check_rejected -> (rej + 1, lost, crash)
      | Channel_lost _ -> (rej, lost + 1, crash)
      | Party_crashed _ -> (rej, lost, crash + 1))
    (0, 0, 0) report.failures
