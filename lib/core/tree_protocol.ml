(* Per-stage error target: 1 / (log^(r-i-1) k)^4, as in Algorithm 1. *)
let stage_failure fl = Float.min 0.25 (1.0 /. (float_of_int fl ** 4.0))

(* Tag width of the stage's equality tests: log2 of 1/failure. *)
let stage_eq_bits fl = max 8 (4 * Iterated_log.log2_ceil (fl + 1))

(* Fallback for the budgeted variant: deterministic exchange of the
   original inputs over the same channel. *)
let trivial_fallback role chan mine =
  let open Commsim.Transport in
  Obsv.Metrics.incr "tree/fallbacks";
  Obsv.Trace.span Obsv.Phases.tree_fallback (fun () ->
      match role with
      | `Alice ->
          chan.send (Wire.of_set mine);
          Bitio.Set_codec.read_gaps (Bitio.Bitreader.create (chan.recv ()))
      | `Bob ->
          let theirs = Bitio.Set_codec.read_gaps (Bitio.Bitreader.create (chan.recv ())) in
          let intersection = Iset.inter theirs mine in
          chan.send (Wire.of_set intersection);
          intersection)

exception Over_budget

let run_party ?buckets ?flat_eq_bits ?budget role rng ~universe ~r ~k chan mine =
  if r < 1 || k < 1 then invalid_arg "Tree_protocol.run_party";
  let open Commsim.Transport in
  (* both parties see every message once, so sent + received is a shared
     counter and budget decisions stay in lockstep *)
  let seen_bits = ref 0 in
  let chan =
    match budget with
    | None -> chan
    | Some _ ->
        {
          send =
            (fun payload ->
              seen_bits := !seen_bits + Bitio.Bits.length payload;
              chan.send payload);
          recv =
            (fun () ->
              let payload = chan.recv () in
              seen_bits := !seen_bits + Bitio.Bits.length payload;
              payload);
        }
  in
  let check_budget () =
    match budget with Some b when !seen_bits > b -> raise Over_budget | _ -> ()
  in
  let leaves = match buckets with Some b -> max 1 b | None -> k in
  let tree = Vtree.build ~k:leaves ~r in
  let bucket =
    Hashing.Carter_wegman.create (Prng.Rng.with_label rng "tree/bucket") ~universe ~range:leaves
  in
  let assign = Iset.partition_by (Hashing.Carter_wegman.hash bucket) ~bins:leaves mine in
  let rerun = Array.make leaves 0 in
  try
    for stage = 0 to r - 1 do
      check_budget ();
    let fl = Iterated_log.ilog (r - stage - 1) k in
    let eq_bits = match flat_eq_bits with Some b -> max 2 b | None -> stage_eq_bits fl in
    let failure = stage_failure fl in
    let nodes = tree.Vtree.levels.(stage) in
    let node_fn vi =
      let label = "tree/eq/s" ^ string_of_int stage ^ "/v" ^ string_of_int vi in
      Strhash.create (Prng.Rng.with_label rng label) ~bits:eq_bits
    in
    (* The node's payload (its leaves' gap-coded buckets, as Wire.of_sets
       laid them out) is assembled in a scratch writer and hashed through
       the zero-copy view; only the eq_bits-wide tag reaches the wire. *)
    let with_node_payload node f =
      Bitio.Pool.with_buf (fun tmp ->
          List.iter (fun u -> Bitio.Set_codec.write_gaps tmp assign.(u)) (Vtree.leaves node);
          f (Bitio.Bitbuf.view tmp))
    in
    (* Stage messages 1-2: batched equality tests at level L_stage.  Bob
       replies with the failed-node bitmap plus his bucket sizes under the
       failed nodes (needed to parameterize the re-runs). *)
    Obsv.Metrics.observe "tree/eq_bits" eq_bits;
    let failed_leaves, their_sizes =
      Obsv.Trace.span Obsv.Phases.tree_eq
        ~attrs:[ ("stage", string_of_int stage); ("eq_bits", string_of_int eq_bits) ]
        (fun () ->
          match role with
          | `Alice ->
          chan.send
            (Bitio.Pool.payload (fun buf ->
                 Array.iteri
                   (fun vi node ->
                     with_node_payload node (fun payload ->
                         Strhash.write (node_fn vi) buf payload))
                   nodes));
          let reader = Bitio.Bitreader.create (chan.recv ()) in
          let failed =
            Array.init (Array.length nodes) (fun _ -> Bitio.Bitreader.read_bit reader)
          in
          let failed_leaves =
            Array.to_list nodes
            |> List.mapi (fun vi node -> if failed.(vi) then Vtree.leaves node else [])
            |> List.concat
          in
          let their_sizes = List.map (fun _ -> Bitio.Codes.read_gamma reader) failed_leaves in
          (failed_leaves, their_sizes)
      | `Bob ->
          let reader = Bitio.Bitreader.create (chan.recv ()) in
          let failed =
            Array.mapi
              (fun vi node ->
                with_node_payload node (fun payload ->
                    not (Strhash.matches (node_fn vi) reader payload)))
              nodes
          in
          let failed_leaves =
            Array.to_list nodes
            |> List.mapi (fun vi node -> if failed.(vi) then Vtree.leaves node else [])
            |> List.concat
          in
          chan.send
            (Bitio.Pool.payload (fun buf ->
                 Array.iter (Bitio.Bitbuf.write_bit buf) failed;
                 List.iter
                   (fun u -> Bitio.Codes.write_gamma buf (Array.length assign.(u)))
                   failed_leaves));
          (failed_leaves, List.map (fun u -> Array.length assign.(u)) failed_leaves))
    in
    (* Stage messages 3-4: batched Basic-Intersection re-runs on every leaf
       below a failed node (Lemma 3.3, with this stage's error target).
       Alice ships her sizes and element tags; Bob filters his buckets,
       ships his own tags of the pre-filter buckets; Alice filters hers. *)
    if failed_leaves <> [] then begin
      Obsv.Metrics.incr ~by:(List.length failed_leaves) "tree/failed_leaves";
      let leaf_fn u m =
        let label = "tree/bi/leaf" ^ string_of_int u ^ "/run" ^ string_of_int rerun.(u) in
        let bits = Basic_intersection.tag_bits ~m ~failure in
        Strhash.create (Prng.Rng.with_label rng label) ~bits
      in
      Obsv.Trace.span Obsv.Phases.tree_rerun ~attrs:[ ("stage", string_of_int stage) ] (fun () ->
      match role with
      | `Alice ->
          let sizes = List.combine failed_leaves their_sizes in
          let msg, fns =
            Bitio.Pool.with_buf (fun buf ->
                let fns =
                  List.map
                    (fun (u, their_size) ->
                      let m = Array.length assign.(u) + their_size in
                      let fn = leaf_fn u m in
                      Bitio.Codes.write_gamma buf (Array.length assign.(u));
                      Basic_intersection.write_tags buf fn assign.(u);
                      (u, their_size, fn))
                    sizes
                in
                (Bitio.Bitbuf.contents buf, fns))
          in
          chan.send msg;
          let reader = Bitio.Bitreader.create (chan.recv ()) in
          List.iter
            (fun (u, their_size, fn) ->
              let table =
                Basic_intersection.read_tag_keys reader ~bits:(Strhash.bits fn) ~count:their_size
              in
              assign.(u) <- Basic_intersection.filter_by_tags fn table assign.(u))
            fns
      | `Bob ->
          let reader = Bitio.Bitreader.create (chan.recv ()) in
          chan.send
            (Bitio.Pool.payload (fun buf ->
                 List.iter
                   (fun u ->
                     let their_size = Bitio.Codes.read_gamma reader in
                     let m = Array.length assign.(u) + their_size in
                     let fn = leaf_fn u m in
                     let table =
                       Basic_intersection.read_tag_keys reader ~bits:(Strhash.bits fn)
                         ~count:their_size
                     in
                     Basic_intersection.write_tags buf fn assign.(u);
                     assign.(u) <- Basic_intersection.filter_by_tags fn table assign.(u))
                   failed_leaves)));
      List.iter (fun u -> rerun.(u) <- rerun.(u) + 1) failed_leaves
    end
    done;
    Iset.of_list (List.concat_map Array.to_list (Array.to_list assign))
  with Over_budget ->
    (* stage boundaries are synchronized, so both parties land here with
       the channel quiescent *)
    trivial_fallback role chan mine

let protocol ?buckets ?flat_eq_bits ?k ~r () =
  {
    Protocol.name = Printf.sprintf "tree(r=%d)" r;
    sandwich = true;
    run =
      (fun rng ~universe s t ->
        Protocol.validate_inputs ~universe s t;
        let k = match k with Some k -> k | None -> max 1 (max (Array.length s) (Array.length t)) in
        let (alice, bob), cost =
          Commsim.Two_party.run
            ~alice:(fun chan -> run_party ?buckets ?flat_eq_bits `Alice rng ~universe ~r ~k chan s)
            ~bob:(fun chan -> run_party ?buckets ?flat_eq_bits `Bob rng ~universe ~r ~k chan t)
        in
        { Protocol.alice; bob; cost });
  }

let protocol_budgeted ?(budget_factor = 64) ?k ~r () =
  {
    Protocol.name = Printf.sprintf "tree-budgeted(r=%d,factor=%d)" r budget_factor;
    sandwich = true;
    run =
      (fun rng ~universe s t ->
        Protocol.validate_inputs ~universe s t;
        let k = match k with Some k -> k | None -> max 1 (max (Array.length s) (Array.length t)) in
        let budget = budget_factor * k * max 1 (Iterated_log.ilog r k) in
        let (alice, bob), cost =
          Commsim.Two_party.run
            ~alice:(fun chan -> run_party ~budget `Alice rng ~universe ~r ~k chan s)
            ~bob:(fun chan -> run_party ~budget `Bob rng ~universe ~r ~k chan t)
        in
        { Protocol.alice; bob; cost });
  }

let protocol_log_star ?k () =
  let base ~k_eff = Iterated_log.log_star k_eff in
  {
    Protocol.name = "tree(r=log* k)";
    sandwich = true;
    run =
      (fun rng ~universe s t ->
        let k_eff =
          match k with Some k -> k | None -> max 1 (max (Array.length s) (Array.length t))
        in
        let r = max 1 (base ~k_eff) in
        (protocol ~k:k_eff ~r ()).Protocol.run rng ~universe s t);
  }
