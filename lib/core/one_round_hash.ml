let tag_bits ~k ~confidence =
  if confidence < 1 then invalid_arg "One_round_hash.tag_bits";
  max 8 (confidence * Iterated_log.log2_ceil (max 2 k))

let protocol ?(confidence = 4) () =
  {
    Protocol.name = Printf.sprintf "one-round-hash(C=%d)" confidence;
    sandwich = true;
    run =
      (fun rng ~universe s t ->
        Protocol.validate_inputs ~universe s t;
        let k = max 1 (max (Array.length s) (Array.length t)) in
        let bits = tag_bits ~k ~confidence in
        let fn () = Strhash.create (Prng.Rng.with_label rng "one-round/fn") ~bits in
        let send_tags chan fn mine =
          Obsv.Trace.span Obsv.Phases.orh_tags (fun () ->
              Commsim.Transport.send chan
                (Bitio.Pool.payload (fun buf ->
                     Bitio.Codes.write_gamma buf (Array.length mine);
                     Basic_intersection.write_tags buf fn mine)))
        in
        let receive_and_filter chan fn mine =
          let reader = Bitio.Bitreader.create (Commsim.Transport.recv chan) in
          let count = Bitio.Codes.read_gamma reader in
          let table = Basic_intersection.read_tag_keys reader ~bits ~count in
          Basic_intersection.filter_by_tags fn table mine
        in
        let alice chan =
          let fn = fn () in
          send_tags chan fn s;
          receive_and_filter chan fn s
        in
        let bob chan =
          let fn = fn () in
          send_tags chan fn t;
          receive_and_filter chan fn t
        in
        let (alice, bob), cost = Commsim.Two_party.run ~alice ~bob in
        { Protocol.alice; bob; cost });
  }
