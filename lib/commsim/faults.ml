type link = { flip : float; trunc : float; dup : float; drop : float }

let clean_link = { flip = 0.0; trunc = 0.0; dup = 0.0; drop = 0.0 }
let flipping p = { clean_link with flip = p }
let dropping p = { clean_link with drop = p }

let validate_link { flip; trunc; dup; drop } =
  let check name p =
    if not (p >= 0.0 && p <= 1.0) then invalid_arg ("Faults: " ^ name ^ " rate outside [0, 1]")
  in
  check "flip" flip;
  check "trunc" trunc;
  check "dup" dup;
  check "drop" drop

type plan = { seed_ : int; pick : from_:int -> to_:int -> link; clean_ : bool }

let clean = { seed_ = 0; pick = (fun ~from_:_ ~to_:_ -> clean_link); clean_ = true }

let uniform ~seed link =
  validate_link link;
  if link = clean_link then { clean with seed_ = seed }
  else { seed_ = seed; pick = (fun ~from_:_ ~to_:_ -> link); clean_ = false }

let make ~seed pick = { seed_ = seed; pick; clean_ = false }
let is_clean plan = plan.clean_
let seed plan = plan.seed_

let reseed plan ~salt =
  if plan.clean_ then plan
  else
    { plan with seed_ = Prng.Rng.bits (Prng.Rng.with_label (Prng.Rng.of_int plan.seed_) (Printf.sprintf "reseed/%d" salt)) ~width:30 }

type action = Deliver of Bitio.Bits.t list | Drop

type tally = {
  deliveries : int;
  flipped_messages : int;
  flipped_bits : int;
  truncated_messages : int;
  truncated_bits : int;
  duplicated_messages : int;
  dropped_messages : int;
  dropped_bits : int;
}

let zero_tally =
  {
    deliveries = 0;
    flipped_messages = 0;
    flipped_bits = 0;
    truncated_messages = 0;
    truncated_bits = 0;
    duplicated_messages = 0;
    dropped_messages = 0;
    dropped_bits = 0;
  }

let add_tally a b =
  {
    deliveries = a.deliveries + b.deliveries;
    flipped_messages = a.flipped_messages + b.flipped_messages;
    flipped_bits = a.flipped_bits + b.flipped_bits;
    truncated_messages = a.truncated_messages + b.truncated_messages;
    truncated_bits = a.truncated_bits + b.truncated_bits;
    duplicated_messages = a.duplicated_messages + b.duplicated_messages;
    dropped_messages = a.dropped_messages + b.dropped_messages;
    dropped_bits = a.dropped_bits + b.dropped_bits;
  }

let tally_is_clean t =
  t.flipped_messages = 0 && t.truncated_messages = 0 && t.duplicated_messages = 0
  && t.dropped_messages = 0

let pp_tally ppf t =
  Format.fprintf ppf
    "@[<h>%d delivered, %d bits flipped in %d msgs, %d truncated (-%d bits), %d duplicated, %d \
     dropped (-%d bits)@]"
    t.deliveries t.flipped_bits t.flipped_messages t.truncated_messages t.truncated_bits
    t.duplicated_messages t.dropped_messages t.dropped_bits

type tallies = { links : tally array array }

let create_tallies ~players =
  if players < 1 then invalid_arg "Faults.create_tallies";
  { links = Array.init players (fun _ -> Array.make players zero_tally) }

let total t =
  Array.fold_left (fun acc row -> Array.fold_left add_tally acc row) zero_tally t.links

let outgoing t rank = Array.fold_left add_tally zero_tally t.links.(rank)

let incoming t rank =
  Array.fold_left (fun acc row -> add_tally acc row.(rank)) zero_tally t.links

let merge a b =
  if Array.length a.links <> Array.length b.links then invalid_arg "Faults.merge: player counts";
  { links = Array.map2 (Array.map2 add_tally) a.links b.links }

let truncate payload ~keep = Bitio.Bitreader.read_blob (Bitio.Bitreader.create payload) ~bits:keep

(* One bernoulli draw per bit index, in order — the same draw sequence as
   the historical to_bools/of_bools implementation — but damage is applied
   by xor on a single byte copy taken only once a flip actually lands. *)
let flip_bits rng ~p payload =
  let n = Bitio.Bits.length payload in
  let flipped = ref 0 in
  let data = ref Bytes.empty in
  for i = 0 to n - 1 do
    if Prng.Rng.bernoulli rng ~p then begin
      if !flipped = 0 then data := Bytes.sub (Bitio.Bits.bytes payload) 0 ((n + 7) / 8);
      incr flipped;
      let j = i lsr 3 in
      Bytes.set !data j (Char.chr (Char.code (Bytes.get !data j) lxor (1 lsl (i land 7))))
    end
  done;
  if !flipped = 0 then (payload, 0)
  else (Bitio.Bits.unsafe_of_bytes !data ~length:n, !flipped)

let apply plan ~from_ ~to_ ~index payload =
  if plan.clean_ then (Deliver [ payload ], { zero_tally with deliveries = 1 })
  else begin
    let link = plan.pick ~from_ ~to_ in
    validate_link link;
    let len = Bitio.Bits.length payload in
    (* One fresh generator per message coordinate: the draw sequence below is
       fixed, so the decision depends on nothing but (seed, link, index). *)
    let rng =
      Prng.Rng.with_label
        (Prng.Rng.of_int plan.seed_)
        ("faults/" ^ string_of_int from_ ^ "->" ^ string_of_int to_ ^ "/" ^ string_of_int index)
    in
    if link.drop > 0.0 && Prng.Rng.bernoulli rng ~p:link.drop then
      (Drop, { zero_tally with dropped_messages = 1; dropped_bits = len })
    else begin
      let payload, truncated_bits =
        if link.trunc > 0.0 && len > 0 && Prng.Rng.bernoulli rng ~p:link.trunc then begin
          let keep = Prng.Rng.int rng len in
          (truncate payload ~keep, len - keep)
        end
        else (payload, 0)
      in
      let payload, flipped_bits =
        if link.flip > 0.0 then flip_bits rng ~p:link.flip payload else (payload, 0)
      in
      let duplicated = link.dup > 0.0 && Prng.Rng.bernoulli rng ~p:link.dup in
      let copies = if duplicated then [ payload; payload ] else [ payload ] in
      ( Deliver copies,
        {
          zero_tally with
          deliveries = List.length copies;
          flipped_messages = (if flipped_bits > 0 then 1 else 0);
          flipped_bits;
          truncated_messages = (if truncated_bits > 0 then 1 else 0);
          truncated_bits;
          duplicated_messages = (if duplicated then 1 else 0);
        } )
    end
  end
