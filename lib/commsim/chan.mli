(** The coroutine simulator's binding of the {!Transport} abstraction.

    Party code is written against {!Transport.t}; this module produces such
    values from simulator endpoints, so the same protocol implementations
    run standalone between two parties ({!Two_party.run}) and embedded
    inside an m-player execution (a pair of {!Network} endpoints).

    [t] is kept as an alias of {!Transport.t} (with its fields re-exported)
    for existing call sites; new code should name {!Transport.t}
    directly. *)

type t = Transport.t = { send : Bitio.Bits.t -> unit; recv : unit -> Bitio.Bits.t }

(** [of_endpoint ep ~peer] views the network endpoint [ep] as a transport
    to player [peer]. *)
val of_endpoint : Network.endpoint -> peer:int -> Transport.t

(** The coroutine simulator as a {!Transport.S} backend: an address is an
    (endpoint, peer rank) pair, and connecting is free because the
    scheduler already owns the wires. *)
module Sim : Transport.S with type addr = Network.endpoint * int

(** [loopback ()] is {!Transport.pipe}: a pair of transports plumbed back
    to back with a same-thread queue, no cost accounting. *)
val loopback : unit -> Transport.t * Transport.t

(** {!Transport.tamper}, re-exported: message-level fault injection for
    robustness tests. *)
val tamper :
  ?flip_bit:(int -> int -> int option) -> ?drop_nth:int -> Transport.t -> Transport.t
