let players ~alice ~bob result_a result_b =
  [|
    (fun ep -> result_a := Some (alice (Chan.of_endpoint ep ~peer:1)));
    (fun ep -> result_b := Some (bob (Chan.of_endpoint ep ~peer:0)));
  |]

let run ~alice ~bob =
  let result_a = ref None and result_b = ref None in
  let (_ : unit array), cost = Network.run (players ~alice ~bob result_a result_b) in
  match (!result_a, !result_b) with
  | Some a, Some b -> ((a, b), cost)
  | _ -> assert false

let run_faulty ~plan ~alice ~bob =
  let result_a = ref None and result_b = ref None in
  let outcome, cost, tallies =
    Network.run_faulty ~plan (players ~alice ~bob result_a result_b)
  in
  let outcome =
    match outcome with
    | Network.Completed (_ : unit array) -> begin
        match (!result_a, !result_b) with
        | Some a, Some b -> Network.Completed (a, b)
        | _ -> assert false
      end
    | Network.Lost d -> Network.Lost d
    | Network.Crashed { rank; exn; after_messages } -> Network.Crashed { rank; exn; after_messages }
  in
  (outcome, cost, tallies)
