type t = { send : Bitio.Bits.t -> unit; recv : unit -> Bitio.Bits.t }

let send tr payload = tr.send payload
let recv tr = tr.recv ()
let make ~send ~recv = { send; recv }

module type S = sig
  type addr
  type conn

  val connect : addr -> conn
  val chan : conn -> t
end

let pipe () =
  let a_to_b = Queue.create () and b_to_a = Queue.create () in
  let take label q () =
    match Queue.take_opt q with
    | Some payload -> payload
    | None -> failwith ("Transport.pipe: recv on empty queue (" ^ label ^ ")")
  in
  ( { send = (fun p -> Queue.add p a_to_b); recv = take "a" b_to_a },
    { send = (fun p -> Queue.add p b_to_a); recv = take "b" a_to_b } )

let flip_payload payload bit = Bitio.Bits.flip payload bit

let tamper ?flip_bit ?drop_nth tr =
  let sent = ref 0 in
  {
    tr with
    send =
      (fun payload ->
        let index = !sent in
        incr sent;
        if Some index = drop_nth then ()
        else begin
          let payload =
            match flip_bit with
            | None -> payload
            | Some choose -> begin
                match choose index (Bitio.Bits.length payload) with
                | Some bit when bit >= 0 && bit < Bitio.Bits.length payload ->
                    flip_payload payload bit
                | Some _ | None -> payload
              end
          in
          tr.send payload
        end);
  }
