type player = { sent_bits : int; received_bits : int; sent_messages : int }

type t = {
  players : player array;
  total_bits : int;
  messages : int;
  rounds : int;
}

let zero_player = { sent_bits = 0; received_bits = 0; sent_messages = 0 }

let add_seq a b =
  if Array.length a.players <> Array.length b.players then invalid_arg "Cost.add_seq: player counts";
  {
    players =
      Array.map2
        (fun p q ->
          {
            sent_bits = p.sent_bits + q.sent_bits;
            received_bits = p.received_bits + q.received_bits;
            sent_messages = p.sent_messages + q.sent_messages;
          })
        a.players b.players;
    total_bits = a.total_bits + b.total_bits;
    messages = a.messages + b.messages;
    rounds = a.rounds + b.rounds;
  }

let zero ~players =
  { players = Array.make players zero_player; total_bits = 0; messages = 0; rounds = 0 }

let max_player_bits t =
  Array.fold_left (fun acc p -> max acc (p.sent_bits + p.received_bits)) 0 t.players

let avg_player_bits t =
  if Array.length t.players = 0 then 0.0
  else float_of_int t.total_bits /. float_of_int (Array.length t.players)

let pp ppf t =
  Format.fprintf ppf "@[<h>%d bits, %d messages, %d rounds (%d players)@]" t.total_bits
    t.messages t.rounds (Array.length t.players)

let pp_breakdown ppf t =
  Format.fprintf ppf "@[<v>%a" pp t;
  Array.iteri
    (fun i p ->
      Format.fprintf ppf "@,  player %d: sent %d bits in %d msgs, received %d bits" i
        p.sent_bits p.sent_messages p.received_bits)
    t.players;
  Format.fprintf ppf "@]"

let breakdown_columns = [ "player"; "sent bits"; "sent msgs"; "received bits" ]

let breakdown_rows t =
  Array.to_list
    (Array.mapi
       (fun i p ->
         [
           string_of_int i;
           string_of_int p.sent_bits;
           string_of_int p.sent_messages;
           string_of_int p.received_bits;
         ])
       t.players)
