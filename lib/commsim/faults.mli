(** Deterministic, seeded adversarial channels.

    A {!plan} describes what the channel does to every message of an
    execution: per payload bit it may flip the bit, per message it may
    truncate the payload, deliver it twice, or drop it entirely.  The
    treatment of the [index]-th message on a directed link is a pure
    function of the plan seed and the coordinates [(from_, to_, index)] —
    never of scheduling order — so a faulty execution is replayed exactly
    by re-running with the same plan ({!Network.run_faulty}).

    Injected damage is tallied per directed link ({!tallies}) as a sidecar
    to {!Cost}: cost keeps metering what actually crossed the wire (each
    delivered copy once), the tally records what the adversary did to it. *)

(** Per-link fault rates; all fields are probabilities in [\[0, 1\]]. *)
type link = {
  flip : float;  (** each payload bit flips independently *)
  trunc : float;  (** the message loses a uniform suffix (per message) *)
  dup : float;  (** the message is delivered twice (per message) *)
  drop : float;  (** the message is never delivered (per message) *)
}

(** The faultless link: all rates zero. *)
val clean_link : link

(** [flipping p] is {!clean_link} with bit-flip rate [p]. *)
val flipping : float -> link

(** [dropping p] is {!clean_link} with drop rate [p]. *)
val dropping : float -> link

(** A seeded description of the channel's behaviour on every message of an
    execution (see the module preamble). *)
type plan

(** The identity channel; {!apply} delivers every payload untouched. *)
val clean : plan

(** [uniform ~seed link] applies the same [link] faults to every directed
    link.  Raises [Invalid_argument] if a rate is outside [\[0, 1\]]. *)
val uniform : seed:int -> link -> plan

(** [make ~seed pick] chooses the fault rates per directed link; [pick] must
    be pure.  Rates are validated when the link is first used. *)
val make : seed:int -> (from_:int -> to_:int -> link) -> plan

(** Does this plan inject no faults on any link? *)
val is_clean : plan -> bool

(** The seed the plan's noise derives from. *)
val seed : plan -> int

(** [reseed plan ~salt] is [plan] with a seed derived deterministically from
    [(seed plan, salt)]: the same fault rates, fresh noise.  Retry loops use
    this so each re-execution faces independent channel randomness instead
    of a bit-for-bit replay of the damage that just failed them (message
    indices restart at zero on every {!Network.run_faulty}).  The identity
    on {!clean}. *)
val reseed : plan -> salt:int -> plan

(** What the channel decided to do with one message: the payload copies to
    deliver, in order (possibly corrupted; two copies when duplicated), or
    nothing at all. *)
type action = Deliver of Bitio.Bits.t list | Drop

(** Fault bookkeeping for one directed link (or an aggregate of links). *)
type tally = {
  deliveries : int;  (** payload copies handed to the recipient *)
  flipped_messages : int;
  flipped_bits : int;
  truncated_messages : int;
  truncated_bits : int;  (** bits cut off by truncation *)
  duplicated_messages : int;
  dropped_messages : int;
  dropped_bits : int;  (** bits of payload that never arrived *)
}

(** The empty tally (unit of {!add_tally}). *)
val zero_tally : tally

(** Field-wise sum of two tallies. *)
val add_tally : tally -> tally -> tally

(** Did this tally record any injected fault (flip/truncation/dup/drop)? *)
val tally_is_clean : tally -> bool

(** Human-readable rendering of the non-zero tally fields. *)
val pp_tally : Format.formatter -> tally -> unit

(** Per-directed-link tallies of one execution: [links.(from_).(to_)]. *)
type tallies = { links : tally array array }

(** All-zero tallies for a [players]-party execution. *)
val create_tallies : players:int -> tallies

(** Aggregate over all links. *)
val total : tallies -> tally

(** Aggregate over the links leaving one player. *)
val outgoing : tallies -> int -> tally

(** Aggregate over the links reaching one player. *)
val incoming : tallies -> int -> tally

(** [merge a b] adds the tallies link-wise (same player count). *)
val merge : tallies -> tallies -> tallies

(** [apply plan ~from_ ~to_ ~index payload] is the channel's treatment of
    the [index]-th message sent on the directed link [from_ -> to_],
    together with the tally delta describing the injected damage.
    Deterministic in [(seed plan, from_, to_, index)] alone. *)
val apply :
  plan -> from_:int -> to_:int -> index:int -> Bitio.Bits.t -> action * tally
