open Effect
open Effect.Deep

type payload = Bitio.Bits.t

type _ Effect.t +=
  | Send_eff : int * payload -> unit Effect.t
  | Recv_eff : int -> payload Effect.t
  | Recv_any_eff : (int * payload) Effect.t

type status =
  | Runnable
  | Blocked of (payload, unit) continuation * int (* waiting for this sender *)
  | Blocked_any of (int * payload, unit) continuation
  | Finished

type player_state = {
  rank : int;
  size : int;
  inboxes : (payload * int) Queue.t array; (* (payload, depth), indexed by sender *)
  mutable clock : int;
  mutable status : status;
  mutable sent_bits : int;
  mutable received_bits : int;
  mutable sent_messages : int;
  mutable consumed_messages : int;
}

type endpoint = player_state

let rank ep = ep.rank
let size ep = ep.size

let send ep ~to_ payload =
  if to_ < 0 || to_ >= ep.size then invalid_arg "Network.send: rank out of range";
  if to_ = ep.rank then invalid_arg "Network.send: self-send";
  perform (Send_eff (to_, payload))

let recv ep ~from_ =
  if from_ < 0 || from_ >= ep.size then invalid_arg "Network.recv: rank out of range";
  if from_ = ep.rank then invalid_arg "Network.recv: self-recv";
  perform (Recv_eff from_)

let recv_any _ep = perform Recv_any_eff

exception Deadlock of string

type trace_entry = { from_ : int; to_ : int; bits : int; depth : int; span : int option }

type blocked = { rank : int; waiting_for : int option; consumed : int }
type drop_site = { drop_from : int; drop_to : int; drop_index : int }

type diagnosis = {
  blocked : blocked list;
  dropped : int;
  first_drop : drop_site option;
  detail : string;
}

type 'r outcome =
  | Completed of 'r
  | Lost of diagnosis
  | Crashed of { rank : int; exn : string; after_messages : int }

let run_with ~trace ~faults players =
  let m = Array.length players in
  if m < 2 then invalid_arg "Network.run: need at least two players";
  let states =
    Array.init m (fun rank ->
        {
          rank;
          size = m;
          inboxes = Array.init m (fun _ -> Queue.create ());
          clock = 0;
          status = Runnable;
          sent_bits = 0;
          received_bits = 0;
          sent_messages = 0;
          consumed_messages = 0;
        })
  in
  let results = Array.make m None in
  let runnable : (unit -> unit) Queue.t = Queue.create () in
  let rounds = ref 0 and total_bits = ref 0 and messages = ref 0 in
  (* Entries accumulate newest-first; the single [List.rev] at the return
     site below restores send order. *)
  let entries = ref [] in
  (* The ambient observability hooks.  They never touch the cost meters:
     with tracing disabled (the default collector) every call below is a
     no-op branch, and with it enabled only the sidecar event record grows,
     so [Cost.t] is bit-identical either way. *)
  let collector = Obsv.Trace.current () in
  let observing = Obsv.Trace.enabled collector in
  let tallies = Faults.create_tallies ~players:m in
  let link_index = Array.init m (fun _ -> Array.make m 0) in
  let crashes = ref [] in
  let first_drop = ref None in
  let consume st from_ =
    let payload, depth = Queue.pop st.inboxes.(from_) in
    st.clock <- max st.clock depth;
    st.received_bits <- st.received_bits + Bitio.Bits.length payload;
    st.consumed_messages <- st.consumed_messages + 1;
    payload
  in
  let first_nonempty_inbox st =
    let rec scan from_ =
      if from_ >= m then None
      else if not (Queue.is_empty st.inboxes.(from_)) then Some from_
      else scan (from_ + 1)
    in
    scan 0
  in
  (* Wake-ups can go stale (two sends queue two wakes but the first one lets
     the player move on), so a wake re-checks the condition before resuming. *)
  let try_resume st =
    match st.status with
    | Blocked (k, from_) when not (Queue.is_empty st.inboxes.(from_)) ->
        st.status <- Runnable;
        if observing then Obsv.Trace.set_rank collector (Some st.rank);
        continue k (consume st from_)
    | Blocked_any k -> begin
        match first_nonempty_inbox st with
        | Some from_ ->
            st.status <- Runnable;
            if observing then Obsv.Trace.set_rank collector (Some st.rank);
            continue k (from_, consume st from_)
        | None -> ()
      end
    | Blocked _ | Runnable | Finished -> ()
  in
  (* Cost meters every payload copy that actually crosses the wire: in a
     clean run that is exactly one per send; the channel ([faults]) can turn
     one send into zero (drop) or two (duplication) metered deliveries. *)
  let deliver st ~to_ payload =
    let depth = st.clock + 1 in
    let len = Bitio.Bits.length payload in
    rounds := max !rounds depth;
    total_bits := !total_bits + len;
    incr messages;
    (* [observe] self-gates on the ambient registry, so metrics work with or
       without tracing. *)
    Obsv.Metrics.observe "net/payload_bits" len;
    let span =
      if observing then Obsv.Trace.on_message collector ~from_:st.rank ~to_ ~bits:len ~depth
      else None
    in
    if trace then entries := { from_ = st.rank; to_; bits = len; depth; span } :: !entries;
    st.sent_bits <- st.sent_bits + len;
    st.sent_messages <- st.sent_messages + 1;
    let peer = states.(to_) in
    Queue.add (payload, depth) peer.inboxes.(st.rank);
    match peer.status with
    | Blocked (_, from_) when from_ = st.rank -> Queue.add (fun () -> try_resume peer) runnable
    | Blocked_any _ -> Queue.add (fun () -> try_resume peer) runnable
    | Blocked _ | Runnable | Finished -> ()
  in
  let start st rank () =
    if observing then Obsv.Trace.set_rank collector (Some rank);
    match_with (players.(rank)) st
      {
        retc =
          (fun r ->
            results.(rank) <- Some r;
            st.status <- Finished);
        exnc =
          (match faults with
          | None -> raise
          | Some _ ->
              fun e ->
                crashes := (st.rank, Printexc.to_string e, st.consumed_messages) :: !crashes;
                st.status <- Finished);
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | Send_eff (to_, payload) ->
                Some
                  (fun (k : (c, unit) continuation) ->
                    (match faults with
                    | None -> deliver st ~to_ payload
                    | Some plan ->
                        let index = link_index.(st.rank).(to_) in
                        link_index.(st.rank).(to_) <- index + 1;
                        let action, delta =
                          Faults.apply plan ~from_:st.rank ~to_ ~index payload
                        in
                        tallies.Faults.links.(st.rank).(to_) <-
                          Faults.add_tally tallies.Faults.links.(st.rank).(to_) delta;
                        (match action with
                        | Faults.Drop ->
                            if !first_drop = None then
                              first_drop :=
                                Some { drop_from = st.rank; drop_to = to_; drop_index = index }
                        | Faults.Deliver copies -> List.iter (deliver st ~to_) copies));
                    continue k ())
            | Recv_eff from_ ->
                Some
                  (fun (k : (c, unit) continuation) ->
                    if Queue.is_empty st.inboxes.(from_) then st.status <- Blocked (k, from_)
                    else continue k (consume st from_))
            | Recv_any_eff ->
                Some
                  (fun (k : (c, unit) continuation) ->
                    match first_nonempty_inbox st with
                    | Some from_ -> continue k (from_, consume st from_)
                    | None -> st.status <- Blocked_any k)
            | _ -> None);
      }
  in
  Array.iteri (fun rank st -> Queue.add (start st rank) runnable) states;
  let rec schedule () =
    match Queue.take_opt runnable with
    | Some thunk ->
        thunk ();
        schedule ()
    | None -> ()
  in
  if observing then
    Fun.protect ~finally:(fun () -> Obsv.Trace.set_rank collector None) schedule
  else schedule ();
  let outcome =
    match List.rev !crashes with
    | (rank, exn, after_messages) :: _ -> Crashed { rank; exn; after_messages }
    | [] -> begin
        let stuck =
          Array.to_list states
          |> List.filter_map (fun st ->
                 match st.status with
                 | Finished -> None
                 | Blocked (_, from_) ->
                     Some
                       { rank = st.rank; waiting_for = Some from_; consumed = st.consumed_messages }
                 | Blocked_any _ | Runnable ->
                     Some { rank = st.rank; waiting_for = None; consumed = st.consumed_messages })
        in
        match stuck with
        | [] ->
            Completed
              (Array.map
                 (function Some r -> r | None -> assert false (* Finished implies stored *))
                 results)
        | stuck when faults = None ->
            (* Clean executions keep the historical behaviour: a hang is a
               protocol bug and raises. *)
            let b = List.hd stuck in
            raise
              (Deadlock
                 (match b.waiting_for with
                 | Some from_ ->
                     Printf.sprintf
                       "player %d waits for a message from player %d that never comes" b.rank
                       from_
                 | None ->
                     Printf.sprintf "player %d waits for a message that never comes" b.rank))
        | stuck ->
            let dropped = (Faults.total tallies).Faults.dropped_messages in
            let describe b =
              match b.waiting_for with
              | Some from_ ->
                  let t = tallies.Faults.links.(from_).(b.rank) in
                  Printf.sprintf
                    "player %d waits for player %d after consuming %d message(s) (link %d->%d: \
                     %d sent, %d dropped, %d truncated)"
                    b.rank from_ b.consumed from_ b.rank
                    link_index.(from_).(b.rank)
                    t.Faults.dropped_messages t.Faults.truncated_messages
              | None ->
                  Printf.sprintf "player %d waits for a message from any player after consuming %d"
                    b.rank b.consumed
            in
            let first =
              match !first_drop with
              | None -> ""
              | Some d ->
                  Printf.sprintf "; first drop was message #%d on link %d->%d" d.drop_index
                    d.drop_from d.drop_to
            in
            let detail =
              Printf.sprintf "%s; channel dropped %d message(s) in total%s"
                (String.concat "; " (List.map describe stuck))
                dropped first
            in
            Lost { blocked = stuck; dropped; first_drop = !first_drop; detail }
      end
  in
  let players_cost =
    Array.map
      (fun st ->
        {
          Cost.sent_bits = st.sent_bits;
          received_bits = st.received_bits;
          sent_messages = st.sent_messages;
        })
      states
  in
  ( outcome,
    { Cost.players = players_cost; total_bits = !total_bits; messages = !messages; rounds = !rounds },
    List.rev !entries,
    tallies )

let completed_exn = function
  | Completed r -> r
  | Lost _ | Crashed _ -> assert false (* clean executions always complete or raise *)

let run players =
  let outcome, cost, _, _ = run_with ~trace:false ~faults:None players in
  (completed_exn outcome, cost)

let run_traced players =
  let outcome, cost, entries, _ = run_with ~trace:true ~faults:None players in
  (completed_exn outcome, cost, entries)

let run_faulty ~plan players =
  let outcome, cost, _, tallies = run_with ~trace:false ~faults:(Some plan) players in
  (outcome, cost, tallies)

let run_faulty_traced ~plan players =
  let outcome, cost, entries, tallies = run_with ~trace:true ~faults:(Some plan) players in
  (outcome, cost, entries, tallies)
