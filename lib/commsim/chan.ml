type t = Transport.t = { send : Bitio.Bits.t -> unit; recv : unit -> Bitio.Bits.t }

let of_endpoint ep ~peer =
  {
    Transport.send = (fun payload -> Network.send ep ~to_:peer payload);
    recv = (fun () -> Network.recv ep ~from_:peer);
  }

module Sim = struct
  type addr = Network.endpoint * int
  type conn = Transport.t

  let connect (ep, peer) = of_endpoint ep ~peer
  let chan conn = conn
end

let loopback = Transport.pipe
let tamper = Transport.tamper
