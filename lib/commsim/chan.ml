type t = { send : Bitio.Bits.t -> unit; recv : unit -> Bitio.Bits.t }

let of_endpoint ep ~peer =
  {
    send = (fun payload -> Network.send ep ~to_:peer payload);
    recv = (fun () -> Network.recv ep ~from_:peer);
  }

let flip_payload payload bit = Bitio.Bits.flip payload bit

let tamper ?flip_bit ?drop_nth chan =
  let sent = ref 0 in
  {
    chan with
    send =
      (fun payload ->
        let index = !sent in
        incr sent;
        if Some index = drop_nth then ()
        else begin
          let payload =
            match flip_bit with
            | None -> payload
            | Some choose -> begin
                match choose index (Bitio.Bits.length payload) with
                | Some bit when bit >= 0 && bit < Bitio.Bits.length payload ->
                    flip_payload payload bit
                | Some _ | None -> payload
              end
          in
          chan.send payload
        end);
  }

let loopback () =
  let a_to_b = Queue.create () and b_to_a = Queue.create () in
  let take label q () =
    match Queue.take_opt q with
    | Some payload -> payload
    | None -> failwith ("Chan.loopback: recv on empty queue (" ^ label ^ ")")
  in
  ( { send = (fun p -> Queue.add p a_to_b); recv = take "a" b_to_a },
    { send = (fun p -> Queue.add p b_to_a); recv = take "b" a_to_b } )
