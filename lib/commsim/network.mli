(** The message-passing model of Section 4 ([BEO+13]): [m] players, arbitrary
    point-to-point messages, costs counted in bits and rounds.

    Players are ordinary OCaml functions run as cooperative coroutines
    (OCaml 5 effect handlers).  A player function receives only its
    {!endpoint} — it has no reference to the other players' inputs, so the
    information barrier of the communication model is enforced by scoping,
    not by convention.  The scheduler delivers messages, meters every
    payload, and tracks rounds as the longest chain of causally dependent
    messages (see {!Cost}). *)

type endpoint

(** This player's index in [\[0, m)]. *)
val rank : endpoint -> int

(** Number of players. *)
val size : endpoint -> int

(** [send ep ~to_ payload] enqueues [payload] for player [to_].
    Sending to yourself or out of range raises [Invalid_argument]. *)
val send : endpoint -> to_:int -> Bitio.Bits.t -> unit

(** [recv ep ~from_] blocks until a message from player [from_] arrives and
    returns it.  Messages between a fixed pair arrive in FIFO order. *)
val recv : endpoint -> from_:int -> Bitio.Bits.t

(** [recv_any ep] blocks until a message from {e any} player arrives and
    returns [(sender, payload)].  Used by coordinators multiplexing many
    concurrent conversations (see {!Multiplex}). *)
val recv_any : endpoint -> int * Bitio.Bits.t

exception Deadlock of string
(** Raised by {!run} when every unfinished player is blocked on a message
    that can no longer arrive. *)

(** One sent message, as recorded by {!run_traced}: sender, recipient,
    payload length, the message's causal depth (its round), and — when an
    {!Obsv.Trace} collector is installed — the id of the sender's innermost
    open span at send time. *)
type trace_entry = { from_ : int; to_ : int; bits : int; depth : int; span : int option }

(** [run players] runs all player functions to completion and returns their
    results with the cost of the execution.  Players may finish in any
    order; any leftover undelivered messages are allowed (they are already
    metered). *)
val run : (endpoint -> 'a) array -> 'a array * Cost.t

(** Like {!run}, also returning the full message trace in send order.
    Invariants (tested): one entry per message, entry bits sum to
    [cost.total_bits], and the maximum depth equals [cost.rounds]. *)
val run_traced : (endpoint -> 'a) array -> 'a array * Cost.t * trace_entry list

(** One player that can no longer make progress: the sender it waits on
    ([None] when blocked in {!recv_any}) and how many messages it had
    consumed before wedging — the index of the message it is missing. *)
type blocked = { rank : int; waiting_for : int option; consumed : int }

(** The coordinates of a message the channel swallowed: the [drop_index]-th
    message sent on the directed link [drop_from -> drop_to]. *)
type drop_site = { drop_from : int; drop_to : int; drop_index : int }

(** Why a faulty execution wedged: which players are stuck, how many
    messages the channel swallowed, the first message it dropped (the usual
    root cause of a desynchronised conversation), and a human-readable
    account that names the guilty links. *)
type diagnosis = {
  blocked : blocked list;
  dropped : int;
  first_drop : drop_site option;
  detail : string;
}

(** Result of an execution over an adversarial channel.  [Lost] replaces the
    {!Deadlock} exception: a dropped (or desynchronising) message shows up
    as a structured diagnosis, not a bare exception.  [Crashed] captures a
    player raising — typically a codec choking on a corrupted payload —
    together with how many messages the player had consumed when it raised
    (so the offending message is identifiable). *)
type 'r outcome =
  | Completed of 'r
  | Lost of diagnosis
  | Crashed of { rank : int; exn : string; after_messages : int }

(** [run_faulty ~plan players] runs the execution with the channel applying
    [plan] to every message at delivery time ({!Faults.apply}).  Cost meters
    each payload copy that actually crosses the wire (dropped messages cost
    nothing, duplicated ones are metered once per delivery); the tallies
    record the injected damage per directed link.  Replay-deterministic:
    the same players and plan produce the identical outcome, cost, trace
    and tallies. *)
val run_faulty :
  plan:Faults.plan ->
  (endpoint -> 'a) array ->
  'a array outcome * Cost.t * Faults.tallies

(** Like {!run_faulty}, also returning the trace of delivered copies, in
    send (delivery) order.  The {!run_traced} invariants hold under damage
    too, for every outcome including [Lost] and [Crashed] (tested): one
    entry per {e delivered} payload copy (dropped messages leave no entry,
    duplicated ones leave two), entry bits sum to [cost.total_bits], and
    the maximum entry depth equals [cost.rounds]. *)
val run_faulty_traced :
  plan:Faults.plan ->
  (endpoint -> 'a) array ->
  'a array outcome * Cost.t * trace_entry list * Faults.tallies
