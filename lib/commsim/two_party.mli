(** Two-party executions: the standard Yao model, with Alice as player 0 and
    Bob as player 1. *)

(** [run ~alice ~bob] runs both parties to completion and returns their
    results together with the execution cost.  Each party sees only its
    channel; scheduling, metering and round accounting are inherited from
    {!Network}. *)
val run : alice:(Transport.t -> 'a) -> bob:(Transport.t -> 'b) -> ('a * 'b) * Cost.t

(** [run_faulty ~plan ~alice ~bob] runs both parties over an adversarial
    channel ({!Faults}).  A drop that wedges the conversation surfaces as
    {!Network.Lost} with a diagnosis; a party raising on a corrupted
    payload surfaces as {!Network.Crashed}.  Cost and fault tallies are
    returned even for aborted executions, so callers can account for the
    bits a failed attempt burned. *)
val run_faulty :
  plan:Faults.plan ->
  alice:(Transport.t -> 'a) ->
  bob:(Transport.t -> 'b) ->
  ('a * 'b) Network.outcome * Cost.t * Faults.tallies
