open Effect
open Effect.Deep

type payload = Bitio.Bits.t

type _ Effect.t += Sub_recv : int -> payload Effect.t

let run ep sessions =
  let peers = List.map fst sessions in
  let distinct = List.sort_uniq compare peers in
  if List.length distinct <> List.length peers then
    invalid_arg "Multiplex.run: duplicate peer sessions";
  let n = List.length sessions in
  let results = Array.make n None in
  let parked : (int, (payload, unit) continuation) Hashtbl.t = Hashtbl.create n in
  let buffered : (int, payload Queue.t) Hashtbl.t = Hashtbl.create n in
  let pending = ref n in
  let buffer_pop peer =
    match Hashtbl.find_opt buffered peer with
    | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
    | _ -> None
  in
  let chan_for peer =
    {
      Transport.send = (fun p -> Network.send ep ~to_:peer p);
      recv = (fun () -> perform (Sub_recv peer));
    }
  in
  let start idx (peer, fn) () =
    match_with
      (fun () -> results.(idx) <- Some (fn (chan_for peer)))
      ()
      {
        retc = (fun () -> decr pending);
        exnc = raise;
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | Sub_recv peer ->
                Some
                  (fun (k : (c, unit) continuation) ->
                    match buffer_pop peer with
                    | Some p -> continue k p
                    | None -> Hashtbl.replace parked peer k)
            | _ -> None (* network effects pass through to the scheduler *));
      }
  in
  List.iteri (fun idx session -> start idx session ()) sessions;
  while !pending > 0 do
    let sender, payload = Network.recv_any ep in
    match Hashtbl.find_opt parked sender with
    | Some k ->
        Hashtbl.remove parked sender;
        continue k payload
    | None ->
        (* No session waiting: either its session is finished (drop by
           burying in the buffer) or it will ask later. *)
        let q =
          match Hashtbl.find_opt buffered sender with
          | Some q -> q
          | None ->
              let q = Queue.create () in
              Hashtbl.replace buffered sender q;
              q
        in
        Queue.add payload q
  done;
  List.mapi
    (fun idx _ -> match results.(idx) with Some r -> r | None -> assert false)
    sessions
