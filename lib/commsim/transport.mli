(** The transport abstraction all party code is written against.

    A transport value is a bidirectional byte-stream to one fixed peer:
    [send] ships one framed payload, [recv] blocks until the peer's next
    payload arrives.  Protocol implementations consume only this record, so
    the same party function runs unchanged over the in-process coroutine
    simulator ({!Chan}, the first implementation), a loopback queue pair
    ({!pipe}), or — eventually — a real socket: a new backend only has to
    produce a [t].

    This module deliberately depends on nothing but {!Bitio}: the simulator
    ({!Network}) plugs in from the outside, not the other way around. *)

type t = { send : Bitio.Bits.t -> unit; recv : unit -> Bitio.Bits.t }

(** [send tr payload] ships one payload to the peer. *)
val send : t -> Bitio.Bits.t -> unit

(** [recv tr] blocks until the peer's next payload arrives. *)
val recv : t -> Bitio.Bits.t

(** Build a transport from its two operations. *)
val make : send:(Bitio.Bits.t -> unit) -> recv:(unit -> Bitio.Bits.t) -> t

(** What a transport backend must provide: a way to name a peer ([addr]),
    a connection handle, and the first-class channel view party code
    consumes.  {!Chan.Sim} is the coroutine-simulator instance; a socket
    backend would implement the same signature with
    [addr = Unix.sockaddr]-style naming. *)
module type S = sig
  type addr
  type conn

  val connect : addr -> conn
  val chan : conn -> t
end

(** [pipe ()] is a pair of transports plumbed back to back with a
    same-thread queue; useful in unit tests of message-level codecs.  No
    cost accounting, and [recv] on an empty queue raises [Failure]. *)
val pipe : unit -> t * t

(** [tamper ?flip_bit ?drop_nth tr] wraps a transport with fault injection
    for robustness tests: [flip_bit (message_index, payload_length)]
    returns the bit to corrupt in that outgoing message (or [None]);
    [drop_nth] silently discards that outgoing message (0-based).
    Incoming traffic is untouched. *)
val tamper : ?flip_bit:(int -> int -> int option) -> ?drop_nth:int -> t -> t
