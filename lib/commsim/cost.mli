(** Communication-cost accounting shared by the two-party and message-passing
    simulators.

    Bits are exact payload lengths.  Rounds are measured as the length of the
    longest chain of causally dependent messages ("virtual time"): a message
    depends on every message its sender had received before sending it.  For
    strictly alternating two-party protocols this equals the number of
    messages; batched same-direction messages share a round, matching how the
    paper counts rounds for protocols that run sub-protocols "in parallel". *)

type player = {
  sent_bits : int;
  received_bits : int;
  sent_messages : int;
}

type t = {
  players : player array;
  total_bits : int;  (** sum of payload lengths over all messages *)
  messages : int;  (** number of individual messages *)
  rounds : int;  (** longest dependency chain *)
}

(** A player tally with nothing sent or received. *)
val zero_player : player

(** [add_seq a b] is the cost of running the execution [a] followed by the
    execution [b] between the same players: bits, messages and per-player
    tallies add, and rounds add because phase [b] starts only after phase
    [a] finished.  The player counts must agree. *)
val add_seq : t -> t -> t

(** A zero cost for [n] players (unit of {!add_seq}). *)
val zero : players:int -> t

(** Maximum of [sent_bits + received_bits] over players — the "worst-case
    communication per player" of Corollary 4.2. *)
val max_player_bits : t -> int

(** [total_bits / number of players] — the "average communication per
    player" of Corollary 4.1 (counting each payload once, at the sender). *)
val avg_player_bits : t -> float

(** One-line [bits/messages/rounds] rendering. *)
val pp : Format.formatter -> t -> unit

(** {!pp} followed by one per-player [sent/received] line each. *)
val pp_breakdown : Format.formatter -> t -> unit

(** Header + rows for a per-player [sent/received] table, ready for
    [Stats.Table.create ~columns:breakdown_columns] / [add_row] — the CLI
    and bench render cost records through these instead of hand-formatting
    them. *)
val breakdown_columns : string list

(** One row per player, aligned with {!breakdown_columns}. *)
val breakdown_rows : t -> string list list
