(** Concurrent peer conversations inside a single player.

    A coordinator in the message-passing model talks to many peers at once
    (Corollary 4.1: one two-party protocol per group member).  Running those
    conversations one after another would serialize their round chains; this
    multiplexer runs each conversation as a nested coroutine and blocks only
    on {!Network.recv_any}, so independent conversations overlap exactly as
    the model intends and round accounting stays honest.

    Each session gets a {!Transport.t} to its peer.  Sends go out
    immediately; receives park the session until a message from that peer
    arrives.  At most one session per peer. *)

(** [run ep sessions] drives all sessions to completion and returns their
    results in input order.  Messages that arrive from a peer whose session
    already finished are dropped (they were metered at send time, like any
    unreceived message). *)
val run : Network.endpoint -> (int * (Transport.t -> 'a)) list -> 'a list
