type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let idx = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor idx) in
    let hi = min (n - 1) (lo + 1) in
    let frac = idx -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let of_floats values =
  let a = Array.of_list values in
  let n = Array.length a in
  if n = 0 then invalid_arg "Summary.of_floats: empty";
  Array.sort compare a;
  let sum = Array.fold_left ( +. ) 0.0 a in
  let mean = sum /. float_of_int n in
  let sq = Array.fold_left (fun acc v -> acc +. ((v -. mean) *. (v -. mean))) 0.0 a in
  let stddev = if n < 2 then 0.0 else sqrt (sq /. float_of_int (n - 1)) in
  {
    count = n;
    mean;
    stddev;
    min = a.(0);
    max = a.(n - 1);
    p50 = percentile a 0.5;
    p95 = percentile a 0.95;
  }

let of_ints values = of_floats (List.map float_of_int values)

module Acc = struct
  type nonrec summary = t

  (* Values in reverse arrival order; [merge] keeps the left operand's
     values first, so folding per-trial accumulators in trial-index order
     reproduces the sequential arrival order exactly (summaries sort
     before reducing, but bitwise-identical floats keep the mean fold
     reproducible too). *)
  type t = { rev : float list; len : int }

  let empty = { rev = []; len = 0 }
  let add t v = { rev = v :: t.rev; len = t.len + 1 }
  let add_int t v = add t (float_of_int v)
  let merge a b = { rev = b.rev @ a.rev; len = a.len + b.len }
  let count t = t.len
  let summarize t = of_floats (List.rev t.rev)
end

let ci95 t = if t.count < 2 then 0.0 else 1.96 *. t.stddev /. sqrt (float_of_int t.count)

let pp ppf t =
  Format.fprintf ppf "@[<h>mean=%.1f +/-%.1f sd=%.1f p50=%.1f p95=%.1f min=%.1f max=%.1f (n=%d)@]"
    t.mean (ci95 t) t.stddev t.p50 t.p95 t.min t.max t.count
