(** Summary statistics over repeated protocol trials. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation *)
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

val of_floats : float list -> t
val of_ints : int list -> t

(** A mergeable accumulator of observations, for parallel trial engines:
    workers build per-shard accumulators and the engine folds them back
    together.  [merge a b] holds [a]'s observations followed by [b]'s, so
    merging per-trial accumulators in trial-index order is {e associative}
    and reproduces the sequential arrival order — the resulting
    {!summarize} is byte-identical no matter how the shards were grouped. *)
module Acc : sig
  type summary = t
  type t

  val empty : t
  val add : t -> float -> t
  val add_int : t -> int -> t
  val merge : t -> t -> t
  val count : t -> int

  (** Reduce to a {!summary}; raises [Invalid_argument] when empty. *)
  val summarize : t -> summary
end

(** Half-width of the 95% normal-approximation confidence interval for the
    mean. *)
val ci95 : t -> float

val pp : Format.formatter -> t -> unit
