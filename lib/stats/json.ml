type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then "null"
  else begin
    (* Shortest representation that still round-trips well enough for a
       report; %.12g avoids the noise of full 17-digit output. *)
    let s = Printf.sprintf "%.12g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s
    else s ^ ".0"
  end

let rec emit buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          emit buf ~indent ~level:(level + 1) item)
        items;
      newline ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (key, value) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape key);
          Buffer.add_string buf (if indent then "\": " else "\":");
          emit buf ~indent ~level:(level + 1) value)
        fields;
      newline ();
      pad level;
      Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 256 in
  emit buf ~indent ~level:0 v;
  Buffer.contents buf

let to_string v = render ~indent:false v
let to_string_pretty v = render ~indent:true v

(* Recursive-descent parser for the same value space the emitter covers
   (RFC 8259 minus \u surrogate pairing, which none of our reports emit).
   Numbers parse as [Int] when they are integral and fit a native int,
   [Float] otherwise, matching what the emitters above produce. *)

exception Parse_error of string * int

let of_string input =
  let len = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (msg, !pos)) in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while (match peek () with Some (' ' | '\t' | '\n' | '\r') -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let string_value () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'
          | Some '\\' -> advance (); Buffer.add_char buf '\\'
          | Some '/' -> advance (); Buffer.add_char buf '/'
          | Some 'b' -> advance (); Buffer.add_char buf '\b'
          | Some 'f' -> advance (); Buffer.add_char buf '\012'
          | Some 'n' -> advance (); Buffer.add_char buf '\n'
          | Some 'r' -> advance (); Buffer.add_char buf '\r'
          | Some 't' -> advance (); Buffer.add_char buf '\t'
          | Some 'u' ->
              advance ();
              let code = ref 0 in
              for _ = 1 to 4 do
                (match peek () with
                | Some ('0' .. '9' as c) -> code := (!code * 16) + (Char.code c - Char.code '0')
                | Some ('a' .. 'f' as c) -> code := (!code * 16) + (Char.code c - Char.code 'a' + 10)
                | Some ('A' .. 'F' as c) -> code := (!code * 16) + (Char.code c - Char.code 'A' + 10)
                | _ -> fail "bad \\u escape");
                advance ()
              done;
              (* UTF-8 encode the code point (no surrogate pairing). *)
              if !code < 0x80 then Buffer.add_char buf (Char.chr !code)
              else if !code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (!code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (!code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (!code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((!code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (!code land 0x3F)))
              end
          | _ -> fail "bad escape");
          loop ()
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let number_value () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let n = ref 0 in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        advance ();
        incr n
      done;
      if !n = 0 then fail "expected digit"
    in
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' -> digits ()
    | _ -> fail "expected number");
    let integral = ref true in
    if peek () = Some '.' then begin
      integral := false;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        integral := false;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub input start (!pos - start) in
    if !integral then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
    else Float (float_of_string text)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = string_value () in
            skip_ws ();
            expect ':';
            let v = value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> Str (string_value ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> number_value ()
    | _ -> fail "expected a JSON value"
  in
  match value () with
  | v ->
      skip_ws ();
      if !pos <> len then Error (Printf.sprintf "trailing garbage at byte %d" !pos) else Ok v
  | exception Parse_error (msg, at) -> Error (Printf.sprintf "%s at byte %d" msg at)

(* Access helpers for consumers that walk parsed reports. *)
let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_list_opt = function List items -> Some items | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
