type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then "null"
  else begin
    (* Shortest representation that still round-trips well enough for a
       report; %.12g avoids the noise of full 17-digit output. *)
    let s = Printf.sprintf "%.12g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s
    else s ^ ".0"
  end

let rec emit buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          emit buf ~indent ~level:(level + 1) item)
        items;
      newline ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (key, value) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape key);
          Buffer.add_string buf (if indent then "\": " else "\":");
          emit buf ~indent ~level:(level + 1) value)
        fields;
      newline ();
      pad level;
      Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 256 in
  emit buf ~indent ~level:0 v;
  Buffer.contents buf

let to_string v = render ~indent:false v
let to_string_pretty v = render ~indent:true v
