let wilson ~failures ~trials ~z =
  if trials < 1 then invalid_arg "Binomial.wilson: trials";
  if failures < 0 || failures > trials then invalid_arg "Binomial.wilson: failures";
  if z <= 0.0 then invalid_arg "Binomial.wilson: z";
  let n = float_of_int trials in
  let p = float_of_int failures /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let center = p +. (z2 /. (2.0 *. n)) in
  let spread = z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) in
  (Float.max 0.0 ((center -. spread) /. denom), Float.min 1.0 ((center +. spread) /. denom))

let upper95 ~failures ~trials = snd (wilson ~failures ~trials ~z:1.96)

let describe ~failures ~trials =
  Printf.sprintf "%d/%d (<= %.2g)" failures trials (upper95 ~failures ~trials)
