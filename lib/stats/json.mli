(** Minimal JSON emission for machine-readable reports (no parser, no
    dependencies).  Numbers that are not finite are emitted as [null] so
    the output is always valid JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering with full string escaping. *)
val to_string : t -> string

(** Like {!to_string} with two-space indentation, for files meant to be
    read by humans too. *)
val to_string_pretty : t -> string
