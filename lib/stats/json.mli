(** Minimal JSON emission and parsing for machine-readable reports (no
    dependencies).  Numbers that are not finite are emitted as [null] so
    the output is always valid JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering with full string escaping. *)
val to_string : t -> string

(** Like {!to_string} with two-space indentation, for files meant to be
    read by humans too. *)
val to_string_pretty : t -> string

(** [of_string s] parses one JSON value (RFC 8259, minus surrogate-pair
    [\u] escapes, which no report in this repository emits) followed only
    by whitespace.  Integral numbers that fit a native [int] parse as
    {!Int}; everything else numeric parses as {!Float}. *)
val of_string : string -> (t, string) result

(** [member key v] is field [key] of object [v] ([None] for missing keys
    and non-objects). *)
val member : string -> t -> t option

val to_list_opt : t -> t list option
val to_int_opt : t -> int option

(** {!Int} widens to float here, mirroring the emitter's number split. *)
val to_float_opt : t -> float option

val to_string_opt : t -> string option
