(** Confidence bounds on an empirical failure probability.

    The soak harness observes [failures] out of [trials] Bernoulli runs and
    must compare the unknown true rate against a theoretical bound (e.g.
    the paper's [1/poly(k)]).  The Wilson score interval behaves well at
    the boundary rates the harness lives at (0 observed failures out of
    many trials), where the normal approximation collapses. *)

(** [wilson ~failures ~trials ~z] is the Wilson score interval
    [(lower, upper)] for the failure probability at critical value [z]
    (e.g. [1.96] for 95%).  Requires [0 <= failures <= trials] and
    [trials >= 1]. *)
val wilson : failures:int -> trials:int -> z:float -> float * float

(** Upper end of the 95% Wilson interval — the largest failure rate still
    plausibly consistent with the observations. *)
val upper95 : failures:int -> trials:int -> float

(** ["3/1000 (<= 0.0081)"]-style rendering for tables. *)
val describe : failures:int -> trials:int -> string
