open Intersect

(* The mega-sweep: one matrix run over protocol x k x fault-plan cells,
   streaming 10^6+ seeded trials per invocation through the engine's
   chunked fold.  Two cell families share the runner:

   - {e clean} cells reuse the {!Conform} registry (statement envelopes,
     promise-range instances) at mega-trial scale, gating the observed
     failure count against the paper's 1/poly(k) bound via the one-sided
     95% Wilson lower bound;
   - {e faulted} cells reuse the {!Soak} semantics (Resilient wrapper
     over an adversarial link) with the soak's rare-event gate
     [failures = 0 || rate <= attempts * 2^-check_bits].

   Affordability is the engine work from this PR: trials stream through
   {!Engine.Pool.fold} into per-chunk accumulators (an int triple plus a
   mergeable {!Obsv.Sketch} — never a per-trial list), protocol
   instances come from a per-domain {!Engine.Instance_cache}, and codec
   buffers ride the {!Bitio.Pool} arenas.  Every accumulator merge is
   exact integer arithmetic or bucket-pointwise sketch addition, so the
   report — and its JSON — is byte-identical at every domain count. *)

type config = {
  seed : int;
  trials_per_cell : int;
  universe_bits : int;
  protocols : string list;
  ks : int list;
  fault_protocols : string list;
  fault_ks : int list;
  plans : (string * Commsim.Faults.link) list;
  budget_attempts : int;
  check_bits : int;
}

(* Default matrix: 16 cells x 65_000 trials = 1_040_000 trials.  The
   clean protocol set covers the paper's headline ladder (Fact 3.5,
   R^(1), Theorem 3.1, Theorem 3.6 r=2); "trivial"/"basic"/"tree-r3"/
   "tree-log-star" stay on the conformance tier where 120 trials
   already saturate their (deterministic or slack) envelopes. *)
let default =
  {
    seed = 2014;
    trials_per_cell = 65_000;
    universe_bits = 20;
    protocols = [ "eq"; "one-round"; "bucket"; "tree-r2" ];
    ks = [ 16; 64; 256 ];
    fault_protocols = [ "trivial"; "bucket" ];
    fault_ks = [ 24 ];
    plans =
      List.filter
        (fun (name, _) -> List.mem name [ "flip-1e-3"; "drop-2e-2" ])
        Soak.plan_catalogue;
    budget_attempts = 8;
    check_bits = 32;
  }

(* Seconds-scale: 3 cells, 1_200 trials — the tier1 smoke matrix. *)
let smoke =
  {
    default with
    trials_per_cell = 400;
    protocols = [ "eq"; "bucket" ];
    ks = [ 16 ];
    fault_protocols = [ "trivial" ];
    fault_ks = [ 16 ];
    plans = List.filter (fun (name, _) -> name = "flip-1e-3") Soak.plan_catalogue;
  }

let total_trials (c : config) =
  let clean = List.length c.protocols * List.length c.ks in
  let faulted = List.length c.fault_protocols * List.length c.fault_ks * List.length c.plans in
  (clean + faulted) * c.trials_per_cell

(* The sketch is the cell's whole bits distribution: count/sum are exact
   ints, quantiles are bucket upper bounds — all merge-order free. *)
type bits_summary = {
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  min_bits : int;
  max_bits : int;
}

type cell = {
  kind : string;  (* "clean" | "faulted" *)
  protocol : string;
  plan : string option;  (* faulted cells only *)
  k : int;
  trials : int;
  failures : int;
  degraded : int;  (* faulted cells only; 0 on clean cells *)
  error_limit : float;
  error_lower95 : float;
  error_upper95 : float;
  error_ok : bool;
  rounds_max : int;
  rounds_limit : int option;  (* clean cells only *)
  rounds_ok : bool;
  bits : bits_summary;
  bits_limit : float option;  (* clean cells only *)
  bits_ok : bool;
  pass : bool;
}

type report = { config : config; cells : cell list; total_trials : int; pass : bool }

let summarize_bits sketch =
  let count = Obsv.Sketch.count sketch in
  {
    mean = (if count = 0 then 0.0 else float_of_int (Obsv.Sketch.sum sketch) /. float_of_int count);
    p50 = Obsv.Sketch.p50 sketch;
    p90 = Obsv.Sketch.p90 sketch;
    p99 = Obsv.Sketch.p99 sketch;
    min_bits = (match Obsv.Sketch.min_value sketch with Some v -> v | None -> 0);
    max_bits = (match Obsv.Sketch.max_value sketch with Some v -> v | None -> 0);
  }

(* Per-chunk accumulator: three ints and a sketch.  [merge] is exact
   (adds, max, bucket-pointwise sketch add) and mutates its left
   argument, per the {!Engine.Pool.fold} contract. *)
type acc = {
  mutable failures : int;
  mutable rounds_max : int;
  mutable degraded : int;
  sketch : Obsv.Sketch.t;
}

let acc_init () = { failures = 0; rounds_max = 0; degraded = 0; sketch = Obsv.Sketch.create () }

let acc_merge a b =
  a.failures <- a.failures + b.failures;
  if b.rounds_max > a.rounds_max then a.rounds_max <- b.rounds_max;
  a.degraded <- a.degraded + b.degraded;
  Obsv.Sketch.merge_into ~into:a.sketch b.sketch;
  a

let wilson ~failures ~trials =
  Stats.Binomial.wilson ~failures ~trials ~z:1.96

(* ---------- clean cells: the Conform registry at mega scale ---------- *)

let clean_cell_acc ?domains (config : config) ~cache (entry : Conform.entry) ~k =
  let stream =
    Engine.Seed_stream.create ~base:config.seed
      ~label:(Printf.sprintf "sweep/%s/k%d" entry.Conform.name k)
  in
  let universe = 1 lsl config.universe_bits in
  let step acc i =
    let o =
      entry.Conform.trial ~cache (Engine.Seed_stream.trial_rng stream (i + 1)) ~universe ~k
    in
    if not o.Conform.t_exact then acc.failures <- acc.failures + 1;
    if o.Conform.t_rounds > acc.rounds_max then acc.rounds_max <- o.Conform.t_rounds;
    Obsv.Sketch.observe acc.sketch o.Conform.t_bits;
    acc
  in
  let acc =
    Engine.Pool.fold ?domains ~trials:config.trials_per_cell ~init:acc_init ~step
      ~merge:acc_merge ()
  in
  let trials = config.trials_per_cell in
  let bits = summarize_bits acc.sketch in
  let error_limit = entry.Conform.error_limit k in
  let error_lower95, error_upper95 = wilson ~failures:acc.failures ~trials in
  let rounds_limit = entry.Conform.rounds_limit k in
  let bits_limit = entry.Conform.bits_limit k in
  let error_ok = error_lower95 <= error_limit in
  let rounds_ok = acc.rounds_max <= rounds_limit in
  let bits_ok = bits.mean <= bits_limit in
  ( {
      kind = "clean";
      protocol = entry.Conform.name;
      plan = None;
      k;
      trials;
      failures = acc.failures;
      degraded = 0;
      error_limit;
      error_lower95;
      error_upper95;
      error_ok;
      rounds_max = acc.rounds_max;
      rounds_limit = Some rounds_limit;
      rounds_ok;
      bits;
      bits_limit = Some bits_limit;
      bits_ok;
      pass = error_ok && rounds_ok && bits_ok;
    },
    acc.sketch )

let clean_cell ?domains (config : config) (entry : Conform.entry) ~k =
  fst (clean_cell_acc ?domains config ~cache:(Engine.Instance_cache.create ()) entry ~k)

(* ---------- faulted cells: Soak semantics at mega scale ---------- *)

let base_of_name name ~k =
  match name with
  | "trivial" -> Resilient.trivial_base
  | "tree" -> Resilient.tree_base ~k ()
  | "bucket" -> Resilient.bucket_base ~k ()
  | _ ->
      invalid_arg
        ("Sweep: unknown fault protocol " ^ name ^ " (known: "
        ^ String.concat ", " Soak.protocol_names
        ^ ")")

let fault_cell_acc ?domains (config : config) ~bases ~proto_name ~k ~plan_name ~link =
  let stream =
    Engine.Seed_stream.create ~base:config.seed
      ~label:(Printf.sprintf "sweep/%s/k%d/%s" proto_name k plan_name)
  in
  let universe = 1 lsl config.universe_bits in
  let overlap = k / 2 in
  let key = proto_name ^ "/k" ^ string_of_int k in
  let step acc i =
    let rng = Engine.Seed_stream.trial_rng stream (i + 1) in
    let base = Engine.Instance_cache.find bases ~key (fun () -> base_of_name proto_name ~k) in
    let pair =
      Setgen.pair_with_overlap
        (Prng.Rng.with_label rng "inputs")
        ~universe ~size_s:k ~size_t:k ~overlap
    in
    let plan =
      Commsim.Faults.uniform ~seed:(Prng.Rng.bits (Prng.Rng.with_label rng "plan") ~width:30) link
    in
    let report =
      Resilient.run base ~plan
        ~budget:{ Resilient.attempts = config.budget_attempts; bits = max_int }
        ~check_bits:config.check_bits
        (Prng.Rng.with_label rng "protocol")
        ~universe pair.Setgen.s pair.Setgen.t
    in
    let truth = Iset.inter pair.Setgen.s pair.Setgen.t in
    if not (Iset.equal report.Resilient.result truth) then acc.failures <- acc.failures + 1;
    if report.Resilient.degraded then acc.degraded <- acc.degraded + 1;
    let rounds = report.Resilient.cost.Commsim.Cost.rounds in
    if rounds > acc.rounds_max then acc.rounds_max <- rounds;
    Obsv.Sketch.observe acc.sketch report.Resilient.cost.Commsim.Cost.total_bits;
    acc
  in
  let acc =
    Engine.Pool.fold ?domains ~trials:config.trials_per_cell ~init:acc_init ~step
      ~merge:acc_merge ()
  in
  let trials = config.trials_per_cell in
  let bits = summarize_bits acc.sketch in
  (* The resilient wrapper's rare-event bound: an accepted fingerprint
     collision, probability <= attempts * 2^-check_bits per trial.  At
     check_bits = 32 a single failure in 10^6 trials is already a gate
     violation — exactly the regime the mega-sweep exists to watch. *)
  let error_limit =
    float_of_int config.budget_attempts *. (2.0 ** float_of_int (-config.check_bits))
  in
  let error_rate = float_of_int acc.failures /. float_of_int trials in
  let error_lower95, error_upper95 = wilson ~failures:acc.failures ~trials in
  let error_ok = acc.failures = 0 || error_rate <= error_limit in
  ( {
      kind = "faulted";
      protocol = proto_name;
      plan = Some plan_name;
      k;
      trials;
      failures = acc.failures;
      degraded = acc.degraded;
      error_limit;
      error_lower95;
      error_upper95;
      error_ok;
      rounds_max = acc.rounds_max;
      rounds_limit = None;
      rounds_ok = true;
      bits;
      bits_limit = None;
      bits_ok = true;
      pass = error_ok;
    },
    acc.sketch )

(* ---------- the matrix ---------- *)

let run ?domains ?sink (config : config) =
  if config.trials_per_cell < 1 then invalid_arg "Sweep.run: trials_per_cell";
  if config.protocols = [] && config.fault_protocols = [] then
    invalid_arg "Sweep.run: empty matrix";
  let record cell sketch =
    (* Telemetry closes each cell sequentially, in matrix order, after the
       parallel fold — the JSONL stream stays byte-identical across domain
       counts. *)
    (match sink with
    | None -> ()
    | Some sink ->
        Telemetry.record_sweep_cell sink ~trials:cell.trials
          ~exact:(cell.trials - cell.failures) ~degraded:cell.degraded ~sketch);
    cell
  in
  let cache = Engine.Instance_cache.create () in
  let clean =
    List.concat_map
      (fun name ->
        let entry = Conform.entry_of_name name in
        List.map
          (fun k ->
            let cell, sketch = clean_cell_acc ?domains config ~cache entry ~k in
            record cell sketch)
          config.ks)
      config.protocols
  in
  let bases = Engine.Instance_cache.create () in
  let faulted =
    List.concat_map
      (fun proto_name ->
        List.concat_map
          (fun k ->
            List.map
              (fun (plan_name, link) ->
                let cell, sketch =
                  fault_cell_acc ?domains config ~bases ~proto_name ~k ~plan_name ~link
                in
                record cell sketch)
              config.plans)
          config.fault_ks)
      config.fault_protocols
  in
  let cells = clean @ faulted in
  {
    config;
    cells;
    total_trials = List.fold_left (fun acc (c : cell) -> acc + c.trials) 0 cells;
    pass = List.for_all (fun (c : cell) -> c.pass) cells;
  }

(* ---------- export ---------- *)

let json_of_cell (c : cell) =
  Stats.Json.Obj
    [
      ("kind", Stats.Json.Str c.kind);
      ("protocol", Stats.Json.Str c.protocol);
      ("plan", match c.plan with Some p -> Stats.Json.Str p | None -> Stats.Json.Null);
      ("k", Stats.Json.Int c.k);
      ("trials", Stats.Json.Int c.trials);
      ("failures", Stats.Json.Int c.failures);
      ("degraded", Stats.Json.Int c.degraded);
      ("error_limit", Stats.Json.Float c.error_limit);
      ("error_lower95", Stats.Json.Float c.error_lower95);
      ("error_upper95", Stats.Json.Float c.error_upper95);
      ("error_ok", Stats.Json.Bool c.error_ok);
      ("rounds_max", Stats.Json.Int c.rounds_max);
      ( "rounds_limit",
        match c.rounds_limit with Some r -> Stats.Json.Int r | None -> Stats.Json.Null );
      ("rounds_ok", Stats.Json.Bool c.rounds_ok);
      ( "bits",
        Stats.Json.Obj
          [
            ("mean", Stats.Json.Float c.bits.mean);
            ("p50", Stats.Json.Int c.bits.p50);
            ("p90", Stats.Json.Int c.bits.p90);
            ("p99", Stats.Json.Int c.bits.p99);
            ("min", Stats.Json.Int c.bits.min_bits);
            ("max", Stats.Json.Int c.bits.max_bits);
          ] );
      ( "bits_limit",
        match c.bits_limit with Some b -> Stats.Json.Float b | None -> Stats.Json.Null );
      ("bits_ok", Stats.Json.Bool c.bits_ok);
      ("pass", Stats.Json.Bool c.pass);
    ]

let to_json ?reproduce (report : report) =
  let c = report.config in
  Stats.Json.Obj
    (List.concat
       [
         [ ("bench", Stats.Json.Str "sweep") ];
         (match reproduce with Some cmd -> [ ("reproduce", Stats.Json.Str cmd) ] | None -> []);
         [
           ( "config",
             Stats.Json.Obj
               [
                 ("seed", Stats.Json.Int c.seed);
                 ("trials_per_cell", Stats.Json.Int c.trials_per_cell);
                 ("universe_bits", Stats.Json.Int c.universe_bits);
                 ("protocols", Stats.Json.List (List.map (fun p -> Stats.Json.Str p) c.protocols));
                 ("ks", Stats.Json.List (List.map (fun k -> Stats.Json.Int k) c.ks));
                 ( "fault_protocols",
                   Stats.Json.List (List.map (fun p -> Stats.Json.Str p) c.fault_protocols) );
                 ("fault_ks", Stats.Json.List (List.map (fun k -> Stats.Json.Int k) c.fault_ks));
                 ( "plans",
                   Stats.Json.Obj
                     (List.map
                        (fun (name, (l : Commsim.Faults.link)) ->
                          ( name,
                            Stats.Json.Obj
                              [
                                ("flip", Stats.Json.Float l.Commsim.Faults.flip);
                                ("trunc", Stats.Json.Float l.Commsim.Faults.trunc);
                                ("dup", Stats.Json.Float l.Commsim.Faults.dup);
                                ("drop", Stats.Json.Float l.Commsim.Faults.drop);
                              ] ))
                        c.plans) );
                 ("budget_attempts", Stats.Json.Int c.budget_attempts);
                 ("check_bits", Stats.Json.Int c.check_bits);
               ] );
           ("cells", Stats.Json.List (List.map json_of_cell report.cells));
           ("total_trials", Stats.Json.Int report.total_trials);
           ("pass", Stats.Json.Bool report.pass);
         ];
       ])

let summary (report : report) =
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf "Mega-sweep (%d cells, %d trials)" (List.length report.cells)
           report.total_trials)
      ~columns:
        [ "kind"; "protocol"; "plan"; "k"; "fail"; "err lo95"; "bound"; "rounds"; "mean bits"; "pass" ]
  in
  List.iter
    (fun (c : cell) ->
      Stats.Table.add_row table
        [
          c.kind;
          c.protocol;
          (match c.plan with Some p -> p | None -> "-");
          string_of_int c.k;
          Printf.sprintf "%d/%d" c.failures c.trials;
          Printf.sprintf "%.2g" c.error_lower95;
          Printf.sprintf "%.2g" c.error_limit;
          string_of_int c.rounds_max;
          Printf.sprintf "%.0f" c.bits.mean;
          (if c.pass then "yes" else "NO");
        ])
    report.cells;
  Stats.Table.render table
