(** Seeded chaos campaigns over the session robustness layer.

    Where {!Soak} stresses the {e wrapper} (one [Resilient.run] per trial),
    a chaos campaign stresses the {e session}: every trial drives one
    {!Session.Machine} reconciliation through a fault scenario — corruption
    storms, stall bursts of dropped messages, flapping links, mid-session
    crashes — and the harness checks the session-layer contract rather than
    just the answer:

    - every session terminates with a structured outcome, and the
      completed/degraded/failed-safe taxonomy partitions the trials;
    - no completed or degraded result is ever a wrong intersection;
    - in interrupting campaigns the session is crashed at a seeded
      checkpoint boundary, its snapshot serialized, reparsed and resumed —
      and the resumed run must replay the uninterrupted one exactly
      (result, attempts, failures and cost ledger; only [resumes]
      differs).

    Campaigns run cell-by-cell (protocol x campaign) through
    {!Engine.Pool}, with every trial's inputs, fault plan and session seed
    derived from an {!Engine.Seed_stream}, so reports are byte-identical
    across domain counts and run-to-run. *)

(** One fault scenario: steady per-link damage, whether to exercise a
    mid-session crash/resume, and an optional per-campaign deadline
    (tight deadlines drive sessions into the failed-safe path). *)
type campaign = {
  link : Commsim.Faults.link;
  interrupt : bool;
  deadline_override : int option;
}

type config = {
  seed : int;
  trials : int;  (** per cell *)
  k : int;
  universe_bits : int;
  overlap : int;
  protocols : string list;  (** session base protocols *)
  campaigns : (string * campaign) list;
  deadline_bits : int;  (** session event-time budget (unless overridden) *)
  rung_attempts : int;
  check_bits0 : int;
  backoff_base : int;
  backoff_cap : int;
}

(** The named scenarios: [clean], [corruption-storm], [stall-burst],
    [flap], [crash-resume], [stall-crash], [deadline-squeeze]. *)
val campaign_catalogue : (string * campaign) list

(** Full matrix: 200 trials over three protocols and every campaign. *)
val default : config

(** A tier-1-sized matrix: 12 trials, two protocols, four campaigns. *)
val smoke : config

type cell = {
  protocol : string;
  campaign : string;
  trials : int;
  completed : int;  (** a guarded attempt's check accepted *)
  degraded : int;  (** exact result via the deterministic fallback *)
  failed_safe : int;  (** deadline exhausted; partial + diagnosis only *)
  resumed : int;  (** trials where a crash/restore cycle was exercised *)
  resumed_identical : int;  (** ... that replayed the uninterrupted run *)
  wrong : int;  (** exact results that were not [S ∩ T] (must be 0) *)
  attempts_total : int;
  rejected : int;  (** attempt failures by kind, summed over trials *)
  stalled : int;
  crashed : int;
  deadline : int;
  mean_spent_bits : float;
  mean_backoff_ticks : float;
  wasted_bits_total : int;
  mean_wasted_bits : float;
  recovered : int;  (** sessions that completed after >= 1 failure *)
  mean_recovery_ticks : float;
      (** mean event time (wasted bits + backoff) burned before the
          winning attempt, over recovered sessions *)
}

type report = { config : config; cells : cell list }

(** The campaign matrix in execution order
    ([(protocol, campaign_name, campaign)]), for callers that drive cells
    one at a time (the CLI's [top] view). *)
val cells_of : config -> (string * string * campaign) list

(** [run_cell ?domains ?sink config camp ~protocol ~campaign_name] runs one
    cell.  With a [sink], every trial carries a flight recorder, session
    reports are folded into the fleet telemetry in deterministic trial
    order, up to two post-mortems per cell are harvested from
    non-[Completed] sessions, and the cell ends with one snapshot. *)
val run_cell :
  ?domains:int ->
  ?sink:Telemetry.sink ->
  config ->
  campaign ->
  protocol:string ->
  campaign_name:string ->
  cell

(** [run ?domains ?sink config] executes the full campaign matrix
    (telemetry as in {!run_cell} when [sink] is given). *)
val run : ?domains:int -> ?sink:Telemetry.sink -> config -> report

(** Violations of the chaos invariant (empty on a healthy report): outcome
    taxonomy partitions the trials, zero wrong results, every resume
    byte-identical.  The CLI and the chaos bench fail on any entry. *)
val invariant_violations : report -> string list

(** Machine-readable report; the top-level marker field is
    ["bench": "chaos"] (checked by [json_check --bench-chaos]). *)
val to_json : ?reproduce:string -> report -> Stats.Json.t

(** Human-readable per-cell table. *)
val summary : report -> string
