(** Fleet-telemetry plumbing for the workload harnesses.

    A {!sink} accumulates what a running campaign (chaos, soak, the CLI's
    [health]/[top]) learns about its session fleet: per-outcome counters
    and bit-spend {!Obsv.Sketch}es in a dedicated registry (under the
    {!Obsv.Health} metric-name contract), an event-time
    {!Obsv.Snapshot} stream, and the post-mortems harvested from
    per-session flight recorders.  Sinks are filled sequentially in
    deterministic trial order, so {!jsonl} is byte-identical run-to-run
    and across domain counts.

    The overhead bench ([run_overhead]) measures the hot-path cost of
    the telemetry layer itself — sketch + recorder + fleet counters on
    vs off over identical seeded sessions — and is the source of the
    regression-gated [BENCH_telemetry.json]. *)

type sink

val create_sink : unit -> sink

(** Sessions recorded so far — the stream's event-time axis. *)
val sessions : sink -> int

(** [record_report sink ~deadline_bits r ~wrong] folds one session report
    into the fleet registry: outcome/failure counters, spend sketches,
    and the deadline gauge (kept at the maximum across sessions).
    Advances event time by one. *)
val record_report : sink -> deadline_bits:int -> Session.Machine.report -> wrong:bool -> unit

(** Attach a flight-recorder dump at the current event time. *)
val add_postmortem : sink -> Stats.Json.t -> unit

(** Snapshot the fleet registry at the current event time and append it
    to the stream. *)
val snapshot : sink -> Obsv.Snapshot.t

val snapshots : sink -> Obsv.Snapshot.t list
val last_snapshot : sink -> Obsv.Snapshot.t option
val postmortems : sink -> (int * Stats.Json.t) list

(** The JSONL telemetry stream: snapshot lines, each followed by a
    derived-rates line, merged with post-mortem lines on the event-time
    axis. *)
val jsonl : sink -> string list

(** Cell-level recording for the {!Soak} harness (trials, not sessions):
    bumps [soak/*] counters, sketches the per-trial bit costs in trial
    order, advances event time by [trials] and closes the cell with a
    snapshot. *)
val record_soak_cell : sink -> trials:int -> exact:int -> degraded:int -> bits:int list -> unit

(** Cell-level recording for the {!Sweep} mega-runner: bumps [sweep/*]
    counters, folds the cell's pre-accumulated bit-cost sketch into
    [sweep/bits] ({!Obsv.Metrics.merge_sketch}), advances event time by
    [trials] and closes the cell with a snapshot.  Sketch-based because a
    [10^6]-trial cell never materialises a per-trial bits list. *)
val record_sweep_cell :
  sink -> trials:int -> exact:int -> degraded:int -> sketch:Obsv.Sketch.t -> unit

(** {!Obsv.Health.evaluate} over the latest snapshot ([None] before the
    first snapshot). *)
val health : ?slos:Obsv.Health.slos -> sink -> Obsv.Health.report option

(** {2 Overhead bench} *)

type overhead_config = { seed : int; k : int; universe_bits : int; sessions : int }

(** k=1024, 24 sessions — the configuration [BENCH_telemetry.json] gates. *)
val overhead_default : overhead_config

(** k=256, 8 sessions — seconds-scale for tier1. *)
val overhead_smoke : overhead_config

type pass = {
  ns_per_session : float;
  spent_bits : int;  (** summed over sessions — deterministic *)
  completed : int;  (** sessions that completed — deterministic *)
}

type overhead_report = {
  config : overhead_config;
  off : pass;  (** telemetry disabled (ambient defaults) *)
  on_ : pass;  (** fleet registry + per-session recorder + sketches *)
  ratio : float;  (** [on_.ns_per_session / off.ns_per_session] *)
  deterministic_match : bool;
      (** telemetry must not perturb the sessions: spend and outcomes
          agree between the passes *)
}

(** Run both passes over identical seeded clean-link sessions (both
    verify results against the precomputed truth, so telemetry is the
    only asymmetry). *)
val run_overhead : overhead_config -> overhead_report

(** Marker field ["bench": "telemetry"] (checked by
    [json_check --bench-telemetry]). *)
val overhead_json : ?reproduce:string -> overhead_report -> Stats.Json.t

val overhead_summary : overhead_report -> string
