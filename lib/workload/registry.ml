(* Experiment registry: NNN-slug.md frontmatter parsing and the coherence
   checks over entries, BENCH artifacts, and the documentation indexes.
   Everything is pure over an env of read callbacks and deterministically
   ordered, matching the repo's two-runs-are-byte-identical convention. *)

type status = Draft | Running | Complete | Superseded
type regen = Gate | Diff | No_regen

type entry = {
  id : int;
  slug : string;
  file : string;
  title : string;
  status : status;
  anchor : string;
  roadmap : string;
  index_tag : string option;
  hypothesis : string;
  reproduce : string;
  smoke : string option;
  regen : regen;
  artifact : string option;
  artifact_keys : string list;
  json_check : string option;
  body : string;
}

type t = { entries : entry list }
type violation = { file : string option; what : string }

let status_name = function
  | Draft -> "Draft"
  | Running -> "Running"
  | Complete -> "Complete"
  | Superseded -> "Superseded"

let status_of_string = function
  | "Draft" -> Ok Draft
  | "Running" -> Ok Running
  | "Complete" -> Ok Complete
  | "Superseded" -> Ok Superseded
  | s -> Error (Printf.sprintf "unknown status %S (Draft | Running | Complete | Superseded)" s)

let regen_name = function Gate -> "gate" | Diff -> "diff" | No_regen -> "none"

let regen_of_string = function
  | "gate" -> Ok Gate
  | "diff" -> Ok Diff
  | "none" -> Ok No_regen
  | s -> Error (Printf.sprintf "unknown regen mode %S (gate | diff | none)" s)

(* ---------- filename and frontmatter parsing ---------- *)

let basename file =
  match String.rindex_opt file '/' with
  | None -> file
  | Some i -> String.sub file (i + 1) (String.length file - i - 1)

let is_slug_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

(* "NNN-slug.md" -> slug, or an explanation of the naming convention. *)
let slug_of_basename base =
  let bad () =
    Error
      (Printf.sprintf "file name %S is not NNN-slug.md (three digits, dash, lowercase slug)" base)
  in
  if String.length base < 7 || not (String.ends_with ~suffix:".md" base) then bad ()
  else
    let digits = String.sub base 0 3 in
    if not (String.for_all (fun c -> c >= '0' && c <= '9') digits) then bad ()
    else if base.[3] <> '-' then bad ()
    else
      let slug = String.sub base 4 (String.length base - 7) in
      if slug = "" || not (String.for_all is_slug_char slug) then bad () else Ok slug

let trim = String.trim

let split_key_value line =
  match String.index_opt line ':' with
  | None -> Error (Printf.sprintf "frontmatter line %S is not \"key: value\"" line)
  | Some i ->
      let key = trim (String.sub line 0 i) in
      let value = trim (String.sub line (i + 1) (String.length line - i - 1)) in
      if key = "" then Error (Printf.sprintf "frontmatter line %S has an empty key" line)
      else Ok (key, value)

let known_keys =
  [
    "id"; "title"; "status"; "anchor"; "roadmap"; "index"; "hypothesis"; "reproduce"; "smoke";
    "regen"; "artifact"; "artifact_keys"; "json_check";
  ]

let parse ~file contents =
  let ( let* ) = Result.bind in
  let* slug = slug_of_basename (basename file) in
  match String.split_on_char '\n' contents with
  | "---" :: rest -> (
      let rec split_front acc = function
        | [] -> Error "unterminated frontmatter (no closing \"---\")"
        | "---" :: body -> Ok (List.rev acc, body)
        | line :: tl -> split_front (line :: acc) tl
      in
      let* front, body_lines = split_front [] rest in
      let* fields =
        List.fold_left
          (fun acc line ->
            let* acc = acc in
            if trim line = "" then Ok acc
            else
              let* key, value = split_key_value line in
              if not (List.mem key known_keys) then
                Error
                  (Printf.sprintf "unknown frontmatter key %S (known: %s)" key
                     (String.concat ", " known_keys))
              else if List.mem_assoc key acc then
                Error (Printf.sprintf "duplicate frontmatter key %S" key)
              else Ok ((key, value) :: acc))
          (Ok []) front
      in
      let find key = List.assoc_opt key fields in
      let required key =
        match find key with
        | None -> Error (Printf.sprintf "missing required frontmatter key %S" key)
        | Some "" -> Error (Printf.sprintf "frontmatter key %S must not be empty" key)
        | Some v -> Ok v
      in
      let optional key = match find key with None | Some "" -> None | Some v -> Some v in
      let* id_str = required "id" in
      let* id =
        match int_of_string_opt id_str with
        | Some id when id >= 1 -> Ok id
        | _ -> Error (Printf.sprintf "id %S is not a positive integer" id_str)
      in
      let* title = required "title" in
      let* status = Result.bind (required "status") status_of_string in
      let* anchor = required "anchor" in
      let* roadmap = required "roadmap" in
      let* hypothesis = required "hypothesis" in
      let* reproduce = required "reproduce" in
      let* regen =
        match find "regen" with None | Some "" -> Ok Gate | Some v -> regen_of_string v
      in
      let artifact = optional "artifact" in
      let artifact_keys =
        match optional "artifact_keys" with
        | None -> []
        | Some keys -> String.split_on_char ',' keys |> List.map trim |> List.filter (( <> ) "")
      in
      Ok
        {
          id;
          slug;
          file;
          title;
          status;
          anchor;
          roadmap;
          index_tag = optional "index";
          hypothesis;
          reproduce;
          smoke = optional "smoke";
          regen;
          artifact;
          artifact_keys;
          json_check = optional "json_check";
          body = String.concat "\n" body_lines;
        })
  | _ -> Error "missing frontmatter (the file must open with a \"---\" line)"

let front_matter_of e =
  let b = Buffer.create 256 in
  let line key value = Buffer.add_string b (Printf.sprintf "%s: %s\n" key value) in
  let opt key = function None -> () | Some v -> line key v in
  Buffer.add_string b "---\n";
  line "id" (string_of_int e.id);
  line "title" e.title;
  line "status" (status_name e.status);
  line "anchor" e.anchor;
  line "roadmap" e.roadmap;
  opt "index" e.index_tag;
  line "hypothesis" e.hypothesis;
  line "reproduce" e.reproduce;
  opt "smoke" e.smoke;
  line "regen" (regen_name e.regen);
  opt "artifact" e.artifact;
  (match e.artifact_keys with
  | [] -> ()
  | keys -> line "artifact_keys" (String.concat ", " keys));
  opt "json_check" e.json_check;
  Buffer.add_string b "---\n";
  Buffer.contents b

(* ---------- loading ---------- *)

let of_sources sources =
  let entries, violations =
    List.fold_left
      (fun (entries, violations) (file, contents) ->
        match parse ~file contents with
        | Ok e -> (e :: entries, violations)
        | Error what -> (entries, { file = Some file; what } :: violations))
      ([], []) sources
  in
  let entries =
    List.sort (fun a b -> if a.id <> b.id then compare a.id b.id else compare a.file b.file) entries
  in
  ({ entries }, List.rev violations)

let is_entry_file base =
  String.ends_with ~suffix:".md" base
  && (not (String.starts_with ~prefix:"_" base))
  && base <> "README.md"

let load ~root =
  let dir = Filename.concat root "experiments" in
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    ({ entries = [] }, [ { file = None; what = Printf.sprintf "no experiments/ directory under %s" root } ])
  else
    let files = Sys.readdir dir |> Array.to_list |> List.filter is_entry_file |> List.sort compare in
    let sources =
      List.map
        (fun base ->
          let contents = In_channel.with_open_text (Filename.concat dir base) In_channel.input_all in
          ("experiments/" ^ base, contents))
        files
    in
    of_sources sources

(* ---------- verification ---------- *)

type env = { read_file : string -> string option; list_root : unit -> string list }

let repo_env ~root =
  {
    read_file =
      (fun rel ->
        let path = Filename.concat root rel in
        if Sys.file_exists path && not (Sys.is_directory path) then
          Some (In_channel.with_open_text path In_channel.input_all)
        else None);
    list_root =
      (fun () ->
        if Sys.file_exists root && Sys.is_directory root then
          Sys.readdir root |> Array.to_list |> List.sort compare
        else []);
  }

let tokens_of command =
  String.split_on_char ' ' command |> List.map trim |> List.filter (( <> ) "")

(* The executable targets a command may name, mapped to the source file
   whose existence proves the target is still real. *)
let exe_source token =
  let token =
    match String.index_opt token '/' with
    | Some _ when String.starts_with ~prefix:"./_build/default/" token ->
        String.sub token 17 (String.length token - 17)
    | _ -> token
  in
  if not (String.ends_with ~suffix:".exe" token) then None
  else
    match String.split_on_char '/' token with
    | [ dir; exe ] when List.mem dir [ "bench"; "bin"; "examples" ] ->
        Some (token, Filename.concat dir (Filename.chop_suffix exe ".exe" ^ ".ml"))
    | _ -> None

let check_command ~env ~cli_subcommands ~what command =
  let tokens = tokens_of command in
  match List.filter_map exe_source tokens with
  | [] -> [ Printf.sprintf "%s command %S names no bench/bin/examples executable target" what command ]
  | targets ->
      let missing =
        List.filter_map
          (fun (token, source) ->
            if env.read_file source = None then
              Some (Printf.sprintf "%s command names %s but %s does not exist" what token source)
            else None)
          targets
      in
      let stale_subcommand =
        if List.exists (fun (token, _) -> Filename.basename token = "intersect_cli.exe") targets
        then
          (* The first token after the "--" separator is the subcommand. *)
          let rec after_dashes = function
            | [] -> None
            | "--" :: next :: _ -> Some next
            | _ :: tl -> after_dashes tl
          in
          match after_dashes tokens with
          | None -> [ Printf.sprintf "%s command drives intersect_cli without a subcommand" what ]
          | Some sub when not (List.mem sub cli_subcommands) ->
              [
                Printf.sprintf "%s command uses stale intersect_cli subcommand %S (known: %s)" what
                  sub
                  (String.concat ", " cli_subcommands);
              ]
          | Some _ -> []
        else []
      in
      missing @ stale_subcommand

let check_artifact ~env e =
  match e.artifact with
  | None ->
      if e.artifact_keys <> [] || e.json_check <> None then
        [ "artifact_keys/json_check declared without an artifact" ]
      else []
  | Some artifact -> (
      match env.read_file artifact with
      | None -> [ Printf.sprintf "artifact %s does not exist" artifact ]
      | Some contents -> (
          match Stats.Json.of_string contents with
          | Error msg -> [ Printf.sprintf "artifact %s is not valid JSON: %s" artifact msg ]
          | Ok doc ->
              let missing_keys =
                List.filter_map
                  (fun key ->
                    if Stats.Json.member key doc = None then
                      Some (Printf.sprintf "artifact %s lacks declared key %S" artifact key)
                    else None)
                  e.artifact_keys
              in
              let schema =
                match e.json_check with
                | None -> []
                | Some mode when not (List.mem mode Schemas.bench_modes) ->
                    [
                      Printf.sprintf "json_check mode %S is not a bench schema (known: %s)" mode
                        (String.concat ", " Schemas.bench_modes);
                    ]
                | Some mode -> (
                    match Schemas.check ~mode contents with
                    | Ok () -> []
                    | Error msg ->
                        [ Printf.sprintf "artifact %s fails json_check --%s: %s" artifact mode msg ])
              in
              missing_keys @ schema))

(* Extract experiments/*.md references from an index document.  A
   reference is a maximal run of path characters starting at
   "experiments/"; only .md paths count. *)
let index_references contents =
  let is_path_char c = is_slug_char c || c = '/' || c = '.' || c = '_' || (c >= 'A' && c <= 'Z') in
  let n = String.length contents in
  let needle = "experiments/" in
  let rec scan acc i =
    if i >= n then List.rev acc
    else if i + String.length needle <= n && String.sub contents i (String.length needle) = needle
    then begin
      let j = ref i in
      while !j < n && is_path_char contents.[!j] do
        incr j
      done;
      let path = String.sub contents i (!j - i) in
      let acc = if String.ends_with ~suffix:".md" path then path :: acc else acc in
      scan acc !j
    end
    else scan acc (i + 1)
  in
  scan [] 0 |> List.sort_uniq compare

let verify ~env ~cli_subcommands { entries } =
  let entry_violation (e : entry) what = { file = Some e.file; what } in
  let global what = { file = None; what } in
  (* Dense, unique ids. *)
  let dense =
    List.mapi
      (fun i e ->
        if e.id <> i + 1 then
          Some
            (entry_violation e
               (Printf.sprintf "id %d breaks the dense 1..%d numbering (expected %d)" e.id
                  (List.length entries) (i + 1)))
        else None)
      entries
    |> List.filter_map Fun.id
  in
  (* Per-entry checks, in id order. *)
  let per_entry =
    List.concat_map
      (fun e ->
        let expected = Printf.sprintf "experiments/%03d-%s.md" e.id e.slug in
        let naming =
          if e.file <> expected then
            [ Printf.sprintf "file name does not match id %d (expected %s)" e.id expected ]
          else []
        in
        let commands =
          if e.status = Superseded then []
          else
            check_command ~env ~cli_subcommands ~what:"reproduce" e.reproduce
            @
            match e.smoke with
            | None -> []
            | Some smoke -> check_command ~env ~cli_subcommands ~what:"smoke" smoke
        in
        let artifact = if e.status = Superseded then [] else check_artifact ~env e in
        let regen =
          match e.status, e.smoke, e.regen with
          | Complete, None, (Gate | Diff) ->
              [
                "Complete entry has no smoke command for the regen gate (add smoke: ... or opt \
                 out with regen: none)";
              ]
          | _ -> []
        in
        List.map (entry_violation e) (naming @ commands @ artifact @ regen))
      entries
  in
  (* Every committed BENCH artifact is claimed by a live entry. *)
  let claims =
    env.list_root ()
    |> List.filter (fun f -> String.starts_with ~prefix:"BENCH_" f && String.ends_with ~suffix:".json" f)
    |> List.filter_map (fun bench ->
           if
             List.exists (fun e -> e.status <> Superseded && e.artifact = Some bench) entries
           then None
           else Some (global (Printf.sprintf "%s is claimed by no live experiment entry" bench)))
  in
  (* EXPERIMENTS.md <-> experiments/ <-> README.md cross-links. *)
  let index_links =
    match env.read_file "EXPERIMENTS.md" with
    | None -> [ global "EXPERIMENTS.md does not exist" ]
    | Some index ->
        let referenced = index_references index in
        let files = List.map (fun (e : entry) -> e.file) entries in
        let unlisted =
          List.filter_map
            (fun (e : entry) ->
              if List.mem e.file referenced then None
              else Some (entry_violation e "not referenced by the EXPERIMENTS.md index"))
            entries
        in
        let dangling =
          List.filter_map
            (fun path ->
              if
                List.mem path files
                || path = "experiments/README.md"
                || String.starts_with ~prefix:"experiments/_" path
              then None
              else Some (global (Printf.sprintf "EXPERIMENTS.md references missing %s" path)))
            referenced
        in
        unlisted @ dangling
  in
  let readme_links =
    match env.read_file "README.md" with
    | None -> [ global "README.md does not exist" ]
    | Some readme ->
        if index_references readme <> [] ||
           (let rec contains i =
              i + 12 <= String.length readme
              && (String.sub readme i 12 = "experiments/" || contains (i + 1))
            in
            contains 0)
        then []
        else [ global "README.md never points into experiments/" ]
  in
  dense @ per_entry @ claims @ index_links @ readme_links

let regen_plan { entries } =
  List.fold_left
    (fun plan e ->
      match (e.status, e.smoke, e.regen) with
      | Complete, Some smoke, ((Gate | Diff) as mode) -> (
          match List.assoc_opt smoke (List.map (fun (c, m, ids) -> (c, (m, ids))) plan) with
          | Some _ ->
              List.map
                (fun (c, m, ids) -> if c = smoke then (c, m, ids @ [ e.id ]) else (c, m, ids))
                plan
          | None -> plan @ [ (smoke, mode, [ e.id ]) ])
      | _ -> plan)
    [] entries

(* ---------- export ---------- *)

let entry_json e =
  let module J = Stats.Json in
  let opt = function None -> J.Null | Some s -> J.Str s in
  J.Obj
    [
      ("id", J.Int e.id);
      ("file", J.Str e.file);
      ("slug", J.Str e.slug);
      ("title", J.Str e.title);
      ("status", J.Str (status_name e.status));
      ("anchor", J.Str e.anchor);
      ("roadmap", J.Str e.roadmap);
      ("index", opt e.index_tag);
      ("hypothesis", J.Str e.hypothesis);
      ("reproduce", J.Str e.reproduce);
      ("smoke", opt e.smoke);
      ("regen", J.Str (regen_name e.regen));
      ("artifact", opt e.artifact);
      ("artifact_keys", J.List (List.map (fun k -> J.Str k) e.artifact_keys));
      ("json_check", opt e.json_check);
    ]

let to_json { entries } =
  Stats.Json.Obj
    [
      ("registry", Stats.Json.Str "experiments");
      ("count", Stats.Json.Int (List.length entries));
      ("entries", Stats.Json.List (List.map entry_json entries));
    ]

let export t = Stats.Json.to_string_pretty (to_json t) ^ "\n"

let census { entries } =
  let count s = List.length (List.filter (fun e -> e.status = s) entries) in
  (count Draft, count Running, count Complete, count Superseded)

let table { entries } =
  let t =
    Stats.Table.create ~title:"experiments"
      ~columns:[ "id"; "status"; "anchor"; "artifact"; "title" ]
  in
  List.iter
    (fun e ->
      Stats.Table.add_row t
        [
          Printf.sprintf "%03d" e.id;
          status_name e.status;
          e.anchor;
          Option.value e.artifact ~default:"-";
          e.title;
        ])
    entries;
  t
