open Intersect

type config = {
  seed : int;
  trials : int;
  ks : int list;
  universe_bits : int;
  protocols : string list;
}

type cell = {
  protocol : string;
  statement : string;
  k : int;
  trials : int;
  failures : int;
  error_limit : float;
  error_lower95 : float;
  error_ok : bool;
  rounds_max : int;
  rounds_limit : int;
  rounds_ok : bool;
  bits : Stats.Summary.t;
  bits_limit : float;
  bits_ok : bool;
  pass : bool;
}

type report = { config : config; cells : cell list; pass : bool }

(* One seeded execution: cost, worst-case rounds, and exactness. *)
type trial_outcome = { t_bits : int; t_rounds : int; t_exact : bool }

type entry = {
  name : string;
  statement : string;
  trial :
    cache:Protocol.t Engine.Instance_cache.t -> Prng.Rng.t -> universe:int -> k:int -> trial_outcome;
  rounds_limit : int -> int;
  bits_limit : int -> float;
  error_limit : int -> float;
}

let isqrt_ceil k = int_of_float (Float.ceil (sqrt (float_of_int k)))

(* A random instance with a uniformly random planted overlap: conformance
   must hold across the whole promise range, not just the half-overlap
   sweet spot the benches use. *)
let random_pair rng ~universe ~k =
  let overlap = Prng.Rng.int (Prng.Rng.with_label rng "overlap") (k + 1) in
  Setgen.pair_with_overlap (Prng.Rng.with_label rng "inputs") ~universe ~size_s:k ~size_t:k
    ~overlap

(* The protocol value is deterministic in (name, k), so it is built once
   per domain via the engine's instance cache instead of once per trial —
   transcripts are unchanged (the cached value IS the built value), only
   the per-trial construction churn goes away. *)
let protocol_trial name make ~cache rng ~universe ~k =
  let pair = random_pair rng ~universe ~k in
  let protocol =
    Engine.Instance_cache.find cache ~key:(name ^ "/k" ^ string_of_int k) (fun () -> make ~k)
  in
  let outcome =
    protocol.Protocol.run (Prng.Rng.with_label rng "protocol") ~universe pair.Setgen.s
      pair.Setgen.t
  in
  {
    t_bits = outcome.Protocol.cost.Commsim.Cost.total_bits;
    t_rounds = outcome.Protocol.cost.Commsim.Cost.rounds;
    t_exact = Protocol.exact outcome ~s:pair.Setgen.s ~t:pair.Setgen.t;
  }

(* Fact 3.5 is a primitive, not a {!Protocol.t}: run the two-message
   equality test over the simulator directly, half the trials on equal
   sets, half on unequal ones, with a [k]-bit tag so the stated error is
   the [2^-k]-style bound. *)
let eq_trial ~cache:_ rng ~universe ~k =
  let equal_case = Prng.Rng.bool (Prng.Rng.with_label rng "case") in
  let overlap = if equal_case then k else Prng.Rng.int (Prng.Rng.with_label rng "overlap") k in
  let pair =
    Setgen.pair_with_overlap (Prng.Rng.with_label rng "inputs") ~universe ~size_s:k ~size_t:k
      ~overlap
  in
  let (va, vb), cost =
    Commsim.Two_party.run
      ~alice:(fun chan ->
        Obsv.Trace.span Obsv.Phases.eq_tags (fun () ->
            Equality.run_alice_set (Prng.Rng.with_label rng "eq") ~bits:k chan pair.Setgen.s))
      ~bob:(fun chan ->
        Obsv.Trace.span Obsv.Phases.eq_tags (fun () ->
            Equality.run_bob_set (Prng.Rng.with_label rng "eq") ~bits:k chan pair.Setgen.t))
  in
  let truth = Iset.equal pair.Setgen.s pair.Setgen.t in
  {
    t_bits = cost.Commsim.Cost.total_bits;
    t_rounds = cost.Commsim.Cost.rounds;
    t_exact = va = truth && vb = truth;
  }

let flog k = float_of_int (Iterated_log.log2_ceil (max 2 k))

(* The constant factors below are empirical envelopes: measured on the
   seed grid (k in {16, 64, 256}) and given ~2x headroom, so they catch a
   changed growth rate or a blown-up constant without flaking on seed
   noise.  The round budgets are the paper's own. *)
let registry : entry list =
  [
    {
      name = "trivial";
      statement = "deterministic exchange: 2 rounds, O(k log(n/k)) bits, zero error";
      trial = protocol_trial "trivial" (fun ~k:_ -> Trivial.protocol);
      rounds_limit = (fun _ -> 2);
      bits_limit = (fun k -> 4.0 *. float_of_int k *. (flog k +. 24.0));
      error_limit = (fun _ -> 0.0);
    };
    {
      name = "eq";
      statement = "Fact 3.5: equality in 2 rounds, k+1 bits, error O(2^-k)";
      trial = eq_trial;
      rounds_limit = (fun _ -> 2);
      bits_limit = (fun k -> 2.0 *. float_of_int (k + 8));
      error_limit = (fun k -> Float.pow 2.0 (-.float_of_int k) *. 4.0);
    };
    {
      name = "basic";
      statement = "Lemma 3.3: 4 rounds, O(k (log k + log k)) bits, error 1/k";
      trial =
        protocol_trial "basic" (fun ~k ->
            Basic_intersection.protocol ~failure:(1.0 /. float_of_int k));
      rounds_limit = (fun _ -> 4);
      bits_limit = (fun k -> 6.0 *. float_of_int (2 * k) *. (2.0 *. flog k +. 8.0));
      error_limit = (fun k -> 1.0 /. float_of_int k);
    };
    {
      name = "one-round";
      statement = "R^(1): 1 round, O(k log k) bits, error O(1/k)";
      trial = protocol_trial "one-round" (fun ~k:_ -> One_round_hash.protocol ());
      rounds_limit = (fun _ -> 1);
      bits_limit =
        (fun k ->
          3.0 *. float_of_int (2 * k * One_round_hash.tag_bits ~k ~confidence:3));
      error_limit = (fun k -> 1.0 /. float_of_int k);
    };
    {
      name = "bucket";
      statement = "Thm 3.1: O(sqrt k) rounds, O(k) bits, error O(1/k)";
      trial = protocol_trial "bucket" (fun ~k -> Bucket_protocol.protocol ~k ());
      (* The theorem leaves the O(sqrt k) constant unspecified; 40 is
         calibrated against the mega-sweep's 65k-trial tails (max
         observed 31.5 * sqrt k at k = 256, where bad bucket luck adds
         redraw rounds) with ~27% headroom. *)
      rounds_limit = (fun k -> 40 * isqrt_ceil k);
      bits_limit = (fun k -> 64.0 *. float_of_int k);
      error_limit = (fun k -> 4.0 /. float_of_int k);
    };
    {
      name = "tree-r2";
      statement = "Thm 3.6 (r=2): <= 6r rounds, O(k log^(2) k) bits, error 1/poly(k)";
      trial = protocol_trial "tree-r2" (fun ~k -> Tree_protocol.protocol ~r:2 ~k ());
      rounds_limit = (fun _ -> 6 * 2);
      bits_limit = (fun k -> 64.0 *. float_of_int (k * max 1 (Iterated_log.ilog 2 k)));
      error_limit = (fun k -> 1.0 /. float_of_int k);
    };
    {
      name = "tree-r3";
      statement = "Thm 3.6 (r=3): <= 6r rounds, O(k log^(3) k) bits, error 1/poly(k)";
      trial = protocol_trial "tree-r3" (fun ~k -> Tree_protocol.protocol ~r:3 ~k ());
      rounds_limit = (fun _ -> 6 * 3);
      bits_limit = (fun k -> 64.0 *. float_of_int (k * max 1 (Iterated_log.ilog 3 k)));
      error_limit = (fun k -> 1.0 /. float_of_int k);
    };
    {
      name = "tree-log-star";
      statement = "Thm 3.6 (r=log* k): <= 6 log* k rounds, O(k log* k) bits, error 1/poly(k)";
      trial = protocol_trial "tree-log-star" (fun ~k -> Tree_protocol.protocol_log_star ~k ());
      rounds_limit = (fun k -> 6 * max 1 (Iterated_log.log_star k));
      bits_limit = (fun k -> 64.0 *. float_of_int k);
      error_limit = (fun k -> 1.0 /. float_of_int k);
    };
  ]

let entry_names = List.map (fun e -> e.name) registry

let entry_of_name name =
  match List.find_opt (fun e -> e.name = name) registry with
  | Some e -> e
  | None ->
      invalid_arg
        ("Conform: unknown protocol " ^ name ^ " (known: " ^ String.concat ", " entry_names ^ ")")

let default =
  { seed = 2014; trials = 120; ks = [ 16; 64; 256 ]; universe_bits = 20; protocols = entry_names }

let smoke = { default with trials = 25; ks = [ 16 ] }

type acc = { failures : int; rounds_max : int; bits_acc : Stats.Summary.Acc.t }

let run_cell ?domains ~cache (config : config) entry ~k =
  let stream =
    Engine.Seed_stream.create ~base:config.seed
      ~label:(Printf.sprintf "conform/%s/k%d" entry.name k)
  in
  let universe = 1 lsl config.universe_bits in
  let acc =
    Engine.Pool.run ?domains ~trials:config.trials
      (fun i -> entry.trial ~cache (Engine.Seed_stream.trial_rng stream (i + 1)) ~universe ~k)
      ~init:{ failures = 0; rounds_max = 0; bits_acc = Stats.Summary.Acc.empty }
      ~merge:(fun a o ->
        {
          failures = (a.failures + if o.t_exact then 0 else 1);
          rounds_max = max a.rounds_max o.t_rounds;
          bits_acc = Stats.Summary.Acc.add_int a.bits_acc o.t_bits;
        })
  in
  let bits = Stats.Summary.Acc.summarize acc.bits_acc in
  let error_limit = entry.error_limit k in
  let error_lower95, _ = Stats.Binomial.wilson ~failures:acc.failures ~trials:config.trials ~z:1.96 in
  let rounds_limit = entry.rounds_limit k in
  let bits_limit = entry.bits_limit k in
  let error_ok = error_lower95 <= error_limit in
  let rounds_ok = acc.rounds_max <= rounds_limit in
  let bits_ok = bits.Stats.Summary.mean <= bits_limit in
  {
    protocol = entry.name;
    statement = entry.statement;
    k;
    trials = config.trials;
    failures = acc.failures;
    error_limit;
    error_lower95;
    error_ok;
    rounds_max = acc.rounds_max;
    rounds_limit;
    rounds_ok;
    bits;
    bits_limit;
    bits_ok;
    pass = error_ok && rounds_ok && bits_ok;
  }

let run ?domains (config : config) =
  if config.trials < 1 then invalid_arg "Conform.run: trials";
  if config.ks = [] then invalid_arg "Conform.run: ks";
  let entries = List.map entry_of_name config.protocols in
  let cache = Engine.Instance_cache.create () in
  let cells =
    List.concat_map
      (fun entry -> List.map (fun k -> run_cell ?domains ~cache config entry ~k) config.ks)
      entries
  in
  { config; cells; pass = List.for_all (fun (c : cell) -> c.pass) cells }

let json_of_cell c =
  Stats.Json.Obj
    [
      ("protocol", Stats.Json.Str c.protocol);
      ("statement", Stats.Json.Str c.statement);
      ("k", Stats.Json.Int c.k);
      ("trials", Stats.Json.Int c.trials);
      ("failures", Stats.Json.Int c.failures);
      ("error_limit", Stats.Json.Float c.error_limit);
      ("error_lower95", Stats.Json.Float c.error_lower95);
      ("error_ok", Stats.Json.Bool c.error_ok);
      ("rounds_max", Stats.Json.Int c.rounds_max);
      ("rounds_limit", Stats.Json.Int c.rounds_limit);
      ("rounds_ok", Stats.Json.Bool c.rounds_ok);
      ( "bits",
        Stats.Json.Obj
          [
            ("mean", Stats.Json.Float c.bits.Stats.Summary.mean);
            ("p95", Stats.Json.Float c.bits.Stats.Summary.p95);
            ("min", Stats.Json.Float c.bits.Stats.Summary.min);
            ("max", Stats.Json.Float c.bits.Stats.Summary.max);
          ] );
      ("bits_limit", Stats.Json.Float c.bits_limit);
      ("bits_ok", Stats.Json.Bool c.bits_ok);
      ("pass", Stats.Json.Bool c.pass);
    ]

let to_json ?reproduce report =
  let c = report.config in
  Stats.Json.Obj
    (List.concat
       [
         (match reproduce with Some cmd -> [ ("reproduce", Stats.Json.Str cmd) ] | None -> []);
         [
           ( "config",
             Stats.Json.Obj
               [
                 ("seed", Stats.Json.Int c.seed);
                 ("trials", Stats.Json.Int c.trials);
                 ("ks", Stats.Json.List (List.map (fun k -> Stats.Json.Int k) c.ks));
                 ("universe_bits", Stats.Json.Int c.universe_bits);
                 ("protocols", Stats.Json.List (List.map (fun p -> Stats.Json.Str p) c.protocols));
               ] );
           ("cells", Stats.Json.List (List.map json_of_cell report.cells));
           ("pass", Stats.Json.Bool report.pass);
         ];
       ])

let summary report =
  let table =
    Stats.Table.create ~title:"Theorem conformance"
      ~columns:
        [ "protocol"; "k"; "exact"; "rounds"; "budget"; "mean bits"; "bits cap"; "err lo95"; "bound"; "pass" ]
  in
  List.iter
    (fun c ->
      Stats.Table.add_row table
        [
          c.protocol;
          string_of_int c.k;
          Printf.sprintf "%d/%d" (c.trials - c.failures) c.trials;
          string_of_int c.rounds_max;
          string_of_int c.rounds_limit;
          Printf.sprintf "%.0f" c.bits.Stats.Summary.mean;
          Printf.sprintf "%.0f" c.bits_limit;
          Printf.sprintf "%.2g" c.error_lower95;
          Printf.sprintf "%.2g" c.error_limit;
          (if c.pass then "yes" else "NO");
        ])
    report.cells;
  Stats.Table.render table
