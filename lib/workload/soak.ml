open Intersect

type config = {
  seed : int;
  trials : int;
  k : int;
  universe_bits : int;
  overlap : int;
  protocols : string list;
  plans : (string * Commsim.Faults.link) list;
  budget_attempts : int;
  check_bits : int;
}

let protocol_names = [ "trivial"; "tree"; "bucket" ]

let plan_catalogue =
  let open Commsim.Faults in
  [
    ("clean", clean_link);
    ("flip-1e-4", flipping 1e-4);
    ("flip-1e-3", flipping 1e-3);
    ("trunc-1e-2", { clean_link with trunc = 1e-2 });
    ("dup-5e-2", { clean_link with dup = 5e-2 });
    ("drop-2e-2", dropping 2e-2);
    ("storm", { flip = 2e-4; trunc = 5e-3; dup = 2e-2; drop = 1e-2 });
  ]

let default =
  {
    seed = 2014;
    trials = 1000;
    k = 24;
    universe_bits = 20;
    overlap = 12;
    protocols = protocol_names;
    plans = plan_catalogue;
    (* Attempts beyond ~8 are wasted work for message-heavy protocols under
       heavy flipping: per-attempt survival is low enough there that the
       exact deterministic fallback is the cheaper road to the answer. *)
    budget_attempts = 8;
    check_bits = 32;
  }

let smoke =
  {
    default with
    trials = 40;
    k = 16;
    overlap = 8;
    protocols = [ "trivial"; "tree" ];
    plans =
      List.filter (fun (name, _) -> List.mem name [ "clean"; "flip-1e-3"; "drop-2e-2" ]) plan_catalogue;
    budget_attempts = 8;
  }

type cell = {
  protocol : string;
  plan : string;
  trials : int;
  exact : int;
  verified : int;
  degraded : int;
  attempts_total : int;
  rejected : int;
  lost : int;
  crashed : int;
  mean_bits : float;
  baseline_bits : float;
  overhead : float;
  error_rate : float;
  error_upper95 : float;
  error_bound : float;
  within_bound : bool;
  flipped_bits : int;
  truncated : int;
  duplicated : int;
  dropped : int;
  first_failure : string option;
}

type report = { config : config; cells : cell list }

let base_of_name config name =
  match name with
  | "trivial" -> Resilient.trivial_base
  | "tree" -> Resilient.tree_base ~k:config.k ()
  | "bucket" -> Resilient.bucket_base ~k:config.k ()
  | _ ->
      invalid_arg
        ("Soak: unknown protocol " ^ name ^ " (known: " ^ String.concat ", " protocol_names ^ ")")

(* The engine seed stream of one (protocol x plan) cell.  The label format
   predates the engine; keeping it means any soak JSON ever published
   reproduces bit for bit through the new derivation. *)
let cell_stream (config : config) ~proto_name ~plan_name =
  Engine.Seed_stream.create ~base:config.seed
    ~label:(Printf.sprintf "soak/%s/%s" proto_name plan_name)

(* One seeded trial: inputs, per-trial fault plan and the wrapper run are
   all derived from the stream (config seed + cell coordinates) and the
   trial index alone, so trials can run on any domain in any order. *)
let trial (config : config) base ~stream ~link i =
  let rng = Engine.Seed_stream.trial_rng stream i in
  let universe = 1 lsl config.universe_bits in
  let pair =
    Setgen.pair_with_overlap
      (Prng.Rng.with_label rng "inputs")
      ~universe ~size_s:config.k ~size_t:config.k ~overlap:config.overlap
  in
  let plan =
    Commsim.Faults.uniform ~seed:(Prng.Rng.bits (Prng.Rng.with_label rng "plan") ~width:30) link
  in
  let report =
    Resilient.run base ~plan
      ~budget:{ Resilient.attempts = config.budget_attempts; bits = max_int }
      ~check_bits:config.check_bits
      (Prng.Rng.with_label rng "protocol")
      ~universe pair.Setgen.s pair.Setgen.t
  in
  let truth = Iset.inter pair.Setgen.s pair.Setgen.t in
  (report, Iset.equal report.Resilient.result truth)

let mean_bits_of reports =
  let total =
    List.fold_left (fun acc r -> acc + r.Resilient.cost.Commsim.Cost.total_bits) 0 reports
  in
  float_of_int total /. float_of_int (max 1 (List.length reports))

(* Fault-free cost of the wrapper on this protocol — the denominator of the
   per-cell overhead column.  A few dozen trials pin the mean well enough. *)
let baseline ?domains (config : config) base ~proto_name =
  let n = min config.trials 64 in
  let stream = cell_stream config ~proto_name ~plan_name:"baseline" in
  let reports =
    Engine.Pool.map ?domains ~trials:n (fun i ->
        fst (trial config base ~stream ~link:Commsim.Faults.clean_link (i + 1)))
  in
  mean_bits_of (Array.to_list reports)

let run_cell ?domains ?sink (config : config) base ~proto_name ~plan_name ~link ~baseline_bits =
  let stream = cell_stream config ~proto_name ~plan_name in
  let outcomes =
    Array.to_list
      (Engine.Pool.map ?domains ~trials:config.trials (fun i ->
           trial config base ~stream ~link (i + 1)))
  in
  let reports = List.map fst outcomes in
  let exact = List.length (List.filter snd outcomes) in
  (* Telemetry aggregation happens sequentially after the parallel map,
     in trial order, so the stream is byte-identical across domain
     counts. *)
  (match sink with
  | None -> ()
  | Some sink ->
      Telemetry.record_soak_cell sink ~trials:config.trials ~exact
        ~degraded:(List.length (List.filter (fun r -> r.Resilient.degraded) reports))
        ~bits:(List.map (fun r -> r.Resilient.cost.Commsim.Cost.total_bits) reports));
  let count f = List.length (List.filter f reports) in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  let failure_sums =
    List.fold_left
      (fun (rej, lost, crash) r ->
        let r', l', c' = Resilient.failure_counts r in
        (rej + r', lost + l', crash + c'))
      (0, 0, 0) reports
  in
  let rejected, lost, crashed = failure_sums in
  let tally =
    List.fold_left
      (fun acc r -> Commsim.Faults.add_tally acc (Commsim.Faults.total r.Resilient.tallies))
      Commsim.Faults.zero_tally reports
  in
  let mean_bits = mean_bits_of reports in
  let failures = config.trials - exact in
  let error_rate = float_of_int failures /. float_of_int config.trials in
  let error_bound =
    float_of_int config.budget_attempts *. (2.0 ** float_of_int (-config.check_bits))
  in
  {
    protocol = proto_name;
    plan = plan_name;
    trials = config.trials;
    exact;
    verified = count (fun r -> r.Resilient.verified);
    degraded = count (fun r -> r.Resilient.degraded);
    attempts_total = sum (fun r -> r.Resilient.attempts);
    rejected;
    lost;
    crashed;
    mean_bits;
    baseline_bits;
    overhead = (if baseline_bits > 0.0 then mean_bits /. baseline_bits else Float.nan);
    error_rate;
    error_upper95 = Stats.Binomial.upper95 ~failures ~trials:config.trials;
    error_bound;
    within_bound = failures = 0 || error_rate <= error_bound;
    flipped_bits = tally.Commsim.Faults.flipped_bits;
    truncated = tally.Commsim.Faults.truncated_messages;
    duplicated = tally.Commsim.Faults.duplicated_messages;
    dropped = tally.Commsim.Faults.dropped_messages;
    (* The first carried diagnosis in the cell — the concrete "who wedged
       on which message" sample a human reaches for when a cell looks bad. *)
    first_failure =
      List.find_map
        (fun r ->
          List.find_map
            (function
              | Resilient.Check_rejected -> None
              | Resilient.Channel_lost d -> Some ("channel lost: " ^ d)
              | Resilient.Party_crashed d -> Some ("party crashed: " ^ d))
            r.Resilient.failures)
        reports;
  }

let run ?domains ?sink (config : config) =
  if config.trials < 1 then invalid_arg "Soak.run: trials";
  if config.overlap > config.k then invalid_arg "Soak.run: overlap > k";
  let cells =
    List.concat_map
      (fun proto_name ->
        let base = base_of_name config proto_name in
        let baseline_bits = baseline ?domains config base ~proto_name in
        List.map
          (fun (plan_name, link) ->
            run_cell ?domains ?sink config base ~proto_name ~plan_name ~link ~baseline_bits)
          config.plans)
      config.protocols
  in
  { config; cells }

let json_of_link (l : Commsim.Faults.link) =
  Stats.Json.Obj
    [
      ("flip", Stats.Json.Float l.Commsim.Faults.flip);
      ("trunc", Stats.Json.Float l.Commsim.Faults.trunc);
      ("dup", Stats.Json.Float l.Commsim.Faults.dup);
      ("drop", Stats.Json.Float l.Commsim.Faults.drop);
    ]

let json_of_cell c =
  Stats.Json.Obj
    [
      ("protocol", Stats.Json.Str c.protocol);
      ("plan", Stats.Json.Str c.plan);
      ("trials", Stats.Json.Int c.trials);
      ("exact", Stats.Json.Int c.exact);
      ("verified", Stats.Json.Int c.verified);
      ("degraded", Stats.Json.Int c.degraded);
      ("attempts_total", Stats.Json.Int c.attempts_total);
      ("rejected", Stats.Json.Int c.rejected);
      ("lost", Stats.Json.Int c.lost);
      ("crashed", Stats.Json.Int c.crashed);
      ("mean_bits", Stats.Json.Float c.mean_bits);
      ("baseline_bits", Stats.Json.Float c.baseline_bits);
      ("overhead", Stats.Json.Float c.overhead);
      ("error_rate", Stats.Json.Float c.error_rate);
      ("error_upper95", Stats.Json.Float c.error_upper95);
      ("error_bound", Stats.Json.Float c.error_bound);
      ("within_bound", Stats.Json.Bool c.within_bound);
      ( "injected",
        Stats.Json.Obj
          [
            ("flipped_bits", Stats.Json.Int c.flipped_bits);
            ("truncated", Stats.Json.Int c.truncated);
            ("duplicated", Stats.Json.Int c.duplicated);
            ("dropped", Stats.Json.Int c.dropped);
          ] );
      ( "first_failure",
        match c.first_failure with None -> Stats.Json.Null | Some d -> Stats.Json.Str d );
    ]

let to_json ?reproduce report =
  let c = report.config in
  Stats.Json.Obj
    (List.concat
       [
         (match reproduce with Some cmd -> [ ("reproduce", Stats.Json.Str cmd) ] | None -> []);
         [
           ( "config",
             Stats.Json.Obj
               [
                 ("seed", Stats.Json.Int c.seed);
                 ("trials", Stats.Json.Int c.trials);
                 ("k", Stats.Json.Int c.k);
                 ("universe_bits", Stats.Json.Int c.universe_bits);
                 ("overlap", Stats.Json.Int c.overlap);
                 ("protocols", Stats.Json.List (List.map (fun p -> Stats.Json.Str p) c.protocols));
                 ( "plans",
                   Stats.Json.Obj (List.map (fun (name, link) -> (name, json_of_link link)) c.plans)
                 );
                 ("budget_attempts", Stats.Json.Int c.budget_attempts);
                 ("check_bits", Stats.Json.Int c.check_bits);
               ] );
           ("cells", Stats.Json.List (List.map json_of_cell report.cells));
         ];
       ])

let summary report =
  let table =
    Stats.Table.create ~title:"Adversarial-channel soak"
      ~columns:
        [
          "protocol";
          "plan";
          "exact";
          "verified";
          "degraded";
          "att/trial";
          "overhead";
          "err<=95%";
          "bound ok";
        ]
  in
  List.iter
    (fun c ->
      Stats.Table.add_row table
        [
          c.protocol;
          c.plan;
          Printf.sprintf "%d/%d" c.exact c.trials;
          string_of_int c.verified;
          string_of_int c.degraded;
          Printf.sprintf "%.2f" (float_of_int c.attempts_total /. float_of_int c.trials);
          Printf.sprintf "%.2fx" c.overhead;
          Printf.sprintf "%.2g" c.error_upper95;
          (if c.within_bound then "yes" else "NO");
        ])
    report.cells;
  Stats.Table.render table
