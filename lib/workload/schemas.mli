(** The schema catalogue for the repository's machine-checked JSON
    artifacts.

    Every committed artifact (the [BENCH_*.json] reports, the linter's
    report/SARIF exports, the [experiments.json] registry index) has a
    named schema mode here; [bin/json_check.exe --<mode>] and the
    experiment registry ({!Registry}) validate against the same
    implementations, so "the artifact passes its [json_check] mode" means
    the same thing on the command line and inside [experiments verify].

    Checks are pure string -> result functions over {!Stats.Json}; they
    never touch the filesystem. *)

(** Every known mode name, sorted: ["bench-chaos"], ["bench-hotpath"],
    ["bench-sweep"], ["bench-telemetry"], ["experiments"],
    ["lint-report"], ["lint-sarif"]. *)
val modes : string list

(** The subset of {!modes} that validates committed [BENCH_*.json]
    artifacts — the only modes an experiment entry may name in its
    [json_check] frontmatter field. *)
val bench_modes : string list

(** [check ~mode contents] validates [contents] against the named schema.
    [Error] carries a one-line diagnosis (unknown modes are an [Error]
    too, never an exception). *)
val check : mode:string -> string -> (unit, string) result
