type pair = { s : int array; t : int array }

let is_sorted_set = Iset.is_valid

(* Floyd's sampling: a uniform [size]-subset of [0, universe) in O(size)
   expected time, independent of the universe.  Membership lives in a flat
   linear-probing table (power-of-two capacity, load <= 1/2, -1 empty) —
   one scratch array instead of Hashtbl's per-entry buckets, which
   dominated the input-generation slice of the per-trial allocation
   profile.  Same draw sequence, same sorted output as the Hashtbl
   formulation. *)
let random_set rng ~universe ~size =
  if size < 0 || size > universe then invalid_arg "Setgen.random_set";
  if size = 0 then [||]
  else begin
    let cap = ref 16 in
    while !cap < 2 * size do
      cap := !cap * 2
    done;
    let cap = !cap in
    let mask = cap - 1 in
    let table = Array.make cap (-1) in
    (* Fibonacci-style multiplicative spread; any deterministic hash works
       here — the table only answers membership, never drives a draw. *)
    let slot x =
      let i = ref ((x * 0x2545F4914F6CDD1D) lsr 40 land mask) in
      while table.(!i) <> -1 && table.(!i) <> x do
        i := (!i + 1) land mask
      done;
      !i
    in
    for j = universe - size to universe - 1 do
      let t = Prng.Rng.int rng (j + 1) in
      let s = slot t in
      if table.(s) = -1 then table.(s) <- t else table.(slot j) <- j
    done;
    let out = Array.make size 0 in
    let pos = ref 0 in
    Array.iter
      (fun x ->
        if x >= 0 then begin
          out.(!pos) <- x;
          incr pos
        end)
      table;
    Array.sort compare out;
    out
  end

let pair_with_overlap rng ~universe ~size_s ~size_t ~overlap =
  if overlap < 0 || overlap > min size_s size_t then invalid_arg "Setgen.pair_with_overlap: overlap";
  let support = size_s + size_t - overlap in
  if support > universe then invalid_arg "Setgen.pair_with_overlap: universe too small";
  let elements = random_set rng ~universe ~size:support in
  Prng.Rng.shuffle rng elements;
  let s = Array.make size_s 0 and t = Array.make size_t 0 in
  for i = 0 to overlap - 1 do
    s.(i) <- elements.(i);
    t.(i) <- elements.(i)
  done;
  for i = overlap to size_s - 1 do
    s.(i) <- elements.(i)
  done;
  for i = overlap to size_t - 1 do
    t.(i) <- elements.(size_s - overlap + i)
  done;
  Array.sort compare s;
  Array.sort compare t;
  { s; t }

let zipf_cumulative ~universe ~exponent =
  let cumulative = Array.make universe 0.0 in
  let acc = ref 0.0 in
  for r = 1 to universe do
    acc := !acc +. (1.0 /. Float.pow (float_of_int r) exponent);
    cumulative.(r - 1) <- !acc
  done;
  cumulative

let zipf_pair rng ~universe ~size ~exponent =
  if size > universe / 2 then invalid_arg "Setgen.zipf_pair: size too large for rejection sampling";
  let cumulative = zipf_cumulative ~universe ~exponent in
  let total = cumulative.(universe - 1) in
  let sample_rank () =
    let u = Prng.Rng.float rng *. total in
    (* first index with cumulative >= u *)
    let lo = ref 0 and hi = ref (universe - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo
  in
  let draw_set () =
    let chosen = Hashtbl.create (2 * size) in
    while Hashtbl.length chosen < size do
      Hashtbl.replace chosen (sample_rank ()) ()
    done;
    let out = Array.of_seq (Hashtbl.to_seq_keys chosen) in
    Array.sort compare out;
    out
  in
  { s = draw_set (); t = draw_set () }

let family_with_core rng ~universe ~players ~size ~core =
  if core > size then invalid_arg "Setgen.family_with_core: core > size";
  if players < 1 then invalid_arg "Setgen.family_with_core: players";
  let support = core + (players * (size - core)) in
  if support > universe then invalid_arg "Setgen.family_with_core: universe too small";
  let elements = random_set rng ~universe ~size:support in
  Prng.Rng.shuffle rng elements;
  let shared = Array.sub elements 0 core in
  Array.init players (fun p ->
      let private_part = Array.sub elements (core + (p * (size - core))) (size - core) in
      let set = Array.append shared private_part in
      Array.sort compare set;
      set)

type shape = { shape : string; universe : int; pair : pair }

(* The corner cases protocols historically get wrong: empty inputs (no
   tags to exchange), full overlap (every pair is a hit), singletons
   (k = 1 degenerates most size-derived widths), nesting (one-sided
   sandwich), and a dense universe n = 2k where universe reduction and
   bucketing have no slack.  Property tests run every protocol across all
   of these; sizes are exact, so |S ∩ T| is known by construction. *)
let adversarial rng ~k =
  if k < 2 then invalid_arg "Setgen.adversarial: k >= 2";
  let u = max (4 * k) 64 in
  let draw label ~universe ~size_s ~size_t ~overlap =
    pair_with_overlap (Prng.Rng.with_label rng label) ~universe ~size_s ~size_t ~overlap
  in
  let identical =
    let s = random_set (Prng.Rng.with_label rng "identical") ~universe:u ~size:k in
    { s; t = Array.copy s }
  in
  let nested =
    let outer = random_set (Prng.Rng.with_label rng "nested") ~universe:u ~size:k in
    { s = Array.sub outer 0 (k / 2); t = outer }
  in
  [
    { shape = "empty-both"; universe = u; pair = { s = [||]; t = [||] } };
    {
      shape = "empty-s";
      universe = u;
      pair = draw "empty-s" ~universe:u ~size_s:0 ~size_t:k ~overlap:0;
    };
    {
      shape = "empty-t";
      universe = u;
      pair = draw "empty-t" ~universe:u ~size_s:k ~size_t:0 ~overlap:0;
    };
    { shape = "identical"; universe = u; pair = identical };
    { shape = "nested"; universe = u; pair = nested };
    {
      shape = "singleton-equal";
      universe = u;
      pair = draw "singleton-equal" ~universe:u ~size_s:1 ~size_t:1 ~overlap:1;
    };
    {
      shape = "singleton-disjoint";
      universe = u;
      pair = draw "singleton-disjoint" ~universe:u ~size_s:1 ~size_t:1 ~overlap:0;
    };
    {
      shape = "disjoint";
      universe = u;
      pair = draw "disjoint" ~universe:u ~size_s:k ~size_t:k ~overlap:0;
    };
    {
      shape = "dense-universe";
      universe = 2 * k;
      pair = draw "dense-universe" ~universe:(2 * k) ~size_s:k ~size_t:k ~overlap:(k / 2);
    };
  ]

let intersect = Iset.inter
let union = Iset.union
