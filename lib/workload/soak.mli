(** The adversarial-channel soak harness.

    Runs [trials] seeded executions of each (protocol × fault plan) cell:
    every trial draws a fresh input pair, derives a per-trial fault plan,
    and runs the {!Intersect.Resilient} wrapper over the faulty channel.
    Per cell it aggregates exactness, retry/degradation behaviour, bit
    overhead against the fault-free baseline, and the injected damage, and
    checks the empirical error rate against the paper's
    [attempts * 2^-check_bits] acceptance bound ([2^-k]-style; see
    Section 4).  The whole report is a pure function of the config — same
    seed, same JSON, bit for bit. *)

type config = {
  seed : int;
  trials : int;  (** per cell *)
  k : int;  (** both input sets have this size *)
  universe_bits : int;  (** universe [2^universe_bits] *)
  overlap : int;  (** planted [|S ∩ T|] *)
  protocols : string list;  (** subset of {!protocol_names} *)
  plans : (string * Commsim.Faults.link) list;  (** named per-link fault rates *)
  budget_attempts : int;  (** retry budget handed to {!Intersect.Resilient} *)
  check_bits : int;  (** initial verification-fingerprint width *)
}

(** Base protocols the harness knows how to run: ["trivial"], ["tree"],
    ["bucket"]. *)
val protocol_names : string list

(** The named fault plans of the default matrix: ["clean"], ["flip-1e-4"],
    ["flip-1e-3"], ["trunc-1e-2"], ["dup-5e-2"], ["drop-2e-2"] and the
    everything-at-once ["storm"]. *)
val plan_catalogue : (string * Commsim.Faults.link) list

(** The full matrix: 1000 trials per cell, every protocol, every plan. *)
val default : config

(** A seconds-scale configuration for CI: 40 trials, two protocols, three
    plans. *)
val smoke : config

(** Aggregates of one (protocol × plan) cell. *)
type cell = {
  protocol : string;
  plan : string;
  trials : int;
  exact : int;  (** trials whose result equalled [S ∩ T] *)
  verified : int;  (** trials accepted by a fingerprint check *)
  degraded : int;  (** trials that fell back to the deterministic exchange *)
  attempts_total : int;
  rejected : int;  (** attempt-level check rejections, summed *)
  lost : int;  (** attempts wedged on dropped messages *)
  crashed : int;  (** attempts killed by corrupted-payload decode errors *)
  mean_bits : float;  (** mean bits over the faulty channel + fallback *)
  baseline_bits : float;  (** fault-free mean bits of the same wrapper *)
  overhead : float;  (** [mean_bits /. baseline_bits] *)
  error_rate : float;  (** observed [1 - exact/trials] *)
  error_upper95 : float;  (** Wilson 95% upper bound on the true rate *)
  error_bound : float;  (** [budget_attempts * 2^-check_bits] *)
  within_bound : bool;  (** no observed failure, or rate within the bound *)
  flipped_bits : int;
  truncated : int;
  duplicated : int;
  dropped : int;
  first_failure : string option;
      (** the first carried failure diagnosis observed in the cell (rank,
          message index and consumed-message counts from
          {!Commsim.Network}); [None] when every attempt's only failures
          were check rejections *)
}

type report = { config : config; cells : cell list }

(** [run ?domains config] runs the matrix on the {!Engine.Pool} trial
    runner; [domains] defaults to the machine's recommended domain count.
    Per-trial randomness is an {!Engine.Seed_stream} of the config seed and
    the cell coordinates, so the report — and its JSON — is byte-identical
    for {e every} domain count, including the sequential [~domains:1]
    which reproduces the historical single-core harness exactly.

    With a [sink], each cell's exact/degraded tallies and per-trial bit
    costs are folded into the fleet telemetry (sequentially, in trial
    order) and the cell closes with one snapshot. *)
val run : ?domains:int -> ?sink:Telemetry.sink -> config -> report

(** [to_json ?reproduce report] renders the full report; [reproduce] is the
    exact command line that regenerates it. *)
val to_json : ?reproduce:string -> report -> Stats.Json.t

(** Human-readable cell table. *)
val summary : report -> string
