(** The theorem-conformance tier: seeded trial sweeps asserting that every
    registered protocol stays inside its paper envelope.

    For each (protocol, k) cell the tier runs [trials] independent seeded
    executions on the {!Engine.Pool} runner and checks three envelopes:

    - {b rounds}: the observed round count of {e every} trial is at most
      the statement's budget (Lemma 3.3: 4; Fact 3.5: 2; Theorem 3.1:
      [c·√k]; Theorem 3.6: [6r]);
    - {b bits}: the mean total bits stay within a constant-factor envelope
      of the statement's asymptotic ([O(k)] for Theorem 3.1,
      [O(k·log^(r) k)] for Theorem 3.6, ...);
    - {b error}: the observed failure count is statistically consistent
      with the stated bound ([1 - 1/poly(k)] success, [2^-k]-style for
      equality): the cell fails only when the one-sided 95% Wilson {e
      lower} bound on the true error rate ({!Stats.Binomial}) exceeds the
      theoretical limit — no false alarms from a single unlucky trial the
      bound itself allows.

    Reports are pure functions of the config (engine seed streams), so a
    conformance failure is replayable bit for bit. *)

type config = {
  seed : int;
  trials : int;  (** per (protocol, k) cell *)
  ks : int list;  (** set-size sweep, e.g. [\[16; 64; 256\]] *)
  universe_bits : int;  (** universe [2^universe_bits] *)
  protocols : string list;  (** subset of {!entry_names} *)
}

(** One seeded execution: total bits, worst-case rounds, exactness. *)
type trial_outcome = { t_bits : int; t_rounds : int; t_exact : bool }

(** A registered statement.  [trial] draws a random promise instance and
    runs one seeded execution; protocol instances are memoized per domain
    through the supplied {!Engine.Instance_cache} (keyed
    ["<name>/k<k>"]), so builders must be pure functions of [(name, k)].
    The concrete record is exposed so other tiers (the {!Sweep} mega-run,
    test fixtures asserting that envelope violations are flagged) can
    reuse or fabricate entries. *)
type entry = {
  name : string;
  statement : string;
  trial :
    cache:Intersect.Protocol.t Engine.Instance_cache.t ->
    Prng.Rng.t ->
    universe:int ->
    k:int ->
    trial_outcome;
  rounds_limit : int -> int;
  bits_limit : int -> float;
  error_limit : int -> float;
}

(** The registered statements, in report order. *)
val registry : entry list

(** Names of the registered statements: ["trivial"], ["eq"] (Fact 3.5),
    ["basic"] (Lemma 3.3), ["one-round"], ["bucket"] (Theorem 3.1),
    ["tree-r2"], ["tree-r3"] and ["tree-log-star"] (Theorem 3.6). *)
val entry_names : string list

(** Registry lookup; [Invalid_argument] on unknown names. *)
val entry_of_name : string -> entry

(** Every entry, [k ∈ {16, 64, 256}], 120 trials per cell. *)
val default : config

(** Seconds-scale: [k = 16], 25 trials, every entry. *)
val smoke : config

type cell = {
  protocol : string;
  statement : string;  (** the envelope being asserted, human-readable *)
  k : int;
  trials : int;
  failures : int;  (** trials that did not output exactly [S ∩ T] *)
  error_limit : float;  (** the statement's failure-probability bound *)
  error_lower95 : float;  (** Wilson 95% lower bound on the true rate *)
  error_ok : bool;  (** [error_lower95 <= error_limit] *)
  rounds_max : int;  (** worst observed round count *)
  rounds_limit : int;  (** the statement's round budget at this [k] *)
  rounds_ok : bool;
  bits : Stats.Summary.t;  (** total-bits distribution over the trials *)
  bits_limit : float;  (** constant-factor envelope on the mean *)
  bits_ok : bool;
  pass : bool;  (** all three checks *)
}

type report = { config : config; cells : cell list; pass : bool }

(** [run ?domains config] — trial scheduling via {!Engine.Pool}; the
    report is byte-identical for every domain count. *)
val run : ?domains:int -> config -> report

val to_json : ?reproduce:string -> report -> Stats.Json.t

(** Human-readable cell table. *)
val summary : report -> string
