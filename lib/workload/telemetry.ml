(* The fleet-telemetry sink: one metrics registry fed per-session fleet
   aggregates (outcome counters, bit-spend sketches), an event-time
   snapshot stream, and the post-mortems harvested from per-session
   flight recorders.  The sink is filled sequentially, in deterministic
   trial order, from session reports that are themselves byte-identical
   at any domain count — so the emitted JSONL stream is too.

   The overhead bench at the bottom is the telemetry analogue of
   Regress: wall-clock reads live here (lint.allow carries the R1
   entry), and everything gated on is seeded and replayable. *)

type sink = {
  registry : Obsv.Metrics.registry;
  mutable sessions : int;  (* event-time axis: sessions recorded so far *)
  mutable snapshots_rev : Obsv.Snapshot.t list;
  mutable postmortems_rev : (int * Stats.Json.t) list;  (* (at, dump) *)
}

let create_sink () =
  { registry = Obsv.Metrics.create (); sessions = 0; snapshots_rev = []; postmortems_rev = [] }

let sessions sink = sink.sessions

(* Fold one session report into the fleet registry under the
   Obsv.Health metric-name contract.  The deadline gauge keeps the
   maximum across sessions explicitly: gauges overwrite within one
   registry, and "largest admitted budget" is the denominator the burn
   SLO wants. *)
let record_report sink ~deadline_bits (r : Session.Machine.report) ~wrong =
  Obsv.Metrics.with_registry sink.registry (fun () ->
      Obsv.Metrics.incr Obsv.Health.k_sessions;
      Obsv.Metrics.incr
        (Obsv.Health.k_outcome (Session.Machine.outcome_name r.Session.Machine.outcome));
      if wrong then Obsv.Metrics.incr Obsv.Health.k_wrong;
      if r.Session.Machine.attempts > 0 then
        Obsv.Metrics.incr ~by:r.Session.Machine.attempts Obsv.Health.k_attempts;
      if r.Session.Machine.resumes > 0 then
        Obsv.Metrics.incr ~by:r.Session.Machine.resumes Obsv.Health.k_resumes;
      List.iter
        (fun (kind, _) ->
          Obsv.Metrics.incr (Obsv.Health.k_failure (Session.Machine.kind_name kind)))
        r.Session.Machine.failures;
      let ledger = r.Session.Machine.ledger in
      Obsv.Metrics.record Obsv.Health.k_spent_bits ledger.Session.Machine.spent_bits;
      Obsv.Metrics.record Obsv.Health.k_backoff_ticks ledger.Session.Machine.backoff_ticks;
      Obsv.Metrics.record Obsv.Health.k_wasted_bits ledger.Session.Machine.wasted_bits;
      let prev =
        match Obsv.Metrics.gauge_value sink.registry Obsv.Health.k_deadline_bits with
        | Some g -> g
        | None -> 0
      in
      Obsv.Metrics.set_gauge Obsv.Health.k_deadline_bits (max prev deadline_bits));
  sink.sessions <- sink.sessions + 1

let add_postmortem sink json = sink.postmortems_rev <- (sink.sessions, json) :: sink.postmortems_rev

let snapshot sink =
  let seq = List.length sink.snapshots_rev in
  let s = Obsv.Snapshot.take ~seq ~at:sink.sessions sink.registry in
  sink.snapshots_rev <- s :: sink.snapshots_rev;
  s

let snapshots sink = List.rev sink.snapshots_rev
let last_snapshot sink = match sink.snapshots_rev with [] -> None | s :: _ -> Some s
let postmortems sink = List.rev sink.postmortems_rev

(* The stream: snapshot lines (each followed by its derived-rates line)
   merged with post-mortem lines on the shared event-time axis;
   post-mortems sort before the snapshot that first covers them. *)
let jsonl sink =
  let rec merge pms snaps prev acc =
    match (pms, snaps) with
    | (a, j) :: prest, s :: _ when a <= s.Obsv.Snapshot.at ->
        merge prest snaps prev (Stats.Json.to_string j :: acc)
    | _, s :: srest ->
        let acc = Stats.Json.to_string (Obsv.Snapshot.to_json s) :: acc in
        let acc =
          match prev with
          | None -> acc
          | Some p -> Stats.Json.to_string (Obsv.Snapshot.rates_json ~prev:p s) :: acc
        in
        merge pms srest (Some s) acc
    | (_, j) :: prest, [] -> merge prest [] prev (Stats.Json.to_string j :: acc)
    | [], [] -> List.rev acc
  in
  merge (postmortems sink) (snapshots sink) None []

(* Cell-level recording for the Resilient soak harness (which has trials,
   not sessions): bump the soak counters, sketch the per-trial bit costs
   in trial order, advance event time by the cell's trials and close the
   cell with a snapshot. *)
let record_soak_cell sink ~trials ~exact ~degraded ~bits =
  Obsv.Metrics.with_registry sink.registry (fun () ->
      Obsv.Metrics.incr ~by:trials "soak/trials";
      if exact > 0 then Obsv.Metrics.incr ~by:exact "soak/exact";
      if degraded > 0 then Obsv.Metrics.incr ~by:degraded "soak/degraded";
      List.iter (fun b -> Obsv.Metrics.record "soak/bits" b) bits);
  sink.sessions <- sink.sessions + trials;
  ignore (snapshot sink)

(* Cell-level recording for the Sweep mega-runner: same shape as the soak
   hook, but the per-trial bit costs arrive pre-accumulated in a mergeable
   sketch (a 10^6-trial cell never materialises a bits list). *)
let record_sweep_cell sink ~trials ~exact ~degraded ~sketch =
  Obsv.Metrics.with_registry sink.registry (fun () ->
      Obsv.Metrics.incr ~by:trials "sweep/trials";
      if exact > 0 then Obsv.Metrics.incr ~by:exact "sweep/exact";
      if degraded > 0 then Obsv.Metrics.incr ~by:degraded "sweep/degraded";
      Obsv.Metrics.merge_sketch "sweep/bits" sketch);
  sink.sessions <- sink.sessions + trials;
  ignore (snapshot sink)

let health ?slos sink =
  match last_snapshot sink with
  | Some snap -> Some (Obsv.Health.evaluate ?slos snap)
  | None -> None

(* ---------- overhead bench ---------- *)

type overhead_config = { seed : int; k : int; universe_bits : int; sessions : int }

let overhead_default = { seed = 2014; k = 1024; universe_bits = 16; sessions = 24 }
let overhead_smoke = { overhead_default with k = 256; sessions = 8 }

type pass = { ns_per_session : float; spent_bits : int; completed : int }

type overhead_report = {
  config : overhead_config;
  off : pass;
  on_ : pass;
  ratio : float;
  deterministic_match : bool;
}

(* One telemetry-on or telemetry-off sweep over the same seeded sessions.
   Both passes verify the result against the precomputed truth, so the
   only asymmetry between them is the telemetry itself: ambient fleet
   registry, a per-session flight recorder, and the per-session sketch
   records — exactly the hot-path cost BENCH_telemetry.json gates. *)
let run_pass (c : overhead_config) ~telemetry =
  let stream = Engine.Seed_stream.create ~base:c.seed ~label:"telemetry/overhead" in
  let universe = 1 lsl c.universe_bits in
  let plan = Commsim.Faults.uniform ~seed:c.seed Commsim.Faults.clean_link in
  let pairs =
    Array.init c.sessions (fun i ->
        let rng = Engine.Seed_stream.trial_rng stream (i + 1) in
        Setgen.pair_with_overlap
          (Prng.Rng.with_label rng "inputs")
          ~universe ~size_s:c.k ~size_t:c.k ~overlap:(c.k / 2))
  in
  let truths = Array.map (fun p -> Iset.inter p.Setgen.s p.Setgen.t) pairs in
  let cfgs =
    Array.init c.sessions (fun i ->
        let rng = Engine.Seed_stream.trial_rng stream (i + 1) in
        let seed = Prng.Rng.bits (Prng.Rng.with_label rng "session") ~width:30 in
        let base = Session.Machine.default ~k:c.k ~plan in
        {
          base with
          Session.Machine.seed;
          universe_bits = c.universe_bits;
          (* Machine.default scales the fingerprint with k, but the session
             layer caps verification width at 512 bits; clamp so the bench
             runs at k = 1024. *)
          check_bits0 = min 512 base.Session.Machine.check_bits0;
        })
  in
  let spent = ref 0 in
  let completed = ref 0 in
  let run_one sink i =
    let pair = pairs.(i) in
    let cfg = cfgs.(i) in
    let report =
      match sink with
      | None -> Session.Machine.run cfg ~s:pair.Setgen.s ~t:pair.Setgen.t
      | Some sink ->
          let recorder = Obsv.Recorder.create () in
          let report =
            Obsv.Recorder.with_recorder recorder (fun () ->
                Session.Machine.run cfg ~s:pair.Setgen.s ~t:pair.Setgen.t)
          in
          let wrong =
            match Session.Machine.result_of report.Session.Machine.outcome with
            | Some result -> not (Iset.equal result truths.(i))
            | None -> false
          in
          record_report sink ~deadline_bits:cfg.Session.Machine.deadline_bits report ~wrong;
          (match report.Session.Machine.outcome with
          | Session.Machine.Completed _ -> ()
          | o ->
              add_postmortem sink
                (Obsv.Recorder.post_mortem_json ~outcome:(Session.Machine.outcome_name o)
                   recorder));
          report
    in
    (match Session.Machine.result_of report.Session.Machine.outcome with
    | Some result -> if not (Iset.equal result truths.(i)) then failwith "overhead: wrong result"
    | None -> ());
    (match report.Session.Machine.outcome with
    | Session.Machine.Completed _ -> incr completed
    | _ -> ());
    spent :=
      !spent + report.Session.Machine.ledger.Session.Machine.spent_bits
  in
  let sweep sink =
    match sink with
    | None ->
        for i = 0 to c.sessions - 1 do
          run_one None i
        done
    | Some s ->
        Obsv.Metrics.with_registry s.registry (fun () ->
            for i = 0 to c.sessions - 1 do
              run_one sink i
            done);
        ignore (snapshot s)
  in
  (* Warm-up session (codec caches, pools) outside the timed window. *)
  run_one None 0;
  spent := 0;
  completed := 0;
  let sink = if telemetry then Some (create_sink ()) else None in
  let t0 = Unix.gettimeofday () in
  sweep sink;
  let t1 = Unix.gettimeofday () in
  {
    ns_per_session = (t1 -. t0) *. 1e9 /. float_of_int c.sessions;
    spent_bits = !spent;
    completed = !completed;
  }

let run_overhead (c : overhead_config) =
  if c.sessions < 1 then invalid_arg "Telemetry.run_overhead: sessions";
  let off = run_pass c ~telemetry:false in
  let on_ = run_pass c ~telemetry:true in
  {
    config = c;
    off;
    on_;
    ratio = (if off.ns_per_session > 0.0 then on_.ns_per_session /. off.ns_per_session else 0.0);
    deterministic_match = off.spent_bits = on_.spent_bits && off.completed = on_.completed;
  }

let pass_json p =
  Stats.Json.Obj
    [
      ("ns_per_session", Stats.Json.Float p.ns_per_session);
      ("spent_bits", Stats.Json.Int p.spent_bits);
      ("completed", Stats.Json.Int p.completed);
    ]

let overhead_json ?reproduce r =
  let c = r.config in
  Stats.Json.Obj
    (List.concat
       [
         [ ("bench", Stats.Json.Str "telemetry") ];
         (match reproduce with Some cmd -> [ ("reproduce", Stats.Json.Str cmd) ] | None -> []);
         [
           ( "config",
             Stats.Json.Obj
               [
                 ("seed", Stats.Json.Int c.seed);
                 ("k", Stats.Json.Int c.k);
                 ("universe_bits", Stats.Json.Int c.universe_bits);
                 ("sessions", Stats.Json.Int c.sessions);
               ] );
           ("off", pass_json r.off);
           ("on", pass_json r.on_);
           ("ratio", Stats.Json.Float r.ratio);
           ("deterministic_match", Stats.Json.Bool r.deterministic_match);
         ];
       ])

let overhead_summary r =
  Printf.sprintf
    "telemetry overhead: k=%d sessions=%d  off %.0f ns/session, on %.0f ns/session, ratio \
     %.3fx, deterministic fields %s"
    r.config.k r.config.sessions r.off.ns_per_session r.on_.ns_per_session r.ratio
    (if r.deterministic_match then "identical" else "DIVERGED")
