(* Hot-path regression bench: seeded end-to-end runs of every registered
   two-party protocol, measuring wall-clock (ns/run), allocation pressure
   (bytes allocated per run, via Gc.allocated_bytes deltas) and the exact
   deterministic communication fields (bits, messages, rounds).

   The deterministic fields are the contract: a perf PR may change ns/run
   and bytes/run, but bits/messages/rounds must stay byte-identical for a
   fixed seed (pooling and codec caching must not perturb transcripts).
   Comparison against a committed BENCH_hotpath.json baseline enforces
   both halves: exact equality on the deterministic fields, a configurable
   tolerance on the timing fields.

   Wall-clock reads live in this module only (lint.allow carries the R1
   entry); everything the comparison gates on is seeded and replayable. *)

open Intersect

type cell = {
  protocol : string;
  k : int;
  trials : int;
  reps : int;
  ns_per_run : float;
  alloc_bytes_per_run : float;
  total_bits : int;  (** summed over the seeded trials — deterministic *)
  messages : int;  (** summed over the seeded trials — deterministic *)
  rounds : int;  (** summed over the seeded trials — deterministic *)
}

type report = {
  seed : int;
  universe_bits : int;
  trials : int;
  ks : int list;
  cells : cell list;
}

type config = {
  seed : int;
  universe_bits : int;
  trials : int;
  ks : int list;
  protocols : string list;
}

(* The registered suite: every two-party Protocol.t family the CLI can
   name, each at its default parameterization.  (resilient/star/tournament
   run outside the Protocol.t interface and have their own harnesses:
   Workload.Soak and the multiparty benches.) *)
let protocol_names =
  [
    "trivial";
    "trivial-entropy";
    "full-exchange";
    "one-round";
    "basic";
    "bucket";
    "tree-r2";
    "tree-r3";
    "tree-log-star";
    "verified-tree";
  ]

let protocol_of ~name ~k =
  match name with
  | "trivial" -> Trivial.protocol
  | "trivial-entropy" -> Trivial.protocol_entropy
  | "full-exchange" -> Trivial.protocol_full_exchange
  | "one-round" -> One_round_hash.protocol ()
  | "basic" -> Basic_intersection.protocol ~failure:1e-3
  | "bucket" -> Bucket_protocol.protocol ~k ()
  | "tree-r2" -> Tree_protocol.protocol ~r:2 ~k ()
  | "tree-r3" -> Tree_protocol.protocol ~r:3 ~k ()
  | "tree-log-star" -> Tree_protocol.protocol_log_star ~k ()
  | "verified-tree" -> Verified.protocol (Tree_protocol.protocol_log_star ~k ())
  | name -> invalid_arg ("Regress: unknown protocol " ^ name ^ " (known: " ^ String.concat ", " protocol_names ^ ")")

(* The enumerative codec's bignum decode is super-linear in k (the
   combinatorial-number-system unranking), so its cells stay small; every
   other protocol runs the full sweep. *)
let k_cap ~name = match name with "trivial-entropy" -> 256 | _ -> max_int

(* Fixed rep counts per k keep the measured loop deterministic (reps is
   part of the cell, so two runs of the same config always time the same
   number of executions and amortize warm-up identically). *)
let reps_for k = if k <= 64 then 40 else if k <= 256 then 16 else if k <= 1024 then 6 else 2

let default =
  { seed = 2014; universe_bits = 20; trials = 3; ks = [ 64; 1024; 4096 ]; protocols = protocol_names }

let smoke = { default with ks = [ 64 ]; trials = 2 }

let run_cell ~seed ~universe_bits ~trials ~name ~k =
  let universe = 1 lsl universe_bits in
  let protocol = protocol_of ~name ~k in
  let stream =
    Engine.Seed_stream.create ~base:seed ~label:(Printf.sprintf "regress/%s/k%d" name k)
  in
  let pairs =
    Array.init trials (fun i ->
        let rng = Engine.Seed_stream.trial_rng stream (i + 1) in
        Setgen.pair_with_overlap
          (Prng.Rng.with_label rng "workload")
          ~universe ~size_s:k ~size_t:k ~overlap:(k / 2))
  in
  let run_trial i =
    let rng = Engine.Seed_stream.trial_rng stream (i + 1) in
    let pair = pairs.(i) in
    protocol.Protocol.run
      (Prng.Rng.with_label rng "run")
      ~universe pair.Setgen.s pair.Setgen.t
  in
  (* Deterministic pass: exact cost fields, summed across trials. *)
  let total_bits = ref 0 and messages = ref 0 and rounds = ref 0 in
  for i = 0 to trials - 1 do
    let outcome = run_trial i in
    total_bits := !total_bits + outcome.Protocol.cost.Commsim.Cost.total_bits;
    messages := !messages + outcome.Protocol.cost.Commsim.Cost.messages;
    rounds := !rounds + outcome.Protocol.cost.Commsim.Cost.rounds
  done;
  (* Timed pass: [reps] sweeps over the same trials.  The deterministic
     pass above doubles as warm-up (codec caches hot, buffers pooled). *)
  let reps = reps_for k in
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    for i = 0 to trials - 1 do
      ignore (run_trial i)
    done
  done;
  let t1 = Unix.gettimeofday () in
  let a1 = Gc.allocated_bytes () in
  let runs = float_of_int (reps * trials) in
  {
    protocol = name;
    k;
    trials;
    reps;
    ns_per_run = (t1 -. t0) *. 1e9 /. runs;
    alloc_bytes_per_run = (a1 -. a0) /. runs;
    total_bits = !total_bits;
    messages = !messages;
    rounds = !rounds;
  }

let run (config : config) : report =
  let cells =
    List.concat_map
      (fun name ->
        List.filter_map
          (fun k ->
            if k > k_cap ~name then None
            else
              Some
                (run_cell ~seed:config.seed ~universe_bits:config.universe_bits
                   ~trials:config.trials ~name ~k))
          config.ks)
      config.protocols
  in
  {
    seed = config.seed;
    universe_bits = config.universe_bits;
    trials = config.trials;
    ks = config.ks;
    cells;
  }

let cell_json c =
  Stats.Json.Obj
    [
      ("protocol", Stats.Json.Str c.protocol);
      ("k", Stats.Json.Int c.k);
      ("trials", Stats.Json.Int c.trials);
      ("reps", Stats.Json.Int c.reps);
      ("ns_per_run", Stats.Json.Float c.ns_per_run);
      ("alloc_bytes_per_run", Stats.Json.Float c.alloc_bytes_per_run);
      ("total_bits", Stats.Json.Int c.total_bits);
      ("messages", Stats.Json.Int c.messages);
      ("rounds", Stats.Json.Int c.rounds);
    ]

let to_json (report : report) =
  Stats.Json.Obj
    [
      ("bench", Stats.Json.Str "hotpath");
      ("seed", Stats.Json.Int report.seed);
      ("universe_bits", Stats.Json.Int report.universe_bits);
      ("trials", Stats.Json.Int report.trials);
      ("ks", Stats.Json.List (List.map (fun k -> Stats.Json.Int k) report.ks));
      ("cells", Stats.Json.List (List.map cell_json report.cells));
    ]

(* Timings stripped: what two runs of the same config must agree on, byte
   for byte (the tier-1 determinism gate cmps two of these). *)
let deterministic_json (report : report) =
  Stats.Json.Obj
    [
      ("bench", Stats.Json.Str "hotpath-deterministic");
      ("seed", Stats.Json.Int report.seed);
      ("universe_bits", Stats.Json.Int report.universe_bits);
      ("trials", Stats.Json.Int report.trials);
      ( "cells",
        Stats.Json.List
          (List.map
             (fun c ->
               Stats.Json.Obj
                 [
                   ("protocol", Stats.Json.Str c.protocol);
                   ("k", Stats.Json.Int c.k);
                   ("trials", Stats.Json.Int c.trials);
                   ("total_bits", Stats.Json.Int c.total_bits);
                   ("messages", Stats.Json.Int c.messages);
                   ("rounds", Stats.Json.Int c.rounds);
                 ])
             report.cells) );
    ]

let summary (report : report) =
  let table =
    Stats.Table.create ~title:"Hot-path bench (ns/run, bytes allocated/run, exact bits)"
      ~columns:[ "protocol"; "k"; "ns/run"; "alloc B/run"; "bits"; "msgs"; "rounds" ]
  in
  List.iter
    (fun c ->
      Stats.Table.add_row table
        [
          c.protocol;
          string_of_int c.k;
          Stats.Table.cell_float c.ns_per_run;
          Stats.Table.cell_float c.alloc_bytes_per_run;
          string_of_int c.total_bits;
          string_of_int c.messages;
          string_of_int c.rounds;
        ])
    report.cells;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Stats.Table.render table);
  Buffer.contents buf

(* ---------- baseline comparison ---------- *)

type violation = { cell : string; field : string; baseline : float; current : float }

let violation_message v =
  Printf.sprintf "%s: %s baseline %.0f, current %.0f" v.cell v.field v.baseline v.current

(* Pull the baseline cells out of a parsed BENCH_hotpath.json. *)
let baseline_cells json =
  let open Stats.Json in
  match member "cells" json with
  | Some (List cells) ->
      Ok
        (List.filter_map
           (fun cell ->
             match
               ( Option.bind (member "protocol" cell) to_string_opt,
                 Option.bind (member "k" cell) to_int_opt )
             with
             | Some protocol, Some k -> Some ((protocol, k), cell)
             | _ -> None)
           cells)
  | _ -> Error "baseline: missing cells array"

(* Compare a fresh report against a committed baseline.  Deterministic
   fields (bits, messages, rounds, trials) must match exactly; ns/run and
   alloc-bytes/run may regress by at most [tolerance] (a fraction: 0.5
   allows 1.5x the baseline).  Cells absent from the baseline are skipped,
   so a smoke run checks only the cells it shares with the committed
   sweep. *)
let compare_baseline ~tolerance (report : report) json =
  match baseline_cells json with
  | Error e -> Error e
  | Ok base ->
      let violations = ref [] in
      let compared = ref 0 in
      List.iter
        (fun c ->
          match List.assoc_opt (c.protocol, c.k) base with
          | None -> ()
          | Some bcell ->
              incr compared;
              let cell = Printf.sprintf "%s k=%d" c.protocol c.k in
              let int_field name current =
                match Option.bind (Stats.Json.member name bcell) Stats.Json.to_int_opt with
                | Some b when b <> current ->
                    violations :=
                      { cell; field = name; baseline = float_of_int b; current = float_of_int current }
                      :: !violations
                | Some _ -> ()
                | None ->
                    violations := { cell; field = name ^ " (missing)"; baseline = nan; current = float_of_int current } :: !violations
              in
              int_field "total_bits" c.total_bits;
              int_field "messages" c.messages;
              int_field "rounds" c.rounds;
              int_field "trials" c.trials;
              let timing_field name current =
                match Option.bind (Stats.Json.member name bcell) Stats.Json.to_float_opt with
                | Some b when Float.is_finite b && b > 0.0 && current > b *. (1.0 +. tolerance) ->
                    violations := { cell; field = name; baseline = b; current } :: !violations
                | _ -> ()
              in
              timing_field "ns_per_run" c.ns_per_run;
              timing_field "alloc_bytes_per_run" c.alloc_bytes_per_run)
        report.cells;
      Ok (!compared, List.rev !violations)

