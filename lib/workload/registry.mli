(** The hypothesis-driven experiment registry.

    Every measured result in this repository lives as a numbered
    [experiments/NNN-slug.md] file: structured frontmatter (id, lifecycle
    status, hypothesis, theorem anchor, reproduce command, gating
    artifact) over a free-form markdown body.  This module parses those
    files and machine-checks the invariants that keep the collection
    honest as it grows:

    - ids are {e dense} (1..N) and unique, and each file's [NNN-slug]
      name matches its frontmatter;
    - every reproduce/smoke command names an executable target that still
      exists (and, for [intersect_cli], a subcommand the CLI still
      registers) — stale commands are found by the gate, not by a reader;
    - every declared [BENCH_*.json] artifact exists, carries the JSON
      keys the entry gates on, and passes its {!Schemas} mode;
    - every committed [BENCH_*.json] is claimed by some live entry, and
      the [EXPERIMENTS.md] index and [README.md] cross-links resolve;
    - every [Complete] entry is re-derivable: it either declares a
      seconds-scale self-gating smoke command or opts out explicitly
      ([regen: none]).  [Superseded] entries are exempt from all
      regeneration and artifact checks — they document history.

    Parsing and verification are pure over an {!env} of read callbacks,
    so the test suite can drive them from in-memory fixtures; report
    order is deterministic (entries sorted by id, violations in check
    order), so two runs over the same tree are byte-identical. *)

(** The lifecycle. [Draft] states a hypothesis, [Running] has a harness
    but no accepted numbers, [Complete] is measured and regenerable,
    [Superseded] records a result a later entry replaced. *)
type status = Draft | Running | Complete | Superseded

(** How [experiments verify --regen-smoke] treats a [Complete] entry's
    smoke command: [Gate] runs it once and requires exit 0 (the command
    is self-gating — conformance tiers, baseline comparisons); [Diff]
    runs it twice and additionally requires byte-identical stdout (for
    table printers with no internal gate); [No_regen] opts out. *)
type regen = Gate | Diff | No_regen

type entry = {
  id : int;  (** dense, 1-based; equals the filename's [NNN] prefix *)
  slug : string;  (** the filename's [slug] part, [[a-z0-9-]+] *)
  file : string;  (** repo-relative path, [experiments/NNN-slug.md] *)
  title : string;
  status : status;
  anchor : string;  (** theorem / paper-section anchor, e.g. ["Theorem 3.1"] *)
  roadmap : string;  (** ROADMAP linkage, e.g. ["item-1"], ["seed"], ["pr-5"] *)
  index_tag : string option;  (** legacy EXPERIMENTS.md tag ([T1], [R5], ...) *)
  hypothesis : string;  (** one line; the claim under test *)
  reproduce : string;  (** full regeneration command *)
  smoke : string option;  (** seconds-scale variant run by the regen gate *)
  regen : regen;
  artifact : string option;  (** committed [BENCH_*.json] this entry gates *)
  artifact_keys : string list;  (** top-level keys that must exist in it *)
  json_check : string option;  (** {!Schemas} bench mode the artifact must pass *)
  body : string;  (** the markdown below the frontmatter *)
}

(** A registry: entries sorted by id. *)
type t = { entries : entry list }

(** One check failure. [file] is the offending entry's path when the
    violation is entry-scoped ([None] for registry-wide checks). *)
type violation = { file : string option; what : string }

val status_name : status -> string
val status_of_string : string -> (status, string) result
val regen_name : regen -> string

(** [parse ~file contents] parses one [NNN-slug.md] file: a [---]-fenced
    frontmatter of [key: value] lines (unknown and duplicate keys are
    errors) followed by the body.  [file] must be the repo-relative path;
    its basename supplies [slug] and is checked against [id] by
    {!verify}, not here. *)
val parse : file:string -> string -> (entry, string) result

(** Canonical frontmatter rendering, in the field order {!parse} accepts
    and [_template.md] documents.  [parse (front_matter_of e ^ body)]
    round-trips. *)
val front_matter_of : entry -> string

(** Build a registry from [(file, contents)] pairs (any order; entries
    come back sorted by id).  Unparseable files surface as violations and
    are dropped from the registry, so verification can report every
    problem in one pass. *)
val of_sources : (string * string) list -> t * violation list

(** Load [root/experiments/*.md] from disk ([_template.md] and
    [README.md] are not entries and are skipped).  Directory order is
    sorted, so loading is deterministic. *)
val load : root:string -> t * violation list

(** Read callbacks for {!verify}: [read_file] takes a repo-relative path;
    [list_root] lists repo-root filenames (for [BENCH_*.json]
    discovery). *)
type env = { read_file : string -> string option; list_root : unit -> string list }

(** The real-filesystem {!env} rooted at [root]. *)
val repo_env : root:string -> env

(** Run every registry check.  [cli_subcommands] is the authoritative
    list of [intersect_cli] subcommand names (the CLI passes its own
    command list, so a renamed subcommand invalidates the entries that
    quote it).  Returns [[]] iff the registry is coherent. *)
val verify : env:env -> cli_subcommands:string list -> t -> violation list

(** The deduplicated regeneration plan: one [(command, mode, ids)] triple
    per distinct smoke command over the [Complete], non-opted-out
    entries, in first-use id order.  Entries sharing a command (the seed
    tables all regenerate via one [bench/main.exe --quick] run) are
    checked once. *)
val regen_plan : t -> (string * regen * int list) list

(** The [experiments.json] index: a pure function of the registry, keys
    in fixed order, optional fields emitted as [null] — byte-identical
    across exports. *)
val to_json : t -> Stats.Json.t

(** {!to_json}, pretty-printed with a trailing newline — exactly the
    committed [experiments.json] bytes. *)
val export : t -> string

(** Status counts [(Draft, Running, Complete, Superseded)]. *)
val census : t -> int * int * int * int

(** The [experiments list] table: id, status, anchor, artifact, title. *)
val table : t -> Stats.Table.t
