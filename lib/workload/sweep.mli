(** The mega-sweep: a matrix run over protocol × k × fault-plan cells
    streaming [10^6+] seeded trials per invocation, for rare-event
    conformance at scales the 120-trial {!Conform} tier cannot reach.

    Two cell families share the runner:

    - {b clean} cells replay the {!Conform} registry (same promise-range
      instance distribution, same statement envelopes) at mega-trial
      scale, gating the observed failures against the paper's
      [1/poly(k)] bound via the one-sided 95% Wilson lower bound;
    - {b faulted} cells replay the {!Soak} semantics ({!Resilient}
      wrapper over an adversarial {!Commsim.Faults} link) and gate on
      the wrapper's rare-event bound
      [failures = 0 || rate <= attempts · 2^-check_bits].

    Affordability comes from the engine layer: trials stream through
    {!Engine.Pool.fold} into per-chunk accumulators (three ints plus a
    mergeable {!Obsv.Sketch} — never a per-trial list), protocol
    instances are memoized per domain in an {!Engine.Instance_cache},
    and codec buffers ride the {!Bitio.Pool} arenas.  All merges are
    exact (integer adds, max, bucket-pointwise sketch addition), so the
    report and its JSON are byte-identical at every domain count. *)

type config = {
  seed : int;
  trials_per_cell : int;
  universe_bits : int;  (** universe [2^universe_bits] *)
  protocols : string list;  (** clean cells: subset of {!Conform.entry_names} *)
  ks : int list;  (** clean-cell set sizes *)
  fault_protocols : string list;  (** faulted cells: subset of {!Soak.protocol_names} *)
  fault_ks : int list;  (** faulted-cell set sizes *)
  plans : (string * Commsim.Faults.link) list;  (** from {!Soak.plan_catalogue} *)
  budget_attempts : int;  (** {!Resilient} retry budget (faulted cells) *)
  check_bits : int;  (** initial fingerprint width (faulted cells) *)
}

(** 16 cells × 65_000 trials = 1_040_000 trials: clean
    [{eq, one-round, bucket, tree-r2} × {16, 64, 256}] plus faulted
    [{trivial, bucket} × {24} × {flip-1e-3, drop-2e-2}]. *)
val default : config

(** Seconds-scale: 3 cells × 400 trials, for the tier1 smoke gate. *)
val smoke : config

(** Trials the matrix will run ([cells × trials_per_cell]). *)
val total_trials : config -> int

(** The cell's bits distribution, read off its quantile sketch: the mean
    is exact ([sum/count] over ints), quantiles are sketch bucket upper
    bounds (1/16 relative error). *)
type bits_summary = {
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  min_bits : int;
  max_bits : int;
}

type cell = {
  kind : string;  (** ["clean"] or ["faulted"] *)
  protocol : string;
  plan : string option;  (** faulted cells only *)
  k : int;
  trials : int;
  failures : int;  (** trials whose output was not exactly [S ∩ T] *)
  degraded : int;  (** faulted cells: trials that fell back; clean: 0 *)
  error_limit : float;  (** the statement's (or wrapper's) error bound *)
  error_lower95 : float;  (** Wilson 95% lower bound on the true rate *)
  error_upper95 : float;  (** Wilson 95% upper bound on the true rate *)
  error_ok : bool;
  rounds_max : int;
  rounds_limit : int option;  (** clean cells only *)
  rounds_ok : bool;
  bits : bits_summary;
  bits_limit : float option;  (** clean cells: envelope on the mean *)
  bits_ok : bool;
  pass : bool;
}

type report = { config : config; cells : cell list; total_trials : int; pass : bool }

(** [clean_cell ?domains config entry ~k] runs one clean cell against an
    arbitrary {!Conform.entry} — exposed so tests can fabricate an entry
    whose envelope the trials must violate and assert the sweep flags it
    ([pass = false]). *)
val clean_cell : ?domains:int -> config -> Conform.entry -> k:int -> cell

(** [run ?domains ?sink config] runs the whole matrix.  With a [sink],
    each finished cell is recorded via
    {!Telemetry.record_sweep_cell} — sequentially, in matrix order, so
    the telemetry stream is also domain-count independent. *)
val run : ?domains:int -> ?sink:Telemetry.sink -> config -> report

(** Marker field ["bench": "sweep"] (checked by
    [json_check --bench-sweep]). *)
val to_json : ?reproduce:string -> report -> Stats.Json.t

(** Human-readable cell table. *)
val summary : report -> string
