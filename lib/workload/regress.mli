(** Hot-path regression bench over the registered two-party protocols.

    Each cell is one [(protocol, k)] pair run on seeded workloads:
    wall-clock ns/run and allocation bytes/run are the tracked performance
    trajectory (BENCH_hotpath.json), while total bits, message and round
    counts are deterministic and must reproduce byte-for-byte for a fixed
    seed — the transcript-invariance contract every perf PR is gated on. *)

type cell = {
  protocol : string;
  k : int;
  trials : int;
  reps : int;  (** timed sweeps over the trial set; fixed per [k] *)
  ns_per_run : float;
  alloc_bytes_per_run : float;
  total_bits : int;  (** summed over the seeded trials — deterministic *)
  messages : int;  (** summed over the seeded trials — deterministic *)
  rounds : int;  (** summed over the seeded trials — deterministic *)
}

type report = {
  seed : int;
  universe_bits : int;
  trials : int;
  ks : int list;
  cells : cell list;
}

type config = {
  seed : int;
  universe_bits : int;
  trials : int;
  ks : int list;
  protocols : string list;
}

(** The registered suite, in run order. *)
val protocol_names : string list

(** The protocol a suite name denotes, at its benchmarked
    parameterization.  Raises [Invalid_argument] on unknown names.  Used
    by the hot-path tests to run the exact registered suite. *)
val protocol_of : name:string -> k:int -> Intersect.Protocol.t

(** Full sweep: every registered protocol at k ∈ 64, 1024, 4096 (the
    enumerative-codec cell is capped at k = 256; its bignum unranking is
    super-linear in k). *)
val default : config

(** Seconds-scale subset (k = 64 only) for the tier-1 gate. *)
val smoke : config

(** Run the configured sweep.  Raises [Invalid_argument] on unknown
    protocol names. *)
val run : config -> report

(** The BENCH_hotpath.json document. *)
val to_json : report -> Stats.Json.t

(** Only the seeded fields (bits, messages, rounds, counts): two runs of
    the same config must produce byte-identical renderings of this. *)
val deterministic_json : report -> Stats.Json.t

val summary : report -> string

type violation = { cell : string; field : string; baseline : float; current : float }

val violation_message : violation -> string

(** [compare_baseline ~tolerance report baseline_json] checks [report]
    against a parsed committed baseline: deterministic fields must match
    exactly; [ns_per_run] and [alloc_bytes_per_run] may exceed the
    baseline by at most a factor of [1 + tolerance].  Returns the number
    of compared cells (cells missing from the baseline are skipped, so
    smoke subsets compare cleanly) and the violations. *)
val compare_baseline :
  tolerance:float -> report -> Stats.Json.t -> (int * violation list, string) result
