type campaign = {
  link : Commsim.Faults.link;
  interrupt : bool;
  deadline_override : int option;
}

type config = {
  seed : int;
  trials : int;
  k : int;
  universe_bits : int;
  overlap : int;
  protocols : string list;
  campaigns : (string * campaign) list;
  deadline_bits : int;
  rung_attempts : int;
  check_bits0 : int;
  backoff_base : int;
  backoff_cap : int;
}

let campaign_catalogue =
  let open Commsim.Faults in
  let steady link = { link; interrupt = false; deadline_override = None } in
  [
    ("clean", steady clean_link);
    ("corruption-storm", steady { clean_link with flip = 2e-3; trunc = 1e-2 });
    ("stall-burst", steady (dropping 0.12));
    ("flap", steady { clean_link with drop = 5e-2; dup = 5e-2 });
    ( "crash-resume",
      {
        link = { flip = 5e-4; trunc = 5e-3; dup = 1e-2; drop = 4e-2 };
        interrupt = true;
        deadline_override = None;
      } );
    ("stall-crash", { link = dropping 0.12; interrupt = true; deadline_override = None });
    ( "deadline-squeeze",
      { link = dropping 0.15; interrupt = false; deadline_override = Some 2_500 } );
  ]

let default =
  {
    seed = 2014;
    trials = 200;
    k = 24;
    universe_bits = 20;
    overlap = 12;
    protocols = [ "trivial"; "tree"; "bucket" ];
    campaigns = campaign_catalogue;
    deadline_bits = 400_000;
    rung_attempts = 3;
    check_bits0 = 32;
    backoff_base = 64;
    backoff_cap = 4096;
  }

let smoke =
  {
    default with
    trials = 12;
    k = 16;
    overlap = 8;
    protocols = [ "trivial"; "tree" ];
    campaigns =
      List.filter
        (fun (name, _) ->
          List.mem name [ "corruption-storm"; "stall-burst"; "crash-resume"; "deadline-squeeze" ])
        campaign_catalogue;
    rung_attempts = 2;
    backoff_base = 32;
  }

type cell = {
  protocol : string;
  campaign : string;
  trials : int;
  completed : int;
  degraded : int;
  failed_safe : int;
  resumed : int;  (* trials where an interrupt/restore cycle was exercised *)
  resumed_identical : int;  (* ... and replayed byte-identically *)
  wrong : int;  (* exact results (completed/degraded) that were not S ∩ T *)
  attempts_total : int;
  rejected : int;
  stalled : int;
  crashed : int;
  deadline : int;
  mean_spent_bits : float;
  mean_backoff_ticks : float;
  wasted_bits_total : int;
  mean_wasted_bits : float;
  recovered : int;  (* sessions that completed after >= 1 failure *)
  mean_recovery_ticks : float;  (* event time burned before the winning attempt *)
}

type report = { config : config; cells : cell list }

let session_config (config : config) (camp : campaign) ~protocol ~plan ~seed =
  {
    Session.Machine.seed;
    protocol;
    k = config.k;
    universe_bits = config.universe_bits;
    plan;
    deadline_bits =
      (match camp.deadline_override with Some d -> d | None -> config.deadline_bits);
    rung_attempts = config.rung_attempts;
    check_bits0 = config.check_bits0;
    backoff_base = config.backoff_base;
    backoff_cap = config.backoff_cap;
  }

(* What one trial contributes to its cell.  [resumed]/[identical] describe
   the interrupt/restore cycle (exercised only in interrupting campaigns
   and only when the session survived past its first step). *)
type obs = {
  report : Session.Machine.report;
  exact_wrong : bool;
  did_resume : bool;
  identical : bool;
  post_mortem : Stats.Json.t option;
      (* flight-recorder dump; assembled only under telemetry, and only
         for sessions that did not end [Completed] *)
}

(* Everything the resumed run must replay bit-for-bit.  [resumes] is
   excluded by construction: it is the one field that legitimately differs
   between the interrupted and the uninterrupted execution. *)
let replay_view (r : Session.Machine.report) =
  ( Session.Machine.outcome_name r.Session.Machine.outcome,
    Session.Machine.result_of r.Session.Machine.outcome,
    r.Session.Machine.attempts,
    List.map
      (fun (k, d) -> (Session.Machine.kind_name k, d))
      r.Session.Machine.failures,
    r.Session.Machine.final_width,
    r.Session.Machine.ledger )

let trial ?(flight = false) (config : config) (camp : campaign) ~protocol ~stream i =
  let rng = Engine.Seed_stream.trial_rng stream i in
  let universe = 1 lsl config.universe_bits in
  let pair =
    Setgen.pair_with_overlap
      (Prng.Rng.with_label rng "inputs")
      ~universe ~size_s:config.k ~size_t:config.k ~overlap:config.overlap
  in
  let plan =
    Commsim.Faults.uniform
      ~seed:(Prng.Rng.bits (Prng.Rng.with_label rng "plan") ~width:30)
      camp.link
  in
  let session_seed = Prng.Rng.bits (Prng.Rng.with_label rng "session") ~width:30 in
  let cfg = session_config config camp ~protocol ~plan ~seed:session_seed in
  let s = pair.Setgen.s and t = pair.Setgen.t in
  let checkpoints = ref [] in
  let on_checkpoint ck = checkpoints := ck :: !checkpoints in
  let recorder = if flight then Obsv.Recorder.create () else Obsv.Recorder.disabled in
  let report =
    Obsv.Recorder.with_recorder recorder (fun () -> Session.Machine.run ~on_checkpoint cfg ~s ~t)
  in
  let did_resume, identical, report =
    if not camp.interrupt then (false, false, report)
    else
      match List.rev !checkpoints with
      | [] -> (false, false, report)
      | boundaries ->
          (* Crash mid-session at a seeded checkpoint boundary: serialize the
             snapshot, reparse it, and resume.  The resumed report must
             replay the uninterrupted one exactly. *)
          let pick =
            Prng.Rng.int (Prng.Rng.with_label rng "interrupt") (List.length boundaries)
          in
          let snapshot = Session.Checkpoint.to_string (List.nth boundaries pick) in
          let continued =
            match Session.Checkpoint.of_string snapshot with
            | Error _ -> None
            | Ok ck -> (
                match Session.Machine.resume cfg ck ~s ~t with
                | Error _ -> None
                | Ok r -> Some r)
          in
          (match continued with
          | None -> (true, false, report)
          | Some r -> (true, replay_view r = replay_view report, r))
  in
  let truth = Iset.inter s t in
  let exact_wrong =
    match Session.Machine.result_of report.Session.Machine.outcome with
    | Some result -> not (Iset.equal result truth)
    | None -> false
  in
  (* Post-mortems only for non-Completed endings: the happy path never
     pays for dump assembly (the recorder itself is a fixed ring). *)
  let post_mortem =
    if not flight then None
    else
      match report.Session.Machine.outcome with
      | Session.Machine.Completed _ -> None
      | o ->
          Some
            (Obsv.Recorder.post_mortem_json ~outcome:(Session.Machine.outcome_name o) recorder)
  in
  { report; exact_wrong; did_resume; identical; post_mortem }

(* Per-cell cap on harvested post-mortems: the dumps are diagnostic
   samples, not a census, and the cap keeps the telemetry stream bounded
   under a pathological campaign. *)
let postmortem_cap = 2

let run_cell ?domains ?sink (config : config) (camp : campaign) ~protocol ~campaign_name =
  let stream =
    Engine.Seed_stream.create ~base:config.seed
      ~label:(Printf.sprintf "chaos/%s/%s" protocol campaign_name)
  in
  let flight = sink <> None in
  let obs =
    Array.to_list
      (Engine.Pool.map ?domains ~trials:config.trials (fun i ->
           trial ~flight config camp ~protocol ~stream (i + 1)))
  in
  (* Telemetry aggregation is sequential and in trial order (after the
     parallel map), so the sink's stream is byte-identical at any domain
     count. *)
  (match sink with
  | None -> ()
  | Some sink ->
      let deadline_bits =
        match camp.deadline_override with Some d -> d | None -> config.deadline_bits
      in
      let harvested = ref 0 in
      List.iter
        (fun o ->
          Telemetry.record_report sink ~deadline_bits o.report ~wrong:o.exact_wrong;
          match o.post_mortem with
          | Some dump when !harvested < postmortem_cap ->
              incr harvested;
              Telemetry.add_postmortem sink dump
          | _ -> ())
        obs;
      ignore (Telemetry.snapshot sink));
  let reports = List.map (fun o -> o.report) obs in
  let count f = List.length (List.filter f reports) in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  let mean f =
    float_of_int (sum f) /. float_of_int (max 1 (List.length reports))
  in
  let kind_count k =
    sum (fun (r : Session.Machine.report) ->
        List.length
          (List.filter (fun (kind, _) -> kind = k) r.Session.Machine.failures))
  in
  let is_outcome name (r : Session.Machine.report) =
    Session.Machine.outcome_name r.Session.Machine.outcome = name
  in
  let recovered_reports =
    List.filter
      (fun (r : Session.Machine.report) ->
        is_outcome "completed" r && r.Session.Machine.failures <> [])
      reports
  in
  let recovered = List.length recovered_reports in
  let recovery_ticks (r : Session.Machine.report) =
    r.Session.Machine.ledger.Session.Machine.wasted_bits
    + r.Session.Machine.ledger.Session.Machine.backoff_ticks
  in
  {
    protocol;
    campaign = campaign_name;
    trials = config.trials;
    completed = count (is_outcome "completed");
    degraded = count (is_outcome "degraded");
    failed_safe = count (is_outcome "failed_safe");
    resumed = List.length (List.filter (fun o -> o.did_resume) obs);
    resumed_identical = List.length (List.filter (fun o -> o.identical) obs);
    wrong = List.length (List.filter (fun o -> o.exact_wrong) obs);
    attempts_total = sum (fun r -> r.Session.Machine.attempts);
    rejected = kind_count Session.Machine.Rejected;
    stalled = kind_count Session.Machine.Stalled;
    crashed = kind_count Session.Machine.Crashed;
    deadline = kind_count Session.Machine.Deadline;
    mean_spent_bits = mean (fun r -> r.Session.Machine.ledger.Session.Machine.spent_bits);
    mean_backoff_ticks =
      mean (fun r -> r.Session.Machine.ledger.Session.Machine.backoff_ticks);
    wasted_bits_total =
      sum (fun r -> r.Session.Machine.ledger.Session.Machine.wasted_bits);
    mean_wasted_bits =
      mean (fun r -> r.Session.Machine.ledger.Session.Machine.wasted_bits);
    recovered;
    mean_recovery_ticks =
      (if recovered = 0 then 0.0
       else
         float_of_int (List.fold_left (fun acc r -> acc + recovery_ticks r) 0 recovered_reports)
         /. float_of_int recovered);
  }

(* The campaign matrix in execution order, for callers (the CLI's [top])
   that want to drive cells one at a time. *)
let cells_of (config : config) =
  List.concat_map
    (fun protocol ->
      List.map (fun (campaign_name, camp) -> (protocol, campaign_name, camp)) config.campaigns)
    config.protocols

let run ?domains ?sink (config : config) =
  if config.trials < 1 then invalid_arg "Chaos.run: trials";
  if config.overlap > config.k then invalid_arg "Chaos.run: overlap > k";
  let cells =
    List.map
      (fun (protocol, campaign_name, camp) ->
        run_cell ?domains ?sink config camp ~protocol ~campaign_name)
      (cells_of config)
  in
  { config; cells }

let json_of_link (l : Commsim.Faults.link) =
  Stats.Json.Obj
    [
      ("flip", Stats.Json.Float l.Commsim.Faults.flip);
      ("trunc", Stats.Json.Float l.Commsim.Faults.trunc);
      ("dup", Stats.Json.Float l.Commsim.Faults.dup);
      ("drop", Stats.Json.Float l.Commsim.Faults.drop);
    ]

let json_of_campaign (c : campaign) =
  Stats.Json.Obj
    ([ ("link", json_of_link c.link); ("interrupt", Stats.Json.Bool c.interrupt) ]
    @
    match c.deadline_override with
    | None -> []
    | Some d -> [ ("deadline_bits", Stats.Json.Int d) ])

let json_of_cell c =
  Stats.Json.Obj
    [
      ("protocol", Stats.Json.Str c.protocol);
      ("campaign", Stats.Json.Str c.campaign);
      ("trials", Stats.Json.Int c.trials);
      ("completed", Stats.Json.Int c.completed);
      ("degraded", Stats.Json.Int c.degraded);
      ("failed_safe", Stats.Json.Int c.failed_safe);
      ("resumed", Stats.Json.Int c.resumed);
      ("resumed_identical", Stats.Json.Int c.resumed_identical);
      ("wrong", Stats.Json.Int c.wrong);
      ("attempts_total", Stats.Json.Int c.attempts_total);
      ("rejected", Stats.Json.Int c.rejected);
      ("stalled", Stats.Json.Int c.stalled);
      ("crashed", Stats.Json.Int c.crashed);
      ("deadline", Stats.Json.Int c.deadline);
      ("mean_spent_bits", Stats.Json.Float c.mean_spent_bits);
      ("mean_backoff_ticks", Stats.Json.Float c.mean_backoff_ticks);
      ("wasted_bits_total", Stats.Json.Int c.wasted_bits_total);
      ("mean_wasted_bits", Stats.Json.Float c.mean_wasted_bits);
      ("recovered", Stats.Json.Int c.recovered);
      ("mean_recovery_ticks", Stats.Json.Float c.mean_recovery_ticks);
    ]

let to_json ?reproduce report =
  let c = report.config in
  Stats.Json.Obj
    (List.concat
       [
         [ ("bench", Stats.Json.Str "chaos") ];
         (match reproduce with Some cmd -> [ ("reproduce", Stats.Json.Str cmd) ] | None -> []);
         [
           ( "config",
             Stats.Json.Obj
               [
                 ("seed", Stats.Json.Int c.seed);
                 ("trials", Stats.Json.Int c.trials);
                 ("k", Stats.Json.Int c.k);
                 ("universe_bits", Stats.Json.Int c.universe_bits);
                 ("overlap", Stats.Json.Int c.overlap);
                 ( "protocols",
                   Stats.Json.List (List.map (fun p -> Stats.Json.Str p) c.protocols) );
                 ( "campaigns",
                   Stats.Json.Obj
                     (List.map (fun (name, camp) -> (name, json_of_campaign camp)) c.campaigns)
                 );
                 ("deadline_bits", Stats.Json.Int c.deadline_bits);
                 ("rung_attempts", Stats.Json.Int c.rung_attempts);
                 ("check_bits0", Stats.Json.Int c.check_bits0);
                 ("backoff_base", Stats.Json.Int c.backoff_base);
                 ("backoff_cap", Stats.Json.Int c.backoff_cap);
               ] );
           ("cells", Stats.Json.List (List.map json_of_cell report.cells));
         ];
       ])

(* The chaos invariant, as a checkable predicate: every session ended in a
   structured outcome (the taxonomy partitions the trials), no exact result
   was wrong, and every exercised resume replayed identically. *)
let invariant_violations report =
  List.concat_map
    (fun c ->
      let where = Printf.sprintf "%s/%s" c.protocol c.campaign in
      List.concat
        [
          (if c.completed + c.degraded + c.failed_safe <> c.trials then
             [
               Printf.sprintf "%s: outcomes %d+%d+%d do not partition %d trials" where
                 c.completed c.degraded c.failed_safe c.trials;
             ]
           else []);
          (if c.wrong > 0 then
             [ Printf.sprintf "%s: %d wrong exact result(s)" where c.wrong ]
           else []);
          (if c.resumed_identical <> c.resumed then
             [
               Printf.sprintf "%s: %d of %d resumed session(s) diverged" where
                 (c.resumed - c.resumed_identical) c.resumed;
             ]
           else []);
        ])
    report.cells

let summary report =
  let table =
    Stats.Table.create ~title:"Chaos campaigns"
      ~columns:
        [
          "protocol";
          "campaign";
          "completed";
          "degraded";
          "failsafe";
          "resumed=id";
          "wrong";
          "att/trial";
          "waste/trial";
          "recovery";
        ]
  in
  List.iter
    (fun c ->
      Stats.Table.add_row table
        [
          c.protocol;
          c.campaign;
          Printf.sprintf "%d/%d" c.completed c.trials;
          string_of_int c.degraded;
          string_of_int c.failed_safe;
          Printf.sprintf "%d=%d" c.resumed c.resumed_identical;
          string_of_int c.wrong;
          Printf.sprintf "%.2f" (float_of_int c.attempts_total /. float_of_int c.trials);
          Printf.sprintf "%.0f" c.mean_wasted_bits;
          Printf.sprintf "%.0f" c.mean_recovery_ticks;
        ])
    report.cells;
  Stats.Table.render table
