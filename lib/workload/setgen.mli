(** Workload generators: pairs (and families) of sets with controlled size,
    overlap and skew.  All sets are sorted arrays of distinct elements of
    [\[0, universe)]. *)

type pair = { s : int array; t : int array }

(** [random_set rng ~universe ~size] draws a uniform [size]-subset.
    Requires [size <= universe]. *)
val random_set : Prng.Rng.t -> universe:int -> size:int -> int array

(** [pair_with_overlap rng ~universe ~size_s ~size_t ~overlap] draws [S] and
    [T] with [|S| = size_s], [|T| = size_t] and [|S ∩ T| = overlap]
    exactly.  Requires [overlap <= min size_s size_t] and
    [size_s + size_t - overlap <= universe]. *)
val pair_with_overlap :
  Prng.Rng.t -> universe:int -> size_s:int -> size_t:int -> overlap:int -> pair

(** [zipf_pair rng ~universe ~size ~exponent] draws both sets by sampling
    (without replacement) from a Zipf([exponent]) distribution over the
    universe, the shape of element popularity in text / database workloads;
    overlap emerges naturally from the shared head of the distribution. *)
val zipf_pair : Prng.Rng.t -> universe:int -> size:int -> exponent:float -> pair

(** [family_with_core rng ~universe ~players ~size ~core] draws [players]
    sets of [size] elements sharing a common core of [core] elements (the
    multi-party intersection is exactly that core whenever the private parts
    are disjoint from it, which the generator enforces). *)
val family_with_core :
  Prng.Rng.t -> universe:int -> players:int -> size:int -> core:int -> int array array

(** A named corner-case input with the universe it lives in. *)
type shape = { shape : string; universe : int; pair : pair }

(** [adversarial rng ~k] ([k >= 2]) draws the catalogue of shapes
    protocols historically get wrong: ["empty-both"], ["empty-s"],
    ["empty-t"], ["identical"] ([|S ∩ T| = k]), ["nested"] ([S ⊂ T]),
    ["singleton-equal"], ["singleton-disjoint"], ["disjoint"], and
    ["dense-universe"] ([n = 2k], no slack for universe reduction or
    bucketing).  Deterministic given the generator's root and [k]. *)
val adversarial : Prng.Rng.t -> k:int -> shape list

(** Ground-truth helpers on sorted arrays. *)
val intersect : int array -> int array -> int array

val union : int array -> int array -> int array
val is_sorted_set : int array -> bool
