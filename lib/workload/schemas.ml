(* One named checker per committed JSON artifact.  These used to live
   inside bin/json_check.ml; they moved here so the experiment registry
   can enforce "the artifact passes its json_check mode" with the exact
   code path the command-line validator runs. *)

module J = Stats.Json

let check_bench_hotpath input =
  let fail msg = Error ("bench-hotpath schema: " ^ msg) in
  let field name cell = Option.bind (J.member name cell) in
  match J.of_string input with
  | Error msg -> fail ("unparseable: " ^ msg)
  | Ok doc -> (
      if Option.bind (J.member "bench" doc) J.to_string_opt <> Some "hotpath" then
        fail "missing \"bench\": \"hotpath\" marker"
      else
        match Option.bind (J.member "cells" doc) J.to_list_opt with
        | None -> fail "missing \"cells\" list"
        | Some [] -> fail "empty \"cells\" list"
        | Some cells ->
            let last_k = Hashtbl.create 16 in
            let check_cell i cell =
              let where msg = Printf.sprintf "cell %d: %s" i msg in
              match Option.bind (J.member "protocol" cell) J.to_string_opt with
              | None -> Error (where "missing \"protocol\"")
              | Some protocol -> (
                  let int_field name = field name cell J.to_int_opt in
                  let float_field name = field name cell J.to_float_opt in
                  match
                    (int_field "k", float_field "ns_per_run", float_field "alloc_bytes_per_run")
                  with
                  | None, _, _ -> Error (where "missing \"k\"")
                  | _, None, _ | _, _, None -> Error (where "missing timing fields")
                  | Some k, Some ns, Some alloc ->
                      if ns <= 0.0 || alloc < 0.0 then Error (where "non-positive timings")
                      else if
                        List.exists
                          (fun name -> int_field name |> Option.fold ~none:true ~some:(fun v -> v <= 0))
                          [ "total_bits"; "messages"; "rounds" ]
                      then Error (where "deterministic fields missing or non-positive")
                      else if Hashtbl.find_opt last_k protocol |> Option.fold ~none:false ~some:(fun prev -> k <= prev)
                      then Error (where (Printf.sprintf "k not increasing for %S" protocol))
                      else begin
                        Hashtbl.replace last_k protocol k;
                        Ok ()
                      end)
            in
            List.to_seq cells
            |> Seq.fold_lefti
                 (fun acc i cell -> match acc with Error _ -> acc | Ok () -> check_cell i cell)
                 (Ok ()))

let check_bench_chaos input =
  let fail msg = Error ("bench-chaos schema: " ^ msg) in
  match J.of_string input with
  | Error msg -> fail ("unparseable: " ^ msg)
  | Ok doc -> (
      if Option.bind (J.member "bench" doc) J.to_string_opt <> Some "chaos" then
        fail "missing \"bench\": \"chaos\" marker"
      else
        match Option.bind (J.member "cells" doc) J.to_list_opt with
        | None -> fail "missing \"cells\" list"
        | Some [] -> fail "empty \"cells\" list"
        | Some cells ->
            let check_cell i cell =
              let where msg = Printf.sprintf "cell %d: %s" i msg in
              let str_field name = Option.bind (J.member name cell) J.to_string_opt in
              let int_field name = Option.bind (J.member name cell) J.to_int_opt in
              match (str_field "protocol", str_field "campaign") with
              | None, _ -> Error (where "missing \"protocol\"")
              | _, None -> Error (where "missing \"campaign\"")
              | Some _, Some _ -> (
                  let required =
                    [
                      "trials";
                      "completed";
                      "degraded";
                      "failed_safe";
                      "resumed";
                      "resumed_identical";
                      "wrong";
                      "attempts_total";
                      "rejected";
                      "stalled";
                      "crashed";
                      "deadline";
                    ]
                  in
                  match
                    List.find_opt
                      (fun name ->
                        match int_field name with None -> true | Some v -> v < 0)
                      required
                  with
                  | Some name ->
                      Error (where (Printf.sprintf "missing or negative %S" name))
                  | None ->
                      let get name = Option.get (int_field name) in
                      if get "trials" < 1 then Error (where "fewer than 1 trial")
                      else if
                        get "completed" + get "degraded" + get "failed_safe" <> get "trials"
                      then Error (where "outcome counts do not partition the trials")
                      else if get "wrong" <> 0 then
                        Error (where "wrong intersections reported")
                      else if get "resumed_identical" <> get "resumed" then
                        Error (where "a resumed session diverged from the uninterrupted run")
                      else Ok ())
            in
            List.to_seq cells
            |> Seq.fold_lefti
                 (fun acc i cell -> match acc with Error _ -> acc | Ok () -> check_cell i cell)
                 (Ok ()))

let check_bench_telemetry input =
  let fail msg = Error ("bench-telemetry schema: " ^ msg) in
  match J.of_string input with
  | Error msg -> fail ("unparseable: " ^ msg)
  | Ok doc -> (
      if Option.bind (J.member "bench" doc) J.to_string_opt <> Some "telemetry" then
        fail "missing \"bench\": \"telemetry\" marker"
      else
        let config = J.member "config" doc in
        let config_int name =
          Option.bind config (fun c -> Option.bind (J.member name c) J.to_int_opt)
        in
        let pass_field pass name =
          Option.bind (J.member pass doc) (fun p -> J.member name p)
        in
        let pass_float pass name = Option.bind (pass_field pass name) J.to_float_opt in
        let pass_int pass name = Option.bind (pass_field pass name) J.to_int_opt in
        let positive opt = Option.fold ~none:false ~some:(fun v -> v > 0.0) opt in
        match (config_int "k", config_int "sessions") with
        | None, _ | _, None -> fail "missing config k/sessions"
        | Some k, Some sessions ->
            if k < 1 || sessions < 1 then fail "config k/sessions must be >= 1"
            else if
              not
                (positive (pass_float "off" "ns_per_session")
                && positive (pass_float "on" "ns_per_session"))
            then fail "off/on ns_per_session missing or non-positive"
            else if
              (* The bench's whole point: the measured passes are the same
                 seeded sessions, so the deterministic fields must agree. *)
              J.member "deterministic_match" doc <> Some (J.Bool true)
            then fail "deterministic_match is not true"
            else begin
              match
                ( pass_int "off" "spent_bits",
                  pass_int "on" "spent_bits",
                  pass_int "off" "completed",
                  pass_int "on" "completed" )
              with
              | Some ob, Some nb, Some oc, Some nc ->
                  if ob <> nb || oc <> nc then
                    fail "off/on deterministic fields disagree"
                  else if ob <= 0 then fail "spent_bits must be positive"
                  else begin
                    match Option.bind (J.member "ratio" doc) J.to_float_opt with
                    | None -> fail "missing ratio"
                    | Some r ->
                        if r <= 0.0 then fail "non-positive ratio"
                        else if r > 1.25 then
                          fail
                            (Printf.sprintf
                               "overhead ratio %.3f exceeds the 1.25 regression bound" r)
                        else Ok ()
                  end
              | _ -> fail "off/on spent_bits/completed missing"
            end)

let check_bench_sweep input =
  let fail msg = Error ("bench-sweep schema: " ^ msg) in
  match J.of_string input with
  | Error msg -> fail ("unparseable: " ^ msg)
  | Ok doc -> (
      if Option.bind (J.member "bench" doc) J.to_string_opt <> Some "sweep" then
        fail "missing \"bench\": \"sweep\" marker"
      else
        let config = J.member "config" doc in
        let config_int name =
          Option.bind config (fun c -> Option.bind (J.member name c) J.to_int_opt)
        in
        match (config_int "seed", config_int "trials_per_cell") with
        | None, _ | _, None -> fail "missing config seed/trials_per_cell"
        | Some _, Some per_cell -> (
            if per_cell < 1 then fail "trials_per_cell must be >= 1"
            else
              let to_bool_opt = function Some (J.Bool b) -> Some b | _ -> None in
              match
                ( Option.bind (J.member "cells" doc) J.to_list_opt,
                  Option.bind (J.member "total_trials" doc) J.to_int_opt,
                  to_bool_opt (J.member "pass" doc) )
              with
              | None, _, _ -> fail "missing \"cells\" list"
              | Some [], _, _ -> fail "empty \"cells\" list"
              | _, None, _ -> fail "missing \"total_trials\""
              | _, _, None -> fail "missing \"pass\""
              | Some cells, Some total, Some _ ->
                  let check_cell i cell =
                    let where msg = Printf.sprintf "cell %d: %s" i msg in
                    let str_field name = Option.bind (J.member name cell) J.to_string_opt in
                    let int_field name = Option.bind (J.member name cell) J.to_int_opt in
                    let float_field name = Option.bind (J.member name cell) J.to_float_opt in
                    let bool_field name = to_bool_opt (J.member name cell) in
                    match (str_field "kind", str_field "protocol") with
                    | None, _ -> Error (where "missing \"kind\"")
                    | Some kind, _ when kind <> "clean" && kind <> "faulted" ->
                        Error (where "kind must be \"clean\" or \"faulted\"")
                    | _, None -> Error (where "missing \"protocol\"")
                    | Some kind, Some _ -> (
                        match
                          List.find_opt
                            (fun name ->
                              match int_field name with None -> true | Some v -> v < 0)
                            [ "k"; "trials"; "failures"; "degraded" ]
                        with
                        | Some name -> Error (where (Printf.sprintf "missing or negative %S" name))
                        | None -> (
                            let get name = Option.get (int_field name) in
                            if get "trials" < 1 then Error (where "fewer than 1 trial")
                            else if get "failures" > get "trials" then
                              Error (where "more failures than trials")
                            else if kind = "faulted" && J.member "plan" cell = None then
                              Error (where "faulted cell missing \"plan\"")
                            else
                              match
                                ( float_field "error_limit",
                                  float_field "error_lower95",
                                  float_field "error_upper95" )
                              with
                              | None, _, _ | _, None, _ | _, _, None ->
                                  Error (where "missing error bound fields")
                              | Some _, Some lo, Some hi ->
                                  if lo < 0.0 || hi > 1.0 || lo > hi then
                                    Error (where "Wilson bounds out of order")
                                  else if
                                    List.exists
                                      (fun name -> bool_field name = None)
                                      [ "error_ok"; "rounds_ok"; "bits_ok"; "pass" ]
                                  then Error (where "missing gate booleans")
                                  else if
                                    bool_field "pass"
                                    <> Some
                                         (bool_field "error_ok" = Some true
                                         && bool_field "rounds_ok" = Some true
                                         && bool_field "bits_ok" = Some true)
                                  then Error (where "pass is not the gate conjunction")
                                  else Ok ()))
                  in
                  let cell_trials =
                    List.fold_left
                      (fun acc cell ->
                        acc
                        + Option.value ~default:0
                            (Option.bind (J.member "trials" cell) J.to_int_opt))
                      0 cells
                  in
                  if cell_trials <> total then
                    fail
                      (Printf.sprintf "total_trials %d does not match cell sum %d" total
                         cell_trials)
                  else
                    List.to_seq cells
                    |> Seq.fold_lefti
                         (fun acc i cell ->
                           match acc with Error _ -> acc | Ok () -> check_cell i cell)
                         (Ok ())))

let check_lint_report input =
  let fail msg = Error ("lint-report schema: " ^ msg) in
  match J.of_string input with
  | Error msg -> fail ("unparseable: " ^ msg)
  | Ok doc -> (
      if Option.bind (J.member "tool" doc) J.to_string_opt <> Some "intersect-lint" then
        fail "missing \"tool\": \"intersect-lint\" marker"
      else
        let int_field name = Option.bind (J.member name doc) J.to_int_opt in
        match (int_field "files", int_field "typed_modules", int_field "count") with
        | None, _, _ -> fail "missing \"files\""
        | _, None, _ -> fail "missing \"typed_modules\""
        | _, _, None -> fail "missing \"count\""
        | Some files, Some typed_modules, Some count -> (
            if files < 1 then fail "files must be >= 1"
            else if typed_modules < 0 then fail "negative typed_modules"
            else
              match Option.bind (J.member "findings" doc) J.to_list_opt with
              | None -> fail "missing \"findings\" list"
              | Some findings ->
                  if List.length findings <> count then
                    fail
                      (Printf.sprintf "count %d does not match %d finding(s)" count
                         (List.length findings))
                  else
                    let check_finding i f =
                      let where msg = Printf.sprintf "finding %d: %s" i msg in
                      let str name = Option.bind (J.member name f) J.to_string_opt in
                      let int name = Option.bind (J.member name f) J.to_int_opt in
                      match (str "rule", str "file", int "line", int "col", str "message") with
                      | None, _, _, _, _ -> Error (where "missing \"rule\"")
                      | _, None, _, _, _ -> Error (where "missing \"file\"")
                      | _, _, None, _, _ -> Error (where "missing \"line\"")
                      | _, _, _, None, _ -> Error (where "missing \"col\"")
                      | _, _, _, _, None -> Error (where "missing \"message\"")
                      | Some rule, Some file, Some line, Some col, Some message ->
                          if rule = "" || file = "" || message = "" then
                            Error (where "empty rule/file/message")
                          else if line < 1 || col < 0 then
                            Error (where "line must be >= 1 and col >= 0")
                          else Ok ()
                    in
                    List.to_seq findings
                    |> Seq.fold_lefti
                         (fun acc i f -> match acc with Error _ -> acc | Ok () -> check_finding i f)
                         (Ok ())))

let check_lint_sarif input =
  let fail msg = Error ("lint-sarif schema: " ^ msg) in
  match J.of_string input with
  | Error msg -> fail ("unparseable: " ^ msg)
  | Ok doc -> (
      if Option.bind (J.member "version" doc) J.to_string_opt <> Some "2.1.0" then
        fail "missing \"version\": \"2.1.0\""
      else if J.member "$schema" doc = None then fail "missing \"$schema\""
      else
        match Option.bind (J.member "runs" doc) J.to_list_opt with
        | Some [ run ] -> (
            let driver = Option.bind (J.member "tool" run) (J.member "driver") in
            match Option.bind driver (fun d -> Option.bind (J.member "name" d) J.to_string_opt) with
            | Some "intersect-lint" -> (
                let rule_ids =
                  Option.bind driver (fun d -> Option.bind (J.member "rules" d) J.to_list_opt)
                  |> Option.value ~default:[]
                  |> List.filter_map (fun r -> Option.bind (J.member "id" r) J.to_string_opt)
                in
                if rule_ids = [] then fail "empty driver rule catalogue"
                else
                  match Option.bind (J.member "results" run) J.to_list_opt with
                  | None -> fail "missing \"results\" list"
                  | Some results ->
                      let check_result i r =
                        let where msg = Printf.sprintf "result %d: %s" i msg in
                        let location =
                          match Option.bind (J.member "locations" r) J.to_list_opt with
                          | Some [ l ] -> J.member "physicalLocation" l
                          | _ -> None
                        in
                        let region = Option.bind location (J.member "region") in
                        let region_int name =
                          Option.bind region (fun rg -> Option.bind (J.member name rg) J.to_int_opt)
                        in
                        match Option.bind (J.member "ruleId" r) J.to_string_opt with
                        | None -> Error (where "missing \"ruleId\"")
                        | Some rule when not (List.mem rule rule_ids) ->
                            Error (where (Printf.sprintf "ruleId %S not in the catalogue" rule))
                        | Some _ ->
                            if Option.bind (J.member "level" r) J.to_string_opt <> Some "error" then
                              Error (where "level must be \"error\"")
                            else if
                              Option.bind (J.member "message" r) (fun m ->
                                  Option.bind (J.member "text" m) J.to_string_opt)
                              |> Option.fold ~none:true ~some:(( = ) "")
                            then Error (where "missing message text")
                            else if
                              Option.bind location (fun pl ->
                                  Option.bind (J.member "artifactLocation" pl) (fun al ->
                                      Option.bind (J.member "uri" al) J.to_string_opt))
                              |> Option.fold ~none:true ~some:(( = ) "")
                            then Error (where "missing artifact uri")
                            else if
                              (* SARIF regions are fully 1-based. *)
                              region_int "startLine" |> Option.fold ~none:true ~some:(fun v -> v < 1)
                              || region_int "startColumn"
                                 |> Option.fold ~none:true ~some:(fun v -> v < 1)
                            then Error (where "region start must be 1-based")
                            else Ok ()
                      in
                      List.to_seq results
                      |> Seq.fold_lefti
                           (fun acc i r ->
                             match acc with Error _ -> acc | Ok () -> check_result i r)
                           (Ok ()))
            | _ -> fail "driver name is not \"intersect-lint\"")
        | _ -> fail "\"runs\" must hold exactly one run")

(* The experiments.json registry index (`intersect_cli experiments
   export`).  The structural registry invariants (dense ids, valid
   lifecycle states, artifact fields only in pairs) are re-checked here so
   a hand-edited index cannot smuggle a state the registry itself would
   reject. *)
let check_experiments input =
  let fail msg = Error ("experiments schema: " ^ msg) in
  let statuses = [ "Draft"; "Running"; "Complete"; "Superseded" ] in
  let regens = [ "gate"; "diff"; "none" ] in
  match J.of_string input with
  | Error msg -> fail ("unparseable: " ^ msg)
  | Ok doc -> (
      if Option.bind (J.member "registry" doc) J.to_string_opt <> Some "experiments" then
        fail "missing \"registry\": \"experiments\" marker"
      else
        match
          ( Option.bind (J.member "count" doc) J.to_int_opt,
            Option.bind (J.member "entries" doc) J.to_list_opt )
        with
        | None, _ -> fail "missing \"count\""
        | _, None -> fail "missing \"entries\" list"
        | Some _, Some [] -> fail "empty \"entries\" list"
        | Some count, Some entries ->
            if List.length entries <> count then
              fail (Printf.sprintf "count %d does not match %d entries" count (List.length entries))
            else
              let check_entry i entry =
                let where msg = Printf.sprintf "entry %d: %s" i msg in
                let str name = Option.bind (J.member name entry) J.to_string_opt in
                let nonempty name =
                  match str name with
                  | None -> Error (where (Printf.sprintf "missing %S" name))
                  | Some "" -> Error (where (Printf.sprintf "empty %S" name))
                  | Some s -> Ok s
                in
                match Option.bind (J.member "id" entry) J.to_int_opt with
                | None -> Error (where "missing \"id\"")
                | Some id when id <> i + 1 ->
                    Error (where (Printf.sprintf "id %d breaks the dense 1..N order" id))
                | Some _ -> (
                    let required =
                      [ "file"; "slug"; "title"; "status"; "anchor"; "roadmap";
                        "hypothesis"; "reproduce"; "regen" ]
                    in
                    let first_bad =
                      List.fold_left
                        (fun acc name ->
                          match acc with Error _ -> acc | Ok () -> Result.map ignore (nonempty name))
                        (Ok ()) required
                    in
                    match first_bad with
                    | Error _ as e -> e
                    | Ok () ->
                        let get name = Option.get (str name) in
                        if not (List.mem (get "status") statuses) then
                          Error (where (Printf.sprintf "unknown status %S" (get "status")))
                        else if not (List.mem (get "regen") regens) then
                          Error (where (Printf.sprintf "unknown regen mode %S" (get "regen")))
                        else if
                          not
                            (String.length (get "file") > String.length "experiments/"
                            && String.starts_with ~prefix:"experiments/" (get "file")
                            && String.ends_with ~suffix:".md" (get "file"))
                        then Error (where "file is not an experiments/*.md path")
                        else
                          let artifact = str "artifact" in
                          let keys =
                            Option.bind (J.member "artifact_keys" entry) J.to_list_opt
                            |> Option.value ~default:[]
                          in
                          if artifact = None && (keys <> [] || str "json_check" <> None) then
                            Error (where "artifact_keys/json_check without an artifact")
                          else Ok ())
              in
              List.to_seq entries
              |> Seq.fold_lefti
                   (fun acc i entry -> match acc with Error _ -> acc | Ok () -> check_entry i entry)
                   (Ok ()))

let catalogue =
  [
    ("bench-chaos", check_bench_chaos);
    ("bench-hotpath", check_bench_hotpath);
    ("bench-sweep", check_bench_sweep);
    ("bench-telemetry", check_bench_telemetry);
    ("experiments", check_experiments);
    ("lint-report", check_lint_report);
    ("lint-sarif", check_lint_sarif);
  ]

let modes = List.map fst catalogue
let bench_modes = List.filter (String.starts_with ~prefix:"bench-") modes

let check ~mode input =
  match List.assoc_opt mode catalogue with
  | Some f -> f input
  | None -> Error (Printf.sprintf "unknown schema mode %S (known: %s)" mode (String.concat ", " modes))
