(** The domain-parallel trial runner.

    [map ~trials f] evaluates [f 0 .. f (trials - 1)] across OCaml 5
    domains and returns the results {e in index order}.  Workers pull
    contiguous chunks of indices from a shared atomic cursor (a chunked
    work queue: cheap enough to balance uneven trial times, coarse enough
    that the cursor is not a contention point) and write each result into
    its own slot of a pre-sized array, so no ordering decision is ever
    made by the scheduler.

    Determinism contract: provided [f] is a pure function of its index —
    which every engine workload guarantees by deriving its randomness via
    {!Seed_stream} — the returned array, and anything folded from it in
    index order, is byte-identical for every domain count and every
    scheduling.  Parallelism changes wall-clock time and nothing else.

    Trials must not talk to each other: each [f i] runs its own simulator
    execution with its own collectors ({!Obsv} ambient state is
    domain-local, and a spawned domain starts with observability
    disabled — install a per-trial registry inside [f] if you want
    metrics). *)

(** [Domain.recommended_domain_count ()], the default worker count. *)
val default_domains : unit -> int

(** [map ?domains ~trials f] is [[| f 0; ...; f (trials - 1) |]].
    [domains] defaults to {!default_domains}; [1] (or [trials <= 1]) runs
    sequentially on the calling domain with no spawns.  An exception in
    any trial aborts the run and re-raises after the workers join. *)
val map : ?domains:int -> trials:int -> (int -> 'a) -> 'a array

(** [run ?domains ~trials f ~init ~merge] is
    [Array.fold_left merge init (map ?domains ~trials f)] — the merge is
    applied in trial-index order, so an associative [merge] (commutative
    or not) sees the exact sequential fold. *)
val run :
  ?domains:int -> trials:int -> (int -> 'a) -> init:'acc -> merge:('acc -> 'a -> 'acc) -> 'acc

(** [fold ?domains ~trials ~init ~step ~merge ()] folds [step] over trial
    indices without materialising per-trial results: each worker folds the
    trials of a chunk into a private accumulator ([init ()] per chunk —
    accumulators may be freely mutable), and chunk accumulators are
    [merge]d in chunk-index order.

    Determinism contract, on top of {!map}'s purity requirement: [init ()]
    must be an identity for [merge] and [merge] must be associative over
    in-order accumulators (exact integer arithmetic, min/max, sketch
    bucket sums — not floating-point sums), because the chunk geometry
    varies with the worker count.  Under that contract the result is
    byte-identical at every domain count, in exchange for O(chunks) rather
    than O(trials) live results.  [merge] may mutate and return its left
    argument. *)
val fold :
  ?domains:int ->
  trials:int ->
  init:(unit -> 'acc) ->
  step:('acc -> int -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  unit ->
  'acc
