let cost = Commsim.Cost.add_seq
let costs ~players l = List.fold_left cost (Commsim.Cost.zero ~players) l

let metrics registries =
  let into = Obsv.Metrics.create () in
  List.iter (fun r -> Obsv.Metrics.merge_into ~into r) registries;
  into

let summaries accs = List.fold_left Stats.Summary.Acc.merge Stats.Summary.Acc.empty accs
