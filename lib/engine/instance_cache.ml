(* Per-domain memo table for prebuilt protocol instances.

   Conformance and sweep cells historically rebuilt their protocol value
   ([make ~k]) inside every trial — construction is deterministic and
   cheap-ish, but at 10^6 trials per invocation even a few hundred bytes
   of closures per build is pure churn.  The cache keys instances by a
   caller-chosen string (conventionally "<protocol>/k<k>") in a
   [Domain.DLS]-local table, so:

   - workers never share an instance across domains (no synchronisation,
     and any domain-local state a builder might close over stays local);
   - a domain builds each (protocol, k) cell's instance exactly once and
     replays it for every trial it executes.

   Determinism: builders must be pure — the instance obtained from the
   cache is the very value [build ()] returns on first use in that
   domain, so transcripts are unchanged; only construction churn goes
   away. *)

type 'a t = { slot : (string, 'a) Hashtbl.t Domain.DLS.key }

let create () = { slot = Domain.DLS.new_key (fun () -> Hashtbl.create 16) }

let find t ~key build =
  let table = Domain.DLS.get t.slot in
  match Hashtbl.find_opt table key with
  | Some v -> v
  | None ->
      let v = build () in
      Hashtbl.replace table key v;
      v
