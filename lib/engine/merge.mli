(** Associative merges for the per-trial artifacts the engine aggregates.

    Everything here is deterministic given a deterministic input order;
    {!Pool.run} supplies trial-index order regardless of scheduling. *)

(** [cost a b] aggregates two executions' costs between the same player
    set: bits, messages, per-player tallies and rounds all add (the
    sequential composition of {!Commsim.Cost.add_seq}, which is both
    associative and commutative).  Use for "total work over a trial
    grid". *)
val cost : Commsim.Cost.t -> Commsim.Cost.t -> Commsim.Cost.t

(** [costs ~players l] folds {!cost} over [l] starting from zero. *)
val costs : players:int -> Commsim.Cost.t list -> Commsim.Cost.t

(** [metrics registries] merges per-trial registries into one fresh enabled
    registry, in list order ({!Obsv.Metrics.merge_into}: counters and
    histograms add, gauges keep the maximum). *)
val metrics : Obsv.Metrics.registry list -> Obsv.Metrics.registry

(** [summaries accs] folds {!Stats.Summary.Acc.merge} over [accs] in list
    order, preserving arrival order of the underlying observations. *)
val summaries : Stats.Summary.Acc.t list -> Stats.Summary.Acc.t
