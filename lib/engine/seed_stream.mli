(** Deterministic per-trial randomness for the parallel trial engine.

    A stream is a [(base seed, stream label)] pair; the generator of trial
    [i] is derived from those and [i] {e only} — by a single
    {!Prng.Splitmix64.mix} of the root seed with the FNV-hashed label
    ["<label>/trial<i>"] (the {!Prng.Rng.with_label} derivation).  No state
    is shared between trials, so trial [i] sees the same stream whether it
    runs first or last, on one domain or sixteen — this is what makes every
    engine result independent of scheduling.

    The derivation is intentionally identical to the hand-rolled seeding
    the soak harness used before the engine existed
    ([Rng.with_label (Rng.of_int seed) "soak/<proto>/<plan>/trial<i>"]),
    so historical soak JSON reproduces bit for bit. *)

type t

(** [create ~base ~label] names a stream.  [label] conventionally encodes
    the experiment coordinates (["soak/tree/flip-1e-3"],
    ["conform/bucket/k64"], ...). *)
val create : base:int -> label:string -> t

val base : t -> int
val label : t -> string

(** The label trial [i] is derived from: ["<label>/trial<i>"]. *)
val trial_label : t -> int -> string

(** The generator of trial [i]; a pure function of [(base, label, i)]. *)
val trial_rng : t -> int -> Prng.Rng.t
