(** Per-domain cache of prebuilt protocol instances for the trial engine.

    [find cache ~key build] returns the value [build ()] produced the
    first time [key] was requested {e on the current domain}, building it
    on a miss.  Caches are [Domain.DLS]-local, so no instance is ever
    shared across domains and no locking is involved.

    Intended use: hoist deterministic per-cell construction (a protocol
    value keyed ["bucket/k1024"], a fault plan, a precomputed table) out
    of the per-trial hot loop of {!Pool.map}/{!Pool.fold} workloads.
    Builders must be pure functions of their key — the cache replays the
    constructed value for every trial the domain executes, so an impure
    builder would make results depend on the domain count and break the
    engine's determinism contract. *)

type 'a t

val create : unit -> 'a t
val find : 'a t -> key:string -> (unit -> 'a) -> 'a
