type t = { base : int; label : string }

let create ~base ~label = { base; label }
let base t = t.base
let label t = t.label
let trial_label t i = Printf.sprintf "%s/trial%d" t.label i

(* [Rng.with_label] derives from the root seed and the label alone via one
   Splitmix64 mix, so this is a pure function of [(base, label, i)]. *)
let trial_rng t i = Prng.Rng.with_label (Prng.Rng.of_int t.base) (trial_label t i)
