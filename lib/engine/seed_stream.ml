(* The base generator is built once at stream creation; a trial derivation
   is then one incremental label fold ([Rng.Label]) over
   ["<label>/trial<i>"] — bit-identical to
   [Rng.with_label (Rng.of_int base) (sprintf "%s/trial%d" label i)], the
   historical formulation, without the sprintf or the per-trial base
   rebuild.  Pure function of [(base, label, i)] either way. *)
type t = { base : int; label : string; root : Prng.Rng.t }

let create ~base ~label = { base; label; root = Prng.Rng.of_int base }
let base t = t.base
let label t = t.label
let trial_label t i = t.label ^ "/trial" ^ string_of_int i

let trial_rng t i =
  let d = Prng.Rng.Label.start t.root in
  Prng.Rng.Label.add d t.label;
  Prng.Rng.Label.add d "/trial";
  Prng.Rng.Label.add_int d i;
  Prng.Rng.Label.finish d
