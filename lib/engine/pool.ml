let default_domains () = max 1 (Domain.recommended_domain_count ())

(* Chunk size: small enough that uneven trial times balance across workers
   (~8 chunks per worker), large enough that the atomic cursor stays cold.
   Results land in per-index slots, so chunk geometry never affects
   output — only wall-clock. *)
let chunk_size ~trials ~workers = max 1 (trials / (workers * 8))

let map_parallel ~workers ~trials f =
  let results = Array.make trials None in
  let cursor = Atomic.make 0 in
  let chunk = chunk_size ~trials ~workers in
  let worker () =
    let rec loop () =
      let start = Atomic.fetch_and_add cursor chunk in
      if start < trials then begin
        let stop = min trials (start + chunk) in
        for i = start to stop - 1 do
          results.(i) <- Some (f i)
        done;
        loop ()
      end
    in
    loop ()
  in
  let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
  (* The calling domain is worker zero; join before re-raising so no domain
     outlives the call even when a trial throws. *)
  let mine = try Ok (worker ()) with e -> Error e in
  let joins = Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) spawned in
  (match mine with Error e -> raise e | Ok () -> ());
  Array.iter (function Error e -> raise e | Ok () -> ()) joins;
  Array.map
    (function Some v -> v | None -> failwith "Engine.Pool.map: unfilled slot")
    results

let map ?domains ~trials f =
  if trials < 0 then invalid_arg "Engine.Pool.map: trials < 0";
  let domains =
    match domains with
    | None -> default_domains ()
    | Some d -> if d < 1 then invalid_arg "Engine.Pool.map: domains < 1" else d
  in
  let workers = min domains (max 1 trials) in
  if workers = 1 then Array.init trials f else map_parallel ~workers ~trials f

let run ?domains ~trials f ~init ~merge = Array.fold_left merge init (map ?domains ~trials f)

(* Streaming fold: one accumulator per chunk instead of one boxed slot per
   trial.  Workers claim whole chunks from the cursor, fold their trials
   locally, and park the chunk accumulator in a per-chunk slot; the final
   reduction merges the slots in chunk-index order.  Chunk boundaries are
   contiguous index ranges merged left to right, so any associative
   [merge] with [init ()] as identity sees a grouping of the exact
   sequential fold — identical result at every domain count, which is what
   lets the sweep's JSON pass the domains-1-vs-2 cmp gate while running
   10^6 trials without a 10^6-element results array. *)
let fold_parallel ~workers ~trials ~init ~step ~merge =
  let chunk = chunk_size ~trials ~workers in
  let chunks = (trials + chunk - 1) / chunk in
  let slots = Array.make chunks None in
  let cursor = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let c = Atomic.fetch_and_add cursor 1 in
      if c < chunks then begin
        let start = c * chunk in
        let stop = min trials (start + chunk) in
        let acc = ref (init ()) in
        for i = start to stop - 1 do
          acc := step !acc i
        done;
        slots.(c) <- Some !acc;
        loop ()
      end
    in
    loop ()
  in
  let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
  let mine = try Ok (worker ()) with e -> Error e in
  let joins = Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) spawned in
  (match mine with Error e -> raise e | Ok () -> ());
  Array.iter (function Error e -> raise e | Ok () -> ()) joins;
  Array.fold_left
    (fun acc slot ->
      match slot with
      | Some a -> merge acc a
      | None -> failwith "Engine.Pool.fold: unfilled chunk")
    (init ()) slots

let fold ?domains ~trials ~init ~step ~merge () =
  if trials < 0 then invalid_arg "Engine.Pool.fold: trials < 0";
  let domains =
    match domains with
    | None -> default_domains ()
    | Some d -> if d < 1 then invalid_arg "Engine.Pool.fold: domains < 1" else d
  in
  let workers = min domains (max 1 trials) in
  if workers = 1 then begin
    let acc = ref (init ()) in
    for i = 0 to trials - 1 do
      acc := step !acc i
    done;
    !acc
  end
  else fold_parallel ~workers ~trials ~init ~step ~merge
