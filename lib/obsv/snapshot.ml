(* Point-in-time copies of a metrics registry, taken on an event-time
   axis (sessions completed, trials run — never a wall clock) and diffed
   into a JSONL time series with derived rates.  All arithmetic is
   integer, so the stream is byte-identical for a fixed seed at any
   domain count. *)

type hist_summary = { h_count : int; h_sum : int; h_p50 : int; h_p90 : int; h_p99 : int }

type sketch_summary = {
  s_count : int;
  s_sum : int;
  s_min : int;
  s_max : int;
  s_p50 : int;
  s_p90 : int;
  s_p99 : int;
  s_p999 : int;
}

type t = {
  seq : int;
  at : int;
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_summary) list;
  sketches : (string * sketch_summary) list;
}

let summarize_hist (h : Metrics.histogram) =
  let q pm = match Metrics.histogram_quantile h ~per_mille:pm with Some v -> v | None -> 0 in
  { h_count = h.Metrics.count; h_sum = h.Metrics.sum; h_p50 = q 500; h_p90 = q 900; h_p99 = q 990 }

let summarize_sketch s =
  {
    s_count = Sketch.count s;
    s_sum = Sketch.sum s;
    s_min = (match Sketch.min_value s with Some v -> v | None -> 0);
    s_max = (match Sketch.max_value s with Some v -> v | None -> 0);
    s_p50 = Sketch.p50 s;
    s_p90 = Sketch.p90 s;
    s_p99 = Sketch.p99 s;
    s_p999 = Sketch.p999 s;
  }

let take ~seq ~at registry =
  Trace.span Phases.telemetry_snapshot (fun () ->
      {
        seq;
        at;
        counters = Metrics.counters_list registry;
        gauges = Metrics.gauges_list registry;
        histograms = List.map (fun (k, h) -> (k, summarize_hist h)) (Metrics.histograms_list registry);
        sketches = List.map (fun (k, s) -> (k, summarize_sketch s)) (Metrics.sketches_list registry);
      })

let counter t name = match List.assoc_opt name t.counters with Some v -> v | None -> 0
let gauge t name = List.assoc_opt name t.gauges
let sketch t name = List.assoc_opt name t.sketches

let hist_json h =
  Stats.Json.Obj
    [
      ("count", Stats.Json.Int h.h_count);
      ("sum", Stats.Json.Int h.h_sum);
      ("p50", Stats.Json.Int h.h_p50);
      ("p90", Stats.Json.Int h.h_p90);
      ("p99", Stats.Json.Int h.h_p99);
    ]

let sketch_json s =
  Stats.Json.Obj
    [
      ("count", Stats.Json.Int s.s_count);
      ("sum", Stats.Json.Int s.s_sum);
      ("min", Stats.Json.Int s.s_min);
      ("max", Stats.Json.Int s.s_max);
      ("p50", Stats.Json.Int s.s_p50);
      ("p90", Stats.Json.Int s.s_p90);
      ("p99", Stats.Json.Int s.s_p99);
      ("p999", Stats.Json.Int s.s_p999);
    ]

let to_json t =
  Stats.Json.Obj
    [
      ("event", Stats.Json.Str "snapshot");
      ("seq", Stats.Json.Int t.seq);
      ("at", Stats.Json.Int t.at);
      ("counters", Stats.Json.Obj (List.map (fun (k, v) -> (k, Stats.Json.Int v)) t.counters));
      ("gauges", Stats.Json.Obj (List.map (fun (k, v) -> (k, Stats.Json.Int v)) t.gauges));
      ("histograms", Stats.Json.Obj (List.map (fun (k, h) -> (k, hist_json h)) t.histograms));
      ("sketches", Stats.Json.Obj (List.map (fun (k, s) -> (k, sketch_json s)) t.sketches));
    ]

(* Derived rates between two snapshots: integer deltas of every counter,
   plus a per-1000-event-time-units rate (delta * 1000 / dt, floor
   division — deterministic, no floats).  Counters absent from [prev]
   delta from zero; unchanged counters are omitted to keep lines lean. *)
let rates_json ~prev t =
  let dt = t.at - prev.at in
  let entries =
    List.filter_map
      (fun (name, v) ->
        let d = v - counter prev name in
        if d = 0 then None
        else
          let per_1000 = if dt > 0 then d * 1000 / dt else 0 in
          Some
            ( name,
              Stats.Json.Obj
                [ ("delta", Stats.Json.Int d); ("per_1000", Stats.Json.Int per_1000) ] ))
      t.counters
  in
  Stats.Json.Obj
    [
      ("event", Stats.Json.Str "rates");
      ("seq", Stats.Json.Int t.seq);
      ("at", Stats.Json.Int t.at);
      ("dt", Stats.Json.Int dt);
      ("counters", Stats.Json.Obj entries);
    ]

(* One JSONL line per snapshot, with a rates line after every snapshot
   that has a predecessor. *)
let series_lines snapshots =
  let rec go prev = function
    | [] -> []
    | s :: rest ->
        let snap = Stats.Json.to_string (to_json s) in
        let lines =
          match prev with
          | None -> [ snap ]
          | Some p -> [ snap; Stats.Json.to_string (rates_json ~prev:p s) ]
        in
        lines @ go (Some s) rest
  in
  go None snapshots
