open Stats

let unattributed = Phases.unattributed

let span_index c =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (s : Trace.span) -> Hashtbl.replace tbl s.id s) (Trace.spans c);
  tbl

let end_seq_of c (s : Trace.span) = if s.end_seq < 0 then Trace.final_seq c else s.end_seq

(* Chrome trace_event format (chrome://tracing, Perfetto): spans are complete
   ("X") events, messages instant ("i") events on the sender's track; the
   deterministic event sequence number plays the role of microseconds. *)
let chrome_trace c =
  let tid rank = match rank with None -> 0 | Some r -> r + 1 in
  let attr_args attrs = List.map (fun (k, v) -> (k, Json.Str v)) attrs in
  let span_events =
    List.map
      (fun (s : Trace.span) ->
        Json.Obj
          [
            ("name", Json.Str s.Trace.name);
            ("cat", Json.Str "span");
            ("ph", Json.Str "X");
            ("ts", Json.Int s.Trace.start_seq);
            ("dur", Json.Int (end_seq_of c s - s.Trace.start_seq));
            ("pid", Json.Int 0);
            ("tid", Json.Int (tid s.Trace.rank));
            ( "args",
              Json.Obj
                ([
                   ("span_id", Json.Int s.Trace.id);
                   ( "parent",
                     match s.Trace.parent with None -> Json.Null | Some p -> Json.Int p );
                   ("bits", Json.Int s.Trace.bits);
                   ("messages", Json.Int s.Trace.messages);
                 ]
                @ attr_args s.Trace.attrs) );
          ])
      (Trace.spans c)
  in
  let message_events =
    List.map
      (fun (m : Trace.message) ->
        Json.Obj
          [
            ("name", Json.Str "message");
            ("cat", Json.Str "message");
            ("ph", Json.Str "i");
            ("s", Json.Str "t");
            ("ts", Json.Int m.Trace.seq);
            ("pid", Json.Int 0);
            ("tid", Json.Int (m.Trace.from_ + 1));
            ( "args",
              Json.Obj
                [
                  ("to", Json.Int m.Trace.to_);
                  ("bits", Json.Int m.Trace.bits);
                  ("depth", Json.Int m.Trace.depth);
                  ("span", match m.Trace.span with None -> Json.Null | Some id -> Json.Int id);
                ] );
          ])
      (Trace.messages c)
  in
  let ranks =
    List.sort_uniq compare
      (List.filter_map (fun (s : Trace.span) -> s.Trace.rank) (Trace.spans c)
      @ List.map (fun (m : Trace.message) -> m.Trace.from_) (Trace.messages c))
  in
  let thread_names =
    Json.Obj
      [
        ("name", Json.Str "thread_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 0);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.Str "orchestrator") ]);
      ]
    :: List.map
         (fun r ->
           Json.Obj
             [
               ("name", Json.Str "thread_name");
               ("ph", Json.Str "M");
               ("pid", Json.Int 0);
               ("tid", Json.Int (r + 1));
               ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "player %d" r)) ]);
             ])
         ranks
  in
  Json.Obj
    [
      ("traceEvents", Json.List (thread_names @ span_events @ message_events));
      ("displayTimeUnit", Json.Str "ms");
    ]

(* One JSON object per line, all events merged in sequence order. *)
let jsonl c =
  let idx = span_index c in
  let opens =
    List.map
      (fun (s : Trace.span) ->
        ( s.Trace.start_seq,
          Json.Obj
            ([
               ("event", Json.Str "span_open");
               ("seq", Json.Int s.Trace.start_seq);
               ("span", Json.Int s.Trace.id);
               ("name", Json.Str s.Trace.name);
               ("rank", match s.Trace.rank with None -> Json.Null | Some r -> Json.Int r);
               ("parent", match s.Trace.parent with None -> Json.Null | Some p -> Json.Int p);
             ]
            @ List.map (fun (k, v) -> ("attr:" ^ k, Json.Str v)) s.Trace.attrs) ))
      (Trace.spans c)
  in
  let closes =
    List.map
      (fun (s : Trace.span) ->
        ( end_seq_of c s,
          Json.Obj
            [
              ("event", Json.Str "span_close");
              ("seq", Json.Int (end_seq_of c s));
              ("span", Json.Int s.Trace.id);
              ("name", Json.Str s.Trace.name);
              ("bits", Json.Int s.Trace.bits);
              ("messages", Json.Int s.Trace.messages);
            ] ))
      (Trace.spans c)
  in
  let msgs =
    List.map
      (fun (m : Trace.message) ->
        ( m.Trace.seq,
          Json.Obj
            [
              ("event", Json.Str "message");
              ("seq", Json.Int m.Trace.seq);
              ("from", Json.Int m.Trace.from_);
              ("to", Json.Int m.Trace.to_);
              ("bits", Json.Int m.Trace.bits);
              ("depth", Json.Int m.Trace.depth);
              ( "phase",
                match m.Trace.span with
                | None -> Json.Str unattributed
                | Some id -> (
                    match Hashtbl.find_opt idx id with
                    | Some s -> Json.Str s.Trace.name
                    | None -> Json.Str unattributed) );
            ] ))
      (Trace.messages c)
  in
  List.stable_sort
    (fun (a, _) (b, _) -> compare a b)
    (opens @ closes @ msgs)
  |> List.map (fun (_, j) -> Json.to_string j)

type phase = { phase : string; bits : int; messages : int; max_depth : int; spans : int }

(* Aggregate message bits by the *name* of the attributing span, in order of
   first appearance.  Because every message is counted exactly once (at its
   innermost span, or the unattributed bucket), the rows sum to
   [Cost.total_bits] / [Cost.messages] of the collected executions.
   [spans] counts the span *instances* carrying each name, so a ledger row
   reads "N bits across M messages over S phase executions"; rows are still
   created by messages only (a span that attributed no message stays out of
   the ledger, and the unattributed bucket has no spans by definition). *)
let phases c =
  let idx = span_index c in
  let order = ref [] in
  let acc = Hashtbl.create 16 in
  List.iter
    (fun (m : Trace.message) ->
      let name =
        match m.Trace.span with
        | None -> unattributed
        | Some id -> (
            match Hashtbl.find_opt idx id with Some s -> s.Trace.name | None -> unattributed)
      in
      let row =
        match Hashtbl.find_opt acc name with
        | Some row -> row
        | None ->
            let row = ref { phase = name; bits = 0; messages = 0; max_depth = 0; spans = 0 } in
            Hashtbl.replace acc name row;
            order := name :: !order;
            row
      in
      row :=
        {
          !row with
          bits = !row.bits + m.Trace.bits;
          messages = !row.messages + 1;
          max_depth = max !row.max_depth m.Trace.depth;
        })
    (Trace.messages c);
  List.iter
    (fun (s : Trace.span) ->
      match Hashtbl.find_opt acc s.Trace.name with
      | Some row -> row := { !row with spans = !row.spans + 1 }
      | None -> ())
    (Trace.spans c);
  List.rev_map (fun name -> !(Hashtbl.find acc name)) !order

let total_phase_bits c = List.fold_left (fun acc p -> acc + p.bits) 0 (phases c)

(* Merge per-execution ledgers (e.g. one per engine trial) into one: rows
   with the same phase name add their bits and messages and keep the
   deepest depth; row order is first appearance across the lists in the
   order given, so a deterministic trial order yields a deterministic
   merged ledger. *)
let merge_phases ledgers =
  let order = ref [] in
  let acc = Hashtbl.create 16 in
  List.iter
    (List.iter (fun p ->
         match Hashtbl.find_opt acc p.phase with
         | Some row ->
             row :=
               {
                 !row with
                 bits = !row.bits + p.bits;
                 messages = !row.messages + p.messages;
                 max_depth = max !row.max_depth p.max_depth;
                 spans = !row.spans + p.spans;
               }
         | None ->
             Hashtbl.replace acc p.phase (ref p);
             order := p.phase :: !order))
    ledgers;
  List.rev_map (fun name -> !(Hashtbl.find acc name)) !order

let phase_table_of ?(title = "per-phase communication") rows =
  let total = List.fold_left (fun acc p -> acc + p.bits) 0 rows in
  let total_messages = List.fold_left (fun acc p -> acc + p.messages) 0 rows in
  let total_spans = List.fold_left (fun acc p -> acc + p.spans) 0 rows in
  let table =
    Table.create ~title ~columns:[ "phase"; "bits"; "msgs"; "spans"; "max depth"; "share" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          p.phase;
          Table.cell_int p.bits;
          Table.cell_int p.messages;
          (if p.phase = unattributed then "-" else Table.cell_int p.spans);
          Table.cell_int p.max_depth;
          (if total = 0 then "-"
           else Printf.sprintf "%5.1f%%" (100.0 *. float_of_int p.bits /. float_of_int total));
        ])
    rows;
  Table.add_row table
    [ "total"; Table.cell_int total; Table.cell_int total_messages; Table.cell_int total_spans; "-"; "100.0%" ];
  table

let phase_table ?title c = phase_table_of ?title (phases c)

let phases_json_of rows =
  Json.List
    (List.map
       (fun p ->
         Json.Obj
           [
             ("phase", Json.Str p.phase);
             ("bits", Json.Int p.bits);
             ("messages", Json.Int p.messages);
             ("spans", Json.Int p.spans);
             ("max_depth", Json.Int p.max_depth);
           ])
       rows)

let phases_json c = phases_json_of (phases c)
