(** SLO evaluation over the fleet snapshot stream.

    {!evaluate} scores one {!Snapshot.t} (typically the last of a
    campaign) against declared service-level objectives.  The wrong-answer
    bound is {e not} configurable: a session layer that reports a wrong
    intersection has violated its core guarantee, so [wrong-rate-zero] is
    hard-wired to 0.  The remaining SLOs — failed-safe rate, degraded
    (fallback) rate, p99 deadline burn — take integer per-mille
    thresholds.

    {2 Metric-name contract}

    The [k_*] values name the registry entries the fleet harness
    ({!Workload.Telemetry}) writes and this evaluator reads; using the
    constants on both sides keeps the contract in one place. *)

val k_sessions : string
val k_wrong : string
val k_attempts : string
val k_resumes : string

(** [k_outcome name] for {!Session.Machine.outcome_name} values
    (["completed"], ["degraded"], ["failed_safe"]). *)
val k_outcome : string -> string

(** [k_failure kind] for {!Session.Machine.kind_name} values. *)
val k_failure : string -> string

val k_spent_bits : string
val k_backoff_ticks : string
val k_wasted_bits : string
val k_deadline_bits : string

(** Integer per-mille thresholds. *)
type slos = {
  max_failed_safe_per_mille : int;
  max_degraded_per_mille : int;
  max_p99_burn_per_mille : int;
}

(** 50‰ failed-safe, 250‰ degraded, 900‰ p99 deadline burn. *)
val default_slos : slos

type verdict = {
  slo : string;
  ok : bool;
  measured : int;  (** per-mille for rates, a count for [wrong-rate-zero] *)
  limit : int;
  detail : string;
}

type report = { ok : bool; sessions : int; verdicts : verdict list }

(** [evaluate ?slos snap] scores [snap].  Always includes
    [sessions-observed] (fails on an empty fleet), [wrong-rate-zero],
    [failed-safe-rate] and [degraded-rate]; adds [p99-budget-burn] when
    the snapshot carries both the [fleet/spent_bits] sketch and the
    [fleet/deadline_bits] gauge.  Runs inside a [telemetry/health]
    span. *)
val evaluate : ?slos:slos -> Snapshot.t -> report

val to_json : report -> Stats.Json.t
val slos_json : slos -> Stats.Json.t
val table : report -> Stats.Table.t
