(** The span-name registry: one constant per phase name that may appear in
    a {!Trace.span} call, extracted from the instrumented protocols so the
    names have a single source of truth.

    The static analyzer ([intersect_lint], rule R3) flags any string
    literal passed to [Trace.span] that is not in {!all}: a typo'd phase
    would otherwise land silently in the profile's "(unattributed)" bucket
    (or worse, a fresh misspelled bucket) and corrupt the per-phase
    budget breakdown.  To add a phase, add a constant here, list it in
    {!all}, and use the constant at the call site. *)

(** Bucket used by {!Export} for messages sent outside any span. *)
val unattributed : string

(** {2 Application-layer exchanges (lib/apps)} *)

val app_join : string
val app_similarity : string
val app_sketch : string
val app_sync : string
val app_union : string

(** {2 Basic_intersection (Lemma 3.3)} *)

val bi_sizes : string
val bi_tags : string

(** {2 Bucket_protocol (Theorem 3.1)} *)

val bucket_assign : string
val bucket_eq : string

(** {2 Disjointness (Håstad–Wigderson)} *)

val disj_round : string

(** {2 Eq_batch (Fact 3.5 / batched equality)} *)

val eq_exact : string
val eq_joint : string
val eq_tags : string

(** {2 One_round_hash / Private_coin} *)

val orh_tags : string
val private_seed : string

(** {2 Multiparty} *)

val multiparty_broadcast : string
val star_coordinate : string
val star_pair : string
val tour_pass : string
val tour_root_check : string
val tour_verdict : string

(** {2 Resilient (adversarial channels)} *)

val resilient_attempt : string
val resilient_fallback : string
val resilient_verify : string

(** {2 Session (robustness layer)} *)

val session_attempt : string
val session_backoff : string
val session_fallback : string
val session_resume : string

(** {2 Telemetry (fleet observability)} *)

val telemetry_health : string
val telemetry_snapshot : string

(** {2 Tree_protocol (Theorem 3.6)} *)

val tree_eq : string
val tree_fallback : string
val tree_rerun : string

(** {2 Trivial} *)

val trivial_offer : string
val trivial_reply : string

(** {2 Verified} *)

val verified_attempt : string
val verified_check : string

(** Every registered span name (including {!unattributed}), sorted,
    without duplicates.  This is the set rule R3 checks literals against
    and the one {!mem} consults. *)
val all : string list

(** [mem name] is true iff [name] is a registered phase name. *)
val mem : string -> bool
