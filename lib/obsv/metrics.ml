(* Value [v] lands in bucket [bits v]: 0 for 0, i for [2^(i-1), 2^i).  63
   buckets cover the full non-negative int range. *)
let bucket_count = 63

type histogram = {
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  buckets : int array;
}

type registry = {
  enabled : bool;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  sketches : (string, Sketch.t) Hashtbl.t;
}

let make ~enabled =
  {
    enabled;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    sketches = Hashtbl.create 16;
  }

let disabled = make ~enabled:false
let create () = make ~enabled:true
let enabled r = r.enabled

(* Domain-local, so a parallel trial engine can give every domain (or every
   trial) its own registry without racing: a freshly spawned domain starts
   at [disabled]. *)
let ambient_registry = Domain.DLS.new_key (fun () -> disabled)

let current () = Domain.DLS.get ambient_registry

let with_registry r f =
  let prev = Domain.DLS.get ambient_registry in
  Domain.DLS.set ambient_registry r;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_registry prev) f

let find tbl name create_v =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
      let v = create_v () in
      Hashtbl.replace tbl name v;
      v

let incr ?(by = 1) name =
  let r = Domain.DLS.get ambient_registry in
  if r.enabled then
    let c = find r.counters name (fun () -> ref 0) in
    c := !c + by

let set_gauge name v =
  let r = Domain.DLS.get ambient_registry in
  if r.enabled then
    let g = find r.gauges name (fun () -> ref 0) in
    g := v

let bucket_of v =
  if v <= 0 then 0
  else
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    min (bucket_count - 1) (bits 0 v)

let observe name v =
  let r = Domain.DLS.get ambient_registry in
  if r.enabled then begin
    let h =
      find r.histograms name (fun () ->
          { count = 0; sum = 0; min_v = max_int; max_v = min_int; buckets = Array.make bucket_count 0 })
    in
    h.count <- h.count + 1;
    h.sum <- h.sum + v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v;
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1
  end

let record name v =
  let r = Domain.DLS.get ambient_registry in
  if r.enabled then
    let s = find r.sketches name Sketch.create in
    Sketch.observe s v

let merge_sketch name src =
  let r = Domain.DLS.get ambient_registry in
  if r.enabled then
    let dst = find r.sketches name Sketch.create in
    Sketch.merge_into ~into:dst src

(* Order-free merge: counters and histograms add, gauges keep the maximum.
   "Latest value" is meaningless across independent parallel trials, so the
   gauge rule is chosen to be commutative; with addition everywhere else the
   merge is associative and commutative, which is what lets a trial engine
   combine per-worker registries in any grouping and still produce one
   deterministic registry. *)
let merge_into ~into src =
  if not into.enabled then invalid_arg "Metrics.merge_into: destination disabled";
  Hashtbl.iter
    (fun name c ->
      let dst = find into.counters name (fun () -> ref 0) in
      dst := !dst + !c)
    src.counters;
  Hashtbl.iter
    (fun name g ->
      let dst = find into.gauges name (fun () -> ref min_int) in
      dst := max !dst !g)
    src.gauges;
  Hashtbl.iter
    (fun name (h : histogram) ->
      let dst =
        find into.histograms name (fun () ->
            { count = 0; sum = 0; min_v = max_int; max_v = min_int; buckets = Array.make bucket_count 0 })
      in
      dst.count <- dst.count + h.count;
      dst.sum <- dst.sum + h.sum;
      if h.min_v < dst.min_v then dst.min_v <- h.min_v;
      if h.max_v > dst.max_v then dst.max_v <- h.max_v;
      Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) h.buckets)
    src.histograms;
  Hashtbl.iter
    (fun name s ->
      let dst = find into.sketches name Sketch.create in
      Sketch.merge_into ~into:dst s)
    src.sketches

let counter_value r name =
  match Hashtbl.find_opt r.counters name with Some c -> !c | None -> 0

let gauge_value r name = match Hashtbl.find_opt r.gauges name with Some g -> Some !g | None -> None
let histogram_of r name = Hashtbl.find_opt r.histograms name
let sketch_of r name = Hashtbl.find_opt r.sketches name

let sorted_keys tbl = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let counters_list r = List.map (fun k -> (k, !(Hashtbl.find r.counters k))) (sorted_keys r.counters)
let gauges_list r = List.map (fun k -> (k, !(Hashtbl.find r.gauges k))) (sorted_keys r.gauges)

let histograms_list r =
  List.map (fun k -> (k, Hashtbl.find r.histograms k)) (sorted_keys r.histograms)

let sketches_list r = List.map (fun k -> (k, Hashtbl.find r.sketches k)) (sorted_keys r.sketches)

(* The histogram analogue of {!Sketch.quantile}: walk the log2 buckets to
   the target rank and report the bucket's inclusive upper bound (2^i - 1),
   clamped to the observed extrema.  Coarse — one octave of relative error
   — but enough for the profile view; sketches are the precise option. *)
let histogram_quantile (h : histogram) ~per_mille =
  if h.count = 0 then None
  else begin
    let pm = if per_mille < 0 then 0 else if per_mille > 1000 then 1000 else per_mille in
    let target = max 1 (((h.count * pm) + 999) / 1000) in
    let cum = ref 0 in
    let answer = ref h.max_v in
    (try
       for i = 0 to bucket_count - 1 do
         cum := !cum + h.buckets.(i);
         if !cum >= target then begin
           let upper = if i = 0 then 0 else (1 lsl i) - 1 in
           answer := min upper h.max_v;
           raise Exit
         end
       done
     with Exit -> ());
    Some (max !answer h.min_v)
  end

(* Buckets are labelled by their upper bound: "<=2^i" holds [2^(i-1), 2^i). *)
let bucket_label i = if i = 0 then "0" else Printf.sprintf "<=2^%d" i

let to_json r =
  let counters =
    List.map (fun k -> (k, Stats.Json.Int !(Hashtbl.find r.counters k))) (sorted_keys r.counters)
  in
  let gauges =
    List.map (fun k -> (k, Stats.Json.Int !(Hashtbl.find r.gauges k))) (sorted_keys r.gauges)
  in
  let histograms =
    List.map
      (fun k ->
        let h = Hashtbl.find r.histograms k in
        let buckets =
          Array.to_list h.buckets
          |> List.mapi (fun i n -> (i, n))
          |> List.filter (fun (_, n) -> n > 0)
          |> List.map (fun (i, n) -> (bucket_label i, Stats.Json.Int n))
        in
        ( k,
          Stats.Json.Obj
            [
              ("count", Stats.Json.Int h.count);
              ("sum", Stats.Json.Int h.sum);
              ("min", if h.count = 0 then Stats.Json.Null else Stats.Json.Int h.min_v);
              ("max", if h.count = 0 then Stats.Json.Null else Stats.Json.Int h.max_v);
              ("buckets", Stats.Json.Obj buckets);
            ] ))
      (sorted_keys r.histograms)
  in
  let sketches =
    List.map (fun k -> (k, Sketch.to_json (Hashtbl.find r.sketches k))) (sorted_keys r.sketches)
  in
  Stats.Json.Obj
    [
      ("counters", Stats.Json.Obj counters);
      ("gauges", Stats.Json.Obj gauges);
      ("histograms", Stats.Json.Obj histograms);
      ("sketches", Stats.Json.Obj sketches);
    ]
