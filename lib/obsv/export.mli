(** Exporters over a {!Trace.collector}: Chrome [trace_event] JSON, a JSONL
    event stream, and the per-phase cost breakdown.

    All exports are pure functions of the collected events, which are
    themselves deterministic under a fixed seed — re-running the same
    seeded execution yields byte-identical output. *)

(** Phase name used for messages sent outside any span. *)
val unattributed : string

(** Chrome [trace_event] JSON (load in [chrome://tracing] or Perfetto):
    spans as complete events on one track per player (plus an orchestrator
    track), messages as instant events, with bits/depth/span in [args].
    The deterministic event sequence number stands in for microseconds. *)
val chrome_trace : Trace.collector -> Stats.Json.t

(** One compact JSON object per line ([span_open] / [message] /
    [span_close]), merged in sequence order. *)
val jsonl : Trace.collector -> string list

type phase = {
  phase : string;  (** span name, or {!unattributed} *)
  bits : int;
  messages : int;
  max_depth : int;
}

(** Per-phase ledger in order of first message: every message is counted
    exactly once (at its innermost span), so [bits] over all rows sums to
    the [Cost.total_bits] of the collected executions. *)
val phases : Trace.collector -> phase list

(** Sum of {!phases} bits — by construction the total bits of every message
    the collector saw. *)
val total_phase_bits : Trace.collector -> int

(** The ledger as a rendered {!Stats.Table} with a share column and a total
    row. *)
val phase_table : ?title:string -> Trace.collector -> Stats.Table.t

val phases_json : Trace.collector -> Stats.Json.t
