(** Exporters over a {!Trace.collector}: Chrome [trace_event] JSON, a JSONL
    event stream, and the per-phase cost breakdown.

    All exports are pure functions of the collected events, which are
    themselves deterministic under a fixed seed — re-running the same
    seeded execution yields byte-identical output. *)

(** Phase name used for messages sent outside any span. *)
val unattributed : string

(** Chrome [trace_event] JSON (load in [chrome://tracing] or Perfetto):
    spans as complete events on one track per player (plus an orchestrator
    track), messages as instant events, with bits/depth/span in [args].
    The deterministic event sequence number stands in for microseconds. *)
val chrome_trace : Trace.collector -> Stats.Json.t

(** One compact JSON object per line ([span_open] / [message] /
    [span_close]), merged in sequence order. *)
val jsonl : Trace.collector -> string list

type phase = {
  phase : string;  (** span name, or {!unattributed} *)
  bits : int;
  messages : int;
  max_depth : int;
  spans : int;  (** span instances carrying this name (0 for unattributed) *)
}

(** Per-phase ledger in order of first message: every message is counted
    exactly once (at its innermost span), so [bits] over all rows sums to
    the [Cost.total_bits] of the collected executions.  [spans] counts the
    span instances behind each row; rows are still created by messages
    only, keeping the bits-exactness property untouched. *)
val phases : Trace.collector -> phase list

(** Sum of {!phases} bits — by construction the total bits of every message
    the collector saw. *)
val total_phase_bits : Trace.collector -> int

(** [merge_phases ledgers] combines per-execution ledgers (e.g. one per
    engine trial) into one: rows with the same phase name add bits and
    messages and keep the deepest depth; row order is first appearance
    across [ledgers] in the order given.  Merged bits still sum to the sum
    of the inputs' bits, so the profile exactness check survives
    aggregation. *)
val merge_phases : phase list list -> phase list

(** The ledger as a rendered {!Stats.Table} with a share column and a total
    row. *)
val phase_table : ?title:string -> Trace.collector -> Stats.Table.t

(** {!phase_table} over an explicit (possibly merged) ledger. *)
val phase_table_of : ?title:string -> phase list -> Stats.Table.t

val phases_json : Trace.collector -> Stats.Json.t

(** {!phases_json} over an explicit (possibly merged) ledger. *)
val phases_json_of : phase list -> Stats.Json.t
