(* The span-name registry.  Every Trace.span call site refers to one of
   these constants; intersect_lint (rule R3) rejects string literals that
   are not in [all], so a phase name cannot drift from the registry. *)

let unattributed = "(unattributed)"
let app_join = "app/join"
let app_similarity = "app/similarity"
let app_sketch = "app/sketch"
let app_sync = "app/sync"
let app_union = "app/union"
let bi_sizes = "bi/sizes"
let bi_tags = "bi/tags"
let bucket_assign = "bucket/assign"
let bucket_eq = "bucket/eq"
let disj_round = "disj/round"
let eq_exact = "eq/exact"
let eq_joint = "eq/joint"
let eq_tags = "eq/tags"
let multiparty_broadcast = "multiparty/broadcast"
let orh_tags = "orh/tags"
let private_seed = "private/seed"
let resilient_attempt = "resilient/attempt"
let resilient_fallback = "resilient/fallback"
let resilient_verify = "resilient/verify"
let session_attempt = "session/attempt"
let session_backoff = "session/backoff"
let session_fallback = "session/fallback"
let session_resume = "session/resume"
let star_coordinate = "star/coordinate"
let star_pair = "star/pair"
let telemetry_health = "telemetry/health"
let telemetry_snapshot = "telemetry/snapshot"
let tour_pass = "tour/pass"
let tour_root_check = "tour/root-check"
let tour_verdict = "tour/verdict"
let tree_eq = "tree/eq"
let tree_fallback = "tree/fallback"
let tree_rerun = "tree/rerun"
let trivial_offer = "trivial/offer"
let trivial_reply = "trivial/reply"
let verified_attempt = "verified/attempt"
let verified_check = "verified/check"

let all =
  [
    unattributed;
    app_join;
    app_similarity;
    app_sketch;
    app_sync;
    app_union;
    bi_sizes;
    bi_tags;
    bucket_assign;
    bucket_eq;
    disj_round;
    eq_exact;
    eq_joint;
    eq_tags;
    multiparty_broadcast;
    orh_tags;
    private_seed;
    resilient_attempt;
    resilient_fallback;
    resilient_verify;
    session_attempt;
    session_backoff;
    session_fallback;
    session_resume;
    star_coordinate;
    star_pair;
    telemetry_health;
    telemetry_snapshot;
    tour_pass;
    tour_root_check;
    tour_verdict;
    tree_eq;
    tree_fallback;
    tree_rerun;
    trivial_offer;
    trivial_reply;
    verified_attempt;
    verified_check;
  ]

let mem name = List.mem name all
