(** Phase-attributed tracing.

    A {!collector} records a timeline of {e spans} (named phases of a
    protocol, opened and closed by the code that implements them) and
    {e message events} (one per payload that crosses the simulated wire,
    recorded by {!Commsim.Network}).  Every message is attributed to the
    innermost span its {e sender} had open at send time, so per-phase
    communication budgets fall out of the record exactly: summing message
    bits per span name reproduces [Cost.total_bits] with no double counting.

    Time is a deterministic event sequence number (span open, message, span
    close each advance it by one), never a wall clock, so a fixed seed
    yields a byte-identical trace.

    The collector is ambient: {!with_collector} installs one for the
    duration of a run and instrumented code calls {!span} without threading
    a handle.  The default is {!disabled}, a shared no-op: when nobody is
    tracing, {!span} costs one load and one branch and allocates nothing,
    and the simulator's cost accounting is untouched either way. *)

type attr = string * string

type span = {
  id : int;  (** 1-based, in creation order *)
  name : string;
  attrs : attr list;
  rank : int option;  (** opening player, [None] = orchestrator code *)
  parent : int option;  (** enclosing span id *)
  start_seq : int;
  mutable end_seq : int;  (** [-1] while open (player abandoned mid-span) *)
  mutable bits : int;  (** payload bits attributed directly to this span *)
  mutable messages : int;
}

type message = {
  seq : int;
  from_ : int;
  to_ : int;
  bits : int;
  depth : int;  (** causal depth, as in {!Commsim.Network.trace_entry} *)
  span : int option;  (** innermost open span of the sender *)
}

type collector

(** The shared no-op collector (the ambient default). *)
val disabled : collector

val create : unit -> collector
val enabled : collector -> bool

(** The ambient collector ({!disabled} unless inside {!with_collector}). *)
val current : unit -> collector

(** [with_collector c f] installs [c] as the ambient collector for the
    duration of [f] (restored on exception). *)
val with_collector : collector -> (unit -> 'a) -> 'a

(** [span ~attrs name f] runs [f] inside a span named [name] on the ambient
    collector.  Inside a simulated execution the span belongs to the player
    whose code opened it; outside it belongs to the orchestrator and acts
    as a fallback parent for every player.  No-op when tracing is
    disabled. *)
val span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a

(** Scheduler hook: the player about to run ([None] outside a simulated
    execution).  Called by {!Commsim.Network}. *)
val set_rank : collector -> int option -> unit

(** Scheduler hook: record one delivered payload and return the id of the
    sender's innermost open span.  Called by {!Commsim.Network} at delivery
    time; [None] when disabled or unattributed. *)
val on_message : collector -> from_:int -> to_:int -> bits:int -> depth:int -> int option

(** All spans in creation order. *)
val spans : collector -> span list

(** All message events in send (delivery) order. *)
val messages : collector -> message list

(** The sequence number one past the last event; exporters use it to close
    spans whose players never returned. *)
val final_seq : collector -> int
