(** Event-time snapshots of a {!Metrics} registry, diffed into a JSONL
    time series.

    A snapshot copies the registry's sorted counters and gauges and
    summarizes each histogram and sketch down to count/sum/percentiles.
    [at] is {e event time} — sessions completed, trials run — never a
    wall clock, and every derived quantity (deltas, per-1000 rates) is
    integer arithmetic, so the emitted stream is byte-identical for a
    fixed seed at any domain count. *)

type hist_summary = { h_count : int; h_sum : int; h_p50 : int; h_p90 : int; h_p99 : int }

type sketch_summary = {
  s_count : int;
  s_sum : int;
  s_min : int;
  s_max : int;
  s_p50 : int;
  s_p90 : int;
  s_p99 : int;
  s_p999 : int;
}

type t = {
  seq : int;  (** position in the snapshot stream, from 0 *)
  at : int;  (** event-time stamp (e.g. sessions completed so far) *)
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;  (** sorted by name *)
  histograms : (string * hist_summary) list;  (** sorted by name *)
  sketches : (string * sketch_summary) list;  (** sorted by name *)
}

(** [take ~seq ~at registry] snapshots [registry] now (inside a
    [telemetry/snapshot] span, so snapshot overhead is itself visible in
    traces). *)
val take : seq:int -> at:int -> Metrics.registry -> t

(** [counter t name] is the snapshotted value (0 when absent). *)
val counter : t -> string -> int

val gauge : t -> string -> int option
val sketch : t -> string -> sketch_summary option

(** One snapshot as a single-line-able JSON object
    ([{"event":"snapshot"; ...}]). *)
val to_json : t -> Stats.Json.t

(** [rates_json ~prev t] derives integer rates from two consecutive
    snapshots ([{"event":"rates"; ...}]): per-counter [delta] and
    [per_1000] ([delta * 1000 / dt], floor division; 0 when [dt <= 0]).
    Unchanged counters are omitted. *)
val rates_json : prev:t -> t -> Stats.Json.t

(** The full JSONL series: each snapshot line followed by its rates line
    (snapshots after the first). *)
val series_lines : t list -> string list
