(* Log-linear quantile sketch (HdrHistogram-style): each power-of-two
   octave is split into 16 linear sub-buckets, so the bucket scheme is a
   pure integer function of the value with <= 1/16 relative error at any
   scale.  Everything is integer arithmetic — no floats anywhere — so a
   merge of per-domain sketches is bucket-pointwise addition and two
   merge orders produce byte-identical JSON. *)

(* Values 0..15 get exact unit buckets; a value with most-significant bit
   m >= 4 lands in octave m - 4, sub-bucket = next 4 bits.  63-bit native
   ints top out at m = 62, hence 16 + 59*16 = 960 buckets. *)
let sub_bits = 4
let sub_count = 1 lsl sub_bits
let bucket_count = sub_count * 60

let bucket_of v =
  if v <= 0 then 0
  else if v < sub_count then v
  else begin
    let msb = ref 0 in
    let x = ref v in
    while !x > 1 do
      incr msb;
      x := !x lsr 1
    done;
    let sub = (v lsr (!msb - sub_bits)) - sub_count in
    (sub_count * (!msb - (sub_bits - 1))) + sub
  end

(* Inclusive upper bound of bucket [i] — the deterministic representative
   a quantile query reports. *)
let bucket_upper i =
  if i < sub_count then i
  else
    let msb = (i / sub_count) + (sub_bits - 1) in
    let sub = i mod sub_count in
    let low = (sub_count + sub) lsl (msb - sub_bits) in
    low + (1 lsl (msb - sub_bits)) - 1

type t = {
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  buckets : int array;
}

let create () =
  { count = 0; sum = 0; min_v = max_int; max_v = min_int; buckets = Array.make bucket_count 0 }

let observe t v =
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  let b = bucket_of v in
  t.buckets.(b) <- t.buckets.(b) + 1

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then None else Some t.min_v
let max_value t = if t.count = 0 then None else Some t.max_v

(* Pointwise addition everywhere (min/max combine), so the merge is
   associative and commutative: any grouping of per-domain sketches
   reaches the same buckets, hence the same quantiles and the same
   bytes on export. *)
let merge_into ~into src =
  into.count <- into.count + src.count;
  into.sum <- into.sum + src.sum;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v;
  Array.iteri (fun i n -> if n > 0 then into.buckets.(i) <- into.buckets.(i) + n) src.buckets

(* Rank ceil(count * per_mille / 1000), clamped to [1, count]; the answer
   is the holding bucket's upper bound, clamped to the observed maximum so
   p999 of a constant stream is that constant. *)
let quantile t ~per_mille =
  if t.count = 0 then 0
  else begin
    let pm = if per_mille < 0 then 0 else if per_mille > 1000 then 1000 else per_mille in
    let target = max 1 (((t.count * pm) + 999) / 1000) in
    let cum = ref 0 in
    let answer = ref t.max_v in
    (try
       for i = 0 to bucket_count - 1 do
         cum := !cum + t.buckets.(i);
         if !cum >= target then begin
           answer := min (bucket_upper i) t.max_v;
           raise Exit
         end
       done
     with Exit -> ());
    !answer
  end

let p50 t = quantile t ~per_mille:500
let p90 t = quantile t ~per_mille:900
let p99 t = quantile t ~per_mille:990
let p999 t = quantile t ~per_mille:999

let to_json t =
  let buckets =
    Array.to_list t.buckets
    |> List.mapi (fun i n -> (i, n))
    |> List.filter (fun (_, n) -> n > 0)
    |> List.map (fun (i, n) -> (Printf.sprintf "<=%d" (bucket_upper i), Stats.Json.Int n))
  in
  Stats.Json.Obj
    [
      ("count", Stats.Json.Int t.count);
      ("sum", Stats.Json.Int t.sum);
      ("min", if t.count = 0 then Stats.Json.Null else Stats.Json.Int t.min_v);
      ("max", if t.count = 0 then Stats.Json.Null else Stats.Json.Int t.max_v);
      ("p50", if t.count = 0 then Stats.Json.Null else Stats.Json.Int (p50 t));
      ("p90", if t.count = 0 then Stats.Json.Null else Stats.Json.Int (p90 t));
      ("p99", if t.count = 0 then Stats.Json.Null else Stats.Json.Int (p99 t));
      ("p999", if t.count = 0 then Stats.Json.Null else Stats.Json.Int (p999 t));
      ("buckets", Stats.Json.Obj buckets);
    ]
