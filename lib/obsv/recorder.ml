(* A bounded ring-buffer flight recorder, ambient like Trace/Metrics so
   the session machine can record ladder events without threading a
   handle through every call.  The default is the shared disabled
   recorder: when flight recording is off, [event] costs one DLS load
   and one branch and allocates nothing. *)

type ev = { seq : int; kind : string; detail : string; attrs : (string * string) list }

let none = { seq = 0; kind = ""; detail = ""; attrs = [] }

type t = {
  enabled : bool;
  capacity : int;
  buf : ev array;
  mutable total : int;  (* events ever offered; buf keeps the last [capacity] *)
}

let default_capacity = 64

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Recorder.create: capacity must be >= 1";
  { enabled = true; capacity; buf = Array.make capacity none; total = 0 }

let disabled = { enabled = false; capacity = 0; buf = [||]; total = 0 }

let ambient_recorder = Domain.DLS.new_key (fun () -> disabled)
let current () = Domain.DLS.get ambient_recorder
let active () = (Domain.DLS.get ambient_recorder).enabled

let with_recorder r f =
  let prev = Domain.DLS.get ambient_recorder in
  Domain.DLS.set ambient_recorder r;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_recorder prev) f

(* The one write entry point — lint rule R6 restricts its callers to
   lib/session and lib/obsv.  Overwrites the oldest slot once full: the
   memory bound is [capacity] events regardless of session length. *)
let event ?(attrs = []) ~kind detail =
  let r = Domain.DLS.get ambient_recorder in
  if r.enabled then begin
    let seq = r.total in
    r.buf.(seq mod r.capacity) <- { seq; kind; detail; attrs };
    r.total <- r.total + 1
  end

let recorded r = r.total
let retained r = min r.total r.capacity
let dropped r = max 0 (r.total - r.capacity)
let capacity r = r.capacity

(* Chronological view of the surviving window (oldest first). *)
let events r =
  let n = retained r in
  List.init n (fun i -> r.buf.((r.total - n + i) mod r.capacity))

let ev_json e =
  let base =
    [
      ("seq", Stats.Json.Int e.seq);
      ("kind", Stats.Json.Str e.kind);
      ("detail", Stats.Json.Str e.detail);
    ]
  in
  let attrs =
    if e.attrs = [] then []
    else [ ("attrs", Stats.Json.Obj (List.map (fun (k, v) -> (k, Stats.Json.Str v)) e.attrs)) ]
  in
  Stats.Json.Obj (base @ attrs)

(* The dump is assembled only when a caller decides the session's ending
   deserves one (non-exact outcome) — recording itself never formats. *)
let post_mortem_json ?outcome r =
  let outcome_field =
    match outcome with None -> [] | Some o -> [ ("outcome", Stats.Json.Str o) ]
  in
  Stats.Json.Obj
    (("event", Stats.Json.Str "post-mortem")
     :: outcome_field
    @ [
        ("recorded", Stats.Json.Int (recorded r));
        ("dropped", Stats.Json.Int (dropped r));
        ("capacity", Stats.Json.Int (capacity r));
        ("events", Stats.Json.List (List.map ev_json (events r)));
      ])
