(* SLO evaluation over a snapshot stream.  The metric-name contract
   below is the single source of truth shared with the fleet harness
   (Workload.Telemetry): the harness writes these names, the evaluator
   reads them back from a Snapshot.t. *)

let k_sessions = "fleet/sessions"
let k_wrong = "fleet/wrong"
let k_attempts = "fleet/attempts"
let k_resumes = "fleet/resumes"
let k_outcome outcome = "fleet/outcome/" ^ outcome
let k_failure kind = "fleet/failures/" ^ kind
let k_spent_bits = "fleet/spent_bits"
let k_backoff_ticks = "fleet/backoff_ticks"
let k_wasted_bits = "fleet/wasted_bits"
let k_deadline_bits = "fleet/deadline_bits"

type slos = {
  max_failed_safe_per_mille : int;
  max_degraded_per_mille : int;
  max_p99_burn_per_mille : int;
}

(* Wrong answers are not an SLO parameter: the bound is 0, always (the
   session layer's core guarantee).  The defaults below say: at most 5%
   of sessions may end failed-safe, at most 25% may need the degraded
   fallback, and the p99 session must burn at most 90% of its deadline. *)
let default_slos =
  { max_failed_safe_per_mille = 50; max_degraded_per_mille = 250; max_p99_burn_per_mille = 900 }

type verdict = { slo : string; ok : bool; measured : int; limit : int; detail : string }

type report = { ok : bool; sessions : int; verdicts : verdict list }

let per_mille part whole = if whole <= 0 then 0 else part * 1000 / whole

let evaluate ?(slos = default_slos) snap =
  Trace.span Phases.telemetry_health (fun () ->
      let sessions = Snapshot.counter snap k_sessions in
      let wrong = Snapshot.counter snap k_wrong in
      let failed_safe = Snapshot.counter snap (k_outcome "failed_safe") in
      let degraded = Snapshot.counter snap (k_outcome "degraded") in
      let observed =
        {
          slo = "sessions-observed";
          ok = sessions > 0;
          measured = sessions;
          limit = 1;
          detail = "at least one session must have been observed";
        }
      in
      let wrong_v =
        {
          slo = "wrong-rate-zero";
          ok = wrong = 0;
          measured = wrong;
          limit = 0;
          detail = "wrong intersections reported (the bound is 0, always)";
        }
      in
      let failed_v =
        let m = per_mille failed_safe sessions in
        {
          slo = "failed-safe-rate";
          ok = m <= slos.max_failed_safe_per_mille;
          measured = m;
          limit = slos.max_failed_safe_per_mille;
          detail = Printf.sprintf "%d of %d sessions ended failed-safe" failed_safe sessions;
        }
      in
      let degraded_v =
        let m = per_mille degraded sessions in
        {
          slo = "degraded-rate";
          ok = m <= slos.max_degraded_per_mille;
          measured = m;
          limit = slos.max_degraded_per_mille;
          detail = Printf.sprintf "%d of %d sessions used the degraded fallback" degraded sessions;
        }
      in
      let burn_v =
        match (Snapshot.sketch snap k_spent_bits, Snapshot.gauge snap k_deadline_bits) with
        | Some sk, Some deadline when deadline > 0 ->
            let m = per_mille sk.Snapshot.s_p99 deadline in
            Some
              {
                slo = "p99-budget-burn";
                ok = m <= slos.max_p99_burn_per_mille;
                measured = m;
                limit = slos.max_p99_burn_per_mille;
                detail =
                  Printf.sprintf "p99 session spent %d of a %d-bit deadline" sk.Snapshot.s_p99
                    deadline;
              }
        | _ -> None
      in
      let verdicts =
        [ observed; wrong_v; failed_v; degraded_v ]
        @ (match burn_v with Some v -> [ v ] | None -> [])
      in
      { ok = List.for_all (fun (v : verdict) -> v.ok) verdicts; sessions; verdicts })

let verdict_json v =
  Stats.Json.Obj
    [
      ("slo", Stats.Json.Str v.slo);
      ("ok", Stats.Json.Bool v.ok);
      ("measured", Stats.Json.Int v.measured);
      ("limit", Stats.Json.Int v.limit);
      ("detail", Stats.Json.Str v.detail);
    ]

let to_json r =
  Stats.Json.Obj
    [
      ("event", Stats.Json.Str "health");
      ("ok", Stats.Json.Bool r.ok);
      ("sessions", Stats.Json.Int r.sessions);
      ("verdicts", Stats.Json.List (List.map verdict_json r.verdicts));
    ]

let slos_json s =
  Stats.Json.Obj
    [
      ("max_failed_safe_per_mille", Stats.Json.Int s.max_failed_safe_per_mille);
      ("max_degraded_per_mille", Stats.Json.Int s.max_degraded_per_mille);
      ("max_p99_burn_per_mille", Stats.Json.Int s.max_p99_burn_per_mille);
    ]

let table r =
  let t =
    Stats.Table.create ~title:"SLO health"
      ~columns:[ "slo"; "status"; "measured"; "limit"; "detail" ]
  in
  List.iter
    (fun v ->
      Stats.Table.add_row t
        [
          v.slo;
          (if v.ok then "ok" else "VIOLATED");
          string_of_int v.measured;
          string_of_int v.limit;
          v.detail;
        ])
    r.verdicts;
  t
