type attr = string * string

type span = {
  id : int;
  name : string;
  attrs : attr list;
  rank : int option;
  parent : int option;
  start_seq : int;
  mutable end_seq : int;
  mutable bits : int;
  mutable messages : int;
}

type message = {
  seq : int;
  from_ : int;
  to_ : int;
  bits : int;
  depth : int;
  span : int option;
}

type collector = {
  enabled : bool;
  mutable next_seq : int;
  mutable next_span_id : int;
  mutable spans_rev : span list;
  mutable messages_rev : message list;
  mutable ambient : span list;
  stacks : (int, span list) Hashtbl.t;
  mutable current_rank : int option;
}

let make ~enabled =
  {
    enabled;
    next_seq = 0;
    next_span_id = 1;
    spans_rev = [];
    messages_rev = [];
    ambient = [];
    stacks = Hashtbl.create 8;
    current_rank = None;
  }

(* The shared no-op collector: the ambient default, so instrumented code pays
   one load + one branch when nobody is tracing. *)
let disabled = make ~enabled:false
let create () = make ~enabled:true
let enabled c = c.enabled

(* Domain-local, so trial engines can run one collector per domain without
   racing: a freshly spawned domain starts at [disabled]. *)
let ambient_collector = Domain.DLS.new_key (fun () -> disabled)

let current () = Domain.DLS.get ambient_collector

let with_collector c f =
  let prev = Domain.DLS.get ambient_collector in
  Domain.DLS.set ambient_collector c;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_collector prev) f

let next_seq c =
  let s = c.next_seq in
  c.next_seq <- s + 1;
  s

let stack_of c rank = match Hashtbl.find_opt c.stacks rank with Some s -> s | None -> []
let top = function [] -> None | sp :: _ -> Some sp

(* The innermost open span of player [rank]; a player with no open span of
   its own inherits the orchestrator's (ambient) innermost span, so e.g. a
   retry wrapper's attempt span catches messages of uninstrumented code. *)
let innermost c ~rank =
  match top (stack_of c rank) with Some sp -> Some sp | None -> top c.ambient

let set_rank c rank = if c.enabled then c.current_rank <- rank

let span ?(attrs = []) name f =
  let c = Domain.DLS.get ambient_collector in
  if not c.enabled then f ()
  else begin
    let rank = c.current_rank in
    let parent =
      match rank with
      | None -> top c.ambient
      | Some r -> ( match top (stack_of c r) with Some sp -> Some sp | None -> top c.ambient)
    in
    let sp =
      {
        id = c.next_span_id;
        name;
        attrs;
        rank;
        parent = Option.map (fun p -> p.id) parent;
        start_seq = next_seq c;
        end_seq = -1;
        bits = 0;
        messages = 0;
      }
    in
    c.next_span_id <- sp.id + 1;
    c.spans_rev <- sp :: c.spans_rev;
    (match rank with
    | None -> c.ambient <- sp :: c.ambient
    | Some r -> Hashtbl.replace c.stacks r (sp :: stack_of c r));
    Fun.protect
      ~finally:(fun () ->
        sp.end_seq <- next_seq c;
        match rank with
        | None -> (
            match c.ambient with s :: rest when s == sp -> c.ambient <- rest | _ -> ())
        | Some r -> (
            match stack_of c r with
            | s :: rest when s == sp -> Hashtbl.replace c.stacks r rest
            | _ -> ()))
      f
  end

let on_message c ~from_ ~to_ ~bits ~depth =
  if not c.enabled then None
  else begin
    let sp = innermost c ~rank:from_ in
    (match sp with
    | Some s ->
        s.bits <- s.bits + bits;
        s.messages <- s.messages + 1
    | None -> ());
    let span = Option.map (fun (s : span) -> s.id) sp in
    c.messages_rev <- { seq = next_seq c; from_; to_; bits; depth; span } :: c.messages_rev;
    span
  end

let spans c = List.rev c.spans_rev
let messages c = List.rev c.messages_rev
let final_seq c = c.next_seq
