(** A metrics registry: named counters, gauges, and log₂-scaled histograms
    that protocol code records into.

    Like {!Trace}, the registry is ambient ({!with_registry}) and the
    default is {!disabled}, so instrumentation in hot paths costs one load
    and one branch when metrics are off.  All values are integers and all
    exports sort their keys, so a fixed seed produces byte-identical
    output. *)

type registry

(** The shared no-op registry (the ambient default). *)
val disabled : registry

val create : unit -> registry
val enabled : registry -> bool

(** The ambient registry ({!disabled} unless inside {!with_registry}). *)
val current : unit -> registry

val with_registry : registry -> (unit -> 'a) -> 'a

(** [incr ?by name] bumps counter [name] (created at zero on first use). *)
val incr : ?by:int -> string -> unit

(** [set_gauge name v] records the latest value of [name]. *)
val set_gauge : string -> int -> unit

(** [observe name v] adds [v] to histogram [name].  Buckets are powers of
    two: [v] lands in the bucket for [2^(i-1) <= v < 2^i] (bucket "0" holds
    non-positive values), so payload sizes, widths and occupancies keep a
    compact, deterministic shape. *)
val observe : string -> int -> unit

(** [record name v] adds [v] to the quantile {!Sketch} named [name]
    (created on first use).  Sketches are the fine-grained (1/16 relative
    error) complement to the octave-wide histograms: use them where a
    tail percentile is the headline number (session spend, latency). *)
val record : string -> int -> unit

(** [merge_sketch name src] folds a pre-accumulated sketch into the
    ambient sketch named [name] (created on first use; no-op when metrics
    are off).  The bucket-pointwise merge is what lets a parallel sweep
    accumulate bit distributions in private per-chunk sketches and publish
    the combined sketch once per cell instead of once per trial. *)
val merge_sketch : string -> Sketch.t -> unit

(** [merge_into ~into src] folds [src] into [into]: counters add, histograms
    and sketches add pointwise (count, sum, buckets; min/max combine), and
    gauges keep the {e maximum} — "latest" is meaningless across independent
    parallel trials, and max is order-free.  The merge is associative and
    commutative, so a trial engine may combine per-worker registries in any
    grouping and reach the same final registry.  [src] is unchanged; [into]
    must be enabled. *)
val merge_into : into:registry -> registry -> unit

(** Readbacks for tests and reports (0 / [None] when never recorded). *)
val counter_value : registry -> string -> int

val gauge_value : registry -> string -> int option

type histogram = {
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  buckets : int array;
}

val histogram_of : registry -> string -> histogram option
val sketch_of : registry -> string -> Sketch.t option

(** Sorted (hence deterministic) enumerations, for snapshotting the whole
    registry. *)
val counters_list : registry -> (string * int) list

val gauges_list : registry -> (string * int) list
val histograms_list : registry -> (string * histogram) list
val sketches_list : registry -> (string * Sketch.t) list

(** [histogram_quantile h ~per_mille] is the value at rank
    [ceil(count * per_mille / 1000)], reported as the holding log₂
    bucket's inclusive upper bound ([2^i - 1]) clamped to the observed
    extrema; [None] on an empty histogram.  Coarse (one octave of
    relative error) — {!Sketch} is the precise alternative. *)
val histogram_quantile : histogram -> per_mille:int -> int option

(** Deterministic export: keys sorted, only non-empty buckets, shape
    [{counters; gauges; histograms; sketches}]. *)
val to_json : registry -> Stats.Json.t
