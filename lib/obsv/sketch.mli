(** A deterministic, mergeable quantile sketch over non-negative integers.

    Log-linear (HdrHistogram-style) bucketing: values [0..15] get exact
    unit buckets; above that each power-of-two octave is split into 16
    linear sub-buckets, bounding the relative error of any reported
    quantile by 1/16.  The bucket index is a pure integer function of the
    value and the merge is bucket-pointwise addition — associative and
    commutative — so per-domain sketches combined in any order (the
    {!Engine.Merge} reduction tree varies with the domain count) export
    byte-identical JSON, satisfying the PR-3 [cmp] determinism gate.

    Quantiles are reported as the inclusive upper bound of the bucket
    holding the requested rank, clamped to the observed maximum; with
    integer ranks [ceil(count * q)] the result is again independent of
    merge order. *)

type t

val create : unit -> t

(** [observe t v] records [v].  Negative values clamp to bucket 0 (they
    never occur in bit ledgers; the clamp keeps the function total). *)
val observe : t -> int -> unit

val count : t -> int
val sum : t -> int
val min_value : t -> int option
val max_value : t -> int option

(** [merge_into ~into src] adds [src]'s population to [into];
    associative and commutative. *)
val merge_into : into:t -> t -> unit

(** [quantile t ~per_mille] is the value at rank
    [ceil(count * per_mille / 1000)] (clamped to [[1, count]]), or [0] on
    an empty sketch.  [per_mille] is clamped to [[0, 1000]]. *)
val quantile : t -> per_mille:int -> int

val p50 : t -> int
val p90 : t -> int
val p99 : t -> int
val p999 : t -> int

(** Deterministic export: count/sum/min/max, the four canonical
    quantiles, and the non-empty buckets keyed ["<=upper"] in index
    order. *)
val to_json : t -> Stats.Json.t

(** {2 Bucket scheme} — exposed for tests and for documenting the
    export format. *)

(** Total number of addressable buckets (960: 16 unit buckets plus 59
    octaves of 16 sub-buckets, covering all positive 63-bit ints). *)
val bucket_count : int

(** [bucket_of v] is the index of the bucket holding [v]. *)
val bucket_of : int -> int

(** [bucket_upper i] is the largest value mapping to bucket [i]. *)
val bucket_upper : int -> int
