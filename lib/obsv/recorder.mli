(** A bounded per-session flight recorder: a fixed-capacity ring buffer of
    structured session events (ladder transitions, backoff, checkpoint,
    deadline and fault diagnoses) kept so that {e when} a session ends in
    a non-exact outcome, the last [capacity] events can be dumped as a
    structured post-mortem — without paying for event storage growth on
    the happy path.

    Like {!Trace} and {!Metrics} the recorder is ambient with a shared
    {!disabled} default, so the instrumented hot path costs one
    domain-local load and one branch when flight recording is off.

    {b Write discipline.}  {!event} is the only write entry point, and
    lint rule R6 restricts its call sites to [lib/session] and
    [lib/obsv]: the recorder narrates the session state machine, it is
    not a general logging facility.  Reading ({!events},
    {!post_mortem_json}) is unrestricted. *)

type ev = { seq : int; kind : string; detail : string; attrs : (string * string) list }
type t

val default_capacity : int

(** [create ?capacity ()] makes an enabled recorder holding the last
    [capacity] (default {!default_capacity}) events.  Raises
    [Invalid_argument] if [capacity < 1]. *)
val create : ?capacity:int -> unit -> t

(** The shared no-op recorder (the ambient default). *)
val disabled : t

val current : unit -> t

(** [active ()] is true when the ambient recorder is enabled — use it to
    guard any formatting work at the call site. *)
val active : unit -> bool

val with_recorder : t -> (unit -> 'a) -> 'a

(** [event ?attrs ~kind detail] appends an event, overwriting the oldest
    once the ring is full.  No-op (and allocation-free) on a disabled
    recorder.  Restricted write entry point — see the module preamble. *)
val event : ?attrs:(string * string) list -> kind:string -> string -> unit

(** Events ever offered (including overwritten ones). *)
val recorded : t -> int

(** Events currently held ([min recorded capacity]). *)
val retained : t -> int

(** Events lost to the ring bound ([recorded - capacity], at least 0). *)
val dropped : t -> int

val capacity : t -> int

(** Surviving window, oldest first; [seq] exposes each event's position
    in the full (pre-drop) stream. *)
val events : t -> ev list

(** Structured dump: outcome (if given), recorded/dropped/capacity, and
    the surviving events.  Assembled lazily by the caller that decides a
    post-mortem is warranted — recording never formats. *)
val post_mortem_json : ?outcome:string -> t -> Stats.Json.t
