open Intersect

let run_internal ?r ?(max_attempts = 30) ~broadcast rng ~universe ~k sets =
  if k < 1 then invalid_arg "Star.run: k";
  Array.iter (fun set -> Protocol.validate_inputs ~universe set set) sets;
  let m = Array.length sets in
  if m = 0 then invalid_arg "Star.run: no players";
  if m = 1 then ([| sets.(0) |], Commsim.Cost.zero ~players:1)
  else begin
    let r = match r with Some r -> max 1 r | None -> max 1 (Iterated_log.log_star k) in
    let bits = max 16 (2 * k) in
    let group_size = Group.size ~k in
    let pair_party holding role attempt_rng chan =
      Tree_protocol.run_party role attempt_rng ~universe ~r ~k chan holding
    in
    let player rank mine ep =
      let holding = ref mine in
      let active = ref (List.init m Fun.id) in
      let level = ref 0 in
      let still_active = ref true in
      while !still_active && List.length !active > 1 do
        let groups = Group.chunk !active ~size:group_size in
        let my_group = List.find (fun group -> List.mem rank group) groups in
        (match my_group with
        | [] -> assert false
        | coordinator :: members ->
            let pair_rng member =
              Prng.Rng.with_label rng (Printf.sprintf "star/l%d/pair%d" !level member)
            in
            let level_attrs = [ ("level", string_of_int !level) ] in
            if rank = coordinator then
              Obsv.Trace.span Obsv.Phases.star_coordinate ~attrs:level_attrs (fun () ->
                  let sessions =
                    List.map
                      (fun member ->
                        ( member,
                          fun chan ->
                            (Verified.run_party `Bob (pair_rng member) ~bits ~max_attempts chan
                               ~party:(pair_party !holding `Bob))
                              .Verified.candidate ))
                      members
                  in
                  let results = Commsim.Multiplex.run ep sessions in
                  holding := List.fold_left Iset.inter !holding results)
            else
              Obsv.Trace.span Obsv.Phases.star_pair ~attrs:level_attrs (fun () ->
                  let chan = Commsim.Chan.of_endpoint ep ~peer:coordinator in
                  let candidate =
                    (Verified.run_party `Alice (pair_rng rank) ~bits ~max_attempts chan
                       ~party:(pair_party !holding `Alice))
                      .Verified.candidate
                  in
                  holding := candidate;
                  still_active := false));
        active := List.map List.hd groups;
        incr level
      done;
      if broadcast then Broadcast.run ep !holding else !holding
    in
    Commsim.Network.run (Array.init m (fun rank -> player rank sets.(rank)))
  end

let run ?r ?max_attempts ?(broadcast = false) rng ~universe ~k sets =
  let results, cost = run_internal ?r ?max_attempts ~broadcast rng ~universe ~k sets in
  (results.(0), cost)

let run_all ?r ?max_attempts rng ~universe ~k sets =
  run_internal ?r ?max_attempts ~broadcast:true rng ~universe ~k sets
