open Intersect

let depth_of g =
  let rec loop d = if 1 lsl d >= g then d else loop (d + 1) in
  loop 0

let run_internal ?r ?(max_attempts = 30) ~broadcast rng ~universe ~k sets =
  if k < 1 then invalid_arg "Tournament.run: k";
  Array.iter (fun set -> Protocol.validate_inputs ~universe set set) sets;
  let m = Array.length sets in
  if m = 0 then invalid_arg "Tournament.run: no players";
  if m = 1 then ([| sets.(0) |], Commsim.Cost.zero ~players:1)
  else begin
    let r = match r with Some r -> max 1 r | None -> max 1 (Iterated_log.log_star k) in
    let check_bits = max 16 k in
    let group_size = Group.size ~k in
    let player rank mine ep =
      let holding = ref mine in
      let active = ref (List.init m Fun.id) in
      let level = ref 0 in
      let still_active = ref true in
      while !still_active && List.length !active > 1 do
        let groups = Group.chunk !active ~size:group_size in
        let my_group = List.find (fun group -> List.mem rank group) groups in
        let group = Array.of_list my_group in
        let g = Array.length group in
        let my_pos = ref 0 in
        Array.iteri (fun pos member -> if member = rank then my_pos := pos) group;
        let my_pos = !my_pos in
        let depth = depth_of g in
        let chan_to pos = Commsim.Chan.of_endpoint ep ~peer:group.(pos) in
        (* One full tournament pass; returns the root verdict. *)
        let run_attempt attempt =
          Obsv.Trace.span Obsv.Phases.tour_pass
            ~attrs:[ ("level", string_of_int !level); ("attempt", string_of_int attempt) ]
          @@ fun () ->
          let candidate = ref !holding in
          for t = 1 to depth do
            let stride = 1 lsl t in
            let half = stride / 2 in
            let pair_rng low_pos =
              Prng.Rng.with_label rng
                (Printf.sprintf "tour/a%d/l%d/t%d/low%d" attempt !level t group.(low_pos))
            in
            if my_pos mod stride = 0 && my_pos + half < g then
              candidate :=
                Tree_protocol.run_party `Alice (pair_rng my_pos) ~universe ~r ~k
                  (chan_to (my_pos + half))
                  !candidate
            else if my_pos mod stride = half then
              candidate :=
                Tree_protocol.run_party `Bob
                  (pair_rng (my_pos - half))
                  ~universe ~r ~k
                  (chan_to (my_pos - half))
                  !candidate
          done;
          (* Root certification (k-bit equality between the two finalists),
             then a binomial broadcast of the verdict from position 0. *)
          let verdict = ref true in
          if g >= 2 then begin
            let root_partner = 1 lsl (depth - 1) in
            let eq_rng =
              Prng.Rng.with_label rng
                (Printf.sprintf "tour/a%d/l%d/root%d" attempt !level group.(0))
            in
            Obsv.Trace.span Obsv.Phases.tour_root_check (fun () ->
                if my_pos = 0 then
                  verdict :=
                    Equality.run_alice_set eq_rng ~bits:check_bits (chan_to root_partner) !candidate
                else if my_pos = root_partner then
                  verdict := Equality.run_bob_set eq_rng ~bits:check_bits (chan_to 0) !candidate);
            Obsv.Trace.span Obsv.Phases.tour_verdict (fun () ->
                for t = depth downto 1 do
                  let half = 1 lsl (t - 1) in
                  if my_pos mod (1 lsl t) = 0 && my_pos + half < g then
                    Commsim.Transport.send (chan_to (my_pos + half)) (Wire.bit_msg !verdict)
                  else if my_pos mod (1 lsl t) = half then
                    verdict := Wire.read_bit_msg (Commsim.Transport.recv (chan_to (my_pos - half)))
                done)
          end;
          (!candidate, !verdict)
        in
        let rec attempt_loop attempt =
          let candidate, verdict = run_attempt attempt in
          if verdict || attempt >= max_attempts then candidate else attempt_loop (attempt + 1)
        in
        holding := attempt_loop 1;
        if my_pos <> 0 then still_active := false;
        active := List.map List.hd groups;
        incr level
      done;
      if broadcast then Broadcast.run ep !holding else !holding
    in
    Commsim.Network.run (Array.init m (fun rank -> player rank sets.(rank)))
  end

let run ?r ?max_attempts ?(broadcast = false) rng ~universe ~k sets =
  let results, cost = run_internal ?r ?max_attempts ~broadcast rng ~universe ~k sets in
  (results.(0), cost)

let run_all ?r ?max_attempts rng ~universe ~k sets =
  run_internal ?r ?max_attempts ~broadcast:true rng ~universe ~k sets
