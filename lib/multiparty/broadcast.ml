let run ep set =
  let m = Commsim.Network.size ep in
  let rank = Commsim.Network.rank ep in
  let depth =
    let rec loop d = if 1 lsl d >= m then d else loop (d + 1) in
    loop 0
  in
  Obsv.Trace.span Obsv.Phases.multiparty_broadcast (fun () ->
      let holding = ref set in
      for t = depth downto 1 do
        let stride = 1 lsl t in
        let half = stride / 2 in
        if rank mod stride = 0 && rank + half < m then begin
          let buf = Bitio.Bitbuf.create () in
          Bitio.Set_codec.write_gaps buf !holding;
          Commsim.Network.send ep ~to_:(rank + half) (Bitio.Bitbuf.contents buf)
        end
        else if rank mod stride = half then begin
          let payload = Commsim.Network.recv ep ~from_:(rank - half) in
          holding := Bitio.Set_codec.read_gaps (Bitio.Bitreader.create payload)
        end
      done;
      !holding)
