type t = {
  fingerprint : string;
  attempts : int;
  resumes : int;
  width : int;
  spent_bits : int;
  backoff_ticks : int;
  wasted_bits : int;
  failures : (string * string) list;
  candidate : Iset.t option;
  cost : Commsim.Cost.t;
}

let version = 1

let cost_json (c : Commsim.Cost.t) =
  Stats.Json.Obj
    [
      ( "players",
        Stats.Json.List
          (Array.to_list c.Commsim.Cost.players
          |> List.map (fun (p : Commsim.Cost.player) ->
                 Stats.Json.Obj
                   [
                     ("sent_bits", Stats.Json.Int p.Commsim.Cost.sent_bits);
                     ("received_bits", Stats.Json.Int p.Commsim.Cost.received_bits);
                     ("sent_messages", Stats.Json.Int p.Commsim.Cost.sent_messages);
                   ])) );
      ("total_bits", Stats.Json.Int c.Commsim.Cost.total_bits);
      ("messages", Stats.Json.Int c.Commsim.Cost.messages);
      ("rounds", Stats.Json.Int c.Commsim.Cost.rounds);
    ]

let to_json t =
  Stats.Json.Obj
    [
      ("version", Stats.Json.Int version);
      ("fingerprint", Stats.Json.Str t.fingerprint);
      ("attempts", Stats.Json.Int t.attempts);
      ("resumes", Stats.Json.Int t.resumes);
      ("width", Stats.Json.Int t.width);
      ("spent_bits", Stats.Json.Int t.spent_bits);
      ("backoff_ticks", Stats.Json.Int t.backoff_ticks);
      ("wasted_bits", Stats.Json.Int t.wasted_bits);
      ( "failures",
        Stats.Json.List
          (List.map
             (fun (kind, detail) ->
               Stats.Json.Obj
                 [ ("kind", Stats.Json.Str kind); ("detail", Stats.Json.Str detail) ])
             t.failures) );
      ( "candidate",
        match t.candidate with
        | None -> Stats.Json.Null
        | Some c ->
            Stats.Json.List (Array.to_list c |> List.map (fun x -> Stats.Json.Int x)) );
      ("cost", cost_json t.cost);
    ]

let to_string t = Stats.Json.to_string (to_json t)

let ( let* ) = Result.bind

let field name conv obj =
  match Stats.Json.member name obj with
  | None -> Error (Printf.sprintf "checkpoint: missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "checkpoint: malformed field %S" name))

let nonneg name v = if v < 0 then Error (Printf.sprintf "checkpoint: negative %S" name) else Ok v

let parse_player v =
  let* sent_bits = field "sent_bits" Stats.Json.to_int_opt v in
  let* received_bits = field "received_bits" Stats.Json.to_int_opt v in
  let* sent_messages = field "sent_messages" Stats.Json.to_int_opt v in
  Ok { Commsim.Cost.sent_bits; received_bits; sent_messages }

let parse_cost v =
  let* players = field "players" Stats.Json.to_list_opt v in
  let* players =
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let* p = parse_player p in
        Ok (p :: acc))
      (Ok []) players
  in
  let players = Array.of_list (List.rev players) in
  if Array.length players <> 2 then Error "checkpoint: cost must cover exactly 2 players"
  else
    let* total_bits = field "total_bits" Stats.Json.to_int_opt v in
    let* messages = field "messages" Stats.Json.to_int_opt v in
    let* rounds = field "rounds" Stats.Json.to_int_opt v in
    Ok { Commsim.Cost.players; total_bits; messages; rounds }

let parse_failure v =
  let* kind = field "kind" Stats.Json.to_string_opt v in
  let* detail = field "detail" Stats.Json.to_string_opt v in
  Ok (kind, detail)

let parse_candidate v =
  match v with
  | Stats.Json.Null -> Ok None
  | Stats.Json.List elems ->
      let* elems =
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            match Stats.Json.to_int_opt e with
            | Some x -> Ok (x :: acc)
            | None -> Error "checkpoint: non-integer candidate element")
          (Ok []) elems
      in
      let arr = Array.of_list (List.rev elems) in
      if Iset.is_valid arr then Ok (Some arr)
      else Error "checkpoint: candidate is not a strictly increasing set"
  | _ -> Error "checkpoint: malformed field \"candidate\""

let of_json v =
  let* got_version = field "version" Stats.Json.to_int_opt v in
  if got_version <> version then
    Error (Printf.sprintf "checkpoint: version %d, expected %d" got_version version)
  else
    let* fingerprint = field "fingerprint" Stats.Json.to_string_opt v in
    let* attempts = Result.bind (field "attempts" Stats.Json.to_int_opt v) (nonneg "attempts") in
    let* resumes = Result.bind (field "resumes" Stats.Json.to_int_opt v) (nonneg "resumes") in
    let* width = field "width" Stats.Json.to_int_opt v in
    let* width = if width < 1 then Error "checkpoint: width must be >= 1" else Ok width in
    let* spent_bits =
      Result.bind (field "spent_bits" Stats.Json.to_int_opt v) (nonneg "spent_bits")
    in
    let* backoff_ticks =
      Result.bind (field "backoff_ticks" Stats.Json.to_int_opt v) (nonneg "backoff_ticks")
    in
    let* wasted_bits =
      Result.bind (field "wasted_bits" Stats.Json.to_int_opt v) (nonneg "wasted_bits")
    in
    let* failures = field "failures" Stats.Json.to_list_opt v in
    let* failures =
      List.fold_left
        (fun acc f ->
          let* acc = acc in
          let* f = parse_failure f in
          Ok (f :: acc))
        (Ok []) failures
    in
    let failures = List.rev failures in
    let* candidate =
      match Stats.Json.member "candidate" v with
      | None -> Error "checkpoint: missing field \"candidate\""
      | Some c -> parse_candidate c
    in
    let* cost =
      match Stats.Json.member "cost" v with
      | None -> Error "checkpoint: missing field \"cost\""
      | Some c -> parse_cost c
    in
    Ok
      {
        fingerprint;
        attempts;
        resumes;
        width;
        spent_bits;
        backoff_ticks;
        wasted_bits;
        failures;
        candidate;
        cost;
      }

let of_string s =
  match Stats.Json.of_string s with
  | Error e -> Error (Printf.sprintf "checkpoint: invalid JSON (%s)" e)
  | Ok v -> of_json v
