(** Seeded exponential backoff with deterministic jitter.

    The session layer waits between retry attempts in {e event time} —
    abstract ticks charged against the same deadline budget as wire bits —
    so the pause is part of the reproducible execution, not a wall-clock
    sleep.  The wait before retry [attempt] uses "equal jitter": half the
    exponential ceiling is fixed, half is drawn uniformly from the shared
    random string ({!Prng.Rng.with_label} under a per-attempt label), so
    two sessions with different seeds desynchronize their retries while a
    single session replays the exact same schedule from its seed. *)

(** [ticks ~seed ~base ~cap ~attempt] is the event-time wait before retry
    number [attempt] (1-based): uniform in [\[c/2, c\]] where
    [c = min cap (base * 2^(attempt-1))].  A pure function of its
    arguments — no ambient randomness, no clock.  [base = 0] disables
    backoff entirely.  Raises [Invalid_argument] on [base < 0],
    [cap < base], or [attempt < 1]. *)
val ticks : seed:int -> base:int -> cap:int -> attempt:int -> int
