let ticks ~seed ~base ~cap ~attempt =
  if base < 0 then invalid_arg "Backoff.ticks: base must be >= 0";
  if cap < base then invalid_arg "Backoff.ticks: cap must be >= base";
  if attempt < 1 then invalid_arg "Backoff.ticks: attempt must be >= 1";
  if base = 0 then 0
  else begin
    (* base * 2^(attempt-1), saturating at cap without overflow. *)
    let rec double acc i = if i <= 0 || acc >= cap then min acc cap else double (acc * 2) (i - 1) in
    let ceiling = double base (attempt - 1) in
    let floor = ceiling / 2 in
    let rng =
      Prng.Rng.with_label (Prng.Rng.of_int seed) (Printf.sprintf "session/backoff%d" attempt)
    in
    floor + Prng.Rng.int rng (ceiling - floor + 1)
  end
