type config = {
  seed : int;
  protocol : string;
  k : int;
  universe_bits : int;
  plan : Commsim.Faults.plan;
  deadline_bits : int;
  rung_attempts : int;
  check_bits0 : int;
  backoff_base : int;
  backoff_cap : int;
}

let default ~k ~plan =
  {
    seed = 1;
    protocol = "bucket";
    k;
    universe_bits = 16;
    plan;
    deadline_bits = 2_000_000;
    rung_attempts = 3;
    check_bits0 = max 24 k;
    backoff_base = 64;
    backoff_cap = 4096;
  }

type rung = Base | Guarded | Widened | Fallback | Exhausted

let rung_name = function
  | Base -> "base"
  | Guarded -> "guarded"
  | Widened -> "widened"
  | Fallback -> "fallback"
  | Exhausted -> "exhausted"

type failure_kind = Rejected | Stalled | Crashed | Deadline

let kind_name = function
  | Rejected -> "rejected"
  | Stalled -> "stalled"
  | Crashed -> "crashed"
  | Deadline -> "deadline"

let kind_of_name = function
  | "rejected" -> Some Rejected
  | "stalled" -> Some Stalled
  | "crashed" -> Some Crashed
  | "deadline" -> Some Deadline
  | _ -> None

type ledger = {
  spent_bits : int;
  backoff_ticks : int;
  wasted_bits : int;
  cost : Commsim.Cost.t;
}

type diagnosis = {
  reason : string;
  rejected : int;
  stalled : int;
  crashed : int;
  last_failure : (failure_kind * string) option;
  remaining_bits : int;
  reserve_bits : int;
}

type outcome =
  | Completed of Iset.t
  | Degraded of Iset.t
  | Failed_safe of { partial : Iset.t option; diagnosis : diagnosis }

type report = {
  outcome : outcome;
  attempts : int;
  resumes : int;
  final_rung : rung;
  final_width : int;
  failures : (failure_kind * string) list;
  ledger : ledger;
}

type state = {
  cfg : config;
  fingerprint : string;
  attempts : int;
  resumes : int;
  width : int;
  spent_bits : int;
  backoff_ticks : int;
  wasted_bits : int;
  failures_rev : (failure_kind * string) list;
  candidate : Iset.t option;
  cost : Commsim.Cost.t;
}

type progress = Running of state | Done of report

let max_check_bits = 512

let fingerprint cfg =
  Printf.sprintf "v1:%s:k=%d:u=%d:seed=%d:deadline=%d:rung=%d:w0=%d:backoff=%d/%d:plan=%d%s"
    cfg.protocol cfg.k cfg.universe_bits cfg.seed cfg.deadline_bits cfg.rung_attempts
    cfg.check_bits0 cfg.backoff_base cfg.backoff_cap
    (Commsim.Faults.seed cfg.plan)
    (if Commsim.Faults.is_clean cfg.plan then ":clean" else "")

let base_of cfg =
  match cfg.protocol with
  | "trivial" -> Intersect.Resilient.trivial_base
  | "tree" -> Intersect.Resilient.tree_base ~k:cfg.k ()
  | "bucket" -> Intersect.Resilient.bucket_base ~k:cfg.k ()
  | p -> invalid_arg (Printf.sprintf "Session: unknown protocol %S" p)

let universe cfg = 1 lsl cfg.universe_bits

(* Admission bound for the last-resort deterministic exchange: a safe
   overestimate of the trivial protocol's cost (two gap-coded sets of at
   most [k] elements below [2^universe_bits], plus framing slack).  Being
   an upper bound it can only refuse a fallback that might still have fit
   — never admit one the budget cannot cover. *)
let fallback_reserve cfg = 2 * ((cfg.k + 1) * ((2 * cfg.universe_bits) + 4) + 64)

let validate cfg =
  if cfg.k < 1 then invalid_arg "Session: k must be >= 1";
  if cfg.universe_bits < 1 || cfg.universe_bits > 30 then
    invalid_arg "Session: universe_bits must be in [1, 30]";
  if cfg.deadline_bits < 1 then invalid_arg "Session: deadline_bits must be >= 1";
  if cfg.rung_attempts < 1 then invalid_arg "Session: rung_attempts must be >= 1";
  if cfg.check_bits0 < 1 || cfg.check_bits0 > max_check_bits then
    invalid_arg "Session: check_bits0 must be in [1, 512]";
  if cfg.backoff_base < 0 then invalid_arg "Session: backoff_base must be >= 0";
  if cfg.backoff_cap < cfg.backoff_base then
    invalid_arg "Session: backoff_cap must be >= backoff_base";
  ignore (base_of cfg)

let start cfg =
  validate cfg;
  {
    cfg;
    fingerprint = fingerprint cfg;
    attempts = 0;
    resumes = 0;
    width = cfg.check_bits0;
    spent_bits = 0;
    backoff_ticks = 0;
    wasted_bits = 0;
    failures_rev = [];
    candidate = None;
    cost = Commsim.Cost.zero ~players:2;
  }

let spent st = st.spent_bits + st.backoff_ticks

(* The degradation ladder, by 1-based attempt index: one optimistic base
   execution, then [rung_attempts] guarded retries (width doubles only on a
   rejected check, Resilient-style), then [rung_attempts] widened retries
   (width doubles unconditionally), then the deterministic fallback. *)
let next_rung st =
  let i = st.attempts + 1 in
  if i = 1 then Base
  else if i <= 1 + st.cfg.rung_attempts then Guarded
  else if i <= 1 + (2 * st.cfg.rung_attempts) then Widened
  else Fallback

let failure_tally st =
  List.fold_left
    (fun (rej, stall, crash) (kind, _) ->
      match kind with
      | Rejected -> (rej + 1, stall, crash)
      | Stalled -> (rej, stall + 1, crash)
      | Crashed -> (rej, stall, crash + 1)
      | Deadline -> (rej, stall, crash))
    (0, 0, 0) st.failures_rev

let mk_report st ~outcome ~final_rung =
  {
    outcome;
    attempts = st.attempts;
    resumes = st.resumes;
    final_rung;
    final_width = st.width;
    failures = List.rev st.failures_rev;
    ledger =
      {
        spent_bits = st.spent_bits;
        backoff_ticks = st.backoff_ticks;
        wasted_bits = st.wasted_bits;
        cost = st.cost;
      };
  }

let diagnose st ~reason =
  let rejected, stalled, crashed = failure_tally st in
  {
    reason;
    rejected;
    stalled;
    crashed;
    last_failure = (match st.failures_rev with [] -> None | f :: _ -> Some f);
    remaining_bits = st.cfg.deadline_bits - spent st;
    reserve_bits = fallback_reserve st.cfg;
  }

let fail_safe st =
  Obsv.Metrics.incr "session/failed_safe";
  let reason =
    Printf.sprintf
      "deadline exhausted after %d attempt(s): %d wire bits + %d backoff ticks of a %d-bit \
       budget leave no room for the ~%d-bit fallback exchange"
      st.attempts st.spent_bits st.backoff_ticks st.cfg.deadline_bits
      (fallback_reserve st.cfg)
  in
  if Obsv.Recorder.active () then
    Obsv.Recorder.event ~kind:"failed-safe"
      ~attrs:[ ("attempts", string_of_int st.attempts) ]
      reason;
  Done
    (mk_report st
       ~outcome:(Failed_safe { partial = st.candidate; diagnosis = diagnose st ~reason })
       ~final_rung:Exhausted)

let run_fallback st ~s ~t =
  Obsv.Metrics.incr "session/fallbacks";
  if Obsv.Recorder.active () then
    Obsv.Recorder.event ~kind:"ladder"
      ~attrs:[ ("rung", rung_name Fallback); ("attempts", string_of_int st.attempts) ]
      "degrading to the deterministic fallback exchange";
  let trivial = Intersect.Resilient.trivial_base in
  let rng = Prng.Rng.with_label (Prng.Rng.of_int st.cfg.seed) "session/fallback" in
  let u = universe st.cfg in
  let (result, _), cost =
    Obsv.Trace.span Obsv.Phases.session_fallback (fun () ->
        Commsim.Two_party.run
          ~alice:(fun chan -> trivial.Intersect.Resilient.alice rng ~universe:u s chan)
          ~bob:(fun chan -> trivial.Intersect.Resilient.bob rng ~universe:u t chan))
  in
  let st =
    {
      st with
      spent_bits = st.spent_bits + cost.Commsim.Cost.total_bits;
      cost = Commsim.Cost.add_seq st.cost cost;
    }
  in
  Done (mk_report st ~outcome:(Degraded result) ~final_rung:Fallback)

let run_attempt st rung ~s ~t =
  let cfg = st.cfg in
  let i = st.attempts + 1 in
  (* On the widened rung every attempt pays for more confidence up front. *)
  let width =
    match rung with
    | Widened -> min max_check_bits (2 * st.width)
    | Base | Guarded | Fallback | Exhausted -> st.width
  in
  Obsv.Metrics.incr "session/attempts";
  Obsv.Metrics.set_gauge "session/check_bits" width;
  if Obsv.Recorder.active () then
    Obsv.Recorder.event ~kind:"attempt"
      ~attrs:[ ("rung", rung_name rung); ("check_bits", string_of_int width) ]
      (Printf.sprintf "attempt %d" i);
  let attempt_rng =
    Prng.Rng.with_label (Prng.Rng.of_int cfg.seed) (Printf.sprintf "session/attempt%d" i)
  in
  let verdict, cost, tallies =
    Obsv.Trace.span Obsv.Phases.session_attempt
      ~attrs:
        [
          ("attempt", string_of_int i);
          ("rung", rung_name rung);
          ("check_bits", string_of_int width);
        ]
      (fun () ->
        Intersect.Resilient.attempt_once (base_of cfg)
          ~plan:(Commsim.Faults.reseed cfg.plan ~salt:i)
          ~check_bits:width ~attempt:i attempt_rng ~universe:(universe cfg) s t)
  in
  (* [Cost] meters only what crossed the wire (delivered copies), so an
     attempt against a black-hole link would look free.  The event-time
     budget charges what the senders PUT on the wire: delivered bits plus
     the payload the adversary dropped or truncated away. *)
  let lost =
    let t = Commsim.Faults.total tallies in
    t.Commsim.Faults.dropped_bits + t.Commsim.Faults.truncated_bits
  in
  let bits = cost.Commsim.Cost.total_bits + lost in
  let st =
    {
      st with
      attempts = i;
      width;
      spent_bits = st.spent_bits + bits;
      cost = Commsim.Cost.add_seq st.cost cost;
    }
  in
  match verdict with
  | Ok result -> Done (mk_report st ~outcome:(Completed result) ~final_rung:rung)
  | Error (failure, unverified) ->
      let kind, detail =
        match failure with
        | Intersect.Resilient.Check_rejected -> (Rejected, "equality check rejected")
        | Intersect.Resilient.Channel_lost d -> (Stalled, d)
        | Intersect.Resilient.Party_crashed d -> (Crashed, d)
      in
      Obsv.Metrics.incr ("session/" ^ kind_name kind);
      if Obsv.Recorder.active () then
        Obsv.Recorder.event ~kind:"failure"
          ~attrs:[ ("attempt", string_of_int i); ("kind", kind_name kind) ]
          detail;
      let st =
        {
          st with
          wasted_bits = st.wasted_bits + bits;
          failures_rev = (kind, detail) :: st.failures_rev;
          candidate = (match unverified with Some c -> Some c | None -> st.candidate);
        }
      in
      (* Outside the widened rung, only a rejected check buys a wider next
         check (detected damage carries no evidence against the width). *)
      let st =
        match (rung, kind) with
        | (Base | Guarded), Rejected -> { st with width = min max_check_bits (2 * st.width) }
        | _ -> st
      in
      let ticks =
        Backoff.ticks ~seed:cfg.seed ~base:cfg.backoff_base ~cap:cfg.backoff_cap ~attempt:i
      in
      Obsv.Trace.span Obsv.Phases.session_backoff
        ~attrs:[ ("attempt", string_of_int i); ("ticks", string_of_int ticks) ]
        (fun () -> ());
      Obsv.Metrics.observe "session/backoff_ticks" ticks;
      if Obsv.Recorder.active () then
        Obsv.Recorder.event ~kind:"backoff"
          ~attrs:[ ("attempt", string_of_int i) ]
          (Printf.sprintf "%d event-time ticks" ticks);
      Running { st with backoff_ticks = st.backoff_ticks + ticks }

let step st ~s ~t =
  Intersect.Protocol.validate_inputs ~universe:(universe st.cfg) s t;
  let rung = next_rung st in
  let remaining = st.cfg.deadline_bits - spent st in
  if rung = Fallback || remaining <= 0 then begin
    let st =
      (* Diverting to the fallback with ladder rungs still unplayed is
         itself a recorded failure: the deadline ran out first. *)
      if rung <> Fallback then begin
        Obsv.Metrics.incr "session/deadline";
        if Obsv.Recorder.active () then
          Obsv.Recorder.event ~kind:"deadline"
            ~attrs:[ ("attempts", string_of_int st.attempts) ]
            (Printf.sprintf "budget exhausted (%d wire bits + %d ticks >= %d)" st.spent_bits
               st.backoff_ticks st.cfg.deadline_bits);
        {
          st with
          failures_rev =
            ( Deadline,
              Printf.sprintf
                "event-time budget exhausted after %d attempt(s) (%d wire bits + %d ticks \
                 >= %d)"
                st.attempts st.spent_bits st.backoff_ticks st.cfg.deadline_bits )
            :: st.failures_rev;
        }
      end
      else st
    in
    if st.cfg.deadline_bits - spent st >= fallback_reserve st.cfg then run_fallback st ~s ~t
    else fail_safe st
  end
  else run_attempt st rung ~s ~t

let checkpoint st =
  {
    Checkpoint.fingerprint = st.fingerprint;
    attempts = st.attempts;
    resumes = st.resumes;
    width = st.width;
    spent_bits = st.spent_bits;
    backoff_ticks = st.backoff_ticks;
    wasted_bits = st.wasted_bits;
    failures = List.rev_map (fun (k, d) -> (kind_name k, d)) st.failures_rev;
    candidate = st.candidate;
    cost = st.cost;
  }

let restore cfg ck =
  validate cfg;
  let fp = fingerprint cfg in
  if ck.Checkpoint.fingerprint <> fp then
    Error
      (Printf.sprintf "checkpoint: config fingerprint mismatch (snapshot %S, config %S)"
         ck.Checkpoint.fingerprint fp)
  else
    let rec kinds acc = function
      | [] -> Ok (List.rev acc)
      | (k, d) :: rest -> (
          match kind_of_name k with
          | Some kind -> kinds ((kind, d) :: acc) rest
          | None -> Error (Printf.sprintf "checkpoint: unknown failure kind %S" k))
    in
    match kinds [] ck.Checkpoint.failures with
    | Error _ as e -> e
    | Ok failures ->
        Obsv.Metrics.incr "session/resumes";
        Obsv.Trace.span Obsv.Phases.session_resume
          ~attrs:[ ("attempts", string_of_int ck.Checkpoint.attempts) ]
          (fun () -> ());
        if Obsv.Recorder.active () then
          Obsv.Recorder.event ~kind:"resume"
            ~attrs:[ ("attempts", string_of_int ck.Checkpoint.attempts) ]
            "restored from checkpoint";
        Ok
          {
            cfg;
            fingerprint = fp;
            attempts = ck.Checkpoint.attempts;
            resumes = ck.Checkpoint.resumes + 1;
            width = ck.Checkpoint.width;
            spent_bits = ck.Checkpoint.spent_bits;
            backoff_ticks = ck.Checkpoint.backoff_ticks;
            wasted_bits = ck.Checkpoint.wasted_bits;
            failures_rev = List.rev failures;
            candidate = ck.Checkpoint.candidate;
            cost = ck.Checkpoint.cost;
          }

let rec drive st ~s ~t ~on_checkpoint =
  match step st ~s ~t with
  | Done r -> r
  | Running st ->
      if Obsv.Recorder.active () then
        Obsv.Recorder.event ~kind:"checkpoint"
          ~attrs:[ ("attempts", string_of_int st.attempts) ]
          "checkpoint boundary";
      (match on_checkpoint with None -> () | Some f -> f (checkpoint st));
      drive st ~s ~t ~on_checkpoint

let run ?on_checkpoint cfg ~s ~t = drive (start cfg) ~s ~t ~on_checkpoint

let resume ?on_checkpoint cfg ck ~s ~t =
  match restore cfg ck with
  | Error _ as e -> e
  | Ok st -> Ok (drive st ~s ~t ~on_checkpoint)

let outcome_name = function
  | Completed _ -> "completed"
  | Degraded _ -> "degraded"
  | Failed_safe _ -> "failed_safe"

let result_of = function
  | Completed r | Degraded r -> Some r
  | Failed_safe _ -> None

let diagnosis_json d =
  Stats.Json.Obj
    [
      ("reason", Stats.Json.Str d.reason);
      ("rejected", Stats.Json.Int d.rejected);
      ("stalled", Stats.Json.Int d.stalled);
      ("crashed", Stats.Json.Int d.crashed);
      ( "last_failure",
        match d.last_failure with
        | None -> Stats.Json.Null
        | Some (k, detail) ->
            Stats.Json.Obj
              [ ("kind", Stats.Json.Str (kind_name k)); ("detail", Stats.Json.Str detail) ]
      );
      ("remaining_bits", Stats.Json.Int d.remaining_bits);
      ("reserve_bits", Stats.Json.Int d.reserve_bits);
    ]

let set_json s = Stats.Json.List (Array.to_list s |> List.map (fun x -> Stats.Json.Int x))

let ledger_json (l : ledger) =
  Stats.Json.Obj
    [
      ("spent_bits", Stats.Json.Int l.spent_bits);
      ("backoff_ticks", Stats.Json.Int l.backoff_ticks);
      ("wasted_bits", Stats.Json.Int l.wasted_bits);
      ("total_bits", Stats.Json.Int l.cost.Commsim.Cost.total_bits);
      ("messages", Stats.Json.Int l.cost.Commsim.Cost.messages);
      ("rounds", Stats.Json.Int l.cost.Commsim.Cost.rounds);
    ]

let report_json (r : report) =
  Stats.Json.Obj
    ([
       ("outcome", Stats.Json.Str (outcome_name r.outcome));
       ( "result",
         match result_of r.outcome with None -> Stats.Json.Null | Some s -> set_json s );
       ("attempts", Stats.Json.Int r.attempts);
       ("resumes", Stats.Json.Int r.resumes);
       ("final_rung", Stats.Json.Str (rung_name r.final_rung));
       ("final_width", Stats.Json.Int r.final_width);
       ( "failures",
         Stats.Json.List
           (List.map
              (fun (k, d) ->
                Stats.Json.Obj
                  [ ("kind", Stats.Json.Str (kind_name k)); ("detail", Stats.Json.Str d) ])
              r.failures) );
       ("ledger", ledger_json r.ledger);
     ]
    @
    match r.outcome with
    | Failed_safe { partial; diagnosis } ->
        [
          ( "partial",
            match partial with None -> Stats.Json.Null | Some s -> set_json s );
          ("diagnosis", diagnosis_json diagnosis);
        ]
    | Completed _ | Degraded _ -> [])
