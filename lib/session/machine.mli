(** A deterministic session state machine that drives one INT_k
    reconciliation to a guaranteed structured outcome under adversity.

    {!Resilient} answers "how do we survive a faulty channel inside one
    run"; this module answers the operational question one level up: a
    {e session} owns an event-time deadline budget, walks a
    graceful-degradation ladder, and always terminates with a structured
    {!outcome} — a verified result, a degraded-but-exact result from the
    deterministic fallback, or a failed-safe report carrying a best-effort
    partial and a {!diagnosis}.  It never reports a wrong intersection:
    every accepting rung runs over {!Resilient.guard}ed transport with a
    two-sided equality check, and the fallback is the deterministic
    exchange.

    {2 The ladder}

    Attempts are numbered from 1 and mapped to rungs: attempt 1 is the
    {e base} rung (one optimistic guarded execution at [check_bits0]);
    the next [rung_attempts] attempts are the {e guarded-retry} rung
    (fresh per-attempt channel noise and randomness; a rejected check
    doubles the width, Resilient-style); the next [rung_attempts] are the
    {e widened} rung (the width doubles unconditionally before every
    attempt, capped at 512); after that — or as soon as the deadline is
    exhausted — the session degrades to the deterministic {e fallback}
    exchange over a reliable link, admitted only if the remaining budget
    covers a conservative cost bound ({e reserve}).  If even the reserve
    does not fit, the session ends {e failed-safe}.

    {2 Determinism}

    Everything is a pure function of [(config, s, t)]: per-attempt
    randomness comes from the shared random string under
    ["session/attempt<i>"] labels, channel noise from [plan] reseeded with
    the attempt index, and retry pauses from {!Backoff} — event-time ticks
    charged against the same deadline as wire bits, never a wall clock.
    A session interrupted at any checkpoint boundary and resumed via
    {!restore} replays the identical remaining schedule, so the final
    result and cost ledger are byte-identical to the uninterrupted run
    (only [resumes] differs). *)

type config = {
  seed : int;  (** root of the session's shared random string *)
  protocol : string;  (** base protocol: ["trivial"], ["tree"] or ["bucket"] *)
  k : int;  (** set-size bound handed to the base protocol *)
  universe_bits : int;  (** universe is [2^universe_bits]; in [\[1, 30\]] *)
  plan : Commsim.Faults.plan;  (** channel adversary (reseeded per attempt) *)
  deadline_bits : int;  (** event-time budget: wire bits + backoff ticks *)
  rung_attempts : int;  (** attempts per retry rung of the ladder *)
  check_bits0 : int;  (** initial equality-check width *)
  backoff_base : int;  (** backoff ceiling for attempt 1 (0 disables) *)
  backoff_cap : int;  (** backoff ceiling saturation *)
}

(** Conservative defaults: bucket protocol, 16-bit universe, seed 1, a
    2M-bit deadline, 3 attempts per rung, [max 24 k] initial width,
    backoff 64 capped at 4096. *)
val default : k:int -> plan:Commsim.Faults.plan -> config

(** Ladder position.  {!Exhausted} never hosts an attempt; it marks a
    failed-safe report. *)
type rung = Base | Guarded | Widened | Fallback | Exhausted

val rung_name : rung -> string

(** Why an attempt (or the whole session) failed: a rejected equality
    check, a wedged conversation (stall detected by the scheduler — the
    event-time analogue of a watchdog timeout), a party abort on detected
    corruption, or the deadline budget running out. *)
type failure_kind = Rejected | Stalled | Crashed | Deadline

val kind_name : failure_kind -> string
val kind_of_name : string -> failure_kind option

(** What the session spent.  [spent_bits] charges what the senders put on
    the wire: delivered payload plus bits the adversary dropped or
    truncated away ({!Commsim.Cost} alone meters only delivered copies, so
    a black-hole link would otherwise look free).  [wasted_bits] is the
    same measure restricted to attempts that produced nothing; [cost] is
    the aggregate simulator cost (attempts plus fallback, delivered bits
    only). *)
type ledger = {
  spent_bits : int;
  backoff_ticks : int;
  wasted_bits : int;
  cost : Commsim.Cost.t;
}

(** Structured post-mortem attached to a failed-safe outcome. *)
type diagnosis = {
  reason : string;
  rejected : int;  (** attempts ended by a rejected check *)
  stalled : int;  (** attempts wedged on dropped messages *)
  crashed : int;  (** attempts aborted on detected corruption *)
  last_failure : (failure_kind * string) option;
  remaining_bits : int;  (** deadline minus spend (can be negative) *)
  reserve_bits : int;  (** fallback admission bound that did not fit *)
}

(** The guaranteed structured ending.  [Completed] and [Degraded] results
    are exact (up to the [2^-width] check-collision bound inherited from
    {!Resilient}); a [Failed_safe] partial is {e unverified} best-effort
    evidence and must never be treated as the intersection. *)
type outcome =
  | Completed of Iset.t  (** a guarded attempt's check accepted *)
  | Degraded of Iset.t  (** exact result from the deterministic fallback *)
  | Failed_safe of { partial : Iset.t option; diagnosis : diagnosis }

type report = {
  outcome : outcome;
  attempts : int;  (** faulty attempts executed (fallback excluded) *)
  resumes : int;  (** times the session was restored from a checkpoint *)
  final_rung : rung;
  final_width : int;  (** check width of the last attempt *)
  failures : (failure_kind * string) list;  (** chronological *)
  ledger : ledger;
}

(** Opaque in-flight session. *)
type state

type progress = Running of state | Done of report

(** [start cfg] validates [cfg] (raising [Invalid_argument] on a bad
    field or unknown protocol) and returns the initial state. *)
val start : config -> state

(** [step st ~s ~t] advances the session by exactly one ladder action:
    one guarded attempt, the fallback exchange, or the failed-safe
    verdict.  [Running] states returned by [step] are exactly the
    checkpoint boundaries. *)
val step : state -> s:Iset.t -> t:Iset.t -> progress

(** Snapshot the state between steps ({!Checkpoint}). *)
val checkpoint : state -> Checkpoint.t

(** [restore cfg ck] rebuilds a state from a snapshot, refusing a
    fingerprint mismatch (the snapshot was taken under a different
    config) or an unknown failure kind.  The restored state has
    [resumes] incremented. *)
val restore : config -> Checkpoint.t -> (state, string) result

(** [run ?on_checkpoint cfg ~s ~t] drives a fresh session to completion;
    [on_checkpoint] observes the snapshot after every non-final step. *)
val run : ?on_checkpoint:(Checkpoint.t -> unit) -> config -> s:Iset.t -> t:Iset.t -> report

(** [resume ?on_checkpoint cfg ck ~s ~t] is {!restore} followed by the
    same drive loop as {!run}. *)
val resume :
  ?on_checkpoint:(Checkpoint.t -> unit) ->
  config ->
  Checkpoint.t ->
  s:Iset.t ->
  t:Iset.t ->
  (report, string) result

val outcome_name : outcome -> string

(** The exact result, if the session produced one ([None] for
    failed-safe; the unverified partial deliberately does not qualify). *)
val result_of : outcome -> Iset.t option

(** Machine-readable report (used by the chaos harness and the CLI). *)
val report_json : report -> Stats.Json.t
