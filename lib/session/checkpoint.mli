(** Serializable session snapshots.

    A checkpoint captures everything a {!Machine} needs to continue a
    session after an interruption {e except} the immutable configuration
    (including the fault plan), which the resuming caller must supply
    again: progress counters, the check width the next attempt will run
    at, the cost ledger so far, the chronological failure history, and the
    best-effort (unverified) candidate, if any.  [fingerprint] digests the
    configuration the snapshot was taken under; [Machine.restore] refuses
    a checkpoint whose fingerprint does not match the supplied config, so
    a snapshot cannot silently resume under different parameters.

    The codec is a single-line JSON object ({!Stats.Json}) with an
    explicit [version] field; {!of_string} validates shape, version,
    non-negativity of every counter, and canonicity of the candidate set.
    Round-tripping is exact: [of_string (to_string t) = Ok t]. *)

type t = {
  fingerprint : string;  (** config digest; checked by [Machine.restore] *)
  attempts : int;  (** faulty attempts already spent *)
  resumes : int;  (** times this session was resumed before the snapshot *)
  width : int;  (** check width the next attempt will run at *)
  spent_bits : int;  (** wire bits charged against the deadline so far *)
  backoff_ticks : int;  (** event-time ticks charged against the deadline *)
  wasted_bits : int;  (** wire bits of attempts that produced nothing *)
  failures : (string * string) list;
      (** chronological [(kind, detail)]; kinds are validated on restore *)
  candidate : Iset.t option;  (** best-effort {e unverified} partial result *)
  cost : Commsim.Cost.t;  (** aggregate simulator cost so far *)
}

(** Codec version emitted by {!to_string} and required by {!of_string}. *)
val version : int

val to_json : t -> Stats.Json.t

(** Single-line JSON. *)
val to_string : t -> string

val of_json : Stats.Json.t -> (t, string) result
val of_string : string -> (t, string) result
