type t = int array

let empty = [||]

let of_list l = Array.of_list (List.sort_uniq compare l)

let of_array a = of_list (Array.to_list a)

let is_valid a =
  let n = Array.length a in
  let rec loop i = i >= n || (a.(i - 1) < a.(i) && loop (i + 1)) in
  loop 1

let cardinal = Array.length

let mem a x =
  let rec search lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) = x then true else if a.(mid) < x then search (mid + 1) hi else search lo mid
    end
  in
  search 0 (Array.length a)

let equal a b = a = b

(* Generic sorted merge; [keep] decides membership in the result from
   (in_a, in_b).  Two passes over the inputs — count, then fill an
   exactly-sized array — instead of accumulating a list: set algebra runs
   inside every trial, and the cons-cell churn was a measurable slice of
   the per-trial allocation profile. *)
let merge keep a b =
  let la = Array.length a and lb = Array.length b in
  let scan fill out =
    let n = ref 0 and i = ref 0 and j = ref 0 in
    let push x =
      if fill then out.(!n) <- x;
      incr n
    in
    while !i < la || !j < lb do
      if !i >= la then begin
        if keep false true then push b.(!j);
        incr j
      end
      else if !j >= lb then begin
        if keep true false then push a.(!i);
        incr i
      end
      else if a.(!i) = b.(!j) then begin
        if keep true true then push a.(!i);
        incr i;
        incr j
      end
      else if a.(!i) < b.(!j) then begin
        if keep true false then push a.(!i);
        incr i
      end
      else begin
        if keep false true then push b.(!j);
        incr j
      end
    done;
    !n
  in
  let n = scan false empty in
  if n = 0 then empty
  else begin
    let out = Array.make n 0 in
    ignore (scan true out);
    out
  end

let inter a b = merge (fun in_a in_b -> in_a && in_b) a b
let union a b = merge (fun in_a in_b -> in_a || in_b) a b
let diff a b = merge (fun in_a in_b -> in_a && not in_b) a b

let subset a b = Array.length (diff a b) = 0

let filter p a =
  let n = Array.fold_left (fun n x -> if p x then n + 1 else n) 0 a in
  if n = 0 then empty
  else begin
    let out = Array.make n 0 in
    let pos = ref 0 in
    Array.iter
      (fun x ->
        if p x then begin
          out.(!pos) <- x;
          incr pos
        end)
      a;
    out
  end

let partition_by f ~bins a =
  (* Evaluate the (possibly costly) key function once per element, count
     per bin, then fill exactly-sized bins; the input is sorted, so
     in-order filling keeps each bin sorted. *)
  let keys = Array.map f a in
  let counts = Array.make bins 0 in
  Array.iter
    (fun b ->
      if b < 0 || b >= bins then invalid_arg "Iset.partition_by: key out of range";
      counts.(b) <- counts.(b) + 1)
    keys;
  let out = Array.map (fun c -> if c = 0 then empty else Array.make c 0) counts in
  let cursors = counts in
  Array.fill cursors 0 bins 0;
  Array.iteri
    (fun i x ->
      let b = keys.(i) in
      out.(b).(cursors.(b)) <- x;
      cursors.(b) <- cursors.(b) + 1)
    a;
  out

let inter_many = function
  | [] -> invalid_arg "Iset.inter_many: empty list"
  | first :: rest -> List.fold_left inter first rest

let union_many sets = List.fold_left union empty sets

let pp ppf a =
  Format.fprintf ppf "{";
  Array.iteri (fun i x -> Format.fprintf ppf (if i = 0 then "%d" else ",%d") x) a;
  Format.fprintf ppf "}"
