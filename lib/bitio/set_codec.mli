(** Wire encodings for sets of elements drawn from a universe [\[0, n)].

    Sets travel as sorted arrays of distinct non-negative integers.  Two
    encodings are provided:

    - {!write_fixed}: cardinality (Elias gamma) followed by each element in
      [ceil (log2 n)] bits — the naive exchange.
    - {!write_gaps}: cardinality followed by delta-coded gaps — within a
      constant of the information-theoretic [log2 (binom n k)] bound, which is
      the [O(k log (n/k))] cost quoted for the trivial deterministic
      protocol. *)

(** [universe_width n] is the number of bits needed for one element of
    [\[0, n)], i.e. [ceil (log2 n)] (and 1 when [n <= 2]). *)
val universe_width : int -> int

(** [validate ~universe s] checks that [s] is strictly increasing with
    elements in [\[0, universe)].  Raises [Invalid_argument] otherwise. *)
val validate : universe:int -> int array -> unit

(** Naive encoding: gamma cardinality, then each element in
    [universe_width universe] bits. *)
val write_fixed : Bitbuf.t -> universe:int -> int array -> unit

(** Decode a set written by {!write_fixed} with the same [universe]. *)
val read_fixed : Bitreader.t -> universe:int -> int array

(** Gap encoding: gamma cardinality, then delta-coded successive gaps —
    the [O(k log (n/k))]-bit set description (costed by {!gaps_cost}). *)
val write_gaps : Bitbuf.t -> int array -> unit

(** Decode a set written by {!write_gaps}. *)
val read_gaps : Bitreader.t -> int array

(** Cost in bits of {!write_gaps} without writing. *)
val gaps_cost : int array -> int

(** [log2_binomial n k] is [log2 (binom n k)], the information-theoretic
    lower bound in bits for describing a [k]-subset of an [n]-universe. *)
val log2_binomial : int -> int -> float
