(** Minimal arbitrary-precision naturals, just enough for the enumerative
    set codec ({!Enum_codec}): binomial coefficients via the multiplicative
    formula and rank arithmetic in the combinatorial number system.

    Values are immutable.  Little-endian limbs in base [2^26] (products and
    carries stay inside OCaml's 63-bit native ints). *)

type t

(** The natural 0. *)
val zero : t

(** The natural 1. *)
val one : t

(** [of_int n] for [n >= 0]. *)
val of_int : int -> t

(** [to_int t] if it fits in a native int. *)
val to_int_opt : t -> int option

(** [is_zero t] is [equal t zero]. *)
val is_zero : t -> bool

(** Total order on values ([Stdlib.compare] semantics). *)
val compare : t -> t -> int

(** Structural equality of values. *)
val equal : t -> t -> bool

(** Exact sum. *)
val add : t -> t -> t

(** [sub a b] requires [a >= b]. *)
val sub : t -> t -> t

(** [mul_small t x] for [0 <= x < 2^26]. *)
val mul_small : t -> int -> t

(** [div_small t x] for [1 <= x < 2^26]; returns quotient and remainder. *)
val div_small : t -> int -> t * int

(** Number of bits ([0] for zero). *)
val bit_length : t -> int

(** [bit t i] is bit [i]. *)
val bit : t -> int -> bool

(** [of_bits f ~width] builds the value with bit [i] = [f i]. *)
val of_bits : (int -> bool) -> width:int -> t

(** [binomial n k] = C(n, k), exactly; zero when [k < 0] or [k > n].
    Requires [0 <= n < 2^26]. *)
val binomial : int -> int -> t

(** Decimal rendering, for error messages and tests. *)
val pp : Format.formatter -> t -> unit
