(** Immutable bit vectors: the payload type of every simulated message.

    A value of type {!t} is a sequence of [length] bits backed by a byte
    buffer.  Bit [i] lives in byte [i / 8] at position [i mod 8], least
    significant bit first.  All communication costs in the simulator are
    measured as {!length} of the exchanged payloads. *)

type t

(** The zero-length bit vector. *)
val empty : t

(** [length b] is the number of bits in [b]. *)
val length : t -> int

(** [get b i] is bit [i] of [b].  Raises [Invalid_argument] when [i] is out
    of bounds. *)
val get : t -> int -> bool

(** [extract b ~pos ~width] is the integer formed by bits
    [pos .. pos+width-1] (least significant first), for [0 <= width <= 24]
    and [pos + width <= length b].  Constant-time (reads whole bytes). *)
val extract : t -> pos:int -> width:int -> int

(** [of_bools l] builds a bit vector from a list of bits. *)
val of_bools : bool list -> t

(** [to_bools b] lists the bits of [b] in order. *)
val to_bools : t -> bool list

(** [of_string s] wraps a whole string as a bit vector of [8 * String.length s]
    bits. *)
val of_string : string -> t

(** [unsafe_of_bytes bytes ~length] wraps [bytes] without copying.  The caller
    must not mutate [bytes] afterwards and must guarantee that all bits at
    index [>= length] in the final byte are zero. *)
val unsafe_of_bytes : bytes -> length:int -> t

(** Underlying storage; never mutate the result. *)
val bytes : t -> bytes

(** Bitwise equality: same length, same bits. *)
val equal : t -> t -> bool

(** [key b] is a canonical string usable as a hashtable key: two bit vectors
    have the same key iff they are {!equal}. *)
val key : t -> string

(** [concat a b] is [a] followed by [b]. *)
val concat : t -> t -> t

(** [flip b i] is [b] with bit [i] inverted (a fresh vector; [b] is
    unchanged).  Raises [Invalid_argument] when [i] is out of bounds.
    This is the single-bit-corruption primitive used by the adversarial
    channels. *)
val flip : t -> int -> t

(** Renders the bits as a [01] string, most recent bit last. *)
val pp : Format.formatter -> t -> unit
