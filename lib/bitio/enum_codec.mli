(** Enumerative (combinatorial number system) coding of k-subsets.

    A set [{c_1 < ... < c_k} ⊆ \[0, n)] is encoded as its rank
    [Σ_i C(c_i, i)] in [ceil (log2 (C(n,k)))] bits — {e exactly} the
    information-theoretic bound for describing a k-subset, i.e. the
    tightest possible form of the paper's deterministic
    [D^(1) = O(k log (n/k))] upper bound.  The cardinality travels first
    as an Elias gamma code.

    Slower than {!Set_codec.write_gaps} (bignum arithmetic, [O(n + k²)]
    limb passes) but within a few bits of optimal instead of a constant
    factor; used by the exact-baseline protocol and the A2/F1 benches.
    Universes must stay below [2^26] (binomial factors must fit a bignum
    limb); larger ones raise [Invalid_argument]. *)

(** Encode a sorted set as gamma cardinality plus its rank in exactly
    [ceil (log2 (C(universe, k)))] bits. *)
val write : Bitbuf.t -> universe:int -> int array -> unit

(** Unrank a set written by {!write} with the same [universe]. *)
val read : Bitreader.t -> universe:int -> int array

(** Exact encoded size in bits for a k-subset of [\[0, n)]. *)
val cost : universe:int -> k:int -> int
