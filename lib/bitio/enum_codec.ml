(* rank(S) = sum_i C(c_i, i), the combinatorial number system of degree k
   (indices i = 1..k over the sorted elements). *)
let rank set =
  let acc = ref Bignat.zero in
  Array.iteri (fun i c -> acc := Bignat.add !acc (Memo.binomial c (i + 1))) set;
  !acc

let payload_bits ~universe ~k =
  if universe < 1 || universe >= 1 lsl 26 then
    invalid_arg "Enum_codec: universe must be below 2^26";
  Memo.binomial_bits ~n:universe ~k

let cost ~universe ~k = Codes.gamma_cost k + payload_bits ~universe ~k

let write buf ~universe set =
  Set_codec.validate ~universe set;
  let k = Array.length set in
  Codes.write_gamma buf k;
  let r = rank set in
  let width = payload_bits ~universe ~k in
  for i = 0 to width - 1 do
    Bitbuf.write_bit buf (Bignat.bit r i)
  done

(* Greedy unranking: for i = k downto 1, the i-th largest element is the
   largest c with C(c, i) <= rank.  Binary search on c keeps the decoder at
   O(k * log n) binomial evaluations instead of walking the universe. *)
let read reader ~universe =
  let k = Codes.read_gamma reader in
  let width = payload_bits ~universe ~k in
  let r = ref (Bignat.of_bits (fun _ -> Bitreader.read_bit reader) ~width) in
  let out = Array.make k 0 in
  let hi = ref (universe - 1) in
  for i = k downto 1 do
    (* invariant: C(i-1, i) = 0 <= r, so the search space is never empty *)
    let lo = ref (i - 1) and high = ref !hi in
    while !lo < !high do
      let mid = (!lo + !high + 1) / 2 in
      if Bignat.compare (Memo.binomial mid i) !r <= 0 then lo := mid else high := mid - 1
    done;
    out.(i - 1) <- !lo;
    r := Bignat.sub !r (Memo.binomial !lo i);
    hi := !lo - 1
  done;
  out
