(* Domain-local freelist of Bitbuf writers.

   Hot protocol paths assemble many short-lived payloads; allocating a
   fresh Bitbuf (and its backing bytes) per payload dominated their
   allocation profile.  The pool hands out reset writers from a per-domain
   freelist instead: acquisition pops, release resets and pushes.  Because
   the freelist is Domain.DLS-local there is no cross-domain sharing and
   no locking, and because a pooled buffer is always handed out reset, the
   bits a caller writes — and therefore every transcript — are identical
   to what a fresh buffer would produce.

   The freelist is a LIFO list, so nested [with_buf] calls simply take
   distinct buffers.  [bypassed] switches the current domain to fresh
   allocation for the duration of a callback; the hot-path tests use it to
   check pooled and unpooled runs byte-for-byte against each other. *)

let freelist : Bitbuf.t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let bypass : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

(* Pooled buffers start at a payload-sized capacity so most cells never
   regrow; a buffer that did grow keeps its larger storage for next time. *)
let fresh () = Bitbuf.create ~capacity:1024 ()

let with_buf f =
  if !(Domain.DLS.get bypass) then f (fresh ())
  else begin
    let free = Domain.DLS.get freelist in
    let buf =
      match !free with
      | [] -> fresh ()
      | buf :: rest ->
          free := rest;
          buf
    in
    Fun.protect
      ~finally:(fun () ->
        Bitbuf.reset buf;
        free := buf :: !free)
      (fun () -> f buf)
  end

let payload f = with_buf (fun buf -> f buf; Bitbuf.contents buf)

(* Reader cells are recycled the same way.  No [Fun.protect]: a cell in
   flight when an exception unwinds is simply dropped (the next acquisition
   allocates a fresh one), which keeps the happy path free of closure
   setup.  Parking the cell on [Bits.empty] releases its payload
   reference. *)
let readers : Bitreader.t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let with_reader bits f =
  if !(Domain.DLS.get bypass) then f (Bitreader.create bits)
  else begin
    let free = Domain.DLS.get readers in
    let reader =
      match !free with
      | [] -> Bitreader.create bits
      | r :: rest ->
          free := rest;
          Bitreader.reset r bits;
          r
    in
    let v = f reader in
    Bitreader.reset reader Bits.empty;
    free := reader :: !free;
    v
  end

let bypassed f =
  let flag = Domain.DLS.get bypass in
  let saved = !flag in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := saved) f
