(* Domain-local memo tables for derived codec values.

   Binomial coefficients drive the enumerative set codec: ranking touches
   O(k) of them and the unranking decoder's binary search touches
   O(k log n), each recomputed from the multiplicative formula at bignum
   cost.  The coefficients are pure functions of (n, k), so caching them
   in a Domain.DLS hashtable is observationally invisible — same values,
   same transcripts — while turning repeated decodes from bignum-bound
   into lookup-bound.

   Keys pack (n, k) into one int: n < 2^26 (a precondition Bignat.binomial
   already enforces) and k <= n, so [n lsl 26 lor k] is injective.  Out-of
   -range arguments fall through to Bignat.binomial uncached, preserving
   its exact raise/zero behaviour.

   The table is capped: long multi-universe sweeps in one process touch
   unboundedly many distinct (n, k) pairs, and each entry pins a Bignat.
   Entries are pure and recomputable, so on overflow we simply reset the
   table and let the working set repopulate. *)

let max_entries = 1 lsl 16

let table : (int, Bignat.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

let bypass : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let binomial n k =
  if n < 0 || n >= 1 lsl 26 || k < 0 || k > n || !(Domain.DLS.get bypass) then Bignat.binomial n k
  else begin
    let table = Domain.DLS.get table in
    let key = (n lsl 26) lor k in
    match Hashtbl.find_opt table key with
    | Some v -> v
    | None ->
        let v = Bignat.binomial n k in
        if Hashtbl.length table >= max_entries then Hashtbl.reset table;
        Hashtbl.add table key v;
        v
  end

let binomial_bits ~n ~k = Bignat.bit_length (binomial n k)

let bypassed f =
  let flag = Domain.DLS.get bypass in
  let saved = !flag in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := saved) f
