type t = { mutable data : bytes; mutable length : int }

let create ?(capacity = 256) () =
  { data = Bytes.make (max 1 ((capacity + 7) / 8)) '\000'; length = 0 }

let length t = t.length

let ensure t extra_bits =
  let needed = (t.length + extra_bits + 7) / 8 in
  if needed > Bytes.length t.data then begin
    let capacity = max needed (2 * Bytes.length t.data) in
    let data = Bytes.make capacity '\000' in
    Bytes.blit t.data 0 data 0 (Bytes.length t.data);
    t.data <- data
  end

let write_bit t bit =
  ensure t 1;
  if bit then begin
    let i = t.length in
    let j = i lsr 3 in
    let cur = Char.code (Bytes.get t.data j) in
    Bytes.set t.data j (Char.chr (cur lor (1 lsl (i land 7))))
  end;
  t.length <- t.length + 1

(* OR the low [width] (<= 8 - off headroom handled by caller loop) bits of
   [v] into the buffer at the current position, whole bytes at a time. *)
let write_bits_unchecked t ~width v =
  ensure t width;
  let rec go pos v width =
    if width > 0 then begin
      let j = pos lsr 3 and off = pos land 7 in
      let take = min width (8 - off) in
      let cur = Char.code (Bytes.get t.data j) in
      Bytes.set t.data j (Char.chr (cur lor (((v land ((1 lsl take) - 1)) lsl off) land 0xFF)));
      go (pos + take) (v lsr take) (width - take)
    end
  in
  go t.length v width;
  t.length <- t.length + width

let write_bits t ~width v =
  if width < 0 || width > 62 then invalid_arg "Bitbuf.write_bits: width";
  if v < 0 || (width < 62 && v lsr width <> 0) then
    invalid_arg "Bitbuf.write_bits: value does not fit width";
  write_bits_unchecked t ~width v

let append t bits =
  let n = Bits.length bits in
  ensure t n;
  let pos = ref 0 in
  while !pos < n do
    let take = min 24 (n - !pos) in
    write_bits_unchecked t ~width:take (Bits.extract bits ~pos:!pos ~width:take);
    pos := !pos + take
  done

let contents t =
  let data = Bytes.sub t.data 0 ((t.length + 7) / 8) in
  Bits.unsafe_of_bytes data ~length:t.length

(* The writer's invariant — every bit at index >= length is zero — is what
   makes both [reset] (zero only the used prefix) and [view] (alias the
   backing bytes directly) sound. *)
let reset t =
  Bytes.fill t.data 0 ((t.length + 7) / 8) '\000';
  t.length <- 0

let view t = Bits.unsafe_of_bytes t.data ~length:t.length
