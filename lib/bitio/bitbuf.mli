(** Growable bit-level writer used to assemble message payloads. *)

type t

(** [create ?capacity ()] is an empty writer.  [capacity] is a size hint in
    bits. *)
val create : ?capacity:int -> unit -> t

(** Number of bits written so far. *)
val length : t -> int

(** Append a single bit. *)
val write_bit : t -> bool -> unit

(** [write_bits t ~width v] appends the [width] low bits of [v], least
    significant first.  [width] must be in [0, 62] and [v] must fit, i.e.
    [0 <= v < 2^width].  Raises [Invalid_argument] otherwise. *)
val write_bits : t -> width:int -> int -> unit

(** [append t bits] appends a whole bit vector. *)
val append : t -> Bits.t -> unit

(** Freeze the contents written so far (copies; the result is safe to keep).
    The writer remains usable. *)
val contents : t -> Bits.t

(** [reset t] empties the writer without shrinking its backing storage, so
    it can be reused for the next payload with no fresh allocation.  This
    is the primitive behind {!Pool}. *)
val reset : t -> unit

(** [view t] is a zero-copy {!Bits.t} over the bits written so far.  The
    view aliases the writer's storage: it is invalidated by any subsequent
    [write_*], {!append} or {!reset} on [t].  Use it for transient reads
    (e.g. {!Bitreader.of_bitbuf}); use {!contents} for payloads that
    outlive the writer. *)
val view : t -> Bits.t
