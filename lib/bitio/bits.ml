type t = { data : bytes; length : int }

let empty = { data = Bytes.empty; length = 0 }

let length b = b.length

let byte_count length = (length + 7) / 8

let get b i =
  if i < 0 || i >= b.length then invalid_arg "Bits.get: index out of bounds";
  let byte = Char.code (Bytes.get b.data (i lsr 3)) in
  byte land (1 lsl (i land 7)) <> 0

(* Top level (not a local closure): [extract] runs per 24-bit chunk of
   every fingerprint on the batch-equality hot path. *)
let byte_at data i = if i < Bytes.length data then Char.code (Bytes.get data i) else 0

let extract b ~pos ~width =
  if width < 0 || width > 24 then invalid_arg "Bits.extract: width";
  if pos < 0 || pos + width > b.length then invalid_arg "Bits.extract: out of bounds";
  if width = 0 then 0
  else begin
    (* Bits pos..pos+width-1 live in at most 4 consecutive bytes. *)
    let j = pos lsr 3 and off = pos land 7 in
    let d = b.data in
    let word =
      byte_at d j
      lor (byte_at d (j + 1) lsl 8)
      lor (byte_at d (j + 2) lsl 16)
      lor (byte_at d (j + 3) lsl 24)
    in
    (word lsr off) land ((1 lsl width) - 1)
  end

let of_bools bools =
  let length = List.length bools in
  let data = Bytes.make (byte_count length) '\000' in
  List.iteri
    (fun i bit ->
      if bit then
        let j = i lsr 3 in
        let cur = Char.code (Bytes.get data j) in
        Bytes.set data j (Char.chr (cur lor (1 lsl (i land 7)))))
    bools;
  { data; length }

let to_bools b = List.init b.length (get b)

let of_string s = { data = Bytes.of_string s; length = 8 * String.length s }

let unsafe_of_bytes data ~length =
  if length < 0 || length > 8 * Bytes.length data then
    invalid_arg "Bits.unsafe_of_bytes: bad length";
  { data; length }

let bytes b = b.data

let equal a b =
  a.length = b.length
  &&
  let n = byte_count a.length in
  let rec loop i = i >= n || (Bytes.get a.data i = Bytes.get b.data i && loop (i + 1)) in
  loop 0

let key b = string_of_int b.length ^ ":" ^ Bytes.sub_string b.data 0 (byte_count b.length)

let concat a b =
  if a.length = 0 then b
  else if b.length = 0 then a
  else begin
    let length = a.length + b.length in
    let data = Bytes.make (byte_count length) '\000' in
    Bytes.blit a.data 0 data 0 (byte_count a.length);
    (* [a] may end mid-byte, so bits of [b] are re-packed one by one. *)
    for i = 0 to b.length - 1 do
      if get b i then begin
        let k = a.length + i in
        let j = k lsr 3 in
        let cur = Char.code (Bytes.get data j) in
        Bytes.set data j (Char.chr (cur lor (1 lsl (k land 7))))
      end
    done;
    { data; length }
  end

let flip b i =
  if i < 0 || i >= b.length then invalid_arg "Bits.flip: index out of bounds";
  let data = Bytes.sub b.data 0 (byte_count b.length) in
  let j = i lsr 3 in
  Bytes.set data j (Char.chr (Char.code (Bytes.get data j) lxor (1 lsl (i land 7))));
  { data; length = b.length }

let pp ppf b =
  Format.fprintf ppf "%d'" b.length;
  for i = 0 to min (b.length - 1) 63 do
    Format.pp_print_char ppf (if get b i then '1' else '0')
  done;
  if b.length > 64 then Format.pp_print_string ppf "..."
