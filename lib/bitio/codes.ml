let bit_width v =
  if v < 1 then invalid_arg "Codes.bit_width";
  let rec loop v acc = if v = 0 then acc else loop (v lsr 1) (acc + 1) in
  loop v 0

let write_unary buf n =
  if n < 0 then invalid_arg "Codes.write_unary";
  (* n ones then a zero is the (n+1)-bit value 2^n - 1, LSB first — one
     bulk write instead of n+1 single-bit writes whenever it fits. *)
  if n <= 61 then Bitbuf.write_bits buf ~width:(n + 1) ((1 lsl n) - 1)
  else begin
    for _ = 1 to n do
      Bitbuf.write_bit buf true
    done;
    Bitbuf.write_bit buf false
  end

let read_unary r =
  let rec loop acc = if Bitreader.read_bit r then loop (acc + 1) else acc in
  loop 0

(* Gamma of n >= 0 encodes m = n + 1: unary (width - 1), then the low
   (width - 1) bits of m. *)
let write_gamma buf n =
  if n < 0 then invalid_arg "Codes.write_gamma";
  let m = n + 1 in
  let w = bit_width m in
  if w <= 31 then
    (* Whole codeword in one write: bits 0..w-2 are the unary prefix
       (ones), bit w-1 the terminator (zero), bits w..2w-2 the low bits of
       m.  2w-1 <= 61, inside write_bits' width bound. *)
    Bitbuf.write_bits buf ~width:((2 * w) - 1)
      (((1 lsl (w - 1)) - 1) lor ((m land ((1 lsl (w - 1)) - 1)) lsl w))
  else begin
    write_unary buf (w - 1);
    Bitbuf.write_bits buf ~width:(w - 1) (m land ((1 lsl (w - 1)) - 1))
  end

let read_gamma r =
  let w = read_unary r + 1 in
  let low = Bitreader.read_bits r ~width:(w - 1) in
  (low lor (1 lsl (w - 1))) - 1

(* Delta of n >= 0 encodes m = n + 1: gamma of (width - 1), then the low
   (width - 1) bits of m. *)
let write_delta buf n =
  if n < 0 then invalid_arg "Codes.write_delta";
  let m = n + 1 in
  let w = bit_width m in
  write_gamma buf (w - 1);
  Bitbuf.write_bits buf ~width:(w - 1) (m land ((1 lsl (w - 1)) - 1))

let read_delta r =
  let w = read_gamma r + 1 in
  let low = Bitreader.read_bits r ~width:(w - 1) in
  (low lor (1 lsl (w - 1))) - 1

let write_rice buf ~k n =
  if n < 0 || k < 0 then invalid_arg "Codes.write_rice";
  write_unary buf (n lsr k);
  Bitbuf.write_bits buf ~width:k (n land ((1 lsl k) - 1))

let read_rice r ~k =
  let q = read_unary r in
  let rem = Bitreader.read_bits r ~width:k in
  (q lsl k) lor rem

let write_varint buf n =
  if n < 0 then invalid_arg "Codes.write_varint";
  let rec loop n =
    if n < 128 then Bitbuf.write_bits buf ~width:8 n
    else begin
      Bitbuf.write_bits buf ~width:8 (128 lor (n land 127));
      loop (n lsr 7)
    end
  in
  loop n

let read_varint r =
  let rec loop shift acc =
    let b = Bitreader.read_bits r ~width:8 in
    let acc = acc lor ((b land 127) lsl shift) in
    if b land 128 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

(* Cost tables for the small arguments that dominate the protocols' count
   and gap streams.  Immutable and filled from the closed forms at module
   init, so they are observationally pure (lint R2 concerns mutation, not
   initialized lookup tables). *)
let gamma_cost_exact n = (2 * bit_width (n + 1)) - 1

let gamma_cost_table = Array.init 1024 gamma_cost_exact

let gamma_cost n = if n >= 0 && n < 1024 then Array.unsafe_get gamma_cost_table n else gamma_cost_exact n

let delta_cost_exact n =
  let w = bit_width (n + 1) in
  gamma_cost (w - 1) + (w - 1)

let delta_cost_table = Array.init 1024 delta_cost_exact

let delta_cost n = if n >= 0 && n < 1024 then Array.unsafe_get delta_cost_table n else delta_cost_exact n

let rice_cost ~k n = (n lsr k) + 1 + k

let varint_cost n =
  let rec loop n acc = if n < 128 then acc + 8 else loop (n lsr 7) (acc + 8) in
  loop n 0
