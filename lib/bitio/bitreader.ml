type t = { mutable bits : Bits.t; mutable position : int }

exception Underflow

let create bits = { bits; position = 0 }

let reset t bits =
  t.bits <- bits;
  t.position <- 0

let of_bitbuf buf = { bits = Bitbuf.view buf; position = 0 }

let position t = t.position

let remaining t = Bits.length t.bits - t.position

let read_bit t =
  if t.position >= Bits.length t.bits then raise Underflow;
  let bit = Bits.get t.bits t.position in
  t.position <- t.position + 1;
  bit

let read_chunk t ~width =
  (* width <= 24, bounds already checked by callers *)
  let v = Bits.extract t.bits ~pos:t.position ~width in
  t.position <- t.position + width;
  v

let read_bits t ~width =
  if width < 0 || width > 62 then invalid_arg "Bitreader.read_bits: width";
  if t.position + width > Bits.length t.bits then raise Underflow;
  let rec loop shift acc =
    if shift >= width then acc
    else begin
      let take = min 24 (width - shift) in
      loop (shift + take) (acc lor (read_chunk t ~width:take lsl shift))
    end
  in
  loop 0 0

let read_blob t ~bits =
  if bits < 0 then invalid_arg "Bitreader.read_blob: bits";
  if t.position + bits > Bits.length t.bits then raise Underflow;
  let buf = Bytes.make ((bits + 7) / 8) '\000' in
  let pos = ref 0 in
  while !pos < bits do
    let take = min 24 (bits - !pos) in
    let v = read_chunk t ~width:take in
    (* scatter the chunk into the destination, byte-aligned there *)
    let rec put dst v width =
      if width > 0 then begin
        let j = dst lsr 3 and off = dst land 7 in
        let bite = min width (8 - off) in
        let cur = Char.code (Bytes.get buf j) in
        Bytes.set buf j (Char.chr (cur lor (((v land ((1 lsl bite) - 1)) lsl off) land 0xFF)));
        put (dst + bite) (v lsr bite) (width - bite)
      end
    in
    put !pos v take;
    pos := !pos + take
  done;
  Bits.unsafe_of_bytes buf ~length:bits
