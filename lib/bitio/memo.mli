(** Domain-local caching of derived codec tables (binomial coefficients
    for the combinatorial number system).

    Everything here is a pure function of its arguments; the cache only
    changes how often the underlying bignum arithmetic runs, never a
    result or a transcript.  Tables live in [Domain.DLS], one per domain,
    so lookups need no synchronisation (this module carries the lint R4
    allowlist entry for [Domain.DLS] outside lib/engine and lib/obsv). *)

(** [binomial n k] = [Bignat.binomial n k], cached per domain for
    [0 <= k <= n < 2^26].  Out-of-range arguments defer to
    [Bignat.binomial] uncached, so raises and zero cases are identical. *)
val binomial : int -> int -> Bignat.t

(** [binomial_bits ~n ~k] is [Bignat.bit_length (binomial n k)] — the
    payload width of the enumerative codec for a [k]-subset of an [n]
    universe. *)
val binomial_bits : n:int -> k:int -> int

(** [bypassed f] runs [f] with the cache disabled on the current domain
    (every coefficient recomputed).  Used by the hot-path tests to compare
    cached and uncached executions. *)
val bypassed : (unit -> 'a) -> 'a
