(** Sequential reader over a {!Bits.t} payload. *)

type t

exception Underflow
(** Raised when reading past the end of the payload. *)

(** [create bits] reads [bits] from the beginning. *)
val create : Bits.t -> t

(** [reset t bits] repoints [t] at [bits], rewound to the beginning —
    [create] without the allocation.  {!Pool.with_reader} uses this to
    recycle reader cells. *)
val reset : t -> Bits.t -> unit

(** [of_bitbuf buf] reads the bits written to [buf] so far without copying
    them (a reader over {!Bitbuf.view}).  The reader is invalidated by any
    subsequent write to or reset of [buf]. *)
val of_bitbuf : Bitbuf.t -> t

(** Bits consumed so far. *)
val position : t -> int

(** Bits left to read. *)
val remaining : t -> int

(** Consume and return the next bit. *)
val read_bit : t -> bool

(** [read_bits t ~width] reads [width] bits (least significant first) written
    by {!Bitbuf.write_bits} with the same width.  [width] must be in
    [0, 62]. *)
val read_bits : t -> width:int -> int

(** [read_blob t ~bits] reads the next [bits] bits as an opaque bit vector
    (e.g. a hash tag of arbitrary width). *)
val read_blob : t -> bits:int -> Bits.t
