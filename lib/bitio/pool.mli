(** Domain-local pooling of {!Bitbuf} writers for allocation-lean payload
    assembly.

    Every buffer is handed out freshly {!Bitbuf.reset}, so the bits a
    caller writes are exactly what a newly created writer would produce:
    pooling changes allocation behaviour only, never transcripts.  The
    freelist lives in [Domain.DLS], so each domain pools independently and
    no synchronisation is involved (this module carries the lint R4
    allowlist entry for [Domain.DLS] outside lib/engine and lib/obsv). *)

(** [with_buf f] runs [f] with a reset writer borrowed from the current
    domain's freelist and returns the writer on exit (also on exception).
    The writer — and any {!Bitbuf.view} or {!Bitreader.of_bitbuf} over it —
    must not escape [f]; results that outlive the call must be frozen with
    {!Bitbuf.contents}.  Nested calls borrow distinct writers. *)
val with_buf : (Bitbuf.t -> 'a) -> 'a

(** [payload f] assembles one payload: runs [f] on a borrowed writer and
    returns the frozen (copied, safe-to-keep) {!Bitbuf.contents}.  The
    common one-message case of {!with_buf}. *)
val payload : (Bitbuf.t -> unit) -> Bits.t

(** [with_reader bits f] runs [f] with a {!Bitreader} over [bits] borrowed
    from the current domain's reader arena (rewound via {!Bitreader.reset},
    so reads are exactly those of a fresh reader).  The reader must not
    escape [f].  If [f] raises, the cell is dropped rather than recycled —
    correctness never depends on the pool's contents. *)
val with_reader : Bits.t -> (Bitreader.t -> 'a) -> 'a

(** [bypassed f] runs [f] with pooling disabled on the current domain:
    every {!with_buf} inside allocates a fresh writer.  Used by the
    hot-path tests to compare pooled and unpooled executions. *)
val bypassed : (unit -> 'a) -> 'a
