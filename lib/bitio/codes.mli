(** Self-delimiting integer codes.

    These are the concrete encodings behind every "O(log x) bits" step in the
    protocols, so that measured communication is an honest bit count.  All
    encoders take non-negative arguments; the Elias codes internally shift by
    one to admit zero. *)

(** [bit_width v] is the number of bits in the binary representation of
    [v >= 1], i.e. [floor (log2 v) + 1]. *)
val bit_width : int -> int

(** Unary: [n] is written as [n] one bits followed by a zero ([n + 1] bits). *)
val write_unary : Bitbuf.t -> int -> unit

(** Decode one unary value, consuming through its terminating zero bit. *)
val read_unary : Bitreader.t -> int

(** Elias gamma code of [n >= 0] ([2 * bit_width (n+1) - 1] bits). *)
val write_gamma : Bitbuf.t -> int -> unit

(** Decode one gamma value written by {!write_gamma}. *)
val read_gamma : Bitreader.t -> int

(** Elias delta code of [n >= 0]; asymptotically
    [log n + O(log log n)] bits. *)
val write_delta : Bitbuf.t -> int -> unit

(** Decode one delta value written by {!write_delta}. *)
val read_delta : Bitreader.t -> int

(** Golomb–Rice with parameter [k]: quotient in unary, remainder in [k]
    bits.  Near-optimal for geometrically distributed values with mean
    around [2^k]. *)
val write_rice : Bitbuf.t -> k:int -> int -> unit

(** Decode one Rice value; [k] must match the writer's parameter. *)
val read_rice : Bitreader.t -> k:int -> int

(** LEB128-style varint: 7 value bits + 1 continuation bit per group. *)
val write_varint : Bitbuf.t -> int -> unit

(** Decode one varint written by {!write_varint}. *)
val read_varint : Bitreader.t -> int

(** [gamma_cost n] is the exact bit count {!write_gamma} spends on [n],
    without writing it (memoized for small [n]; costs feed round budgets
    on protocol hot paths). *)
val gamma_cost : int -> int

(** Exact bit count of {!write_delta} on the argument (memoized for small
    values, like {!gamma_cost}). *)
val delta_cost : int -> int

(** Exact bit count of {!write_rice} on the argument. *)
val rice_cost : k:int -> int -> int

(** Exact bit count of {!write_varint} on the argument. *)
val varint_cost : int -> int
