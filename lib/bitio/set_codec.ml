let universe_width n =
  if n < 1 then invalid_arg "Set_codec.universe_width";
  if n <= 2 then 1 else Codes.bit_width (n - 1)

let validate ~universe s =
  Array.iteri
    (fun i x ->
      if x < 0 || x >= universe then invalid_arg "Set_codec: element out of universe";
      if i > 0 && s.(i - 1) >= x then invalid_arg "Set_codec: not strictly increasing")
    s

let write_fixed buf ~universe s =
  validate ~universe s;
  let width = universe_width universe in
  Codes.write_gamma buf (Array.length s);
  Array.iter (fun x -> Bitbuf.write_bits buf ~width x) s

(* A corrupted cardinality prefix must fail fast, not size an allocation:
   every element costs at least one bit, so a count beyond the remaining
   payload cannot belong to a well-formed stream. *)
let check_count r count =
  if count > Bitreader.remaining r then raise Bitreader.Underflow

let read_fixed r ~universe =
  let width = universe_width universe in
  let count = Codes.read_gamma r in
  if width > 0 && count > Bitreader.remaining r / width then raise Bitreader.Underflow;
  Array.init count (fun _ -> Bitreader.read_bits r ~width)

let write_gaps buf s =
  Codes.write_gamma buf (Array.length s);
  Array.iteri
    (fun i x ->
      let gap = if i = 0 then x else x - s.(i - 1) - 1 in
      Codes.write_delta buf gap)
    s

let read_gaps r =
  let count = Codes.read_gamma r in
  check_count r count;
  let out = Array.make count 0 in
  for i = 0 to count - 1 do
    let gap = Codes.read_delta r in
    out.(i) <- (if i = 0 then gap else out.(i - 1) + 1 + gap)
  done;
  out

let gaps_cost s =
  let cost = ref (Codes.gamma_cost (Array.length s)) in
  Array.iteri
    (fun i x ->
      let gap = if i = 0 then x else x - s.(i - 1) - 1 in
      cost := !cost + Codes.delta_cost gap)
    s;
  !cost

let log2_binomial n k =
  if k < 0 || k > n then invalid_arg "Set_codec.log2_binomial";
  (* log2 binom = sum log2 ((n - i) / (k - i)); numerically stable enough for
     the bench-table comparisons this feeds. *)
  let acc = ref 0.0 in
  for i = 0 to k - 1 do
    acc := !acc +. log ((float_of_int (n - i)) /. float_of_int (k - i)) /. log 2.0
  done;
  !acc
