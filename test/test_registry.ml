(* The experiment registry (Workload.Registry): frontmatter round-trip,
   id-discipline rejection, dangling-artifact / unknown-key / stale-command
   detection over in-memory envs, Superseded exemptions, regen planning,
   and the committed experiments.json as a golden, byte-stable export. *)

module R = Workload.Registry

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let entry_doc =
  "---\n\
   id: 1\n\
   title: Fixture entry\n\
   status: Complete\n\
   anchor: Theorem 3.1\n\
   roadmap: seed\n\
   index: T1\n\
   hypothesis: The fixture parses.\n\
   reproduce: dune exec bench/main.exe -- --only T1\n\
   smoke: dune exec bench/main.exe -- --quick --no-micro\n\
   regen: diff\n\
   ---\n\n\
   Body text.\n"

let parse_exn ~file contents =
  match R.parse ~file contents with
  | Ok e -> e
  | Error msg -> Alcotest.failf "parse %s: %s" file msg

let fixture = parse_exn ~file:"experiments/001-fixture.md" entry_doc

(* An env over assoc-list files: paths with no '/' are root files. *)
let env_of files =
  {
    R.read_file = (fun path -> List.assoc_opt path files);
    list_root =
      (fun () ->
        List.filter_map
          (fun (path, _) -> if String.contains path '/' then None else Some path)
          files);
  }

(* The minimal coherent surroundings for a one-entry registry. *)
let base_files =
  [
    ("bench/main.ml", "");
    ("EXPERIMENTS.md", "see experiments/001-fixture.md\n");
    ("README.md", "experiments/ holds the registry\n");
  ]

let cli_subcommands = [ "conform"; "experiments"; "profile"; "sweep" ]

let verify ?(files = base_files) registry =
  R.verify ~env:(env_of files) ~cli_subcommands registry

let registry_of sources =
  let registry, violations = R.of_sources sources in
  check_int "no parse violations" 0 (List.length violations);
  registry

let whats violations = List.map (fun (v : R.violation) -> v.R.what) violations

let has_violation ~substring violations =
  List.exists
    (fun what ->
      let n = String.length substring in
      let rec scan i =
        i + n <= String.length what && (String.sub what i n = substring || scan (i + 1))
      in
      scan 0)
    (whats violations)

(* ---------- parsing ---------- *)

let test_roundtrip () =
  let e = fixture in
  check_int "id" 1 e.R.id;
  check_string "slug" "fixture" e.R.slug;
  check_string "title" "Fixture entry" e.R.title;
  check_bool "status" true (e.R.status = R.Complete);
  check_bool "regen" true (e.R.regen = R.Diff);
  check_string "body" "\nBody text.\n" e.R.body;
  (* Canonical rendering re-parses to the same entry. *)
  let again = parse_exn ~file:e.R.file (R.front_matter_of e ^ e.R.body) in
  check_bool "round-trips" true (again = e)

let expect_error ~file ~needle contents =
  match R.parse ~file contents with
  | Ok _ -> Alcotest.failf "expected a parse error mentioning %S" needle
  | Error msg ->
      check_bool (Printf.sprintf "error %S mentions %S" msg needle) true
        (has_violation ~substring:needle [ { R.file = None; what = msg } ])

let test_parse_rejections () =
  let drop_line key =
    String.split_on_char '\n' entry_doc
    |> List.filter (fun l -> not (String.starts_with ~prefix:(key ^ ":") l))
    |> String.concat "\n"
  in
  expect_error ~file:"experiments/001-fixture.md" ~needle:"missing required frontmatter key"
    (drop_line "hypothesis");
  expect_error ~file:"experiments/001-fixture.md" ~needle:"unknown frontmatter key"
    (String.concat "\n" [ "---"; "bogus: x"; "---" ]);
  expect_error ~file:"experiments/001-fixture.md" ~needle:"duplicate frontmatter key"
    (let lines = String.split_on_char '\n' entry_doc in
     String.concat "\n" (List.hd lines :: "id: 2" :: List.tl lines));
  let swap_line key replacement =
    String.split_on_char '\n' entry_doc
    |> List.map (fun l -> if String.starts_with ~prefix:(key ^ ":") l then replacement else l)
    |> String.concat "\n"
  in
  expect_error ~file:"experiments/001-fixture.md" ~needle:"not a positive integer"
    (swap_line "id" "id: zero");
  expect_error ~file:"experiments/001-fixture.md" ~needle:"unknown status"
    (swap_line "status" "status: Done");
  expect_error ~file:"experiments/fixture.md" ~needle:"NNN-slug.md" entry_doc;
  expect_error ~file:"experiments/001-Fixture.md" ~needle:"NNN-slug.md" entry_doc;
  expect_error ~file:"experiments/001-fixture.md" ~needle:"missing frontmatter" "Body only.\n"

(* ---------- id discipline ---------- *)

let renumber id =
  let e = { fixture with R.id; file = Printf.sprintf "experiments/%03d-fixture.md" id } in
  (e.R.file, R.front_matter_of e ^ e.R.body)

let test_duplicate_id () =
  let registry, violations =
    R.of_sources [ renumber 1; ("experiments/001-other.md", entry_doc) ]
  in
  check_int "both parsed" 2 (List.length registry.R.entries);
  check_int "no parse violations" 0 (List.length violations);
  check_bool "duplicate id breaks density" true
    (has_violation ~substring:"dense" (verify registry))

let test_missing_id () =
  let files =
    base_files
    @ [ ("EXPERIMENTS.md", "experiments/001-fixture.md experiments/003-fixture.md\n") ]
  in
  let registry = registry_of [ renumber 1; renumber 3 ] in
  check_bool "gap breaks density" true (has_violation ~substring:"dense" (verify ~files registry))

let test_filename_mismatch () =
  let registry = registry_of [ ("experiments/002-fixture.md", entry_doc) ] in
  (* id 1 in a 002- file: the file name contradicts the id. *)
  check_bool "mismatch reported" true
    (has_violation ~substring:"does not match id" (verify registry))

(* ---------- artifacts ---------- *)

let with_artifact ?(status = "Complete") ?(keys = "total") ?json_check () =
  let doc =
    String.concat ""
      [
        "---\nid: 1\ntitle: A\nstatus: ";
        status;
        "\nanchor: Theorem 3.1\nroadmap: seed\nhypothesis: H.\n";
        "reproduce: dune exec bench/main.exe -- --only T1\n";
        "smoke: dune exec bench/main.exe -- --quick\nregen: gate\n";
        "artifact: BENCH_fixture.json\nartifact_keys: ";
        keys;
        "\n";
        (match json_check with None -> "" | Some m -> "json_check: " ^ m ^ "\n");
        "---\nBody.\n";
      ]
  in
  registry_of [ ("experiments/001-fixture.md", doc) ]

let artifact_files = ("BENCH_fixture.json", "{\"total\": 7}\n") :: base_files

let test_dangling_artifact () =
  check_bool "missing artifact reported" true
    (has_violation ~substring:"does not exist" (verify (with_artifact ())))

let test_artifact_keys () =
  let ok = verify ~files:artifact_files (with_artifact ()) in
  check_int "declared key accepted" 0 (List.length ok);
  check_bool "unknown key reported" true
    (has_violation ~substring:"lacks declared key"
       (verify ~files:artifact_files (with_artifact ~keys:"total, nonesuch" ())))

let test_artifact_schema_mode () =
  check_bool "non-bench mode rejected" true
    (has_violation ~substring:"not a bench schema"
       (verify ~files:artifact_files (with_artifact ~json_check:"lint-report" ())));
  check_bool "failing schema reported" true
    (has_violation ~substring:"fails json_check"
       (verify ~files:artifact_files (with_artifact ~json_check:"bench-chaos" ())))

let test_unclaimed_bench () =
  let registry = registry_of [ (fixture.R.file, entry_doc) ] in
  check_bool "unclaimed BENCH reported" true
    (has_violation ~substring:"claimed by no live"
       (verify ~files:(("BENCH_orphan.json", "{}") :: base_files) registry))

(* ---------- commands and cross-links ---------- *)

let test_stale_command () =
  let doc =
    String.concat "\n"
      [
        "---";
        "id: 1";
        "title: Stale";
        "status: Complete";
        "anchor: Theorem 3.1";
        "roadmap: seed";
        "hypothesis: H.";
        "reproduce: dune exec bench/vanished.exe -- --flag";
        "smoke: dune exec bin/intersect_cli.exe -- goneaway --smoke";
        "regen: gate";
        "---";
        "Body.";
      ]
  in
  let violations = verify (registry_of [ ("experiments/001-fixture.md", doc) ]) in
  check_bool "vanished target reported" true
    (has_violation ~substring:"bench/vanished.ml does not exist" violations);
  check_bool "stale subcommand reported" true
    (has_violation ~substring:"stale intersect_cli subcommand" violations)

let test_broken_crosslink () =
  let registry = registry_of [ (fixture.R.file, entry_doc) ] in
  let files = [ ("bench/main.ml", ""); ("EXPERIMENTS.md", "no links here\n"); ("README.md", "x") ] in
  let violations = verify ~files registry in
  check_bool "unlisted entry reported" true
    (has_violation ~substring:"not referenced by the EXPERIMENTS.md index" violations);
  check_bool "README miss reported" true
    (has_violation ~substring:"README.md never points" violations);
  let files =
    [
      ("bench/main.ml", "");
      ("EXPERIMENTS.md", "experiments/001-fixture.md and experiments/099-ghost.md\n");
      ("README.md", "experiments/");
    ]
  in
  check_bool "dangling index link reported" true
    (has_violation ~substring:"references missing experiments/099-ghost.md" (verify ~files registry))

(* ---------- lifecycle ---------- *)

let test_superseded_exempt () =
  let doc =
    String.concat ""
      [
        "---\nid: 1\ntitle: Old\nstatus: Superseded\nanchor: Theorem 3.1\nroadmap: seed\n";
        "hypothesis: H.\nreproduce: dune exec bench/vanished.exe -- --flag\n";
        "artifact: BENCH_ghost.json\nartifact_keys: total\n---\nReplaced by 002.\n";
      ]
  in
  let registry = registry_of [ ("experiments/001-fixture.md", doc) ] in
  check_int "superseded entries skip command/artifact/regen checks" 0
    (List.length (verify registry));
  check_int "superseded entries are not regenerated" 0 (List.length (R.regen_plan registry))

let test_complete_needs_smoke () =
  let doc smoke_or_none =
    String.concat ""
      [
        "---\nid: 1\ntitle: C\nstatus: Complete\nanchor: Theorem 3.1\nroadmap: seed\n";
        "hypothesis: H.\nreproduce: dune exec bench/main.exe -- --only T1\n";
        smoke_or_none;
        "---\nBody.\n";
      ]
  in
  check_bool "no smoke reported" true
    (has_violation ~substring:"no smoke command"
       (verify (registry_of [ ("experiments/001-fixture.md", doc "") ])));
  check_int "regen none opts out" 0
    (List.length (verify (registry_of [ ("experiments/001-fixture.md", doc "regen: none\n") ])))

let test_regen_plan_dedup () =
  let entries =
    List.map
      (fun id ->
        let e =
          {
            fixture with
            R.id;
            file = Printf.sprintf "experiments/%03d-fixture.md" id;
            smoke =
              (if id = 3 then Some "dune exec bench/other.exe -- --smoke"
               else fixture.R.smoke);
          }
        in
        (e.R.file, R.front_matter_of e ^ e.R.body))
      [ 1; 2; 3 ]
  in
  match R.regen_plan (registry_of entries) with
  | [ (shared, R.Diff, [ 1; 2 ]); (other, R.Diff, [ 3 ]) ] ->
      check_string "shared command" (Option.get fixture.R.smoke) shared;
      check_string "distinct command" "dune exec bench/other.exe -- --smoke" other
  | plan -> Alcotest.failf "unexpected plan of %d group(s)" (List.length plan)

(* ---------- the real repository ---------- *)

let repo_cli_subcommands =
  [
    "bench-regress"; "chaos"; "conform"; "disj"; "experiments"; "health"; "multi"; "profile";
    "similarity"; "soak"; "sweep"; "top"; "trace"; "two";
  ]

let load_repo () =
  let registry, violations = R.load ~root:".." in
  check_int "repo parses clean" 0 (List.length violations);
  registry

let test_repo_verifies () =
  let registry = load_repo () in
  check_int "26 entries" 26 (List.length registry.R.entries);
  let _, _, complete, _ = R.census registry in
  check_int "all complete" 26 complete;
  let violations =
    R.verify ~env:(R.repo_env ~root:"..") ~cli_subcommands:repo_cli_subcommands registry
  in
  List.iter (fun (v : R.violation) -> Printf.eprintf "violation: %s\n" v.R.what) violations;
  check_int "repo verifies clean" 0 (List.length violations)

let test_golden_export () =
  let registry = load_repo () in
  let committed = In_channel.with_open_bin "../experiments.json" In_channel.input_all in
  check_string "export matches committed experiments.json" committed (R.export registry);
  (* Export is a pure function: two loads produce identical bytes. *)
  check_string "two-run byte identity" (R.export (load_repo ())) (R.export registry);
  check_bool "export passes its schema mode" true
    (Workload.Schemas.check ~mode:"experiments" (R.export registry) = Ok ())

let () =
  Alcotest.run "registry"
    [
      ( "parse",
        [
          Alcotest.test_case "frontmatter round-trip" `Quick test_roundtrip;
          Alcotest.test_case "rejections" `Quick test_parse_rejections;
        ] );
      ( "ids",
        [
          Alcotest.test_case "duplicate id" `Quick test_duplicate_id;
          Alcotest.test_case "missing id" `Quick test_missing_id;
          Alcotest.test_case "filename mismatch" `Quick test_filename_mismatch;
        ] );
      ( "artifacts",
        [
          Alcotest.test_case "dangling artifact" `Quick test_dangling_artifact;
          Alcotest.test_case "artifact keys" `Quick test_artifact_keys;
          Alcotest.test_case "schema modes" `Quick test_artifact_schema_mode;
          Alcotest.test_case "unclaimed BENCH" `Quick test_unclaimed_bench;
        ] );
      ( "commands",
        [
          Alcotest.test_case "stale command" `Quick test_stale_command;
          Alcotest.test_case "broken cross-link" `Quick test_broken_crosslink;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "superseded exempt" `Quick test_superseded_exempt;
          Alcotest.test_case "complete needs smoke" `Quick test_complete_needs_smoke;
          Alcotest.test_case "regen plan dedup" `Quick test_regen_plan_dedup;
        ] );
      ( "repo",
        [
          Alcotest.test_case "verifies clean" `Quick test_repo_verifies;
          Alcotest.test_case "golden export" `Quick test_golden_export;
        ] );
    ]
