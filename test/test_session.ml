(* Tests for the session robustness layer: seeded backoff, checkpoint
   codec round-trips and rejections, the degradation ladder's outcomes,
   resume determinism at every checkpoint boundary, exhaustion safety
   (never a wrong intersection), and the chaos harness's invariant and
   reproducibility. *)

module M = Session.Machine

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let s8 = [| 1; 3; 5; 7; 9; 11; 13; 15 |]
let t8 = [| 3; 4; 5; 6; 9; 10; 13; 14 |]
let truth = Iset.inter s8 t8

let config ?(seed = 5) ?(protocol = "trivial") ?(deadline = 200_000) ?(rung_attempts = 2)
    ?(check_bits0 = 16) ?(backoff_base = 8) ?(backoff_cap = 64) plan =
  {
    M.seed;
    protocol;
    k = 8;
    universe_bits = 10;
    plan;
    deadline_bits = deadline;
    rung_attempts;
    check_bits0;
    backoff_base;
    backoff_cap;
  }

let drop_all = Commsim.Faults.uniform ~seed:11 (Commsim.Faults.dropping 1.0)
let drop_some ~seed = Commsim.Faults.uniform ~seed (Commsim.Faults.dropping 0.45)

(* ---------- Backoff: pure, bounded, capped ---------- *)

let test_backoff_deterministic () =
  for attempt = 1 to 6 do
    let a = Session.Backoff.ticks ~seed:9 ~base:16 ~cap:256 ~attempt in
    let b = Session.Backoff.ticks ~seed:9 ~base:16 ~cap:256 ~attempt in
    check "same args, same ticks" a b
  done

let test_backoff_bounds () =
  for attempt = 1 to 8 do
    let ceiling = min 256 (16 * (1 lsl (attempt - 1))) in
    let t = Session.Backoff.ticks ~seed:3 ~base:16 ~cap:256 ~attempt in
    check_bool "within [c/2, c]" true (t >= ceiling / 2 && t <= ceiling)
  done;
  check "base 0 disables backoff" 0 (Session.Backoff.ticks ~seed:3 ~base:0 ~cap:256 ~attempt:4)

let test_backoff_seed_varies () =
  let distinct =
    List.sort_uniq compare
      (List.init 16 (fun seed -> Session.Backoff.ticks ~seed ~base:64 ~cap:4096 ~attempt:3))
  in
  check_bool "different seeds spread the jitter" true (List.length distinct > 1)

(* ---------- Ladder outcomes ---------- *)

let test_clean_completes_first_try () =
  let report = M.run (config Commsim.Faults.clean) ~s:s8 ~t:t8 in
  check_str "completed" "completed" (M.outcome_name report.M.outcome);
  check "one attempt" 1 report.M.attempts;
  check_str "base rung" "base" (M.rung_name report.M.final_rung);
  check_bool "exact" true (M.result_of report.M.outcome = Some truth);
  check "no failures" 0 (List.length report.M.failures);
  check "no backoff" 0 report.M.ledger.M.backoff_ticks;
  check "no waste" 0 report.M.ledger.M.wasted_bits

let test_black_hole_degrades_exactly () =
  (* Every message dropped: all 1 + 2*rung_attempts ladder attempts stall,
     then the deterministic fallback still produces exactly S ∩ T. *)
  let report = M.run (config drop_all) ~s:s8 ~t:t8 in
  check_str "degraded" "degraded" (M.outcome_name report.M.outcome);
  check_str "fallback rung" "fallback" (M.rung_name report.M.final_rung);
  check "all ladder attempts spent" 5 report.M.attempts;
  check "one failure per attempt" 5 (List.length report.M.failures);
  List.iter
    (fun (kind, _) -> check_str "stalled" "stalled" (M.kind_name kind))
    report.M.failures;
  check_bool "fallback result exact" true (M.result_of report.M.outcome = Some truth);
  check_bool "waste accounted" true (report.M.ledger.M.wasted_bits > 0);
  check_bool "backoff accounted" true (report.M.ledger.M.backoff_ticks > 0)

let test_widened_rung_doubles () =
  (* Stalls never widen the check on base/guarded rungs; the widened rung
     doubles unconditionally: 16 -> 32 -> 64 across its two attempts. *)
  let report = M.run (config drop_all) ~s:s8 ~t:t8 in
  check "width doubled on the widened rung" 64 report.M.final_width

let test_tight_deadline_fails_safe () =
  let report = M.run (config ~deadline:60 drop_all) ~s:s8 ~t:t8 in
  check_str "failed_safe" "failed_safe" (M.outcome_name report.M.outcome);
  check_str "exhausted rung" "exhausted" (M.rung_name report.M.final_rung);
  check_bool "no exact result claimed" true (M.result_of report.M.outcome = None);
  match report.M.outcome with
  | M.Failed_safe { diagnosis; _ } ->
      check_bool "diagnosis counts the stalls" true (diagnosis.M.stalled >= 1);
      check_bool "deadline recorded as a failure" true
        (List.exists (fun (k, _) -> k = M.Deadline) report.M.failures);
      check_bool "remaining below the reserve" true
        (diagnosis.M.remaining_bits < diagnosis.M.reserve_bits)
  | _ -> Alcotest.fail "expected Failed_safe"

let test_exhaustion_never_wrong () =
  (* Whatever the adversity and however tight the budget, an exact-claiming
     outcome (completed or degraded) must be S ∩ T. *)
  List.iter
    (fun deadline ->
      for seed = 1 to 25 do
        let cfg = config ~seed ~deadline (drop_some ~seed:(seed * 7)) in
        let report = M.run cfg ~s:s8 ~t:t8 in
        match M.result_of report.M.outcome with
        | Some result -> check_bool "exact or nothing" true (Iset.equal result truth)
        | None -> ()
      done)
    [ 60; 400; 2_000; 200_000 ]

let test_stall_diagnosis_carries_drop_site () =
  let report = M.run (config drop_all) ~s:s8 ~t:t8 in
  match report.M.failures with
  | (M.Stalled, detail) :: _ ->
      check_bool "diagnosis names the first dropped message" true
        (let sub = "first drop" in
         let n = String.length detail and m = String.length sub in
         let rec scan i = i + m <= n && (String.sub detail i m = sub || scan (i + 1)) in
         scan 0)
  | _ -> Alcotest.fail "expected a stall failure first"

(* ---------- Checkpoint codec ---------- *)

let mid_session_checkpoint () =
  let cfg = config drop_all in
  match M.step (M.start cfg) ~s:s8 ~t:t8 with
  | M.Running st -> M.checkpoint st
  | M.Done _ -> Alcotest.fail "black-hole session cannot finish in one step"

let test_checkpoint_roundtrip () =
  let ck = mid_session_checkpoint () in
  match Session.Checkpoint.of_string (Session.Checkpoint.to_string ck) with
  | Error e -> Alcotest.fail e
  | Ok ck' -> check_bool "codec round-trips exactly" true (ck = ck')

let test_checkpoint_rejects_garbage () =
  let bad input =
    match Session.Checkpoint.of_string input with Error _ -> true | Ok _ -> false
  in
  check_bool "not JSON" true (bad "{");
  check_bool "not an object" true (bad "[1,2]");
  check_bool "missing fields" true (bad "{\"version\": 1}");
  check_bool "wrong version" true
    (bad
       "{\"version\":99,\"fingerprint\":\"x\",\"attempts\":0,\"resumes\":0,\"width\":16,\
        \"spent_bits\":0,\"backoff_ticks\":0,\"wasted_bits\":0,\"failures\":[],\
        \"candidate\":null,\"cost\":{\"players\":[{\"sent_bits\":0,\"received_bits\":0,\
        \"sent_messages\":0},{\"sent_bits\":0,\"received_bits\":0,\"sent_messages\":0}],\
        \"total_bits\":0,\"messages\":0,\"rounds\":0}}")

let test_checkpoint_rejects_invalid_candidate () =
  match
    Session.Checkpoint.of_string
      "{\"version\":1,\"fingerprint\":\"x\",\"attempts\":1,\"resumes\":0,\"width\":16,\
       \"spent_bits\":10,\"backoff_ticks\":0,\"wasted_bits\":10,\"failures\":[],\
       \"candidate\":[5,3],\"cost\":{\"players\":[{\"sent_bits\":5,\"received_bits\":0,\
       \"sent_messages\":1},{\"sent_bits\":0,\"received_bits\":5,\"sent_messages\":0}],\
       \"total_bits\":5,\"messages\":1,\"rounds\":1}}"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unsorted candidate must be rejected"

let test_restore_rejects_fingerprint_mismatch () =
  let ck = mid_session_checkpoint () in
  let other = config ~seed:6 drop_all in
  match M.restore other ck with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "restore under a different config must fail"

(* ---------- Resume determinism ---------- *)

let replay_eq (a : M.report) (b : M.report) =
  M.outcome_name a.M.outcome = M.outcome_name b.M.outcome
  && M.result_of a.M.outcome = M.result_of b.M.outcome
  && a.M.attempts = b.M.attempts
  && a.M.final_rung = b.M.final_rung
  && a.M.final_width = b.M.final_width
  && a.M.failures = b.M.failures
  && a.M.ledger = b.M.ledger

let test_resume_identical_at_every_boundary () =
  (* Interrupt the session at EVERY checkpoint boundary in turn; each
     serialized-and-reparsed resume must replay the uninterrupted run to
     the byte (result, failures, and the full cost ledger). *)
  let total_boundaries = ref 0 in
  List.iter
    (fun seed ->
      let cfg = config ~seed (drop_some ~seed:(31 * seed)) in
      let boundaries = ref [] in
      let full = M.run ~on_checkpoint:(fun ck -> boundaries := ck :: !boundaries) cfg ~s:s8 ~t:t8 in
      (* A lucky seed may complete on the first attempt and offer no
         boundary; the aggregate check below keeps the test honest. *)
      total_boundaries := !total_boundaries + List.length !boundaries;
      List.iter
        (fun ck ->
          match Session.Checkpoint.of_string (Session.Checkpoint.to_string ck) with
          | Error e -> Alcotest.fail e
          | Ok ck -> (
              match M.resume cfg ck ~s:s8 ~t:t8 with
              | Error e -> Alcotest.fail e
              | Ok resumed ->
                  check_bool "resumed run replays the uninterrupted one" true
                    (replay_eq full resumed);
                  check "resume counted" 1 resumed.M.resumes))
        !boundaries)
    [ 2; 3; 4; 5; 6 ];
  check_bool "some seed offered a boundary to interrupt at" true (!total_boundaries > 0)

let test_run_is_reproducible () =
  let cfg = config ~seed:9 (drop_some ~seed:77) in
  let a = M.run cfg ~s:s8 ~t:t8 and b = M.run cfg ~s:s8 ~t:t8 in
  check_bool "same config, same report" true (replay_eq a b);
  check_str "same JSON"
    (Stats.Json.to_string (M.report_json a))
    (Stats.Json.to_string (M.report_json b))

(* ---------- Resilient attempt log (session's raw material) ---------- *)

let test_resilient_attempt_log () =
  let plan = Commsim.Faults.uniform ~seed:13 (Commsim.Faults.dropping 0.5) in
  let report =
    Intersect.Resilient.run Intersect.Resilient.trivial_base ~plan
      ~budget:{ Intersect.Resilient.attempts = 4; bits = max_int }
      (Prng.Rng.of_int 5) ~universe:1024 s8 t8
  in
  let log = report.Intersect.Resilient.attempt_log in
  check "one row per attempt" report.Intersect.Resilient.attempts (List.length log);
  check "rows sum to faulty_bits" report.Intersect.Resilient.faulty_bits
    (List.fold_left (fun acc r -> acc + r.Intersect.Resilient.bits) 0 log);
  List.iteri
    (fun i row -> check "indices are 1-based and chronological" (i + 1) row.Intersect.Resilient.index)
    log;
  (* Every row but a final successful one explains its failure. *)
  let rec check_rows = function
    | [] -> ()
    | [ last ] ->
        check_bool "last row matches the verdict" true
          (if report.Intersect.Resilient.verified && not report.Intersect.Resilient.degraded
           then last.Intersect.Resilient.failure = None
           else last.Intersect.Resilient.failure <> None)
    | row :: rest ->
        check_bool "non-final rows carry failures" true (row.Intersect.Resilient.failure <> None);
        check_rows rest
  in
  check_rows log

(* ---------- Chaos harness ---------- *)

let chaos_config =
  {
    Workload.Chaos.smoke with
    Workload.Chaos.trials = 4;
    k = 8;
    universe_bits = 10;
    overlap = 4;
    protocols = [ "trivial" ];
  }

let test_chaos_invariant_holds () =
  let report = Workload.Chaos.run ~domains:2 chaos_config in
  Alcotest.(check (list string)) "no violations" [] (Workload.Chaos.invariant_violations report);
  check "a cell per protocol x campaign"
    (List.length chaos_config.Workload.Chaos.campaigns)
    (List.length report.Workload.Chaos.cells)

let test_chaos_deterministic_across_domains () =
  let a = Workload.Chaos.run ~domains:1 chaos_config in
  let b = Workload.Chaos.run ~domains:3 chaos_config in
  check_str "byte-identical reports across domain counts"
    (Stats.Json.to_string (Workload.Chaos.to_json a))
    (Stats.Json.to_string (Workload.Chaos.to_json b))

let () =
  Alcotest.run "session"
    [
      ( "backoff",
        [
          Alcotest.test_case "deterministic" `Quick test_backoff_deterministic;
          Alcotest.test_case "bounds" `Quick test_backoff_bounds;
          Alcotest.test_case "seed varies jitter" `Quick test_backoff_seed_varies;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "clean completes first try" `Quick test_clean_completes_first_try;
          Alcotest.test_case "black hole degrades exactly" `Quick test_black_hole_degrades_exactly;
          Alcotest.test_case "widened rung doubles" `Quick test_widened_rung_doubles;
          Alcotest.test_case "tight deadline fails safe" `Quick test_tight_deadline_fails_safe;
          Alcotest.test_case "exhaustion never wrong" `Quick test_exhaustion_never_wrong;
          Alcotest.test_case "stall diagnosis names drop site" `Quick
            test_stall_diagnosis_carries_drop_site;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_checkpoint_rejects_garbage;
          Alcotest.test_case "rejects invalid candidate" `Quick
            test_checkpoint_rejects_invalid_candidate;
          Alcotest.test_case "restore rejects fingerprint mismatch" `Quick
            test_restore_rejects_fingerprint_mismatch;
        ] );
      ( "resume",
        [
          Alcotest.test_case "identical at every boundary" `Quick
            test_resume_identical_at_every_boundary;
          Alcotest.test_case "run reproducible" `Quick test_run_is_reproducible;
        ] );
      ( "resilient-log",
        [ Alcotest.test_case "attempt log invariants" `Quick test_resilient_attempt_log ] );
      ( "chaos",
        [
          Alcotest.test_case "invariant holds" `Quick test_chaos_invariant_holds;
          Alcotest.test_case "deterministic across domains" `Quick
            test_chaos_deterministic_across_domains;
        ] );
    ]
