(* Tests for the workload generators and the statistics/table helpers that
   back the experiment harness. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Setgen ---------- *)

let rng seed = Prng.Rng.of_int seed

let test_random_set () =
  let s = Workload.Setgen.random_set (rng 1) ~universe:1000 ~size:100 in
  check "size" 100 (Array.length s);
  check_bool "sorted set" true (Workload.Setgen.is_sorted_set s);
  Array.iter (fun x -> if x < 0 || x >= 1000 then Alcotest.failf "out of universe: %d" x) s

let test_random_set_full_universe () =
  let s = Workload.Setgen.random_set (rng 2) ~universe:50 ~size:50 in
  Alcotest.(check (array int)) "everything" (Array.init 50 Fun.id) s

let test_random_set_empty () =
  check "empty" 0 (Array.length (Workload.Setgen.random_set (rng 3) ~universe:10 ~size:0))

let test_pair_with_overlap () =
  for seed = 1 to 50 do
    let pair =
      Workload.Setgen.pair_with_overlap (rng seed) ~universe:10000 ~size_s:80 ~size_t:50
        ~overlap:20
    in
    check "|S|" 80 (Array.length pair.Workload.Setgen.s);
    check "|T|" 50 (Array.length pair.Workload.Setgen.t);
    check "overlap" 20
      (Array.length (Workload.Setgen.intersect pair.Workload.Setgen.s pair.Workload.Setgen.t))
  done

let test_pair_with_overlap_extremes () =
  let pair = Workload.Setgen.pair_with_overlap (rng 4) ~universe:100 ~size_s:10 ~size_t:10 ~overlap:0 in
  check "disjoint" 0 (Array.length (Workload.Setgen.intersect pair.Workload.Setgen.s pair.Workload.Setgen.t));
  let pair = Workload.Setgen.pair_with_overlap (rng 5) ~universe:100 ~size_s:10 ~size_t:10 ~overlap:10 in
  Alcotest.(check (array int)) "identical" pair.Workload.Setgen.s pair.Workload.Setgen.t

let test_pair_with_overlap_validation () =
  Alcotest.check_raises "overlap too big"
    (Invalid_argument "Setgen.pair_with_overlap: overlap") (fun () ->
      ignore (Workload.Setgen.pair_with_overlap (rng 1) ~universe:100 ~size_s:5 ~size_t:5 ~overlap:6));
  Alcotest.check_raises "universe too small"
    (Invalid_argument "Setgen.pair_with_overlap: universe too small") (fun () ->
      ignore (Workload.Setgen.pair_with_overlap (rng 1) ~universe:10 ~size_s:8 ~size_t:8 ~overlap:1))

let test_zipf_pair () =
  let pair = Workload.Setgen.zipf_pair (rng 6) ~universe:10000 ~size:200 ~exponent:1.1 in
  check "|S|" 200 (Array.length pair.Workload.Setgen.s);
  check "|T|" 200 (Array.length pair.Workload.Setgen.t);
  check_bool "sorted" true (Workload.Setgen.is_sorted_set pair.Workload.Setgen.s);
  (* skew: the head of the distribution is shared, so overlap is large *)
  let overlap = Array.length (Workload.Setgen.intersect pair.Workload.Setgen.s pair.Workload.Setgen.t) in
  check_bool (Printf.sprintf "natural overlap (%d)" overlap) true (overlap > 30)

let test_zipf_skew_increases_overlap () =
  let overlap_at exponent =
    let pair = Workload.Setgen.zipf_pair (rng 7) ~universe:10000 ~size:200 ~exponent in
    Array.length (Workload.Setgen.intersect pair.Workload.Setgen.s pair.Workload.Setgen.t)
  in
  check_bool "more skew, more overlap" true (overlap_at 1.5 > overlap_at 0.5)

let test_family_with_core () =
  let sets = Workload.Setgen.family_with_core (rng 8) ~universe:100000 ~players:5 ~size:30 ~core:7 in
  check "players" 5 (Array.length sets);
  Array.iter (fun set -> check "size" 30 (Array.length set)) sets;
  let intersection = Iset.inter_many (Array.to_list sets) in
  check "core exact" 7 (Array.length intersection)

let prop_pair_overlap_exact =
  QCheck.Test.make ~name:"pair overlap always exact" ~count:100
    QCheck.(triple small_signed_int (int_range 0 30) (int_range 0 30))
    (fun (seed, a, b) ->
      let overlap = min a b in
      let pair =
        Workload.Setgen.pair_with_overlap (rng seed) ~universe:10000 ~size_s:a ~size_t:b ~overlap
      in
      Array.length (Workload.Setgen.intersect pair.Workload.Setgen.s pair.Workload.Setgen.t)
      = overlap)

(* ---------- Iset (partition, many-way ops) ---------- *)

let test_iset_partition_by () =
  let bins = Iset.partition_by (fun x -> x mod 3) ~bins:3 [| 0; 1; 2; 3; 4; 5; 6 |] in
  Alcotest.(check (array int)) "bin 0" [| 0; 3; 6 |] bins.(0);
  Alcotest.(check (array int)) "bin 1" [| 1; 4 |] bins.(1);
  Alcotest.(check (array int)) "bin 2" [| 2; 5 |] bins.(2)

let test_iset_inter_many () =
  let result = Iset.inter_many [ [| 1; 2; 3; 4 |]; [| 2; 3; 4; 5 |]; [| 0; 3; 4 |] ] in
  Alcotest.(check (array int)) "inter" [| 3; 4 |] result

let iset_gen =
  QCheck.Gen.(list_size (int_bound 60) (int_bound 500) >|= Iset.of_list)

let iset_arb = QCheck.make ~print:(fun a -> QCheck.Print.(array int) a) iset_gen

let prop_iset_algebra =
  QCheck.Test.make ~name:"set algebra laws (de Morgan on finite sets)" ~count:300
    QCheck.(pair iset_arb iset_arb)
    (fun (a, b) ->
      let open Iset in
      is_valid (union a b) && is_valid (inter a b) && is_valid (diff a b)
      && equal (union a b) (union b a)
      && equal (inter a b) (inter b a)
      && cardinal (union a b) + cardinal (inter a b) = cardinal a + cardinal b
      && equal (diff a b) (diff (union a b) b)
      && equal (union (inter a b) (union (diff a b) (diff b a))) (union a b)
      && subset (inter a b) a
      && subset a (union a b))

let prop_iset_mem_consistent =
  QCheck.Test.make ~name:"mem agrees with linear search" ~count:300
    QCheck.(pair iset_arb (int_bound 500))
    (fun (a, x) -> Iset.mem a x = Array.exists (fun y -> y = x) a)

let test_iset_mem () =
  let s = [| 1; 5; 9; 22; 100 |] in
  check_bool "present" true (Iset.mem s 9);
  check_bool "absent" false (Iset.mem s 10);
  check_bool "first" true (Iset.mem s 1);
  check_bool "last" true (Iset.mem s 100);
  check_bool "empty" false (Iset.mem [||] 1)

(* ---------- Summary ---------- *)

let test_summary_basic () =
  let s = Stats.Summary.of_ints [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Stats.Summary.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.Summary.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Stats.Summary.max;
  Alcotest.(check (float 1e-9)) "p50" 3.0 s.Stats.Summary.p50;
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) s.Stats.Summary.stddev

let test_summary_single () =
  let s = Stats.Summary.of_ints [ 42 ] in
  Alcotest.(check (float 1e-9)) "mean" 42.0 s.Stats.Summary.mean;
  Alcotest.(check (float 1e-9)) "stddev" 0.0 s.Stats.Summary.stddev;
  Alcotest.(check (float 1e-9)) "ci" 0.0 (Stats.Summary.ci95 s)

let test_summary_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_floats: empty") (fun () ->
      ignore (Stats.Summary.of_floats []))

(* ---------- Binomial (Wilson bounds) ---------- *)

let in_unit_interval (lo, hi) = 0.0 <= lo && lo <= hi && hi <= 1.0

(* Zero failures: the lower bound must be exactly 0 (the sweep gates on
   lower95 <= limit, so a spurious positive lower bound would fail
   every clean cell) and the upper bound must shrink with n. *)
let test_wilson_zero_failures () =
  List.iter
    (fun trials ->
      let lo, hi = Stats.Binomial.wilson ~failures:0 ~trials ~z:1.96 in
      check_bool (Printf.sprintf "n=%d in [0,1]" trials) true (in_unit_interval (lo, hi));
      Alcotest.(check (float 0.0)) (Printf.sprintf "n=%d lower = 0" trials) 0.0 lo;
      check_bool (Printf.sprintf "n=%d upper > 0" trials) true (hi > 0.0))
    [ 1; 2; 120; 65_000; 1_000_000 ];
  let _, hi_small = Stats.Binomial.wilson ~failures:0 ~trials:100 ~z:1.96 in
  let _, hi_big = Stats.Binomial.wilson ~failures:0 ~trials:1_000_000 ~z:1.96 in
  check_bool "upper shrinks with n" true (hi_big < hi_small)

(* All failures: symmetric — upper pinned at 1, lower approaches 1. *)
let test_wilson_all_failures () =
  List.iter
    (fun trials ->
      let lo, hi = Stats.Binomial.wilson ~failures:trials ~trials ~z:1.96 in
      check_bool (Printf.sprintf "n=%d in [0,1]" trials) true (in_unit_interval (lo, hi));
      Alcotest.(check (float 0.0)) (Printf.sprintf "n=%d upper = 1" trials) 1.0 hi;
      check_bool (Printf.sprintf "n=%d lower < 1" trials) true (lo < 1.0))
    [ 1; 2; 120; 65_000 ];
  let lo, _ = Stats.Binomial.wilson ~failures:1_000_000 ~trials:1_000_000 ~z:1.96 in
  check_bool "lower -> 1 at huge n" true (lo > 0.999)

(* n = 1: a single trial carries almost no evidence either way — both
   intervals must stay wide and ordered. *)
let test_wilson_single_trial () =
  let lo0, hi0 = Stats.Binomial.wilson ~failures:0 ~trials:1 ~z:1.96 in
  let lo1, hi1 = Stats.Binomial.wilson ~failures:1 ~trials:1 ~z:1.96 in
  check_bool "0/1 ordered" true (in_unit_interval (lo0, hi0));
  check_bool "1/1 ordered" true (in_unit_interval (lo1, hi1));
  check_bool "0/1 inconclusive" true (hi0 > 0.5);
  check_bool "1/1 inconclusive" true (lo1 < 0.5)

(* Huge n: the interval must concentrate around the observed rate and
   bracket it — the 10^6-trial regime the mega-sweep gates in. *)
let test_wilson_huge_n () =
  let trials = 1_000_000 in
  let failures = 250 in
  let rate = float_of_int failures /. float_of_int trials in
  let lo, hi = Stats.Binomial.wilson ~failures ~trials ~z:1.96 in
  check_bool "brackets rate" true (lo < rate && rate < hi);
  check_bool "tight at 10^6" true (hi -. lo < 1e-4);
  (* one failure in a million: lower bound ~0, upper a few-in-a-million *)
  let lo1, hi1 = Stats.Binomial.wilson ~failures:1 ~trials ~z:1.96 in
  check_bool "1/10^6 lower ~ 0" true (lo1 < 1e-6);
  check_bool "1/10^6 upper small" true (hi1 < 1e-5)

let test_wilson_rejects_bad_args () =
  Alcotest.check_raises "trials=0" (Invalid_argument "Binomial.wilson: trials") (fun () ->
      ignore (Stats.Binomial.wilson ~failures:0 ~trials:0 ~z:1.96));
  Alcotest.check_raises "failures>n" (Invalid_argument "Binomial.wilson: failures") (fun () ->
      ignore (Stats.Binomial.wilson ~failures:2 ~trials:1 ~z:1.96));
  Alcotest.check_raises "z<=0" (Invalid_argument "Binomial.wilson: z") (fun () ->
      ignore (Stats.Binomial.wilson ~failures:0 ~trials:1 ~z:0.0))

(* ---------- Table ---------- *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  loop 0

let test_table_render () =
  let t = Stats.Table.create ~title:"T" ~columns:[ "a"; "bee" ] in
  Stats.Table.add_row t [ "1"; "2" ];
  Stats.Table.add_row t [ "100"; "x" ];
  let out = Stats.Table.render t in
  check_bool "has title" true (String.length out > 0 && out.[0] = 'T');
  check_bool "contains header" true (contains out "bee");
  check_bool "contains row" true (contains out "100");
  check_bool "rows in order" true (contains out "| 1   | 2   |")

let test_table_arity () =
  let t = Stats.Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
      Stats.Table.add_row t [ "1" ])

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "workload-stats"
    [
      ( "setgen",
        [
          Alcotest.test_case "random set" `Quick test_random_set;
          Alcotest.test_case "full universe" `Quick test_random_set_full_universe;
          Alcotest.test_case "empty" `Quick test_random_set_empty;
          Alcotest.test_case "pair with overlap" `Quick test_pair_with_overlap;
          Alcotest.test_case "overlap extremes" `Quick test_pair_with_overlap_extremes;
          Alcotest.test_case "validation" `Quick test_pair_with_overlap_validation;
          Alcotest.test_case "zipf" `Quick test_zipf_pair;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew_increases_overlap;
          Alcotest.test_case "family with core" `Quick test_family_with_core;
          qt prop_pair_overlap_exact;
        ] );
      ( "iset",
        [
          Alcotest.test_case "partition_by" `Quick test_iset_partition_by;
          Alcotest.test_case "inter_many" `Quick test_iset_inter_many;
          Alcotest.test_case "mem" `Quick test_iset_mem;
          qt prop_iset_algebra;
          qt prop_iset_mem_consistent;
        ] );
      ( "summary",
        [
          Alcotest.test_case "basic" `Quick test_summary_basic;
          Alcotest.test_case "single" `Quick test_summary_single;
          Alcotest.test_case "empty rejected" `Quick test_summary_empty_rejected;
        ] );
      ( "binomial",
        [
          Alcotest.test_case "wilson zero failures" `Quick test_wilson_zero_failures;
          Alcotest.test_case "wilson all failures" `Quick test_wilson_all_failures;
          Alcotest.test_case "wilson single trial" `Quick test_wilson_single_trial;
          Alcotest.test_case "wilson huge n" `Quick test_wilson_huge_n;
          Alcotest.test_case "wilson rejects bad args" `Quick test_wilson_rejects_bad_args;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
        ] );
    ]
