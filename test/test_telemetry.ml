(* Fleet telemetry: the quantile sketch's bucket scheme and merge laws
   (byte-identical JSON under any merge grouping — the property the
   Engine.Merge reduction tree relies on), the flight recorder's ring
   bound and disabled fast path, histogram quantiles, snapshot rate
   arithmetic, SLO evaluation, and the end-to-end guarantee that a chaos
   campaign's telemetry stream is byte-identical across domain counts. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* A tiny deterministic value source (no ambient randomness in tests —
   lint R1 holds here too). *)
let lcg_values ~seed ~n ~bound =
  let x = ref seed in
  List.init n (fun _ ->
      x := ((!x * 1103515245) + 12345) land 0x3FFFFFFF;
      !x mod bound)

let sketch_of_values values =
  let s = Obsv.Sketch.create () in
  List.iter (Obsv.Sketch.observe s) values;
  s

let sketch_json s = Stats.Json.to_string (Obsv.Sketch.to_json s)

(* --- sketch: bucket scheme -------------------------------------------- *)

let test_sketch_unit_buckets () =
  for v = 0 to 15 do
    check "unit bucket" v (Obsv.Sketch.bucket_of v);
    check "unit upper" v (Obsv.Sketch.bucket_upper v)
  done

let test_sketch_bucket_monotone () =
  (* bucket_of is monotone and bucket_upper inverts it on a spread of
     values across several octaves. *)
  let values = [ 16; 17; 31; 32; 100; 1000; 4096; 65535; 1_000_000; max_int / 2 ] in
  List.iter
    (fun v ->
      let b = Obsv.Sketch.bucket_of v in
      check_bool "index in range" true (b >= 0 && b < Obsv.Sketch.bucket_count);
      check_bool "upper bounds the value" true (Obsv.Sketch.bucket_upper b >= v);
      check "upper maps to its own bucket" b (Obsv.Sketch.bucket_of (Obsv.Sketch.bucket_upper b)))
    values;
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        check_bool "monotone" true (Obsv.Sketch.bucket_of a <= Obsv.Sketch.bucket_of b);
        pairs rest
    | _ -> ()
  in
  pairs values

let test_sketch_relative_error () =
  (* The log-linear scheme bounds any reported quantile's overshoot by
     one sub-bucket: upper/v <= 1 + 1/16 for v >= 16. *)
  List.iter
    (fun v ->
      let upper = Obsv.Sketch.bucket_upper (Obsv.Sketch.bucket_of v) in
      check_bool "within 1/16 relative error" true (upper - v <= v / 16))
    [ 16; 100; 1000; 12345; 1_000_000 ]

let test_sketch_known_quantiles () =
  let s = sketch_of_values (List.init 100 (fun i -> i + 1)) in
  check "count" 100 (Obsv.Sketch.count s);
  check "sum" 5050 (Obsv.Sketch.sum s);
  Alcotest.(check (option int)) "min" (Some 1) (Obsv.Sketch.min_value s);
  Alcotest.(check (option int)) "max" (Some 100) (Obsv.Sketch.max_value s);
  let p50 = Obsv.Sketch.p50 s in
  check_bool "p50 in [50, 53]" true (p50 >= 50 && p50 <= 53);
  check "p999 clamps to the observed max" 100 (Obsv.Sketch.p999 s);
  check "empty sketch quantile" 0 (Obsv.Sketch.p99 (Obsv.Sketch.create ()))

(* --- sketch: merge laws ----------------------------------------------- *)

let test_sketch_merge_commutes () =
  let a () = sketch_of_values (lcg_values ~seed:7 ~n:500 ~bound:100_000) in
  let b () = sketch_of_values (lcg_values ~seed:11 ~n:300 ~bound:1_000_000) in
  let ab = a () in
  Obsv.Sketch.merge_into ~into:ab (b ());
  let ba = b () in
  Obsv.Sketch.merge_into ~into:ba (a ());
  check_str "A+B = B+A, byte for byte" (sketch_json ab) (sketch_json ba)

let test_sketch_merge_grouping_free () =
  (* Any split of the population, merged in any grouping, must export the
     same JSON as observing everything in one sketch — the domain-count
     independence the engine's merge tree needs. *)
  let all = lcg_values ~seed:42 ~n:900 ~bound:250_000 in
  let bulk = sketch_json (sketch_of_values all) in
  let chunk i = List.filteri (fun j _ -> j mod 3 = i) all in
  let s0 = sketch_of_values (chunk 0) in
  let s1 = sketch_of_values (chunk 1) in
  let s2 = sketch_of_values (chunk 2) in
  (* (s0 + s1) + s2 *)
  let left = sketch_of_values (chunk 0) in
  Obsv.Sketch.merge_into ~into:left s1;
  Obsv.Sketch.merge_into ~into:left s2;
  (* s0 + (s1 + s2) *)
  let right = sketch_of_values (chunk 1) in
  Obsv.Sketch.merge_into ~into:right s2;
  Obsv.Sketch.merge_into ~into:right s0;
  check_str "left grouping = bulk" bulk (sketch_json left);
  check_str "right grouping = bulk" bulk (sketch_json right)

let test_registry_merges_sketches () =
  let r1 = Obsv.Metrics.create () in
  let r2 = Obsv.Metrics.create () in
  Obsv.Metrics.with_registry r1 (fun () ->
      List.iter (Obsv.Metrics.record "fleet/spent_bits") [ 10; 20; 30 ]);
  Obsv.Metrics.with_registry r2 (fun () ->
      List.iter (Obsv.Metrics.record "fleet/spent_bits") [ 40; 50 ]);
  Obsv.Metrics.merge_into ~into:r1 r2;
  match Obsv.Metrics.sketch_of r1 "fleet/spent_bits" with
  | None -> Alcotest.fail "sketch lost in merge"
  | Some s ->
      check "merged count" 5 (Obsv.Sketch.count s);
      check "merged sum" 150 (Obsv.Sketch.sum s)

(* --- flight recorder --------------------------------------------------- *)

let test_recorder_wraparound () =
  let r = Obsv.Recorder.create ~capacity:8 () in
  Obsv.Recorder.with_recorder r (fun () ->
      for i = 1 to 20 do
        Obsv.Recorder.event ~kind:"tick" (string_of_int i)
      done);
  check "recorded counts every offer" 20 (Obsv.Recorder.recorded r);
  check "retained is the ring bound" 8 (Obsv.Recorder.retained r);
  check "dropped is the difference" 12 (Obsv.Recorder.dropped r);
  check "capacity" 8 (Obsv.Recorder.capacity r);
  let evs = Obsv.Recorder.events r in
  check "window size" 8 (List.length evs);
  check "oldest surviving seq" 12 (List.hd evs).Obsv.Recorder.seq;
  check_str "oldest surviving detail" "13" (List.hd evs).Obsv.Recorder.detail;
  check "newest seq" 19 (List.nth evs 7).Obsv.Recorder.seq

let test_recorder_disabled_is_noop () =
  check_bool "ambient default is disabled" false (Obsv.Recorder.active ());
  (* Writes outside any with_recorder scope vanish... *)
  Obsv.Recorder.event ~kind:"lost" "nobody listening";
  check "disabled retains nothing" 0 (Obsv.Recorder.retained Obsv.Recorder.disabled);
  check "disabled records nothing" 0 (Obsv.Recorder.recorded Obsv.Recorder.disabled);
  (* ... and the guarded-write pattern costs no allocation when off. *)
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    if Obsv.Recorder.active () then Obsv.Recorder.event ~kind:"hot" "never formatted"
  done;
  let allocated = Gc.minor_words () -. before in
  check_bool "guarded disabled path allocates nothing" true (allocated < 256.0)

let test_recorder_scoping () =
  let r = Obsv.Recorder.create () in
  Obsv.Recorder.with_recorder r (fun () ->
      check_bool "active inside the scope" true (Obsv.Recorder.active ());
      Obsv.Recorder.event ~attrs:[ ("rung", "base") ] ~kind:"attempt" "attempt 1");
  check_bool "inactive outside again" false (Obsv.Recorder.active ());
  check "the scoped event landed" 1 (Obsv.Recorder.retained r);
  let ev = List.hd (Obsv.Recorder.events r) in
  check_str "kind" "attempt" ev.Obsv.Recorder.kind;
  check_str "attr" "base" (List.assoc "rung" ev.Obsv.Recorder.attrs)

let test_recorder_post_mortem_shape () =
  let r = Obsv.Recorder.create ~capacity:4 () in
  Obsv.Recorder.with_recorder r (fun () ->
      Obsv.Recorder.event ~kind:"failure" "corrupted payload");
  let j = Obsv.Recorder.post_mortem_json ~outcome:"degraded" r in
  let member name = Stats.Json.member name j in
  check_bool "event marker" true (member "event" = Some (Stats.Json.Str "post-mortem"));
  check_bool "outcome carried" true (member "outcome" = Some (Stats.Json.Str "degraded"));
  check_bool "events listed" true
    (match Option.bind (member "events") Stats.Json.to_list_opt with
    | Some [ _ ] -> true
    | _ -> false)

(* --- histogram quantiles ----------------------------------------------- *)

let test_histogram_quantile () =
  let r = Obsv.Metrics.create () in
  Obsv.Metrics.with_registry r (fun () ->
      List.iter (Obsv.Metrics.observe "payload") [ 1; 2; 3; 100; 1000 ]);
  match Obsv.Metrics.histogram_of r "payload" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      (* rank 3 of 5 at p50 -> value 3, log2 bucket [2,3] upper 3. *)
      Alcotest.(check (option int)) "p50" (Some 3) (Obsv.Metrics.histogram_quantile h ~per_mille:500);
      (* p99 -> rank 5 -> 1000, bucket upper 1023 clamps to max 1000. *)
      Alcotest.(check (option int)) "p99 clamps to max" (Some 1000)
        (Obsv.Metrics.histogram_quantile h ~per_mille:990);
      Alcotest.(check (option int)) "empty histogram" None
        (Option.bind
           (Obsv.Metrics.histogram_of (Obsv.Metrics.create ()) "nope")
           (Obsv.Metrics.histogram_quantile ~per_mille:500))

(* --- snapshots and rates ----------------------------------------------- *)

let registry_with setup =
  let r = Obsv.Metrics.create () in
  Obsv.Metrics.with_registry r setup;
  r

let test_snapshot_rates () =
  let prev =
    Obsv.Snapshot.take ~seq:0 ~at:10
      (registry_with (fun () -> Obsv.Metrics.incr ~by:5 "fleet/sessions"))
  in
  let cur =
    Obsv.Snapshot.take ~seq:1 ~at:20
      (registry_with (fun () ->
           Obsv.Metrics.incr ~by:9 "fleet/sessions";
           Obsv.Metrics.incr ~by:3 "fleet/wrong"))
  in
  check "counter accessor" 9 (Obsv.Snapshot.counter cur "fleet/sessions");
  check "absent counter is 0" 0 (Obsv.Snapshot.counter cur "fleet/nope");
  check_str "integer rate arithmetic"
    {|{"event":"rates","seq":1,"at":20,"dt":10,"counters":{"fleet/sessions":{"delta":4,"per_1000":400},"fleet/wrong":{"delta":3,"per_1000":300}}}|}
    (Stats.Json.to_string (Obsv.Snapshot.rates_json ~prev cur))

(* --- health ------------------------------------------------------------ *)

let healthy_registry ?(wrong = 0) () =
  registry_with (fun () ->
      Obsv.Metrics.incr ~by:20 Obsv.Health.k_sessions;
      Obsv.Metrics.incr ~by:19 (Obsv.Health.k_outcome "completed");
      Obsv.Metrics.incr ~by:1 (Obsv.Health.k_outcome "degraded");
      if wrong > 0 then Obsv.Metrics.incr ~by:wrong Obsv.Health.k_wrong;
      List.iter (Obsv.Metrics.record Obsv.Health.k_spent_bits) [ 100; 200; 300 ];
      Obsv.Metrics.set_gauge Obsv.Health.k_deadline_bits 1000)

let verdict_of (h : Obsv.Health.report) slo =
  match List.find_opt (fun (v : Obsv.Health.verdict) -> v.Obsv.Health.slo = slo) h.Obsv.Health.verdicts with
  | Some v -> v
  | None -> Alcotest.fail ("missing verdict " ^ slo)

let test_health_evaluate () =
  let snap = Obsv.Snapshot.take ~seq:0 ~at:20 (healthy_registry ()) in
  let h = Obsv.Health.evaluate snap in
  check_bool "healthy fleet passes" true h.Obsv.Health.ok;
  check "sessions surface" 20 h.Obsv.Health.sessions;
  let degraded = verdict_of h "degraded-rate" in
  check "degraded measured in per-mille" 50 degraded.Obsv.Health.measured;
  let burn = verdict_of h "p99-budget-burn" in
  (* p99 spend 300 of a 1000-bit deadline = 300 per-mille. *)
  check "burn measured" 300 burn.Obsv.Health.measured

let test_health_wrong_is_fatal () =
  let snap = Obsv.Snapshot.take ~seq:0 ~at:20 (healthy_registry ~wrong:1 ()) in
  let h = Obsv.Health.evaluate snap in
  check_bool "one wrong answer fails the fleet" false h.Obsv.Health.ok;
  let wrong = verdict_of h "wrong-rate-zero" in
  check_bool "the wrong-rate verdict is the red one" false wrong.Obsv.Health.ok;
  check "limit is hard-wired to zero" 0 wrong.Obsv.Health.limit

let test_health_empty_fleet_fails () =
  let snap = Obsv.Snapshot.take ~seq:0 ~at:0 (Obsv.Metrics.create ()) in
  check_bool "empty fleet is not healthy" false (Obsv.Health.evaluate snap).Obsv.Health.ok

(* --- end to end: the stream is domain-count independent ---------------- *)

let tiny_chaos =
  {
    Workload.Chaos.smoke with
    Workload.Chaos.trials = 3;
    protocols = [ "trivial" ];
    campaigns =
      List.filter
        (fun (name, _) -> name = "corruption-storm" || name = "crash-resume")
        Workload.Chaos.campaign_catalogue;
  }

let stream_at domains =
  let sink = Workload.Telemetry.create_sink () in
  ignore (Workload.Chaos.run ~domains ~sink tiny_chaos);
  String.concat "\n" (Workload.Telemetry.jsonl sink)

let test_stream_domain_independent () =
  let d1 = stream_at 1 in
  check_bool "stream is non-trivial" true (String.length d1 > 200);
  check_str "domains 1 = domains 2" d1 (stream_at 2);
  check_str "domains 1 = domains 4" d1 (stream_at 4)

let () =
  Alcotest.run "telemetry"
    [
      ( "sketch buckets",
        [
          Alcotest.test_case "unit buckets exact" `Quick test_sketch_unit_buckets;
          Alcotest.test_case "monotone with inverse" `Quick test_sketch_bucket_monotone;
          Alcotest.test_case "1/16 relative error" `Quick test_sketch_relative_error;
          Alcotest.test_case "known quantiles" `Quick test_sketch_known_quantiles;
        ] );
      ( "sketch merge",
        [
          Alcotest.test_case "commutative" `Quick test_sketch_merge_commutes;
          Alcotest.test_case "grouping-free" `Quick test_sketch_merge_grouping_free;
          Alcotest.test_case "via registry merge" `Quick test_registry_merges_sketches;
        ] );
      ( "flight recorder",
        [
          Alcotest.test_case "ring wraparound" `Quick test_recorder_wraparound;
          Alcotest.test_case "disabled fast path" `Quick test_recorder_disabled_is_noop;
          Alcotest.test_case "ambient scoping" `Quick test_recorder_scoping;
          Alcotest.test_case "post-mortem shape" `Quick test_recorder_post_mortem_shape;
        ] );
      ( "histogram quantiles",
        [ Alcotest.test_case "log2-bucket quantiles" `Quick test_histogram_quantile ] );
      ( "snapshots",
        [ Alcotest.test_case "integer rates" `Quick test_snapshot_rates ] );
      ( "health",
        [
          Alcotest.test_case "healthy fleet" `Quick test_health_evaluate;
          Alcotest.test_case "wrong answer is fatal" `Quick test_health_wrong_is_fatal;
          Alcotest.test_case "empty fleet fails" `Quick test_health_empty_fleet_fails;
        ] );
      ( "stream determinism",
        [ Alcotest.test_case "domain-count independent" `Quick test_stream_domain_independent ]
      );
    ]
