(* Tests for the observability subsystem: span nesting and attribution,
   the disabled fast path, the metrics registry, deterministic exports,
   and the exact per-phase budget identity on a real protocol. *)

open Intersect
open Obsv

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let bits_of_int ~width v =
  let buf = Bitio.Bitbuf.create () in
  Bitio.Bitbuf.write_bits buf ~width v;
  Bitio.Bitbuf.contents buf

(* A two-player exchange with nested spans on the sender's side: three
   messages from Alice (8, 4 and 2 bits; the middle one inside an inner
   span) and one 3-bit reply from Bob. *)
let run_spanned () =
  let collector = Trace.create () in
  let _, cost, trace =
    Trace.with_collector collector (fun () ->
        Commsim.Network.run_traced
          [|
            (fun ep ->
              Trace.span "alice/outer" (fun () ->
                  Commsim.Network.send ep ~to_:1 (bits_of_int ~width:8 42);
                  Trace.span "alice/inner" ~attrs:[ ("step", "2") ] (fun () ->
                      Commsim.Network.send ep ~to_:1 (bits_of_int ~width:4 7));
                  Commsim.Network.send ep ~to_:1 (bits_of_int ~width:2 1));
              ignore (Commsim.Network.recv ep ~from_:1));
            (fun ep ->
              ignore (Commsim.Network.recv ep ~from_:0);
              ignore (Commsim.Network.recv ep ~from_:0);
              ignore (Commsim.Network.recv ep ~from_:0);
              Trace.span "bob/reply" (fun () ->
                  Commsim.Network.send ep ~to_:0 (bits_of_int ~width:3 5)));
          |])
  in
  (collector, cost, trace)

let span_named collector name =
  match List.find_opt (fun (s : Trace.span) -> s.Trace.name = name) (Trace.spans collector) with
  | Some s -> s
  | None -> Alcotest.failf "span %s not recorded" name

let test_span_nesting () =
  let collector, _, _ = run_spanned () in
  check "three spans" 3 (List.length (Trace.spans collector));
  let outer = span_named collector "alice/outer" in
  let inner = span_named collector "alice/inner" in
  let reply = span_named collector "bob/reply" in
  check_bool "outer has no parent" true (outer.Trace.parent = None);
  check_bool "inner nests under outer" true (inner.Trace.parent = Some outer.Trace.id);
  check_bool "reply has no parent" true (reply.Trace.parent = None);
  check_bool "outer belongs to player 0" true (outer.Trace.rank = Some 0);
  check_bool "reply belongs to player 1" true (reply.Trace.rank = Some 1);
  check_bool "spans are closed" true
    (List.for_all (fun (s : Trace.span) -> s.Trace.end_seq >= 0) (Trace.spans collector));
  check_bool "inner keeps its attrs" true (inner.Trace.attrs = [ ("step", "2") ])

let test_message_attribution () =
  let collector, cost, trace = run_spanned () in
  let outer = span_named collector "alice/outer" in
  let inner = span_named collector "alice/inner" in
  let reply = span_named collector "bob/reply" in
  (* The innermost open span of the sender wins; bits accumulate where
     they were attributed, never twice. *)
  check "outer gets the 8-bit and 2-bit sends" 10 outer.Trace.bits;
  check "inner gets the 4-bit send" 4 inner.Trace.bits;
  check "reply gets the 3-bit send" 3 reply.Trace.bits;
  check "messages recorded" 4 (List.length (Trace.messages collector));
  (* The network trace carries the same attribution. *)
  let span_ids = List.map (fun e -> e.Commsim.Network.span) trace in
  check_bool "trace entries carry span ids" true
    (span_ids
    = [ Some outer.Trace.id; Some inner.Trace.id; Some outer.Trace.id; Some reply.Trace.id ]);
  (* The per-phase ledger covers the metered total exactly. *)
  check "phase bits sum to total" cost.Commsim.Cost.total_bits
    (Export.total_phase_bits collector);
  let by_phase =
    List.map (fun (p : Export.phase) -> (p.Export.phase, p.Export.bits)) (Export.phases collector)
  in
  check_bool "ledger rows" true
    (by_phase = [ ("alice/outer", 10); ("alice/inner", 4); ("bob/reply", 3) ])

let test_unattributed_messages () =
  let collector = Trace.create () in
  let _, cost, _ =
    Trace.with_collector collector (fun () ->
        Commsim.Network.run_traced
          [|
            (fun ep -> Commsim.Network.send ep ~to_:1 (bits_of_int ~width:6 33));
            (fun ep -> ignore (Commsim.Network.recv ep ~from_:0));
          |])
  in
  match Export.phases collector with
  | [ p ] ->
      check_str "phase name" Export.unattributed p.Export.phase;
      check "bits" cost.Commsim.Cost.total_bits p.Export.bits
  | phases -> Alcotest.failf "expected one phase, got %d" (List.length phases)

(* ---------- Disabled fast path ---------- *)

let test_disabled_is_ambient_default () =
  check_bool "ambient collector is the disabled one" true (Trace.current () == Trace.disabled);
  check_bool "ambient registry is the disabled one" true
    (Metrics.current () == Metrics.disabled);
  let r = Trace.span "ignored" (fun () -> 17) in
  check "span still runs its body" 17 r;
  check "nothing recorded" 0 (List.length (Trace.spans Trace.disabled));
  Metrics.incr "ignored";
  Metrics.observe "ignored" 5;
  check "metrics drop writes when disabled" 0 (Metrics.counter_value Metrics.disabled "ignored")

let test_disabled_span_allocates_nothing () =
  let body () = () in
  for _ = 1 to 100 do
    Trace.span "warmup" body
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 1000 do
    Trace.span "hot" body
  done;
  let w1 = Gc.minor_words () in
  (* One load and one branch per call: allow a little slack for the
     Gc.minor_words probes themselves, nothing per-iteration. *)
  check_bool "under 100 minor words for 1000 disabled spans" true (w1 -. w0 < 100.0)

let run_bucket ~collect seed =
  let universe = 1 lsl 20 in
  let body () =
    let rng = Prng.Rng.of_int seed in
    let pair =
      Workload.Setgen.pair_with_overlap
        (Prng.Rng.with_label rng "workload")
        ~universe ~size_s:64 ~size_t:64 ~overlap:32
    in
    let protocol = Bucket_protocol.protocol ~k:64 () in
    (protocol.Protocol.run (Prng.Rng.with_label rng "run") ~universe pair.Workload.Setgen.s
       pair.Workload.Setgen.t)
      .Protocol.cost
  in
  if collect then begin
    let c = Trace.create () in
    let r = Metrics.create () in
    let cost = Trace.with_collector c (fun () -> Metrics.with_registry r body) in
    (Some (c, r), cost)
  end
  else (None, body ())

let test_tracing_does_not_perturb_cost () =
  let _, cost_plain = run_bucket ~collect:false 11 in
  let _, cost_traced = run_bucket ~collect:true 11 in
  check_bool "Cost.t identical with and without tracing" true (cost_plain = cost_traced)

let test_bucket_phase_identity () =
  let collected, cost = run_bucket ~collect:true 11 in
  let c, _ = Option.get collected in
  check "per-phase bits sum exactly to Cost.total_bits" cost.Commsim.Cost.total_bits
    (Export.total_phase_bits c);
  let messages = List.fold_left (fun n (p : Export.phase) -> n + p.Export.messages) 0 (Export.phases c) in
  check "per-phase messages sum exactly to Cost.messages" cost.Commsim.Cost.messages messages

let test_deterministic_exports () =
  let collected1, _ = run_bucket ~collect:true 11 in
  let collected2, _ = run_bucket ~collect:true 11 in
  let c1, r1 = Option.get collected1 in
  let c2, r2 = Option.get collected2 in
  check_str "chrome traces byte-identical"
    (Stats.Json.to_string (Export.chrome_trace c1))
    (Stats.Json.to_string (Export.chrome_trace c2));
  check_str "jsonl byte-identical"
    (String.concat "\n" (Export.jsonl c1))
    (String.concat "\n" (Export.jsonl c2));
  check_str "metrics byte-identical"
    (Stats.Json.to_string (Metrics.to_json r1))
    (Stats.Json.to_string (Metrics.to_json r2))

(* ---------- Metrics registry ---------- *)

let test_metrics_readback () =
  let r = Metrics.create () in
  Metrics.with_registry r (fun () ->
      Metrics.incr "c";
      Metrics.incr ~by:4 "c";
      Metrics.set_gauge "g" 7;
      Metrics.set_gauge "g" 9;
      List.iter (Metrics.observe "h") [ 0; 1; 2; 3; 8; 1000 ]);
  check "counter accumulates" 5 (Metrics.counter_value r "c");
  check "absent counter reads zero" 0 (Metrics.counter_value r "absent");
  check_bool "gauge keeps the latest value" true (Metrics.gauge_value r "g" = Some 9);
  check_bool "absent gauge is None" true (Metrics.gauge_value r "absent" = None);
  match Metrics.histogram_of r "h" with
  | None -> Alcotest.fail "histogram not recorded"
  | Some h ->
      check "count" 6 h.Metrics.count;
      check "sum" 1014 h.Metrics.sum;
      check "min" 0 h.Metrics.min_v;
      check "max" 1000 h.Metrics.max_v;
      (* Log2 buckets: 0 -> "0"; 1 -> [1,2); 2,3 -> [2,4); 8 -> [8,16);
         1000 -> [512,1024). *)
      check "bucket 0" 1 h.Metrics.buckets.(0);
      check "bucket [1,2)" 1 h.Metrics.buckets.(1);
      check "bucket [2,4)" 2 h.Metrics.buckets.(2);
      check "bucket [8,16)" 1 h.Metrics.buckets.(4);
      check "bucket [512,1024)" 1 h.Metrics.buckets.(10)

let () =
  Alcotest.run "obsv"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and ownership" `Quick test_span_nesting;
          Alcotest.test_case "innermost-span attribution" `Quick test_message_attribution;
          Alcotest.test_case "unattributed bucket" `Quick test_unattributed_messages;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "ambient default is a no-op" `Quick test_disabled_is_ambient_default;
          Alcotest.test_case "span fast path allocates nothing" `Quick
            test_disabled_span_allocates_nothing;
          Alcotest.test_case "cost unperturbed by tracing" `Quick
            test_tracing_does_not_perturb_cost;
        ] );
      ( "exports",
        [
          Alcotest.test_case "bucket phase identity" `Quick test_bucket_phase_identity;
          Alcotest.test_case "byte-identical under a fixed seed" `Quick
            test_deterministic_exports;
        ] );
      ("metrics", [ Alcotest.test_case "readbacks" `Quick test_metrics_readback ]);
    ]
