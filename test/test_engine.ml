(* The Domain-parallel trial engine: schedule-independence of Pool.map,
   seed-stream compatibility with the legacy soak derivation, merge
   algebra, and protocol exactness across the adversarial shape
   catalogue. *)

open Intersect

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Pool ------------------------------------------------------------ *)

let test_pool_matches_sequential () =
  List.iter
    (fun (domains, trials) ->
      let f i = (i * 7919) lxor (i lsl 3) in
      let sequential = Array.init trials f in
      let parallel = Engine.Pool.map ~domains ~trials f in
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d trials=%d" domains trials)
        sequential parallel)
    [ (1, 100); (2, 100); (4, 100); (3, 101); (4, 3); (8, 1); (2, 0) ]

let test_pool_propagates_exceptions () =
  List.iter
    (fun domains ->
      let f i = if i = 33 then failwith "boom" else i in
      Alcotest.check_raises
        (Printf.sprintf "domains=%d" domains)
        (Failure "boom")
        (fun () -> ignore (Engine.Pool.map ~domains ~trials:50 f)))
    [ 1; 4 ]

let test_pool_run_folds_in_order () =
  let concat = Engine.Pool.run ~domains:4 ~trials:20 string_of_int ~init:"" ~merge:( ^ ) in
  Alcotest.(check string)
    "fold order" (String.concat "" (List.init 20 string_of_int)) concat

let test_pool_rejects_bad_args () =
  Alcotest.check_raises "domains=0" (Invalid_argument "Engine.Pool.map: domains < 1") (fun () ->
      ignore (Engine.Pool.map ~domains:0 ~trials:1 Fun.id));
  Alcotest.check_raises "trials<0" (Invalid_argument "Engine.Pool.map: trials < 0") (fun () ->
      ignore (Engine.Pool.map ~domains:1 ~trials:(-1) Fun.id))

(* Pool.fold with an exact-arithmetic accumulator must agree with the
   sequential fold at every domain count — chunk geometry varies with
   the worker count, so this exercises the merge-associativity contract
   the mega-sweep rides on. *)
let test_pool_fold_matches_sequential () =
  let step (sum, mx) i =
    let v = (i * 7919) lxor (i lsl 3) in
    (sum + v, max mx v)
  in
  List.iter
    (fun (domains, trials) ->
      let expected = ref (0, min_int) in
      for i = 0 to trials - 1 do
        expected := step !expected i
      done;
      let folded =
        Engine.Pool.fold ~domains ~trials
          ~init:(fun () -> (0, min_int))
          ~step
          ~merge:(fun (s1, m1) (s2, m2) -> (s1 + s2, max m1 m2))
          ()
      in
      Alcotest.(check (pair int int))
        (Printf.sprintf "domains=%d trials=%d" domains trials)
        !expected folded)
    [ (1, 100); (2, 100); (4, 100); (3, 101); (4, 3); (8, 1); (2, 0) ]

(* Sketch accumulators merge bucket-pointwise, so a fold that observes
   into per-chunk sketches must export byte-identical JSON at every
   domain count — the exact shape of the sweep's bits accumulator. *)
let test_pool_fold_sketch_deterministic () =
  let folded domains =
    Engine.Pool.fold ~domains ~trials:500
      ~init:(fun () -> Obsv.Sketch.create ())
      ~step:(fun sk i ->
        Obsv.Sketch.observe sk ((i * 37) land 1023);
        sk)
      ~merge:(fun a b ->
        Obsv.Sketch.merge_into ~into:a b;
        a)
      ()
  in
  let json d = Stats.Json.to_string (Obsv.Sketch.to_json (folded d)) in
  let reference = json 1 in
  List.iter
    (fun d -> Alcotest.(check string) (Printf.sprintf "domains=%d" d) reference (json d))
    [ 2; 3; 4 ]

let test_pool_fold_propagates_exceptions () =
  Alcotest.check_raises "fold raises" (Failure "boom") (fun () ->
      ignore
        (Engine.Pool.fold ~domains:4 ~trials:50
           ~init:(fun () -> 0)
           ~step:(fun acc i -> if i = 33 then failwith "boom" else acc + i)
           ~merge:( + ) ()))

(* --- Instance cache --------------------------------------------------- *)

let test_instance_cache_memoizes () =
  let cache = Engine.Instance_cache.create () in
  let builds = ref 0 in
  let build () =
    incr builds;
    !builds * 100
  in
  check "first build" 100 (Engine.Instance_cache.find cache ~key:"bucket/k64" build);
  check "memoized" 100 (Engine.Instance_cache.find cache ~key:"bucket/k64" build);
  check "distinct key" 200 (Engine.Instance_cache.find cache ~key:"bucket/k128" build);
  check "builder called per key" 2 !builds

(* Each domain builds its own instance: a pure builder therefore yields
   identical trial results at any domain count, while the cache never
   shares a value across domains. *)
let test_instance_cache_per_domain () =
  let cache = Engine.Instance_cache.create () in
  let results =
    Engine.Pool.map ~domains:3 ~trials:12 (fun i ->
        i + Engine.Instance_cache.find cache ~key:"v" (fun () -> 1000))
  in
  Alcotest.(check (array int)) "pure builder, any domain" (Array.init 12 (fun i -> i + 1000)) results

(* --- Seed streams ---------------------------------------------------- *)

(* The engine derivation must match the historical soak seeding exactly:
   byte-identical soak reports depend on it. *)
let test_seed_stream_matches_legacy () =
  let stream = Engine.Seed_stream.create ~base:2014 ~label:"soak/tree/clean" in
  for i = 1 to 40 do
    let engine = Engine.Seed_stream.trial_rng stream i in
    let legacy =
      Prng.Rng.with_label (Prng.Rng.of_int 2014) (Printf.sprintf "soak/tree/clean/trial%d" i)
    in
    Alcotest.(check int64)
      (Printf.sprintf "trial %d" i)
      (Prng.Rng.int64 legacy) (Prng.Rng.int64 engine)
  done

let test_seed_stream_trials_independent () =
  let stream = Engine.Seed_stream.create ~base:7 ~label:"x" in
  let a = Prng.Rng.int64 (Engine.Seed_stream.trial_rng stream 1) in
  let b = Prng.Rng.int64 (Engine.Seed_stream.trial_rng stream 2) in
  check_bool "distinct streams" true (a <> b)

(* The allocation-free fragment derivation must agree with the
   historical sprintf formulation on every label shape the harnesses
   use — slash-separated cell coordinates with embedded decimal
   indices exercise Label.add_int's digit emission directly. *)
let test_seed_stream_matches_legacy_label_shapes () =
  List.iter
    (fun (base, label) ->
      let stream = Engine.Seed_stream.create ~base ~label in
      List.iter
        (fun i ->
          let engine = Engine.Seed_stream.trial_rng stream i in
          let legacy =
            Prng.Rng.with_label (Prng.Rng.of_int base) (Printf.sprintf "%s/trial%d" label i)
          in
          Alcotest.(check int64)
            (Printf.sprintf "%s trial %d" label i)
            (Prng.Rng.int64 legacy) (Prng.Rng.int64 engine))
        [ 1; 2; 9; 10; 11; 99; 100; 101; 12345; 1000000 ])
    [
      (2014, "conform/bucket/k256");
      (2014, "sweep/tree-r2/k64");
      (2014, "sweep/trivial/k24/flip-1e-3");
      (0, "");
      (42, "a");
      (7, "bench/scaling/alloc");
    ]

(* 10^5 (label, trial-index) derivations, no collisions: the FNV-1a /
   SplitMix64 pipeline must behave like a random function over the
   coordinates the sweep actually uses (distinct labels x 10^4 trial
   indices).  Collisions would silently correlate cells. *)
let test_seed_stream_no_collisions_100k () =
  let labels =
    [|
      "sweep/eq/k16"; "sweep/eq/k64"; "sweep/bucket/k16"; "sweep/bucket/k256";
      "sweep/tree-r2/k64"; "sweep/one-round/k256"; "sweep/trivial/k24/flip-1e-3";
      "sweep/bucket/k24/drop-2e-2"; "conform/eq/k16"; "soak/tree/clean";
    |]
  in
  let per_label = 10_000 in
  let seen = Hashtbl.create (2 * Array.length labels * per_label) in
  Array.iter
    (fun label ->
      let stream = Engine.Seed_stream.create ~base:2014 ~label in
      for i = 1 to per_label do
        let draw = Prng.Rng.int64 (Engine.Seed_stream.trial_rng stream i) in
        (match Hashtbl.find_opt seen draw with
        | Some (l, j) ->
            Alcotest.failf "collision: %s/trial%d = %s/trial%d (draw %Ld)" label i l j draw
        | None -> ());
        Hashtbl.replace seen draw (label, i)
      done)
    labels;
  check "derivations" (Array.length labels * per_label) (Hashtbl.length seen)

(* Derivation happens inside worker domains in production; the rng a
   trial receives must not depend on which domain derived it. *)
let test_seed_stream_stable_across_domains () =
  let stream = Engine.Seed_stream.create ~base:2014 ~label:"sweep/bucket/k64" in
  let draws domains =
    Engine.Pool.map ~domains ~trials:200 (fun i ->
        Prng.Rng.int64 (Engine.Seed_stream.trial_rng stream (i + 1)))
  in
  let reference = draws 1 in
  List.iter
    (fun d ->
      Alcotest.(check (array int64)) (Printf.sprintf "domains=%d" d) reference (draws d))
    [ 2; 4 ]

(* --- Merge algebra --------------------------------------------------- *)

let cost_of ~bits ~rounds =
  let c = Commsim.Cost.zero ~players:2 in
  { c with Commsim.Cost.total_bits = bits; messages = 1; rounds }

let test_merge_costs_associative_commutative () =
  let a = cost_of ~bits:3 ~rounds:1
  and b = cost_of ~bits:5 ~rounds:2
  and c = cost_of ~bits:7 ~rounds:4 in
  let total l = (Engine.Merge.costs ~players:2 l).Commsim.Cost.total_bits in
  check "assoc/comm bits" (total [ a; b; c ]) (total [ c; a; b ]);
  check "sum" 15 (total [ a; b; c ])

let test_merge_metrics () =
  let mk counter gauge =
    let r = Obsv.Metrics.create () in
    Obsv.Metrics.with_registry r (fun () ->
        Obsv.Metrics.incr ~by:counter "trials";
        Obsv.Metrics.set_gauge "depth" gauge;
        Obsv.Metrics.observe "payload" counter);
    r
  in
  let r1 = mk 3 10 and r2 = mk 4 2 in
  let merged = Engine.Merge.metrics [ r1; r2 ] in
  let merged' = Engine.Merge.metrics [ r2; r1 ] in
  Alcotest.(check string)
    "commutative"
    (Stats.Json.to_string (Obsv.Metrics.to_json merged))
    (Stats.Json.to_string (Obsv.Metrics.to_json merged'));
  check "counters add" 7 (Obsv.Metrics.counter_value merged "trials");
  Alcotest.(check (option int)) "gauges max" (Some 10) (Obsv.Metrics.gauge_value merged "depth");
  match Obsv.Metrics.histogram_of merged "payload" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      check "histogram count" 2 h.Obsv.Metrics.count;
      check "histogram sum" 7 h.Obsv.Metrics.sum

let test_merge_summaries_index_order () =
  let acc_of l = List.fold_left Stats.Summary.Acc.add Stats.Summary.Acc.empty l in
  let left = acc_of [ 1.0; 2.0 ] and right = acc_of [ 3.0; 4.0 ] in
  let merged = Engine.Merge.summaries [ left; right ] in
  let direct = acc_of [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (float 1e-9))
    "mean" (Stats.Summary.Acc.summarize direct).Stats.Summary.mean
    (Stats.Summary.Acc.summarize merged).Stats.Summary.mean;
  check "count" 4 (Stats.Summary.Acc.count merged)

(* --- Adversarial shapes ---------------------------------------------- *)

let shape_protocols k =
  [
    ("trivial", Trivial.protocol);
    ("basic", Basic_intersection.protocol ~failure:0.001);
    ("one-round", One_round_hash.protocol ~confidence:6 ());
    ("bucket", Bucket_protocol.protocol ~k ());
    ("tree r=2", Tree_protocol.protocol ~r:2 ~k ());
    ("tree log*", Tree_protocol.protocol_log_star ~k ());
  ]

let test_shapes_well_formed () =
  let shapes = Workload.Setgen.adversarial (Prng.Rng.of_int 11) ~k:16 in
  check "count" 9 (List.length shapes);
  List.iter
    (fun { Workload.Setgen.shape; universe; pair } ->
      check_bool (shape ^ " s sorted") true (Workload.Setgen.is_sorted_set pair.Workload.Setgen.s);
      check_bool (shape ^ " t sorted") true (Workload.Setgen.is_sorted_set pair.Workload.Setgen.t);
      Array.iter
        (fun x -> check_bool (shape ^ " s in universe") true (0 <= x && x < universe))
        pair.Workload.Setgen.s;
      Array.iter
        (fun x -> check_bool (shape ^ " t in universe") true (0 <= x && x < universe))
        pair.Workload.Setgen.t)
    shapes;
  let find name = List.find (fun s -> s.Workload.Setgen.shape = name) shapes in
  let inter name =
    let s = find name in
    Array.length
      (Workload.Setgen.intersect s.Workload.Setgen.pair.Workload.Setgen.s
         s.Workload.Setgen.pair.Workload.Setgen.t)
  in
  check "empty-both" 0 (inter "empty-both");
  check "identical" 16 (inter "identical");
  check "nested" 8 (inter "nested");
  check "singleton-equal" 1 (inter "singleton-equal");
  check "singleton-disjoint" 0 (inter "singleton-disjoint");
  check "disjoint" 0 (inter "disjoint");
  check "dense-universe" 8 (inter "dense-universe")

(* Every protocol must output exactly S ∩ T on every catalogue shape.
   The seed is pinned: randomized protocols are deterministic given it,
   so this asserts a reproducible fact, not a probabilistic hope — and
   the shapes (empty sets, singletons, k-overlap, dense universes) are
   exactly the corners where indexing bugs hide. *)
let test_protocols_exact_on_shapes () =
  List.iter
    (fun k ->
      let shapes = Workload.Setgen.adversarial (Prng.Rng.of_int 4242) ~k in
      List.iter
        (fun { Workload.Setgen.shape; universe; pair } ->
          List.iter
            (fun (name, protocol) ->
              let outcome =
                protocol.Protocol.run
                  (Prng.Rng.with_label (Prng.Rng.of_int 2014) (shape ^ "/" ^ name))
                  ~universe pair.Workload.Setgen.s pair.Workload.Setgen.t
              in
              check_bool
                (Printf.sprintf "k=%d %s %s exact" k shape name)
                true
                (Protocol.exact outcome ~s:pair.Workload.Setgen.s ~t:pair.Workload.Setgen.t))
            (shape_protocols k))
        shapes)
    [ 4; 16; 64 ]

let () =
  Alcotest.run "engine"
    [
      ( "pool",
        [
          Alcotest.test_case "matches sequential" `Quick test_pool_matches_sequential;
          Alcotest.test_case "propagates exceptions" `Quick test_pool_propagates_exceptions;
          Alcotest.test_case "run folds in order" `Quick test_pool_run_folds_in_order;
          Alcotest.test_case "rejects bad args" `Quick test_pool_rejects_bad_args;
          Alcotest.test_case "fold matches sequential" `Quick test_pool_fold_matches_sequential;
          Alcotest.test_case "fold sketch deterministic" `Quick test_pool_fold_sketch_deterministic;
          Alcotest.test_case "fold propagates exceptions" `Quick test_pool_fold_propagates_exceptions;
        ] );
      ( "instance-cache",
        [
          Alcotest.test_case "memoizes per key" `Quick test_instance_cache_memoizes;
          Alcotest.test_case "per-domain, pure builders" `Quick test_instance_cache_per_domain;
        ] );
      ( "seed-stream",
        [
          Alcotest.test_case "matches legacy soak" `Quick test_seed_stream_matches_legacy;
          Alcotest.test_case "trials independent" `Quick test_seed_stream_trials_independent;
          Alcotest.test_case "matches legacy label shapes" `Quick
            test_seed_stream_matches_legacy_label_shapes;
          Alcotest.test_case "no collisions across 10^5" `Quick test_seed_stream_no_collisions_100k;
          Alcotest.test_case "stable across domains" `Quick test_seed_stream_stable_across_domains;
        ] );
      ( "merge",
        [
          Alcotest.test_case "costs" `Quick test_merge_costs_associative_commutative;
          Alcotest.test_case "metrics" `Quick test_merge_metrics;
          Alcotest.test_case "summaries" `Quick test_merge_summaries_index_order;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "well-formed" `Quick test_shapes_well_formed;
          Alcotest.test_case "protocols exact" `Quick test_protocols_exact_on_shapes;
        ] );
    ]
