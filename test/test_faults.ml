(* Tests for the adversarial channel: fault injection determinism, metering
   under damage, structured loss diagnoses, the resilient wrapper, and the
   soak harness's reproducibility. *)

open Commsim

let bits_of_int ~width v =
  let buf = Bitio.Bitbuf.create () in
  Bitio.Bitbuf.write_bits buf ~width v;
  Bitio.Bitbuf.contents buf

let int_of_bits ~width payload =
  Bitio.Bitreader.read_bits (Bitio.Bitreader.create payload) ~width

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Deadlock (clean mode keeps the historical exception) ---------- *)

let test_deadlock_raises () =
  let starved (ep : Network.endpoint) = Network.recv ep ~from_:(1 - Network.rank ep) in
  match Network.run [| starved; starved |] with
  | _ -> Alcotest.fail "mutual recv must deadlock"
  | exception Network.Deadlock msg ->
      check_bool "diagnosis names a player" true
        (String.length msg > 0)

(* ---------- Dropped messages: structured Lost, not a hang ---------- *)

let test_drop_is_structured_lost () =
  let plan = Faults.uniform ~seed:7 (Faults.dropping 1.0) in
  let outcome, cost, tallies =
    Two_party.run_faulty ~plan
      ~alice:(fun chan -> chan.Chan.send (bits_of_int ~width:12 77))
      ~bob:(fun chan -> int_of_bits ~width:12 (chan.Chan.recv ()))
  in
  (match outcome with
  | Network.Lost d ->
      check "dropped messages" 1 d.Network.dropped;
      (match d.Network.blocked with
      | [ b ] ->
          check "blocked player" 1 b.Network.rank;
          Alcotest.(check (option int)) "waiting for alice" (Some 0) b.Network.waiting_for
      | _ -> Alcotest.fail "exactly one blocked player expected");
      check_bool "detail names the link" true (String.length d.Network.detail > 0)
  | Network.Completed _ -> Alcotest.fail "must not complete across a dropping channel"
  | Network.Crashed _ -> Alcotest.fail "nobody crashed");
  (* A dropped payload never crossed the wire: it costs nothing, and the
     damage lives in the tallies instead. *)
  check "dropped messages cost no bits" 0 cost.Cost.total_bits;
  let t = Faults.total tallies in
  check "tally: dropped messages" 1 t.Faults.dropped_messages;
  check "tally: dropped bits" 12 t.Faults.dropped_bits

(* ---------- Duplicates: metered once per delivered copy ---------- *)

let test_duplicate_metered_per_delivery () =
  let plan = Faults.uniform ~seed:3 { Faults.clean_link with Faults.dup = 1.0 } in
  let outcome, cost, tallies =
    Two_party.run_faulty ~plan
      ~alice:(fun chan -> chan.Chan.send (bits_of_int ~width:8 42))
      ~bob:(fun chan ->
        let a = int_of_bits ~width:8 (chan.Chan.recv ()) in
        let b = int_of_bits ~width:8 (chan.Chan.recv ()) in
        (a, b))
  in
  (match outcome with
  | Network.Completed ((), (a, b)) ->
      check "first copy" 42 a;
      check "second copy" 42 b
  | _ -> Alcotest.fail "duplication must still complete");
  check "each delivered copy is metered" 16 cost.Cost.total_bits;
  check "two messages crossed the wire" 2 cost.Cost.messages;
  let t = Faults.total tallies in
  check "tally: one duplicated message" 1 t.Faults.duplicated_messages;
  check "tally: two deliveries" 2 t.Faults.deliveries

(* ---------- Flip / truncation tallies ---------- *)

let test_flip_tally () =
  let plan = Faults.uniform ~seed:11 (Faults.flipping 1.0) in
  let outcome, _cost, tallies =
    Two_party.run_faulty ~plan
      ~alice:(fun chan -> chan.Chan.send (bits_of_int ~width:8 0b10110010))
      ~bob:(fun chan -> int_of_bits ~width:8 (chan.Chan.recv ()))
  in
  (match outcome with
  | Network.Completed ((), v) -> check "every bit flipped" 0b01001101 v
  | _ -> Alcotest.fail "flips alone must not block delivery");
  let t = Faults.total tallies in
  check "tally: flipped bits" 8 t.Faults.flipped_bits;
  check "tally: flipped messages" 1 t.Faults.flipped_messages

let test_truncation_tally () =
  let plan = Faults.uniform ~seed:5 { Faults.clean_link with Faults.trunc = 1.0 } in
  let outcome, cost, tallies =
    Two_party.run_faulty ~plan
      ~alice:(fun chan -> chan.Chan.send (bits_of_int ~width:32 0xDEAD))
      ~bob:(fun chan -> Bitio.Bits.length (chan.Chan.recv ()))
  in
  let received = match outcome with
    | Network.Completed ((), len) -> len
    | _ -> Alcotest.fail "truncation alone must not block delivery"
  in
  check_bool "a strict suffix was cut" true (received < 32);
  let t = Faults.total tallies in
  check "tally: truncated messages" 1 t.Faults.truncated_messages;
  check "tally accounts the missing bits" 32 (received + t.Faults.truncated_bits);
  check "cost meters the truncated length" received cost.Cost.total_bits

(* ---------- Crash capture ---------- *)

let test_crash_is_captured () =
  let plan = Faults.uniform ~seed:1 (Faults.flipping 1e-9) in
  let outcome, _cost, _tallies =
    Two_party.run_faulty ~plan
      ~alice:(fun chan -> chan.Chan.send (bits_of_int ~width:4 1))
      ~bob:(fun chan ->
        ignore (chan.Chan.recv ());
        failwith "codec choked")
  in
  match outcome with
  | Network.Crashed { rank; exn; _ } ->
      check "crashing player" 1 rank;
      check_bool "exception text preserved" true
        (String.length exn > 0)
  | _ -> Alcotest.fail "a raising player must surface as Crashed"

(* ---------- Seed replay: identical trace and tallies ---------- *)

let storm = { Faults.flip = 0.02; trunc = 0.1; dup = 0.3; drop = 0.1 }

let chatter (ep : Network.endpoint) =
  let chan = Chan.of_endpoint ep ~peer:(1 - Network.rank ep) in
  (* Fire-and-forget volleys: sends never block, so damage cannot hang us. *)
  for i = 1 to 5 do
    chan.Chan.send (bits_of_int ~width:16 (Network.rank ep + (i * 100)))
  done

let test_replay_determinism () =
  let run () =
    Network.run_faulty_traced ~plan:(Faults.uniform ~seed:99 storm) [| chatter; chatter |]
  in
  let outcome1, cost1, trace1, tallies1 = run () in
  let outcome2, cost2, trace2, tallies2 = run () in
  check_bool "outcome replays" true
    ((match (outcome1, outcome2) with
     | Network.Completed _, Network.Completed _ -> true
     | Network.Lost a, Network.Lost b -> a = b
     | ( Network.Crashed { rank = ra; exn = ea; _ },
         Network.Crashed { rank = rb; exn = eb; _ } ) -> ra = rb && ea = eb
     | _ -> false));
  check_bool "cost replays" true (cost1 = cost2);
  check_bool "trace replays" true (trace1 = trace2);
  check_bool "tallies replay" true (tallies1 = tallies2);
  check_bool "the storm did something" false (Faults.tally_is_clean (Faults.total tallies1))

(* ---------- Trace invariants survive damage ----------
   One entry per delivered copy, in send order: bits sum to the metered
   total and the deepest entry is the causal round count, whatever the
   plan drops or duplicates (the documented run_faulty_traced contract). *)

let test_traced_invariants_under_damage () =
  let check_plan name plan =
    let _outcome, cost, trace, _tallies =
      Network.run_faulty_traced ~plan [| chatter; chatter |]
    in
    check
      (name ^ ": entry bits sum to cost.total_bits")
      cost.Cost.total_bits
      (List.fold_left (fun acc e -> acc + e.Network.bits) 0 trace);
    check (name ^ ": one entry per delivered copy") cost.Cost.messages (List.length trace);
    check
      (name ^ ": max entry depth equals cost.rounds")
      cost.Cost.rounds
      (List.fold_left (fun acc e -> max acc e.Network.depth) 0 trace)
  in
  check_plan "storm (flips, dups, drops)" (Faults.uniform ~seed:99 storm);
  check_plan "dup-heavy" (Faults.uniform ~seed:3 { Faults.flip = 0.0; trunc = 0.0; dup = 1.0; drop = 0.0 });
  check_plan "drop-heavy" (Faults.uniform ~seed:5 (Faults.dropping 0.5));
  check_plan "clean" Faults.clean

let test_reseed () =
  let plan = Faults.uniform ~seed:99 storm in
  check_bool "reseed is deterministic" true
    (Faults.seed (Faults.reseed plan ~salt:4) = Faults.seed (Faults.reseed plan ~salt:4));
  check_bool "different salts give different noise" false
    (Faults.seed (Faults.reseed plan ~salt:1) = Faults.seed (Faults.reseed plan ~salt:2));
  check_bool "clean plan is a fixed point" true (Faults.reseed Faults.clean ~salt:5 == Faults.clean)

(* ---------- The guarded transport ---------- *)

let guarded_pair ~plan ~link_rng ~alice ~bob =
  Two_party.run_faulty ~plan
    ~alice:(fun chan -> alice (Intersect.Resilient.guard link_rng ~tag_bits:32 chan))
    ~bob:(fun chan -> bob (Intersect.Resilient.guard link_rng ~tag_bits:32 chan))

let test_guard_absorbs_duplicates () =
  let plan = Faults.uniform ~seed:2 { Faults.clean_link with Faults.dup = 1.0 } in
  let outcome, _, _ =
    guarded_pair ~plan ~link_rng:(Prng.Rng.of_int 8)
      ~alice:(fun chan ->
        chan.Chan.send (bits_of_int ~width:8 5);
        chan.Chan.send (bits_of_int ~width:8 6))
      ~bob:(fun chan ->
        let first = int_of_bits ~width:8 (chan.Chan.recv ()) in
        let second = int_of_bits ~width:8 (chan.Chan.recv ()) in
        (first, second))
  in
  match outcome with
  | Network.Completed ((), (a, b)) ->
      check "first payload once" 5 a;
      check "second payload once" 6 b
  | _ -> Alcotest.fail "duplicates must be absorbed silently"

let test_guard_detects_flips () =
  let plan = Faults.uniform ~seed:2 (Faults.flipping 0.5) in
  let outcome, _, _ =
    guarded_pair ~plan ~link_rng:(Prng.Rng.of_int 8)
      ~alice:(fun chan -> chan.Chan.send (bits_of_int ~width:32 123456))
      ~bob:(fun chan -> ignore (chan.Chan.recv ()))
  in
  match outcome with
  | Network.Crashed { rank; exn; _ } ->
      check "the receiver aborts" 1 rank;
      check_bool "as a detected corruption" true
        (String.length exn > 0)
  | Network.Completed _ ->
      Alcotest.fail "a half-flipped frame passing the fingerprint is a 2^-32 event"
  | Network.Lost _ -> Alcotest.fail "nothing was dropped"

(* ---------- The resilient wrapper ---------- *)

let inputs = (Iset.of_list [ 1; 5; 9; 200; 1000 ], Iset.of_list [ 2; 5; 200; 512; 1000 ])
let truth = Iset.inter (fst inputs) (snd inputs)

let run_resilient ?(budget = Intersect.Resilient.default_budget) ~plan seed =
  let s, t = inputs in
  Intersect.Resilient.run Intersect.Resilient.trivial_base ~plan ~budget ~check_bits:24
    (Prng.Rng.of_int seed) ~universe:1024 s t

let test_resilient_exact_under_flips () =
  for seed = 1 to 20 do
    let report = run_resilient ~plan:(Faults.uniform ~seed (Faults.flipping 1e-3)) seed in
    check_bool
      (Printf.sprintf "seed %d returns the exact intersection" seed)
      true
      (Iset.equal report.Intersect.Resilient.result truth)
  done

let test_resilient_degrades_when_budget_exhausted () =
  (* A half-flipping channel defeats every attempt; the wrapper must fall
     back to the reliable trivial exchange and still be exact. *)
  let report =
    run_resilient
      ~budget:{ Intersect.Resilient.attempts = 2; bits = max_int }
      ~plan:(Faults.uniform ~seed:17 (Faults.flipping 0.5))
      17
  in
  check_bool "degraded" true report.Intersect.Resilient.degraded;
  check_bool "not verified" false report.Intersect.Resilient.verified;
  check "all budgeted attempts burned" 2 report.Intersect.Resilient.attempts;
  check "one failure per attempt" 2 (List.length report.Intersect.Resilient.failures);
  check_bool "fallback paid for" true (report.Intersect.Resilient.fallback_bits > 0);
  check_bool "still exact" true (Iset.equal report.Intersect.Resilient.result truth)

let test_resilient_reproducible () =
  let plan = Faults.uniform ~seed:23 (Faults.flipping 1e-3) in
  let a = run_resilient ~plan 23 and b = run_resilient ~plan 23 in
  check_bool "identical report" true (a = b)

(* ---------- Verified.run_party exposes the verification signal ---------- *)

let run_party_pair ~alice_set ~bob_set ~max_attempts =
  let rng = Prng.Rng.of_int 31 in
  let (a, b), _cost =
    Two_party.run
      ~alice:(fun chan ->
        Intersect.Verified.run_party `Alice rng ~bits:24 ~max_attempts chan
          ~party:(fun _rng _chan -> alice_set))
      ~bob:(fun chan ->
        Intersect.Verified.run_party `Bob rng ~bits:24 ~max_attempts chan
          ~party:(fun _rng _chan -> bob_set))
  in
  (a, b)

let test_run_party_verified_signal () =
  let agree = Iset.of_list [ 4; 8 ] in
  let a, b = run_party_pair ~alice_set:agree ~bob_set:agree ~max_attempts:3 in
  check_bool "agreeing candidates verify" true a.Intersect.Verified.verified;
  check "one attempt suffices" 1 a.Intersect.Verified.attempts;
  check_bool "both sides agree on the signal" true (b.Intersect.Verified.verified);
  let a, b =
    run_party_pair ~alice_set:(Iset.of_list [ 1 ]) ~bob_set:(Iset.of_list [ 2 ]) ~max_attempts:3
  in
  check_bool "disagreeing candidates never verify" false a.Intersect.Verified.verified;
  check "the attempt budget is spent" 3 a.Intersect.Verified.attempts;
  check_bool "bob sees the failure too" false b.Intersect.Verified.verified

(* ---------- Soak harness reproducibility ---------- *)

let tiny_soak =
  {
    Workload.Soak.default with
    Workload.Soak.trials = 3;
    k = 8;
    universe_bits = 12;
    overlap = 4;
    protocols = [ "trivial" ];
    plans =
      [ ("clean", Faults.clean_link); ("flip-1e-3", Faults.flipping 1e-3) ];
    budget_attempts = 4;
    check_bits = 16;
  }

let test_soak_reproducible () =
  let json () = Stats.Json.to_string (Workload.Soak.to_json (Workload.Soak.run tiny_soak)) in
  Alcotest.(check string) "identical JSON reports" (json ()) (json ());
  let report = Workload.Soak.run tiny_soak in
  List.iter
    (fun c ->
      check
        (Printf.sprintf "%s/%s all exact" c.Workload.Soak.protocol c.Workload.Soak.plan)
        tiny_soak.Workload.Soak.trials c.Workload.Soak.exact;
      check_bool "within the paper bound" true c.Workload.Soak.within_bound)
    report.Workload.Soak.cells

let () =
  Alcotest.run "faults"
    [
      ( "network",
        [
          Alcotest.test_case "deadlock raises in clean mode" `Quick test_deadlock_raises;
          Alcotest.test_case "drop yields structured Lost" `Quick test_drop_is_structured_lost;
          Alcotest.test_case "duplicates metered per delivery" `Quick
            test_duplicate_metered_per_delivery;
          Alcotest.test_case "flip tally" `Quick test_flip_tally;
          Alcotest.test_case "truncation tally" `Quick test_truncation_tally;
          Alcotest.test_case "crash captured" `Quick test_crash_is_captured;
          Alcotest.test_case "seed replay determinism" `Quick test_replay_determinism;
          Alcotest.test_case "traced invariants under damage" `Quick
            test_traced_invariants_under_damage;
          Alcotest.test_case "reseed derives fresh noise" `Quick test_reseed;
        ] );
      ( "guard",
        [
          Alcotest.test_case "absorbs duplicates" `Quick test_guard_absorbs_duplicates;
          Alcotest.test_case "detects flips" `Quick test_guard_detects_flips;
        ] );
      ( "resilient",
        [
          Alcotest.test_case "exact under bit flips" `Quick test_resilient_exact_under_flips;
          Alcotest.test_case "degrades on exhausted budget" `Quick
            test_resilient_degrades_when_budget_exhausted;
          Alcotest.test_case "reproducible" `Quick test_resilient_reproducible;
        ] );
      ( "verified",
        [ Alcotest.test_case "run_party exposes the signal" `Quick test_run_party_verified_signal ] );
      ( "soak",
        [ Alcotest.test_case "reproducible and exact" `Quick test_soak_reproducible ] );
    ]
