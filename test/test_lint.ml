(* intersect-lint: fixture source snippets per rule (violating and
   conforming), allowlist parsing and matching, golden --json output
   under the fixed finding ordering, determinism of the report, and the
   gate that the repository itself lints clean.

   Fixtures are OCaml sources held in strings and linted via
   Driver.lint_source with a chosen virtual path, so each rule's
   structural scoping (lib/prng exempt from R1, lib/obsv from R2, ...)
   is exercised without touching the filesystem. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let rules_of findings = List.map (fun (f : Lint.Finding.t) -> f.rule) findings

let lint ?registry ~path source = Lint.Driver.lint_source ?registry ~path source

let count_rule rule findings = List.length (List.filter (( = ) rule) (rules_of findings))

(* --- R1: determinism ------------------------------------------------- *)

let r1_violating =
  {|
let draw () = Random.int 10
let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
let h x = Hashtbl.hash x
let t () = Hashtbl.create ~random:true 8
|}

let test_r1_flags_ambient_randomness () =
  let findings = lint ~path:"lib/core/fixture.ml" r1_violating in
  check "five R1 findings" 5 (count_rule "R1" findings);
  check "nothing else fires" 5 (List.length findings)

let test_r1_open_random () =
  let findings = lint ~path:"lib/core/fixture.ml" "open Random\nlet draw () = int 10\n" in
  check "open Random is one finding" 1 (count_rule "R1" findings)

let test_r1_stdlib_qualifier_is_stripped () =
  let findings = lint ~path:"lib/core/fixture.ml" "let d () = Stdlib.Random.bits ()\n" in
  check "Stdlib.Random caught" 1 (count_rule "R1" findings)

let test_r1_exempt_in_prng () =
  check "lib/prng is the sanctioned home" 0
    (List.length (lint ~path:"lib/prng/fixture.ml" r1_violating));
  check "seed_stream is exempt" 0
    (List.length (lint ~path:"lib/engine/seed_stream.ml" "let d () = Random.bits ()\n"))

let test_r1_conforming () =
  let src = "let draw rng = Prng.Rng.bits rng\nlet t () = Hashtbl.create ~random:false 8\n" in
  check "seeded draws pass" 0 (List.length (lint ~path:"lib/core/fixture.ml" src))

(* --- R2: ambient state ----------------------------------------------- *)

let test_r2_flags_toplevel_mutable () =
  let src =
    {|
let count = ref 0
let table = Hashtbl.create 16
let slot = Atomic.make None
let lazy_q = lazy (Queue.create ())
module Inner = struct
  let buf = Buffer.create 80
end
|}
  in
  let findings = lint ~path:"lib/core/fixture.ml" src in
  check "five R2 findings (incl. lazy and nested module)" 5 (count_rule "R2" findings)

let test_r2_function_local_state_passes () =
  let src = "let f () =\n  let count = ref 0 in\n  incr count;\n  !count\n" in
  check "local refs are fine" 0 (List.length (lint ~path:"lib/core/fixture.ml" src))

let test_r2_exempt_in_obsv () =
  check "lib/obsv owns ambient state" 0
    (List.length (lint ~path:"lib/obsv/fixture.ml" "let registry = Hashtbl.create 16\n"))

(* --- R3: phase registry ---------------------------------------------- *)

let test_r3_flags_unregistered_span_literal () =
  let src = {|let f () = Obsv.Trace.span "bogus/phase" (fun () -> ())|} in
  let findings = lint ~path:"lib/core/fixture.ml" src in
  check "typo'd phase caught" 1 (count_rule "R3" findings)

let test_r3_registered_literal_passes () =
  let src = {|let f () = Obsv.Trace.span "bucket/assign" (fun () -> ())|} in
  check "registered name passes" 0 (List.length (lint ~path:"lib/core/fixture.ml" src))

let test_r3_constant_passes () =
  let src = "let f () = Obsv.Trace.span Obsv.Phases.bucket_eq (fun () -> ())\n" in
  check "Phases constant passes" 0 (List.length (lint ~path:"lib/core/fixture.ml" src))

let test_r3_custom_registry () =
  let src = {|let f () = Trace.span "custom/phase" ignore|} in
  check "custom registry accepts" 0
    (List.length (lint ~registry:(( = ) "custom/phase") ~path:"lib/core/fixture.ml" src));
  check "custom registry rejects" 1
    (count_rule "R3" (lint ~registry:(fun _ -> false) ~path:"lib/core/fixture.ml" src))

(* --- R4: domain hygiene ---------------------------------------------- *)

let test_r4_flags_domain_outside_engine () =
  let src = "let d f = Domain.spawn f\nlet k () = Domain.DLS.new_key (fun () -> 0)\n" in
  let findings = lint ~path:"lib/core/fixture.ml" src in
  check "spawn and DLS caught" 2 (count_rule "R4" findings)

let test_r4_exempt_in_engine_and_obsv () =
  let src = "let d f = Domain.spawn f\n" in
  check "lib/engine may spawn" 0 (List.length (lint ~path:"lib/engine/pool.ml" src));
  check "lib/obsv may use DLS" 0
    (List.length (lint ~path:"lib/obsv/trace.ml" "let k = Domain.DLS.new_key (fun () -> [])\n"))

let test_r4_join_alone_passes () =
  (* Only spawn/DLS are restricted; e.g. Domain.cpu_relax or
     Domain.recommended_domain_count are harmless reads. *)
  let src = "let n () = Domain.recommended_domain_count ()\n" in
  check "other Domain reads pass" 0 (List.length (lint ~path:"lib/core/fixture.ml" src))

(* --- R6: flight recorder write restriction --------------------------- *)

let test_r6_flags_event_outside_session () =
  let src = {|let f () = Obsv.Recorder.event ~kind:"oops" "narrating from the wrong layer"|} in
  check "recorder write caught" 1 (count_rule "R6" (lint ~path:"lib/workload/fixture.ml" src));
  check "short path caught too" 1
    (count_rule "R6" (lint ~path:"bin/fixture.ml" {|let f () = Recorder.event ~kind:"k" "d"|}))

let test_r6_exempt_in_session_and_obsv () =
  let src = {|let f () = Obsv.Recorder.event ~kind:"ladder" "degrading"|} in
  check "lib/session narrates" 0 (List.length (lint ~path:"lib/session/machine.ml" src));
  check "lib/obsv owns the recorder" 0 (List.length (lint ~path:"lib/obsv/recorder.ml" src))

let test_r6_reads_pass () =
  let src =
    "let dump r = Obsv.Recorder.post_mortem_json r\nlet n r = Obsv.Recorder.recorded r\n"
  in
  check "reading a recorder is open to all" 0
    (List.length (lint ~path:"lib/workload/fixture.ml" src))

(* --- R5: interface coverage ------------------------------------------ *)

let test_r5_missing_mli () =
  let files = [ "lib/core/a.ml"; "lib/core/a.mli"; "lib/core/b.ml"; "bin/cli.ml" ] in
  let findings = Lint.Rules.check_mli_coverage ~files in
  check "one missing interface" 1 (List.length findings);
  check_str "names the .ml" "lib/core/b.ml" (List.hd findings).Lint.Finding.file;
  check_str "rule id" "R5" (List.hd findings).Lint.Finding.rule

(* --- syntax ----------------------------------------------------------- *)

let test_syntax_error_is_a_finding () =
  let findings = lint ~path:"lib/core/fixture.ml" "let = broken (" in
  check "one syntax finding" 1 (count_rule "syntax" findings);
  let findings = lint ~path:"lib/core/fixture.mli" "val : t" in
  check "interfaces are parsed too" 1 (count_rule "syntax" findings)

(* --- allowlist -------------------------------------------------------- *)

let test_allow_parse_and_match () =
  let known = Lint.Rules.rule_ids in
  match Lint.Allow.parse ~known "# header\nR1 bench/ # wall clock\n\nR3 test/\n" with
  | Error e -> Alcotest.fail e
  | Ok entries ->
      check "two entries" 2 (List.length entries);
      check_bool "R1 under bench/ allowed" true
        (Lint.Allow.allows entries ~rule:"R1" ~file:"bench/micro.ml");
      check_bool "R1 elsewhere still fires" false
        (Lint.Allow.allows entries ~rule:"R1" ~file:"lib/core/foo.ml");
      check_bool "R2 under bench/ still fires" false
        (Lint.Allow.allows entries ~rule:"R2" ~file:"bench/micro.ml")

let test_allow_rejects_unknown_rule () =
  check_bool "unknown rule id fails parse" true
    (match Lint.Allow.parse ~known:Lint.Rules.rule_ids "R99 lib/\n" with
    | Error _ -> true
    | Ok _ -> false)

let test_allow_knows_typed_rules () =
  (* R7..R10 are valid allowlist targets now that the typed pass exists. *)
  match Lint.Allow.parse ~known:Lint.Rules.rule_ids "R7 lib/\nR8 lib/\nR9 lib/\nR10 lib/\n" with
  | Error e -> Alcotest.fail e
  | Ok entries -> check "four typed-rule entries" 4 (List.length entries)

(* --- golden JSON ------------------------------------------------------ *)

let test_golden_json_report () =
  let findings =
    lint ~path:"lib/core/fixture.ml"
      "let now () = Unix.gettimeofday ()\nlet count = ref 0\n"
  in
  let golden =
    {|{"tool":"intersect-lint","files":1,"typed_modules":0,"count":2,"findings":[{"rule":"R1","file":"lib/core/fixture.ml","line":1,"col":13,"message":"Unix.gettimeofday: wall-clock reads are nondeterministic; use the trace's event clock, or allowlist bench-only timing"},{"rule":"R2","file":"lib/core/fixture.ml","line":2,"col":0,"message":"top-level ref is ambient mutable state; keep it behind Obsv's Domain-local wrappers or pass it explicitly"}]}|}
  in
  check_str "golden report" golden
    (Stats.Json.to_string (Lint.Finding.report_json ~files:1 ~typed_modules:0 findings))

let test_golden_sarif_report () =
  let findings =
    [
      Lint.Finding.v ~rule:"R7" ~file:"lib/workload/launder.ml" ~line:1 ~col:14
        "sink reachable from party code";
    ]
  in
  let golden =
    {|{"version":"2.1.0","$schema":"https://json.schemastore.org/sarif-2.1.0.json","runs":[{"tool":{"driver":{"name":"intersect-lint","rules":[{"id":"R7","shortDescription":{"text":"determinism taint"}}]}},"properties":{"files":2,"typed_modules":2},"results":[{"ruleId":"R7","level":"error","message":{"text":"sink reachable from party code"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"lib/workload/launder.ml"},"region":{"startLine":1,"startColumn":15}}}]}]}]}|}
  in
  check_str "golden sarif" golden
    (Stats.Json.to_string
       (Lint.Finding.sarif_json
          ~rules:[ ("R7", "determinism taint") ]
          ~files:2 ~typed_modules:2 findings))

(* --- typed pass: R7..R10 over in-process fixtures --------------------- *)

(* Fixture units are typed against the stdlib in order (each unit's
   signature visible to the later ones), then pushed through the same
   Typed.analyze the repo gate runs — only the scope config differs,
   because fixture modules are not called Commsim or Obsv. *)
let analyze_units ?config units =
  let types = Lint.Cmt_load.create_types () in
  match Lint.Cmt_load.of_sources ~types units with
  | Error e -> Alcotest.fail e
  | Ok modus -> Lint.Typed.analyze ?config ~types modus

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let find_rule rule findings =
  match List.filter (fun (f : Lint.Finding.t) -> f.rule = rule) findings with
  | [ f ] -> f
  | l -> Alcotest.failf "expected exactly one %s finding, got %d" rule (List.length l)

(* R7: a helper module outside the party layer laundering ambient
   randomness is caught the moment party code can reach it, with the
   call chain in the message. *)

let test_r7_flags_laundered_randomness () =
  let findings =
    analyze_units
      [
        ("Launder", "lib/workload/launder.ml", "let fresh n = Stdlib.Random.int n\n");
        ("Party", "lib/core/party.ml", "let run () = Launder.fresh 10\n");
      ]
  in
  let f = find_rule "R7" findings in
  check_str "sink is in the helper file" "lib/workload/launder.ml" f.Lint.Finding.file;
  check_bool "chain names the party entry" true
    (contains ~sub:"Party.run -> Launder.fresh" f.Lint.Finding.message);
  check "nothing else fires" 1 (List.length findings)

let test_r7_transitive_chain () =
  (* Two hops: party -> util -> launder still resolves, and the reported
     chain is the shortest path. *)
  let findings =
    analyze_units
      [
        ("Launder", "lib/workload/launder.ml", "let fresh n = Stdlib.Random.int n\n");
        ("Util", "lib/workload/util.ml", "let pick n = Launder.fresh n\n");
        ("Party", "lib/core/party.ml", "let run () = Util.pick 10\n");
      ]
  in
  (* Only the binding that touches the sink is reported; the clean
     intermediary is just a hop in its chain. *)
  let launder = find_rule "R7" findings in
  check_str "reported at the sink" "lib/workload/launder.ml" launder.Lint.Finding.file;
  check_bool "full chain reported" true
    (contains ~sub:"Party.run -> Util.pick -> Launder.fresh" launder.Lint.Finding.message)

let test_r7_sanctioned_prng_passes () =
  (* The same laundering helper under lib/prng is the sanctioned route. *)
  check "lib/prng is the stop set" 0
    (List.length
       (analyze_units
          [
            ("Seeds", "lib/prng/seeds.ml", "let fresh n = Stdlib.Random.int n\n");
            ("Party", "lib/core/party.ml", "let run () = Seeds.fresh 10\n");
          ]))

let test_r7_leaves_direct_use_to_r1 () =
  (* A sink used directly in a party file is syntactic R1's report, not a
     second R7 one. *)
  check "no double report" 0
    (List.length
       (analyze_units [ ("Party", "lib/core/party.ml", "let run () = Stdlib.Random.int 3\n") ]))

let test_r7_unreachable_helper_passes () =
  check "unreachable helper is not tainted" 0
    (List.length
       (analyze_units
          [
            ("Launder", "lib/workload/launder.ml", "let fresh n = Stdlib.Random.int n\n");
            ("Party", "lib/core/party.ml", "let run () = 10\n");
          ]))

(* R8: transport ops must sit under a span-opening binding on every
   in-scope path. Fixture transport/span modules stand in for
   Commsim.Transport and Obsv.Trace via the config. *)

let typed_cfg =
  {
    Lint.Typed.default_config with
    Lint.Typed.span_fns = [ "Obs.span" ];
    transport_fns = [ "Net.send"; "Net.recv" ];
    transport_types = [ "Net.t" ];
  }

let obs_unit = ("Obs", "lib/obsv/obs.ml", "let span name f = ignore name; f ()\n")

let net_unit =
  ( "Net",
    "lib/commsim/net.ml",
    "type t = { send : string -> unit; recv : unit -> string }\n\
     let send t x = t.send x\n\
     let recv t = t.recv ()\n" )

let test_r8_flags_unattributed_send () =
  let findings =
    analyze_units ~config:typed_cfg
      [
        obs_unit;
        net_unit;
        ("Proto", "lib/session/proto.ml", "let push ch = Net.send ch \"x\"\n");
      ]
  in
  let f = find_rule "R8" findings in
  check_str "at the op site" "lib/session/proto.ml" f.Lint.Finding.file;
  check_bool "names the entry path" true (contains ~sub:"Proto.push" f.Lint.Finding.message)

let test_r8_flags_field_projection () =
  (* chan.send through the record type counts as a transport op even
     with no call to the Net functions. *)
  let findings =
    analyze_units ~config:typed_cfg
      [
        obs_unit;
        net_unit;
        ("Proto", "lib/session/proto.ml", "let push (c : Net.t) = c.send \"y\"\n");
      ]
  in
  check "field-projection op caught" 1 (count_rule "R8" findings)

let test_r8_span_in_binding_passes () =
  check "spanned send passes" 0
    (List.length
       (analyze_units ~config:typed_cfg
          [
            obs_unit;
            net_unit;
            ( "Proto",
              "lib/session/proto.ml",
              "let push ch = Obs.span \"p\" (fun () -> Net.send ch \"x\")\n" );
          ]))

let test_r8_span_in_caller_passes () =
  (* The op binding itself opens no span, but its only in-scope caller
     does: every path is attributed, so nothing fires. *)
  check "caller-attributed send passes" 0
    (List.length
       (analyze_units ~config:typed_cfg
          [
            obs_unit;
            net_unit;
            ( "Proto",
              "lib/session/proto.ml",
              "let raw ch = Net.send ch \"x\"\n\
               let push ch = Obs.span \"p\" (fun () -> raw ch)\n" );
          ]))

let test_r8_exempt_plumbing_passes () =
  (* lib/commsim itself (Net's home) is outside the metering scope. *)
  check "transport plumbing exempt" 0
    (List.length (analyze_units ~config:typed_cfg [ obs_unit; net_unit ]))

(* R9: mutable state at module scope or captured by Domain.spawn. The
   first fixture reconstructs the Splitmix64 shared-scratch race: a
   module-global mutable record every domain would write concurrently —
   invisible to syntactic R2 (no recognised constructor), caught by
   type. *)

let r9_splitmix =
  {|
type t = { mutable hi : int; mutable lo : int }
let scratch = { hi = 0x9e3779b9; lo = 0 }
let mix z =
  scratch.hi <- scratch.hi + z;
  scratch.hi lxor scratch.lo
|}

let test_r9_flags_splitmix_scratch_record () =
  let findings = analyze_units [ ("Splitmix", "lib/prng/splitmix.ml", r9_splitmix) ] in
  let f = find_rule "R9" findings in
  check_str "at the global binding" "lib/prng/splitmix.ml" f.Lint.Finding.file;
  check_bool "names the scratch record" true
    (contains ~sub:"Splitmix.scratch" f.Lint.Finding.message);
  (* ...and syntactic R2 really cannot see it: a record literal is not
     one of its recognised state constructors. *)
  check "R2 misses the same source" 0
    (count_rule "R2" (lint ~path:"lib/prng/splitmix.ml" r9_splitmix))

let test_r9_per_call_allocation_passes () =
  let fixed =
    "type t = { mutable hi : int; mutable lo : int }\n\
     let mix z =\n\
    \  let s = { hi = z; lo = 1 } in\n\
    \  s.hi <- s.hi + 1;\n\
    \  s.hi lxor s.lo\n"
  in
  check "per-call scratch passes" 0
    (List.length (analyze_units [ ("Splitmix", "lib/prng/splitmix.ml", fixed) ]))

let r9_spawn_race =
  "let race () =\n\
  \  let results = Array.make 4 0 in\n\
  \  let d = Stdlib.Domain.spawn (fun () -> results.(0) <- 1) in\n\
  \  Stdlib.Domain.join d;\n\
  \  results.(0)\n"

let test_r9_flags_spawn_capture () =
  let findings = analyze_units [ ("Par", "lib/workload/par.ml", r9_spawn_race) ] in
  let f = find_rule "R9" findings in
  check_bool "names the captured array" true (contains ~sub:"results" f.Lint.Finding.message)

let test_r9_atomic_capture_passes () =
  let src =
    "let count () =\n\
    \  let c = Stdlib.Atomic.make 0 in\n\
    \  let d = Stdlib.Domain.spawn (fun () -> Stdlib.Atomic.incr c) in\n\
    \  Stdlib.Domain.join d;\n\
    \  Stdlib.Atomic.get c\n"
  in
  check "Atomic is the sanctioned vehicle" 0
    (List.length (analyze_units [ ("Par", "lib/workload/par.ml", src) ]))

let test_r9_engine_capture_exempt () =
  check "lib/engine owns its pools" 0
    (List.length (analyze_units [ ("Pool", "lib/engine/pool_fx.ml", r9_spawn_race) ]))

(* R10: registry constants nothing spans or references. *)

let r10_cfg = { typed_cfg with Lint.Typed.registry_module = "Phases" }

let r10_registry =
  ( "Phases",
    "lib/obsv/phases_fx.ml",
    "let alive = \"p/alive\"\n\
     let spanned = \"p/spanned\"\n\
     let dead = \"p/dead\"\n\
     let all = [ alive; spanned; dead ]\n" )

let test_r10_flags_dead_phase () =
  let findings =
    analyze_units ~config:r10_cfg
      [
        r10_registry;
        obs_unit;
        ( "Use",
          "lib/core/use.ml",
          "let f () = Obs.span Phases.alive (fun () -> ())\n\
           let g () = Obs.span \"p/spanned\" (fun () -> ())\n" );
      ]
  in
  let f = find_rule "R10" findings in
  check_str "at the registry entry" "lib/obsv/phases_fx.ml" f.Lint.Finding.file;
  check_bool "names the dead phase" true (contains ~sub:"p/dead" f.Lint.Finding.message);
  check "alive and spanned survive" 1 (List.length findings)

let test_r10_registry_internal_refs_do_not_count () =
  (* The registry's own [all] list references every constant; with no
     outside user, all three are dead. *)
  let findings = analyze_units ~config:r10_cfg [ r10_registry; obs_unit ] in
  check "all three dead" 3 (count_rule "R10" findings)

let test_typed_analyze_deterministic () =
  let run () =
    analyze_units
      [
        ("Launder", "lib/workload/launder.ml", "let fresh n = Stdlib.Random.int n\n");
        ("Party", "lib/core/party.ml", "let run () = Launder.fresh 10\n");
        ("Splitmix", "lib/prng/splitmix.ml", r9_splitmix);
      ]
    |> List.map Lint.Finding.to_line
    |> String.concat "\n"
  in
  check_str "byte-identical fixture analyses" (run ()) (run ())

(* --- the repository itself ------------------------------------------- *)

(* Tests run from _build/default/test; the tree above it carries every
   source file (declared via source_tree deps in test/dune). *)
let repo_root = ".."

let test_repo_lints_clean () =
  match Lint.Driver.run ~root:repo_root () with
  | Error e -> Alcotest.fail e
  | Ok { Lint.Driver.files; typed_modules; findings } ->
      check_bool "scanned a real tree" true (files > 100);
      check_bool "typed pass loaded the tree" true (typed_modules > 80);
      check_str "no findings"
        ""
        (String.concat "\n" (List.map Lint.Finding.to_line findings))

let test_repo_report_deterministic () =
  let render () =
    match Lint.Driver.run ~root:repo_root () with
    | Error e -> Alcotest.fail e
    | Ok { Lint.Driver.files; typed_modules; findings } ->
        Stats.Json.to_string (Lint.Finding.report_json ~files ~typed_modules findings)
  in
  check_str "byte-identical consecutive runs" (render ()) (render ())

let test_phase_registry_is_sorted_and_unique () =
  let all = Obsv.Phases.all in
  check_bool "sorted" true (List.sort String.compare all = all);
  check "unique" (List.length all) (List.length (List.sort_uniq String.compare all));
  check_bool "unattributed registered" true (Obsv.Phases.mem Obsv.Phases.unattributed)

let () =
  Alcotest.run "lint"
    [
      ( "R1 determinism",
        [
          Alcotest.test_case "flags ambient randomness" `Quick test_r1_flags_ambient_randomness;
          Alcotest.test_case "open Random" `Quick test_r1_open_random;
          Alcotest.test_case "Stdlib qualifier" `Quick test_r1_stdlib_qualifier_is_stripped;
          Alcotest.test_case "exempt in lib/prng" `Quick test_r1_exempt_in_prng;
          Alcotest.test_case "conforming" `Quick test_r1_conforming;
        ] );
      ( "R2 ambient state",
        [
          Alcotest.test_case "flags top-level mutable" `Quick test_r2_flags_toplevel_mutable;
          Alcotest.test_case "function-local passes" `Quick test_r2_function_local_state_passes;
          Alcotest.test_case "exempt in lib/obsv" `Quick test_r2_exempt_in_obsv;
        ] );
      ( "R3 phase registry",
        [
          Alcotest.test_case "unregistered literal" `Quick test_r3_flags_unregistered_span_literal;
          Alcotest.test_case "registered literal" `Quick test_r3_registered_literal_passes;
          Alcotest.test_case "Phases constant" `Quick test_r3_constant_passes;
          Alcotest.test_case "custom registry" `Quick test_r3_custom_registry;
        ] );
      ( "R4 domain hygiene",
        [
          Alcotest.test_case "flags outside engine" `Quick test_r4_flags_domain_outside_engine;
          Alcotest.test_case "exempt in engine/obsv" `Quick test_r4_exempt_in_engine_and_obsv;
          Alcotest.test_case "benign Domain reads" `Quick test_r4_join_alone_passes;
        ] );
      ( "R5 interfaces",
        [ Alcotest.test_case "missing .mli" `Quick test_r5_missing_mli ] );
      ( "R6 flight recorder",
        [
          Alcotest.test_case "flags writes outside session" `Quick
            test_r6_flags_event_outside_session;
          Alcotest.test_case "exempt in session/obsv" `Quick test_r6_exempt_in_session_and_obsv;
          Alcotest.test_case "reads pass" `Quick test_r6_reads_pass;
        ] );
      ( "syntax",
        [ Alcotest.test_case "parse errors are findings" `Quick test_syntax_error_is_a_finding ] );
      ( "allowlist",
        [
          Alcotest.test_case "parse and match" `Quick test_allow_parse_and_match;
          Alcotest.test_case "unknown rule rejected" `Quick test_allow_rejects_unknown_rule;
          Alcotest.test_case "typed rules known" `Quick test_allow_knows_typed_rules;
        ] );
      ( "R7 determinism taint",
        [
          Alcotest.test_case "laundered randomness" `Quick test_r7_flags_laundered_randomness;
          Alcotest.test_case "transitive chain" `Quick test_r7_transitive_chain;
          Alcotest.test_case "sanctioned in lib/prng" `Quick test_r7_sanctioned_prng_passes;
          Alcotest.test_case "direct use is R1's" `Quick test_r7_leaves_direct_use_to_r1;
          Alcotest.test_case "unreachable helper" `Quick test_r7_unreachable_helper_passes;
        ] );
      ( "R8 metered transport",
        [
          Alcotest.test_case "unattributed send" `Quick test_r8_flags_unattributed_send;
          Alcotest.test_case "field projection" `Quick test_r8_flags_field_projection;
          Alcotest.test_case "span in binding" `Quick test_r8_span_in_binding_passes;
          Alcotest.test_case "span in caller" `Quick test_r8_span_in_caller_passes;
          Alcotest.test_case "plumbing exempt" `Quick test_r8_exempt_plumbing_passes;
        ] );
      ( "R9 cross-domain escape",
        [
          Alcotest.test_case "Splitmix scratch record" `Quick
            test_r9_flags_splitmix_scratch_record;
          Alcotest.test_case "per-call allocation" `Quick test_r9_per_call_allocation_passes;
          Alcotest.test_case "spawn capture" `Quick test_r9_flags_spawn_capture;
          Alcotest.test_case "Atomic capture" `Quick test_r9_atomic_capture_passes;
          Alcotest.test_case "engine exempt" `Quick test_r9_engine_capture_exempt;
        ] );
      ( "R10 dead phases",
        [
          Alcotest.test_case "dead phase" `Quick test_r10_flags_dead_phase;
          Alcotest.test_case "internal refs don't count" `Quick
            test_r10_registry_internal_refs_do_not_count;
        ] );
      ( "report",
        [
          Alcotest.test_case "golden json" `Quick test_golden_json_report;
          Alcotest.test_case "golden sarif" `Quick test_golden_sarif_report;
          Alcotest.test_case "typed analysis deterministic" `Quick
            test_typed_analyze_deterministic;
          Alcotest.test_case "repo lints clean" `Quick test_repo_lints_clean;
          Alcotest.test_case "deterministic report" `Quick test_repo_report_deterministic;
          Alcotest.test_case "phase registry sorted" `Quick test_phase_registry_is_sorted_and_unique;
        ] );
    ]
