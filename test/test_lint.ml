(* intersect-lint: fixture source snippets per rule (violating and
   conforming), allowlist parsing and matching, golden --json output
   under the fixed finding ordering, determinism of the report, and the
   gate that the repository itself lints clean.

   Fixtures are OCaml sources held in strings and linted via
   Driver.lint_source with a chosen virtual path, so each rule's
   structural scoping (lib/prng exempt from R1, lib/obsv from R2, ...)
   is exercised without touching the filesystem. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let rules_of findings = List.map (fun (f : Lint.Finding.t) -> f.rule) findings

let lint ?registry ~path source = Lint.Driver.lint_source ?registry ~path source

let count_rule rule findings = List.length (List.filter (( = ) rule) (rules_of findings))

(* --- R1: determinism ------------------------------------------------- *)

let r1_violating =
  {|
let draw () = Random.int 10
let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
let h x = Hashtbl.hash x
let t () = Hashtbl.create ~random:true 8
|}

let test_r1_flags_ambient_randomness () =
  let findings = lint ~path:"lib/core/fixture.ml" r1_violating in
  check "five R1 findings" 5 (count_rule "R1" findings);
  check "nothing else fires" 5 (List.length findings)

let test_r1_open_random () =
  let findings = lint ~path:"lib/core/fixture.ml" "open Random\nlet draw () = int 10\n" in
  check "open Random is one finding" 1 (count_rule "R1" findings)

let test_r1_stdlib_qualifier_is_stripped () =
  let findings = lint ~path:"lib/core/fixture.ml" "let d () = Stdlib.Random.bits ()\n" in
  check "Stdlib.Random caught" 1 (count_rule "R1" findings)

let test_r1_exempt_in_prng () =
  check "lib/prng is the sanctioned home" 0
    (List.length (lint ~path:"lib/prng/fixture.ml" r1_violating));
  check "seed_stream is exempt" 0
    (List.length (lint ~path:"lib/engine/seed_stream.ml" "let d () = Random.bits ()\n"))

let test_r1_conforming () =
  let src = "let draw rng = Prng.Rng.bits rng\nlet t () = Hashtbl.create ~random:false 8\n" in
  check "seeded draws pass" 0 (List.length (lint ~path:"lib/core/fixture.ml" src))

(* --- R2: ambient state ----------------------------------------------- *)

let test_r2_flags_toplevel_mutable () =
  let src =
    {|
let count = ref 0
let table = Hashtbl.create 16
let slot = Atomic.make None
let lazy_q = lazy (Queue.create ())
module Inner = struct
  let buf = Buffer.create 80
end
|}
  in
  let findings = lint ~path:"lib/core/fixture.ml" src in
  check "five R2 findings (incl. lazy and nested module)" 5 (count_rule "R2" findings)

let test_r2_function_local_state_passes () =
  let src = "let f () =\n  let count = ref 0 in\n  incr count;\n  !count\n" in
  check "local refs are fine" 0 (List.length (lint ~path:"lib/core/fixture.ml" src))

let test_r2_exempt_in_obsv () =
  check "lib/obsv owns ambient state" 0
    (List.length (lint ~path:"lib/obsv/fixture.ml" "let registry = Hashtbl.create 16\n"))

(* --- R3: phase registry ---------------------------------------------- *)

let test_r3_flags_unregistered_span_literal () =
  let src = {|let f () = Obsv.Trace.span "bogus/phase" (fun () -> ())|} in
  let findings = lint ~path:"lib/core/fixture.ml" src in
  check "typo'd phase caught" 1 (count_rule "R3" findings)

let test_r3_registered_literal_passes () =
  let src = {|let f () = Obsv.Trace.span "bucket/assign" (fun () -> ())|} in
  check "registered name passes" 0 (List.length (lint ~path:"lib/core/fixture.ml" src))

let test_r3_constant_passes () =
  let src = "let f () = Obsv.Trace.span Obsv.Phases.bucket_eq (fun () -> ())\n" in
  check "Phases constant passes" 0 (List.length (lint ~path:"lib/core/fixture.ml" src))

let test_r3_custom_registry () =
  let src = {|let f () = Trace.span "custom/phase" ignore|} in
  check "custom registry accepts" 0
    (List.length (lint ~registry:(( = ) "custom/phase") ~path:"lib/core/fixture.ml" src));
  check "custom registry rejects" 1
    (count_rule "R3" (lint ~registry:(fun _ -> false) ~path:"lib/core/fixture.ml" src))

(* --- R4: domain hygiene ---------------------------------------------- *)

let test_r4_flags_domain_outside_engine () =
  let src = "let d f = Domain.spawn f\nlet k () = Domain.DLS.new_key (fun () -> 0)\n" in
  let findings = lint ~path:"lib/core/fixture.ml" src in
  check "spawn and DLS caught" 2 (count_rule "R4" findings)

let test_r4_exempt_in_engine_and_obsv () =
  let src = "let d f = Domain.spawn f\n" in
  check "lib/engine may spawn" 0 (List.length (lint ~path:"lib/engine/pool.ml" src));
  check "lib/obsv may use DLS" 0
    (List.length (lint ~path:"lib/obsv/trace.ml" "let k = Domain.DLS.new_key (fun () -> [])\n"))

let test_r4_join_alone_passes () =
  (* Only spawn/DLS are restricted; e.g. Domain.cpu_relax or
     Domain.recommended_domain_count are harmless reads. *)
  let src = "let n () = Domain.recommended_domain_count ()\n" in
  check "other Domain reads pass" 0 (List.length (lint ~path:"lib/core/fixture.ml" src))

(* --- R6: flight recorder write restriction --------------------------- *)

let test_r6_flags_event_outside_session () =
  let src = {|let f () = Obsv.Recorder.event ~kind:"oops" "narrating from the wrong layer"|} in
  check "recorder write caught" 1 (count_rule "R6" (lint ~path:"lib/workload/fixture.ml" src));
  check "short path caught too" 1
    (count_rule "R6" (lint ~path:"bin/fixture.ml" {|let f () = Recorder.event ~kind:"k" "d"|}))

let test_r6_exempt_in_session_and_obsv () =
  let src = {|let f () = Obsv.Recorder.event ~kind:"ladder" "degrading"|} in
  check "lib/session narrates" 0 (List.length (lint ~path:"lib/session/machine.ml" src));
  check "lib/obsv owns the recorder" 0 (List.length (lint ~path:"lib/obsv/recorder.ml" src))

let test_r6_reads_pass () =
  let src =
    "let dump r = Obsv.Recorder.post_mortem_json r\nlet n r = Obsv.Recorder.recorded r\n"
  in
  check "reading a recorder is open to all" 0
    (List.length (lint ~path:"lib/workload/fixture.ml" src))

(* --- R5: interface coverage ------------------------------------------ *)

let test_r5_missing_mli () =
  let files = [ "lib/core/a.ml"; "lib/core/a.mli"; "lib/core/b.ml"; "bin/cli.ml" ] in
  let findings = Lint.Rules.check_mli_coverage ~files in
  check "one missing interface" 1 (List.length findings);
  check_str "names the .ml" "lib/core/b.ml" (List.hd findings).Lint.Finding.file;
  check_str "rule id" "R5" (List.hd findings).Lint.Finding.rule

(* --- syntax ----------------------------------------------------------- *)

let test_syntax_error_is_a_finding () =
  let findings = lint ~path:"lib/core/fixture.ml" "let = broken (" in
  check "one syntax finding" 1 (count_rule "syntax" findings);
  let findings = lint ~path:"lib/core/fixture.mli" "val : t" in
  check "interfaces are parsed too" 1 (count_rule "syntax" findings)

(* --- allowlist -------------------------------------------------------- *)

let test_allow_parse_and_match () =
  let known = Lint.Rules.rule_ids in
  match Lint.Allow.parse ~known "# header\nR1 bench/ # wall clock\n\nR3 test/\n" with
  | Error e -> Alcotest.fail e
  | Ok entries ->
      check "two entries" 2 (List.length entries);
      check_bool "R1 under bench/ allowed" true
        (Lint.Allow.allows entries ~rule:"R1" ~file:"bench/micro.ml");
      check_bool "R1 elsewhere still fires" false
        (Lint.Allow.allows entries ~rule:"R1" ~file:"lib/core/foo.ml");
      check_bool "R2 under bench/ still fires" false
        (Lint.Allow.allows entries ~rule:"R2" ~file:"bench/micro.ml")

let test_allow_rejects_unknown_rule () =
  check_bool "unknown rule id fails parse" true
    (match Lint.Allow.parse ~known:Lint.Rules.rule_ids "R9 lib/\n" with
    | Error _ -> true
    | Ok _ -> false)

(* --- golden JSON ------------------------------------------------------ *)

let test_golden_json_report () =
  let findings =
    lint ~path:"lib/core/fixture.ml"
      "let now () = Unix.gettimeofday ()\nlet count = ref 0\n"
  in
  let golden =
    {|{"tool":"intersect-lint","files":1,"count":2,"findings":[{"rule":"R1","file":"lib/core/fixture.ml","line":1,"col":13,"message":"Unix.gettimeofday: wall-clock reads are nondeterministic; use the trace's event clock, or allowlist bench-only timing"},{"rule":"R2","file":"lib/core/fixture.ml","line":2,"col":0,"message":"top-level ref is ambient mutable state; keep it behind Obsv's Domain-local wrappers or pass it explicitly"}]}|}
  in
  check_str "golden report" golden
    (Stats.Json.to_string (Lint.Finding.report_json ~files:1 findings))

(* --- the repository itself ------------------------------------------- *)

(* Tests run from _build/default/test; the tree above it carries every
   source file (declared via source_tree deps in test/dune). *)
let repo_root = ".."

let test_repo_lints_clean () =
  match Lint.Driver.run ~root:repo_root () with
  | Error e -> Alcotest.fail e
  | Ok { Lint.Driver.files; findings } ->
      check_bool "scanned a real tree" true (files > 100);
      check_str "no findings"
        ""
        (String.concat "\n" (List.map Lint.Finding.to_line findings))

let test_repo_report_deterministic () =
  let render () =
    match Lint.Driver.run ~root:repo_root () with
    | Error e -> Alcotest.fail e
    | Ok { Lint.Driver.files; findings } ->
        Stats.Json.to_string (Lint.Finding.report_json ~files findings)
  in
  check_str "byte-identical consecutive runs" (render ()) (render ())

let test_phase_registry_is_sorted_and_unique () =
  let all = Obsv.Phases.all in
  check_bool "sorted" true (List.sort String.compare all = all);
  check "unique" (List.length all) (List.length (List.sort_uniq String.compare all));
  check_bool "unattributed registered" true (Obsv.Phases.mem Obsv.Phases.unattributed)

let () =
  Alcotest.run "lint"
    [
      ( "R1 determinism",
        [
          Alcotest.test_case "flags ambient randomness" `Quick test_r1_flags_ambient_randomness;
          Alcotest.test_case "open Random" `Quick test_r1_open_random;
          Alcotest.test_case "Stdlib qualifier" `Quick test_r1_stdlib_qualifier_is_stripped;
          Alcotest.test_case "exempt in lib/prng" `Quick test_r1_exempt_in_prng;
          Alcotest.test_case "conforming" `Quick test_r1_conforming;
        ] );
      ( "R2 ambient state",
        [
          Alcotest.test_case "flags top-level mutable" `Quick test_r2_flags_toplevel_mutable;
          Alcotest.test_case "function-local passes" `Quick test_r2_function_local_state_passes;
          Alcotest.test_case "exempt in lib/obsv" `Quick test_r2_exempt_in_obsv;
        ] );
      ( "R3 phase registry",
        [
          Alcotest.test_case "unregistered literal" `Quick test_r3_flags_unregistered_span_literal;
          Alcotest.test_case "registered literal" `Quick test_r3_registered_literal_passes;
          Alcotest.test_case "Phases constant" `Quick test_r3_constant_passes;
          Alcotest.test_case "custom registry" `Quick test_r3_custom_registry;
        ] );
      ( "R4 domain hygiene",
        [
          Alcotest.test_case "flags outside engine" `Quick test_r4_flags_domain_outside_engine;
          Alcotest.test_case "exempt in engine/obsv" `Quick test_r4_exempt_in_engine_and_obsv;
          Alcotest.test_case "benign Domain reads" `Quick test_r4_join_alone_passes;
        ] );
      ( "R5 interfaces",
        [ Alcotest.test_case "missing .mli" `Quick test_r5_missing_mli ] );
      ( "R6 flight recorder",
        [
          Alcotest.test_case "flags writes outside session" `Quick
            test_r6_flags_event_outside_session;
          Alcotest.test_case "exempt in session/obsv" `Quick test_r6_exempt_in_session_and_obsv;
          Alcotest.test_case "reads pass" `Quick test_r6_reads_pass;
        ] );
      ( "syntax",
        [ Alcotest.test_case "parse errors are findings" `Quick test_syntax_error_is_a_finding ] );
      ( "allowlist",
        [
          Alcotest.test_case "parse and match" `Quick test_allow_parse_and_match;
          Alcotest.test_case "unknown rule rejected" `Quick test_allow_rejects_unknown_rule;
        ] );
      ( "report",
        [
          Alcotest.test_case "golden json" `Quick test_golden_json_report;
          Alcotest.test_case "repo lints clean" `Quick test_repo_lints_clean;
          Alcotest.test_case "deterministic report" `Quick test_repo_report_deterministic;
          Alcotest.test_case "phase registry sorted" `Quick test_phase_registry_is_sorted_and_unique;
        ] );
    ]
