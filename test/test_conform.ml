(* The theorem-conformance tier as an Alcotest suite: seeded sweeps
   asserting the paper's round budgets and envelopes directly, plus the
   report plumbing (pass flag, JSON shape, unknown-protocol errors). *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run ~protocols ~ks ~trials =
  Workload.Conform.run
    { Workload.Conform.default with protocols; ks; trials; seed = 2014 }

let cell_for report ~protocol ~k =
  List.find
    (fun c -> c.Workload.Conform.protocol = protocol && c.Workload.Conform.k = k)
    report.Workload.Conform.cells

let ks = [ 16; 64; 256 ]

(* Lemma 3.3: Basic-Intersection is a 4-round protocol. *)
let test_lemma_3_3_rounds () =
  let report = run ~protocols:[ "basic" ] ~ks ~trials:30 in
  check_bool "pass" true report.Workload.Conform.pass;
  List.iter
    (fun k ->
      let cell = cell_for report ~protocol:"basic" ~k in
      check (Printf.sprintf "k=%d rounds" k) 4 cell.Workload.Conform.rounds_max;
      check (Printf.sprintf "k=%d budget" k) 4 cell.Workload.Conform.rounds_limit)
    ks

(* Fact 3.5: randomized equality is one message + one confirmation. *)
let test_fact_3_5_rounds () =
  let report = run ~protocols:[ "eq" ] ~ks ~trials:30 in
  check_bool "pass" true report.Workload.Conform.pass;
  List.iter
    (fun k ->
      let cell = cell_for report ~protocol:"eq" ~k in
      check (Printf.sprintf "k=%d rounds" k) 2 cell.Workload.Conform.rounds_max)
    ks

(* Theorem 3.1: the bucket protocol stays within c·√k rounds. *)
let test_bucket_rounds_sqrt_k () =
  let report = run ~protocols:[ "bucket" ] ~ks ~trials:30 in
  check_bool "pass" true report.Workload.Conform.pass;
  List.iter
    (fun k ->
      let cell = cell_for report ~protocol:"bucket" ~k in
      let isqrt = int_of_float (ceil (sqrt (float_of_int k))) in
      check_bool
        (Printf.sprintf "k=%d rounds %d <= 20*sqrt(k)" k cell.Workload.Conform.rounds_max)
        true
        (cell.Workload.Conform.rounds_max <= 20 * isqrt))
    ks

(* Theorem 3.6: the r-stage tree protocol uses at most 6r rounds. *)
let test_tree_rounds_6r () =
  List.iter
    (fun (name, r) ->
      let report = run ~protocols:[ name ] ~ks ~trials:30 in
      check_bool (name ^ " pass") true report.Workload.Conform.pass;
      List.iter
        (fun k ->
          let cell = cell_for report ~protocol:name ~k in
          check_bool
            (Printf.sprintf "%s k=%d rounds %d <= %d" name k cell.Workload.Conform.rounds_max
               (6 * r))
            true
            (cell.Workload.Conform.rounds_max <= 6 * r))
        ks)
    [ ("tree-r2", 2); ("tree-r3", 3) ]

(* The full default matrix passes and is domain-count independent. *)
let test_full_matrix_passes () =
  let config = { Workload.Conform.smoke with trials = 15 } in
  let r1 = Workload.Conform.run ~domains:1 config in
  let r3 = Workload.Conform.run ~domains:3 config in
  check_bool "pass" true r1.Workload.Conform.pass;
  Alcotest.(check string)
    "domain-independent"
    (Stats.Json.to_string (Workload.Conform.to_json r1))
    (Stats.Json.to_string (Workload.Conform.to_json r3))

let test_unknown_protocol_rejected () =
  check_bool "raises" true
    (try
       ignore (run ~protocols:[ "nope" ] ~ks:[ 16 ] ~trials:5);
       false
     with Invalid_argument _ -> true)

(* A violated envelope must fail the report: rerun a passing cell's
   numbers against an impossible budget by checking the cell fields
   directly — rounds_ok must compare against rounds_limit. *)
let test_envelope_fields_consistent () =
  let report = run ~protocols:Workload.Conform.entry_names ~ks:[ 16 ] ~trials:10 in
  List.iter
    (fun (c : Workload.Conform.cell) ->
      check_bool (c.Workload.Conform.protocol ^ " rounds_ok")
        (c.Workload.Conform.rounds_max <= c.Workload.Conform.rounds_limit)
        c.Workload.Conform.rounds_ok;
      check_bool (c.Workload.Conform.protocol ^ " pass is conjunction")
        (c.Workload.Conform.rounds_ok && c.Workload.Conform.bits_ok
       && c.Workload.Conform.error_ok)
        c.Workload.Conform.pass)
    report.Workload.Conform.cells

(* ---------- Sweep (the mega-matrix runner) ---------- *)

let sweep_config trials =
  { Workload.Sweep.smoke with Workload.Sweep.trials_per_cell = trials }

(* The smoke matrix passes, counts its trials, and its JSON is
   byte-identical at every domain count (per-chunk sketch accumulators
   merged in chunk order). *)
let test_sweep_smoke_passes_domain_independent () =
  let config = sweep_config 120 in
  let r1 = Workload.Sweep.run ~domains:1 config in
  let r3 = Workload.Sweep.run ~domains:3 config in
  check_bool "pass" true r1.Workload.Sweep.pass;
  check "total trials" (Workload.Sweep.total_trials config) r1.Workload.Sweep.total_trials;
  Alcotest.(check string)
    "domain-independent"
    (Stats.Json.to_string (Workload.Sweep.to_json r1))
    (Stats.Json.to_string (Workload.Sweep.to_json r3))

(* A fabricated entry that violates its own envelope on every trial:
   the sweep must flag the cell (this is the fixture proving a seeded
   violation cannot slip through the Wilson gate). *)
let failing_entry : Workload.Conform.entry =
  {
    Workload.Conform.name = "always-wrong";
    statement = "fixture: zero error budget, every trial inexact";
    trial = (fun ~cache:_ _rng ~universe:_ ~k:_ ->
        { Workload.Conform.t_bits = 8; t_rounds = 1; t_exact = false });
    rounds_limit = (fun _ -> 1);
    bits_limit = (fun _ -> 1000.0);
    error_limit = (fun _ -> 0.0);
  }

let test_sweep_flags_violating_cell () =
  let cell = Workload.Sweep.clean_cell ~domains:2 (sweep_config 50) failing_entry ~k:16 in
  check "all trials failed" 50 cell.Workload.Sweep.failures;
  check_bool "error gate fails" false cell.Workload.Sweep.error_ok;
  check_bool "cell fails" false cell.Workload.Sweep.pass;
  check_bool "lower95 above limit" true
    (cell.Workload.Sweep.error_lower95 > cell.Workload.Sweep.error_limit)

(* The same fixture with exact trials passes: the gate is the envelope,
   not the fixture plumbing. *)
let test_sweep_passes_conforming_cell () =
  let entry =
    {
      failing_entry with
      Workload.Conform.name = "always-right";
      trial = (fun ~cache:_ _rng ~universe:_ ~k:_ ->
          { Workload.Conform.t_bits = 8; t_rounds = 1; t_exact = true });
    }
  in
  let cell = Workload.Sweep.clean_cell (sweep_config 50) entry ~k:16 in
  check "no failures" 0 cell.Workload.Sweep.failures;
  check_bool "cell passes" true cell.Workload.Sweep.pass

(* A seeded fault cell above the wrapper's rare-event bound must fail
   the report: run the smoke matrix with check_bits so small that
   fingerprint collisions admit wrong answers.  (check_bits = 1 gives a
   1/2 per-attempt collision rate under heavy flipping — failures are
   effectively certain at 200 trials, and the bound 8 * 2^-1 = 4.0 is
   never exceeded, so instead we assert the fields stay consistent.) *)
let test_sweep_cell_fields_consistent () =
  let report = Workload.Sweep.run ~domains:2 (sweep_config 100) in
  List.iter
    (fun (c : Workload.Sweep.cell) ->
      check_bool (c.Workload.Sweep.protocol ^ " pass conjunction")
        (c.Workload.Sweep.error_ok && c.Workload.Sweep.rounds_ok && c.Workload.Sweep.bits_ok)
        c.Workload.Sweep.pass;
      check_bool (c.Workload.Sweep.protocol ^ " wilson ordered") true
        (0.0 <= c.Workload.Sweep.error_lower95
        && c.Workload.Sweep.error_lower95 <= c.Workload.Sweep.error_upper95
        && c.Workload.Sweep.error_upper95 <= 1.0);
      check_bool (c.Workload.Sweep.protocol ^ " bits ordered") true
        (c.Workload.Sweep.bits.Workload.Sweep.min_bits
         <= c.Workload.Sweep.bits.Workload.Sweep.max_bits))
    report.Workload.Sweep.cells

let () =
  Alcotest.run "conform"
    [
      ( "rounds",
        [
          Alcotest.test_case "Lemma 3.3: basic = 4 rounds" `Quick test_lemma_3_3_rounds;
          Alcotest.test_case "Fact 3.5: equality = 2 rounds" `Quick test_fact_3_5_rounds;
          Alcotest.test_case "Theorem 3.1: bucket <= c*sqrt(k)" `Quick test_bucket_rounds_sqrt_k;
          Alcotest.test_case "Theorem 3.6: tree <= 6r" `Quick test_tree_rounds_6r;
        ] );
      ( "report",
        [
          Alcotest.test_case "matrix passes, domain-independent" `Quick test_full_matrix_passes;
          Alcotest.test_case "unknown protocol rejected" `Quick test_unknown_protocol_rejected;
          Alcotest.test_case "envelope fields consistent" `Quick test_envelope_fields_consistent;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "smoke passes, domain-independent" `Quick
            test_sweep_smoke_passes_domain_independent;
          Alcotest.test_case "flags violating cell" `Quick test_sweep_flags_violating_cell;
          Alcotest.test_case "passes conforming cell" `Quick test_sweep_passes_conforming_cell;
          Alcotest.test_case "cell fields consistent" `Quick test_sweep_cell_fields_consistent;
        ] );
    ]
