(* Hot-path optimization invariance tests.

   The pooling (Bitio.Pool), codec caching (Bitio.Memo) and native-limb
   PRNG paths are pure performance changes: every test here pins the
   contract that they leave results, costs and wire bits exactly as the
   unoptimized paths produce them — for all registered protocols, under
   injected channel damage, and across domain counts. *)

open Intersect

let iset = Alcotest.testable Iset.pp Iset.equal
let bits_t = Alcotest.testable Bitio.Bits.pp Bitio.Bits.equal
let check_int = Alcotest.(check int)

let universe = 1 lsl 16

(* Both caches off: the pre-optimization execution path. *)
let unoptimized f = Bitio.Pool.bypassed (fun () -> Bitio.Memo.bypassed f)

let run_protocol ~name ~k =
  let protocol = Workload.Regress.protocol_of ~name ~k in
  let pair =
    Workload.Setgen.pair_with_overlap
      (Prng.Rng.of_int (1000 + (String.length name * 37) + k))
      ~universe ~size_s:k ~size_t:k ~overlap:(k / 2)
  in
  protocol.Protocol.run (Prng.Rng.of_int 123) ~universe pair.Workload.Setgen.s
    pair.Workload.Setgen.t

(* Every registered protocol: pooled/cached vs bypassed runs must agree on
   outputs and on every deterministic cost field. *)
let test_registered_suite_bypass_identical () =
  List.iter
    (fun name ->
      let k = 48 in
      let baseline = unoptimized (fun () -> run_protocol ~name ~k) in
      let optimized = run_protocol ~name ~k in
      Alcotest.check iset (name ^ " alice") baseline.Protocol.alice optimized.Protocol.alice;
      Alcotest.check iset (name ^ " bob") baseline.Protocol.bob optimized.Protocol.bob;
      check_int (name ^ " bits") baseline.Protocol.cost.Commsim.Cost.total_bits
        optimized.Protocol.cost.Commsim.Cost.total_bits;
      check_int (name ^ " messages") baseline.Protocol.cost.Commsim.Cost.messages
        optimized.Protocol.cost.Commsim.Cost.messages;
      check_int (name ^ " rounds") baseline.Protocol.cost.Commsim.Cost.rounds
        optimized.Protocol.cost.Commsim.Cost.rounds)
    Workload.Regress.protocol_names

(* Payload builders: the pooled writers must emit byte-identical wire bits
   (not just equal costs). *)
let test_wire_payloads_bit_identical () =
  let set = [| 3; 17; 100; 4095; 65535 |] in
  let iset_of a = Iset.of_array a in
  let pooled = Wire.of_set (iset_of set) in
  let plain = unoptimized (fun () -> Wire.of_set (iset_of set)) in
  Alcotest.check bits_t "of_set" plain pooled;
  Alcotest.check bits_t "gamma_msg" (unoptimized (fun () -> Wire.gamma_msg 777)) (Wire.gamma_msg 777);
  let flags = Array.init 97 (fun i -> i mod 3 = 0) in
  Alcotest.check bits_t "bitmap_msg" (unoptimized (fun () -> Wire.bitmap_msg flags))
    (Wire.bitmap_msg flags)

(* The binomial memo is invisible: cached coefficients and codec widths
   equal the direct bignum computation, and the enumerative codec emits
   identical bits with and without the cache. *)
let test_memo_transparent () =
  List.iter
    (fun (n, k) ->
      let cached = Bitio.Memo.binomial n k in
      let direct = Bitio.Memo.bypassed (fun () -> Bitio.Memo.binomial n k) in
      Alcotest.(check bool)
        (Printf.sprintf "C(%d,%d)" n k)
        true
        (Bitio.Bignat.equal direct cached);
      check_int
        (Printf.sprintf "bits C(%d,%d)" n k)
        (Bitio.Memo.bypassed (fun () -> Bitio.Memo.binomial_bits ~n ~k))
        (Bitio.Memo.binomial_bits ~n ~k))
    [ (0, 0); (1, 0); (64, 32); (256, 17); (1024, 3); (4096, 2) ];
  let set = Array.init 24 (fun i -> (i * 131) mod 4096) in
  Array.sort compare set;
  let encode () =
    let buf = Bitio.Bitbuf.create ~capacity:256 () in
    Bitio.Enum_codec.write buf ~universe:4096 set;
    Bitio.Bitbuf.contents buf
  in
  Alcotest.check bits_t "enum codec" (unoptimized encode) (encode ())

(* Injected channel damage: the soak harness drives Faults-damaged
   executions end to end; its full report (including damage tallies and
   per-cell outcomes) must not notice the caches. *)
let test_faults_damage_bypass_identical () =
  let report () =
    Stats.Json.to_string (Workload.Soak.to_json (Workload.Soak.run ~domains:1 Workload.Soak.smoke))
  in
  let baseline = unoptimized report in
  Alcotest.(check string) "soak report under damage" baseline (report ())

(* Domain-parallel trials: the DLS-backed pool and memo are per-domain, so
   running the same seeded trials on one or two domains must produce the
   same per-trial costs. *)
let test_domains_identical () =
  let trial i =
    let outcome = run_protocol ~name:"bucket" ~k:(32 + (4 * i)) in
    ( outcome.Protocol.cost.Commsim.Cost.total_bits,
      outcome.Protocol.cost.Commsim.Cost.messages,
      Iset.cardinal outcome.Protocol.alice )
  in
  let seq = Engine.Pool.map ~domains:1 ~trials:4 trial in
  let par = Engine.Pool.map ~domains:2 ~trials:4 trial in
  Array.iteri
    (fun i (bits, msgs, card) ->
      let bits', msgs', card' = par.(i) in
      check_int (Printf.sprintf "trial %d bits" i) bits bits';
      check_int (Printf.sprintf "trial %d messages" i) msgs msgs';
      check_int (Printf.sprintf "trial %d cardinal" i) card card')
    seq

(* The native-limb SplitMix64 against the published vectors and an inline
   Int64 reference, and the unboxed [step]/[out_hi]/[out_lo] face against
   [next]. *)
let ref_splitmix state =
  let s = Int64.add !state 0x9E3779B97F4A7C15L in
  state := s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let test_splitmix_reference () =
  let g = Prng.Splitmix64.create 0L in
  List.iter
    (fun expected -> Alcotest.(check int64) "vector (seed 0)" expected (Prng.Splitmix64.next g))
    [ 0xE220A8397B1DCDAFL; 0x6E789E6AA1B965F4L; 0x06C45D188009454FL ];
  for seed = 0 to 99 do
    let s = Int64.mul (Int64.of_int ((seed * 2654435761) + 1)) 0x9E3779B97F4A7C15L in
    let g = Prng.Splitmix64.create s in
    let r = ref s in
    for _ = 1 to 200 do
      Alcotest.(check int64) "limb = Int64 reference" (ref_splitmix r) (Prng.Splitmix64.next g)
    done
  done;
  let a = Prng.Splitmix64.create 42L and b = Prng.Splitmix64.create 42L in
  for _ = 1 to 100 do
    let boxed = Prng.Splitmix64.next a in
    Prng.Splitmix64.step b;
    let unboxed =
      Int64.logor
        (Int64.shift_left (Int64.of_int (Prng.Splitmix64.out_hi b)) 32)
        (Int64.of_int (Prng.Splitmix64.out_lo b))
    in
    Alcotest.(check int64) "step/out = next" boxed unboxed
  done

(* The unboxed draw paths (bits / bool / float) against their Int64
   formulations, sharing one reference stream. *)
let test_rng_draws_reference () =
  let seed = 0x1234_5678_9ABCL in
  let rng = Prng.Rng.of_seed seed in
  let r = ref seed in
  for i = 1 to 500 do
    let width = 1 + (i * 17 mod 62) in
    let want = Int64.to_int (Int64.shift_right_logical (ref_splitmix r) (64 - width)) in
    check_int "bits" want (Prng.Rng.bits rng ~width);
    Alcotest.(check bool) "bool" (Int64.compare (ref_splitmix r) 0L < 0) (Prng.Rng.bool rng);
    let wantf =
      float_of_int (Int64.to_int (Int64.shift_right_logical (ref_splitmix r) 11))
      /. 9007199254740992.0
    in
    Alcotest.(check (float 0.0)) "float" wantf (Prng.Rng.float rng)
  done

(* The native-limb FNV-1a behind [Rng.with_label], via an inline Int64
   reference of the full label-derivation pipeline. *)
let ref_fnv1a64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L) s;
  !h

let test_with_label_reference () =
  List.iter
    (fun label ->
      let root = 0x0FEDCBA987654321L in
      let derived = Prng.Rng.with_label (Prng.Rng.of_seed root) label in
      let reference =
        Prng.Rng.of_seed (Prng.Splitmix64.mix (Int64.logxor root (ref_fnv1a64 label)))
      in
      for _ = 1 to 50 do
        check_int ("with_label " ^ label)
          (Prng.Rng.bits reference ~width:62)
          (Prng.Rng.bits derived ~width:62)
      done)
    [ ""; "a"; "regress/bucket/k1024"; "eqb/joint/g7/t3"; "tree/bi/leaf12/run2" ]

let () =
  Alcotest.run "hotpath"
    [
      ( "invariance",
        [
          Alcotest.test_case "registered suite, caches bypassed vs on" `Quick
            test_registered_suite_bypass_identical;
          Alcotest.test_case "wire payloads bit-identical" `Quick test_wire_payloads_bit_identical;
          Alcotest.test_case "binomial memo transparent" `Quick test_memo_transparent;
          Alcotest.test_case "faults damage, caches bypassed vs on" `Slow
            test_faults_damage_bypass_identical;
          Alcotest.test_case "domains 1 vs 2" `Quick test_domains_identical;
        ] );
      ( "prng",
        [
          Alcotest.test_case "splitmix64 limb vs reference" `Quick test_splitmix_reference;
          Alcotest.test_case "rng draws vs reference" `Quick test_rng_draws_reference;
          Alcotest.test_case "with_label vs reference" `Quick test_with_label_reference;
        ] );
    ]
