(* Cross-cutting integration tests: determinism (same seed, same run),
   the agreement-implies-exactness consequence of the sandwich contract
   (Corollary 3.4 / Proposition 3.9), and golden cost regressions. *)

open Intersect

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let iset = Alcotest.testable (fun ppf s -> Iset.pp ppf s) Iset.equal

let protocols_under_test k =
  [
    Trivial.protocol;
    One_round_hash.protocol ();
    Basic_intersection.protocol ~failure:0.01;
    Bucket_protocol.protocol ~k ();
    Tree_protocol.protocol ~r:2 ~k ();
    Tree_protocol.protocol ~r:4 ~k ();
    Tree_protocol.protocol_log_star ~k ();
    Verified.protocol (Tree_protocol.protocol ~r:2 ~k ());
    Private_coin.protocol (Tree_protocol.protocol ~r:2 ~k ());
  ]

let test_protocols_deterministic () =
  let k = 48 in
  let pair =
    Workload.Setgen.pair_with_overlap (Prng.Rng.of_int 77) ~universe:100000 ~size_s:k ~size_t:k
      ~overlap:17
  in
  List.iter
    (fun protocol ->
      let run () =
        protocol.Protocol.run (Prng.Rng.of_int 123) ~universe:100000 pair.Workload.Setgen.s
          pair.Workload.Setgen.t
      in
      let a = run () and b = run () in
      Alcotest.check iset (protocol.Protocol.name ^ " alice") a.Protocol.alice b.Protocol.alice;
      Alcotest.check iset (protocol.Protocol.name ^ " bob") a.Protocol.bob b.Protocol.bob;
      check (protocol.Protocol.name ^ " bits") a.Protocol.cost.Commsim.Cost.total_bits
        b.Protocol.cost.Commsim.Cost.total_bits;
      check (protocol.Protocol.name ^ " rounds") a.Protocol.cost.Commsim.Cost.rounds
        b.Protocol.cost.Commsim.Cost.rounds)
    (protocols_under_test k)

let test_multiparty_deterministic () =
  let sets =
    Workload.Setgen.family_with_core (Prng.Rng.of_int 5) ~universe:100000 ~players:6 ~size:24
      ~core:6
  in
  let star () = Multiparty.Star.run (Prng.Rng.of_int 9) ~universe:100000 ~k:24 sets in
  let r1, c1 = star () and r2, c2 = star () in
  Alcotest.check iset "star result" r1 r2;
  check "star bits" c1.Commsim.Cost.total_bits c2.Commsim.Cost.total_bits;
  let tour () = Multiparty.Tournament.run (Prng.Rng.of_int 9) ~universe:100000 ~k:24 sets in
  let t1, d1 = tour () and t2, d2 = tour () in
  Alcotest.check iset "tournament result" t1 t2;
  check "tournament bits" d1.Commsim.Cost.total_bits d2.Commsim.Cost.total_bits

(* Corollary 3.4 / Proposition 3.9: for sandwich protocols, whenever the
   two candidate outputs agree they are exactly the intersection — even
   when the protocol is run far below its nominal confidence. *)
let test_agreement_implies_exact () =
  let sloppy =
    [
      Basic_intersection.protocol ~failure:0.49;
      One_round_hash.protocol ~confidence:1 ();
      Tree_protocol.protocol ~flat_eq_bits:2 ~r:2 ();
    ]
  in
  let agreements = ref 0 in
  for seed = 1 to 150 do
    let pair =
      Workload.Setgen.pair_with_overlap
        (Prng.Rng.of_int (3000 + seed))
        ~universe:5000 ~size_s:25 ~size_t:25 ~overlap:8
    in
    List.iter
      (fun protocol ->
        let outcome =
          protocol.Protocol.run (Prng.Rng.of_int seed) ~universe:5000 pair.Workload.Setgen.s
            pair.Workload.Setgen.t
        in
        check_bool "sandwich" true
          (Protocol.sandwich_holds outcome ~s:pair.Workload.Setgen.s ~t:pair.Workload.Setgen.t);
        if Protocol.agreed outcome then begin
          incr agreements;
          check_bool "agreement implies exact" true
            (Protocol.exact outcome ~s:pair.Workload.Setgen.s ~t:pair.Workload.Setgen.t)
        end)
      sloppy
  done;
  (* the test is vacuous if nothing ever agreed *)
  check_bool "some runs agreed" true (!agreements > 50)

(* Golden numbers: exact costs for pinned seeds.  These protect the cost
   accounting (codec widths, batching, round structure) from silent
   regressions; update deliberately when the wire format changes. *)
let golden_cost protocol ~universe ~k ~overlap ~seed =
  let pair =
    Workload.Setgen.pair_with_overlap
      (Prng.Rng.of_int (seed * 31))
      ~universe ~size_s:k ~size_t:k ~overlap
  in
  let outcome =
    protocol.Protocol.run (Prng.Rng.of_int seed) ~universe pair.Workload.Setgen.s
      pair.Workload.Setgen.t
  in
  (outcome.Protocol.cost.Commsim.Cost.total_bits, outcome.Protocol.cost.Commsim.Cost.rounds)

(* The engine's schedule-independence contract, end to end: the soak and
   conformance reports (whole JSON documents, numbers and ordering both)
   must not depend on how many domains ran the trials. *)
let test_soak_domain_independent () =
  let config = { Workload.Soak.smoke with Workload.Soak.trials = 8 } in
  let json domains =
    Stats.Json.to_string_pretty (Workload.Soak.to_json (Workload.Soak.run ~domains config))
  in
  let d1 = json 1 in
  Alcotest.(check string) "2 domains" d1 (json 2);
  Alcotest.(check string) "4 domains" d1 (json 4)

let test_conform_domain_independent () =
  let config = { Workload.Conform.smoke with Workload.Conform.trials = 8 } in
  let json domains =
    Stats.Json.to_string_pretty (Workload.Conform.to_json (Workload.Conform.run ~domains config))
  in
  let d1 = json 1 in
  Alcotest.(check string) "2 domains" d1 (json 2);
  Alcotest.(check string) "4 domains" d1 (json 4)

(* Obsv exports collected on worker domains merge to the same ledger as a
   sequential run: trace collection is domain-local, so per-trial
   collectors never interleave. *)
let test_obsv_merge_domain_independent () =
  let k = 32 in
  let universe = 1 lsl 16 in
  let protocol = Bucket_protocol.protocol ~k () in
  let stream = Engine.Seed_stream.create ~base:99 ~label:"det/obsv" in
  let ledgers domains =
    Engine.Pool.map ~domains ~trials:6 (fun i ->
        let rng = Engine.Seed_stream.trial_rng stream (i + 1) in
        let pair =
          Workload.Setgen.pair_with_overlap
            (Prng.Rng.with_label rng "pair")
            ~universe ~size_s:k ~size_t:k ~overlap:(k / 2)
        in
        let collector = Obsv.Trace.create () in
        Obsv.Trace.with_collector collector (fun () ->
            ignore
              (protocol.Protocol.run
                 (Prng.Rng.with_label rng "run")
                 ~universe pair.Workload.Setgen.s pair.Workload.Setgen.t));
        Obsv.Export.phases collector)
    |> Array.to_list |> Obsv.Export.merge_phases |> Obsv.Export.phases_json_of
    |> Stats.Json.to_string_pretty
  in
  let d1 = ledgers 1 in
  Alcotest.(check string) "2 domains" d1 (ledgers 2);
  Alcotest.(check string) "4 domains" d1 (ledgers 4)

let test_golden_costs () =
  let cases =
    [
      ("trivial", Trivial.protocol, (6906, 2));
      ("one-round", One_round_hash.protocol (), (16418, 1));
      ("tree r=2", Tree_protocol.protocol ~r:2 ~k:256 (), (12844, 6));
      ("tree r=4", Tree_protocol.protocol ~r:4 ~k:256 (), (9602, 12));
      ("bucket", Bucket_protocol.protocol ~k:256 (), (6236, 180));
    ]
  in
  List.iter
    (fun (name, protocol, expected) ->
      let got = golden_cost protocol ~universe:(1 lsl 20) ~k:256 ~overlap:128 ~seed:2014 in
      Alcotest.(check (pair int int)) name expected got)
    cases

let () =
  Alcotest.run "determinism"
    [
      ( "determinism",
        [
          Alcotest.test_case "two-party protocols" `Quick test_protocols_deterministic;
          Alcotest.test_case "multi-party protocols" `Quick test_multiparty_deterministic;
          Alcotest.test_case "soak domain-independent" `Quick test_soak_domain_independent;
          Alcotest.test_case "conform domain-independent" `Quick test_conform_domain_independent;
          Alcotest.test_case "obsv merge domain-independent" `Quick
            test_obsv_merge_domain_independent;
        ] );
      ( "corollary-3.4",
        [ Alcotest.test_case "agreement implies exact" `Quick test_agreement_implies_exact ] );
      ("golden", [ Alcotest.test_case "pinned costs" `Quick test_golden_costs ]);
    ]
