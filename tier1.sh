#!/bin/sh
# Tier-1 gate: full build + test suite, then a seconds-scale soak smoke of
# the resilient wrapper against adversarial channels (exits non-zero if any
# cell violates the paper's error bound).
set -eu
cd "$(dirname "$0")"

dune build
dune runtest
dune exec bench/soak.exe -- --smoke --trials 12
