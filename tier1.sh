#!/bin/sh
# Tier-1 gate: static analysis, full build + test suite, a seconds-scale
# soak smoke of the resilient wrapper against adversarial channels (exits
# non-zero if any cell violates the paper's error bound), a chaos
# campaign smoke of the session robustness layer (never a wrong
# intersection, resumes replay identically), an observability smoke:
# the trace subcommand must emit valid JSON and the profile subcommand
# must account for every metered bit (it exits non-zero on a phase-sum
# mismatch), a fleet-telemetry smoke (overhead bound, byte-identical
# streams across domain counts, green health verdict), and the
# experiment-registry gate (experiments/ coherence + regen smoke).
set -eu
cd "$(dirname "$0")"

dune build
dune runtest

# Static invariant gate: the whole tree must lint clean — the syntactic
# rules (determinism, ambient state, phase registry, domain hygiene,
# interface coverage, flight-recorder writes — R1..R6) plus the typed
# cross-module pass over the .cmt artifacts (determinism taint,
# metered-transport accounting, cross-domain escape, dead phases —
# R7..R10; see DESIGN.md "Static analysis" and "Typed analysis").  The
# JSON report and the SARIF export must pass their schema validators,
# and the linter must be deterministic: two consecutive runs over the
# same tree are byte-identical, in both formats.
dune build @check @lint
dune exec bin/intersect_lint.exe -- --json | ./_build/default/bin/json_check.exe --lint-report
dune exec bin/intersect_lint.exe -- --sarif | ./_build/default/bin/json_check.exe --lint-sarif
lint_a=$(mktemp) && lint_b=$(mktemp)
trap 'rm -f "$lint_a" "$lint_b"' EXIT
dune exec bin/intersect_lint.exe -- --json > "$lint_a"
dune exec bin/intersect_lint.exe -- --json > "$lint_b"
cmp "$lint_a" "$lint_b"
dune exec bin/intersect_lint.exe -- --sarif > "$lint_a"
dune exec bin/intersect_lint.exe -- --sarif > "$lint_b"
cmp "$lint_a" "$lint_b"

dune exec bench/soak.exe -- --smoke --trials 12

dune exec bin/intersect_cli.exe -- trace --protocol bucket -k 64 --seed 1 \
  | ./_build/default/bin/json_check.exe
dune exec bin/intersect_cli.exe -- profile --protocol bucket -k 64 --seed 1 > /dev/null

# Engine smoke: the theorem-conformance tier on two worker domains (exits
# non-zero on any envelope violation), and the engine's determinism
# contract — the soak report must be byte-identical at 1 and 2 domains.
dune exec bin/intersect_cli.exe -- conform --smoke --domains 2 > /dev/null
soak_d1=$(mktemp) && soak_d2=$(mktemp)
trap 'rm -f "$lint_a" "$lint_b" "$soak_d1" "$soak_d2"' EXIT
dune exec bin/intersect_cli.exe -- soak --smoke --trials 8 --json --domains 1 > "$soak_d1"
dune exec bin/intersect_cli.exe -- soak --smoke --trials 8 --json --domains 2 > "$soak_d2"
cmp "$soak_d1" "$soak_d2"

# Chaos campaign smoke: the committed BENCH_chaos.json must be
# schema-valid (outcome taxonomy partitions the trials, zero wrong
# intersections, every resume replayed identically), a seconds-scale
# campaign must uphold the same invariant live (chaos.exe exits non-zero
# on any violation), and two runs of the same campaign must emit
# byte-identical reports.
./_build/default/bin/json_check.exe --bench-chaos < BENCH_chaos.json
chaos_a=$(mktemp) && chaos_b=$(mktemp)
trap 'rm -f "$lint_a" "$lint_b" "$soak_d1" "$soak_d2" "$chaos_a" "$chaos_b"' EXIT
dune exec bench/chaos.exe -- --smoke --json > "$chaos_a"
dune exec bench/chaos.exe -- --smoke --json --domains 2 > "$chaos_b"
cmp "$chaos_a" "$chaos_b"

# Hot-path regression smoke: the committed BENCH_hotpath.json must be
# schema-valid, the k=64 sweep must reproduce its deterministic fields
# (bits / messages / rounds) exactly — timings get a generous 4x headroom
# so shared CI machines don't flake — and two runs of the same config must
# emit byte-identical deterministic reports.
./_build/default/bin/json_check.exe --bench-hotpath < BENCH_hotpath.json
dune exec bench/regress.exe -- --smoke --trials 3 --baseline BENCH_hotpath.json --tolerance 3.0 > /dev/null
det_a=$(mktemp) && det_b=$(mktemp)
trap 'rm -f "$lint_a" "$lint_b" "$soak_d1" "$soak_d2" "$chaos_a" "$chaos_b" "$det_a" "$det_b"' EXIT
dune exec bench/regress.exe -- --smoke --deterministic-json > "$det_a"
dune exec bench/regress.exe -- --smoke --deterministic-json > "$det_b"
cmp "$det_a" "$det_b"

# Mega-sweep smoke: the committed BENCH_sweep.json must be schema-valid
# (Wilson bounds ordered, per-cell gate conjunction, trial counts summing
# to total_trials), a seconds-scale smoke matrix must pass its envelopes
# live (sweep.exe exits non-zero on any violating cell), the report must
# be byte-identical at 1 and 2 worker domains, and the bucket k=1024 hot
# path must not allocate more per trial than the committed seed baseline.
./_build/default/bin/json_check.exe --bench-sweep < BENCH_sweep.json
sweep_d1=$(mktemp) && sweep_d2=$(mktemp)
trap 'rm -f "$lint_a" "$lint_b" "$soak_d1" "$soak_d2" "$chaos_a" "$chaos_b" "$det_a" "$det_b" "$sweep_d1" "$sweep_d2"' EXIT
dune exec bench/sweep.exe -- --smoke --trials 60 --json --domains 1 > "$sweep_d1"
dune exec bench/sweep.exe -- --smoke --trials 60 --json --domains 2 > "$sweep_d2"
cmp "$sweep_d1" "$sweep_d2"
./_build/default/bin/json_check.exe --bench-sweep < "$sweep_d1"
dune exec bench/main.exe -- --alloc-gate

# Fleet telemetry smoke: the committed BENCH_telemetry.json must be
# schema-valid (including the 1.25x enabled/disabled overhead bound), a
# live seconds-scale overhead run must keep its deterministic fields
# identical between the passes (generous 3x timing headroom for shared CI
# machines), the chaos telemetry stream must be byte-identical run-to-run
# and across domain counts, and the health/top views must come back green
# on the default (deadline-squeeze-free) campaign set.
./_build/default/bin/json_check.exe --bench-telemetry < BENCH_telemetry.json
dune exec bench/telemetry.exe -- --smoke --max-ratio 3.0 > /dev/null
tel_a=$(mktemp) && tel_b=$(mktemp) && tel_d2=$(mktemp)
trap 'rm -f "$lint_a" "$lint_b" "$soak_d1" "$soak_d2" "$chaos_a" "$chaos_b" "$det_a" "$det_b" "$tel_a" "$tel_b" "$tel_d2"' EXIT
dune exec bench/chaos.exe -- --smoke --trials 4 --telemetry "$tel_a" > /dev/null
dune exec bench/chaos.exe -- --smoke --trials 4 --telemetry "$tel_b" > /dev/null
dune exec bench/chaos.exe -- --smoke --trials 4 --telemetry "$tel_d2" --domains 2 > /dev/null
cmp "$tel_a" "$tel_b"
cmp "$tel_a" "$tel_d2"
dune exec bin/intersect_cli.exe -- health --smoke --trials 4 > /dev/null
dune exec bin/intersect_cli.exe -- top --smoke --trials 4 --no-ansi > /dev/null

# Experiment-registry gate: every experiments/NNN-slug.md must verify
# (dense ids, live reproduce commands, existing schema-valid BENCH
# artifacts, resolving EXPERIMENTS.md/README.md cross-links), the
# committed experiments.json must be schema-valid and byte-identical to
# a fresh export (twice, so the export itself is deterministic), and the
# regen smoke must re-derive every Complete entry's deterministic fields
# unchanged (gate entries exit 0, diff entries emit byte-identical
# stdout across two runs).
dune build @experiments
./_build/default/bin/json_check.exe --experiments < experiments.json
exp_a=$(mktemp) && exp_b=$(mktemp)
trap 'rm -f "$lint_a" "$lint_b" "$soak_d1" "$soak_d2" "$chaos_a" "$chaos_b" "$det_a" "$det_b" "$sweep_d1" "$sweep_d2" "$tel_a" "$tel_b" "$tel_d2" "$exp_a" "$exp_b"' EXIT
./_build/default/bin/intersect_cli.exe experiments export > "$exp_a"
./_build/default/bin/intersect_cli.exe experiments export > "$exp_b"
cmp "$exp_a" "$exp_b"
cmp "$exp_a" experiments.json
./_build/default/bin/intersect_cli.exe experiments verify --regen-smoke > /dev/null

# Documentation gate, where odoc is installed (the CI image may not ship
# it): the API docs must build without warnings-as-errors regressions.
if command -v odoc > /dev/null 2>&1; then
  dune build @doc
fi

# Formatting gate, where the formatter is installed (the CI image may not
# ship ocamlformat; .ocamlformat pins the profile either way).
if command -v ocamlformat > /dev/null 2>&1; then
  dune build @fmt
fi
