bench/main.ml: Arg Cmd Cmdliner List Micro Printf String Tables Term Unix
