bench/main.mli:
