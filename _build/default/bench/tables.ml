(* The experiment harness: one table per entry of the DESIGN.md experiment
   matrix.  The paper (PODC'14 theory) has no empirical section, so each
   table validates the *shape* a theorem predicts: communication scaling,
   round counts, trade-offs, failure rates.  EXPERIMENTS.md records the
   predicted-vs-measured reading of each table. *)

open Intersect

let base_seed = 20140715 (* PODC'14 *)

let rng_of ~table ~seed = Prng.Rng.with_label (Prng.Rng.of_int (base_seed + seed)) table

let gen_pair ~table ~seed ~universe ~k ~overlap =
  Workload.Setgen.pair_with_overlap
    (Prng.Rng.with_label (Prng.Rng.of_int (seed * 7919)) (table ^ "/workload"))
    ~universe ~size_s:k ~size_t:k ~overlap

type run_stats = {
  bits : Stats.Summary.t;
  rounds : Stats.Summary.t;
  messages : Stats.Summary.t;
  exact_rate : float;
}

(* Run [protocol] on [trials] fresh instances and summarize the costs. *)
let measure ?(trials = 5) ~table ~universe ~k ~overlap protocol =
  let bits = ref [] and rounds = ref [] and messages = ref [] in
  let exact = ref 0 in
  for seed = 1 to trials do
    let pair = gen_pair ~table ~seed ~universe ~k ~overlap in
    let outcome =
      protocol.Protocol.run (rng_of ~table ~seed) ~universe pair.Workload.Setgen.s
        pair.Workload.Setgen.t
    in
    bits := outcome.Protocol.cost.Commsim.Cost.total_bits :: !bits;
    rounds := outcome.Protocol.cost.Commsim.Cost.rounds :: !rounds;
    messages := outcome.Protocol.cost.Commsim.Cost.messages :: !messages;
    if Protocol.exact outcome ~s:pair.Workload.Setgen.s ~t:pair.Workload.Setgen.t then incr exact
  done;
  {
    bits = Stats.Summary.of_ints !bits;
    rounds = Stats.Summary.of_ints !rounds;
    messages = Stats.Summary.of_ints !messages;
    exact_rate = float_of_int !exact /. float_of_int trials;
  }

let cell_bits_per_k summary k = Stats.Table.cell_float (summary.Stats.Summary.mean /. float_of_int k)

(* ------------------------------------------------------------------ *)
(* T1 + T2: Theorem 3.6 — bits ~ O(k log^(r) k), rounds <= 6r.         *)
(* ------------------------------------------------------------------ *)

let t1_t2 ~quick () =
  let ks = if quick then [ 256; 1024 ] else [ 256; 1024; 4096; 16384 ] in
  let rs = [ 1; 2; 3; 4; 5; 6 ] in
  let trials = if quick then 3 else 5 in
  let universe = 1 lsl 20 in
  let t1 =
    Stats.Table.create
      ~title:
        "T1 (Thm 3.6): tree-protocol communication vs rounds budget r  [n=2^20, |S|=|T|=k, overlap k/2]"
      ~columns:[ "k"; "r"; "bits (mean)"; "bits/k"; "log^(r) k"; "bits/(k log^(r) k)"; "exact" ]
  in
  let t2 =
    Stats.Table.create ~title:"T2 (Thm 3.6): measured rounds vs the 6r bound"
      ~columns:[ "k"; "r"; "rounds (mean)"; "rounds (max)"; "4r"; "6r"; "messages (mean)" ]
  in
  List.iter
    (fun k ->
      List.iter
        (fun r ->
          let stats =
            measure ~trials ~table:(Printf.sprintf "T1/k%d/r%d" k r) ~universe ~k ~overlap:(k / 2)
              (Tree_protocol.protocol ~r ~k ())
          in
          let ilog_r = Iterated_log.ilog r k in
          Stats.Table.add_row t1
            [
              Stats.Table.cell_int k;
              Stats.Table.cell_int r;
              Stats.Table.cell_float stats.bits.Stats.Summary.mean;
              cell_bits_per_k stats.bits k;
              Stats.Table.cell_int ilog_r;
              Stats.Table.cell_float
                (stats.bits.Stats.Summary.mean /. float_of_int (k * max 1 ilog_r));
              Stats.Table.cell_float ~decimals:2 stats.exact_rate;
            ];
          Stats.Table.add_row t2
            [
              Stats.Table.cell_int k;
              Stats.Table.cell_int r;
              Stats.Table.cell_float stats.rounds.Stats.Summary.mean;
              Stats.Table.cell_float ~decimals:0 stats.rounds.Stats.Summary.max;
              Stats.Table.cell_int (4 * r);
              Stats.Table.cell_int (6 * r);
              Stats.Table.cell_float stats.messages.Stats.Summary.mean;
            ])
        rs)
    ks;
  [ t1; t2 ]

(* ------------------------------------------------------------------ *)
(* F1: bits/k vs k for every two-party protocol (the "figure").        *)
(* ------------------------------------------------------------------ *)

let f1 ~quick () =
  let ks = if quick then [ 64; 256; 1024 ] else [ 64; 256; 1024; 4096; 16384 ] in
  let trials = if quick then 3 else 5 in
  let universe = 1 lsl 44 in
  let table =
    Stats.Table.create
      ~title:
        "F1: bits per element vs k, by protocol  [n=2^44; trivial grows with log(n/k), tree(log* k) stays flat]"
      ~columns:[ "k"; "trivial"; "one-round-hash"; "tree r=1"; "tree r=2"; "tree r=3"; "tree r=log*k"; "bucket sqrt-k" ]
  in
  List.iter
    (fun k ->
      let protocols =
        [
          Trivial.protocol;
          One_round_hash.protocol ();
          Tree_protocol.protocol ~r:1 ~k ();
          Tree_protocol.protocol ~r:2 ~k ();
          Tree_protocol.protocol ~r:3 ~k ();
          Tree_protocol.protocol_log_star ~k ();
          Bucket_protocol.protocol ~k ();
        ]
      in
      let cells =
        List.mapi
          (fun i protocol ->
            let stats =
              measure ~trials ~table:(Printf.sprintf "F1/k%d/p%d" k i) ~universe ~k
                ~overlap:(k / 2) protocol
            in
            cell_bits_per_k stats.bits k)
          protocols
      in
      Stats.Table.add_row table (Stats.Table.cell_int k :: cells))
    ks;
  [ table ]

(* ------------------------------------------------------------------ *)
(* T3: Theorem 3.1 — O(k) bits, O(sqrt k) rounds.                      *)
(* ------------------------------------------------------------------ *)

let t3 ~quick () =
  let ks = if quick then [ 64; 256; 1024 ] else [ 64; 256; 1024; 4096 ] in
  let trials = if quick then 3 else 5 in
  let universe = 1 lsl 30 in
  let table =
    Stats.Table.create
      ~title:"T3 (Thm 3.1): bucket+batch-equality protocol — bits stay O(k), rounds grow ~sqrt(k)"
      ~columns:
        [ "k"; "bits (mean)"; "bits/k"; "rounds (mean)"; "rounds/sqrt(k)"; "exact" ]
  in
  List.iter
    (fun k ->
      let stats =
        measure ~trials ~table:(Printf.sprintf "T3/k%d" k) ~universe ~k ~overlap:(k / 2)
          (Bucket_protocol.protocol ~k ())
      in
      Stats.Table.add_row table
        [
          Stats.Table.cell_int k;
          Stats.Table.cell_float stats.bits.Stats.Summary.mean;
          cell_bits_per_k stats.bits k;
          Stats.Table.cell_float stats.rounds.Stats.Summary.mean;
          Stats.Table.cell_float ~decimals:2
            (stats.rounds.Stats.Summary.mean /. sqrt (float_of_int k));
          Stats.Table.cell_float ~decimals:2 stats.exact_rate;
        ])
    ks;
  [ table ]

(* ------------------------------------------------------------------ *)
(* T4: success probabilities — raw vs Verified.                        *)
(* ------------------------------------------------------------------ *)

let t4 ~quick () =
  let trials = if quick then 100 else 400 in
  let universe = 1 lsl 20 in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "T4: empirical failure rate over %d trials — raw tree protocol vs verify-and-repeat"
           trials)
      ~columns:[ "k"; "protocol"; "failures"; "rate"; "bound" ]
  in
  let configs =
    [
      (16, "tree r=2", Tree_protocol.protocol ~r:2 ~k:16 (), "1/poly(k)");
      (64, "tree r=2", Tree_protocol.protocol ~r:2 ~k:64 (), "1/poly(k)");
      (256, "tree r=3", Tree_protocol.protocol ~r:3 ~k:256 (), "1/poly(k)");
      (16, "verified(tree r=2)", Verified.protocol (Tree_protocol.protocol ~r:2 ~k:16 ()), "2^-k");
      (64, "verified(tree r=2)", Verified.protocol (Tree_protocol.protocol ~r:2 ~k:64 ()), "2^-k");
    ]
  in
  List.iter
    (fun (k, name, protocol, bound) ->
      let failures = ref 0 in
      for seed = 1 to trials do
        let pair = gen_pair ~table:("T4/" ^ name) ~seed ~universe ~k ~overlap:(k / 2) in
        let outcome =
          protocol.Protocol.run
            (rng_of ~table:(Printf.sprintf "T4/%s/k%d" name k) ~seed)
            ~universe pair.Workload.Setgen.s pair.Workload.Setgen.t
        in
        if not (Protocol.exact outcome ~s:pair.Workload.Setgen.s ~t:pair.Workload.Setgen.t) then
          incr failures
      done;
      Stats.Table.add_row table
        [
          Stats.Table.cell_int k;
          name;
          Stats.Table.cell_int !failures;
          Stats.Table.cell_float ~decimals:4 (float_of_int !failures /. float_of_int trials);
          bound;
        ])
    configs;
  [ table ]

(* ------------------------------------------------------------------ *)
(* T5: Corollary 4.1 — average communication per player, rounds.       *)
(* ------------------------------------------------------------------ *)

let multiparty_family ~table ~seed ~universe ~players ~k =
  Workload.Setgen.family_with_core
    (Prng.Rng.with_label (Prng.Rng.of_int (seed * 104729)) (table ^ "/workload"))
    ~universe ~players ~size:k ~core:(k / 4)

let t5 ~quick () =
  let ms = if quick then [ 4; 16 ] else [ 4; 16; 64; 256 ] in
  let ks = if quick then [ 64 ] else [ 64; 512 ] in
  let trials = if quick then 2 else 3 in
  let universe = 1 lsl 30 in
  let table =
    Stats.Table.create
      ~title:
        "T5 (Cor 4.1): star protocol — avg bits/player stays O(k) as m grows; rounds ~ r * levels"
      ~columns:
        [ "m"; "k"; "avg bits/player"; "avg bits/(player*k)"; "rounds (mean)"; "levels"; "ok" ]
  in
  List.iter
    (fun k ->
      List.iter
        (fun m ->
          let avg = ref [] and rounds = ref [] and ok = ref 0 in
          for seed = 1 to trials do
            let tag = Printf.sprintf "T5/m%d/k%d" m k in
            let sets = multiparty_family ~table:tag ~seed ~universe ~players:m ~k in
            let result, cost = Multiparty.Star.run (rng_of ~table:tag ~seed) ~universe ~k sets in
            avg := Commsim.Cost.avg_player_bits cost :: !avg;
            rounds := cost.Commsim.Cost.rounds :: !rounds;
            if Iset.equal result (Iset.inter_many (Array.to_list sets)) then incr ok
          done;
          let avg = Stats.Summary.of_floats !avg in
          let rounds = Stats.Summary.of_ints !rounds in
          Stats.Table.add_row table
            [
              Stats.Table.cell_int m;
              Stats.Table.cell_int k;
              Stats.Table.cell_float avg.Stats.Summary.mean;
              Stats.Table.cell_float ~decimals:2 (avg.Stats.Summary.mean /. float_of_int k);
              Stats.Table.cell_float rounds.Stats.Summary.mean;
              Stats.Table.cell_int (Multiparty.Group.levels ~m ~k);
              Printf.sprintf "%d/%d" !ok trials;
            ])
        ms)
    ks;
  [ table ]

(* ------------------------------------------------------------------ *)
(* T6: Corollary 4.2 — worst-case per-player load, star vs tournament. *)
(* ------------------------------------------------------------------ *)

let t6 ~quick () =
  let ms = if quick then [ 8; 32 ] else [ 8; 32; 128 ] in
  let k = 64 in
  let trials = if quick then 2 else 3 in
  let universe = 1 lsl 30 in
  let table =
    Stats.Table.create
      ~title:
        "T6 (Cor 4.2): busiest-player bits — the tournament amortizes the star coordinator's hotspot"
      ~columns:
        [
          "m";
          "star max bits/player";
          "tournament max bits/player";
          "ratio";
          "star rounds";
          "tournament rounds";
        ]
  in
  List.iter
    (fun m ->
      let star_max = ref [] and tour_max = ref [] in
      let star_rounds = ref [] and tour_rounds = ref [] in
      for seed = 1 to trials do
        let tag = Printf.sprintf "T6/m%d" m in
        let sets = multiparty_family ~table:tag ~seed ~universe ~players:m ~k in
        let _, star_cost = Multiparty.Star.run (rng_of ~table:tag ~seed) ~universe ~k sets in
        let _, tour_cost =
          Multiparty.Tournament.run (rng_of ~table:(tag ^ "/t") ~seed) ~universe ~k sets
        in
        star_max := Commsim.Cost.max_player_bits star_cost :: !star_max;
        tour_max := Commsim.Cost.max_player_bits tour_cost :: !tour_max;
        star_rounds := star_cost.Commsim.Cost.rounds :: !star_rounds;
        tour_rounds := tour_cost.Commsim.Cost.rounds :: !tour_rounds
      done;
      let star_max = Stats.Summary.of_ints !star_max in
      let tour_max = Stats.Summary.of_ints !tour_max in
      Stats.Table.add_row table
        [
          Stats.Table.cell_int m;
          Stats.Table.cell_float star_max.Stats.Summary.mean;
          Stats.Table.cell_float tour_max.Stats.Summary.mean;
          Stats.Table.cell_float ~decimals:2
            (star_max.Stats.Summary.mean /. tour_max.Stats.Summary.mean);
          Stats.Table.cell_float (Stats.Summary.of_ints !star_rounds).Stats.Summary.mean;
          Stats.Table.cell_float (Stats.Summary.of_ints !tour_rounds).Stats.Summary.mean;
        ])
    ms;
  [ table ]

(* ------------------------------------------------------------------ *)
(* T7: sensitivity of Theorem 3.6 cost to the intersection size.       *)
(* ------------------------------------------------------------------ *)

let t7 ~quick () =
  let k = if quick then 1024 else 4096 in
  let trials = if quick then 3 else 5 in
  let universe = 1 lsl 30 in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "T7: tree(r=3) cost vs intersection size  [k=%d — cost must stay O(k) even when |S cap T| is large]"
           k)
      ~columns:[ "|S cap T| / k"; "bits (mean)"; "bits/k"; "rounds"; "exact" ]
  in
  List.iter
    (fun fraction ->
      let overlap = int_of_float (fraction *. float_of_int k) in
      let stats =
        measure ~trials ~table:(Printf.sprintf "T7/f%f" fraction) ~universe ~k ~overlap
          (Tree_protocol.protocol ~r:3 ~k ())
      in
      Stats.Table.add_row table
        [
          Stats.Table.cell_float ~decimals:2 fraction;
          Stats.Table.cell_float stats.bits.Stats.Summary.mean;
          cell_bits_per_k stats.bits k;
          Stats.Table.cell_float stats.rounds.Stats.Summary.mean;
          Stats.Table.cell_float ~decimals:2 stats.exact_rate;
        ])
    [ 0.0; 0.25; 0.5; 0.9; 1.0 ];
  (* companion: skewed (Zipf) workloads, where overlap emerges from the
     shared head of the popularity distribution *)
  let zipf =
    Stats.Table.create
      ~title:"T7b: tree(r=3) on Zipf-skewed workloads (overlap emerges from popularity skew)"
      ~columns:[ "zipf exponent"; "observed |S cap T|/k"; "bits/k"; "exact" ]
  in
  let zipf_k = if quick then 512 else 2048 in
  List.iter
    (fun exponent ->
      let bits = ref [] and overlaps = ref [] and exact = ref 0 in
      for seed = 1 to trials do
        let pair =
          Workload.Setgen.zipf_pair
            (Prng.Rng.with_label (Prng.Rng.of_int (seed * 13)) "T7b")
            ~universe:(zipf_k * 16) ~size:zipf_k ~exponent
        in
        let protocol = Tree_protocol.protocol ~r:3 ~k:zipf_k () in
        let outcome =
          protocol.Protocol.run
            (rng_of ~table:(Printf.sprintf "T7b/e%f" exponent) ~seed)
            ~universe:(zipf_k * 16) pair.Workload.Setgen.s pair.Workload.Setgen.t
        in
        bits := outcome.Protocol.cost.Commsim.Cost.total_bits :: !bits;
        overlaps :=
          Iset.cardinal (Iset.inter pair.Workload.Setgen.s pair.Workload.Setgen.t) :: !overlaps;
        if Protocol.exact outcome ~s:pair.Workload.Setgen.s ~t:pair.Workload.Setgen.t then
          incr exact
      done;
      Stats.Table.add_row zipf
        [
          Stats.Table.cell_float ~decimals:2 exponent;
          Stats.Table.cell_float ~decimals:2
            ((Stats.Summary.of_ints !overlaps).Stats.Summary.mean /. float_of_int zipf_k);
          Stats.Table.cell_float
            ((Stats.Summary.of_ints !bits).Stats.Summary.mean /. float_of_int zipf_k);
          Printf.sprintf "%d/%d" !exact trials;
        ])
    [ 0.5; 1.0; 1.5 ];
  [ table; zipf ]

(* ------------------------------------------------------------------ *)
(* T8: disjointness baselines vs the intersection reduction.           *)
(* ------------------------------------------------------------------ *)

let t8 ~quick () =
  let ks = if quick then [ 16; 64 ] else [ 16; 64; 256; 1024 ] in
  let trials = if quick then 3 else 5 in
  let universe = 1 lsl 30 in
  let table =
    Stats.Table.create
      ~title:
        "T8: DISJ upper bounds — HW-style protocol vs the DISJ<=INT reduction (tree r=log* k)"
      ~columns:
        [ "k"; "hw bits"; "hw rounds"; "via-INT bits"; "via-INT rounds"; "INT/HW bit ratio" ]
  in
  List.iter
    (fun k ->
      let hw_bits = ref [] and hw_rounds = ref [] in
      let int_bits = ref [] and int_rounds = ref [] in
      for seed = 1 to trials do
        let tag = Printf.sprintf "T8/k%d" k in
        let pair = gen_pair ~table:tag ~seed ~universe ~k ~overlap:0 in
        let hw =
          Disjointness.hw (rng_of ~table:tag ~seed) ~universe pair.Workload.Setgen.s
            pair.Workload.Setgen.t
        in
        hw_bits := hw.Disjointness.cost.Commsim.Cost.total_bits :: !hw_bits;
        hw_rounds := hw.Disjointness.cost.Commsim.Cost.rounds :: !hw_rounds;
        let via =
          Disjointness.via_intersection
            (Tree_protocol.protocol_log_star ~k ())
            (rng_of ~table:(tag ^ "/via") ~seed)
            ~universe pair.Workload.Setgen.s pair.Workload.Setgen.t
        in
        int_bits := via.Disjointness.cost.Commsim.Cost.total_bits :: !int_bits;
        int_rounds := via.Disjointness.cost.Commsim.Cost.rounds :: !int_rounds
      done;
      let hw_bits = Stats.Summary.of_ints !hw_bits in
      let int_bits = Stats.Summary.of_ints !int_bits in
      Stats.Table.add_row table
        [
          Stats.Table.cell_int k;
          Stats.Table.cell_float hw_bits.Stats.Summary.mean;
          Stats.Table.cell_float (Stats.Summary.of_ints !hw_rounds).Stats.Summary.mean;
          Stats.Table.cell_float int_bits.Stats.Summary.mean;
          Stats.Table.cell_float (Stats.Summary.of_ints !int_rounds).Stats.Summary.mean;
          Stats.Table.cell_float ~decimals:2
            (int_bits.Stats.Summary.mean /. hw_bits.Stats.Summary.mean);
        ])
    ks;
  [ table ]

(* ------------------------------------------------------------------ *)
(* T9: the applications inherit the trade-off.                         *)
(* ------------------------------------------------------------------ *)

let t9 ~quick () =
  let k = if quick then 256 else 1024 in
  let universe = 1 lsl 44 in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "T9: applications at k=%d, n=2^44 — exact answers at O(k) bits vs shipping the sets" k)
      ~columns:[ "application"; "answer"; "bits (smart)"; "bits (trivial)"; "bits (naive)"; "saving" ]
  in
  let tag = "T9" in
  let pair = gen_pair ~table:tag ~seed:1 ~universe ~k ~overlap:(k / 3) in
  let s = pair.Workload.Setgen.s and t = pair.Workload.Setgen.t in
  let smart = Apps.Similarity.run (rng_of ~table:tag ~seed:1) ~universe s t in
  let trivial =
    Apps.Similarity.run ~protocol:Trivial.protocol (rng_of ~table:tag ~seed:1) ~universe s t
  in
  let smart_bits = smart.Apps.Similarity.cost.Commsim.Cost.total_bits in
  let trivial_bits = trivial.Apps.Similarity.cost.Commsim.Cost.total_bits in
  (* fixed-width element lists, both directions: the comparison most
     systems actually make *)
  let naive_bits = (Array.length s + Array.length t) * Bitio.Set_codec.universe_width universe in
  let saving = Printf.sprintf "%.1fx" (float_of_int naive_bits /. float_of_int smart_bits) in
  let add name answer =
    Stats.Table.add_row table
      [
        name;
        answer;
        Stats.Table.cell_int smart_bits;
        Stats.Table.cell_int trivial_bits;
        Stats.Table.cell_int naive_bits;
        saving;
      ]
  in
  add "intersection size" (Stats.Table.cell_int smart.Apps.Similarity.intersection_size);
  add "union size / distinct" (Stats.Table.cell_int smart.Apps.Similarity.union_size);
  add "jaccard" (Stats.Table.cell_float ~decimals:4 smart.Apps.Similarity.jaccard);
  add "hamming distance" (Stats.Table.cell_int smart.Apps.Similarity.hamming);
  add "1-rarity" (Stats.Table.cell_float ~decimals:4 smart.Apps.Similarity.rarity1);
  add "2-rarity" (Stats.Table.cell_float ~decimals:4 smart.Apps.Similarity.rarity2);
  (* join: payload exchange dominated by the matched rows *)
  let mk prefix keys = Array.map (fun key -> { Apps.Join.key; payload = prefix ^ string_of_int key }) keys in
  let joined, join_cost =
    Apps.Join.run (rng_of ~table:(tag ^ "/join") ~seed:1) ~universe ~left:(mk "L" s)
      ~right:(mk "R" t)
  in
  Stats.Table.add_row table
    [
      "equi-join (rows)";
      Stats.Table.cell_int (List.length joined);
      Stats.Table.cell_int join_cost.Commsim.Cost.total_bits;
      "-";
      "-";
      "-";
    ];
  [ table ]

(* ------------------------------------------------------------------ *)
(* T10: Fact 2.1 — EQ^n_k through INT_k.                               *)
(* ------------------------------------------------------------------ *)

let t10 ~quick () =
  let ks = if quick then [ 64; 256 ] else [ 64; 256; 1024 ] in
  let string_bytes = 100 in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "T10 (Fact 2.1): EQ^n_k via INT_k — amortized bits/instance on %d-byte strings" string_bytes)
      ~columns:[ "k"; "bits"; "bits/instance"; "naive exchange bits"; "saving"; "correct" ]
  in
  List.iter
    (fun k ->
      let pad i c = String.make string_bytes c ^ string_of_int i in
      let xs = Array.init k (fun i -> pad i 'x') in
      let ys = Array.init k (fun i -> if i mod 2 = 0 then pad i 'x' else pad i 'y') in
      let answers, cost = Apps.Eq_via_intersection.run (rng_of ~table:"T10" ~seed:k) xs ys in
      let correct = ref true in
      Array.iteri (fun i v -> if v <> (i mod 2 = 0) then correct := false) answers;
      let naive = 8 * string_bytes * k in
      Stats.Table.add_row table
        [
          Stats.Table.cell_int k;
          Stats.Table.cell_int cost.Commsim.Cost.total_bits;
          Stats.Table.cell_float
            (float_of_int cost.Commsim.Cost.total_bits /. float_of_int k);
          Stats.Table.cell_int naive;
          Printf.sprintf "%.1fx" (float_of_int naive /. float_of_int cost.Commsim.Cost.total_bits);
          (if !correct then "yes" else "NO");
        ])
    ks;
  [ table ]

(* ------------------------------------------------------------------ *)
(* A1: ablation — the per-stage equality budget schedule.              *)
(* ------------------------------------------------------------------ *)

let a1 ~quick () =
  let k = if quick then 1024 else 4096 in
  let trials = if quick then 3 else 5 in
  let universe = 1 lsl 30 in
  let r = 3 in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "A1 (ablation): equality-tag schedule at r=%d, k=%d — the paper's 4*log(log^(r-i-1) k) vs flat budgets"
           r k)
      ~columns:[ "schedule"; "bits (mean)"; "bits/k"; "exact" ]
  in
  let configs =
    [
      ("paper schedule", Tree_protocol.protocol ~r ~k ());
      ("flat 8 bits", Tree_protocol.protocol ~flat_eq_bits:8 ~r ~k ());
      ("flat 16 bits", Tree_protocol.protocol ~flat_eq_bits:16 ~r ~k ());
      ("flat 4 log k bits", Tree_protocol.protocol ~flat_eq_bits:(4 * Iterated_log.log2_ceil k) ~r ~k ());
    ]
  in
  List.iter
    (fun (name, protocol) ->
      let stats = measure ~trials ~table:("A1/" ^ name) ~universe ~k ~overlap:(k / 2) protocol in
      Stats.Table.add_row table
        [
          name;
          Stats.Table.cell_float stats.bits.Stats.Summary.mean;
          cell_bits_per_k stats.bits k;
          Stats.Table.cell_float ~decimals:2 stats.exact_rate;
        ])
    configs;
  [ table ]

(* ------------------------------------------------------------------ *)
(* A2: ablation — universe growth: log(n/k) vs hashing it away.        *)
(* ------------------------------------------------------------------ *)

let a2 ~quick () =
  let k = 512 in
  let trials = if quick then 3 else 5 in
  let table =
    Stats.Table.create
      ~title:
        "A2 (ablation): element-width dependence — trivial pays log(n/k) per element, the hashed protocols do not"
      ~columns:[ "n"; "trivial bits/k"; "one-round bits/k"; "tree(r=2) bits/k" ]
  in
  List.iter
    (fun log_n ->
      let universe = 1 lsl log_n in
      let row =
        List.mapi
          (fun i protocol ->
            let stats =
              measure ~trials ~table:(Printf.sprintf "A2/n%d/p%d" log_n i) ~universe ~k
                ~overlap:(k / 2) protocol
            in
            cell_bits_per_k stats.bits k)
          [ Trivial.protocol; One_round_hash.protocol (); Tree_protocol.protocol ~r:2 ~k () ]
      in
      Stats.Table.add_row table (Printf.sprintf "2^%d" log_n :: row))
    [ 16; 30; 44; 58 ];
  [ table ]

(* ------------------------------------------------------------------ *)
(* A3: ablation — bucket count (tree leaves).                          *)
(* ------------------------------------------------------------------ *)

let a3 ~quick () =
  let k = if quick then 1024 else 4096 in
  let trials = if quick then 3 else 5 in
  let universe = 1 lsl 30 in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "A3 (ablation): bucket count at r=3, k=%d — the paper's k buckets vs fewer/more (Lemma 3.10's E[n_u]=O(1) needs load O(1))"
           k)
      ~columns:[ "buckets"; "bits (mean)"; "bits/k"; "rounds"; "exact" ]
  in
  List.iter
    (fun (name, buckets) ->
      let stats =
        measure ~trials ~table:("A3/" ^ name) ~universe ~k ~overlap:(k / 2)
          (Tree_protocol.protocol ~buckets ~r:3 ~k ())
      in
      Stats.Table.add_row table
        [
          name;
          Stats.Table.cell_float stats.bits.Stats.Summary.mean;
          cell_bits_per_k stats.bits k;
          Stats.Table.cell_float stats.rounds.Stats.Summary.mean;
          Stats.Table.cell_float ~decimals:2 stats.exact_rate;
        ])
    [ ("k/4", k / 4); ("k/2", k / 2); ("k (paper)", k); ("2k", 2 * k); ("4k", 4 * k) ];
  [ table ]

(* ------------------------------------------------------------------ *)
(* A4: the deterministic one-round floor — gap coding vs enumerative    *)
(* coding vs the log2 C(n,k) bound.                                     *)
(* ------------------------------------------------------------------ *)

let a4 ~quick () =
  let k = if quick then 128 else 512 in
  let trials = if quick then 2 else 3 in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "A4: deterministic baselines at k=%d — the enumerative codec sits on the log2 C(n,k) floor"
           k)
      ~columns:[ "n"; "gaps bits/k"; "entropy-coded bits/k"; "floor bits/k" ]
  in
  List.iter
    (fun log_n ->
      let universe = 1 lsl log_n in
      let cell protocol tag =
        let stats = measure ~trials ~table:tag ~universe ~k ~overlap:(k / 2) protocol in
        cell_bits_per_k stats.bits k
      in
      (* both baselines send S and then the k/2-element intersection back,
         so the matching information floor is log2 C(n,k) + log2 C(n,k/2) *)
      let floor =
        Bitio.Set_codec.log2_binomial universe k
        +. Bitio.Set_codec.log2_binomial universe (k / 2)
      in
      Stats.Table.add_row table
        [
          Printf.sprintf "2^%d" log_n;
          cell Trivial.protocol (Printf.sprintf "A4/gaps/n%d" log_n);
          cell Trivial.protocol_entropy (Printf.sprintf "A4/enum/n%d" log_n);
          Stats.Table.cell_float (floor /. float_of_int k);
        ])
    [ 14; 17; 20; 24 ];
  [ table ]

(* ------------------------------------------------------------------ *)
(* A5: batch equality — the paper's sequential groups vs pipelining.    *)
(* ------------------------------------------------------------------ *)

let a5 ~quick () =
  let sizes = if quick then [ 256; 1024 ] else [ 256; 1024; 4096 ] in
  let table =
    Stats.Table.create
      ~title:
        "A5 (ablation): Eq_batch group scheduling — FKNN-style sequential groups vs pipelined groups"
      ~columns:
        [ "instances"; "seq bits"; "seq rounds"; "pipelined bits"; "pipelined rounds"; "agree" ]
  in
  List.iter
    (fun n ->
      let mk_instances seed =
        let xs =
          Array.init n (fun i -> Bitio.Bits.of_string (Printf.sprintf "x%d/%d" seed i))
        in
        let ys =
          Array.init n (fun i ->
              if i mod 2 = 0 then xs.(i) else Bitio.Bits.of_string (Printf.sprintf "y%d/%d" seed i))
        in
        (xs, ys)
      in
      let run ~sequential seed =
        let xs, ys = mk_instances seed in
        let shared = rng_of ~table:(Printf.sprintf "A5/n%d" n) ~seed in
        Commsim.Two_party.run
          ~alice:(fun chan -> Eq_batch.run_alice ~sequential shared chan xs)
          ~bob:(fun chan -> Eq_batch.run_bob ~sequential shared chan ys)
      in
      let (va, _), seq_cost = run ~sequential:true 1 in
      let (vp, _), par_cost = run ~sequential:false 1 in
      Stats.Table.add_row table
        [
          Stats.Table.cell_int n;
          Stats.Table.cell_int seq_cost.Commsim.Cost.total_bits;
          Stats.Table.cell_int seq_cost.Commsim.Cost.rounds;
          Stats.Table.cell_int par_cost.Commsim.Cost.total_bits;
          Stats.Table.cell_int par_cost.Commsim.Cost.rounds;
          (if va = vp then "yes" else "NO");
        ])
    sizes;
  [ table ]

(* ------------------------------------------------------------------ *)
(* T11: the private-coin compilation (Section 3.1).                     *)
(* ------------------------------------------------------------------ *)

let t11 ~quick () =
  let k = if quick then 256 else 1024 in
  let trials = if quick then 3 else 5 in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "T11 (§3.1): private-coin compilation of tree(r=log* k) at k=%d — the in-band seed adds O(log k + log log n) bits"
           k)
      ~columns:[ "n"; "shared-coin bits"; "private-coin bits"; "seed bits"; "exact" ]
  in
  List.iter
    (fun log_n ->
      let universe = 1 lsl log_n in
      let base = Tree_protocol.protocol_log_star ~k () in
      let shared_stats =
        measure ~trials ~table:(Printf.sprintf "T11/shared/n%d" log_n) ~universe ~k
          ~overlap:(k / 2) base
      in
      let private_stats =
        measure ~trials ~table:(Printf.sprintf "T11/private/n%d" log_n) ~universe ~k
          ~overlap:(k / 2) (Private_coin.protocol base)
      in
      Stats.Table.add_row table
        [
          Printf.sprintf "2^%d" log_n;
          Stats.Table.cell_float shared_stats.bits.Stats.Summary.mean;
          Stats.Table.cell_float private_stats.bits.Stats.Summary.mean;
          Stats.Table.cell_int (min 62 (Private_coin.seed_bits ~universe ~k));
          Stats.Table.cell_float ~decimals:2 private_stats.exact_rate;
        ])
    [ 20; 40; 58 ];
  [ table ]

(* ------------------------------------------------------------------ *)
(* T12: exact intersection vs min-wise sketching [PSW14].               *)
(* ------------------------------------------------------------------ *)

let t12 ~quick () =
  let k = if quick then 1024 else 4096 in
  let trials = if quick then 3 else 5 in
  let universe = 1 lsl 40 in
  let true_j = 1.0 /. 3.0 (* overlap k/2 of two k-sets: (k/2) / (3k/2) *) in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "T12: exact protocol vs bottom-k sketches [PSW14] at k=%d, true Jaccard=1/3 — exactness is what the extra bits buy"
           k)
      ~columns:[ "method"; "bits (mean)"; "jaccard err (mean abs)"; "exact set?" ]
  in
  let sketch_row name sketch_size =
    let bits = ref [] and errs = ref [] in
    for seed = 1 to trials do
      let pair = gen_pair ~table:("T12/" ^ name) ~seed ~universe ~k ~overlap:(k / 2) in
      let (j, _), cost =
        Apps.Sketch.exchange (rng_of ~table:("T12/" ^ name) ~seed) ~sketch_size
          pair.Workload.Setgen.s pair.Workload.Setgen.t
      in
      bits := cost.Commsim.Cost.total_bits :: !bits;
      errs := abs_float (j -. true_j) :: !errs
    done;
    Stats.Table.add_row table
      [
        name;
        Stats.Table.cell_float (Stats.Summary.of_ints !bits).Stats.Summary.mean;
        Stats.Table.cell_float ~decimals:4 (Stats.Summary.of_floats !errs).Stats.Summary.mean;
        "no (estimate)";
      ]
  in
  let exact_stats =
    measure ~trials ~table:"T12/exact" ~universe ~k ~overlap:(k / 2)
      (Tree_protocol.protocol_log_star ~k ())
  in
  Stats.Table.add_row table
    [
      "tree(r=log* k), exact";
      Stats.Table.cell_float exact_stats.bits.Stats.Summary.mean;
      "0.0000";
      "yes";
    ];
  sketch_row "bottom-k sketch, size k/8" (k / 8);
  sketch_row "bottom-k sketch, size k/4" (k / 4);
  sketch_row "bottom-k sketch, size k" k;
  [ table ]

(* ------------------------------------------------------------------ *)
(* T13: intersection vs union — the abstract's separation.              *)
(* ------------------------------------------------------------------ *)

let t13 ~quick () =
  let k = if quick then 512 else 2048 in
  let trials = if quick then 3 else 5 in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "T13: intersection vs union at k=%d — union must pay ~log(n/k)/element at any round count; intersection doesn't"
           k)
      ~columns:
        [ "n"; "intersection bits/k (tree log* k)"; "union bits/k"; "union/intersection" ]
  in
  List.iter
    (fun log_n ->
      let universe = 1 lsl log_n in
      let int_stats =
        measure ~trials ~table:(Printf.sprintf "T13/int/n%d" log_n) ~universe ~k ~overlap:(k / 2)
          (Tree_protocol.protocol_log_star ~k ())
      in
      let union_bits = ref [] in
      for seed = 1 to trials do
        let tag = Printf.sprintf "T13/union/n%d" log_n in
        let pair = gen_pair ~table:tag ~seed ~universe ~k ~overlap:(k / 2) in
        let result =
          Apps.Union.run (rng_of ~table:tag ~seed) ~universe pair.Workload.Setgen.s
            pair.Workload.Setgen.t
        in
        union_bits := result.Apps.Union.cost.Commsim.Cost.total_bits :: !union_bits
      done;
      let union_bits = Stats.Summary.of_ints !union_bits in
      Stats.Table.add_row table
        [
          Printf.sprintf "2^%d" log_n;
          cell_bits_per_k int_stats.bits k;
          cell_bits_per_k union_bits k;
          Stats.Table.cell_float ~decimals:2
            (union_bits.Stats.Summary.mean /. int_stats.bits.Stats.Summary.mean);
        ])
    [ 16; 30; 44; 58 ];
  [ table ]

(* ------------------------------------------------------------------ *)

let all =
  [
    ("T1", `Shared_t1_t2);
    ("T2", `Shared_t1_t2);
    ("F1", `Fn f1);
    ("T3", `Fn t3);
    ("T4", `Fn t4);
    ("T5", `Fn t5);
    ("T6", `Fn t6);
    ("T7", `Fn t7);
    ("T8", `Fn t8);
    ("T9", `Fn t9);
    ("T10", `Fn t10);
    ("T11", `Fn t11);
    ("T12", `Fn t12);
    ("T13", `Fn t13);
    ("A1", `Fn a1);
    ("A2", `Fn a2);
    ("A3", `Fn a3);
    ("A4", `Fn a4);
    ("A5", `Fn a5);
  ]

let names = List.map fst all |> List.sort_uniq compare

(* Run the selected tables (all when [only] is empty) and print them. *)
let run ~quick ~only =
  let selected name = only = [] || List.mem name only in
  let printed_shared = ref false in
  List.iter
    (fun (name, what) ->
      if selected name then begin
        match what with
        | `Shared_t1_t2 ->
            if not !printed_shared then begin
              printed_shared := true;
              List.iter
                (fun table ->
                  Stats.Table.print table;
                  print_newline ())
                (t1_t2 ~quick ())
            end
        | `Fn f ->
            List.iter
              (fun table ->
                Stats.Table.print table;
                print_newline ())
              (f ~quick ())
      end)
    all
