(* Bechamel micro-benchmarks: wall-clock throughput of the substrate
   primitives and one end-to-end run per protocol family.  (The experiment
   tables in Tables measure communication; this section measures time.) *)

open Bechamel
open Toolkit
open Intersect

let seed = 987654321

let make_pair ~universe ~k ~overlap =
  Workload.Setgen.pair_with_overlap (Prng.Rng.of_int seed) ~universe ~size_s:k ~size_t:k ~overlap

let tests () =
  let rng = Prng.Rng.of_int seed in
  let strhash_fn = Strhash.create (Prng.Rng.with_label rng "micro/strhash") ~bits:32 in
  let cw =
    Hashing.Carter_wegman.create (Prng.Rng.with_label rng "micro/cw") ~universe:(1 lsl 44)
      ~range:1024
  in
  let payload = Bitio.Bits.of_string "a-reasonably-long-message-payload-for-hashing" in
  let pair_small = make_pair ~universe:(1 lsl 30) ~k:256 ~overlap:128 in
  let pair_large = make_pair ~universe:(1 lsl 30) ~k:1024 ~overlap:512 in
  let run_protocol protocol pair i =
    let outcome =
      protocol.Protocol.run
        (Prng.Rng.with_label (Prng.Rng.of_int (seed + i)) "micro/run")
        ~universe:(1 lsl 30) pair.Workload.Setgen.s pair.Workload.Setgen.t
    in
    ignore (Iset.cardinal outcome.Protocol.alice)
  in
  [
    Test.make ~name:"strhash/apply_int" (Staged.stage (fun () -> ignore (Strhash.apply_int strhash_fn 123456789)));
    Test.make ~name:"strhash/apply_string" (Staged.stage (fun () -> ignore (Strhash.apply strhash_fn payload)));
    Test.make ~name:"carter_wegman/hash" (Staged.stage (fun () -> ignore (Hashing.Carter_wegman.hash cw 987654321)));
    Test.make ~name:"set_codec/gaps k=256"
      (Staged.stage (fun () ->
           let buf = Bitio.Bitbuf.create () in
           Bitio.Set_codec.write_gaps buf pair_small.Workload.Setgen.s));
    Test.make ~name:"protocol/trivial k=1024"
      (Staged.stage (fun () -> run_protocol Trivial.protocol pair_large 0));
    Test.make ~name:"protocol/one-round k=1024"
      (Staged.stage (fun () -> run_protocol (One_round_hash.protocol ()) pair_large 1));
    Test.make ~name:"protocol/tree r=2 k=1024"
      (Staged.stage (fun () -> run_protocol (Tree_protocol.protocol ~r:2 ~k:1024 ()) pair_large 2));
    Test.make ~name:"protocol/tree r=log*k k=1024"
      (Staged.stage (fun () -> run_protocol (Tree_protocol.protocol_log_star ~k:1024 ()) pair_large 3));
    Test.make ~name:"protocol/bucket k=256"
      (Staged.stage (fun () -> run_protocol (Bucket_protocol.protocol ~k:256 ()) pair_small 4));
  ]

let run () =
  print_endline "Micro-benchmarks (Bechamel, monotonic clock, ns/run):";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let raw =
    List.fold_left
      (fun acc test ->
        let results = Benchmark.all cfg instances (Test.make_grouped ~name:"" [ test ]) in
        Hashtbl.iter (fun name result -> Hashtbl.replace acc name result) results;
        acc)
      (Hashtbl.create 16) (tests ())
  in
  let analyzed = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some [ ns ] -> (name, ns) :: acc
        | _ -> (name, nan) :: acc)
      analyzed []
    |> List.sort compare
  in
  let table = Stats.Table.create ~title:"Micro (time per run)" ~columns:[ "benchmark"; "ns/run" ] in
  List.iter
    (fun (name, ns) -> Stats.Table.add_row table [ name; Stats.Table.cell_float ns ])
    rows;
  Stats.Table.print table
