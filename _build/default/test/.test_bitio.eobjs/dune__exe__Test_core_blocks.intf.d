test/test_core_blocks.mli:
