test/test_determinism.ml: Alcotest Basic_intersection Bucket_protocol Commsim Intersect Iset List Multiparty One_round_hash Private_coin Prng Protocol Tree_protocol Trivial Verified Workload
