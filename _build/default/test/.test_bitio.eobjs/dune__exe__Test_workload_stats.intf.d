test/test_workload_stats.mli:
