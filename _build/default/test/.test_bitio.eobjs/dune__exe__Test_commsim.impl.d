test/test_commsim.ml: Alcotest Array Bitio Chan Commsim Cost Fun List Network Two_party
