test/test_multiparty.ml: Alcotest Array Bitio Commsim Iset List Multiparty Printf Prng Workload
