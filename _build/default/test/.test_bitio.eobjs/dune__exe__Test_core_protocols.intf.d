test/test_core_protocols.mli:
