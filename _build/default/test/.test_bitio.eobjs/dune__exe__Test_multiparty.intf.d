test/test_multiparty.mli:
