test/test_hashing.ml: Alcotest Array Carter_wegman Fks Hash_family Hashing Hashtbl Int64 List Modarith Multiply_shift Prime Prng Tabulation
