test/test_bitio.ml: Alcotest Array Bignat Bitbuf Bitio Bitreader Bits Codes Enum_codec Float Fun List Printf QCheck QCheck_alcotest Set_codec
