test/test_apps.ml: Alcotest Apps Array Commsim Intersect Iset List Printf Prng QCheck QCheck_alcotest String Workload
