test/test_extensions.ml: Alcotest Apps Array Bitio Commsim Equality Hashing Intersect Iset List Multiparty Printf Private_coin Prng Protocol Tree_protocol Trivial Workload
