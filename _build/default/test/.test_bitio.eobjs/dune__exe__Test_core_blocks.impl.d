test/test_core_blocks.ml: Alcotest Array Basic_intersection Bitio Commsim Eq_batch Equality Intersect Iset Iterated_log List Printf Prng QCheck QCheck_alcotest Strhash String Vtree Wire Workload
