test/test_prng.ml: Alcotest Array Printf Prng QCheck QCheck_alcotest Rng Splitmix64
