test/test_commsim.mli:
