test/test_workload_stats.ml: Alcotest Array Fun Iset Printf Prng QCheck QCheck_alcotest Stats String Workload
