(* Unit and property tests for the bit-level encoding substrate. *)

open Bitio

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Bits ---------- *)

let test_bits_of_bools () =
  let b = Bits.of_bools [ true; false; true; true ] in
  check "length" 4 (Bits.length b);
  check_bool "bit 0" true (Bits.get b 0);
  check_bool "bit 1" false (Bits.get b 1);
  check_bool "bit 3" true (Bits.get b 3);
  Alcotest.(check (list bool)) "roundtrip" [ true; false; true; true ] (Bits.to_bools b)

let test_bits_get_bounds () =
  let b = Bits.of_bools [ true ] in
  Alcotest.check_raises "negative" (Invalid_argument "Bits.get: index out of bounds") (fun () ->
      ignore (Bits.get b (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Bits.get: index out of bounds") (fun () ->
      ignore (Bits.get b 1))

let test_bits_equal () =
  let a = Bits.of_bools [ true; false; true ] in
  let b = Bits.of_bools [ true; false; true ] in
  let c = Bits.of_bools [ true; false; false ] in
  let d = Bits.of_bools [ true; false ] in
  check_bool "equal" true (Bits.equal a b);
  check_bool "different bit" false (Bits.equal a c);
  check_bool "different length" false (Bits.equal a d);
  check_bool "empty" true (Bits.equal Bits.empty Bits.empty)

let test_bits_concat () =
  let a = Bits.of_bools [ true; true; false ] in
  let b = Bits.of_bools [ false; true ] in
  let ab = Bits.concat a b in
  check "length" 5 (Bits.length ab);
  Alcotest.(check (list bool)) "contents" [ true; true; false; false; true ] (Bits.to_bools ab);
  check_bool "concat empty left" true (Bits.equal a (Bits.concat Bits.empty a));
  check_bool "concat empty right" true (Bits.equal a (Bits.concat a Bits.empty))

let test_bits_of_string () =
  let b = Bits.of_string "A" (* 0x41 = 0b01000001 *) in
  check "length" 8 (Bits.length b);
  check_bool "lsb set" true (Bits.get b 0);
  check_bool "bit 6 set" true (Bits.get b 6);
  check_bool "bit 7 clear" false (Bits.get b 7)

(* ---------- Bitbuf / Bitreader ---------- *)

let test_write_read_bits () =
  let buf = Bitbuf.create () in
  Bitbuf.write_bits buf ~width:5 19;
  Bitbuf.write_bits buf ~width:0 0;
  Bitbuf.write_bits buf ~width:13 4095;
  Bitbuf.write_bit buf true;
  let r = Bitreader.create (Bitbuf.contents buf) in
  check "first" 19 (Bitreader.read_bits r ~width:5);
  check "zero width" 0 (Bitreader.read_bits r ~width:0);
  check "second" 4095 (Bitreader.read_bits r ~width:13);
  check_bool "bit" true (Bitreader.read_bit r);
  check "remaining" 0 (Bitreader.remaining r)

let test_bitbuf_width_checks () =
  let buf = Bitbuf.create () in
  Alcotest.check_raises "too wide" (Invalid_argument "Bitbuf.write_bits: width") (fun () ->
      Bitbuf.write_bits buf ~width:63 0);
  Alcotest.check_raises "doesn't fit" (Invalid_argument "Bitbuf.write_bits: value does not fit width")
    (fun () -> Bitbuf.write_bits buf ~width:3 8)

let test_reader_underflow () =
  let r = Bitreader.create (Bits.of_bools [ true ]) in
  ignore (Bitreader.read_bit r);
  Alcotest.check_raises "underflow" Bitreader.Underflow (fun () -> ignore (Bitreader.read_bit r))

let test_bitbuf_growth () =
  let buf = Bitbuf.create ~capacity:1 () in
  for i = 0 to 999 do
    Bitbuf.write_bits buf ~width:10 (i mod 1024)
  done;
  let r = Bitreader.create (Bitbuf.contents buf) in
  for i = 0 to 999 do
    check "value" (i mod 1024) (Bitreader.read_bits r ~width:10)
  done

(* ---------- Codes ---------- *)

let test_bit_width () =
  check "1" 1 (Codes.bit_width 1);
  check "2" 2 (Codes.bit_width 2);
  check "255" 8 (Codes.bit_width 255);
  check "256" 9 (Codes.bit_width 256)

let roundtrip_code name write read cost values () =
  List.iter
    (fun v ->
      let buf = Bitbuf.create () in
      write buf v;
      (match cost with
      | Some cost -> check (Printf.sprintf "%s cost of %d" name v) (cost v) (Bitbuf.length buf)
      | None -> ());
      let r = Bitreader.create (Bitbuf.contents buf) in
      check (Printf.sprintf "%s roundtrip of %d" name v) v (read r);
      check "fully consumed" 0 (Bitreader.remaining r))
    values

let small_values = [ 0; 1; 2; 3; 7; 8; 100; 1 lsl 20; (1 lsl 40) + 17 ]

let test_gamma = roundtrip_code "gamma" Codes.write_gamma Codes.read_gamma (Some Codes.gamma_cost) small_values
let test_delta = roundtrip_code "delta" Codes.write_delta Codes.read_delta (Some Codes.delta_cost) small_values

let test_varint =
  roundtrip_code "varint" Codes.write_varint Codes.read_varint (Some Codes.varint_cost) small_values

let test_unary = roundtrip_code "unary" Codes.write_unary Codes.read_unary None [ 0; 1; 5; 63 ]

let test_rice () =
  (* Values sized so the unary quotient stays small: Rice is only sensible
     when the parameter is near log2 of the data. *)
  List.iter
    (fun k ->
      let values = [ 0; 1; 2; (1 lsl k) - 1; 1 lsl k; (1 lsl k) + 1; 40 * (1 lsl k) ] in
      roundtrip_code "rice"
        (fun buf v -> Codes.write_rice buf ~k v)
        (fun r -> Codes.read_rice r ~k)
        (Some (fun v -> Codes.rice_cost ~k v))
        values ())
    [ 0; 1; 4; 9 ]

let test_gamma_cost_shape () =
  (* Gamma spends 2 log n + O(1): strictly less than 25 bits for n < 2^12. *)
  for n = 0 to 4095 do
    if Codes.gamma_cost n > 25 then Alcotest.failf "gamma cost %d too large for %d" (Codes.gamma_cost n) n
  done

let prop_gamma_roundtrip =
  QCheck.Test.make ~name:"gamma roundtrip (random)" ~count:500
    QCheck.(map abs small_signed_int)
    (fun v ->
      let buf = Bitbuf.create () in
      Codes.write_gamma buf v;
      let r = Bitreader.create (Bitbuf.contents buf) in
      Codes.read_gamma r = v)

let prop_mixed_stream =
  (* Interleave several codes in one stream; everything must read back in order. *)
  QCheck.Test.make ~name:"mixed code stream roundtrip" ~count:200
    QCheck.(list (pair (int_bound 3) (map abs small_signed_int)))
    (fun items ->
      let buf = Bitbuf.create () in
      List.iter
        (fun (code, v) ->
          match code with
          | 0 -> Codes.write_gamma buf v
          | 1 -> Codes.write_delta buf v
          | 2 -> Codes.write_varint buf v
          | _ -> Codes.write_rice buf ~k:3 v)
        items;
      let r = Bitreader.create (Bitbuf.contents buf) in
      List.for_all
        (fun (code, v) ->
          let got =
            match code with
            | 0 -> Codes.read_gamma r
            | 1 -> Codes.read_delta r
            | 2 -> Codes.read_varint r
            | _ -> Codes.read_rice r ~k:3
          in
          got = v)
        items)

let test_extract_matches_get () =
  let b = Bits.of_bools (List.init 100 (fun i -> i mod 3 = 0 || i mod 7 = 1)) in
  for pos = 0 to 99 do
    for width = 0 to min 24 (100 - pos) do
      let v = Bits.extract b ~pos ~width in
      for j = 0 to width - 1 do
        if Bits.get b (pos + j) <> (v land (1 lsl j) <> 0) then
          Alcotest.failf "extract mismatch at pos=%d width=%d bit=%d" pos width j
      done
    done
  done

let test_read_blob_misaligned () =
  let buf = Bitbuf.create () in
  Bitbuf.write_bits buf ~width:3 5;
  let payload = Bits.of_bools (List.init 77 (fun i -> i mod 5 < 2)) in
  Bitbuf.append buf payload;
  Bitbuf.write_bits buf ~width:7 99;
  let r = Bitreader.create (Bitbuf.contents buf) in
  check "prefix" 5 (Bitreader.read_bits r ~width:3);
  let blob = Bitreader.read_blob r ~bits:77 in
  check_bool "blob equal" true (Bits.equal payload blob);
  check "suffix" 99 (Bitreader.read_bits r ~width:7)

let prop_append_concat_agree =
  QCheck.Test.make ~name:"Bitbuf.append = Bits.concat" ~count:300
    QCheck.(pair (list bool) (list bool))
    (fun (xs, ys) ->
      let a = Bits.of_bools xs and b = Bits.of_bools ys in
      let buf = Bitbuf.create () in
      Bitbuf.append buf a;
      Bitbuf.append buf b;
      Bits.equal (Bitbuf.contents buf) (Bits.concat a b))

let sorted_set_gen =
  QCheck.Gen.(
    list_size (int_bound 50) (int_bound 10_000) >|= fun l ->
    Array.of_list (List.sort_uniq compare l))

let sorted_set = QCheck.make ~print:(fun a -> QCheck.Print.(array int) a) sorted_set_gen

(* ---------- Bignat ---------- *)

let test_bignat_basic () =
  check_bool "zero" true (Bignat.is_zero Bignat.zero);
  Alcotest.(check (option int)) "roundtrip" (Some 123456789) (Bignat.to_int_opt (Bignat.of_int 123456789));
  Alcotest.(check (option int)) "max_int" (Some max_int) (Bignat.to_int_opt (Bignat.of_int max_int));
  check "compare" 0 (Bignat.compare (Bignat.of_int 42) (Bignat.of_int 42));
  check_bool "lt" true (Bignat.compare (Bignat.of_int 41) (Bignat.of_int 42) < 0)

let test_bignat_arithmetic () =
  let a = Bignat.of_int 999_999_999_999 and b = Bignat.of_int 123_456_789 in
  Alcotest.(check (option int)) "add" (Some 1_000_123_456_788) (Bignat.to_int_opt (Bignat.add a b));
  Alcotest.(check (option int)) "sub" (Some 999_876_543_210) (Bignat.to_int_opt (Bignat.sub a b));
  Alcotest.(check (option int)) "mul_small" (Some 2_999_999_999_997)
    (Bignat.to_int_opt (Bignat.mul_small a 3));
  let q, r = Bignat.div_small a 7 in
  Alcotest.(check (option int)) "div q" (Some 142_857_142_857) (Bignat.to_int_opt q);
  check "div r" 0 r

let test_bignat_big () =
  (* 2^200 via repeated doubling: bit_length must be 201 and only bit 200
     set. *)
  let v = ref Bignat.one in
  for _ = 1 to 200 do
    v := Bignat.mul_small !v 2
  done;
  check "bit length" 201 (Bignat.bit_length !v);
  check_bool "top bit" true (Bignat.bit !v 200);
  check_bool "low bit" false (Bignat.bit !v 0);
  Alcotest.(check (option int)) "too big" None (Bignat.to_int_opt !v);
  (* divide back down *)
  let w = ref !v in
  for _ = 1 to 200 do
    let q, r = Bignat.div_small !w 2 in
    check "even" 0 r;
    w := q
  done;
  check_bool "back to one" true (Bignat.equal !w Bignat.one)

let test_bignat_binomial () =
  let check_binom n k expected =
    Alcotest.(check (option int))
      (Printf.sprintf "C(%d,%d)" n k)
      (Some expected)
      (Bignat.to_int_opt (Bignat.binomial n k))
  in
  check_binom 10 5 252;
  check_binom 52 5 2_598_960;
  check_binom 7 0 1;
  check_binom 7 7 1;
  check_binom 3 5 0;
  (* C(1000, 500) has about 995 bits *)
  let big = Bignat.binomial 1000 500 in
  check_bool "big binomial size" true (Bignat.bit_length big > 980 && Bignat.bit_length big < 1000)

let prop_pascal =
  QCheck.Test.make ~name:"Pascal identity C(n,k)=C(n-1,k-1)+C(n-1,k)" ~count:200
    QCheck.(pair (int_range 1 300) (int_range 0 300))
    (fun (n, k) ->
      Bignat.equal (Bignat.binomial n k)
        (Bignat.add (Bignat.binomial (n - 1) (k - 1)) (Bignat.binomial (n - 1) k)))

(* ---------- Enum_codec ---------- *)

let prop_enum_roundtrip =
  QCheck.Test.make ~name:"enumerative codec roundtrip" ~count:150 sorted_set (fun s ->
      let universe = 10_001 in
      let buf = Bitbuf.create () in
      Enum_codec.write buf ~universe s;
      let r = Bitreader.create (Bitbuf.contents buf) in
      Enum_codec.read r ~universe = s && Bitbuf.length buf = Enum_codec.cost ~universe ~k:(Array.length s))

let test_enum_exactly_entropy () =
  (* The payload is exactly ceil(log2 C(n,k)) bits. *)
  let universe = 4096 and k = 128 in
  let entropy = Set_codec.log2_binomial universe k in
  let cost = Enum_codec.cost ~universe ~k - Codes.gamma_cost k in
  check "ceil entropy" (int_of_float (Float.ceil entropy)) cost

let test_enum_beats_gaps () =
  (* On a dense set the enumerative code is strictly tighter than gaps. *)
  let universe = 1024 and k = 256 in
  let s = Array.init k (fun i -> i * 4) in
  let gaps = Set_codec.gaps_cost s in
  let enum = Enum_codec.cost ~universe ~k in
  check_bool (Printf.sprintf "enum %d < gaps %d" enum gaps) true (enum < gaps)

let test_enum_extremes () =
  let roundtrip universe s =
    let buf = Bitbuf.create () in
    Enum_codec.write buf ~universe s;
    let r = Bitreader.create (Bitbuf.contents buf) in
    Alcotest.(check (array int)) "roundtrip" s (Enum_codec.read r ~universe)
  in
  roundtrip 100 [||];
  roundtrip 100 [| 0 |];
  roundtrip 100 [| 99 |];
  roundtrip 100 (Array.init 100 Fun.id);
  roundtrip 2 [| 0; 1 |]

(* ---------- Set_codec ---------- *)

let prop_gaps_roundtrip =
  QCheck.Test.make ~name:"set gaps roundtrip" ~count:300 sorted_set (fun s ->
      let buf = Bitbuf.create () in
      Set_codec.write_gaps buf s;
      let r = Bitreader.create (Bitbuf.contents buf) in
      Set_codec.read_gaps r = s)

let prop_fixed_roundtrip =
  QCheck.Test.make ~name:"set fixed roundtrip" ~count:300 sorted_set (fun s ->
      let universe = 10_001 in
      let buf = Bitbuf.create () in
      Set_codec.write_fixed buf ~universe s;
      let r = Bitreader.create (Bitbuf.contents buf) in
      Set_codec.read_fixed r ~universe = s)

let prop_gaps_cost_exact =
  QCheck.Test.make ~name:"gaps_cost matches written bits" ~count:300 sorted_set (fun s ->
      let buf = Bitbuf.create () in
      Set_codec.write_gaps buf s;
      Bitbuf.length buf = Set_codec.gaps_cost s)

let test_gaps_near_entropy () =
  (* The gap encoding of a k-subset of [n] should stay within a small
     constant factor of log2 (binom n k) for a dense-ish arithmetic set. *)
  let n = 1 lsl 16 and k = 1 lsl 10 in
  let s = Array.init k (fun i -> i * (n / k)) in
  let cost = float_of_int (Set_codec.gaps_cost s) in
  let entropy = Set_codec.log2_binomial n k in
  if cost > 3.0 *. entropy then
    Alcotest.failf "gap encoding too fat: %.0f bits vs entropy %.0f" cost entropy

let test_codec_validation () =
  let buf = Bitbuf.create () in
  Alcotest.check_raises "unsorted" (Invalid_argument "Set_codec: not strictly increasing") (fun () ->
      Set_codec.write_fixed buf ~universe:10 [| 3; 2 |]);
  Alcotest.check_raises "out of universe" (Invalid_argument "Set_codec: element out of universe")
    (fun () -> Set_codec.write_fixed buf ~universe:10 [| 3; 10 |])

let test_log2_binomial () =
  (* binom(10, 5) = 252 -> log2 = 7.977... *)
  let v = Set_codec.log2_binomial 10 5 in
  if abs_float (v -. 7.977) > 0.01 then Alcotest.failf "log2_binomial 10 5 = %f" v

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bitio"
    [
      ( "bits",
        [
          Alcotest.test_case "of_bools/get" `Quick test_bits_of_bools;
          Alcotest.test_case "get bounds" `Quick test_bits_get_bounds;
          Alcotest.test_case "equal" `Quick test_bits_equal;
          Alcotest.test_case "concat" `Quick test_bits_concat;
          Alcotest.test_case "of_string" `Quick test_bits_of_string;
        ] );
      ( "bitbuf",
        [
          Alcotest.test_case "write/read widths" `Quick test_write_read_bits;
          Alcotest.test_case "width checks" `Quick test_bitbuf_width_checks;
          Alcotest.test_case "underflow" `Quick test_reader_underflow;
          Alcotest.test_case "growth" `Quick test_bitbuf_growth;
          Alcotest.test_case "extract matches get" `Quick test_extract_matches_get;
          Alcotest.test_case "read_blob misaligned" `Quick test_read_blob_misaligned;
          qt prop_append_concat_agree;
        ] );
      ( "bignat",
        [
          Alcotest.test_case "basics" `Quick test_bignat_basic;
          Alcotest.test_case "arithmetic" `Quick test_bignat_arithmetic;
          Alcotest.test_case "big values" `Quick test_bignat_big;
          Alcotest.test_case "binomial" `Quick test_bignat_binomial;
          qt prop_pascal;
        ] );
      ( "enum_codec",
        [
          qt prop_enum_roundtrip;
          Alcotest.test_case "exactly entropy" `Quick test_enum_exactly_entropy;
          Alcotest.test_case "beats gaps on dense sets" `Quick test_enum_beats_gaps;
          Alcotest.test_case "extremes" `Quick test_enum_extremes;
        ] );
      ( "codes",
        [
          Alcotest.test_case "bit_width" `Quick test_bit_width;
          Alcotest.test_case "gamma roundtrip+cost" `Quick test_gamma;
          Alcotest.test_case "delta roundtrip+cost" `Quick test_delta;
          Alcotest.test_case "varint roundtrip+cost" `Quick test_varint;
          Alcotest.test_case "unary roundtrip" `Quick test_unary;
          Alcotest.test_case "rice roundtrip+cost" `Quick test_rice;
          Alcotest.test_case "gamma cost shape" `Quick test_gamma_cost_shape;
          qt prop_gamma_roundtrip;
          qt prop_mixed_stream;
        ] );
      ( "set_codec",
        [
          qt prop_gaps_roundtrip;
          qt prop_fixed_roundtrip;
          qt prop_gaps_cost_exact;
          Alcotest.test_case "near entropy" `Quick test_gaps_near_entropy;
          Alcotest.test_case "validation" `Quick test_codec_validation;
          Alcotest.test_case "log2_binomial" `Quick test_log2_binomial;
        ] );
    ]
