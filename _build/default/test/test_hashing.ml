(* Tests for modular arithmetic, primality, and the hash families of
   Fact 2.2 / the FKS reduction. *)

open Hashing

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Modarith ---------- *)

let test_addmod_basic () =
  Alcotest.(check int64) "no wrap" 5L (Modarith.addmod 2L 3L 100L);
  Alcotest.(check int64) "reduces" 1L (Modarith.addmod 7L 4L 10L);
  (* values near 2^63 where signed addition would overflow *)
  let m = Int64.max_int in
  let a = Int64.sub m 1L in
  Alcotest.(check int64) "near max" (Int64.sub m 2L) (Modarith.addmod a a m)

let test_mulmod_matches_reference () =
  (* Compare against the naive method for moduli small enough to be safe. *)
  let rng = Prng.Rng.of_int 5 in
  for _ = 1 to 2000 do
    let m = Int64.of_int (2 + Prng.Rng.int rng 1_000_000) in
    let a = Int64.rem (Prng.Rng.int64 rng) m and b = Int64.rem (Prng.Rng.int64 rng) m in
    let a = Int64.abs a and b = Int64.abs b in
    let expected = Int64.rem (Int64.mul a b) m in
    Alcotest.(check int64) "mulmod" expected (Modarith.mulmod a b m)
  done

let test_mulmod_large () =
  (* (2^40)^2 mod (2^41 - 1): since 2^41 = 1 (mod m), 2^80 = 2^(80-41) * 1...
     compute independently: 2^80 mod (2^41-1) = 2^(80 mod 41) * ... use powmod
     self-consistency instead: mulmod x x m = powmod x 2 m. *)
  let m = Int64.sub (Int64.shift_left 1L 41) 1L in
  let x = Int64.shift_left 1L 40 in
  Alcotest.(check int64) "square" (Modarith.powmod x 2L m) (Modarith.mulmod x x m);
  (* 2^41 mod (2^41 - 1) = 1 *)
  Alcotest.(check int64) "order" 1L (Modarith.powmod 2L 41L m)

let test_powmod () =
  Alcotest.(check int64) "3^4 mod 5" 1L (Modarith.powmod 3L 4L 5L);
  Alcotest.(check int64) "fermat" 1L (Modarith.powmod 17L 1_000_002L 1_000_003L)

(* ---------- Prime ---------- *)

let test_small_primes () =
  let primes = [ 2; 3; 5; 7; 11; 13; 97; 7919; 1_000_003 ] in
  List.iter (fun p -> check_bool (string_of_int p) true (Prime.is_prime p)) primes;
  let composites = [ 0; 1; 4; 9; 91 (* 7*13 *); 561 (* Carmichael *); 1_000_001 ] in
  List.iter (fun c -> check_bool (string_of_int c) false (Prime.is_prime c)) composites

let test_prime_sieve_agreement () =
  (* Cross-check Miller-Rabin against a sieve up to 20k. *)
  let n = 20_000 in
  let sieve = Array.make (n + 1) true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to n do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j <= n do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  for i = 0 to n do
    if Prime.is_prime i <> sieve.(i) then Alcotest.failf "disagree at %d" i
  done

let test_large_primes () =
  (* Known 45-bit prime: 2^45 - 229 is composite? Use verified pair instead:
     2^31 - 1 (Mersenne) is prime; 2^32 + 1 = 641 * 6700417 is not. *)
  check_bool "2^31-1" true (Prime.is_prime ((1 lsl 31) - 1));
  check_bool "2^32+1" false (Prime.is_prime ((1 lsl 32) + 1));
  check_bool "2^61-1" true (Prime.is_prime ((1 lsl 61) - 1))

let test_next_prime () =
  check "from 90" 97 (Prime.next_prime 90);
  check "from prime" 97 (Prime.next_prime 97);
  check "from 2" 2 (Prime.next_prime 2)

let test_random_prime () =
  let rng = Prng.Rng.of_int 17 in
  for _ = 1 to 200 do
    let p = Prime.random_prime rng ~below:10_000 in
    if not (Prime.is_prime p) then Alcotest.failf "not prime: %d" p;
    if p >= 10_000 then Alcotest.failf "too large: %d" p
  done

(* ---------- Hash families ---------- *)

let no_collision_rate (module H : Hash_family.S) ~universe ~range ~set_size ~trials seed =
  let rng = Prng.Rng.of_int seed in
  let failures = ref 0 in
  for _ = 1 to trials do
    (* a set of [set_size] distinct random elements *)
    let table = Hashtbl.create set_size in
    while Hashtbl.length table < set_size do
      Hashtbl.replace table (Prng.Rng.int rng universe) ()
    done;
    let s = Array.of_seq (Hashtbl.to_seq_keys table) in
    let h = H.create rng ~universe ~range in
    if Hash_family.has_collision ~hash:(H.hash h) s then incr failures
  done;
  float_of_int !failures /. float_of_int trials

let test_cw_range () =
  let rng = Prng.Rng.of_int 3 in
  let h = Carter_wegman.create rng ~universe:1_000_000 ~range:37 in
  for x = 0 to 9_999 do
    let v = Carter_wegman.hash h x in
    if v < 0 || v >= 37 then Alcotest.failf "out of range: %d" v
  done

let test_cw_collision_bound () =
  (* Pairwise independence: k=10 elements into range 1000 collide with
     probability <= binom(10,2)/1000 = 4.5% (plus mod-range slack). *)
  let rate =
    no_collision_rate (module Carter_wegman) ~universe:1_000_000 ~range:1000 ~set_size:10
      ~trials:2000 7
  in
  if rate > 0.09 then Alcotest.failf "collision rate too high: %f" rate

let test_cw_large_universe () =
  (* Exercise the mulmod slow path: universe beyond 2^32. *)
  let rng = Prng.Rng.of_int 13 in
  let universe = 1 lsl 45 in
  let h = Carter_wegman.create rng ~universe ~range:1024 in
  let seen = Hashtbl.create 16 in
  for i = 0 to 999 do
    let x = (i * 97_003_471) + (1 lsl 40) in
    let v = Carter_wegman.hash h x in
    if v < 0 || v >= 1024 then Alcotest.failf "out of range: %d" v;
    Hashtbl.replace seen v ()
  done;
  (* 1000 draws into 1024 buckets should touch many distinct buckets. *)
  if Hashtbl.length seen < 400 then Alcotest.failf "suspiciously few buckets: %d" (Hashtbl.length seen)

let test_multiply_shift_collisions () =
  let rate =
    no_collision_rate (module Multiply_shift) ~universe:1_000_000 ~range:1024 ~set_size:10
      ~trials:2000 19
  in
  if rate > 0.15 then Alcotest.failf "collision rate too high: %f" rate

let test_tabulation_collisions () =
  let rate =
    no_collision_rate (module Tabulation) ~universe:1_000_000 ~range:1024 ~set_size:10 ~trials:1000 23
  in
  if rate > 0.15 then Alcotest.failf "collision rate too high: %f" rate

let test_collision_helpers () =
  let hash x = x mod 3 in
  check_bool "has" true (Hash_family.has_collision ~hash [| 1; 4; 2 |]);
  check_bool "hasn't" false (Hash_family.has_collision ~hash [| 0; 1; 2 |]);
  check "pairs" 3 (Hash_family.colliding_pairs ~hash [| 0; 3; 6 |]);
  check "no pairs" 0 (Hash_family.colliding_pairs ~hash [| 0; 1; 2 |])

(* ---------- FKS ---------- *)

let test_fks_no_collisions_whp () =
  let rng = Prng.Rng.of_int 29 in
  let universe = 1 lsl 40 in
  let set_size = 64 in
  let trials = 500 in
  let failures = ref 0 in
  for _ = 1 to trials do
    let s = Array.init set_size (fun i -> (i * 104_729) + Prng.Rng.int rng 1000 + (i * i)) in
    let s = Array.of_list (List.sort_uniq compare (Array.to_list s)) in
    let f = Fks.create rng ~universe ~set_size:(Array.length s) ~failure:0.01 in
    if Hash_family.has_collision ~hash:(Fks.hash f) s then incr failures
  done;
  (* failure target is 1%; allow generous slack for the union-bound constants *)
  if !failures > trials / 20 then Alcotest.failf "FKS failed %d/%d times" !failures trials

let test_fks_modulus_size () =
  (* The prime should be polynomially bounded: q = O~(k^2 log n / delta). *)
  let bound = Fks.prime_bound ~universe:(1 lsl 40) ~set_size:64 ~failure:0.01 in
  check_bool "bound positive" true (bound > 64);
  (* k^2 log n / (2 delta) = 4096 * 40 / 0.02 = 8.19e6; ln factor ~ 17 *)
  check_bool "bound sane" true (bound < 400_000_000);
  let rng = Prng.Rng.of_int 31 in
  let f = Fks.create rng ~universe:(1 lsl 40) ~set_size:64 ~failure:0.01 in
  check_bool "modulus <= bound" true (Fks.modulus f <= bound);
  check_bool "seed bits small" true (Fks.seed_bits f <= 64)

let test_fks_rejects_bad_args () =
  Alcotest.check_raises "bad failure" (Invalid_argument "Fks.prime_bound: failure") (fun () ->
      ignore (Fks.prime_bound ~universe:100 ~set_size:5 ~failure:0.0))

let () =
  Alcotest.run "hashing"
    [
      ( "modarith",
        [
          Alcotest.test_case "addmod" `Quick test_addmod_basic;
          Alcotest.test_case "mulmod vs reference" `Quick test_mulmod_matches_reference;
          Alcotest.test_case "mulmod large" `Quick test_mulmod_large;
          Alcotest.test_case "powmod" `Quick test_powmod;
        ] );
      ( "prime",
        [
          Alcotest.test_case "small primes" `Quick test_small_primes;
          Alcotest.test_case "sieve agreement" `Quick test_prime_sieve_agreement;
          Alcotest.test_case "large primes" `Quick test_large_primes;
          Alcotest.test_case "next_prime" `Quick test_next_prime;
          Alcotest.test_case "random_prime" `Quick test_random_prime;
        ] );
      ( "families",
        [
          Alcotest.test_case "cw range" `Quick test_cw_range;
          Alcotest.test_case "cw collision bound" `Quick test_cw_collision_bound;
          Alcotest.test_case "cw large universe" `Quick test_cw_large_universe;
          Alcotest.test_case "multiply-shift collisions" `Quick test_multiply_shift_collisions;
          Alcotest.test_case "tabulation collisions" `Quick test_tabulation_collisions;
          Alcotest.test_case "collision helpers" `Quick test_collision_helpers;
        ] );
      ( "fks",
        [
          Alcotest.test_case "no collisions whp" `Quick test_fks_no_collisions_whp;
          Alcotest.test_case "modulus size" `Quick test_fks_modulus_size;
          Alcotest.test_case "bad args" `Quick test_fks_rejects_bad_args;
        ] );
    ]
