(* Tests for the extension layer: message traces, the private-coin
   compilation, the entropy-coded baseline, and windowed stream rarity. *)

open Intersect

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let iset = Alcotest.testable (fun ppf s -> Iset.pp ppf s) Iset.equal

let bits_of_int ~width v =
  let buf = Bitio.Bitbuf.create () in
  Bitio.Bitbuf.write_bits buf ~width v;
  Bitio.Bitbuf.contents buf

(* ---------- Network traces ---------- *)

let test_trace_invariants () =
  let alice ep =
    let chan = Commsim.Chan.of_endpoint ep ~peer:1 in
    chan.Commsim.Chan.send (bits_of_int ~width:10 1);
    ignore (chan.Commsim.Chan.recv ());
    chan.Commsim.Chan.send (bits_of_int ~width:4 2)
  in
  let bob ep =
    let chan = Commsim.Chan.of_endpoint ep ~peer:0 in
    ignore (chan.Commsim.Chan.recv ());
    chan.Commsim.Chan.send (bits_of_int ~width:6 3);
    ignore (chan.Commsim.Chan.recv ())
  in
  let _, cost, trace = Commsim.Network.run_traced [| alice; bob |] in
  check "one entry per message" cost.Commsim.Cost.messages (List.length trace);
  check "bits add up" cost.Commsim.Cost.total_bits
    (List.fold_left (fun acc e -> acc + e.Commsim.Network.bits) 0 trace);
  check "max depth = rounds" cost.Commsim.Cost.rounds
    (List.fold_left (fun acc e -> max acc e.Commsim.Network.depth) 0 trace);
  (* trace is in send order with correct endpoints *)
  match trace with
  | [ m1; m2; m3 ] ->
      check "m1 from" 0 m1.Commsim.Network.from_;
      check "m1 to" 1 m1.Commsim.Network.to_;
      check "m1 depth" 1 m1.Commsim.Network.depth;
      check "m2 from" 1 m2.Commsim.Network.from_;
      check "m2 depth" 2 m2.Commsim.Network.depth;
      check "m3 depth" 3 m3.Commsim.Network.depth
  | _ -> Alcotest.fail "expected 3 messages"

let test_trace_of_protocol () =
  (* The trace of a real protocol satisfies the same invariants. *)
  let pair =
    Workload.Setgen.pair_with_overlap (Prng.Rng.of_int 5) ~universe:10000 ~size_s:50 ~size_t:50
      ~overlap:20
  in
  let rng = Prng.Rng.of_int 6 in
  let results, cost, trace =
    Commsim.Network.run_traced
      [|
        (fun ep ->
          Tree_protocol.run_party `Alice rng ~universe:10000 ~r:3 ~k:50
            (Commsim.Chan.of_endpoint ep ~peer:1)
            pair.Workload.Setgen.s);
        (fun ep ->
          Tree_protocol.run_party `Bob rng ~universe:10000 ~r:3 ~k:50
            (Commsim.Chan.of_endpoint ep ~peer:0)
            pair.Workload.Setgen.t);
      |]
  in
  Alcotest.check iset "exact"
    (Iset.inter pair.Workload.Setgen.s pair.Workload.Setgen.t)
    results.(0);
  check "entries = messages" cost.Commsim.Cost.messages (List.length trace);
  check "bits sum" cost.Commsim.Cost.total_bits
    (List.fold_left (fun acc e -> acc + e.Commsim.Network.bits) 0 trace)

let test_trace_of_multiparty_star () =
  (* trace invariants must hold for a full m-player execution too *)
  let sets =
    Workload.Setgen.family_with_core (Prng.Rng.of_int 95) ~universe:100000 ~players:6 ~size:16
      ~core:5
  in
  let rng = Prng.Rng.of_int 96 in
  (* run the star protocol manually under run_traced *)
  let _, cost = Multiparty.Star.run rng ~universe:100000 ~k:16 sets in
  check_bool "messages counted" true (cost.Commsim.Cost.messages > 0);
  (* per-player conservation: every sent bit is someone's sent_bits *)
  let sent =
    Array.fold_left (fun acc p -> acc + p.Commsim.Cost.sent_bits) 0 cost.Commsim.Cost.players
  in
  check "sent bits = total bits" cost.Commsim.Cost.total_bits sent;
  (* received <= sent (some trailing messages may go unread) *)
  let received =
    Array.fold_left (fun acc p -> acc + p.Commsim.Cost.received_bits) 0 cost.Commsim.Cost.players
  in
  check_bool "received <= sent" true (received <= sent)

(* ---------- Private coin ---------- *)

let test_private_coin_exact () =
  let failures = ref 0 in
  for seed = 1 to 40 do
    let pair =
      Workload.Setgen.pair_with_overlap (Prng.Rng.of_int (900 + seed)) ~universe:1_000_000
        ~size_s:64 ~size_t:64 ~overlap:20
    in
    let protocol = Private_coin.protocol (Tree_protocol.protocol ~r:3 ~k:64 ()) in
    let outcome =
      protocol.Protocol.run (Prng.Rng.of_int seed) ~universe:1_000_000 pair.Workload.Setgen.s
        pair.Workload.Setgen.t
    in
    if not (Protocol.exact outcome ~s:pair.Workload.Setgen.s ~t:pair.Workload.Setgen.t) then
      incr failures
  done;
  if !failures > 2 then Alcotest.failf "failures: %d/40" !failures

let test_private_coin_seed_cost () =
  let pair =
    Workload.Setgen.pair_with_overlap (Prng.Rng.of_int 3) ~universe:(1 lsl 40) ~size_s:32
      ~size_t:32 ~overlap:8
  in
  let base = Tree_protocol.protocol ~r:2 ~k:32 () in
  let wrapped = Private_coin.protocol base in
  let outcome_b = base.Protocol.run (Prng.Rng.of_int 4) ~universe:(1 lsl 40) pair.Workload.Setgen.s pair.Workload.Setgen.t in
  let outcome_w =
    wrapped.Protocol.run (Prng.Rng.of_int 4) ~universe:(1 lsl 40) pair.Workload.Setgen.s
      pair.Workload.Setgen.t
  in
  let seed = Private_coin.seed_bits ~universe:(1 lsl 40) ~k:32 in
  check_bool "seed bits small" true (seed < 64);
  (* the wrapper's extra cost is roughly the seed (base costs vary with the
     different randomness, so compare loosely) *)
  check_bool "extra cost bounded" true
    (outcome_w.Protocol.cost.Commsim.Cost.total_bits
    < (2 * outcome_b.Protocol.cost.Commsim.Cost.total_bits) + (2 * seed));
  check_bool "rounds +1" true
    (outcome_w.Protocol.cost.Commsim.Cost.rounds
    <= outcome_b.Protocol.cost.Commsim.Cost.rounds + 1 + 2)

let test_private_coin_seed_bits_growth () =
  (* O(log k + log log n): doubling n twice only nudges the cost. *)
  let b1 = Private_coin.seed_bits ~universe:(1 lsl 16) ~k:1024 in
  let b2 = Private_coin.seed_bits ~universe:(1 lsl 58) ~k:1024 in
  check_bool "log log n growth" true (b2 - b1 <= 3);
  let b3 = Private_coin.seed_bits ~universe:(1 lsl 16) ~k:(1024 * 1024) in
  check_bool "log k growth" true (b3 - b1 = 10)

(* ---------- Entropy-coded trivial ---------- *)

let test_entropy_protocol_exact () =
  for seed = 1 to 20 do
    let pair =
      Workload.Setgen.pair_with_overlap (Prng.Rng.of_int (50 + seed)) ~universe:20_000 ~size_s:64
        ~size_t:64 ~overlap:13
    in
    let outcome =
      Trivial.protocol_entropy.Protocol.run (Prng.Rng.of_int seed) ~universe:20_000
        pair.Workload.Setgen.s pair.Workload.Setgen.t
    in
    if not (Protocol.exact outcome ~s:pair.Workload.Setgen.s ~t:pair.Workload.Setgen.t) then
      Alcotest.failf "seed %d inexact" seed
  done

let test_entropy_beats_gaps_protocol () =
  let pair =
    Workload.Setgen.pair_with_overlap (Prng.Rng.of_int 9) ~universe:4096 ~size_s:512 ~size_t:512
      ~overlap:100
  in
  let run protocol =
    (protocol.Protocol.run (Prng.Rng.of_int 1) ~universe:4096 pair.Workload.Setgen.s
       pair.Workload.Setgen.t)
      .Protocol.cost
      .Commsim.Cost.total_bits
  in
  let entropy_bits = run Trivial.protocol_entropy in
  let gaps_bits = run Trivial.protocol in
  check_bool
    (Printf.sprintf "entropy %d <= gaps %d" entropy_bits gaps_bits)
    true (entropy_bits <= gaps_bits)

(* ---------- Stream rarity ---------- *)

let test_stream_rarity_known_windows () =
  (* Construct streams whose first window shares exactly half its
     elements. *)
  let left = Array.init 32 (fun i -> i) in
  let right = Array.init 32 (fun i -> if i < 16 then i else 1000 + i) in
  let result =
    Apps.Stream_rarity.run (Prng.Rng.of_int 1) ~universe:10_000 ~window:32 ~stride:32 left right
  in
  match result.Apps.Stream_rarity.steps with
  | [ step ] ->
      (* union = 48, intersection = 16 *)
      Alcotest.(check (float 1e-9)) "rarity2" (16.0 /. 48.0) step.Apps.Stream_rarity.rarity2;
      Alcotest.(check (float 1e-9)) "rarity1" (32.0 /. 48.0) step.Apps.Stream_rarity.rarity1;
      check "position" 0 step.Apps.Stream_rarity.position
  | steps -> Alcotest.failf "expected one step, got %d" (List.length steps)

let test_stream_rarity_sliding () =
  let n = 100 in
  let left = Array.init n (fun i -> i mod 37) in
  let right = Array.init n (fun i -> (i + 5) mod 37) in
  let result = Apps.Stream_rarity.run (Prng.Rng.of_int 2) ~universe:1000 ~window:20 left right in
  let steps = result.Apps.Stream_rarity.steps in
  check "step count" (((n - 20) / 10) + 1) (List.length steps);
  List.iter
    (fun (step : Apps.Stream_rarity.step) ->
      check_bool "rarities sum to 1" true
        (abs_float (step.Apps.Stream_rarity.rarity1 +. step.Apps.Stream_rarity.rarity2 -. 1.0)
        < 1e-9))
    steps;
  check_bool "cost accumulated" true (result.Apps.Stream_rarity.cost.Commsim.Cost.total_bits > 0)

let test_stream_rarity_validation () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Stream_rarity.run: stream lengths")
    (fun () ->
      ignore (Apps.Stream_rarity.run (Prng.Rng.of_int 1) ~universe:10 ~window:2 [| 1 |] [| 1; 2 |]))

(* ---------- Sketch (bottom-k / min-wise) ---------- *)

let test_sketch_estimates_jaccard () =
  (* J = 1/3 planted; k = 256 samples -> standard error ~ 0.03 *)
  let pair =
    Workload.Setgen.pair_with_overlap (Prng.Rng.of_int 11) ~universe:(1 lsl 40) ~size_s:2000
      ~size_t:2000 ~overlap:1000
  in
  let (j, inter), cost =
    Apps.Sketch.exchange (Prng.Rng.of_int 12) ~sketch_size:256 pair.Workload.Setgen.s
      pair.Workload.Setgen.t
  in
  if abs_float (j -. (1.0 /. 3.0)) > 0.12 then Alcotest.failf "jaccard estimate %f" j;
  if abs_float (inter -. 1000.0) > 350.0 then Alcotest.failf "intersection estimate %f" inter;
  check_bool "cheap" true (cost.Commsim.Cost.total_bits < 2 * 256 * 50)

let test_sketch_small_sets_exact () =
  (* sets smaller than the sketch: the estimate should be essentially exact *)
  let s = Iset.of_list (List.init 50 (fun i -> i * 3)) in
  let t = Iset.of_list (List.init 50 (fun i -> i * 3 + (if i < 25 then 0 else 1))) in
  let (j, inter), _ = Apps.Sketch.exchange (Prng.Rng.of_int 13) ~sketch_size:256 s t in
  Alcotest.(check (float 0.01)) "jaccard" (25.0 /. 75.0) j;
  Alcotest.(check (float 1.0)) "intersection" 25.0 inter

let test_sketch_identical_and_disjoint () =
  let s = Iset.of_list (List.init 500 (fun i -> i * 7)) in
  let (j, _), _ = Apps.Sketch.exchange (Prng.Rng.of_int 14) ~sketch_size:64 s s in
  Alcotest.(check (float 1e-9)) "identical" 1.0 j;
  let t = Iset.of_list (List.init 500 (fun i -> (i * 7) + 1)) in
  let (j, inter), _ = Apps.Sketch.exchange (Prng.Rng.of_int 15) ~sketch_size:64 s t in
  Alcotest.(check (float 1e-9)) "disjoint j" 0.0 j;
  Alcotest.(check (float 1e-9)) "disjoint size" 0.0 inter

let test_sketch_roundtrip () =
  let s = Workload.Setgen.random_set (Prng.Rng.of_int 16) ~universe:(1 lsl 30) ~size:300 in
  let sketch = Apps.Sketch.create (Prng.Rng.of_int 17) ~size:64 s in
  check "cardinal" 64 (Apps.Sketch.cardinal sketch);
  let back = Apps.Sketch.decode (Apps.Sketch.encode sketch) in
  check "roundtrip cardinal" 64 (Apps.Sketch.cardinal back)

(* ---------- Incremental sync ---------- *)

let inc_state seed =
  let pair =
    Workload.Setgen.pair_with_overlap (Prng.Rng.of_int seed) ~universe:100000 ~size_s:80
      ~size_t:80 ~overlap:30
  in
  let alice, bob, cost =
    Apps.Incremental.start (Prng.Rng.of_int (seed + 1)) ~universe:100000 pair.Workload.Setgen.s
      pair.Workload.Setgen.t
  in
  (pair, alice, bob, cost)

let check_inc_consistent alice bob =
  let expected =
    Iset.inter alice.Apps.Incremental.current bob.Apps.Incremental.current
  in
  Alcotest.check iset "alice candidate" expected alice.Apps.Incremental.candidate;
  Alcotest.check iset "bob candidate" expected bob.Apps.Incremental.candidate

let test_incremental_start () =
  let _, alice, bob, _ = inc_state 21 in
  check_inc_consistent alice bob

let test_incremental_sync_batches () =
  let _, alice, bob, _ = inc_state 23 in
  let alice = ref alice and bob = ref bob in
  let rng = Prng.Rng.of_int 24 in
  for batch = 1 to 8 do
    let pick_updates state seed =
      let workload = Prng.Rng.with_label (Prng.Rng.of_int seed) "upd" in
      let current = state.Apps.Incremental.current in
      (* delete a couple of present elements, insert fresh ones *)
      let deletes =
        Iset.of_list
          (List.filteri (fun i _ -> i mod 11 = batch mod 11) (Array.to_list current))
      in
      let inserts =
        let fresh = ref [] in
        while List.length !fresh < 5 do
          let x = Prng.Rng.int workload 100000 in
          if not (Iset.mem current x) then fresh := x :: !fresh
        done;
        Iset.of_list !fresh
      in
      { Apps.Incremental.inserts = Iset.diff inserts current; deletes }
    in
    let alice_update = pick_updates !alice (batch * 100) in
    let bob_update = pick_updates !bob (batch * 100 + 1) in
    let a, b, cost =
      Apps.Incremental.sync rng ~universe:100000 ~batch !alice !bob ~alice_update ~bob_update
    in
    alice := a;
    bob := b;
    check_bool "cost positive" true (cost.Commsim.Cost.total_bits > 0);
    check_inc_consistent !alice !bob
  done

let test_incremental_insert_shared_element () =
  (* Bob inserts an element Alice already has: it must join the candidate. *)
  let universe = 1000 in
  let s = [| 1; 5; 9 |] and t = [| 5; 20 |] in
  let alice, bob, _ = Apps.Incremental.start (Prng.Rng.of_int 31) ~universe s t in
  let a, b, _ =
    Apps.Incremental.sync (Prng.Rng.of_int 32) ~universe ~batch:1 alice bob
      ~alice_update:{ Apps.Incremental.inserts = [||]; deletes = [||] }
      ~bob_update:{ Apps.Incremental.inserts = [| 9 |]; deletes = [||] }
  in
  Alcotest.check iset "alice view" [| 5; 9 |] a.Apps.Incremental.candidate;
  Alcotest.check iset "bob view" [| 5; 9 |] b.Apps.Incremental.candidate;
  (* and a delete removes it again on either side *)
  let a, b, _ =
    Apps.Incremental.sync (Prng.Rng.of_int 33) ~universe ~batch:2 a b
      ~alice_update:{ Apps.Incremental.inserts = [||]; deletes = [| 5 |] }
      ~bob_update:{ Apps.Incremental.inserts = [||]; deletes = [||] }
  in
  Alcotest.check iset "after delete" [| 9 |] a.Apps.Incremental.candidate;
  check_inc_consistent a b

let test_incremental_cost_scales_with_delta () =
  (* syncing a tiny delta must be far cheaper than a fresh run *)
  let pair, alice, bob, start_cost = inc_state 41 in
  ignore pair;
  let fresh x current = not (Iset.mem current x) in
  let insert state x = { Apps.Incremental.inserts = (if fresh x state.Apps.Incremental.current then [| x |] else [||]); deletes = [||] } in
  let _, _, sync_cost =
    Apps.Incremental.sync (Prng.Rng.of_int 42) ~universe:100000 ~batch:1 alice bob
      ~alice_update:(insert alice 99_999) ~bob_update:(insert bob 99_998)
  in
  check_bool
    (Printf.sprintf "sync %d << start %d" sync_cost.Commsim.Cost.total_bits
       start_cost.Commsim.Cost.total_bits)
    true
    (sync_cost.Commsim.Cost.total_bits * 5 < start_cost.Commsim.Cost.total_bits)

let test_incremental_validation () =
  let alice, bob, _ = Apps.Incremental.start (Prng.Rng.of_int 51) ~universe:100 [| 1 |] [| 1 |] in
  Alcotest.check_raises "insert present" (Invalid_argument "Incremental.sync: inserting present elements")
    (fun () ->
      ignore
        (Apps.Incremental.sync (Prng.Rng.of_int 52) ~universe:100 ~batch:1 alice bob
           ~alice_update:{ Apps.Incremental.inserts = [| 1 |]; deletes = [||] }
           ~bob_update:{ Apps.Incremental.inserts = [||]; deletes = [||] }))

(* ---------- Poly family ---------- *)

let test_poly_family_range_and_collisions () =
  let rng = Prng.Rng.of_int 61 in
  List.iter
    (fun independence ->
      let h = Hashing.Poly_family.create rng ~universe:1_000_000 ~range:512 ~independence in
      Alcotest.(check int) "independence" independence (Hashing.Poly_family.independence h);
      for x = 0 to 2000 do
        let v = Hashing.Poly_family.hash h x in
        if v < 0 || v >= 512 then Alcotest.failf "out of range %d" v
      done)
    [ 1; 2; 4; 6 ]

let test_poly_family_collision_rate () =
  let rng = Prng.Rng.of_int 62 in
  let failures = ref 0 in
  let trials = 1000 in
  for _ = 1 to trials do
    let h = Hashing.Poly_family.create rng ~universe:1_000_000 ~range:1000 ~independence:4 in
    let s = Array.init 10 (fun i -> (i * 99_991) + 7) in
    if Hashing.Hash_family.has_collision ~hash:(Hashing.Poly_family.hash h) s then incr failures
  done;
  (* expected ~ binom(10,2)/1000 = 4.5% *)
  if !failures > trials / 10 then Alcotest.failf "collisions %d/%d" !failures trials

(* ---------- Tamper ---------- *)

let test_tamper_equality_catches_corruption () =
  (* Flipping any tag bit must turn an equal-inputs equality test negative:
     the test is one-sided in the safe direction even under corruption. *)
  let payload = Bitio.Bits.of_string "identical-inputs" in
  for bit = 0 to 19 do
    let shared = Prng.Rng.with_label (Prng.Rng.of_int bit) "t" in
    let (verdict_a, verdict_b), _ =
      Commsim.Two_party.run
        ~alice:(fun chan ->
          let chan =
            Commsim.Chan.tamper ~flip_bit:(fun index _ -> if index = 0 then Some bit else None) chan
          in
          Equality.run_alice shared ~bits:20 chan payload)
        ~bob:(fun chan -> Equality.run_bob shared ~bits:20 chan payload)
    in
    check_bool "corrupted tag rejected" false verdict_a;
    check_bool "verdicts agree" true (verdict_a = verdict_b)
  done

let test_tamper_drop_deadlocks () =
  (* A dropped message must surface as a deadlock, not silent corruption. *)
  let attempt () =
    Commsim.Two_party.run
      ~alice:(fun chan ->
        let chan = Commsim.Chan.tamper ~drop_nth:0 chan in
        chan.Commsim.Chan.send (Bitio.Bits.of_bools [ true ]);
        chan.Commsim.Chan.recv ())
      ~bob:(fun chan ->
        let payload = chan.Commsim.Chan.recv () in
        chan.Commsim.Chan.send payload;
        ())
  in
  match attempt () with
  | exception Commsim.Network.Deadlock _ -> ()
  | _ -> Alcotest.fail "expected deadlock"

(* ---------- Scenarios ---------- *)

let test_scenarios_shingles () =
  let a = Workload.Scenarios.shingles ~w:2 ~universe_bits:30 "the cat sat on the mat" in
  let b = Workload.Scenarios.shingles ~w:2 ~universe_bits:30 "the cat sat on the hat" in
  (* 5 shingles each; "the cat", "cat sat", "sat on", "on the" shared *)
  check "a size" 5 (Iset.cardinal a);
  check "shared" 4 (Iset.cardinal (Iset.inter a b));
  (* deterministic public embedding: same text, same set *)
  Alcotest.check iset "deterministic" a
    (Workload.Scenarios.shingles ~w:2 ~universe_bits:30 "the cat sat on the mat")

let test_scenarios_correlated_streams () =
  let left, right =
    Workload.Scenarios.correlated_streams (Prng.Rng.of_int 91) ~length:200 ~alphabet:50 ~lag:3
  in
  check "left length" 200 (Array.length left);
  check "right length" 200 (Array.length right);
  (* lagged copies: left.(i) = right.(i + lag) *)
  for i = 0 to 196 do
    check "lagged" right.(i + 3) left.(i)
  done

let test_scenarios_keyed_table () =
  let table =
    Workload.Scenarios.keyed_table (Prng.Rng.of_int 92) ~universe:10000 ~rows:100
      ~payload:(fun key -> "p" ^ string_of_int key)
  in
  check "rows" 100 (Array.length table);
  Array.iter (fun (key, payload) -> Alcotest.(check string) "payload" ("p" ^ string_of_int key) payload) table

(* ---------- Sketch error scaling ---------- *)

let test_sketch_error_shrinks_with_size () =
  (* mean |error| over trials should improve markedly from size 32 to 512 *)
  let mean_err sketch_size =
    let total = ref 0.0 in
    let trials = 15 in
    for seed = 1 to trials do
      let pair =
        Workload.Setgen.pair_with_overlap
          (Prng.Rng.of_int (7000 + seed))
          ~universe:(1 lsl 40) ~size_s:3000 ~size_t:3000 ~overlap:1000
      in
      let (j, _), _ =
        Apps.Sketch.exchange (Prng.Rng.of_int seed) ~sketch_size pair.Workload.Setgen.s
          pair.Workload.Setgen.t
      in
      total := !total +. abs_float (j -. 0.2)
    done;
    !total /. 15.0
  in
  let coarse = mean_err 32 and fine = mean_err 512 in
  check_bool (Printf.sprintf "err %.4f -> %.4f" coarse fine) true (fine < coarse)

(* ---------- Broadcast / run_all ---------- *)

let test_star_run_all () =
  let sets =
    Workload.Setgen.family_with_core (Prng.Rng.of_int 71) ~universe:100000 ~players:7 ~size:24
      ~core:9
  in
  let results, cost = Multiparty.Star.run_all (Prng.Rng.of_int 72) ~universe:100000 ~k:24 sets in
  let expected = Iset.inter_many (Array.to_list sets) in
  Array.iteri
    (fun rank result ->
      Alcotest.check iset (Printf.sprintf "player %d" rank) expected result)
    results;
  (* broadcast adds m-1 = 6 extra messages beyond the non-broadcast run *)
  let _, base_cost = Multiparty.Star.run (Prng.Rng.of_int 72) ~universe:100000 ~k:24 sets in
  check "extra messages" 6 (cost.Commsim.Cost.messages - base_cost.Commsim.Cost.messages)

let test_star_run_all_single () =
  let results, _ = Multiparty.Star.run_all (Prng.Rng.of_int 73) ~universe:100 ~k:2 [| [| 1 |] |] in
  Alcotest.check iset "single" [| 1 |] results.(0)

let test_tournament_run_all () =
  let sets =
    Workload.Setgen.family_with_core (Prng.Rng.of_int 81) ~universe:100000 ~players:10 ~size:20
      ~core:6
  in
  let results, _ =
    Multiparty.Tournament.run_all (Prng.Rng.of_int 82) ~universe:100000 ~k:20 sets
  in
  let expected = Iset.inter_many (Array.to_list sets) in
  Array.iteri
    (fun rank result ->
      Alcotest.check iset (Printf.sprintf "player %d" rank) expected result)
    results

let () =
  Alcotest.run "extensions"
    [
      ( "trace",
        [
          Alcotest.test_case "invariants" `Quick test_trace_invariants;
          Alcotest.test_case "protocol trace" `Quick test_trace_of_protocol;
          Alcotest.test_case "multiparty conservation" `Quick test_trace_of_multiparty_star;
        ] );
      ( "private_coin",
        [
          Alcotest.test_case "exact" `Quick test_private_coin_exact;
          Alcotest.test_case "seed cost" `Quick test_private_coin_seed_cost;
          Alcotest.test_case "seed bits growth" `Quick test_private_coin_seed_bits_growth;
        ] );
      ( "entropy_trivial",
        [
          Alcotest.test_case "exact" `Quick test_entropy_protocol_exact;
          Alcotest.test_case "beats gaps" `Quick test_entropy_beats_gaps_protocol;
        ] );
      ( "stream_rarity",
        [
          Alcotest.test_case "known windows" `Quick test_stream_rarity_known_windows;
          Alcotest.test_case "sliding" `Quick test_stream_rarity_sliding;
          Alcotest.test_case "validation" `Quick test_stream_rarity_validation;
        ] );
      ( "sketch",
        [
          Alcotest.test_case "estimates jaccard" `Quick test_sketch_estimates_jaccard;
          Alcotest.test_case "small sets exact" `Quick test_sketch_small_sets_exact;
          Alcotest.test_case "identical and disjoint" `Quick test_sketch_identical_and_disjoint;
          Alcotest.test_case "roundtrip" `Quick test_sketch_roundtrip;
          Alcotest.test_case "error shrinks with size" `Quick test_sketch_error_shrinks_with_size;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "shingles" `Quick test_scenarios_shingles;
          Alcotest.test_case "correlated streams" `Quick test_scenarios_correlated_streams;
          Alcotest.test_case "keyed table" `Quick test_scenarios_keyed_table;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "start" `Quick test_incremental_start;
          Alcotest.test_case "sync batches" `Quick test_incremental_sync_batches;
          Alcotest.test_case "insert shared element" `Quick test_incremental_insert_shared_element;
          Alcotest.test_case "cost scales with delta" `Quick test_incremental_cost_scales_with_delta;
          Alcotest.test_case "validation" `Quick test_incremental_validation;
        ] );
      ( "poly_family",
        [
          Alcotest.test_case "range and independence" `Quick test_poly_family_range_and_collisions;
          Alcotest.test_case "collision rate" `Quick test_poly_family_collision_rate;
        ] );
      ( "tamper",
        [
          Alcotest.test_case "equality catches corruption" `Quick test_tamper_equality_catches_corruption;
          Alcotest.test_case "drop deadlocks" `Quick test_tamper_drop_deadlocks;
        ] );
      ( "broadcast",
        [
          Alcotest.test_case "star run_all" `Quick test_star_run_all;
          Alcotest.test_case "single player" `Quick test_star_run_all_single;
          Alcotest.test_case "tournament run_all" `Quick test_tournament_run_all;
        ] );
    ]
