(* End-to-end tests of the intersection protocols: the trivial baseline,
   the one-round hashing protocol, the O(sqrt k)-round bucket protocol
   (Theorem 3.1), the verification-tree protocol (Theorem 1.1), the
   Verified amplification wrapper, and the disjointness baselines. *)

open Intersect

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let iset = Alcotest.testable (fun ppf s -> Iset.pp ppf s) Iset.equal

let gen_pair seed ~universe ~size_s ~size_t ~overlap =
  Workload.Setgen.pair_with_overlap (Prng.Rng.of_int seed) ~universe ~size_s ~size_t ~overlap

let run_protocol protocol seed ~universe s t =
  protocol.Protocol.run (Prng.Rng.with_label (Prng.Rng.of_int seed) "trial") ~universe s t

(* Exactness rate of a protocol over [trials] random instances. *)
let failure_count protocol ~trials ~universe ~size ~overlap =
  let failures = ref 0 in
  for seed = 1 to trials do
    let pair = gen_pair (1000 + seed) ~universe ~size_s:size ~size_t:size ~overlap in
    let outcome = run_protocol protocol seed ~universe pair.Workload.Setgen.s pair.Workload.Setgen.t in
    if not (Protocol.exact outcome ~s:pair.Workload.Setgen.s ~t:pair.Workload.Setgen.t) then
      incr failures
  done;
  !failures

(* ---------- Trivial ---------- *)

let test_trivial_exact () =
  check "never fails" 0 (failure_count Trivial.protocol ~trials:50 ~universe:10000 ~size:30 ~overlap:11)

let test_trivial_cost_matches_encoding () =
  let pair = gen_pair 1 ~universe:100000 ~size_s:64 ~size_t:64 ~overlap:16 in
  let outcome = run_protocol Trivial.protocol 1 ~universe:100000 pair.Workload.Setgen.s pair.Workload.Setgen.t in
  let expected_bits =
    Bitio.Set_codec.gaps_cost pair.Workload.Setgen.s
    + Bitio.Set_codec.gaps_cost (Iset.inter pair.Workload.Setgen.s pair.Workload.Setgen.t)
  in
  check "bits" expected_bits outcome.Protocol.cost.Commsim.Cost.total_bits;
  check "rounds" 2 outcome.Protocol.cost.Commsim.Cost.rounds

let test_trivial_full_exchange_one_round () =
  let pair = gen_pair 2 ~universe:10000 ~size_s:20 ~size_t:20 ~overlap:5 in
  let outcome =
    run_protocol Trivial.protocol_full_exchange 2 ~universe:10000 pair.Workload.Setgen.s
      pair.Workload.Setgen.t
  in
  check_bool "exact" true (Protocol.exact outcome ~s:pair.Workload.Setgen.s ~t:pair.Workload.Setgen.t);
  (* both messages are independent: a single round *)
  check "one round" 1 outcome.Protocol.cost.Commsim.Cost.rounds

let test_trivial_rejects_bad_inputs () =
  Alcotest.check_raises "unsorted" (Invalid_argument "Protocol: S is not a sorted set") (fun () ->
      ignore (run_protocol Trivial.protocol 1 ~universe:10 [| 3; 1 |] [| 1 |]))

(* ---------- One-round hash ---------- *)

let test_one_round_exact_whp () =
  let failures =
    failure_count (One_round_hash.protocol ()) ~trials:100 ~universe:1_000_000 ~size:100 ~overlap:30
  in
  if failures > 2 then Alcotest.failf "failures: %d/100" failures

let test_one_round_simultaneous () =
  (* Both directions are sent before either party reads: the two messages
     are causally independent, i.e. a single simultaneous round. *)
  let pair = gen_pair 3 ~universe:100000 ~size_s:50 ~size_t:50 ~overlap:10 in
  let outcome =
    run_protocol (One_round_hash.protocol ()) 3 ~universe:100000 pair.Workload.Setgen.s
      pair.Workload.Setgen.t
  in
  check "rounds" 1 outcome.Protocol.cost.Commsim.Cost.rounds;
  check "messages" 2 outcome.Protocol.cost.Commsim.Cost.messages

let test_one_round_cost_scales_klogk () =
  (* bits per element should grow like log k: ~4 log k tags. *)
  let bits_at size =
    let pair = gen_pair 4 ~universe:(1 lsl 40) ~size_s:size ~size_t:size ~overlap:(size / 4) in
    let outcome =
      run_protocol (One_round_hash.protocol ()) 4 ~universe:(1 lsl 40) pair.Workload.Setgen.s
        pair.Workload.Setgen.t
    in
    outcome.Protocol.cost.Commsim.Cost.total_bits
  in
  let b256 = bits_at 256 and b1024 = bits_at 1024 in
  (* 4x elements, slightly more than 4x bits, far below 8x *)
  check_bool "superlinear but mildly" true (b1024 > 4 * b256 && b1024 < 8 * b256)

let prop_one_round_sandwich =
  QCheck.Test.make ~name:"one-round sandwich invariant" ~count:100
    QCheck.(triple small_signed_int (list (int_bound 500)) (list (int_bound 500)))
    (fun (seed, ls, lt) ->
      let s = Iset.of_list ls and t = Iset.of_list lt in
      let outcome = run_protocol (One_round_hash.protocol ()) seed ~universe:501 s t in
      Protocol.sandwich_holds outcome ~s ~t)

(* ---------- Bucket protocol (Theorem 3.1) ---------- *)

let test_bucket_exact_whp () =
  let failures =
    failure_count (Bucket_protocol.protocol ()) ~trials:60 ~universe:1_000_000 ~size:64 ~overlap:20
  in
  if failures > 3 then Alcotest.failf "failures: %d/60" failures

let test_bucket_identity_small_universe () =
  (* universe <= k^3: the reduction is skipped, outputs still exact *)
  let failures =
    failure_count (Bucket_protocol.protocol ()) ~trials:40 ~universe:5000 ~size:40 ~overlap:15
  in
  if failures > 2 then Alcotest.failf "failures: %d/40" failures

let test_bucket_large_universe () =
  let failures =
    failure_count (Bucket_protocol.protocol ()) ~trials:30 ~universe:(1 lsl 50) ~size:50 ~overlap:25
  in
  if failures > 2 then Alcotest.failf "failures: %d/30" failures

let test_bucket_edge_cases () =
  let outcome = run_protocol (Bucket_protocol.protocol ()) 5 ~universe:1000 Iset.empty Iset.empty in
  Alcotest.check iset "empty" Iset.empty outcome.Protocol.alice;
  let outcome = run_protocol (Bucket_protocol.protocol ()) 6 ~universe:1000 [| 7 |] [| 7 |] in
  Alcotest.check iset "singleton" [| 7 |] outcome.Protocol.alice;
  let outcome = run_protocol (Bucket_protocol.protocol ()) 7 ~universe:1000 [| 7 |] [| 8 |] in
  Alcotest.check iset "disjoint singleton" Iset.empty outcome.Protocol.bob

let test_bucket_equal_sets () =
  let s = Iset.of_list (List.init 100 (fun i -> i * 7)) in
  let outcome = run_protocol (Bucket_protocol.protocol ()) 8 ~universe:10000 s s in
  Alcotest.check iset "alice" s outcome.Protocol.alice;
  Alcotest.check iset "bob" s outcome.Protocol.bob

let test_bucket_rounds_grow_sublinearly () =
  (* rounds ~ sqrt k, certainly well below k *)
  let rounds_at size =
    let pair = gen_pair 9 ~universe:1_000_000 ~size_s:size ~size_t:size ~overlap:(size / 2) in
    let outcome =
      run_protocol (Bucket_protocol.protocol ()) 9 ~universe:1_000_000 pair.Workload.Setgen.s
        pair.Workload.Setgen.t
    in
    outcome.Protocol.cost.Commsim.Cost.rounds
  in
  let r256 = rounds_at 256 in
  check_bool "way below k" true (r256 < 256);
  check_bool "more than constant" true (r256 > 8)

(* ---------- Tree protocol (Theorem 1.1) ---------- *)

let test_tree_exact_whp () =
  List.iter
    (fun r ->
      let failures =
        failure_count (Tree_protocol.protocol ~r ()) ~trials:40 ~universe:1_000_000 ~size:64
          ~overlap:21
      in
      if failures > 2 then Alcotest.failf "r=%d failures: %d/40" r failures)
    [ 1; 2; 3; 4 ]

let test_tree_log_star_exact () =
  let failures =
    failure_count (Tree_protocol.protocol_log_star ()) ~trials:40 ~universe:1_000_000 ~size:128
      ~overlap:64
  in
  if failures > 2 then Alcotest.failf "failures: %d/40" failures

let test_tree_rounds_bound () =
  List.iter
    (fun r ->
      let pair = gen_pair 10 ~universe:1_000_000 ~size_s:256 ~size_t:256 ~overlap:100 in
      let outcome =
        run_protocol (Tree_protocol.protocol ~r ()) 10 ~universe:1_000_000 pair.Workload.Setgen.s
          pair.Workload.Setgen.t
      in
      check_bool
        (Printf.sprintf "r=%d rounds %d <= 4r" r outcome.Protocol.cost.Commsim.Cost.rounds)
        true
        (outcome.Protocol.cost.Commsim.Cost.rounds <= 4 * r))
    [ 1; 2; 3; 5 ]

let test_tree_edge_cases () =
  List.iter
    (fun r ->
      let outcome = run_protocol (Tree_protocol.protocol ~r ()) 11 ~universe:100 Iset.empty Iset.empty in
      Alcotest.check iset "empty" Iset.empty outcome.Protocol.alice;
      let outcome = run_protocol (Tree_protocol.protocol ~r ()) 12 ~universe:100 [| 3 |] [| 3 |] in
      Alcotest.check iset "same singleton" [| 3 |] outcome.Protocol.bob;
      let outcome = run_protocol (Tree_protocol.protocol ~r ()) 13 ~universe:100 [| 3 |] [| 4 |] in
      Alcotest.check iset "disjoint singleton" Iset.empty outcome.Protocol.alice)
    [ 1; 2; 3 ]

let test_tree_identical_sets () =
  let s = Iset.of_list (List.init 200 (fun i -> (i * 13) + 1)) in
  let outcome = run_protocol (Tree_protocol.protocol ~r:3 ()) 14 ~universe:10000 s s in
  Alcotest.check iset "full intersection" s outcome.Protocol.alice

let test_tree_disjoint_sets () =
  let s = Iset.of_list (List.init 100 (fun i -> 2 * i)) in
  let t = Iset.of_list (List.init 100 (fun i -> (2 * i) + 1)) in
  let outcome = run_protocol (Tree_protocol.protocol ~r:2 ()) 15 ~universe:10000 s t in
  Alcotest.check iset "empty" Iset.empty outcome.Protocol.alice;
  Alcotest.check iset "empty bob" Iset.empty outcome.Protocol.bob

let test_tree_asymmetric_sizes () =
  let pair = gen_pair 16 ~universe:100000 ~size_s:10 ~size_t:200 ~overlap:5 in
  let outcome =
    run_protocol (Tree_protocol.protocol ~r:3 ()) 16 ~universe:100000 pair.Workload.Setgen.s
      pair.Workload.Setgen.t
  in
  check_bool "exact" true (Protocol.exact outcome ~s:pair.Workload.Setgen.s ~t:pair.Workload.Setgen.t)

let test_tree_communication_decreases_with_r () =
  (* The T1 shape in miniature: more rounds, fewer bits (r=1 vs r=3). *)
  let avg_bits r =
    let total = ref 0 in
    for seed = 1 to 10 do
      let pair = gen_pair (300 + seed) ~universe:(1 lsl 30) ~size_s:512 ~size_t:512 ~overlap:200 in
      let outcome =
        run_protocol (Tree_protocol.protocol ~r ()) seed ~universe:(1 lsl 30)
          pair.Workload.Setgen.s pair.Workload.Setgen.t
      in
      total := !total + outcome.Protocol.cost.Commsim.Cost.total_bits
    done;
    !total / 10
  in
  let b1 = avg_bits 1 and b3 = avg_bits 3 in
  check_bool (Printf.sprintf "r=3 (%d bits) cheaper than r=1 (%d bits)" b3 b1) true (b3 < b1)

let test_tree_budgeted () =
  let pair = gen_pair 18 ~universe:(1 lsl 30) ~size_s:256 ~size_t:256 ~overlap:64 in
  let run protocol = run_protocol protocol 18 ~universe:(1 lsl 30) pair.Workload.Setgen.s pair.Workload.Setgen.t in
  (* a generous budget never trips: identical run to the plain protocol *)
  let plain = run (Tree_protocol.protocol ~r:2 ~k:256 ()) in
  let generous = run (Tree_protocol.protocol_budgeted ~budget_factor:1000 ~r:2 ~k:256 ()) in
  check "same bits" plain.Protocol.cost.Commsim.Cost.total_bits
    generous.Protocol.cost.Commsim.Cost.total_bits;
  check_bool "exact" true (Protocol.exact generous ~s:pair.Workload.Setgen.s ~t:pair.Workload.Setgen.t);
  (* a starvation budget forces the deterministic fallback: still exact,
     bounded by budget + one stage + the trivial exchange *)
  let starved = run (Tree_protocol.protocol_budgeted ~budget_factor:1 ~r:2 ~k:256 ()) in
  check_bool "fallback exact" true
    (Protocol.exact starved ~s:pair.Workload.Setgen.s ~t:pair.Workload.Setgen.t);
  (* the fallback fired (cost profile differs from the uninterrupted run)
     and stays within budget-overshoot + one stage + the trivial exchange *)
  check_bool "fallback fired" true
    (starved.Protocol.cost.Commsim.Cost.total_bits <> plain.Protocol.cost.Commsim.Cost.total_bits);
  let trivial_bound =
    Bitio.Set_codec.gaps_cost pair.Workload.Setgen.s
    + Bitio.Set_codec.gaps_cost (Iset.inter pair.Workload.Setgen.s pair.Workload.Setgen.t)
  in
  check_bool "worst case bounded" true
    (starved.Protocol.cost.Commsim.Cost.total_bits
    <= plain.Protocol.cost.Commsim.Cost.total_bits + trivial_bound)

let prop_tree_sandwich =
  QCheck.Test.make ~name:"tree protocol sandwich invariant" ~count:60
    QCheck.(triple small_signed_int (list (int_bound 300)) (list (int_bound 300)))
    (fun (seed, ls, lt) ->
      let s = Iset.of_list ls and t = Iset.of_list lt in
      let outcome = run_protocol (Tree_protocol.protocol ~r:2 ()) seed ~universe:301 s t in
      Protocol.sandwich_holds outcome ~s ~t)

(* ---------- Verified wrapper ---------- *)

let test_verified_exact () =
  (* Wrap a deliberately sloppy base (tiny tags fail often); verification
     must still deliver exact results. *)
  let sloppy = Basic_intersection.protocol ~failure:0.5 in
  let failures = ref 0 in
  let attempts_total = ref 0 in
  for seed = 1 to 100 do
    let pair = gen_pair (600 + seed) ~universe:100000 ~size_s:40 ~size_t:40 ~overlap:10 in
    let result =
      Verified.run sloppy ~bits:64 ~max_attempts:50
        (Prng.Rng.with_label (Prng.Rng.of_int seed) "ver")
        ~universe:100000 pair.Workload.Setgen.s pair.Workload.Setgen.t
    in
    attempts_total := !attempts_total + result.Verified.attempts;
    check_bool "verified flag" true result.Verified.verified;
    if not (Protocol.exact result.Verified.outcome ~s:pair.Workload.Setgen.s ~t:pair.Workload.Setgen.t)
    then incr failures
  done;
  check "always exact" 0 !failures;
  (* some attempts needed more than one run, none should need many *)
  check_bool "expected O(1) attempts" true (!attempts_total < 300)

let test_verified_cost_accumulates () =
  let pair = gen_pair 17 ~universe:10000 ~size_s:20 ~size_t:20 ~overlap:8 in
  let base = Basic_intersection.protocol ~failure:0.01 in
  let result =
    Verified.run base ~bits:32 ~max_attempts:5
      (Prng.Rng.of_int 17)
      ~universe:10000 pair.Workload.Setgen.s pair.Workload.Setgen.t
  in
  let base_outcome =
    run_protocol base 17 ~universe:10000 pair.Workload.Setgen.s pair.Workload.Setgen.t
  in
  check_bool "cost includes verification"
    true
    (result.Verified.outcome.Protocol.cost.Commsim.Cost.total_bits
    > base_outcome.Protocol.cost.Commsim.Cost.total_bits)

let test_verified_rejects_non_sandwich () =
  let bogus = { Protocol.name = "bogus"; sandwich = false; run = Trivial.protocol.Protocol.run } in
  Alcotest.check_raises "needs sandwich"
    (Invalid_argument "Verified.run: base protocol lacks the sandwich contract") (fun () ->
      ignore (Verified.run bogus ~bits:8 ~max_attempts:1 (Prng.Rng.of_int 1) ~universe:10 [||] [||]))

let test_verified_protocol_wrapper () =
  let protocol = Verified.protocol (Tree_protocol.protocol ~r:2 ()) in
  let failures = failure_count protocol ~trials:30 ~universe:100000 ~size:50 ~overlap:17 in
  check "exact" 0 failures

(* ---------- Disjointness ---------- *)

let test_disjointness_hw_disjoint () =
  for seed = 1 to 30 do
    let rng = Prng.Rng.of_int (700 + seed) in
    let pair =
      Workload.Setgen.pair_with_overlap rng ~universe:100000 ~size_s:24 ~size_t:24 ~overlap:0
    in
    let outcome =
      Disjointness.hw (Prng.Rng.of_int seed) ~universe:100000 pair.Workload.Setgen.s
        pair.Workload.Setgen.t
    in
    check_bool "disjoint detected" true outcome.Disjointness.disjoint
  done

let test_disjointness_hw_intersecting () =
  for seed = 1 to 30 do
    let rng = Prng.Rng.of_int (800 + seed) in
    let pair =
      Workload.Setgen.pair_with_overlap rng ~universe:100000 ~size_s:24 ~size_t:24 ~overlap:1
    in
    let outcome =
      Disjointness.hw (Prng.Rng.of_int seed) ~universe:100000 pair.Workload.Setgen.s
        pair.Workload.Setgen.t
    in
    (* one-sided: intersecting inputs can never be declared disjoint *)
    check_bool "never declared disjoint" false outcome.Disjointness.disjoint
  done

let test_disjointness_empty_input () =
  let outcome = Disjointness.hw (Prng.Rng.of_int 3) ~universe:100 Iset.empty [| 1; 2 |] in
  check_bool "empty set is disjoint" true outcome.Disjointness.disjoint

let test_disjointness_via_intersection () =
  let protocol = Tree_protocol.protocol ~r:2 () in
  let outcome =
    Disjointness.via_intersection protocol (Prng.Rng.of_int 4) ~universe:1000 [| 1; 5; 9 |]
      [| 2; 6; 10 |]
  in
  check_bool "disjoint" true outcome.Disjointness.disjoint;
  let outcome =
    Disjointness.via_intersection protocol (Prng.Rng.of_int 5) ~universe:1000 [| 1; 5; 9 |]
      [| 2; 5; 10 |]
  in
  check_bool "intersecting" false outcome.Disjointness.disjoint

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "core-protocols"
    [
      ( "trivial",
        [
          Alcotest.test_case "exact" `Quick test_trivial_exact;
          Alcotest.test_case "cost matches encoding" `Quick test_trivial_cost_matches_encoding;
          Alcotest.test_case "full exchange one round" `Quick test_trivial_full_exchange_one_round;
          Alcotest.test_case "rejects bad inputs" `Quick test_trivial_rejects_bad_inputs;
        ] );
      ( "one_round_hash",
        [
          Alcotest.test_case "exact whp" `Quick test_one_round_exact_whp;
          Alcotest.test_case "simultaneous round" `Quick test_one_round_simultaneous;
          Alcotest.test_case "k log k scaling" `Quick test_one_round_cost_scales_klogk;
          qt prop_one_round_sandwich;
        ] );
      ( "bucket_protocol",
        [
          Alcotest.test_case "exact whp" `Quick test_bucket_exact_whp;
          Alcotest.test_case "small universe" `Quick test_bucket_identity_small_universe;
          Alcotest.test_case "large universe" `Quick test_bucket_large_universe;
          Alcotest.test_case "edge cases" `Quick test_bucket_edge_cases;
          Alcotest.test_case "equal sets" `Quick test_bucket_equal_sets;
          Alcotest.test_case "rounds sublinear" `Quick test_bucket_rounds_grow_sublinearly;
        ] );
      ( "tree_protocol",
        [
          Alcotest.test_case "exact whp r=1..4" `Quick test_tree_exact_whp;
          Alcotest.test_case "log* config exact" `Quick test_tree_log_star_exact;
          Alcotest.test_case "rounds <= 4r" `Quick test_tree_rounds_bound;
          Alcotest.test_case "edge cases" `Quick test_tree_edge_cases;
          Alcotest.test_case "identical sets" `Quick test_tree_identical_sets;
          Alcotest.test_case "disjoint sets" `Quick test_tree_disjoint_sets;
          Alcotest.test_case "asymmetric sizes" `Quick test_tree_asymmetric_sizes;
          Alcotest.test_case "bits decrease with r" `Quick test_tree_communication_decreases_with_r;
          Alcotest.test_case "budgeted worst-case conversion" `Quick test_tree_budgeted;
          qt prop_tree_sandwich;
        ] );
      ( "verified",
        [
          Alcotest.test_case "exact with sloppy base" `Quick test_verified_exact;
          Alcotest.test_case "cost accumulates" `Quick test_verified_cost_accumulates;
          Alcotest.test_case "rejects non-sandwich base" `Quick test_verified_rejects_non_sandwich;
          Alcotest.test_case "protocol wrapper" `Quick test_verified_protocol_wrapper;
        ] );
      ( "disjointness",
        [
          Alcotest.test_case "hw disjoint" `Quick test_disjointness_hw_disjoint;
          Alcotest.test_case "hw intersecting (one-sided)" `Quick test_disjointness_hw_intersecting;
          Alcotest.test_case "empty input" `Quick test_disjointness_empty_input;
          Alcotest.test_case "via intersection" `Quick test_disjointness_via_intersection;
        ] );
    ]
