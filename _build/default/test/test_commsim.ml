(* Tests for the communication simulator: scheduling, metering and the
   round (dependency-chain) accounting. *)

open Commsim

let bits_of_int ~width v =
  let buf = Bitio.Bitbuf.create () in
  Bitio.Bitbuf.write_bits buf ~width v;
  Bitio.Bitbuf.contents buf

let int_of_bits ~width payload =
  Bitio.Bitreader.read_bits (Bitio.Bitreader.create payload) ~width

let check = Alcotest.(check int)

(* ---------- Two-party ---------- *)

let test_ping_pong () =
  let alice chan =
    chan.Chan.send (bits_of_int ~width:8 42);
    int_of_bits ~width:8 (chan.Chan.recv ())
  in
  let bob chan =
    let v = int_of_bits ~width:8 (chan.Chan.recv ()) in
    chan.Chan.send (bits_of_int ~width:8 (v + 1));
    v
  in
  let (a, b), cost = Two_party.run ~alice ~bob in
  check "alice result" 43 a;
  check "bob result" 42 b;
  check "total bits" 16 cost.Cost.total_bits;
  check "messages" 2 cost.Cost.messages;
  check "rounds" 2 cost.Cost.rounds;
  check "alice sent" 8 cost.Cost.players.(0).Cost.sent_bits;
  check "bob sent" 8 cost.Cost.players.(1).Cost.sent_bits

let test_batched_sends_share_round () =
  (* Two messages in the same direction with no intervening dependency are
     one round: they could travel as a single message. *)
  let alice chan =
    chan.Chan.send (bits_of_int ~width:4 1);
    chan.Chan.send (bits_of_int ~width:4 2);
    chan.Chan.recv () |> ignore
  in
  let bob chan =
    ignore (chan.Chan.recv ());
    ignore (chan.Chan.recv ());
    chan.Chan.send (bits_of_int ~width:4 3)
  in
  let _, cost = Two_party.run ~alice ~bob in
  check "messages" 3 cost.Cost.messages;
  check "rounds" 2 cost.Cost.rounds

let test_alternation_rounds () =
  let rec volley chan n =
    if n > 0 then begin
      chan.Chan.send (bits_of_int ~width:1 1);
      ignore (chan.Chan.recv ());
      volley chan (n - 1)
    end
  in
  let alice chan = volley chan 5 in
  let bob chan =
    for _ = 1 to 5 do
      ignore (chan.Chan.recv ());
      chan.Chan.send (bits_of_int ~width:1 0)
    done
  in
  let _, cost = Two_party.run ~alice ~bob in
  check "rounds" 10 cost.Cost.rounds;
  check "bits" 10 cost.Cost.total_bits

let test_fifo_order () =
  let alice chan =
    for i = 0 to 9 do
      chan.Chan.send (bits_of_int ~width:8 i)
    done
  in
  let bob chan = List.init 10 (fun _ -> int_of_bits ~width:8 (chan.Chan.recv ())) in
  let (_, received), _ = Two_party.run ~alice ~bob in
  Alcotest.(check (list int)) "in order" (List.init 10 Fun.id) received

let test_deadlock_detected () =
  let party chan () = ignore (chan.Chan.recv ()) in
  match Two_party.run ~alice:(fun c -> party c ()) ~bob:(fun c -> party c ()) with
  | exception Network.Deadlock _ -> ()
  | _ -> Alcotest.fail "expected deadlock"

let test_no_result_loss_on_unreceived_messages () =
  (* A message nobody reads is legal (it was still paid for). *)
  let alice chan = chan.Chan.send (bits_of_int ~width:8 9) in
  let bob _chan = 7 in
  let ((), b), cost = Two_party.run ~alice ~bob in
  check "bob" 7 b;
  check "bits still counted" 8 cost.Cost.total_bits

let test_information_barrier () =
  (* Bob's view is exactly his input + received payloads; check that a
     protocol computing with Alice's data must pay for it. *)
  let secret = 0b1011 in
  let alice chan = chan.Chan.send (bits_of_int ~width:4 secret) in
  let bob chan = int_of_bits ~width:4 (chan.Chan.recv ()) in
  let ((), got), cost = Two_party.run ~alice ~bob in
  check "bob learned the secret" secret got;
  check "4 bits crossed" 4 cost.Cost.total_bits

(* ---------- Network (m players) ---------- *)

let test_ring_rounds () =
  (* Token passed around a ring of 5: 5 dependent messages = 5 rounds. *)
  let m = 5 in
  let player ep =
    let r = Network.rank ep in
    if r = 0 then begin
      Network.send ep ~to_:1 (bits_of_int ~width:8 1);
      int_of_bits ~width:8 (Network.recv ep ~from_:(m - 1))
    end
    else begin
      let v = int_of_bits ~width:8 (Network.recv ep ~from_:(r - 1)) in
      Network.send ep ~to_:((r + 1) mod m) (bits_of_int ~width:8 (v + 1));
      v
    end
  in
  let results, cost = Network.run (Array.make m player) in
  check "player 0 got the token back" m results.(0);
  check "rounds" m cost.Cost.rounds;
  check "messages" m cost.Cost.messages;
  check "bits" (8 * m) cost.Cost.total_bits

let test_star_parallel_rounds () =
  (* All leaves send to the coordinator concurrently: 1 round regardless of m;
     replies make it 2. *)
  let m = 9 in
  let player ep =
    let r = Network.rank ep in
    if r = 0 then begin
      let total = ref 0 in
      for i = 1 to m - 1 do
        total := !total + int_of_bits ~width:8 (Network.recv ep ~from_:i)
      done;
      for i = 1 to m - 1 do
        Network.send ep ~to_:i (bits_of_int ~width:8 !total)
      done;
      !total
    end
    else begin
      Network.send ep ~to_:0 (bits_of_int ~width:8 r);
      int_of_bits ~width:8 (Network.recv ep ~from_:0)
    end
  in
  let results, cost = Network.run (Array.make m player) in
  let expected = (m - 1) * m / 2 in
  Array.iter (fun v -> check "sum" expected v) results;
  check "rounds" 2 cost.Cost.rounds;
  check "messages" (2 * (m - 1)) cost.Cost.messages

let test_rank_and_size () =
  let player ep =
    Alcotest.(check int) "size" 3 (Network.size ep);
    Network.rank ep
  in
  let results, _ = Network.run (Array.make 3 player) in
  Alcotest.(check (array int)) "ranks" [| 0; 1; 2 |] results

let test_self_send_rejected () =
  let player ep =
    if Network.rank ep = 0 then Network.send ep ~to_:0 (bits_of_int ~width:1 0)
  in
  match Network.run (Array.make 2 player) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected invalid_arg"

let test_out_of_range_rejected () =
  let player ep =
    if Network.rank ep = 0 then Network.send ep ~to_:5 (bits_of_int ~width:1 0)
  in
  match Network.run (Array.make 2 player) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected invalid_arg"

let test_pairwise_fifo_across_interleaving () =
  (* Player 2 sends to 0 and 1 alternately; each destination sees its own
     subsequence in order. *)
  let sender ep =
    for i = 0 to 9 do
      Network.send ep ~to_:(i mod 2) (bits_of_int ~width:8 i)
    done;
    []
  in
  let receiver ep =
    List.init 5 (fun _ -> int_of_bits ~width:8 (Network.recv ep ~from_:2))
  in
  let results, _ = Network.run [| receiver; receiver; sender |] in
  Alcotest.(check (list int)) "evens" [ 0; 2; 4; 6; 8 ] results.(0);
  Alcotest.(check (list int)) "odds" [ 1; 3; 5; 7; 9 ] results.(1)

let test_cost_aggregates () =
  let alice chan =
    chan.Chan.send (bits_of_int ~width:10 1);
    ignore (chan.Chan.recv ())
  in
  let bob chan =
    ignore (chan.Chan.recv ());
    chan.Chan.send (bits_of_int ~width:6 1)
  in
  let _, cost = Two_party.run ~alice ~bob in
  check "max player bits" 16 (Cost.max_player_bits cost);
  Alcotest.(check (float 0.001)) "avg player bits" 8.0 (Cost.avg_player_bits cost)

(* ---------- Chan.loopback ---------- *)

let test_loopback () =
  let a, b = Chan.loopback () in
  a.Chan.send (bits_of_int ~width:8 77);
  check "b receives" 77 (int_of_bits ~width:8 (b.Chan.recv ()));
  b.Chan.send (bits_of_int ~width:8 78);
  check "a receives" 78 (int_of_bits ~width:8 (a.Chan.recv ()));
  match a.Chan.recv () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure on empty queue"

let () =
  Alcotest.run "commsim"
    [
      ( "two_party",
        [
          Alcotest.test_case "ping pong" `Quick test_ping_pong;
          Alcotest.test_case "batched sends share round" `Quick test_batched_sends_share_round;
          Alcotest.test_case "alternation rounds" `Quick test_alternation_rounds;
          Alcotest.test_case "fifo order" `Quick test_fifo_order;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "unreceived messages ok" `Quick test_no_result_loss_on_unreceived_messages;
          Alcotest.test_case "information barrier" `Quick test_information_barrier;
          Alcotest.test_case "cost aggregates" `Quick test_cost_aggregates;
        ] );
      ( "network",
        [
          Alcotest.test_case "ring rounds" `Quick test_ring_rounds;
          Alcotest.test_case "star parallel rounds" `Quick test_star_parallel_rounds;
          Alcotest.test_case "rank and size" `Quick test_rank_and_size;
          Alcotest.test_case "self send rejected" `Quick test_self_send_rejected;
          Alcotest.test_case "out of range rejected" `Quick test_out_of_range_rejected;
          Alcotest.test_case "pairwise fifo" `Quick test_pairwise_fifo_across_interleaving;
        ] );
      ("chan", [ Alcotest.test_case "loopback" `Quick test_loopback ]);
    ]
