(* Tests for the deterministic randomness substrate: determinism, domain
   separation (the "common random string" contract) and coarse statistics. *)

open Prng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_splitmix_reference () =
  (* Reference outputs for seed 0 from the published SplitMix64 algorithm. *)
  let g = Splitmix64.create 0L in
  Alcotest.(check string) "first" "e220a8397b1dcdaf" (Printf.sprintf "%Lx" (Splitmix64.next g));
  Alcotest.(check string) "second" "6e789e6aa1b965f4" (Printf.sprintf "%Lx" (Splitmix64.next g));
  Alcotest.(check string) "third" "6c45d188009454f" (Printf.sprintf "%Lx" (Splitmix64.next g))

let test_determinism () =
  let a = Rng.of_int 42 and b = Rng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_label_independent_of_position () =
  (* The whole point of with_label: both parties derive the same stream no
     matter how much they already consumed from their own copy. *)
  let a = Rng.of_int 7 in
  let b = Rng.of_int 7 in
  for _ = 1 to 13 do
    ignore (Rng.int64 b)
  done;
  let la = Rng.with_label a "stage1/node3" in
  let lb = Rng.with_label b "stage1/node3" in
  for _ = 1 to 20 do
    Alcotest.(check int64) "label stream equal" (Rng.int64 la) (Rng.int64 lb)
  done

let test_labels_distinct () =
  let root = Rng.of_int 7 in
  let a = Rng.int64 (Rng.with_label root "x") in
  let b = Rng.int64 (Rng.with_label root "y") in
  check_bool "different labels differ" true (a <> b)

let test_split_advances () =
  let root = Rng.of_int 3 in
  let a = Rng.split root in
  let b = Rng.split root in
  check_bool "children differ" true (Rng.int64 a <> Rng.int64 b)

let test_int_bounds () =
  let rng = Rng.of_int 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done;
  check "bound 1" 0 (Rng.int rng 1)

let test_int_rejects_bad_bound () =
  let rng = Rng.of_int 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound") (fun () ->
      ignore (Rng.int rng 0))

let test_int_uniformity () =
  (* Chi-square-ish sanity: 10 buckets, 100k draws; each bucket within 5%. *)
  let rng = Rng.of_int 99 in
  let counts = Array.make 10 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let v = Rng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = trials / 10 in
      if abs (c - expected) > expected / 20 then Alcotest.failf "bucket %d count %d" i c)
    counts

let test_bits_width () =
  let rng = Rng.of_int 5 in
  for _ = 1 to 1000 do
    let v = Rng.bits rng ~width:7 in
    if v < 0 || v >= 128 then Alcotest.failf "bits out of range: %d" v
  done;
  check "width 0" 0 (Rng.bits rng ~width:0)

let test_float_range () =
  let rng = Rng.of_int 11 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "float out of range: %f" v
  done

let test_bernoulli_mean () =
  let rng = Rng.of_int 21 in
  let trials = 50_000 in
  let hits = ref 0 in
  for _ = 1 to trials do
    if Rng.bernoulli rng ~p:0.3 then incr hits
  done;
  let mean = float_of_int !hits /. float_of_int trials in
  if abs_float (mean -. 0.3) > 0.02 then Alcotest.failf "bernoulli mean %f" mean

let test_geometric_mean () =
  (* E[failures before success] = (1-p)/p = 1 for p = 1/2. *)
  let rng = Rng.of_int 31 in
  let trials = 50_000 in
  let sum = ref 0 in
  for _ = 1 to trials do
    sum := !sum + Rng.geometric rng ~p:0.5
  done;
  let mean = float_of_int !sum /. float_of_int trials in
  if abs_float (mean -. 1.0) > 0.05 then Alcotest.failf "geometric mean %f" mean;
  check "p = 1 is constant 0" 0 (Rng.geometric rng ~p:1.0)

let test_shuffle_permutes () =
  let rng = Rng.of_int 8 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 100 (fun i -> i)) sorted;
  check_bool "actually moved something" true (a <> Array.init 100 (fun i -> i))

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int always in bounds" ~count:1000
    QCheck.(pair small_signed_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.of_int seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "prng"
    [
      ( "splitmix64",
        [ Alcotest.test_case "reference vectors" `Quick test_splitmix_reference ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "label independent of position" `Quick test_label_independent_of_position;
          Alcotest.test_case "labels distinct" `Quick test_labels_distinct;
          Alcotest.test_case "split advances" `Quick test_split_advances;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int bad bound" `Quick test_int_rejects_bad_bound;
          Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "bits width" `Quick test_bits_width;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "bernoulli mean" `Quick test_bernoulli_mean;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
          qt prop_int_in_bounds;
        ] );
    ]
