(* Tests for the application layer: exact similarity statistics, the
   distributed join, and the EQ^n_k reduction (Fact 2.1). *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let iset = Alcotest.testable (fun ppf s -> Iset.pp ppf s) Iset.equal

let rng seed = Prng.Rng.of_int seed

(* ---------- Similarity ---------- *)

let test_similarity_basic () =
  let s = [| 1; 2; 3; 4 |] and t = [| 3; 4; 5; 6 |] in
  let r = Apps.Similarity.run (rng 1) ~universe:100 s t in
  Alcotest.check iset "intersection" [| 3; 4 |] r.Apps.Similarity.intersection;
  check "intersection size" 2 r.Apps.Similarity.intersection_size;
  check "union size" 6 r.Apps.Similarity.union_size;
  check "distinct" 6 r.Apps.Similarity.distinct;
  check_float "jaccard" (2.0 /. 6.0) r.Apps.Similarity.jaccard;
  check "hamming" 4 r.Apps.Similarity.hamming;
  check_float "rarity1" (4.0 /. 6.0) r.Apps.Similarity.rarity1;
  check_float "rarity2" (2.0 /. 6.0) r.Apps.Similarity.rarity2

let test_similarity_empty () =
  let r = Apps.Similarity.run (rng 2) ~universe:100 Iset.empty Iset.empty in
  check "union" 0 r.Apps.Similarity.union_size;
  check_float "jaccard convention" 1.0 r.Apps.Similarity.jaccard;
  check "hamming" 0 r.Apps.Similarity.hamming

let test_similarity_identical () =
  let s = Iset.of_list (List.init 50 (fun i -> i * 3)) in
  let r = Apps.Similarity.run (rng 3) ~universe:1000 s s in
  check_float "jaccard" 1.0 r.Apps.Similarity.jaccard;
  check "hamming" 0 r.Apps.Similarity.hamming;
  check_float "rarity1" 0.0 r.Apps.Similarity.rarity1

let test_similarity_disjoint () =
  let s = [| 1; 3; 5 |] and t = [| 2; 4; 6 |] in
  let r = Apps.Similarity.run (rng 4) ~universe:100 s t in
  check_float "jaccard" 0.0 r.Apps.Similarity.jaccard;
  check "hamming" 6 r.Apps.Similarity.hamming;
  check_float "rarity1" 1.0 r.Apps.Similarity.rarity1

let test_similarity_matches_ground_truth_random () =
  for seed = 1 to 20 do
    let pair =
      Workload.Setgen.pair_with_overlap (rng (100 + seed)) ~universe:100000 ~size_s:60 ~size_t:40
        ~overlap:15
    in
    let r = Apps.Similarity.run (rng seed) ~universe:100000 pair.Workload.Setgen.s pair.Workload.Setgen.t in
    check "intersection size" 15 r.Apps.Similarity.intersection_size;
    check "union size" 85 r.Apps.Similarity.union_size
  done

let test_similarity_cheaper_than_trivial_for_large_universe () =
  (* The whole point: exact Jaccard at O(k) bits instead of O(k log n/k). *)
  let universe = 1 lsl 50 in
  let pair =
    Workload.Setgen.pair_with_overlap (rng 7) ~universe ~size_s:512 ~size_t:512 ~overlap:128
  in
  let smart = Apps.Similarity.run (rng 8) ~universe pair.Workload.Setgen.s pair.Workload.Setgen.t in
  let trivial =
    Apps.Similarity.run ~protocol:Intersect.Trivial.protocol (rng 8) ~universe
      pair.Workload.Setgen.s pair.Workload.Setgen.t
  in
  check_bool
    (Printf.sprintf "smart %d bits < trivial %d bits" smart.Apps.Similarity.cost.Commsim.Cost.total_bits
       trivial.Apps.Similarity.cost.Commsim.Cost.total_bits)
    true
    (smart.Apps.Similarity.cost.Commsim.Cost.total_bits
    < trivial.Apps.Similarity.cost.Commsim.Cost.total_bits)

(* ---------- Join ---------- *)

let row key payload = { Apps.Join.key; payload }

let test_join_basic () =
  let left = [| row 1 "alice"; row 2 "bob"; row 5 "carol" |] in
  let right = [| row 2 "x"; row 5 "y"; row 9 "z" |] in
  let joined, _ = Apps.Join.run (rng 1) ~universe:100 ~left ~right in
  Alcotest.(check int) "two rows" 2 (List.length joined);
  let r2 = List.nth joined 0 and r5 = List.nth joined 1 in
  check "key" 2 r2.Apps.Join.key;
  Alcotest.(check string) "left payload" "bob" r2.Apps.Join.left;
  Alcotest.(check string) "right payload" "x" r2.Apps.Join.right;
  check "key" 5 r5.Apps.Join.key;
  Alcotest.(check string) "left payload" "carol" r5.Apps.Join.left;
  Alcotest.(check string) "right payload" "y" r5.Apps.Join.right

let test_join_empty_result () =
  let left = [| row 1 "a" |] and right = [| row 2 "b" |] in
  let joined, _ = Apps.Join.run (rng 2) ~universe:100 ~left ~right in
  check "no rows" 0 (List.length joined)

let test_join_duplicate_keys_rejected () =
  let left = [| row 1 "a"; row 1 "b" |] in
  Alcotest.check_raises "dup" (Invalid_argument "Join.run: duplicate keys") (fun () ->
      ignore (Apps.Join.run (rng 3) ~universe:100 ~left ~right:[| row 1 "c" |]))

let test_join_payloads_with_binary_content () =
  let left = [| row 7 "\000\255 weird\npayload" |] in
  let right = [| row 7 "" |] in
  let joined, _ = Apps.Join.run (rng 4) ~universe:100 ~left ~right in
  Alcotest.(check string) "binary payload survives" "\000\255 weird\npayload"
    (List.hd joined).Apps.Join.left;
  Alcotest.(check string) "empty payload survives" "" (List.hd joined).Apps.Join.right

let test_join_larger_random () =
  let universe = 1 lsl 30 in
  let pair =
    Workload.Setgen.pair_with_overlap (rng 5) ~universe ~size_s:200 ~size_t:150 ~overlap:40
  in
  let mk prefix keys = Array.map (fun key -> row key (prefix ^ string_of_int key)) keys in
  let left = mk "L" pair.Workload.Setgen.s and right = mk "R" pair.Workload.Setgen.t in
  let joined, cost = Apps.Join.run (rng 6) ~universe ~left ~right in
  check "row count" 40 (List.length joined);
  List.iter
    (fun (j : Apps.Join.joined) ->
      Alcotest.(check string) "left" ("L" ^ string_of_int j.Apps.Join.key) j.Apps.Join.left;
      Alcotest.(check string) "right" ("R" ^ string_of_int j.Apps.Join.key) j.Apps.Join.right)
    joined;
  check_bool "cost counted" true (cost.Commsim.Cost.total_bits > 0)

(* ---------- Union / symmetric difference ---------- *)

let test_union_basic () =
  let s = [| 1; 2; 3; 4 |] and t = [| 3; 4; 5; 6 |] in
  let r = Apps.Union.run (rng 1) ~universe:100 s t in
  Alcotest.check iset "union" [| 1; 2; 3; 4; 5; 6 |] r.Apps.Union.union;
  Alcotest.check iset "intersection" [| 3; 4 |] r.Apps.Union.intersection;
  Alcotest.check iset "sym diff" [| 1; 2; 5; 6 |] r.Apps.Union.symmetric_difference

let test_union_edge_cases () =
  let r = Apps.Union.run (rng 2) ~universe:100 Iset.empty Iset.empty in
  Alcotest.check iset "empty union" Iset.empty r.Apps.Union.union;
  let s = [| 7; 9 |] in
  let r = Apps.Union.run (rng 3) ~universe:100 s s in
  Alcotest.check iset "identical union" s r.Apps.Union.union;
  Alcotest.check iset "identical diff" Iset.empty r.Apps.Union.symmetric_difference;
  let r = Apps.Union.run (rng 4) ~universe:100 s Iset.empty in
  Alcotest.check iset "one empty" s r.Apps.Union.union;
  Alcotest.check iset "one empty diff" s r.Apps.Union.symmetric_difference

let prop_union_ground_truth =
  QCheck.Test.make ~name:"union/intersection/symdiff ground truth" ~count:100
    QCheck.(triple small_signed_int (list (int_bound 400)) (list (int_bound 400)))
    (fun (seed, ls, lt) ->
      let s = Iset.of_list ls and t = Iset.of_list lt in
      let r = Apps.Union.run (rng seed) ~universe:401 s t in
      Iset.equal r.Apps.Union.union (Iset.union s t)
      && Iset.equal r.Apps.Union.intersection (Iset.inter s t)
      && Iset.equal r.Apps.Union.symmetric_difference
           (Iset.union (Iset.diff s t) (Iset.diff t s)))

let test_union_costs_more_than_intersection_at_wide_universe () =
  let universe = 1 lsl 50 in
  let pair =
    Workload.Setgen.pair_with_overlap (rng 7) ~universe ~size_s:512 ~size_t:512 ~overlap:256
  in
  let union_cost =
    (Apps.Union.run (rng 8) ~universe pair.Workload.Setgen.s pair.Workload.Setgen.t).Apps.Union.cost
      .Commsim.Cost.total_bits
  in
  let protocol = Intersect.Tree_protocol.protocol_log_star ~k:512 () in
  let int_cost =
    (protocol.Intersect.Protocol.run (rng 8) ~universe pair.Workload.Setgen.s
       pair.Workload.Setgen.t)
      .Intersect.Protocol.cost
      .Commsim.Cost.total_bits
  in
  Alcotest.(check bool)
    (Printf.sprintf "union %d > intersection %d" union_cost int_cost)
    true (union_cost > int_cost)

(* ---------- EQ^n_k via INT (Fact 2.1) ---------- *)

let test_eqk_basic () =
  let xs = [| "foo"; "bar"; "baz"; "quux" |] in
  let ys = [| "foo"; "BAR"; "baz"; "quuz" |] in
  let answers, _ = Apps.Eq_via_intersection.run (rng 1) xs ys in
  Alcotest.(check (array bool)) "verdicts" [| true; false; true; false |] answers

let test_eqk_long_strings () =
  let long = String.concat "-" (List.init 100 string_of_int) in
  let xs = [| long; long ^ "a" |] in
  let ys = [| long; long ^ "b" |] in
  let answers, _ = Apps.Eq_via_intersection.run (rng 2) xs ys in
  Alcotest.(check (array bool)) "verdicts" [| true; false |] answers

let test_eqk_positional () =
  (* The same string at different positions must NOT count as equal. *)
  let xs = [| "a"; "b" |] and ys = [| "b"; "a" |] in
  let answers, _ = Apps.Eq_via_intersection.run (rng 3) xs ys in
  Alcotest.(check (array bool)) "verdicts" [| false; false |] answers

let test_eqk_many_instances () =
  let k = 300 in
  let xs = Array.init k (fun i -> "inst" ^ string_of_int i) in
  let ys = Array.init k (fun i -> if i mod 3 = 0 then "inst" ^ string_of_int i else "other" ^ string_of_int i) in
  let answers, cost = Apps.Eq_via_intersection.run (rng 4) xs ys in
  Array.iteri (fun i v -> if v <> (i mod 3 = 0) then Alcotest.failf "instance %d" i) answers;
  (* amortized: must be far below k * (string length) *)
  check_bool "amortized cost" true (cost.Commsim.Cost.total_bits < k * 200)

let test_eqk_arity_mismatch () =
  Alcotest.check_raises "arity" (Invalid_argument "Eq_via_intersection.run: arity mismatch")
    (fun () -> ignore (Apps.Eq_via_intersection.run (rng 5) [| "a" |] [| "a"; "b" |]))

let () =
  Alcotest.run "apps"
    [
      ( "similarity",
        [
          Alcotest.test_case "basic" `Quick test_similarity_basic;
          Alcotest.test_case "empty" `Quick test_similarity_empty;
          Alcotest.test_case "identical" `Quick test_similarity_identical;
          Alcotest.test_case "disjoint" `Quick test_similarity_disjoint;
          Alcotest.test_case "ground truth" `Quick test_similarity_matches_ground_truth_random;
          Alcotest.test_case "cheaper than trivial" `Quick
            test_similarity_cheaper_than_trivial_for_large_universe;
        ] );
      ( "join",
        [
          Alcotest.test_case "basic" `Quick test_join_basic;
          Alcotest.test_case "empty result" `Quick test_join_empty_result;
          Alcotest.test_case "duplicate keys" `Quick test_join_duplicate_keys_rejected;
          Alcotest.test_case "binary payloads" `Quick test_join_payloads_with_binary_content;
          Alcotest.test_case "larger random" `Quick test_join_larger_random;
        ] );
      ( "union",
        [
          Alcotest.test_case "basic" `Quick test_union_basic;
          Alcotest.test_case "edge cases" `Quick test_union_edge_cases;
          QCheck_alcotest.to_alcotest prop_union_ground_truth;
          Alcotest.test_case "costs more than intersection" `Quick
            test_union_costs_more_than_intersection_at_wide_universe;
        ] );
      ( "eq_via_intersection",
        [
          Alcotest.test_case "basic" `Quick test_eqk_basic;
          Alcotest.test_case "long strings" `Quick test_eqk_long_strings;
          Alcotest.test_case "positional" `Quick test_eqk_positional;
          Alcotest.test_case "many instances" `Quick test_eqk_many_instances;
          Alcotest.test_case "arity mismatch" `Quick test_eqk_arity_mismatch;
        ] );
    ]
