(* Tests for the core building blocks: iterated logs, string hashing, wire
   helpers, the Equality test (Fact 3.5), Basic-Intersection (Lemma 3.3)
   and the verification tree shape. *)

open Intersect

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let iset = Alcotest.testable (fun ppf s -> Iset.pp ppf s) Iset.equal

(* ---------- Iterated_log ---------- *)

let test_log2_ceil () =
  check "1" 0 (Iterated_log.log2_ceil 1);
  check "2" 1 (Iterated_log.log2_ceil 2);
  check "3" 2 (Iterated_log.log2_ceil 3);
  check "1024" 10 (Iterated_log.log2_ceil 1024);
  check "1025" 11 (Iterated_log.log2_ceil 1025)

let test_ilog () =
  check "ilog 0" 65536 (Iterated_log.ilog 0 65536);
  check "ilog 1" 16 (Iterated_log.ilog 1 65536);
  check "ilog 2" 4 (Iterated_log.ilog 2 65536);
  check "ilog 3" 2 (Iterated_log.ilog 3 65536);
  check "ilog 4" 1 (Iterated_log.ilog 4 65536);
  check "ilog clamps at 1" 1 (Iterated_log.ilog 10 65536)

let test_log_star () =
  check "log* 1" 0 (Iterated_log.log_star 1);
  check "log* 2" 1 (Iterated_log.log_star 2);
  check "log* 4" 2 (Iterated_log.log_star 4);
  check "log* 16" 3 (Iterated_log.log_star 16);
  check "log* 65536" 4 (Iterated_log.log_star 65536);
  check "log* 5" 3 (Iterated_log.log_star 5)

let test_tower () =
  check "tower 0" 1 (Iterated_log.tower 0);
  check "tower 4" 65536 (Iterated_log.tower 4);
  (* log* (tower i) = i *)
  for i = 0 to 4 do
    check "inverse" i (Iterated_log.log_star (Iterated_log.tower i))
  done

(* ---------- Strhash ---------- *)

let rng label = Prng.Rng.with_label (Prng.Rng.of_int 4242) label

let test_strhash_deterministic () =
  let payload = Bitio.Bits.of_string "hello world" in
  let a = Strhash.tag (rng "x") ~bits:32 payload in
  let b = Strhash.tag (rng "x") ~bits:32 payload in
  check_bool "same rng, same tag" true (Bitio.Bits.equal a b);
  let c = Strhash.tag (rng "y") ~bits:32 payload in
  check_bool "different rng, different tag (whp)" false (Bitio.Bits.equal a c)

let test_strhash_tag_width () =
  List.iter
    (fun bits ->
      let tag = Strhash.tag (rng "w") ~bits (Bitio.Bits.of_string "abc") in
      check (Printf.sprintf "width %d" bits) bits (Bitio.Bits.length tag))
    [ 1; 8; 30; 48; 61; 62; 100; 128 ]

let test_strhash_one_sided () =
  (* Equal inputs always produce equal tags, whatever the randomness. *)
  for seed = 0 to 99 do
    let r1 = Prng.Rng.with_label (Prng.Rng.of_int seed) "t" in
    let r2 = Prng.Rng.with_label (Prng.Rng.of_int seed) "t" in
    let x = Bitio.Bits.of_string "the same payload" in
    let y = Bitio.Bits.of_string "the same payload" in
    if not (Bitio.Bits.equal (Strhash.tag r1 ~bits:16 x) (Strhash.tag r2 ~bits:16 y)) then
      Alcotest.failf "tags differ on equal input, seed %d" seed
  done

let test_strhash_collision_rate () =
  (* 8-bit tags: unequal strings collide with probability about 2^-8. *)
  let trials = 5000 in
  let collisions = ref 0 in
  for i = 1 to trials do
    let r = Prng.Rng.with_label (Prng.Rng.of_int i) "c" in
    let fn = Strhash.create r ~bits:8 in
    let x = Bitio.Bits.of_string ("left" ^ string_of_int i) in
    let y = Bitio.Bits.of_string ("right" ^ string_of_int i) in
    if Bitio.Bits.equal (Strhash.apply fn x) (Strhash.apply fn y) then incr collisions
  done;
  (* expectation ~ 20; fail above 60 *)
  if !collisions > 60 then Alcotest.failf "too many collisions: %d" !collisions

let test_strhash_length_matters () =
  (* A string must not collide with its zero-extension (length prefixing). *)
  let fn = Strhash.create (rng "len") ~bits:32 in
  let x = Bitio.Bits.of_bools [ true; false ] in
  let y = Bitio.Bits.of_bools [ true; false; false ] in
  check_bool "different lengths" false (Bitio.Bits.equal (Strhash.apply fn x) (Strhash.apply fn y))

let test_strhash_int_range () =
  let fn = Strhash.create (rng "int") ~bits:16 in
  check_bool "int tag works at 2^60 - 1" true (Bitio.Bits.length (Strhash.apply_int fn ((1 lsl 60) - 1)) = 16);
  Alcotest.check_raises "negative" (Invalid_argument "Strhash.apply_int: out of range") (fun () ->
      ignore (Strhash.apply_int fn (-1)))

let prop_strhash_equal_inputs =
  QCheck.Test.make ~name:"equal inputs, equal tags" ~count:300
    QCheck.(pair small_signed_int (small_list bool))
    (fun (seed, bools) ->
      let mk () = Strhash.create (Prng.Rng.with_label (Prng.Rng.of_int seed) "q") ~bits:24 in
      let x = Bitio.Bits.of_bools bools in
      Bitio.Bits.equal (Strhash.apply (mk ()) x) (Strhash.apply (mk ()) x))

(* ---------- Wire ---------- *)

let test_wire_set_roundtrip () =
  let set = Iset.of_list [ 3; 17; 17; 4; 1000000 ] in
  let payload = Wire.of_set set in
  let back = Bitio.Set_codec.read_gaps (Bitio.Bitreader.create payload) in
  Alcotest.check iset "roundtrip" set back

let test_wire_of_sets_canonical () =
  let a = Wire.of_sets [ [| 1; 2 |]; [| 5 |] ] in
  let b = Wire.of_sets [ [| 1; 2 |]; [| 5 |] ] in
  let c = Wire.of_sets [ [| 1 |]; [| 2; 5 |] ] in
  check_bool "equal lists equal encodings" true (Bitio.Bits.equal a b);
  check_bool "different split, different encoding" false (Bitio.Bits.equal a c)

let test_wire_bitmap () =
  let flags = [| true; false; false; true; true |] in
  let back = Wire.read_bitmap_msg (Wire.bitmap_msg flags) ~width:5 in
  Alcotest.(check (array bool)) "roundtrip" flags back

(* ---------- Equality (Fact 3.5) ---------- *)

let run_equality seed ~bits x y =
  let shared = Prng.Rng.with_label (Prng.Rng.of_int seed) "eq" in
  Commsim.Two_party.run
    ~alice:(fun chan -> Equality.run_alice shared ~bits chan (Bitio.Bits.of_string x))
    ~bob:(fun chan -> Equality.run_bob shared ~bits chan (Bitio.Bits.of_string y))

let test_equality_equal () =
  let (a, b), cost = run_equality 1 ~bits:20 "same" "same" in
  check_bool "alice verdict" true a;
  check_bool "bob verdict" true b;
  check "bits = tag + verdict" 21 cost.Commsim.Cost.total_bits;
  check "two rounds" 2 cost.Commsim.Cost.rounds

let test_equality_unequal () =
  let agree = ref 0 in
  for seed = 1 to 200 do
    let (a, b), _ = run_equality seed ~bits:20 "left" "right" in
    check_bool "verdicts agree" true (a = b);
    if a then incr agree
  done;
  (* false positives should be about 200 * 2^-20 ~ 0 *)
  check "no false equal" 0 !agree

let test_equality_false_positive_rate () =
  (* With 2-bit tags, unequal inputs pass about 1/4 of the time. *)
  let passes = ref 0 in
  let trials = 2000 in
  for seed = 1 to trials do
    let (a, _), _ = run_equality seed ~bits:2 "x1" "x2" in
    if a then incr passes
  done;
  let rate = float_of_int !passes /. float_of_int trials in
  if rate > 0.40 then Alcotest.failf "false-positive rate too high: %f" rate

(* ---------- Basic_intersection (Lemma 3.3) ---------- *)

let run_basic seed ~failure s t =
  let shared = Prng.Rng.with_label (Prng.Rng.of_int seed) "bi" in
  Commsim.Two_party.run
    ~alice:(fun chan -> Basic_intersection.run_alice shared ~failure chan s)
    ~bob:(fun chan -> Basic_intersection.run_bob shared ~failure chan t)

let test_basic_exact_whp () =
  let rng = Prng.Rng.of_int 7 in
  let failures = ref 0 in
  for seed = 1 to 300 do
    let pair =
      Workload.Setgen.pair_with_overlap rng ~universe:100000 ~size_s:40 ~size_t:40 ~overlap:13
    in
    let (s', t'), _ = run_basic seed ~failure:0.01 pair.Workload.Setgen.s pair.Workload.Setgen.t in
    let expected = Iset.inter pair.Workload.Setgen.s pair.Workload.Setgen.t in
    (* sandwich always *)
    check_bool "S' subset S" true (Iset.subset s' pair.Workload.Setgen.s);
    check_bool "T' subset T" true (Iset.subset t' pair.Workload.Setgen.t);
    check_bool "S cap T subset S'" true (Iset.subset expected s');
    check_bool "S cap T subset T'" true (Iset.subset expected t');
    if not (Iset.equal s' expected && Iset.equal t' expected) then incr failures
  done;
  (* failure target 1%; allow 5% *)
  if !failures > 15 then Alcotest.failf "too many inexact runs: %d/300" !failures

let test_basic_empty_inputs () =
  let (s', t'), cost = run_basic 3 ~failure:0.1 Iset.empty Iset.empty in
  Alcotest.check iset "alice empty" Iset.empty s';
  Alcotest.check iset "bob empty" Iset.empty t';
  check "4 messages" 4 cost.Commsim.Cost.messages

let test_basic_rounds () =
  let (_, _), cost = run_basic 5 ~failure:0.05 [| 1; 2; 3 |] [| 2; 3; 4 |] in
  check "4 rounds" 4 cost.Commsim.Cost.rounds;
  check "4 messages" 4 cost.Commsim.Cost.messages

let test_basic_disjoint_never_intersect () =
  (* Property 2: on disjoint inputs, no element survives on both sides. *)
  for seed = 1 to 100 do
    let (s', t'), _ = run_basic seed ~failure:0.3 [| 1; 3; 5; 7 |] [| 0; 2; 4; 6 |] in
    Alcotest.check iset "no common survivors" Iset.empty (Iset.inter s' t')
  done

let prop_basic_sandwich =
  QCheck.Test.make ~name:"basic-intersection sandwich invariant" ~count:150
    QCheck.(triple small_signed_int (list (int_bound 200)) (list (int_bound 200)))
    (fun (seed, ls, lt) ->
      let s = Iset.of_list ls and t = Iset.of_list lt in
      let (s', t'), _ = run_basic seed ~failure:0.2 s t in
      let expected = Iset.inter s t in
      Iset.subset s' s && Iset.subset t' t && Iset.subset expected s' && Iset.subset expected t')

let test_tag_bits_monotone () =
  let b1 = Basic_intersection.tag_bits ~m:10 ~failure:0.1 in
  let b2 = Basic_intersection.tag_bits ~m:10 ~failure:0.001 in
  let b3 = Basic_intersection.tag_bits ~m:1000 ~failure:0.1 in
  check_bool "more confidence, more bits" true (b2 > b1);
  check_bool "more elements, more bits" true (b3 > b1)

(* ---------- Vtree ---------- *)

let test_vtree_shape () =
  let tree = Vtree.build ~k:1024 ~r:3 in
  check "levels" 4 (Array.length tree.Vtree.levels);
  check "leaves" 1024 (Array.length tree.Vtree.levels.(0));
  check "single root" 1 (Array.length tree.Vtree.levels.(3));
  let root = tree.Vtree.levels.(3).(0) in
  check "root covers all" 1024 root.Vtree.leaf_count;
  (* every level partitions the leaves *)
  Array.iter
    (fun level ->
      let total = Array.fold_left (fun acc node -> acc + node.Vtree.leaf_count) 0 level in
      check "partition" 1024 total;
      let next = ref 0 in
      Array.iter
        (fun node ->
          check "contiguous" !next node.Vtree.first_leaf;
          next := !next + node.Vtree.leaf_count)
        level)
    tree.Vtree.levels

let test_vtree_degrees () =
  (* k = 2^16, r = 3: d1 = log^(2) k = 4, d2 = log k / log^(2) k = 4,
     d3 squashes. *)
  check "d1" 4 (Vtree.degree ~k:65536 ~r:3 ~level:1);
  check "d2" 4 (Vtree.degree ~k:65536 ~r:3 ~level:2);
  (* r = 2: d1 = log k = 16 *)
  check "r2 d1" 16 (Vtree.degree ~k:65536 ~r:2 ~level:1)

let test_vtree_small () =
  List.iter
    (fun (k, r) ->
      let tree = Vtree.build ~k ~r in
      check "root" 1 (Array.length tree.Vtree.levels.(r));
      check "leaves" k (Array.length tree.Vtree.levels.(0)))
    [ (1, 1); (1, 3); (2, 1); (7, 2); (16, 4); (100, 5) ]

let test_vtree_leaves () =
  let node = { Vtree.first_leaf = 5; leaf_count = 3 } in
  Alcotest.(check (list int)) "leaves" [ 5; 6; 7 ] (Vtree.leaves node)

let prop_vtree_partitions =
  QCheck.Test.make ~name:"every vtree level partitions the leaves" ~count:150
    QCheck.(pair (int_range 1 2000) (int_range 1 7))
    (fun (k, r) ->
      let tree = Vtree.build ~k ~r in
      Array.length tree.Vtree.levels = r + 1
      && Array.length tree.Vtree.levels.(r) = 1
      && Array.for_all
           (fun level ->
             let total = Array.fold_left (fun acc n -> acc + n.Vtree.leaf_count) 0 level in
             let contiguous = ref true and next = ref 0 in
             Array.iter
               (fun n ->
                 if n.Vtree.first_leaf <> !next then contiguous := false;
                 next := n.Vtree.first_leaf + n.Vtree.leaf_count)
               level;
             total = k && !contiguous)
           tree.Vtree.levels)

(* ---------- Eq_batch ---------- *)

let bits_of_string s = Bitio.Bits.of_string s

let run_eqb ?sequential seed xs ys =
  let shared = Prng.Rng.with_label (Prng.Rng.of_int seed) "eqb" in
  Commsim.Two_party.run
    ~alice:(fun chan -> Eq_batch.run_alice ?sequential shared chan xs)
    ~bob:(fun chan -> Eq_batch.run_bob ?sequential shared chan ys)

let mixed_instances n seed =
  (* even indices equal, odd unequal *)
  let xs = Array.init n (fun i -> bits_of_string (Printf.sprintf "s%d/%d" seed i)) in
  let ys =
    Array.init n (fun i ->
        if i mod 2 = 0 then bits_of_string (Printf.sprintf "s%d/%d" seed i)
        else bits_of_string (Printf.sprintf "S%d|%d" seed i))
  in
  (xs, ys)

let test_eqb_mixed () =
  List.iter
    (fun n ->
      let xs, ys = mixed_instances n 11 in
      let (va, vb), _ = run_eqb 11 xs ys in
      Alcotest.(check (array bool)) "verdicts agree" va vb;
      Array.iteri
        (fun i v ->
          if v <> (i mod 2 = 0) then Alcotest.failf "n=%d instance %d wrong verdict" n i)
        va)
    [ 1; 2; 5; 16; 64; 200 ]

let test_eqb_all_equal () =
  let xs = Array.init 50 (fun i -> bits_of_string (string_of_int i)) in
  let (va, _), cost = run_eqb 13 xs (Array.copy xs) in
  Array.iter (fun v -> check_bool "equal" true v) va;
  (* all-equal batches should be cheap: roughly one tag round + joint tests *)
  check_bool "cheap" true (cost.Commsim.Cost.total_bits < 50 * 40)

let test_eqb_all_unequal () =
  let xs = Array.init 50 (fun i -> bits_of_string ("a" ^ string_of_int i)) in
  let ys = Array.init 50 (fun i -> bits_of_string ("b" ^ string_of_int i)) in
  let (va, _), _ = run_eqb 17 xs ys in
  Array.iter (fun v -> check_bool "unequal" false v) va

let test_eqb_empty () =
  let (va, vb), cost = run_eqb 19 [||] [||] in
  check "no verdicts" 0 (Array.length va);
  check "no verdicts b" 0 (Array.length vb);
  check "no communication" 0 cost.Commsim.Cost.total_bits

let test_eqb_parallel_matches_sequential () =
  let xs, ys = mixed_instances 80 23 in
  let (va, _), cost_seq = run_eqb ~sequential:true 23 xs ys in
  let (vp, _), cost_par = run_eqb ~sequential:false 23 xs ys in
  Alcotest.(check (array bool)) "same verdicts" va vp;
  check_bool "parallel uses fewer rounds" true
    (cost_par.Commsim.Cost.rounds < cost_seq.Commsim.Cost.rounds)

let test_eqb_linear_communication () =
  (* Bits per instance should not grow with n (the O(k) claim). *)
  let per_instance n =
    let xs, ys = mixed_instances n 29 in
    let _, cost = run_eqb 29 xs ys in
    float_of_int cost.Commsim.Cost.total_bits /. float_of_int n
  in
  let small = per_instance 64 and large = per_instance 1024 in
  if large > 2.0 *. small +. 16.0 then
    Alcotest.failf "per-instance cost grows: %.1f -> %.1f bits" small large

let test_eqb_fallback_exact () =
  (* max_iterations = 0 forces the verbatim-exchange fallback: verdicts
     must be exact (zero error) on every pattern. *)
  let xs, ys = mixed_instances 60 37 in
  let shared = Prng.Rng.with_label (Prng.Rng.of_int 37) "eqb" in
  let (va, vb), cost =
    Commsim.Two_party.run
      ~alice:(fun chan -> Eq_batch.run_alice ~max_iterations:0 shared chan xs)
      ~bob:(fun chan -> Eq_batch.run_bob ~max_iterations:0 shared chan ys)
  in
  Alcotest.(check (array bool)) "agree" va vb;
  Array.iteri (fun i v -> if v <> (i mod 2 = 0) then Alcotest.failf "instance %d" i) va;
  (* the fallback ships the strings, so cost reflects their lengths *)
  check_bool "paid for the strings" true (cost.Commsim.Cost.total_bits > 60 * 8)

let test_eqb_long_strings () =
  (* Communication should not depend on instance length (tags only). *)
  let long = String.concat "" (List.init 200 (fun i -> string_of_int i)) in
  let xs = Array.init 20 (fun i -> bits_of_string (long ^ string_of_int i)) in
  let ys = Array.init 20 (fun i -> bits_of_string (long ^ string_of_int (i + (i mod 2)))) in
  let (va, _), cost = run_eqb 31 xs ys in
  Array.iteri (fun i v -> if v <> (i mod 2 = 0) then Alcotest.failf "instance %d" i) va;
  check_bool "cost independent of string length" true
    (cost.Commsim.Cost.total_bits < 20 * 200)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "core-blocks"
    [
      ( "iterated_log",
        [
          Alcotest.test_case "log2_ceil" `Quick test_log2_ceil;
          Alcotest.test_case "ilog" `Quick test_ilog;
          Alcotest.test_case "log_star" `Quick test_log_star;
          Alcotest.test_case "tower" `Quick test_tower;
        ] );
      ( "strhash",
        [
          Alcotest.test_case "deterministic" `Quick test_strhash_deterministic;
          Alcotest.test_case "tag width" `Quick test_strhash_tag_width;
          Alcotest.test_case "one sided" `Quick test_strhash_one_sided;
          Alcotest.test_case "collision rate" `Quick test_strhash_collision_rate;
          Alcotest.test_case "length matters" `Quick test_strhash_length_matters;
          Alcotest.test_case "int range" `Quick test_strhash_int_range;
          qt prop_strhash_equal_inputs;
        ] );
      ( "wire",
        [
          Alcotest.test_case "set roundtrip" `Quick test_wire_set_roundtrip;
          Alcotest.test_case "of_sets canonical" `Quick test_wire_of_sets_canonical;
          Alcotest.test_case "bitmap" `Quick test_wire_bitmap;
        ] );
      ( "equality",
        [
          Alcotest.test_case "equal inputs" `Quick test_equality_equal;
          Alcotest.test_case "unequal inputs" `Quick test_equality_unequal;
          Alcotest.test_case "false-positive rate" `Quick test_equality_false_positive_rate;
        ] );
      ( "basic_intersection",
        [
          Alcotest.test_case "exact whp" `Quick test_basic_exact_whp;
          Alcotest.test_case "empty inputs" `Quick test_basic_empty_inputs;
          Alcotest.test_case "rounds" `Quick test_basic_rounds;
          Alcotest.test_case "disjoint stays disjoint" `Quick test_basic_disjoint_never_intersect;
          Alcotest.test_case "tag bits monotone" `Quick test_tag_bits_monotone;
          qt prop_basic_sandwich;
        ] );
      ( "vtree",
        [
          Alcotest.test_case "shape" `Quick test_vtree_shape;
          Alcotest.test_case "degrees" `Quick test_vtree_degrees;
          Alcotest.test_case "small trees" `Quick test_vtree_small;
          Alcotest.test_case "leaves" `Quick test_vtree_leaves;
          qt prop_vtree_partitions;
        ] );
      ( "eq_batch",
        [
          Alcotest.test_case "mixed verdicts" `Quick test_eqb_mixed;
          Alcotest.test_case "all equal" `Quick test_eqb_all_equal;
          Alcotest.test_case "all unequal" `Quick test_eqb_all_unequal;
          Alcotest.test_case "empty" `Quick test_eqb_empty;
          Alcotest.test_case "parallel = sequential verdicts" `Quick test_eqb_parallel_matches_sequential;
          Alcotest.test_case "linear communication" `Quick test_eqb_linear_communication;
          Alcotest.test_case "fallback exact" `Quick test_eqb_fallback_exact;
          Alcotest.test_case "long strings" `Quick test_eqb_long_strings;
        ] );
    ]
