(* Tests for the message-passing multi-party protocols (Section 4):
   the multiplexer, the star/coordinator protocol (Corollary 4.1) and the
   binary-tournament protocol (Corollary 4.2). *)


let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let iset = Alcotest.testable (fun ppf s -> Iset.pp ppf s) Iset.equal

(* ---------- Group ---------- *)

let test_group_size () =
  check "k=3" 8 (Multiparty.Group.size ~k:3);
  check "k=10" 1024 (Multiparty.Group.size ~k:10);
  check "capped" (1 lsl 20) (Multiparty.Group.size ~k:64)

let test_group_chunk () =
  Alcotest.(check (list (list int)))
    "chunks"
    [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 7 ] ]
    (Multiparty.Group.chunk [ 1; 2; 3; 4; 5; 6; 7 ] ~size:3);
  Alcotest.(check (list (list int))) "single" [ [ 1; 2 ] ] (Multiparty.Group.chunk [ 1; 2 ] ~size:5)

let test_group_levels () =
  check "one level" 1 (Multiparty.Group.levels ~m:10 ~k:5);
  (* k=3 -> groups of 8: 100 -> 13 -> 2 -> 1 *)
  check "three levels" 3 (Multiparty.Group.levels ~m:100 ~k:3);
  check "two levels" 2 (Multiparty.Group.levels ~m:60 ~k:3);
  check "m=1" 1 (Multiparty.Group.levels ~m:1 ~k:3)

(* ---------- Multiplex ---------- *)

let bits_of_int ~width v =
  let buf = Bitio.Bitbuf.create () in
  Bitio.Bitbuf.write_bits buf ~width v;
  Bitio.Bitbuf.contents buf

let int_of_bits ~width payload = Bitio.Bitreader.read_bits (Bitio.Bitreader.create payload) ~width

let test_multiplex_parallel_sessions () =
  (* Coordinator ping-pongs 3 volleys with each of 4 members concurrently:
     rounds must be 6 (per-conversation chain), not 24 (serialized). *)
  let m = 5 in
  let volleys = 3 in
  let member ep =
    let chan = Commsim.Chan.of_endpoint ep ~peer:0 in
    for v = 1 to volleys do
      chan.Commsim.Chan.send (bits_of_int ~width:8 v);
      ignore (chan.Commsim.Chan.recv ())
    done;
    0
  in
  let coordinator ep =
    let session _peer chan =
      let total = ref 0 in
      for _ = 1 to volleys do
        total := !total + int_of_bits ~width:8 (chan.Commsim.Chan.recv ());
        chan.Commsim.Chan.send (bits_of_int ~width:8 1)
      done;
      !total
    in
    let results =
      Commsim.Multiplex.run ep (List.init (m - 1) (fun i -> (i + 1, session (i + 1))))
    in
    List.fold_left ( + ) 0 results
  in
  let players =
    Array.init m (fun rank -> if rank = 0 then coordinator else member)
  in
  let results, cost = Commsim.Network.run players in
  check "coordinator total" (4 * (1 + 2 + 3)) results.(0);
  check "rounds stay per-conversation" (2 * volleys) cost.Commsim.Cost.rounds

let test_multiplex_rejects_duplicate_peers () =
  let player ep =
    if Commsim.Network.rank ep = 0 then
      ignore (Commsim.Multiplex.run ep [ (1, fun _ -> ()); (1, (fun _ -> ())) ])
  in
  match Commsim.Network.run (Array.make 2 player) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected invalid_arg"

let test_multiplex_uneven_sessions () =
  (* Sessions of different lengths finish independently. *)
  let member depth ep =
    let chan = Commsim.Chan.of_endpoint ep ~peer:0 in
    for v = 1 to depth do
      chan.Commsim.Chan.send (bits_of_int ~width:8 v);
      ignore (chan.Commsim.Chan.recv ())
    done
  in
  let coordinator ep =
    let session depth chan =
      for _ = 1 to depth do
        ignore (chan.Commsim.Chan.recv ());
        chan.Commsim.Chan.send (bits_of_int ~width:8 0)
      done;
      depth
    in
    Commsim.Multiplex.run ep [ (1, session 1); (2, session 5); (3, session 2) ]
  in
  let players =
    [|
      (fun ep -> ignore (coordinator ep));
      member 1;
      member 5;
      member 2;
    |]
  in
  let _, cost = Commsim.Network.run players in
  check "rounds = longest session" 10 cost.Commsim.Cost.rounds

(* ---------- Star (Corollary 4.1) ---------- *)

let family seed ~universe ~players ~size ~core =
  Workload.Setgen.family_with_core (Prng.Rng.of_int seed) ~universe ~players ~size ~core

let expected_intersection sets = Iset.inter_many (Array.to_list sets)

let test_star_exact () =
  List.iter
    (fun (players, size, core) ->
      let sets = family (players * 100 + size) ~universe:1_000_000 ~players ~size ~core in
      let result, _ =
        Multiparty.Star.run (Prng.Rng.of_int 42) ~universe:1_000_000 ~k:size sets
      in
      Alcotest.check iset
        (Printf.sprintf "m=%d k=%d core=%d" players size core)
        (expected_intersection sets) result)
    [ (2, 16, 4); (3, 20, 7); (8, 32, 10); (16, 24, 24); (16, 24, 0); (40, 16, 5) ]

let test_star_recursion_levels () =
  (* k=3 -> groups of 8; m=20 forces two levels of recursion. *)
  let sets = family 77 ~universe:100000 ~players:20 ~size:3 ~core:1 in
  let result, _ = Multiparty.Star.run (Prng.Rng.of_int 7) ~universe:100000 ~k:3 sets in
  Alcotest.check iset "two-level recursion" (expected_intersection sets) result

let test_star_single_player () =
  let result, cost = Multiparty.Star.run (Prng.Rng.of_int 1) ~universe:100 ~k:4 [| [| 1; 2 |] |] in
  Alcotest.check iset "identity" [| 1; 2 |] result;
  check "no communication" 0 cost.Commsim.Cost.total_bits

let test_star_empty_intersection () =
  let sets = [| [| 1; 2; 3 |]; [| 4; 5; 6 |]; [| 7; 8; 9 |] |] in
  let result, _ = Multiparty.Star.run (Prng.Rng.of_int 9) ~universe:1000 ~k:3 sets in
  Alcotest.check iset "empty" Iset.empty result

let test_star_identical_sets () =
  let base = Iset.of_list (List.init 30 (fun i -> i * 11)) in
  let sets = Array.make 6 base in
  let result, _ = Multiparty.Star.run (Prng.Rng.of_int 11) ~universe:1000 ~k:30 sets in
  Alcotest.check iset "full" base result

let test_star_average_communication_linear_in_m () =
  (* total bits should grow ~linearly with m (O(k) avg per player). *)
  let bits_for m =
    let sets = family (m + 5) ~universe:1_000_000 ~players:m ~size:32 ~core:8 in
    let _, cost = Multiparty.Star.run (Prng.Rng.of_int m) ~universe:1_000_000 ~k:32 sets in
    cost.Commsim.Cost.total_bits
  in
  let b8 = bits_for 8 and b32 = bits_for 32 in
  (* 4x players: expect ~4x total bits, allow generous slack *)
  check_bool
    (Printf.sprintf "b8=%d b32=%d" b8 b32)
    true
    (b32 < 8 * b8 && b32 > 2 * b8)

(* ---------- Tournament (Corollary 4.2) ---------- *)

let test_tournament_exact () =
  List.iter
    (fun (players, size, core) ->
      let sets = family (players * 31 + size) ~universe:1_000_000 ~players ~size ~core in
      let result, _ =
        Multiparty.Tournament.run (Prng.Rng.of_int 13) ~universe:1_000_000 ~k:size sets
      in
      Alcotest.check iset
        (Printf.sprintf "m=%d k=%d core=%d" players size core)
        (expected_intersection sets) result)
    [ (2, 16, 5); (4, 20, 6); (7, 24, 9); (16, 16, 16); (16, 16, 0); (33, 12, 4) ]

let test_tournament_recursion_levels () =
  let sets = family 99 ~universe:100000 ~players:20 ~size:3 ~core:2 in
  let result, _ = Multiparty.Tournament.run (Prng.Rng.of_int 19) ~universe:100000 ~k:3 sets in
  Alcotest.check iset "two levels" (expected_intersection sets) result

let test_tournament_worst_case_beats_star_hotspot () =
  (* The whole point of Corollary 4.2: the busiest player carries less
     traffic than the star coordinator at the same scale. *)
  let m = 32 and k = 16 in
  let sets = family 123 ~universe:1_000_000 ~players:m ~size:k ~core:4 in
  let _, star_cost = Multiparty.Star.run (Prng.Rng.of_int 3) ~universe:1_000_000 ~k sets in
  let _, tour_cost = Multiparty.Tournament.run (Prng.Rng.of_int 3) ~universe:1_000_000 ~k sets in
  let star_max = Commsim.Cost.max_player_bits star_cost in
  let tour_max = Commsim.Cost.max_player_bits tour_cost in
  check_bool
    (Printf.sprintf "tournament max/player %d < star max/player %d" tour_max star_max)
    true (tour_max < star_max)

let test_tournament_single_player () =
  let result, _ = Multiparty.Tournament.run (Prng.Rng.of_int 2) ~universe:100 ~k:2 [| [| 5 |] |] in
  Alcotest.check iset "identity" [| 5 |] result

let test_tournament_non_power_of_two () =
  List.iter
    (fun players ->
      let sets = family (1000 + players) ~universe:100000 ~players ~size:8 ~core:3 in
      let result, _ =
        Multiparty.Tournament.run (Prng.Rng.of_int players) ~universe:100000 ~k:8 sets
      in
      Alcotest.check iset
        (Printf.sprintf "m=%d" players)
        (expected_intersection sets) result)
    [ 3; 5; 6; 9; 11; 13 ]

let () =
  Alcotest.run "multiparty"
    [
      ( "group",
        [
          Alcotest.test_case "size" `Quick test_group_size;
          Alcotest.test_case "chunk" `Quick test_group_chunk;
          Alcotest.test_case "levels" `Quick test_group_levels;
        ] );
      ( "multiplex",
        [
          Alcotest.test_case "parallel sessions" `Quick test_multiplex_parallel_sessions;
          Alcotest.test_case "duplicate peers rejected" `Quick test_multiplex_rejects_duplicate_peers;
          Alcotest.test_case "uneven sessions" `Quick test_multiplex_uneven_sessions;
        ] );
      ( "star",
        [
          Alcotest.test_case "exact" `Quick test_star_exact;
          Alcotest.test_case "recursion levels" `Quick test_star_recursion_levels;
          Alcotest.test_case "single player" `Quick test_star_single_player;
          Alcotest.test_case "empty intersection" `Quick test_star_empty_intersection;
          Alcotest.test_case "identical sets" `Quick test_star_identical_sets;
          Alcotest.test_case "avg communication linear in m" `Quick
            test_star_average_communication_linear_in_m;
        ] );
      ( "tournament",
        [
          Alcotest.test_case "exact" `Quick test_tournament_exact;
          Alcotest.test_case "recursion levels" `Quick test_tournament_recursion_levels;
          Alcotest.test_case "beats star hotspot" `Quick test_tournament_worst_case_beats_star_hotspot;
          Alcotest.test_case "single player" `Quick test_tournament_single_player;
          Alcotest.test_case "non power of two" `Quick test_tournament_non_power_of_two;
        ] );
    ]
