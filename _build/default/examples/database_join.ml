(* Distributed equi-join: the paper's headline database application.

   Two servers hold tables keyed by customer id.  Instead of shipping a
   table across the wire, they find the common keys with the O(k)-bit
   intersection protocol and then exchange payloads only for the matching
   rows — communication proportional to the join's OUTPUT.

   Run with:  dune exec examples/database_join.exe *)

let () =
  let rng = Prng.Rng.of_int 7 in
  (* Build two tables over the same id space with a planted overlap. *)
  let pair =
    Workload.Setgen.pair_with_overlap rng ~universe:(1 lsl 32) ~size_s:5000 ~size_t:3000
      ~overlap:120
  in
  let mk payload keys = Array.map (fun key -> { Apps.Join.key; payload = payload key }) keys in
  let left = mk (fun id -> Printf.sprintf "order[cust=%d]" id) pair.Workload.Setgen.s in
  let right = mk (fun id -> Printf.sprintf "ticket[cust=%d,sev=%d]" id (id mod 4)) pair.Workload.Setgen.t in

  let joined, cost = Apps.Join.run (Prng.Rng.of_int 99) ~universe:(1 lsl 32) ~left ~right in

  Printf.printf "server A: %d rows, server B: %d rows\n" (Array.length left) (Array.length right);
  Printf.printf "join result: %d rows; first three:\n" (List.length joined);
  List.iteri
    (fun i (row : Apps.Join.joined) ->
      if i < 3 then Printf.printf "  key=%d  %s  |  %s\n" row.Apps.Join.key row.Apps.Join.left row.Apps.Join.right)
    joined;
  Format.printf "communication: %a@." Commsim.Cost.pp cost;
  let naive =
    Bitio.Set_codec.gaps_cost pair.Workload.Setgen.s
    + 8 * Array.fold_left (fun acc (r : Apps.Join.row) -> acc + String.length r.Apps.Join.payload) 0 left
  in
  Printf.printf "shipping server A's whole table instead would cost ~%d bits (%.1fx more)\n" naive
    (float_of_int naive /. float_of_int cost.Commsim.Cost.total_bits)
