examples/multiparty_dedup.mli:
