examples/document_similarity.mli:
