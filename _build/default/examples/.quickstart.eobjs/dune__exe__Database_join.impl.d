examples/database_join.ml: Apps Array Bitio Commsim Format List Printf Prng String Workload
