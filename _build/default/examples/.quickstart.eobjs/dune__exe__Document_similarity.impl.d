examples/document_similarity.ml: Apps Commsim Format Iset Printf Prng Workload
