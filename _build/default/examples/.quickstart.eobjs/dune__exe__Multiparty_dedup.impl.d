examples/multiparty_dedup.ml: Array Commsim Format Iset Multiparty Printf Prng Workload
