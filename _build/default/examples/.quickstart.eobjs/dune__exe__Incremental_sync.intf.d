examples/incremental_sync.mli:
