examples/quickstart.mli:
