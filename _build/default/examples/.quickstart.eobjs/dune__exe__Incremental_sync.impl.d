examples/incremental_sync.ml: Apps Array Commsim Iset List Printf Prng Workload
