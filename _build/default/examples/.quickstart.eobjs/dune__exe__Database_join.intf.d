examples/database_join.mli:
