examples/quickstart.ml: Bitio Commsim Format Intersect Iset Prng Protocol Tree_protocol Verified
