(* Exact Jaccard similarity between two documents held by different
   servers, via shingling + the intersection protocol.

   Shingle each document into w-grams, hash each shingle to an element of a
   large universe, and run the similarity application: the exact Jaccard
   coefficient of the shingle sets costs O(k) bits — not O(k log n) — and
   unlike min-hash sketches the answer is exact.

   Run with:  dune exec examples/document_similarity.exe *)

let document_a =
  "the quick brown fox jumps over the lazy dog while the lazy dog sleeps \
   in the afternoon sun and dreams of chasing the quick brown fox through \
   the quiet meadow behind the old farmhouse"

let document_b =
  "the quick brown fox jumps over the lazy dog while the sleepy cat watches \
   from the windowsill and dreams of chasing the quick brown fox through \
   the quiet meadow behind the new barn"

let () =
  let w = 3 in
  let s = Workload.Scenarios.shingles ~w ~universe_bits:40 document_a in
  let t = Workload.Scenarios.shingles ~w ~universe_bits:40 document_b in
  let universe = 1 lsl 40 in
  let result = Apps.Similarity.run (Prng.Rng.of_int 2014) ~universe s t in
  Printf.printf "document A: %d distinct %d-shingles\n" (Iset.cardinal s) w;
  Printf.printf "document B: %d distinct %d-shingles\n" (Iset.cardinal t) w;
  Printf.printf "|A cap B| = %d, |A cup B| = %d\n" result.Apps.Similarity.intersection_size
    result.Apps.Similarity.union_size;
  Printf.printf "exact Jaccard similarity = %.4f\n" result.Apps.Similarity.jaccard;
  Printf.printf "exact Hamming distance   = %d\n" result.Apps.Similarity.hamming;
  Printf.printf "1-rarity = %.4f, 2-rarity = %.4f\n" result.Apps.Similarity.rarity1
    result.Apps.Similarity.rarity2;
  Format.printf "communication: %a@." Commsim.Cost.pp result.Apps.Similarity.cost
