(* Keeping a distributed join key-set in sync as both tables churn.

   After one full intersection run, each batch of inserts/deletes is
   re-synchronized by exchanging O(|changes|) hash tags plus a
   certification bit — not by re-running the k-element protocol.

   Run with:  dune exec examples/incremental_sync.exe *)

let () =
  let universe = 1 lsl 32 in
  let rng = Prng.Rng.of_int 2014 in
  let pair =
    Workload.Setgen.pair_with_overlap
      (Prng.Rng.with_label rng "workload")
      ~universe ~size_s:5000 ~size_t:5000 ~overlap:1500
  in
  let alice, bob, start_cost =
    Apps.Incremental.start (Prng.Rng.with_label rng "start") ~universe pair.Workload.Setgen.s
      pair.Workload.Setgen.t
  in
  Printf.printf "initial sync: |S|=|T|=5000, |S cap T| = %d, cost %d bits\n"
    (Iset.cardinal alice.Apps.Incremental.candidate)
    start_cost.Commsim.Cost.total_bits;

  let alice = ref alice and bob = ref bob in
  let sync_rng = Prng.Rng.with_label rng "sync" in
  let total_incremental = ref 0 in
  for batch = 1 to 5 do
    (* each side deletes ~20 rows and inserts ~20 fresh ones *)
    let make_update state seed =
      let r = Prng.Rng.with_label (Prng.Rng.of_int seed) "upd" in
      let current = state.Apps.Incremental.current in
      let deletes =
        Iset.of_list
          (List.filteri (fun i _ -> i mod 250 = 0) (Array.to_list current))
      in
      let inserts = ref [] in
      while List.length !inserts < 20 do
        let x = Prng.Rng.int r universe in
        if not (Iset.mem current x) then inserts := x :: !inserts
      done;
      { Apps.Incremental.inserts = Iset.of_list !inserts; deletes }
    in
    let a, b, cost =
      Apps.Incremental.sync sync_rng ~universe ~batch !alice !bob
        ~alice_update:(make_update !alice (batch * 2))
        ~bob_update:(make_update !bob ((batch * 2) + 1))
    in
    alice := a;
    bob := b;
    total_incremental := !total_incremental + cost.Commsim.Cost.total_bits;
    let truth = Iset.inter a.Apps.Incremental.current b.Apps.Incremental.current in
    assert (Iset.equal a.Apps.Incremental.candidate truth);
    Printf.printf "batch %d: ~40 changes/side, %5d bits, |S cap T| = %d (exact)\n" batch
      cost.Commsim.Cost.total_bits (Iset.cardinal truth)
  done;
  Printf.printf "5 incremental batches: %d bits total vs %d bits for one full re-run\n"
    !total_incremental start_cost.Commsim.Cost.total_bits
