(* Quickstart: two parties compute the exact intersection of their sets
   with O(k) bits of communication (Theorem 1.1 at r = log* k).

   Run with:  dune exec examples/quickstart.exe *)

open Intersect

let () =
  (* The "common random string": both parties derive their shared hash
     functions from this seed without communicating. *)
  let shared_randomness = Prng.Rng.of_int 42 in

  (* Each party holds a set of at most k elements from a large universe. *)
  let universe = 1 lsl 40 in
  let s = Iset.of_list [ 3; 141; 592; 65_358_979; 323_846_264; 338_327_950 ] in
  let t = Iset.of_list [ 2; 141; 592; 65_358_979; 271_828_182; 845_904_523 ] in

  (* Pick a protocol: the verification-tree protocol with r = log* k rounds
     of stages gives O(k) expected bits; wrap it in verify-and-repeat for
     success probability 1 - 2^-k. *)
  let protocol = Verified.protocol (Tree_protocol.protocol_log_star ()) in

  let outcome = protocol.Protocol.run shared_randomness ~universe s t in

  Format.printf "S            = %a@." Iset.pp s;
  Format.printf "T            = %a@." Iset.pp t;
  Format.printf "S cap T      = %a   (Alice's output)@." Iset.pp outcome.Protocol.alice;
  Format.printf "S cap T      = %a   (Bob's output)@." Iset.pp outcome.Protocol.bob;
  Format.printf "communication: %a@." Commsim.Cost.pp outcome.Protocol.cost;
  Format.printf "naive exchange would cost ~%d bits@."
    (Bitio.Set_codec.gaps_cost s + Bitio.Set_codec.gaps_cost t);
  assert (Protocol.exact outcome ~s ~t)
