(* Finding the common records of m servers (the "finding duplicates" /
   common-records application, Section 4's message-passing model).

   Eight replicas each hold a set of record fingerprints; the star protocol
   (Corollary 4.1) computes the records present on ALL replicas with O(k)
   average bits per server; the tournament protocol (Corollary 4.2) does the
   same while keeping the busiest server's traffic low.

   Run with:  dune exec examples/multiparty_dedup.exe *)

let () =
  let players = 8 in
  let k = 200 in
  let universe = 1 lsl 40 in
  let rng = Prng.Rng.of_int 1234 in
  (* Every replica stores the 60-record common core plus its own extras. *)
  let sets = Workload.Setgen.family_with_core rng ~universe ~players ~size:k ~core:60 in

  let truth = Iset.inter_many (Array.to_list sets) in
  Printf.printf "%d servers, %d records each; %d records are on every server\n" players k
    (Iset.cardinal truth);

  let star_result, star_cost = Multiparty.Star.run (Prng.Rng.of_int 1) ~universe ~k sets in
  assert (Iset.equal star_result truth);
  Format.printf "star (Cor 4.1):       %a@." Commsim.Cost.pp star_cost;
  Printf.printf "  avg bits/server %.0f, busiest server %d bits\n"
    (Commsim.Cost.avg_player_bits star_cost)
    (Commsim.Cost.max_player_bits star_cost);

  let tour_result, tour_cost = Multiparty.Tournament.run (Prng.Rng.of_int 2) ~universe ~k sets in
  assert (Iset.equal tour_result truth);
  Format.printf "tournament (Cor 4.2): %a@." Commsim.Cost.pp tour_cost;
  Printf.printf "  avg bits/server %.0f, busiest server %d bits\n"
    (Commsim.Cost.avg_player_bits tour_cost)
    (Commsim.Cost.max_player_bits tour_cost);

  Printf.printf "common records found by both protocols: %d\n" (Iset.cardinal star_result)
