lib/apps/union.ml: Array Bitio Commsim Intersect Iset List Protocol Wire
