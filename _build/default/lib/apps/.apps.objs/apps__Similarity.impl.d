lib/apps/similarity.ml: Array Commsim Intersect Iset Protocol Tree_protocol Verified Wire
