lib/apps/eq_via_intersection.ml: Array Bitio Char Intersect Iset Prng Protocol Strhash String Tree_protocol Verified
