lib/apps/stream_rarity.mli: Commsim Intersect Prng
