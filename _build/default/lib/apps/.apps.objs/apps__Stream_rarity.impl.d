lib/apps/stream_rarity.ml: Array Commsim Iset List Printf Prng Similarity
