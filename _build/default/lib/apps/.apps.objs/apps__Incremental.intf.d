lib/apps/incremental.mli: Commsim Intersect Iset Prng
