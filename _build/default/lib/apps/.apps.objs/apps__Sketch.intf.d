lib/apps/sketch.mli: Bitio Commsim Iset Prng
