lib/apps/similarity.mli: Commsim Intersect Iset Prng
