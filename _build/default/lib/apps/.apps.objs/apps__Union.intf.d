lib/apps/union.mli: Commsim Iset Prng
