lib/apps/sketch.ml: Array Bitio Commsim Intersect Iset Prng Strhash
