lib/apps/join.mli: Commsim Intersect Prng
