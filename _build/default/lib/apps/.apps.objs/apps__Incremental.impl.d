lib/apps/incremental.ml: Array Basic_intersection Bitio Commsim Equality Hashtbl Intersect Iset Iterated_log List Printf Prng Protocol Strhash Tree_protocol Verified Wire
