lib/apps/join.ml: Array Bitio Char Commsim Hashtbl Intersect Iset List Protocol String Tree_protocol Verified
