lib/apps/eq_via_intersection.mli: Commsim Intersect Prng
