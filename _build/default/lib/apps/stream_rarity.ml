type step = { position : int; rarity1 : float; rarity2 : float; jaccard : float }

type result = { steps : step list; cost : Commsim.Cost.t }

let window_set stream ~position ~window =
  Iset.of_array (Array.sub stream position window)

let run ?protocol ?stride rng ~universe ~window left right =
  if window < 1 then invalid_arg "Stream_rarity.run: window";
  if Array.length left <> Array.length right then invalid_arg "Stream_rarity.run: stream lengths";
  if Array.length left < window then invalid_arg "Stream_rarity.run: stream shorter than window";
  let stride = match stride with Some s -> max 1 s | None -> max 1 (window / 2) in
  let steps = ref [] in
  let cost = ref (Commsim.Cost.zero ~players:2) in
  let position = ref 0 in
  while !position + window <= Array.length left do
    let s = window_set left ~position:!position ~window in
    let t = window_set right ~position:!position ~window in
    let step_rng = Prng.Rng.with_label rng (Printf.sprintf "rarity/step%d" !position) in
    let r = Similarity.run ?protocol step_rng ~universe s t in
    steps :=
      {
        position = !position;
        rarity1 = r.Similarity.rarity1;
        rarity2 = r.Similarity.rarity2;
        jaccard = r.Similarity.jaccard;
      }
      :: !steps;
    cost := Commsim.Cost.add_seq !cost r.Similarity.cost;
    position := !position + stride
  done;
  { steps = List.rev !steps; cost = !cost }
