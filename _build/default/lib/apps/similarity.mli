(** The statistics the paper derives from an intersection protocol
    (Introduction / "Applications"): once [S ∩ T] is known exactly and the
    sizes [|S|, |T|] have been exchanged (one extra round, [O(log k)] bits),
    the parties both know the exact

    - intersection and union sizes,
    - Jaccard similarity [|S ∩ T| / |S ∪ T|],
    - Hamming distance between characteristic vectors,
    - number of distinct elements across both sides,
    - 1-rarity and 2-rarity in the two-party sense of [DM02]
      (fraction of distinct elements occurring in exactly one / exactly
      both of the sets).

    All of this therefore inherits the [O(k)]-bit / [O(log* k)]-round
    trade-off of Theorem 1.1. *)

type result = {
  intersection : Iset.t;
  intersection_size : int;
  union_size : int;
  distinct : int;  (** distinct elements over both inputs = union size *)
  jaccard : float;  (** 1.0 when both sets are empty, by convention *)
  hamming : int;
  rarity1 : float;  (** fraction of distinct elements in exactly one set *)
  rarity2 : float;  (** fraction of distinct elements in both sets *)
  cost : Commsim.Cost.t;
}

(** [run ?protocol rng ~universe s t]; [protocol] defaults to the
    [r = log* k] tree protocol wrapped in verification. *)
val run :
  ?protocol:Intersect.Protocol.t ->
  Prng.Rng.t ->
  universe:int ->
  Iset.t ->
  Iset.t ->
  result
