(** Incremental intersection maintenance.

    Databases don't recompute joins from scratch: after one full
    intersection run, each side's set evolves by inserts and deletes, and
    the parties re-synchronize [S ∩ T] by communicating about {e changes}
    only.  Per batch the cost is [O(|ΔS| + |ΔT|)] tag bits plus a constant
    verification overhead — independent of [k] — because an element's
    membership in the intersection can only change if one of the sides
    touched it or its counterpart.

    Mechanics per batch: both parties exchange tag lists of their inserted
    and deleted elements (fresh shared hash per batch); a removed element
    leaves the candidate intersection when either side deletes it; an
    inserted element joins when its tag appears on the other side (in the
    other party's current set or inserts).  A final equality test over the
    updated candidates certifies the sync (verify-and-repair with a full
    re-run on failure, which has vanishing probability). *)

type party = private {
  current : Iset.t;  (** this side's current set *)
  candidate : Iset.t;  (** this side's view of the intersection *)
}

type update = { inserts : Iset.t; deletes : Iset.t }

(** [start ?protocol rng ~universe s t] runs the initial full protocol.
    Returns both parties' states and the cost. *)
val start :
  ?protocol:Intersect.Protocol.t ->
  Prng.Rng.t ->
  universe:int ->
  Iset.t ->
  Iset.t ->
  party * party * Commsim.Cost.t

(** [sync rng ~universe ~batch alice bob ~alice_update ~bob_update] applies
    one update batch on each side and re-synchronizes the candidates.
    [batch] must be distinct across calls (it labels the randomness).
    Returns the new states and the incremental cost. *)
val sync :
  Prng.Rng.t ->
  universe:int ->
  batch:int ->
  party ->
  party ->
  alice_update:update ->
  bob_update:update ->
  party * party * Commsim.Cost.t
