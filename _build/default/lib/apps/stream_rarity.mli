(** Rarity over sliding data-stream windows — the Datar–Muthukrishnan
    [DM02] application the paper cites for exact 1-/2-rarity.

    Two servers each observe a stream of element ids.  At every stride the
    current length-[window] windows are reduced to their distinct-element
    sets and one intersection-protocol run computes the exact 1-rarity
    (fraction of the combined window's distinct elements seen by exactly
    one server) and 2-rarity (seen by both).  Costs accumulate
    sequentially across steps. *)

type step = {
  position : int;  (** start index of the window *)
  rarity1 : float;
  rarity2 : float;
  jaccard : float;
}

type result = { steps : step list; cost : Commsim.Cost.t }

(** [run ?protocol ?stride rng ~universe ~window left right] slides windows
    of [window] elements ([stride] defaults to [window / 2]) over two
    equal-length streams. *)
val run :
  ?protocol:Intersect.Protocol.t ->
  ?stride:int ->
  Prng.Rng.t ->
  universe:int ->
  window:int ->
  int array ->
  int array ->
  result
