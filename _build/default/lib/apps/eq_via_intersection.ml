open Intersect

let fingerprint_bits = 44

let run ?protocol rng xs ys =
  let k = Array.length xs in
  if Array.length ys <> k then invalid_arg "Eq_via_intersection.run: arity mismatch";
  if k > 1 lsl 16 then invalid_arg "Eq_via_intersection.run: too many instances";
  let protocol = match protocol with Some p -> p | None -> Verified.protocol (Tree_protocol.protocol_log_star ()) in
  let universe = max 2 (k * (1 lsl fingerprint_bits)) in
  let encode i s =
    (* Short strings embed exactly; longer ones go through the shared
       fingerprint (one-sided error, see interface). *)
    let fp =
      if 8 * String.length s <= fingerprint_bits then begin
        let v = ref 0 in
        String.iteri (fun pos c -> v := !v lor (Char.code c lsl (8 * pos))) s;
        (* disambiguate "\000" from "" by length tagging in the low bits of
           a shifted value: exact embedding needs length too *)
        !v lxor (String.length s lsl (fingerprint_bits - 4))
      end
      else begin
        let fn =
          Strhash.create (Prng.Rng.with_label rng "eqk/fingerprint") ~bits:fingerprint_bits
        in
        let tag = Strhash.apply fn (Bitio.Bits.of_string s) in
        Bitio.Bitreader.read_bits (Bitio.Bitreader.create tag) ~width:fingerprint_bits
      end
    in
    (i * (1 lsl fingerprint_bits)) + (fp land ((1 lsl fingerprint_bits) - 1))
  in
  let s = Iset.of_array (Array.mapi encode xs) in
  let t = Iset.of_array (Array.mapi encode ys) in
  let outcome = protocol.Protocol.run rng ~universe s t in
  let answers = Array.mapi (fun i x -> Iset.mem outcome.Protocol.alice (encode i x)) xs in
  (answers, outcome.Protocol.cost)
