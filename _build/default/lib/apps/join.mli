(** Distributed equi-join — the paper's headline database application
    ("computing the join of two databases held by different servers,
    requires computing an intersection").

    Each server holds a table keyed by a primary key drawn from a shared id
    space.  The servers first find the common keys with an intersection
    protocol ([O(k)] bits instead of shipping a table), then exchange
    payloads for exactly the matching rows — communication proportional to
    the {e output} size, which is optimal. *)

type row = { key : int; payload : string }

type joined = { key : int; left : string; right : string }

(** [run ?protocol rng ~universe ~left ~right] joins on [key]; keys must be
    unique within each table.  Both servers learn the joined rows; they are
    returned sorted by key, with the total cost (intersection phase plus
    payload exchange). *)
val run :
  ?protocol:Intersect.Protocol.t ->
  Prng.Rng.t ->
  universe:int ->
  left:row array ->
  right:row array ->
  joined list * Commsim.Cost.t
