(** Fact 2.1: solving [EQ^n_k] (k independent string-equality instances)
    through an intersection protocol.

    Instance [(i, x_i)] becomes the universe element [i * 2^f + fp(x_i)]
    where [fp] is a shared 44-bit fingerprint of the string; the [i]-th
    answer is whether that element survives in [S ∩ T].  The fingerprint
    step extends the reduction to strings of arbitrary length at an extra
    (one-sided) error of [k * 2^-44]; with [n <= 44] the raw bits are used
    and the reduction is exact, as in the paper. *)

(** [run ?protocol rng xs ys] — both arrays must have the same length
    [k <= 2^16].  Returns the equality vector and the cost. *)
val run :
  ?protocol:Intersect.Protocol.t ->
  Prng.Rng.t ->
  string array ->
  string array ->
  bool array * Commsim.Cost.t
