(** Computing the {e union} (and symmetric difference) — the contrast the
    paper's abstract draws: unlike the intersection, [S ∪ T] contains
    [Ω(k log (n/k))] bits of entropy about the other party's set, so no
    protocol beats exchanging the missing elements, for any number of
    rounds.

    The protocol here is the natural optimal one: Alice ships [S]
    (gap-coded), Bob replies with [T \ S] plus a subset bitmap marking
    [S \ T] inside Alice's order.  Both parties then know [S ∪ T],
    [S ∩ T] and [S Δ T] exactly.  Benchmark T13 puts this next to the
    [O(k)]-bit intersection protocols to exhibit the separation. *)

type result = {
  union : Iset.t;
  intersection : Iset.t;
  symmetric_difference : Iset.t;
  cost : Commsim.Cost.t;
}

(** Both parties learn all three sets; the results returned are Alice's
    (asserted equal to Bob's). *)
val run : Prng.Rng.t -> universe:int -> Iset.t -> Iset.t -> result
