(** Bottom-k (min-wise) sketches — the {e approximate} alternative the
    paper positions itself against (Pagh–Stöckel–Woodruff, "Is min-wise
    hashing optimal for summarizing set intersection?", PODS 2014).

    A bottom-k sketch keeps the [k] smallest images of a set under a shared
    random hash.  Exchanging sketches (one round, [O(k log n)] bits, or
    [O(k log k)] with value truncation) yields an {e estimate} of the
    Jaccard similarity and intersection size, with standard-error
    [~sqrt(J(1-J)/k)] — whereas the paper's protocols return the exact
    intersection for comparable communication.  The E-T12 bench puts the
    two on the same axis: bits vs (error, exactness).

    Both parties must build sketches from generators with the same root. *)

type t

(** [create rng ~size set] keeps the [size] smallest 60-bit images. *)
val create : Prng.Rng.t -> size:int -> Iset.t -> t

(** Number of retained values ([<= size] when the set is small). *)
val cardinal : t -> int

(** Wire encoding / decoding; [bits] of the encoding are charged by the
    protocol below. *)
val encode : t -> Bitio.Bits.t

val decode : Bitio.Bits.t -> t

(** [estimate ~size_a ~size_b a b] estimates Jaccard similarity and
    intersection size from two sketches built with the same generator and
    [size]; the true set sizes travel alongside the sketches (they are
    cheap and sharpen the estimate). *)
val estimate : size_a:int -> size_b:int -> t -> t -> float * float

(** One-round sketch-exchange protocol: both parties learn the estimates.
    Returns ((jaccard_estimate, intersection_estimate), cost). *)
val exchange :
  Prng.Rng.t ->
  sketch_size:int ->
  Iset.t ->
  Iset.t ->
  (float * float) * Commsim.Cost.t
