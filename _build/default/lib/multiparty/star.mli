(** Corollary 4.1: multi-party set intersection in the message-passing
    model, optimized for {e average} communication per player.

    Players are split into groups ({!Group}); every group member runs the
    verified two-party protocol (Theorem 1.1 amplified to error [2^-k] by a
    [2k]-bit equality check, repeated on failure) with its coordinator, who
    intersects the results; coordinators recurse.  The coordinator drives
    all member conversations concurrently ({!Commsim.Multiplex}), so a
    level costs [O(r)] expected rounds and the whole protocol
    [O(r · max(1, log m / k))] — with expected average communication
    [O(k log^(r) k)] per player, dominated by the first level.

    The global intersection ends at player 0 (lowest-rank coordinator). *)

(** [run rng ~universe ~k sets] returns player 0's final set and the
    execution cost.  [r] defaults to [log* k] (optimal communication);
    [max_attempts] bounds the verify-and-repeat loop per pair.  With
    [~broadcast:true] every player additionally learns the result
    ({!Broadcast}), which costs [m - 1] extra set transmissions. *)
val run :
  ?r:int ->
  ?max_attempts:int ->
  ?broadcast:bool ->
  Prng.Rng.t ->
  universe:int ->
  k:int ->
  Iset.t array ->
  Iset.t * Commsim.Cost.t

(** Like {!run} with [~broadcast:true], returning every player's output. *)
val run_all :
  ?r:int ->
  ?max_attempts:int ->
  Prng.Rng.t ->
  universe:int ->
  k:int ->
  Iset.t array ->
  Iset.t array * Commsim.Cost.t
