(** Binomial-tree broadcast of a result set from player 0 to everyone:
    [ceil (log2 m)] rounds, [m - 1] messages, each carrying the gap-coded
    set — the unavoidable output-delivery cost when all players must learn
    the final intersection.  Every player calls this once after the
    intersection phase. *)

(** [run ep set] returns the broadcast set: player 0 passes the result, the
    others' argument is ignored (their state is overwritten). *)
val run : Commsim.Network.endpoint -> Iset.t -> Iset.t
