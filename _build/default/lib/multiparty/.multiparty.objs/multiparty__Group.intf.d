lib/multiparty/group.mli:
