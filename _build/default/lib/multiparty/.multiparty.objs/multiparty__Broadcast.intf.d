lib/multiparty/broadcast.mli: Commsim Iset
