lib/multiparty/broadcast.ml: Bitio Commsim
