lib/multiparty/tournament.ml: Array Broadcast Commsim Equality Fun Group Intersect Iterated_log List Printf Prng Protocol Tree_protocol Wire
