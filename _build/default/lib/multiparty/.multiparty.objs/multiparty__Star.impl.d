lib/multiparty/star.ml: Array Broadcast Commsim Fun Group Intersect Iset Iterated_log List Printf Prng Protocol Tree_protocol Verified
