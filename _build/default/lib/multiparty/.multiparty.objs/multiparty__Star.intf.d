lib/multiparty/star.mli: Commsim Iset Prng
