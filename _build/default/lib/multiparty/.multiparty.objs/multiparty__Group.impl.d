lib/multiparty/group.ml: List
