lib/multiparty/tournament.mli: Commsim Iset Prng
