(** Group bookkeeping shared by the multi-party protocols of Section 4.

    Players are partitioned into groups of at most [2^k] (capped for
    practicality); the first member of each group is its coordinator; the
    coordinators recurse, giving [max(1, log m / k)] levels. *)

(** Effective group size for promise parameter [k]: [2^k], capped at
    [2^20]. *)
val size : k:int -> int

(** [chunk ranks ~size] splits a list into consecutive chunks. *)
val chunk : int list -> size:int -> int list list

(** Number of recursion levels for [m] players: groups of [size ~k] until a
    single player remains. *)
val levels : m:int -> k:int -> int
