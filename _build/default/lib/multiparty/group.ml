let size ~k =
  if k < 1 then invalid_arg "Group.size";
  1 lsl min k 20

let chunk ranks ~size =
  if size < 2 then invalid_arg "Group.chunk: size";
  let rec loop acc current count = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
        if count = size then loop (List.rev current :: acc) [ x ] 1 rest
        else loop acc (x :: current) (count + 1) rest
  in
  loop [] [] 0 ranks

let levels ~m ~k =
  let g = size ~k in
  let rec loop m acc = if m <= 1 then max 1 acc else loop ((m + g - 1) / g) (acc + 1) in
  loop m 0
