(** Corollary 4.2: multi-party set intersection optimized for {e worst-case}
    communication per player.

    Within each group the players sit at the leaves of a binary tournament:
    adjacent survivors run the two-party protocol pairwise and the winner
    carries the pairwise intersection up, so no single player talks to
    [2^k - 1] peers the way a star coordinator does — the per-player load is
    bounded by the tournament depth [k] times the pairwise cost,
    [O(k² log^(r) k · max(1, log m / k))] in the paper's accounting.

    The top pair certifies its result with a [k]-bit equality check; on
    failure the whole group tournament re-runs with fresh randomness
    ([O(1)] expected repetitions).  The verdict travels back down the
    tournament edges as a binomial broadcast.  Group winners recurse as in
    {!Star}. *)

val run :
  ?r:int ->
  ?max_attempts:int ->
  ?broadcast:bool ->
  Prng.Rng.t ->
  universe:int ->
  k:int ->
  Iset.t array ->
  Iset.t * Commsim.Cost.t

(** Like {!run} with [~broadcast:true], returning every player's output. *)
val run_all :
  ?r:int ->
  ?max_attempts:int ->
  Prng.Rng.t ->
  universe:int ->
  k:int ->
  Iset.t array ->
  Iset.t array * Commsim.Cost.t
