lib/stats/table.mli:
