(** Summary statistics over repeated protocol trials. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation *)
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

val of_floats : float list -> t
val of_ints : int list -> t

(** Half-width of the 95% normal-approximation confidence interval for the
    mean. *)
val ci95 : t -> float

val pp : Format.formatter -> t -> unit
