type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let widths =
    List.fold_left
      (fun widths row -> List.map2 (fun w cell -> max w (String.length cell)) widths row)
      (List.map (fun _ -> 0) t.columns)
      all
  in
  let pad width cell = cell ^ String.make (width - String.length cell) ' ' in
  let render_row row = "| " ^ String.concat " | " (List.map2 pad widths row) ^ " |" in
  let rule = "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+" in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (t.title ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (render_row t.columns ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.add_string buf rule;
  Buffer.contents buf

let print t = print_endline (render t)

let cell_int = string_of_int

let cell_float ?(decimals = 1) v = Printf.sprintf "%.*f" decimals v
