(** Minimal ASCII table rendering for the experiment harness: fixed header,
    rows of strings, columns padded to content. *)

type t

val create : title:string -> columns:string list -> t

(** Append one row; must have as many cells as there are columns. *)
val add_row : t -> string list -> unit

val render : t -> string
val print : t -> unit

(** Formatting helpers used throughout the bench tables. *)
val cell_int : int -> string

val cell_float : ?decimals:int -> float -> string
