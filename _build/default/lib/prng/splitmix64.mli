(** SplitMix64: a fast 64-bit generator with provably full period, used as
    the root source of all randomness in the simulator (Steele, Lea &
    Flood, OOPSLA 2014 parameters). *)

type t

val create : int64 -> t

(** Next 64-bit output; advances the state. *)
val next : t -> int64

(** Stateless single-step mix, used for seed derivation. *)
val mix : int64 -> int64
