type t = { gen : Splitmix64.t; root : int64 }

let of_seed seed = { gen = Splitmix64.create seed; root = seed }

let of_int n = of_seed (Int64.of_int n)

let fnv1a64 s =
  let open Int64 in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := logxor !h (of_int (Char.code c));
      h := mul !h 0x100000001B3L)
    s;
  !h

let with_label t label =
  of_seed (Splitmix64.mix (Int64.logxor t.root (fnv1a64 label)))

let split t = of_seed (Splitmix64.next t.gen)

let int64 t = Splitmix64.next t.gen

let bits t ~width =
  if width < 0 || width > 62 then invalid_arg "Rng.bits: width";
  if width = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (int64 t) (64 - width))

let int t bound =
  if bound < 1 then invalid_arg "Rng.int: bound";
  if bound = 1 then 0
  else begin
    let width = Bitio.Codes.bit_width (bound - 1) in
    let rec draw () =
      let v = bits t ~width in
      if v < bound then v else draw ()
    in
    draw ()
  end

let bool t = Int64.compare (int64 t) 0L < 0

let float t =
  (* 53 uniform bits into [0, 1). *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int v /. 9007199254740992.0

let bernoulli t ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Rng.bernoulli";
  float t < p

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric";
  if p >= 1.0 then 0
  else begin
    let u = 1.0 -. float t (* in (0, 1] *) in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
