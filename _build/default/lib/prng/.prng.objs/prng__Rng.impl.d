lib/prng/rng.ml: Array Bitio Char Float Int64 Splitmix64 String
