lib/prng/rng.mli:
