let fnv1a64 s =
  let open Int64 in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := logxor !h (of_int (Char.code c));
      h := mul !h 0x100000001B3L)
    s;
  !h

let shingles ~w ~universe_bits text =
  if w < 1 || universe_bits < 1 || universe_bits > 60 then invalid_arg "Scenarios.shingles";
  let words = String.split_on_char ' ' text |> List.filter (fun s -> s <> "") in
  let arr = Array.of_list words in
  let hash s = Int64.to_int (Int64.shift_right_logical (fnv1a64 s) (64 - universe_bits)) in
  List.init
    (max 0 (Array.length arr - w + 1))
    (fun i -> hash (String.concat " " (List.init w (fun j -> arr.(i + j)))))
  |> Iset.of_list

let keyed_table rng ~universe ~rows ~payload =
  let keys = Setgen.random_set rng ~universe ~size:rows in
  Array.map (fun key -> (key, payload key)) keys

let correlated_streams rng ~length ~alphabet ~lag =
  if length < 1 || alphabet < 1 || lag < 0 then invalid_arg "Scenarios.correlated_streams";
  let base = Array.init (length + lag) (fun _ -> Prng.Rng.int rng alphabet) in
  let left = Array.sub base lag length in
  let right = Array.sub base 0 length in
  (left, right)
