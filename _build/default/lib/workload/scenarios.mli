(** Named, realistic workload builders shared by the examples, tests and
    the experiment harness: documents as shingle sets, keyed tables for
    joins, and element streams for sliding-window rarity. *)

(** [shingles ~w ~universe_bits text] hashes the [w]-word shingles of
    [text] into a [2^universe_bits] universe (FNV-1a folding; both parties
    apply the same public embedding, so equal shingles collide on
    purpose). *)
val shingles : w:int -> universe_bits:int -> string -> Iset.t

(** [keyed_table rng ~universe ~rows ~payload] draws distinct keys and
    attaches [payload key] to each. *)
val keyed_table :
  Prng.Rng.t -> universe:int -> rows:int -> payload:(int -> string) -> (int * string) array

(** [correlated_streams rng ~length ~alphabet ~lag] builds two streams over
    [\[0, alphabet)] where the second lags the first by [lag] positions
    (high window overlap for small lags). *)
val correlated_streams : Prng.Rng.t -> length:int -> alphabet:int -> lag:int -> int array * int array
