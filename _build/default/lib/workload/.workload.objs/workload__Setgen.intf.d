lib/workload/setgen.mli: Prng
