lib/workload/scenarios.mli: Iset Prng
