lib/workload/scenarios.ml: Array Char Int64 Iset List Prng Setgen String
