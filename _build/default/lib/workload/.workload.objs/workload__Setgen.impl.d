lib/workload/setgen.ml: Array Float Hashtbl Iset Prng
