let limb_bits = 26

let base = 1 lsl limb_bits

(* Invariant: no trailing zero limbs; zero is the empty array. *)
type t = int array

let zero = [||]

let one = [| 1 |]

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignat.of_int";
  let rec limbs n = if n = 0 then [] else (n land (base - 1)) :: limbs (n lsr limb_bits) in
  Array.of_list (limbs n)

let to_int_opt t =
  (* max_int has 62 bits = fits in 3 limbs only partially; accumulate with
     overflow check *)
  let rec loop i acc =
    if i < 0 then Some acc
    else if acc > (max_int - t.(i)) lsr limb_bits then None
    else loop (i - 1) ((acc lsl limb_bits) lor t.(i))
  in
  if Array.length t > 3 then None else loop (Array.length t - 1) 0

let is_zero t = Array.length t = 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec loop i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else loop (i - 1)
    in
    loop (la - 1)
  end

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = 1 + max la lb in
  let out = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land (base - 1);
    carry := s lsr limb_bits
  done;
  normalize out

let sub a b =
  if compare a b < 0 then invalid_arg "Bignat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  normalize out

let mul_small t x =
  if x < 0 || x >= base then invalid_arg "Bignat.mul_small";
  if x = 0 || is_zero t then zero
  else begin
    let n = Array.length t in
    let out = Array.make (n + 2) 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (t.(i) * x) + !carry in
      out.(i) <- p land (base - 1);
      carry := p lsr limb_bits
    done;
    let i = ref n in
    while !carry > 0 do
      out.(!i) <- !carry land (base - 1);
      carry := !carry lsr limb_bits;
      incr i
    done;
    normalize out
  end

let div_small t x =
  if x < 1 || x >= base then invalid_arg "Bignat.div_small";
  let n = Array.length t in
  let out = Array.make n 0 in
  let rem = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!rem lsl limb_bits) lor t.(i) in
    out.(i) <- cur / x;
    rem := cur mod x
  done;
  (normalize out, !rem)

let bit_length t =
  let n = Array.length t in
  if n = 0 then 0 else ((n - 1) * limb_bits) + Codes.bit_width t.(n - 1)

let bit t i =
  if i < 0 then invalid_arg "Bignat.bit";
  let limb = i / limb_bits in
  limb < Array.length t && t.(limb) land (1 lsl (i mod limb_bits)) <> 0

let of_bits f ~width =
  if width < 0 then invalid_arg "Bignat.of_bits";
  let n = (width + limb_bits - 1) / limb_bits in
  let out = Array.make n 0 in
  for i = 0 to width - 1 do
    if f i then out.(i / limb_bits) <- out.(i / limb_bits) lor (1 lsl (i mod limb_bits))
  done;
  normalize out

(* C(n, k) by the multiplicative formula; each intermediate
   prod_{j<=i} (n-k+j)/j is an exact integer, so small divisions never
   truncate.  Factors must fit a limb, which holds for any n < 2^26. *)
let binomial n k =
  if n < 0 then invalid_arg "Bignat.binomial";
  if k < 0 || k > n then zero
  else begin
    if n >= base then invalid_arg "Bignat.binomial: n too large";
    let k = min k (n - k) in
    let acc = ref one in
    for i = 1 to k do
      acc := mul_small !acc (n - k + i);
      let q, r = div_small !acc i in
      assert (r = 0);
      acc := q
    done;
    !acc
  end

let pp ppf t =
  (* decimal via repeated division; fine for the sizes tests print *)
  if is_zero t then Format.pp_print_string ppf "0"
  else begin
    let digits = Buffer.create 32 in
    let cur = ref t in
    while not (is_zero !cur) do
      let q, r = div_small !cur 10 in
      Buffer.add_char digits (Char.chr (Char.code '0' + r));
      cur := q
    done;
    let s = Buffer.contents digits in
    String.iter (Format.pp_print_char ppf) (String.init (String.length s) (fun i -> s.[String.length s - 1 - i]))
  end
