lib/bitio/bitreader.ml: Bits Bytes Char
