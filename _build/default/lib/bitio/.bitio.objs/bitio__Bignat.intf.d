lib/bitio/bignat.mli: Format
