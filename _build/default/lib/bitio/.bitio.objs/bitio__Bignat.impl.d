lib/bitio/bignat.ml: Array Buffer Char Codes Format Stdlib String
