lib/bitio/codes.ml: Bitbuf Bitreader
