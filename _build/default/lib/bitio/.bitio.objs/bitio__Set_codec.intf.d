lib/bitio/set_codec.mli: Bitbuf Bitreader
