lib/bitio/bitreader.mli: Bits
