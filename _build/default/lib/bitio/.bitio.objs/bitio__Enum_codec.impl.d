lib/bitio/enum_codec.ml: Array Bignat Bitbuf Bitreader Codes Set_codec
