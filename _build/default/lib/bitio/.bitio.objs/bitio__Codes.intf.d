lib/bitio/codes.mli: Bitbuf Bitreader
