lib/bitio/set_codec.ml: Array Bitbuf Bitreader Codes
