lib/bitio/bitbuf.ml: Bits Bytes Char
