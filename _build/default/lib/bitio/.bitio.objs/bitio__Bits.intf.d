lib/bitio/bits.mli: Format
