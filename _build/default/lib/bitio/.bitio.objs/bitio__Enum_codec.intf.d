lib/bitio/enum_codec.mli: Bitbuf Bitreader
