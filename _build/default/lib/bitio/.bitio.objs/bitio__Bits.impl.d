lib/bitio/bits.ml: Bytes Char Format List String
