lib/bitio/bitbuf.mli: Bits
