(** Self-delimiting integer codes.

    These are the concrete encodings behind every "O(log x) bits" step in the
    protocols, so that measured communication is an honest bit count.  All
    encoders take non-negative arguments; the Elias codes internally shift by
    one to admit zero. *)

(** [bit_width v] is the number of bits in the binary representation of
    [v >= 1], i.e. [floor (log2 v) + 1]. *)
val bit_width : int -> int

(** Unary: [n] is written as [n] one bits followed by a zero ([n + 1] bits). *)
val write_unary : Bitbuf.t -> int -> unit

val read_unary : Bitreader.t -> int

(** Elias gamma code of [n >= 0] ([2 * bit_width (n+1) - 1] bits). *)
val write_gamma : Bitbuf.t -> int -> unit

val read_gamma : Bitreader.t -> int

(** Elias delta code of [n >= 0]; asymptotically
    [log n + O(log log n)] bits. *)
val write_delta : Bitbuf.t -> int -> unit

val read_delta : Bitreader.t -> int

(** Golomb–Rice with parameter [k]: quotient in unary, remainder in [k]
    bits.  Near-optimal for geometrically distributed values with mean
    around [2^k]. *)
val write_rice : Bitbuf.t -> k:int -> int -> unit

val read_rice : Bitreader.t -> k:int -> int

(** LEB128-style varint: 7 value bits + 1 continuation bit per group. *)
val write_varint : Bitbuf.t -> int -> unit

val read_varint : Bitreader.t -> int

(** Number of bits each code spends on a value, without writing it. *)
val gamma_cost : int -> int

val delta_cost : int -> int
val rice_cost : k:int -> int -> int
val varint_cost : int -> int
