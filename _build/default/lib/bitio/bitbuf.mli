(** Growable bit-level writer used to assemble message payloads. *)

type t

(** [create ?capacity ()] is an empty writer.  [capacity] is a size hint in
    bits. *)
val create : ?capacity:int -> unit -> t

(** Number of bits written so far. *)
val length : t -> int

val write_bit : t -> bool -> unit

(** [write_bits t ~width v] appends the [width] low bits of [v], least
    significant first.  [width] must be in [0, 62] and [v] must fit, i.e.
    [0 <= v < 2^width].  Raises [Invalid_argument] otherwise. *)
val write_bits : t -> width:int -> int -> unit

(** [append t bits] appends a whole bit vector. *)
val append : t -> Bits.t -> unit

(** Freeze the contents written so far.  The writer remains usable. *)
val contents : t -> Bits.t
