(** The message-passing model of Section 4 ([BEO+13]): [m] players, arbitrary
    point-to-point messages, costs counted in bits and rounds.

    Players are ordinary OCaml functions run as cooperative coroutines
    (OCaml 5 effect handlers).  A player function receives only its
    {!endpoint} — it has no reference to the other players' inputs, so the
    information barrier of the communication model is enforced by scoping,
    not by convention.  The scheduler delivers messages, meters every
    payload, and tracks rounds as the longest chain of causally dependent
    messages (see {!Cost}). *)

type endpoint

(** This player's index in [\[0, m)]. *)
val rank : endpoint -> int

(** Number of players. *)
val size : endpoint -> int

(** [send ep ~to_ payload] enqueues [payload] for player [to_].
    Sending to yourself or out of range raises [Invalid_argument]. *)
val send : endpoint -> to_:int -> Bitio.Bits.t -> unit

(** [recv ep ~from_] blocks until a message from player [from_] arrives and
    returns it.  Messages between a fixed pair arrive in FIFO order. *)
val recv : endpoint -> from_:int -> Bitio.Bits.t

(** [recv_any ep] blocks until a message from {e any} player arrives and
    returns [(sender, payload)].  Used by coordinators multiplexing many
    concurrent conversations (see {!Multiplex}). *)
val recv_any : endpoint -> int * Bitio.Bits.t

exception Deadlock of string
(** Raised by {!run} when every unfinished player is blocked on a message
    that can no longer arrive. *)

(** One sent message, as recorded by {!run_traced}: sender, recipient,
    payload length, and the message's causal depth (its round). *)
type trace_entry = { from_ : int; to_ : int; bits : int; depth : int }

(** [run players] runs all player functions to completion and returns their
    results with the cost of the execution.  Players may finish in any
    order; any leftover undelivered messages are allowed (they are already
    metered). *)
val run : (endpoint -> 'a) array -> 'a array * Cost.t

(** Like {!run}, also returning the full message trace in send order.
    Invariants (tested): one entry per message, entry bits sum to
    [cost.total_bits], and the maximum depth equals [cost.rounds]. *)
val run_traced : (endpoint -> 'a) array -> 'a array * Cost.t * trace_entry list
